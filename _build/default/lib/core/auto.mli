(** Automatic selection of PNrule's recall limits.

    The paper's conclusion lists "automating or guiding the selection of
    recall limits in each stage" as an open problem; this module provides
    the standard solution: hold out a stratified validation split, train
    the rp × rn grid (optionally with and without length-1 P-rules) on
    the rest, pick the configuration with the best validation F-measure,
    and retrain it on the full training set. *)

type choice = {
  params : Params.t;  (** the winning configuration *)
  validation_f : float;  (** its F-measure on the held-out split *)
}

(** [train ?base ?rps ?rns ?try_p1 ?validation_fraction ?seed ds ~target]
    returns the retrained model and the grid choice. Defaults: the
    paper's grid rp ∈ {0.95, 0.99}, rn ∈ {0.7, 0.95}, [try_p1 = true],
    30 % validation, seed 1. [base] seeds every grid point's remaining
    parameters (default {!Params.default}). *)
val train :
  ?base:Params.t ->
  ?rps:float list ->
  ?rns:float list ->
  ?try_p1:bool ->
  ?validation_fraction:float ->
  ?seed:int ->
  Pn_data.Dataset.t ->
  target:int ->
  Model.t * choice
