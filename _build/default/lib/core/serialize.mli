(** Plain-text persistence for PNrule models.

    The format is line-oriented and self-contained: it carries the class
    table, the attribute schema (with categorical value names), both rule
    lists, the ScoreMatrix, and the parameters needed to reproduce the
    model's decision behaviour. Written models round-trip exactly. *)

exception Corrupt of string
(** Raised by the readers on malformed input, with a description. *)

(** [to_string model] serializes a model. *)
val to_string : Model.t -> string

(** [of_string s] parses a serialized model. Raises [Corrupt]. *)
val of_string : string -> Model.t

(** [save model path] / [load path] — file-based wrappers. [load] raises
    [Corrupt] or [Sys_error]. *)
val save : Model.t -> string -> unit

val load : string -> Model.t
