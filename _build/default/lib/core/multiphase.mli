(** Multi-phase rule induction — the paper's final future-work item
    ("extending the two-phase approach to a multi-phase approach").

    Phase 1 learns presence rules for the target class (as PNrule's
    P-phase). Phase 2 pools everything phase 1 covers and learns absence
    rules (as the N-phase). Phase 3 pools everything phase 2 *removed*
    and learns presence rules that recapture the true positives lost
    there; phase 4 cleans phase 3's pool again, and so on, alternating
    polarity. Phases stop when a phase learns nothing, its pool runs dry,
    or [max_phases] is reached.

    Classification walks the phases: a record that fails to match phase
    k stops there, and the prediction is positive exactly when the record
    matched an odd number of phases (matched presence, never rescued by
    an absence match, or rescued again, …). *)

type t = {
  phases : Pn_rules.Rule_list.t list;  (** phase 1 first *)
  target : int;
  classes : string array;
  attrs : Pn_data.Attribute.t array;
}

(** [train ?params ?max_phases ds ~target] learns up to [max_phases]
    (default 4; 2 reproduces plain PNrule's rule structure) phases.
    [params] supplies the metric, support floor, coverage target and rule
    caps. Raises [Invalid_argument] when the dataset has no target
    weight. *)
val train : ?params:Params.t -> ?max_phases:int -> Pn_data.Dataset.t -> target:int -> t

val predict : t -> Pn_data.Dataset.t -> int -> bool

val evaluate : t -> Pn_data.Dataset.t -> Pn_metrics.Confusion.t

(** [phase_sizes t] is the number of rules per phase, first phase
    first. *)
val phase_sizes : t -> int list

val pp : Format.formatter -> t -> unit
