type choice = { params : Params.t; validation_f : float }

let train ?(base = Params.default) ?(rps = [ 0.95; 0.99 ]) ?(rns = [ 0.7; 0.95 ])
    ?(try_p1 = true) ?(validation_fraction = 0.3) ?(seed = 1) ds ~target =
  let rng = Pn_util.Rng.create seed in
  let validation, training =
    Pn_data.View.split (Pn_data.View.all ds) rng ~left_fraction:validation_fraction
  in
  let training_ds = Pn_data.View.materialize training in
  let validation_ds = Pn_data.View.materialize validation in
  let lengths = if try_p1 then [ None; Some 1 ] else [ None ] in
  let grid =
    List.concat_map
      (fun rp ->
        List.concat_map
          (fun rn ->
            List.map
              (fun len ->
                { base with Params.min_coverage = rp; recall_floor = rn; max_p_rule_length = len })
              lengths)
          rns)
      rps
  in
  let best =
    List.fold_left
      (fun best params ->
        match Learner.train ~params training_ds ~target with
        | model ->
          let f =
            Pn_metrics.Confusion.f_measure (Model.evaluate model validation_ds)
          in
          (match best with
          | Some (_, bf) when bf >= f -> best
          | Some _ | None -> Some (params, f))
        | exception Invalid_argument _ ->
          (* The training half can lose every target record only when the
             class is vanishingly rare; skip the grid point. *)
          best)
      None grid
  in
  match best with
  | None -> invalid_arg "Pnrule.Auto.train: no grid point could be trained"
  | Some (params, validation_f) ->
    (Learner.train ~params ds ~target, { params; validation_f })
