module RM = Pn_metrics.Rule_metric

type t = {
  phases : Pn_rules.Rule_list.t list;
  target : int;
  classes : string array;
  attrs : Pn_data.Attribute.t array;
}

(* Grow one rule on [pool] with the phase's polarity; refinements must
   improve the metric and keep the support floor. *)
let grow ~params ~target ~negate ~min_support pool =
  let pos, neg = Pn_data.View.binary_weights pool ~target in
  let counts0 = if negate then { RM.pos = neg; neg = pos } else { RM.pos = pos; neg } in
  let ctx = { RM.pos_total = counts0.RM.pos; neg_total = counts0.RM.neg } in
  let metric = params.Params.metric in
  let rec refine rule covered current_score current_counts =
    match
      Pn_induct.Grower.best_condition ~allow_ranges:params.Params.allow_ranges
        ~min_support ~negate ~current:rule ~metric ~ctx ~target covered
    with
    | Some cand when cand.Pn_induct.Grower.score > current_score +. 1e-12 ->
      let rule = Pn_rules.Rule.add rule cand.Pn_induct.Grower.condition in
      let covered =
        Pn_data.View.filter covered (fun i ->
            Pn_rules.Condition.matches covered.Pn_data.View.data
              cand.Pn_induct.Grower.condition i)
      in
      refine rule covered cand.Pn_induct.Grower.score cand.Pn_induct.Grower.counts
    | Some _ | None -> (rule, current_counts)
  in
  refine Pn_rules.Rule.empty pool (RM.eval metric ctx counts0) counts0

(* One phase of sequential covering over [pool]; positives are the
   target class when [negate] is false, its complement otherwise. *)
let cover_phase ~params ~target ~negate pool =
  let phase_pos =
    let pos, neg = Pn_data.View.binary_weights pool ~target in
    if negate then neg else pos
  in
  let min_support = params.Params.min_support_fraction *. phase_pos in
  let rec loop pool acc covered_pos =
    if List.length acc >= params.Params.max_p_rules then List.rev acc
    else if covered_pos /. Float.max phase_pos 1e-9 >= params.Params.min_coverage
    then List.rev acc
    else begin
      let rule, counts = grow ~params ~target ~negate ~min_support pool in
      if Pn_rules.Rule.is_empty rule || counts.RM.pos <= 0.0 then List.rev acc
      else
        loop
          (Pn_rules.Rule.uncovered_of pool rule)
          (rule :: acc)
          (covered_pos +. counts.RM.pos)
    end
  in
  loop pool [] 0.0

let train ?(params = Params.default) ?(max_phases = 4) ds ~target =
  if Pn_data.Dataset.class_weight ds target <= 0.0 then
    invalid_arg "Pnrule.Multiphase.train: no target-class weight";
  let rec phases pool k acc =
    if k > max_phases || Pn_data.View.size pool < 2 then List.rev acc
    else begin
      let negate = k mod 2 = 0 in
      let rules = cover_phase ~params ~target ~negate pool in
      match rules with
      | [] -> List.rev acc
      | _ ->
        let rl = Pn_rules.Rule_list.of_list rules in
        let covered =
          Pn_data.View.filter pool (fun i ->
              Pn_rules.Rule_list.any_match pool.Pn_data.View.data rl i)
        in
        phases covered (k + 1) (rl :: acc)
    end
  in
  {
    phases = phases (Pn_data.View.all ds) 1 [];
    target;
    classes = ds.Pn_data.Dataset.classes;
    attrs = ds.Pn_data.Dataset.attrs;
  }

let predict t ds i =
  let rec walk matched = function
    | [] -> matched mod 2 = 1
    | rl :: rest ->
      if Pn_rules.Rule_list.any_match ds rl i then walk (matched + 1) rest
      else matched mod 2 = 1
  in
  walk 0 t.phases

let evaluate t ds =
  let acc = ref Pn_metrics.Confusion.zero in
  for i = 0 to Pn_data.Dataset.n_records ds - 1 do
    acc :=
      Pn_metrics.Confusion.add !acc
        ~actual:(Pn_data.Dataset.label ds i = t.target)
        ~predicted:(predict t ds i)
        ~weight:(Pn_data.Dataset.weight ds i)
  done;
  !acc

let phase_sizes t = List.map Pn_rules.Rule_list.length t.phases

let pp ppf t =
  Format.fprintf ppf "@[<v>Multi-phase model for %S (%d phases)@,"
    t.classes.(t.target) (List.length t.phases);
  List.iteri
    (fun k rl ->
      Format.fprintf ppf "phase %d (%s):@,%a" (k + 1)
        (if k mod 2 = 0 then "presence" else "absence")
        (Pn_rules.Rule_list.pp t.attrs) rl)
    t.phases;
  Format.fprintf ppf "@]"
