type t = {
  metric : Pn_metrics.Rule_metric.kind;
  min_coverage : float;
  min_accuracy : float;
  min_support_fraction : float;
  recall_floor : float;
  max_p_rule_length : int option;
  max_n_rule_length : int option;
  allow_ranges : bool;
  mdl_slack : float;
  max_p_rules : int;
  max_n_rules : int;
  score_threshold : float;
  score_min_cell_support : float;
  score_z_threshold : float;
  use_scoring : bool;
  enable_n_phase : bool;
  n_prune : bool;
  seed : int;
}

let default =
  {
    metric = Pn_metrics.Rule_metric.Z_number;
    min_coverage = 0.95;
    min_accuracy = 0.9;
    min_support_fraction = 0.05;
    recall_floor = 0.7;
    max_p_rule_length = None;
    max_n_rule_length = None;
    allow_ranges = true;
    mdl_slack = Pn_metrics.Mdl.default_slack;
    max_p_rules = 64;
    max_n_rules = 128;
    score_threshold = 0.5;
    score_min_cell_support = 3.0;
    score_z_threshold = 1.0;
    use_scoring = true;
    enable_n_phase = true;
    n_prune = false;
    seed = 1;
  }

let legacy = { default with min_coverage = 0.95; recall_floor = 0.95 }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>metric=%s rp=%.3f rn=%.3f min_acc=%.2f min_supp=%.3f p_len=%s \
     n_len=%s ranges=%b scoring=%b n_phase=%b@]"
    (Pn_metrics.Rule_metric.kind_name t.metric)
    t.min_coverage t.recall_floor t.min_accuracy t.min_support_fraction
    (match t.max_p_rule_length with
    | None -> "unbounded"
    | Some k -> string_of_int k)
    (match t.max_n_rule_length with
    | None -> "unbounded"
    | Some k -> string_of_int k)
    t.allow_ranges t.use_scoring t.enable_n_phase
