lib/core/auto.mli: Model Params Pn_data
