lib/core/params.ml: Format Pn_metrics
