lib/core/model.mli: Format Params Pn_data Pn_metrics Pn_rules
