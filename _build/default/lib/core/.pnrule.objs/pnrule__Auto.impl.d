lib/core/auto.ml: Learner List Model Params Pn_data Pn_metrics Pn_util
