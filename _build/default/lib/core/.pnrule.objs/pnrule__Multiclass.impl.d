lib/core/multiclass.ml: Array Float Learner List Model Option Params Pn_data Pn_metrics Pn_util
