lib/core/serialize.mli: Model
