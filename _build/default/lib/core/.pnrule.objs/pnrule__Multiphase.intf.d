lib/core/multiphase.mli: Format Params Pn_data Pn_metrics Pn_rules
