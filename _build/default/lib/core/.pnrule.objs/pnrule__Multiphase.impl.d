lib/core/multiphase.ml: Array Float Format List Params Pn_data Pn_induct Pn_metrics Pn_rules
