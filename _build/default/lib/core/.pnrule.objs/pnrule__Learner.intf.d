lib/core/learner.mli: Model Params Pn_data Pn_metrics
