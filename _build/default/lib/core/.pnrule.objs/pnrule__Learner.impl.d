lib/core/learner.ml: Array Float List Logs Model Params Pn_data Pn_induct Pn_metrics Pn_rules Pn_util
