lib/core/serialize.ml: Array Buffer Fun In_channel List Model Params Pn_data Pn_rules Printf Scanf String
