lib/core/multiclass.mli: Model Params Pn_data Pn_metrics
