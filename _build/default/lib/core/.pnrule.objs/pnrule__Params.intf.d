lib/core/params.mli: Format Pn_metrics
