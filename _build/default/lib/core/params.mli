(** PNrule hyper-parameters.

    The two controls the paper studies in Section 4 are [min_coverage]
    (written rp there: the fraction of the target class the P-phase must
    cover, acting as an upper limit on recall) and [recall_floor] (rn: the
    lower limit on recall that guides N-rule refinement). *)

type t = {
  metric : Pn_metrics.Rule_metric.kind;
      (** rule evaluation metric; Z-number by default, Section 4 uses
          information gain *)
  min_coverage : float;
      (** rp ∈ (0,1]: P-rules are added until this fraction of the target
          class weight is covered *)
  min_accuracy : float;
      (** once rp is reached, a further P-rule is only accepted if its
          accuracy meets this threshold *)
  min_support_fraction : float;
      (** every accepted refinement must keep the rule's support above
          this fraction of the target-class weight *)
  recall_floor : float;
      (** rn ∈ (0,1]: an N-rule whose acceptance would push recall below
          this floor is refined further even without metric improvement *)
  max_p_rule_length : int option;
      (** cap on P-rule conjuncts; [Some 1] gives the paper's "P1" very
          general P-rules *)
  max_n_rule_length : int option;
  allow_ranges : bool;  (** enable the explicit range-condition search *)
  mdl_slack : float;  (** N-phase stops when DL exceeds min DL + slack *)
  max_p_rules : int;  (** safety cap *)
  max_n_rules : int;
  score_threshold : float;  (** decision threshold on the score, 0.5 *)
  score_min_cell_support : float;
      (** ScoreMatrix cells with less weighted support than this fall back
          to the P-rule's base score *)
  score_z_threshold : float;
      (** an N-rule must shift a P-rule's accuracy by at least this many
          standard errors to be honoured for that P-rule *)
  use_scoring : bool;
      (** when false, classify with the plain DNF semantics (some P-rule
          applies and no N-rule applies) — ablation A1 *)
  enable_n_phase : bool;  (** when false, stop after the P-phase — A1 *)
  n_prune : bool;
      (** the paper's §5 "pruning mechanisms to further protect the
          N-stage from over-fitting": grow each N-rule on 2/3 of the
          pooled records and delete trailing conditions that do not help
          on the held-out 1/3 (never past the recall floor). Off by
          default — the paper's evaluation runs without it. *)
  seed : int;  (** RNG seed for the N-stage pruning split *)
}

(** Defaults: Z-number, rp = 0.95, rn = 0.7, 5% minimum support, ranges
    on, scoring on. *)
val default : t

(** The previous PNrule version of [1] as a preset: fixed rp = rn = 0.95,
    no P-rule length cap. *)
val legacy : t

val pp : Format.formatter -> t -> unit
