type t = {
  target : int;
  classes : string array;
  attrs : Pn_data.Attribute.t array;
  p_rules : Pn_rules.Rule_list.t;
  n_rules : Pn_rules.Rule_list.t;
  scores : float array array;
  params : Params.t;
}

let score t ds i =
  match Pn_rules.Rule_list.first_match ds t.p_rules i with
  | None -> 0.0
  | Some p ->
    let col =
      match Pn_rules.Rule_list.first_match ds t.n_rules i with
      | None -> Pn_rules.Rule_list.length t.n_rules
      | Some n -> n
    in
    t.scores.(p).(col)

let predict t ds i =
  if t.params.Params.use_scoring then score t ds i > t.params.Params.score_threshold
  else
    Pn_rules.Rule_list.any_match ds t.p_rules i
    && not (Pn_rules.Rule_list.any_match ds t.n_rules i)

let predict_all t ds = Array.init (Pn_data.Dataset.n_records ds) (predict t ds)

let score_all t ds = Array.init (Pn_data.Dataset.n_records ds) (score t ds)

let evaluate t ds =
  let acc = ref Pn_metrics.Confusion.zero in
  for i = 0 to Pn_data.Dataset.n_records ds - 1 do
    acc :=
      Pn_metrics.Confusion.add !acc
        ~actual:(Pn_data.Dataset.label ds i = t.target)
        ~predicted:(predict t ds i)
        ~weight:(Pn_data.Dataset.weight ds i)
  done;
  !acc

let rule_counts t =
  (Pn_rules.Rule_list.length t.p_rules, Pn_rules.Rule_list.length t.n_rules)

let pp ppf t =
  let np, nn = rule_counts t in
  Format.fprintf ppf "@[<v>PNrule model for class %S (%d P-rules, %d N-rules)@,"
    t.classes.(t.target) np nn;
  Format.fprintf ppf "P-rules:@,%a" (Pn_rules.Rule_list.pp t.attrs) t.p_rules;
  Format.fprintf ppf "N-rules:@,%a" (Pn_rules.Rule_list.pp t.attrs) t.n_rules;
  Format.fprintf ppf "ScoreMatrix (rows: P-rules; last column: no N-rule):@,";
  Array.iteri
    (fun p row ->
      Format.fprintf ppf "  P%-2d" p;
      Array.iter (fun s -> Format.fprintf ppf " %5.2f" s) row;
      ignore p;
      Format.pp_print_cut ppf ())
    t.scores;
  Format.fprintf ppf "@]"
