(** Fixed-width text tables in the paper's layout. *)

(** [print ~title ~header rows] renders a table; every row must have the
    header's arity. Column widths adapt to content. *)
val print : title:string -> header:string list -> string list list -> unit

(** [pct x] formats a ratio as the paper's percentage, e.g. 0.9707 →
    "97.07". *)
val pct : float -> string

(** [f4 x] formats an F-measure as ".9792". *)
val f4 : float -> string

(** [result_cells r] is the [Rec; Prec; F] cell triple of a result. *)
val result_cells : Experiment.result -> string list
