lib/harness/methods.mli: Pn_c45 Pn_data Pn_metrics Pn_ripper Pnrule
