lib/harness/sampling.ml: Array Pn_data Pn_util
