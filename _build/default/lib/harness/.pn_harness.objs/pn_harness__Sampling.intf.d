lib/harness/sampling.mli: Pn_data
