lib/harness/tables.ml: Experiment Hashtbl List Methods Pn_metrics Pn_synth Pnrule Printf Sampling String Tablefmt Unix
