lib/harness/methods.ml: List Option Pn_c45 Pn_data Pn_metrics Pn_ripper Pnrule Printf
