lib/harness/tablefmt.mli: Experiment
