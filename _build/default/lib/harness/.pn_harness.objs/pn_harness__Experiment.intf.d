lib/harness/experiment.mli: Methods Pn_data Pn_metrics
