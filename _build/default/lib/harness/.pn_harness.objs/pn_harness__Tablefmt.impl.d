lib/harness/tablefmt.ml: Array Experiment List Printf String
