lib/harness/tables.mli:
