lib/harness/experiment.ml: List Logs Methods Pn_metrics Unix
