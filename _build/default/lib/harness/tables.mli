(** One entry point per table/figure of the paper's evaluation, plus the
    ablation study. Each prints a paper-layout table to stdout.

    [scale] rescales the paper's dataset sizes (500 k train / 250 k test
    for the synthetic families; 494 k / 311 k for KDD). The default used
    by the bench harness is 0.2; EXPERIMENTS.md records what each run
    used. *)

val table1 : scale:float -> unit
(** Table 1: nsyn1..6, methods C4.5rules / C4.5-we / RIPPER / RIPPER-we /
    PNrule. *)

val figure1 : scale:float -> unit
(** Figure 1 (bottom): nsyn3 under tr ∈ {0.2, 2, 4} × nr ∈ {0.2, 2, 4}. *)

val table2 : scale:float -> unit
(** Table 2: nsyn5 under (tr, nr) ∈ {0.2, 4}². *)

val table3 : scale:float -> unit
(** Table 3: categorical-only coa1..6, coad1..4. *)

val table4 : scale:float -> unit
(** Table 4 (with Figure 3's model): syngen under (tr, nr) ∈ {0.2, 4}². *)

val table5 : scale:float -> unit
(** Table 5: target-class proportion sweep on syngen. *)

val table6 : scale:float -> unit
(** Table 6: KDD probe and r2l — C4.5rules, RIPPER, legacy PNrule. *)

val section4_r2l : scale:float -> unit

val section4_r2l_p1 : scale:float -> unit

val section4_probe : scale:float -> unit

val section4_probe_p1 : scale:float -> unit

val ablation : scale:float -> unit
(** A1: PNrule minus range conditions / scoring / N-phase, on nsyn3 and
    syngen. *)

val ablation_multiphase : scale:float -> unit
(** A2: the multi-phase future-work extension (1..6 phases) against
    two-phase PNrule on nsyn3. *)

(** The benchmark registry: (id, description, runner). *)
val all : (string * string * (scale:float -> unit)) list
