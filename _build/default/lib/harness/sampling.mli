(** Target-proportion manipulation for Table 5: keep every target-class
    record, keep a random fraction of the non-target records. *)

val subsample_non_target :
  Pn_data.Dataset.t -> target:int -> fraction:float -> seed:int -> Pn_data.Dataset.t

(** [target_percentage ds ~target] is the target share of records, in
    percent. *)
val target_percentage : Pn_data.Dataset.t -> target:int -> float
