let pct x = Printf.sprintf "%.2f" (100.0 *. x)

let f4 x =
  let s = Printf.sprintf "%.4f" x in
  if String.length s > 1 && s.[0] = '0' then String.sub s 1 (String.length s - 1)
  else s

let result_cells (r : Experiment.result) = [ pct r.recall; pct r.precision; f4 r.f_measure ]

let print ~title ~header rows =
  let all = header :: rows in
  let n_cols = List.length header in
  List.iter
    (fun row ->
      if List.length row <> n_cols then
        invalid_arg "Tablefmt.print: ragged row")
    rows;
  let widths = Array.make n_cols 0 in
  List.iter
    (List.iteri (fun j cell -> widths.(j) <- max widths.(j) (String.length cell)))
    all;
  let render row =
    String.concat "  "
      (List.mapi (fun j cell -> Printf.sprintf "%*s" widths.(j) cell) row)
  in
  let rule =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  Printf.printf "\n== %s ==\n%s\n%s\n" title (render header) rule;
  List.iter (fun row -> print_endline (render row)) rows;
  print_newline ()
