let subsample_non_target ds ~target ~fraction ~seed =
  let rng = Pn_util.Rng.create seed in
  let keep = ref [] in
  for i = Pn_data.Dataset.n_records ds - 1 downto 0 do
    if Pn_data.Dataset.label ds i = target || Pn_util.Rng.bernoulli rng fraction then
      keep := i :: !keep
  done;
  Pn_data.Dataset.subset ds (Array.of_list !keep)

let target_percentage ds ~target =
  let n = Pn_data.Dataset.n_records ds in
  if n = 0 then 0.0
  else begin
    let count = ref 0 in
    for i = 0 to n - 1 do
      if Pn_data.Dataset.label ds i = target then incr count
    done;
    100.0 *. float_of_int !count /. float_of_int n
  end
