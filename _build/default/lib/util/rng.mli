(** Deterministic splittable pseudo-random number generator.

    The implementation is splitmix64: a tiny, fast, well-distributed
    generator whose state is a single [int64]. Determinism across runs
    matters more than cryptographic quality here — every experiment in the
    reproduction is seeded so that tables can be regenerated exactly. *)

type t

(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)
val create : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. Use it to
    hand sub-tasks their own streams so that adding draws to one task does
    not perturb another. *)
val split : t -> t

(** [bits64 t] is the next raw 64-bit output. *)
val bits64 : t -> int64

(** [int t bound] is uniform on [0, bound). Raises [Invalid_argument] if
    [bound <= 0]. *)
val int : t -> int -> int

(** [float t bound] is uniform on [0, bound). *)
val float : t -> float -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [bernoulli t p] is true with probability [p]. *)
val bernoulli : t -> float -> bool

(** [gaussian t] is a standard normal draw (Box–Muller). *)
val gaussian : t -> float

(** [triangular t] is a draw from the symmetric triangular distribution on
    [0, 1) with mode 0.5. *)
val triangular : t -> float

(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [choose t a] is a uniformly random element of [a]. Raises
    [Invalid_argument] on an empty array. *)
val choose : t -> 'a array -> 'a

(** [sample_without_replacement t ~n ~k] is a sorted array of [k] distinct
    indices drawn uniformly from [0, n). Raises [Invalid_argument] if
    [k < 0] or [k > n]. *)
val sample_without_replacement : t -> n:int -> k:int -> int array
