(** Special functions and small-sample statistics used by the rule
    learners: log-gamma based combinatorics for MDL coding costs, binomial
    confidence limits for C4.5's pessimistic error estimate, and
    two-proportion tests for PNrule's scoring matrix. *)

(** [log_gamma x] is ln Γ(x) for [x > 0] (Lanczos approximation,
    |relative error| < 1e-10 over the range used here). *)
val log_gamma : float -> float

(** [log_comb n k] is log₂ of the binomial coefficient C(n, k), defined
    for real [n >= k >= 0] via the gamma function. Returns [0.] when
    [k <= 0.] or [k >= n]. *)
val log_comb : float -> float -> float

(** [log2 x] is log base 2. *)
val log2 : float -> float

(** [xlog2x p] is [p *. log2 p], with the continuous extension 0 at 0. *)
val xlog2x : float -> float

(** [entropy cases] is the Shannon entropy (bits) of the weight vector
    [cases]; zero weights are skipped, and the result is 0 for an empty or
    all-zero vector. *)
val entropy : float array -> float

(** [binomial_upper ~cf ~n ~e] is C4.5's pessimistic error rate: the upper
    [1-cf] confidence limit U_CF(e, n) for the true error probability when
    [e] errors were observed among [n] (possibly fractional, weighted)
    cases. [cf] defaults in callers to 0.25. Monotone increasing in [e],
    decreasing in [n]. *)
val binomial_upper : cf:float -> n:float -> e:float -> float

(** [normal_cdf z] is Φ(z), the standard normal CDF (Hart/Abramowitz–Stegun
    rational approximation, |error| < 7.5e-8). *)
val normal_cdf : float -> float

(** [normal_quantile p] is Φ⁻¹(p) for p ∈ (0, 1) (Acklam's algorithm). *)
val normal_quantile : float -> float

(** [two_proportion_z ~p1 ~n1 ~p2 ~n2] is the z statistic for the
    difference between two observed proportions with the pooled-variance
    estimate; 0 when the pooled variance vanishes. *)
val two_proportion_z : p1:float -> n1:float -> p2:float -> n2:float -> float

(** [mean a] and [stddev a] are the sample mean and (population) standard
    deviation; both are 0 on an empty array. *)
val mean : float array -> float

val stddev : float array -> float
