lib/util/arr.ml: Array Float
