lib/util/arr.mli:
