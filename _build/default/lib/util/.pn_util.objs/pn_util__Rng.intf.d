lib/util/rng.mli:
