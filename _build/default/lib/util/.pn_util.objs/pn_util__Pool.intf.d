lib/util/pool.mli:
