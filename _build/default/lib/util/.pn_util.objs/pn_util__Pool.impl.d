lib/util/pool.ml: Array Atomic Condition Domain List Mutex String Sys
