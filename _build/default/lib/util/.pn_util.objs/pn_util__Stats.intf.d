lib/util/stats.mli:
