let log2_e = 1.4426950408889634

let log2 x = log x *. log2_e

let xlog2x p = if p <= 0.0 then 0.0 else p *. log2 p

(* Lanczos approximation, g = 7, n = 9 coefficients. *)
let lanczos =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Stats.log_gamma: nonpositive argument";
  if x < 0.5 then
    (* Reflection keeps the Lanczos series in its accurate region. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let a = ref lanczos.(0) in
    for i = 1 to 8 do
      a := !a +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
  end

let log_comb n k =
  if k <= 0.0 || k >= n then 0.0
  else
    (log_gamma (n +. 1.0) -. log_gamma (k +. 1.0) -. log_gamma (n -. k +. 1.0))
    *. log2_e

let entropy cases =
  let total = Array.fold_left ( +. ) 0.0 cases in
  if total <= 0.0 then 0.0
  else
    Array.fold_left
      (fun acc w -> if w <= 0.0 then acc else acc -. xlog2x (w /. total))
      0.0 cases

(* Regularized incomplete beta function I_x(a, b), continued-fraction
   evaluation (Numerical Recipes "betacf" with the standard symmetry
   transform for convergence). *)
let betacf a b x =
  let max_iter = 200 and eps = 3e-12 and fpmin = 1e-300 in
  let qab = a +. b and qap = a +. 1.0 and qam = a -. 1.0 in
  let c = ref 1.0 in
  let d = ref (1.0 -. (qab *. x /. qap)) in
  if Float.abs !d < fpmin then d := fpmin;
  d := 1.0 /. !d;
  let h = ref !d in
  (try
     for m = 1 to max_iter do
       let mf = float_of_int m in
       let m2 = 2.0 *. mf in
       let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
       d := 1.0 +. (aa *. !d);
       if Float.abs !d < fpmin then d := fpmin;
       c := 1.0 +. (aa /. !c);
       if Float.abs !c < fpmin then c := fpmin;
       d := 1.0 /. !d;
       h := !h *. !d *. !c;
       let aa = -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2)) in
       d := 1.0 +. (aa *. !d);
       if Float.abs !d < fpmin then d := fpmin;
       c := 1.0 +. (aa /. !c);
       if Float.abs !c < fpmin then c := fpmin;
       d := 1.0 /. !d;
       let del = !d *. !c in
       h := !h *. del;
       if Float.abs (del -. 1.0) < eps then raise Exit
     done
   with Exit -> ());
  !h

let incomplete_beta a b x =
  if x <= 0.0 then 0.0
  else if x >= 1.0 then 1.0
  else begin
    let front a b x =
      exp
        (log_gamma (a +. b) -. log_gamma a -. log_gamma b
        +. (a *. log x)
        +. (b *. log (1.0 -. x)))
    in
    (* Evaluate the continued fraction on whichever side converges; the
       transform is applied once and literally — a recursive flip can
       loop forever when x sits on the threshold under rounding. *)
    if x < (a +. 1.0) /. (a +. b +. 2.0) then front a b x *. betacf a b x /. a
    else 1.0 -. (front b a (1.0 -. x) *. betacf b a (1.0 -. x) /. b)
  end

let binomial_upper ~cf ~n ~e =
  if n <= 0.0 then 1.0
  else begin
    let e = Float.max 0.0 (Float.min e n) in
    if e >= n then 1.0
    else if e <= 0.0 then 1.0 -. (cf ** (1.0 /. n))
    else begin
      (* Solve P(X <= e | n, p) = cf for p, where the (continuous)
         cumulative is I_{1-p}(n - e, e + 1). Monotone decreasing in p, so
         bisection on [e/n, 1] converges unconditionally. *)
      let cdf p = incomplete_beta (n -. e) (e +. 1.0) (1.0 -. p) in
      let lo = ref (e /. n) and hi = ref 1.0 in
      for _ = 1 to 80 do
        let mid = 0.5 *. (!lo +. !hi) in
        if cdf mid > cf then lo := mid else hi := mid
      done;
      0.5 *. (!lo +. !hi)
    end
  end

let normal_cdf z =
  (* Abramowitz & Stegun 26.2.17 on |z|, reflected for negative z. *)
  let t = 1.0 /. (1.0 +. (0.2316419 *. Float.abs z)) in
  let poly =
    t
    *. (0.319381530
       +. (t
          *. (-0.356563782
             +. (t *. (1.781477937 +. (t *. (-1.821255978 +. (t *. 1.330274429))))))))
  in
  let pdf = exp (-0.5 *. z *. z) /. sqrt (2.0 *. Float.pi) in
  let upper = pdf *. poly in
  if z >= 0.0 then 1.0 -. upper else upper

let normal_quantile p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Stats.normal_quantile";
  (* Acklam's rational approximation, refined by one Halley step. *)
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  and b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  and c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  and d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let x =
    if p < p_low then begin
      let q = sqrt (-2.0 *. log p) in
      (((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
      /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
    end
    else if p <= 1.0 -. p_low then begin
      let q = p -. 0.5 in
      let r = q *. q in
      (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5))
      *. q
      /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.0)
    end
    else begin
      let q = sqrt (-2.0 *. log (1.0 -. p)) in
      -.((((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
         /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0))
    end
  in
  let e = normal_cdf x -. p in
  let u = e *. sqrt (2.0 *. Float.pi) *. exp (x *. x /. 2.0) in
  x -. (u /. (1.0 +. (x *. u /. 2.0)))

let two_proportion_z ~p1 ~n1 ~p2 ~n2 =
  if n1 <= 0.0 || n2 <= 0.0 then 0.0
  else begin
    let pooled = ((p1 *. n1) +. (p2 *. n2)) /. (n1 +. n2) in
    let v = pooled *. (1.0 -. pooled) *. ((1.0 /. n1) +. (1.0 /. n2)) in
    if v <= 0.0 then 0.0 else (p1 -. p2) /. sqrt v
  end

let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let stddev a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
    sqrt (acc /. float_of_int n)
  end
