type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  (* splitmix64 finalizer: full-avalanche mixing of the raw counter. *)
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = mix64 (bits64 t) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Reject to avoid modulo bias; the loop terminates quickly because the
     acceptance region covers more than half of the 62-bit range. *)
  let mask = 0x3FFFFFFFFFFFFFFFL in
  let rec loop () =
    let r = Int64.to_int (Int64.logand (bits64 t) mask) in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then loop () else v
  in
  loop ()

let float t bound =
  let r = Int64.shift_right_logical (bits64 t) 11 in
  (* 53 uniform bits mapped onto [0,1). *)
  Int64.to_float r *. (1.0 /. 9007199254740992.0) *. bound

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let bernoulli t p = float t 1.0 < p

let gaussian t =
  let rec loop () =
    let u = float t 1.0 in
    if u <= 0.0 then loop () else u
  in
  let u1 = loop () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let triangular t =
  let u = float t 1.0 in
  if u < 0.5 then sqrt (u /. 2.0) else 1.0 -. sqrt ((1.0 -. u) /. 2.0)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t ~n ~k =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Floyd's algorithm: k iterations, O(k) space. *)
  let seen = Hashtbl.create (2 * k) in
  for j = n - k to n - 1 do
    let r = int t (j + 1) in
    if Hashtbl.mem seen r then Hashtbl.replace seen j ()
    else Hashtbl.replace seen r ()
  done;
  let out = Array.make k 0 in
  let i = ref 0 in
  Hashtbl.iter (fun idx () -> out.(!i) <- idx; incr i) seen;
  Array.sort compare out;
  out
