let argsort cmp a =
  let idx = Array.init (Array.length a) (fun i -> i) in
  (* Compare values first, indices second: stability without relying on
     the sorting algorithm. *)
  Array.sort
    (fun i j ->
      let c = cmp a.(i) a.(j) in
      if c <> 0 then c else compare i j)
    idx;
  idx

let argsort_floats a = argsort Float.compare a

let sum_floats = Array.fold_left ( +. ) 0.0

let filteri p a =
  let out = ref [] in
  for i = Array.length a - 1 downto 0 do
    if p i a.(i) then out := a.(i) :: !out
  done;
  Array.of_list !out

let max_by f a =
  if Array.length a = 0 then invalid_arg "Arr.max_by: empty array";
  let best = ref a.(0) in
  let best_v = ref (f a.(0)) in
  for i = 1 to Array.length a - 1 do
    let v = f a.(i) in
    if v > !best_v then begin
      best := a.(i);
      best_v := v
    end
  done;
  !best

let rec take n l =
  if n <= 0 then []
  else
    match l with
    | [] -> []
    | x :: rest -> x :: take (n - 1) rest

let range n = Array.init n (fun i -> i)

let mean_of f a =
  let n = Array.length a in
  if n = 0 then 0.0
  else Array.fold_left (fun acc x -> acc +. f x) 0.0 a /. float_of_int n
