(** Array helpers shared by the dataset engine and the learners. *)

(** [argsort_floats a] is the permutation of indices of [a] that sorts the
    values ascending; ties keep index order (stable). *)
val argsort_floats : float array -> int array

(** [argsort cmp a] is the index permutation sorting [a] by [cmp],
    stable. *)
val argsort : ('a -> 'a -> int) -> 'a array -> int array

(** [sum_floats a] is Σ a.(i). *)
val sum_floats : float array -> float

(** [filteri p a] keeps the elements whose (index, value) satisfies [p]. *)
val filteri : (int -> 'a -> bool) -> 'a array -> 'a array

(** [max_by f a] is the element maximizing [f] (first on ties). Raises
    [Invalid_argument] on an empty array. *)
val max_by : ('a -> float) -> 'a array -> 'a

(** [take n l] is the first [n] elements of [l] (all of [l] if shorter). *)
val take : int -> 'a list -> 'a list

(** [range n] is [| 0; 1; ...; n-1 |]. *)
val range : int -> int array

(** [mean_of f a] averages [f] over the array, 0 on empty. *)
val mean_of : ('a -> float) -> 'a array -> float
