(** The general mixed model "syngen" of §3.2.3 (Figure 3, Tables 4-5).

    Eight attributes: four numeric (n0..n3) and four categorical
    (c0..c3). Three target and three non-target subclasses:

    - C1 / NC1: *conjunctive* numeric signatures — a disjunction of two
      conjunctions of peaks spanning attributes n0 AND n1;
    - C2 / NC2: *disjunctive* numeric signatures — a peak on n2 OR a peak
      on n3;
    - C3 / NC3: categorical word-pair signatures — C3 on (c0, c1) with
      nspa = 2, NC3 on (c2, c3) with nspa = 4, both 2 words per attribute.

    A record is uniform on every attribute its subclass does not
    distinguish. [tr] and [nr] control the numeric signature widths. *)

type spec = {
  tr : float;
  nr : float;
  shape : Signature.shape;
  target_fraction : float;
  vocab : int;  (** categorical vocabulary size (paper-scale: 100) *)
}

val default : spec

val classes : string array

val target_class : int

val with_widths : spec -> tr:float -> nr:float -> spec

val generate : spec -> seed:int -> n:int -> Pn_data.Dataset.t

val pp_spec : Format.formatter -> spec -> unit
