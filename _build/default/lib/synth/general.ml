type spec = {
  tr : float;
  nr : float;
  shape : Signature.shape;
  target_fraction : float;
  vocab : int;
}

let default =
  {
    tr = 0.2;
    nr = 0.2;
    shape = Signature.Triangular;
    target_fraction = 0.003;
    vocab = 100;
  }

let classes = [| "NC"; "C" |]

let target_class = 1

let with_widths spec ~tr ~nr = { spec with tr; nr }

let domain = 100.0

(* Deterministic signature layout shared by train and test. *)
type layout = {
  c1_pairs : (Signature.peaks * Signature.peaks) array;  (* two conjunctions *)
  nc1_pairs : (Signature.peaks * Signature.peaks) array;
  c2 : Signature.peaks array;  (* peaks on n2 and n3 *)
  nc2 : Signature.peaks array;
  c3_words : (int array * int array) array;  (* word sets on (c0, c1) *)
  nc3_words : (int array * int array) array;  (* word sets on (c2, c3) *)
}

let build spec =
  ignore domain;
  (* Explicit centers: C1 and NC1 share n0/n1, C2 and NC2 share n2/n3, so
     the peaks of the two classes are interleaved at fixed positions well
     apart (widths in the paper's sweeps reach 4.0). *)
  let peak ~w c = Signature.at_centers ~centers:[| c |] ~width:w ~shape:spec.shape in
  let pair ~w c1 c2 = (peak ~w c1, peak ~w c2) in
  let word_sets nspa =
    Array.init nspa (fun g ->
        (Array.init 2 (fun w -> (2 * g) + w), Array.init 2 (fun w -> (2 * g) + w)))
  in
  {
    c1_pairs = [| pair ~w:spec.tr 12.0 30.0; pair ~w:spec.tr 62.0 80.0 |];
    nc1_pairs = [| pair ~w:spec.nr 37.0 55.0; pair ~w:spec.nr 87.0 8.0 |];
    c2 = [| peak ~w:spec.tr 22.0; peak ~w:spec.tr 47.0 |];
    nc2 = [| peak ~w:spec.nr 72.0; peak ~w:spec.nr 92.0 |];
    c3_words = word_sets 2;
    nc3_words = word_sets 4;
  }

let generate spec ~seed ~n =
  let rng = Pn_util.Rng.create seed in
  let layout = build spec in
  let n_num = 4 and n_cat = 4 in
  let attrs =
    Array.append
      (Array.init n_num (fun j -> Pn_data.Attribute.numeric (Printf.sprintf "n%d" j)))
      (Array.init n_cat (fun j ->
           Pn_data.Attribute.categorical
             (Printf.sprintf "c%d" j)
             (Array.init spec.vocab (fun v -> Printf.sprintf "v%d" v))))
  in
  let num_cols = Array.init n_num (fun _ -> Array.make n 0.0) in
  let cat_cols = Array.init n_cat (fun _ -> Array.make n 0) in
  let labels = Array.make n 0 in
  let uniform_record i =
    for j = 0 to n_num - 1 do
      num_cols.(j).(i) <- Pn_util.Rng.float rng domain
    done;
    for j = 0 to n_cat - 1 do
      cat_cols.(j).(i) <- Pn_util.Rng.int rng spec.vocab
    done
  in
  let conjunctive i pairs =
    let pa, pb = pairs.(Pn_util.Rng.int rng (Array.length pairs)) in
    num_cols.(0).(i) <- Signature.sample pa rng;
    num_cols.(1).(i) <- Signature.sample pb rng
  in
  let disjunctive i peaks =
    let which = Pn_util.Rng.int rng (Array.length peaks) in
    num_cols.(2 + which).(i) <- Signature.sample peaks.(which) rng
  in
  let categorical i word_sets ~lo ~hi =
    let a, b = word_sets.(Pn_util.Rng.int rng (Array.length word_sets)) in
    cat_cols.(lo).(i) <- Pn_util.Rng.choose rng a;
    cat_cols.(hi).(i) <- Pn_util.Rng.choose rng b
  in
  for i = 0 to n - 1 do
    uniform_record i;
    let subclass = Pn_util.Rng.int rng 3 in
    if Pn_util.Rng.bernoulli rng spec.target_fraction then begin
      labels.(i) <- target_class;
      match subclass with
      | 0 -> conjunctive i layout.c1_pairs
      | 1 -> disjunctive i layout.c2
      | _ -> categorical i layout.c3_words ~lo:0 ~hi:1
    end
    else begin
      match subclass with
      | 0 -> conjunctive i layout.nc1_pairs
      | 1 -> disjunctive i layout.nc2
      | _ -> categorical i layout.nc3_words ~lo:2 ~hi:3
    end
  done;
  let columns =
    Array.append
      (Array.map (fun c -> Pn_data.Dataset.Num c) num_cols)
      (Array.map (fun c -> Pn_data.Dataset.Cat c) cat_cols)
  in
  Pn_data.Dataset.create ~attrs ~columns ~labels ~classes ()

let pp_spec ppf spec =
  Format.fprintf ppf "tr=%.1f nr=%.1f %s %.2f%% vocab=%d" spec.tr spec.nr
    (Signature.shape_name spec.shape)
    (100.0 *. spec.target_fraction)
    spec.vocab
