let classes = [| "normal"; "dos"; "probe"; "r2l"; "u2r" |]

let normal = 0

let dos = 1

let probe = 2

let r2l = 3

let u2r = 4

(* ------------------------------------------------------------------ *)
(* Schema                                                               *)
(* ------------------------------------------------------------------ *)

let protocols = [| "tcp"; "udp"; "icmp" |]

let services =
  [|
    "http"; "smtp"; "ftp"; "ftp_data"; "telnet"; "pop3"; "domain_u"; "private";
    "eco_i"; "ecr_i"; "finger"; "other";
  |]

let flags = [| "SF"; "S0"; "REJ"; "RSTR"; "RSTO"; "SH"; "OTH" |]

let bools = [| "0"; "1" |]

(* Numeric feature indices. *)
let f_duration = 0

let f_src_bytes = 1

let f_dst_bytes = 2

let f_wrong_fragment = 3

let f_hot = 4

let f_num_failed_logins = 5

let f_num_compromised = 6

let f_count = 7

let f_srv_count = 8

let f_serror_rate = 9

let f_rerror_rate = 10

let f_same_srv_rate = 11

let f_diff_srv_rate = 12

let f_dst_host_count = 13

let f_dst_host_srv_count = 14

let f_dst_host_same_srv_rate = 15

let n_numeric = 16

let numeric_names =
  [|
    "duration"; "src_bytes"; "dst_bytes"; "wrong_fragment"; "hot";
    "num_failed_logins"; "num_compromised"; "count"; "srv_count";
    "serror_rate"; "rerror_rate"; "same_srv_rate"; "diff_srv_rate";
    "dst_host_count"; "dst_host_srv_count"; "dst_host_same_srv_rate";
  |]

(* Categorical feature indices. *)
let c_protocol = 0

let c_service = 1

let c_flag = 2

let c_land = 3

let c_logged_in = 4

let c_root_shell = 5

let n_categorical = 6

let categorical_values =
  [| protocols; services; flags; bools; bools; bools |]

let categorical_names =
  [| "protocol_type"; "service"; "flag"; "land"; "logged_in"; "root_shell" |]

let service_code name =
  match Array.find_index (String.equal name) services with
  | Some i -> i
  | None -> invalid_arg ("Kddcup: unknown service " ^ name)

let protocol_code name =
  match Array.find_index (String.equal name) protocols with
  | Some i -> i
  | None -> invalid_arg ("Kddcup: unknown protocol " ^ name)

let flag_code name =
  match Array.find_index (String.equal name) flags with
  | Some i -> i
  | None -> invalid_arg ("Kddcup: unknown flag " ^ name)

(* ------------------------------------------------------------------ *)
(* Record construction helpers                                          *)
(* ------------------------------------------------------------------ *)

type rec_buf = { nf : float array; cf : int array }

let positive rng mean spread =
  Float.max 0.0 (mean +. (spread *. Pn_util.Rng.gaussian rng))

let rate rng mean spread =
  Float.max 0.0 (Float.min 1.0 (mean +. (spread *. Pn_util.Rng.gaussian rng)))

let bytes rng typical =
  (* Log-normal-ish traffic volume around the typical size. *)
  Float.max 0.0 (typical *. exp (0.4 *. Pn_util.Rng.gaussian rng))

(* Background values a generic benign-ish connection would have; each
   subclass setter overrides the fields that carry its signature. *)
let background rng b =
  b.nf.(f_duration) <- positive rng 2.0 3.0;
  b.nf.(f_src_bytes) <- bytes rng 300.0;
  b.nf.(f_dst_bytes) <- bytes rng 2000.0;
  b.nf.(f_wrong_fragment) <- 0.0;
  b.nf.(f_hot) <- 0.0;
  b.nf.(f_num_failed_logins) <- 0.0;
  b.nf.(f_num_compromised) <- 0.0;
  b.nf.(f_count) <- positive rng 8.0 6.0;
  b.nf.(f_srv_count) <- positive rng 6.0 5.0;
  b.nf.(f_serror_rate) <- rate rng 0.02 0.03;
  b.nf.(f_rerror_rate) <- rate rng 0.02 0.03;
  b.nf.(f_same_srv_rate) <- rate rng 0.9 0.1;
  b.nf.(f_diff_srv_rate) <- rate rng 0.05 0.05;
  b.nf.(f_dst_host_count) <- positive rng 30.0 25.0;
  b.nf.(f_dst_host_srv_count) <- positive rng 25.0 20.0;
  b.nf.(f_dst_host_same_srv_rate) <- rate rng 0.85 0.15;
  b.cf.(c_protocol) <- protocol_code "tcp";
  b.cf.(c_service) <- service_code "http";
  b.cf.(c_flag) <- flag_code "SF";
  b.cf.(c_land) <- 0;
  b.cf.(c_logged_in) <- 0;
  b.cf.(c_root_shell) <- 0

(* ------------------------------------------------------------------ *)
(* Subclass generators                                                  *)
(* ------------------------------------------------------------------ *)

type subclass = { name : string; cls : int; test_only : bool; fill : Pn_util.Rng.t -> rec_buf -> unit }

let sub ?(test_only = false) name cls fill = { name; cls; test_only; fill }

let normal_subclasses =
  [
    ( 0.55,
      sub "normal.http" normal (fun rng b ->
          b.cf.(c_logged_in) <- 1;
          b.nf.(f_src_bytes) <- bytes rng 250.0;
          b.nf.(f_dst_bytes) <- bytes rng 4000.0) );
    ( 0.15,
      sub "normal.smtp" normal (fun rng b ->
          b.cf.(c_service) <- service_code "smtp";
          b.cf.(c_logged_in) <- 1;
          b.nf.(f_src_bytes) <- bytes rng 900.0;
          b.nf.(f_dst_bytes) <- bytes rng 330.0) );
    ( 0.12,
      sub "normal.ftp" normal (fun rng b ->
          (* Benign ftp shares r2l's presence signature. *)
          b.cf.(c_service) <-
            (if Pn_util.Rng.bool rng then service_code "ftp" else service_code "ftp_data");
          b.cf.(c_logged_in) <- 1;
          b.nf.(f_duration) <- positive rng 120.0 180.0;
          (* Some benign transfers trip the same "hot" indicators and
             volumes as warez downloads. *)
          if Pn_util.Rng.bernoulli rng 0.2 then
            b.nf.(f_hot) <- 1.0 +. Float.of_int (Pn_util.Rng.int rng 2);
          b.nf.(f_src_bytes) <- bytes rng 2000.0;
          b.nf.(f_dst_bytes) <-
            (if Pn_util.Rng.bernoulli rng 0.3 then bytes rng 200000.0
             else bytes rng 8000.0)) );
    ( 0.08,
      sub "normal.domain_u" normal (fun rng b ->
          b.cf.(c_protocol) <- protocol_code "udp";
          b.cf.(c_service) <- service_code "domain_u";
          b.nf.(f_duration) <- 0.0;
          b.nf.(f_src_bytes) <- positive rng 45.0 10.0;
          b.nf.(f_dst_bytes) <- positive rng 90.0 30.0) );
    ( 0.06,
      sub "normal.telnet" normal (fun rng b ->
          b.cf.(c_service) <- service_code "telnet";
          b.cf.(c_logged_in) <- 1;
          b.nf.(f_duration) <- positive rng 120.0 100.0;
          (* Fat-fingered passwords: benign telnet overlaps the
             guess_passwd signature. *)
          if Pn_util.Rng.bernoulli rng 0.25 then
            b.nf.(f_num_failed_logins) <- 1.0 +. Float.of_int (Pn_util.Rng.int rng 2);
          b.nf.(f_src_bytes) <- bytes rng 1500.0;
          b.nf.(f_dst_bytes) <- bytes rng 3000.0) );
    ( 0.02,
      sub "normal.other" normal (fun rng b ->
          b.cf.(c_service) <- service_code "other";
          b.nf.(f_same_srv_rate) <- rate rng 0.6 0.2) );
    ( 0.02,
      sub "normal.ping" normal (fun rng b ->
          (* Benign icmp echo traffic sits inside ipsweep's presence
             signature; only the fan-out statistics separate them. *)
          b.cf.(c_protocol) <- protocol_code "icmp";
          b.cf.(c_service) <- service_code "eco_i";
          b.nf.(f_duration) <- 0.0;
          b.nf.(f_src_bytes) <- 8.0 +. Float.of_int (Pn_util.Rng.int rng 12);
          b.nf.(f_dst_bytes) <- 0.0;
          b.nf.(f_count) <- positive rng 2.0 1.5;
          b.nf.(f_dst_host_count) <- positive rng 60.0 45.0;
          b.nf.(f_dst_host_same_srv_rate) <- rate rng 0.3 0.2) );
  ]

let dos_subclasses =
  [
    ( 0.55,
      sub "dos.smurf" dos (fun rng b ->
          b.cf.(c_protocol) <- protocol_code "icmp";
          b.cf.(c_service) <- service_code "ecr_i";
          b.nf.(f_duration) <- 0.0;
          b.nf.(f_src_bytes) <- 1032.0 +. Float.of_int (Pn_util.Rng.int rng 3);
          b.nf.(f_dst_bytes) <- 0.0;
          b.nf.(f_count) <- positive rng 480.0 60.0;
          b.nf.(f_srv_count) <- positive rng 480.0 60.0;
          b.nf.(f_same_srv_rate) <- 1.0;
          b.nf.(f_dst_host_count) <- positive rng 255.0 10.0;
          b.nf.(f_dst_host_srv_count) <- positive rng 255.0 10.0) );
    ( 0.38,
      sub "dos.neptune" dos (fun rng b ->
          b.cf.(c_service) <-
            (if Pn_util.Rng.bool rng then service_code "private" else service_code "other");
          b.cf.(c_flag) <- flag_code "S0";
          b.nf.(f_duration) <- 0.0;
          b.nf.(f_src_bytes) <- 0.0;
          b.nf.(f_dst_bytes) <- 0.0;
          b.nf.(f_count) <- positive rng 200.0 50.0;
          b.nf.(f_srv_count) <- positive rng 10.0 5.0;
          b.nf.(f_serror_rate) <- rate rng 0.98 0.03;
          b.nf.(f_same_srv_rate) <- rate rng 0.05 0.05;
          b.nf.(f_diff_srv_rate) <- rate rng 0.07 0.05) );
    ( 0.04,
      sub "dos.back" dos (fun rng b ->
          b.cf.(c_logged_in) <- 1;
          b.nf.(f_src_bytes) <- bytes rng 54000.0;
          b.nf.(f_dst_bytes) <- bytes rng 8000.0;
          b.nf.(f_count) <- positive rng 5.0 3.0) );
    ( 0.03,
      sub "dos.ftp_flood" dos (fun rng b ->
          (* Flooding over ftp: the impurity in r2l's service signature
             (the paper's §1 example). *)
          b.cf.(c_service) <- service_code "ftp";
          b.cf.(c_flag) <-
            (if Pn_util.Rng.bernoulli rng 0.7 then flag_code "S0" else flag_code "SF");
          b.nf.(f_duration) <- 0.0;
          b.nf.(f_src_bytes) <- positive rng 10.0 10.0;
          b.nf.(f_dst_bytes) <- 0.0;
          b.nf.(f_count) <- positive rng 300.0 80.0;
          b.nf.(f_srv_count) <- positive rng 300.0 80.0;
          b.nf.(f_serror_rate) <- rate rng 0.7 0.2;
          b.nf.(f_same_srv_rate) <- rate rng 0.95 0.05) );
  ]

let probe_subclasses ~with_novel =
  let base =
    [
      ( 0.35,
        sub "probe.ipsweep" probe (fun rng b ->
            b.cf.(c_protocol) <- protocol_code "icmp";
            b.cf.(c_service) <- service_code "eco_i";
            b.nf.(f_duration) <- 0.0;
            b.nf.(f_src_bytes) <- 8.0 +. Float.of_int (Pn_util.Rng.int rng 12);
            b.nf.(f_dst_bytes) <- 0.0;
            b.nf.(f_count) <- positive rng 2.0 1.5;
            b.nf.(f_dst_host_count) <- positive rng 170.0 70.0;
            b.nf.(f_dst_host_same_srv_rate) <- rate rng 0.12 0.1) );
      ( 0.28,
        sub "probe.portsweep" probe (fun rng b ->
            b.cf.(c_flag) <-
              (let r = Pn_util.Rng.float rng 1.0 in
               if r < 0.45 then flag_code "REJ"
               else if r < 0.85 then flag_code "RSTR"
               else flag_code "SF");
            b.cf.(c_service) <- service_code "private";
            b.nf.(f_duration) <- 0.0;
            b.nf.(f_src_bytes) <- positive rng 4.0 4.0;
            b.nf.(f_dst_bytes) <- 0.0;
            b.nf.(f_rerror_rate) <- rate rng 0.9 0.1;
            b.nf.(f_diff_srv_rate) <- rate rng 0.85 0.1;
            b.nf.(f_same_srv_rate) <- rate rng 0.05 0.05) );
      ( 0.25,
        sub "probe.satan" probe (fun rng b ->
            b.cf.(c_service) <-
              (if Pn_util.Rng.bool rng then service_code "private" else service_code "other");
            b.nf.(f_duration) <- 0.0;
            b.nf.(f_src_bytes) <- positive rng 6.0 5.0;
            b.nf.(f_dst_bytes) <- positive rng 10.0 10.0;
            b.nf.(f_diff_srv_rate) <- rate rng 0.7 0.15;
            b.nf.(f_rerror_rate) <- rate rng 0.5 0.2;
            b.nf.(f_count) <- positive rng 80.0 40.0) );
      ( 0.12,
        sub "probe.nmap" probe (fun rng b ->
            b.cf.(c_protocol) <-
              (if Pn_util.Rng.bool rng then protocol_code "icmp" else protocol_code "udp");
            b.cf.(c_service) <-
              (if Pn_util.Rng.bool rng then service_code "eco_i" else service_code "private");
            b.nf.(f_duration) <- 0.0;
            b.nf.(f_src_bytes) <- positive rng 20.0 15.0;
            b.nf.(f_dst_bytes) <- 0.0;
            b.nf.(f_dst_host_count) <- positive rng 150.0 60.0) );
    ]
  in
  if not with_novel then base
  else
    [
      ( 0.22,
        sub ~test_only:true "probe.saint" probe (fun rng b ->
            b.cf.(c_service) <- service_code "other";
            b.cf.(c_flag) <- flag_code "RSTO";
            b.nf.(f_duration) <- 0.0;
            b.nf.(f_src_bytes) <- positive rng 10.0 6.0;
            b.nf.(f_diff_srv_rate) <- rate rng 0.6 0.2;
            b.nf.(f_rerror_rate) <- rate rng 0.6 0.2;
            b.nf.(f_dst_host_count) <- positive rng 200.0 50.0) );
      ( 0.10,
        sub ~test_only:true "probe.mscan" probe (fun rng b ->
            b.cf.(c_flag) <- flag_code "REJ";
            b.nf.(f_duration) <- 0.0;
            b.nf.(f_src_bytes) <- 0.0;
            b.nf.(f_dst_bytes) <- 0.0;
            b.nf.(f_rerror_rate) <- rate rng 0.95 0.05;
            b.nf.(f_diff_srv_rate) <- rate rng 0.9 0.08;
            b.nf.(f_dst_host_count) <- positive rng 250.0 10.0) );
    ]
    @ List.map (fun (w, s) -> (w *. 0.68, s)) base

let r2l_subclasses ~with_novel =
  let base =
    [
      ( 0.40,
        sub "r2l.guess_passwd" r2l (fun rng b ->
            b.cf.(c_service) <-
              (if Pn_util.Rng.bernoulli rng 0.6 then service_code "telnet"
               else service_code "pop3");
            b.nf.(f_duration) <- positive rng 2.0 2.0;
            (* A quarter of attempts are stealthy and leave no failed
               login count, keeping the subclass impure. *)
            b.nf.(f_num_failed_logins) <-
              (if Pn_util.Rng.bernoulli rng 0.75 then
                 1.0 +. Float.of_int (Pn_util.Rng.int rng 5)
               else 0.0);
            b.nf.(f_src_bytes) <- positive rng 120.0 40.0;
            b.nf.(f_dst_bytes) <- positive rng 300.0 100.0;
            b.nf.(f_count) <- positive rng 2.0 1.5) );
      ( 0.40,
        sub "r2l.warezclient" r2l (fun rng b ->
            b.cf.(c_service) <-
              (if Pn_util.Rng.bool rng then service_code "ftp" else service_code "ftp_data");
            b.cf.(c_logged_in) <- 1;
            b.nf.(f_duration) <- positive rng 300.0 200.0;
            b.nf.(f_hot) <- 1.0 +. Float.of_int (Pn_util.Rng.int rng 3);
            b.nf.(f_src_bytes) <- bytes rng 400.0;
            b.nf.(f_dst_bytes) <- bytes rng 300000.0;
            b.nf.(f_count) <- positive rng 2.0 1.5) );
      ( 0.12,
        sub "r2l.ftp_write" r2l (fun rng b ->
            b.cf.(c_service) <- service_code "ftp";
            b.cf.(c_logged_in) <- 1;
            b.nf.(f_duration) <- positive rng 60.0 40.0;
            b.nf.(f_hot) <- 2.0 +. Float.of_int (Pn_util.Rng.int rng 3);
            b.nf.(f_num_compromised) <- 1.0;
            b.nf.(f_src_bytes) <- positive rng 200.0 80.0) );
      ( 0.08,
        sub "r2l.imap" r2l (fun rng b ->
            b.cf.(c_service) <- service_code "other";
            b.nf.(f_duration) <- positive rng 1.0 1.0;
            b.nf.(f_src_bytes) <- positive rng 1000.0 300.0;
            b.nf.(f_dst_bytes) <- positive rng 300.0 150.0;
            b.nf.(f_serror_rate) <- rate rng 0.3 0.2) );
    ]
  in
  if not with_novel then base
  else
    (* The contest's test r2l mass is dominated by attacks unseen in
       training; snmpguess-style udp probing of community strings and
       http tunnelling that mimics normal browsing. *)
    [
      ( 0.58,
        sub ~test_only:true "r2l.snmpguess" r2l (fun rng b ->
            b.cf.(c_protocol) <- protocol_code "udp";
            b.cf.(c_service) <- service_code "private";
            b.nf.(f_duration) <- 0.0;
            b.nf.(f_src_bytes) <- positive rng 60.0 15.0;
            b.nf.(f_dst_bytes) <- positive rng 60.0 15.0;
            b.nf.(f_count) <- positive rng 6.0 4.0) );
      ( 0.14,
        sub ~test_only:true "r2l.httptunnel" r2l (fun rng b ->
            b.cf.(c_logged_in) <- 1;
            b.nf.(f_duration) <- positive rng 15.0 10.0;
            b.nf.(f_src_bytes) <- bytes rng 800.0;
            b.nf.(f_dst_bytes) <- bytes rng 5000.0) );
    ]
    @ List.map (fun (w, s) -> (w *. 0.28, s)) base

let u2r_subclasses =
  [
    ( 0.7,
      sub "u2r.buffer_overflow" u2r (fun rng b ->
          b.cf.(c_service) <- service_code "telnet";
          b.cf.(c_logged_in) <- 1;
          b.cf.(c_root_shell) <- 1;
          b.nf.(f_duration) <- positive rng 180.0 120.0;
          b.nf.(f_hot) <- 10.0 +. Float.of_int (Pn_util.Rng.int rng 20);
          b.nf.(f_num_compromised) <- 1.0 +. Float.of_int (Pn_util.Rng.int rng 3);
          b.nf.(f_src_bytes) <- bytes rng 1500.0) );
    ( 0.3,
      sub "u2r.rootkit" u2r (fun rng b ->
          b.cf.(c_logged_in) <- 1;
          b.cf.(c_root_shell) <- 1;
          b.nf.(f_duration) <- positive rng 60.0 60.0;
          b.nf.(f_num_compromised) <- 2.0 +. Float.of_int (Pn_util.Rng.int rng 5);
          b.nf.(f_hot) <- 3.0 +. Float.of_int (Pn_util.Rng.int rng 5)) );
  ]

(* ------------------------------------------------------------------ *)
(* Mixtures and generation                                              *)
(* ------------------------------------------------------------------ *)

(* (class weight, submixture) for the training distribution (the 10 %
   contest sample) and for the shifted test distribution. *)
let train_mixture =
  [
    (0.197, normal_subclasses);
    (0.7924, dos_subclasses);
    (0.0083, probe_subclasses ~with_novel:false);
    (0.0023, r2l_subclasses ~with_novel:false);
    (0.0001, u2r_subclasses);
  ]

let test_mixture =
  [
    (0.195, normal_subclasses);
    (0.739, dos_subclasses);
    (0.0134, probe_subclasses ~with_novel:true);
    (0.052, r2l_subclasses ~with_novel:true);
    (0.0006, u2r_subclasses);
  ]

let normalize weighted =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 weighted in
  List.map (fun (w, s) -> (w /. total, s)) weighted

let pick rng weighted =
  let weighted = normalize weighted in
  let u = Pn_util.Rng.float rng 1.0 in
  let rec go acc = function
    | [] -> snd (List.hd weighted)
    | (w, s) :: rest -> if u < acc +. w then s else go (acc +. w) rest
  in
  go 0.0 weighted

let generate mixture ~seed ~n =
  let rng = Pn_util.Rng.create seed in
  let num_cols = Array.init n_numeric (fun _ -> Array.make n 0.0) in
  let cat_cols = Array.init n_categorical (fun _ -> Array.make n 0) in
  let labels = Array.make n 0 in
  let buf = { nf = Array.make n_numeric 0.0; cf = Array.make n_categorical 0 } in
  for i = 0 to n - 1 do
    let submix = pick rng mixture in
    let subclass = pick rng (List.map (fun (w, s) -> (w, s)) submix) in
    background rng buf;
    subclass.fill rng buf;
    labels.(i) <- subclass.cls;
    for j = 0 to n_numeric - 1 do
      num_cols.(j).(i) <- buf.nf.(j)
    done;
    for j = 0 to n_categorical - 1 do
      cat_cols.(j).(i) <- buf.cf.(j)
    done
  done;
  let attrs =
    Array.append
      (Array.map Pn_data.Attribute.numeric numeric_names)
      (Array.init n_categorical (fun j ->
           Pn_data.Attribute.categorical categorical_names.(j) categorical_values.(j)))
  in
  let columns =
    Array.append
      (Array.map (fun c -> Pn_data.Dataset.Num c) num_cols)
      (Array.map (fun c -> Pn_data.Dataset.Cat c) cat_cols)
  in
  Pn_data.Dataset.create ~attrs ~columns ~labels ~classes ()

(* [pick] on the outer mixture must choose a submixture, then a subclass
   within it; wrap the outer layer so both levels use the same machinery. *)
let generate_from class_mixture ~seed ~n =
  let mixture =
    List.map (fun (w, subs) -> (w, subs)) class_mixture
  in
  generate mixture ~seed ~n

let train ~seed ~n = generate_from train_mixture ~seed ~n

let test ~seed ~n = generate_from test_mixture ~seed ~n

let subclass_names ~test_only =
  let all =
    List.concat_map snd (train_mixture @ if test_only then test_mixture else [])
  in
  let names =
    List.filter_map
      (fun (_, s) -> if s.test_only = test_only then Some s.name else None)
      all
  in
  List.sort_uniq compare names
