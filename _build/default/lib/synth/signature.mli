(** Peak-shaped signature sampling for the synthetic models (§3.2).

    A subclass's signature on a numeric attribute is a set of disjoint,
    uniformly spaced peaks of a given total width and distribution shape
    (the paper's d-shape parameter: rectangular, triangular or
    Gaussian). *)

type shape = Rectangular | Triangular | Gaussian

val shape_name : shape -> string

type peaks = { centers : float array; width : float; shape : shape }

(** [make ~n_peaks ~total_width ~domain ~shape ~phase] places [n_peaks]
    disjoint peaks of combined width [total_width] evenly across
    [0, domain). [phase] ∈ [0,1) shifts the comb so different subclasses
    get different (still disjoint) peak positions. *)
val make : n_peaks:int -> total_width:float -> domain:float -> shape:shape -> phase:float -> peaks

(** [at_centers ~centers ~width ~shape] places peaks of width [width] at
    explicit centers (used when several subclasses share an attribute and
    disjointness must be guaranteed by construction). *)
val at_centers : centers:float array -> width:float -> shape:shape -> peaks

(** [sample t rng] draws a value from a uniformly chosen peak. *)
val sample : peaks -> Pn_util.Rng.t -> float

(** [sample_peak t rng k] draws from peak [k]. *)
val sample_peak : peaks -> Pn_util.Rng.t -> int -> float

(** [contains t v] is true when [v] lies inside some peak. *)
val contains : peaks -> float -> bool

(** [intervals t] is the list of (lo, hi) peak intervals, ascending. *)
val intervals : peaks -> (float * float) list
