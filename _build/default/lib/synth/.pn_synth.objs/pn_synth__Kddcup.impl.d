lib/synth/kddcup.ml: Array Float List Pn_data Pn_util String
