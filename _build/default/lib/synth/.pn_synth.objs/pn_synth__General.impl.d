lib/synth/general.ml: Array Format Pn_data Pn_util Printf Signature
