lib/synth/categorical.ml: Array Format Pn_data Pn_util Printf
