lib/synth/signature.ml: Array Float List Pn_util
