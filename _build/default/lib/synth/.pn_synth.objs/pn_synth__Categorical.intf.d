lib/synth/categorical.mli: Format Pn_data
