lib/synth/signature.mli: Pn_util
