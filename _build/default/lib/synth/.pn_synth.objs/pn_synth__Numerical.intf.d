lib/synth/numerical.mli: Format Pn_data Signature
