lib/synth/kddcup.mli: Pn_data
