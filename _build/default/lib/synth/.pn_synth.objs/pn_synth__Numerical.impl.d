lib/synth/numerical.ml: Array Format Pn_data Pn_util Printf Signature
