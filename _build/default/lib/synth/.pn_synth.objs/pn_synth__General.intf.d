lib/synth/general.mli: Format Pn_data Signature
