type spec = {
  tc : int;
  nsptc : int;
  tr : float;
  ntc : int;
  nspntc : int;
  nr : float;
  shape : Signature.shape;
  target_fraction : float;
}

let domain = 100.0

let classes = [| "NC"; "C" |]

let target_class = 1

let base =
  {
    tc = 1;
    nsptc = 4;
    tr = 0.2;
    ntc = 2;
    nspntc = 3;
    nr = 0.2;
    shape = Signature.Triangular;
    target_fraction = 0.003;
  }

let nsyn = function
  | 1 -> { base with nsptc = 1 }
  | 2 -> base
  | 3 -> { base with nspntc = 4 }
  | 4 -> { base with nspntc = 5 }
  | 5 -> { base with ntc = 3; nspntc = 4 }
  | 6 -> { base with ntc = 3; nspntc = 5 }
  | k -> invalid_arg (Printf.sprintf "Numerical.nsyn: no preset nsyn%d" k)

let with_widths spec ~tr ~nr = { spec with tr; nr }

(* The signature combs of all subclasses, derived deterministically from
   the spec so train and test share the exact model. *)
let build_peaks spec =
  let target =
    Array.init spec.tc (fun k ->
        Signature.make ~n_peaks:spec.nsptc ~total_width:spec.tr ~domain
          ~shape:spec.shape
          ~phase:(float_of_int k /. float_of_int (max 1 spec.tc)))
  in
  let non_target =
    Array.init spec.ntc (fun j ->
        Signature.make ~n_peaks:spec.nspntc ~total_width:spec.nr ~domain
          ~shape:spec.shape
          ~phase:(0.37 +. (float_of_int j /. float_of_int (max 1 spec.ntc))))
  in
  (target, non_target)

let generate spec ~seed ~n =
  let rng = Pn_util.Rng.create seed in
  let n_attrs = spec.tc + spec.ntc in
  let target_peaks, non_target_peaks = build_peaks spec in
  let attrs =
    Array.init n_attrs (fun j ->
        Pn_data.Attribute.numeric (Printf.sprintf "a%d" j))
  in
  let columns = Array.init n_attrs (fun _ -> Array.make n 0.0) in
  let labels = Array.make n 0 in
  for i = 0 to n - 1 do
    for j = 0 to n_attrs - 1 do
      columns.(j).(i) <- Pn_util.Rng.float rng domain
    done;
    if Pn_util.Rng.bernoulli rng spec.target_fraction then begin
      labels.(i) <- target_class;
      let s = Pn_util.Rng.int rng spec.tc in
      columns.(s).(i) <- Signature.sample target_peaks.(s) rng
    end
    else begin
      let s = Pn_util.Rng.int rng spec.ntc in
      columns.(spec.tc + s).(i) <- Signature.sample non_target_peaks.(s) rng
    end
  done;
  Pn_data.Dataset.create ~attrs
    ~columns:(Array.map (fun c -> Pn_data.Dataset.Num c) columns)
    ~labels ~classes ()

let pp_spec ppf spec =
  Format.fprintf ppf "tc=%d nsptc=%d tr=%.1f ntc=%d nspntc=%d nr=%.1f %s %.2f%%"
    spec.tc spec.nsptc spec.tr spec.ntc spec.nspntc spec.nr
    (Signature.shape_name spec.shape)
    (100.0 *. spec.target_fraction)
