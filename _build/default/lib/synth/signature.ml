type shape = Rectangular | Triangular | Gaussian

let shape_name = function
  | Rectangular -> "rectangular"
  | Triangular -> "triangular"
  | Gaussian -> "gaussian"

type peaks = { centers : float array; width : float; shape : shape }

let make ~n_peaks ~total_width ~domain ~shape ~phase =
  if n_peaks <= 0 then invalid_arg "Signature.make: n_peaks must be positive";
  let width = total_width /. float_of_int n_peaks in
  let centers =
    Array.init n_peaks (fun i ->
        (* Even spacing with a phase offset, kept away from the domain
           edges so the full peak fits inside. *)
        let slot = (float_of_int i +. 0.5 +. (0.8 *. phase)) /. float_of_int n_peaks in
        let c = slot *. domain in
        Float.max (width /. 2.0) (Float.min (domain -. (width /. 2.0)) c))
    |> Array.map (fun c -> c)
  in
  { centers; width; shape }

let at_centers ~centers ~width ~shape = { centers; width; shape }

let unit_sample shape rng =
  match shape with
  | Rectangular -> Pn_util.Rng.float rng 1.0
  | Triangular -> Pn_util.Rng.triangular rng
  | Gaussian ->
    (* Clamp a N(0.5, 0.18) draw into [0,1) so the peak stays disjoint. *)
    let v = 0.5 +. (0.18 *. Pn_util.Rng.gaussian rng) in
    Float.max 0.0 (Float.min 0.999999 v)

let sample_peak t rng k =
  let u = unit_sample t.shape rng in
  t.centers.(k) +. ((u -. 0.5) *. t.width)

let sample t rng =
  let k = Pn_util.Rng.int rng (Array.length t.centers) in
  sample_peak t rng k

let contains t v =
  (* The half-width comparison needs an ulp of slack: samples at a peak's
     exact edge can round a hair past width/2. *)
  let slack = 1e-9 *. (1.0 +. Float.abs v) in
  Array.exists (fun c -> Float.abs (v -. c) <= (t.width /. 2.0) +. slack) t.centers

let intervals t =
  let list =
    Array.to_list
      (Array.map (fun c -> (c -. (t.width /. 2.0), c +. (t.width /. 2.0))) t.centers)
  in
  List.sort compare list
