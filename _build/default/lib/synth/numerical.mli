(** The numeric-only synthetic model of §3.2.1 and Table 1.

    Both the target class C and the non-target class NC are unions of
    subclasses. Each subclass is distinguished by disjoint signature peaks
    on its own dedicated attribute; every record is uniform on all
    attributes that do not distinguish its own subclass. The dataset has
    [tc + ntc] numeric attributes over the domain [0, 100): attribute k
    (< tc) distinguishes target subclass k, attribute tc + j distinguishes
    non-target subclass j. *)

type spec = {
  tc : int;  (** number of target subclasses *)
  nsptc : int;  (** disjoint signatures per target subclass *)
  tr : float;  (** total peak width per target subclass *)
  ntc : int;  (** number of non-target subclasses *)
  nspntc : int;  (** disjoint signatures per non-target subclass *)
  nr : float;  (** total peak width per non-target subclass *)
  shape : Signature.shape;
  target_fraction : float;  (** proportion of class C, 0.003 in the paper *)
}

val domain : float

(** [classes] is [| "NC"; "C" |]; the target class index is 1. *)
val classes : string array

val target_class : int

(** The paper's Table 1 presets, in order nsyn1 … nsyn6. *)
val nsyn : int -> spec

(** [with_widths spec ~tr ~nr] overrides the width parameters (Figure 1 /
    Table 2 sweeps). *)
val with_widths : spec -> tr:float -> nr:float -> spec

(** [generate spec ~seed ~n] draws [n] records. Generation is
    deterministic in [seed]; train/test sets come from different seeds of
    the identical model, as in the paper. *)
val generate : spec -> seed:int -> n:int -> Pn_data.Dataset.t

val pp_spec : Format.formatter -> spec -> unit
