type class_spec = { na : int; nspa : int; words : int; vocab : int }

type spec = {
  target : class_spec;
  non_target : class_spec;
  target_fraction : float;
}

let classes = [| "NC"; "C" |]

let target_class = 1

let coa k =
  let target na nspa = { na; nspa; words = 2; vocab = 400 } in
  let non_target na nspa = { na; nspa; words = 2; vocab = 100 } in
  match k with
  | 1 -> { target = target 1 3; non_target = non_target 2 3; target_fraction = 0.003 }
  | 2 -> { target = target 1 3; non_target = non_target 3 3; target_fraction = 0.003 }
  | 3 -> { target = target 1 3; non_target = non_target 4 3; target_fraction = 0.003 }
  | 4 -> { target = target 1 4; non_target = non_target 2 4; target_fraction = 0.003 }
  | 5 -> { target = target 1 4; non_target = non_target 3 4; target_fraction = 0.003 }
  | 6 -> { target = target 1 4; non_target = non_target 4 4; target_fraction = 0.003 }
  | _ -> invalid_arg (Printf.sprintf "Categorical.coa: no preset coa%d" k)

let coad k =
  let cls na nspa vocab = { na; nspa; words = 2; vocab } in
  match k with
  | 1 -> { target = cls 2 4 400; non_target = cls 4 4 400; target_fraction = 0.003 }
  | 2 -> { target = cls 2 4 400; non_target = cls 4 4 100; target_fraction = 0.003 }
  | 3 -> { target = cls 2 4 100; non_target = cls 4 4 400; target_fraction = 0.003 }
  | 4 -> { target = cls 2 4 100; non_target = cls 4 4 100; target_fraction = 0.003 }
  | _ -> invalid_arg (Printf.sprintf "Categorical.coad: no preset coad%d" k)

(* A subclass's model: for each of its two attributes, [nspa] disjoint
   word sets of [words] values. Word codes are assigned deterministically
   from the low end of the vocabulary with a per-subclass stride so that
   distinct subclasses (which own distinct attributes anyway) and
   distinct signatures never share words. *)
type subclass_sig = { attr_lo : int; attr_hi : int; word_sets : (int array * int array) array }

let build_signatures spec =
  let make_class ~cls_spec ~first_attr ~n_sub =
    Array.init n_sub (fun s ->
        let attr_lo = first_attr + (2 * s) in
        let attr_hi = attr_lo + 1 in
        let word_sets =
          Array.init cls_spec.nspa (fun g ->
              let base = g * cls_spec.words in
              ( Array.init cls_spec.words (fun w -> base + w),
                Array.init cls_spec.words (fun w -> base + w) ))
        in
        { attr_lo; attr_hi; word_sets })
  in
  let target = make_class ~cls_spec:spec.target ~first_attr:0 ~n_sub:spec.target.na in
  let non_target =
    make_class ~cls_spec:spec.non_target
      ~first_attr:(2 * spec.target.na)
      ~n_sub:spec.non_target.na
  in
  (target, non_target)

let generate spec ~seed ~n =
  let rng = Pn_util.Rng.create seed in
  let n_target_attrs = 2 * spec.target.na in
  let n_attrs = n_target_attrs + (2 * spec.non_target.na) in
  let vocab_of j = if j < n_target_attrs then spec.target.vocab else spec.non_target.vocab in
  let attrs =
    Array.init n_attrs (fun j ->
        Pn_data.Attribute.categorical
          (Printf.sprintf "w%d" j)
          (Array.init (vocab_of j) (fun v -> Printf.sprintf "v%d" v)))
  in
  let target_sigs, non_target_sigs = build_signatures spec in
  let columns = Array.init n_attrs (fun _ -> Array.make n 0) in
  let labels = Array.make n 0 in
  let emit i sigs subclass_count rng =
    let s = Pn_util.Rng.int rng subclass_count in
    let sc = sigs.(s) in
    let lo_words, hi_words = sc.word_sets.(Pn_util.Rng.int rng (Array.length sc.word_sets)) in
    columns.(sc.attr_lo).(i) <- Pn_util.Rng.choose rng lo_words;
    columns.(sc.attr_hi).(i) <- Pn_util.Rng.choose rng hi_words
  in
  for i = 0 to n - 1 do
    for j = 0 to n_attrs - 1 do
      columns.(j).(i) <- Pn_util.Rng.int rng (vocab_of j)
    done;
    if Pn_util.Rng.bernoulli rng spec.target_fraction then begin
      labels.(i) <- target_class;
      emit i target_sigs spec.target.na rng
    end
    else emit i non_target_sigs spec.non_target.na rng
  done;
  Pn_data.Dataset.create ~attrs
    ~columns:(Array.map (fun c -> Pn_data.Dataset.Cat c) columns)
    ~labels ~classes ()

let pp_spec ppf spec =
  Format.fprintf ppf "C: na=%d nspa=%d %d/%d; NC: na=%d nspa=%d %d/%d; %.2f%%"
    spec.target.na spec.target.nspa spec.target.words spec.target.vocab
    spec.non_target.na spec.non_target.nspa spec.non_target.words
    spec.non_target.vocab
    (100.0 *. spec.target_fraction)
