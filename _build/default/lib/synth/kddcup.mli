(** Synthetic stand-in for the KDDCUP'99 network-intrusion dataset (§4).

    The real contest data is unavailable offline; this simulator generates
    connection records with the same *structural* properties the paper's
    Section 4 exploits:

    - five classes (normal, dos, probe, r2l, u2r) at the contest's skew:
      r2l is 0.23 % and probe 0.83 % of the training data;
    - *impure presence signatures*: r2l attacks live on ftp/telnet/pop3
      services that dos floods and normal traffic also use, so precision
      requires learning the absence of dos/normal (the paper's motivating
      example);
    - a shifted test distribution (r2l 5.2 %, probe 1.34 %) whose r2l
      mass is dominated by *novel subclasses* absent from training
      (snmpguess, httptunnel), like the real contest test set;
    - 22 features mixing numeric traffic statistics and categorical
      protocol fields, named after their KDD counterparts.

    Subclass mixtures and feature distributions are documented inline and
    in DESIGN.md. *)

val classes : string array

(** Class indices: [normal = 0], [dos = 1], [probe = 2], [r2l = 3],
    [u2r = 4]. *)
val normal : int

val dos : int

val probe : int

val r2l : int

val u2r : int

(** [train ~seed ~n] draws a training set with the 10 %-sample class
    proportions (dos 79.2 %, normal 19.7 %, probe 0.83 %, r2l 0.23 %,
    u2r 0.01 %). *)
val train : seed:int -> n:int -> Pn_data.Dataset.t

(** [test ~seed ~n] draws a test set from the shifted distribution with
    novel attack subclasses. *)
val test : seed:int -> n:int -> Pn_data.Dataset.t

(** [subclass_names ~test_only] lists the attack subclasses generated
    (with [test_only] novel ones included or not), for documentation. *)
val subclass_names : test_only:bool -> string list
