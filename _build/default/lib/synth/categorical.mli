(** The categorical-only synthetic model of §3.2.2 (Figure 2, Table 3).

    Each class splits into [na] subclasses; each subclass is distinguished
    by [nspa] disjoint signatures over its own dedicated *pair* of
    attributes. A signature is a set of word combinations: [words] values
    per attribute, giving words² conjunctions per signature (the paper's
    nwps). Attribute vocabularies have [vocab] values ("2/400" in the
    paper reads: 2 words per signature out of a 400-word vocabulary).
    Records are uniform on all attributes that are not their subclass's
    pair. *)

type class_spec = {
  na : int;  (** subclasses *)
  nspa : int;  (** signatures per subclass *)
  words : int;  (** signature words per attribute (2 in all paper runs) *)
  vocab : int;  (** vocabulary size of this class's attributes *)
}

type spec = {
  target : class_spec;
  non_target : class_spec;
  target_fraction : float;
}

val classes : string array

val target_class : int

(** Presets for Table 3: [coa k] for k = 1..6 and [coad k] for k = 1..4. *)
val coa : int -> spec

val coad : int -> spec

val generate : spec -> seed:int -> n:int -> Pn_data.Dataset.t

val pp_spec : Format.formatter -> spec -> unit
