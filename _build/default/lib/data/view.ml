type t = { data : Dataset.t; idx : int array }

let all data = { data; idx = Pn_util.Arr.range (Dataset.n_records data) }

let of_indices data idx = { data; idx }

let size t = Array.length t.idx

let is_empty t = size t = 0

let record t k = t.idx.(k)

let filter t keep = { t with idx = Array.of_seq (Seq.filter keep (Array.to_seq t.idx)) }

let partition t pred =
  let yes = ref [] and no = ref [] in
  for k = Array.length t.idx - 1 downto 0 do
    let i = t.idx.(k) in
    if pred i then yes := i :: !yes else no := i :: !no
  done;
  ({ t with idx = Array.of_list !yes }, { t with idx = Array.of_list !no })

let total_weight t =
  Array.fold_left (fun acc i -> acc +. Dataset.weight t.data i) 0.0 t.idx

let class_weight t c =
  Array.fold_left
    (fun acc i -> if Dataset.label t.data i = c then acc +. Dataset.weight t.data i else acc)
    0.0 t.idx

let binary_weights t ~target =
  let pos = ref 0.0 and neg = ref 0.0 in
  Array.iter
    (fun i ->
      let w = Dataset.weight t.data i in
      if Dataset.label t.data i = target then pos := !pos +. w else neg := !neg +. w)
    t.idx;
  (!pos, !neg)

let count_class t c =
  Array.fold_left (fun acc i -> if Dataset.label t.data i = c then acc + 1 else acc) 0 t.idx

let iter t f = Array.iter f t.idx

let fold t init f = Array.fold_left f init t.idx

let sorted_by_num t ~col =
  let values = Array.map (fun i -> Dataset.num_value t.data ~col i) t.idx in
  let order = Pn_util.Arr.argsort_floats values in
  Array.map (fun k -> t.idx.(k)) order

let split t rng ~left_fraction =
  let n_classes = Dataset.n_classes t.data in
  let by_class = Array.make n_classes [] in
  (* Build per-class buckets in reverse so the final lists keep order. *)
  for k = Array.length t.idx - 1 downto 0 do
    let i = t.idx.(k) in
    let c = Dataset.label t.data i in
    by_class.(c) <- i :: by_class.(c)
  done;
  let left = ref [] and right = ref [] in
  Array.iter
    (fun bucket ->
      let a = Array.of_list bucket in
      Pn_util.Rng.shuffle rng a;
      let n = Array.length a in
      let k =
        if n >= 2 then
          (* Keep at least one record on each side of the split. *)
          max 1 (min (n - 1) (int_of_float (Float.round (left_fraction *. float_of_int n))))
        else int_of_float (Float.round (left_fraction *. float_of_int n))
      in
      for j = 0 to n - 1 do
        if j < k then left := a.(j) :: !left else right := a.(j) :: !right
      done)
    by_class;
  let finish l =
    let a = Array.of_list l in
    Array.sort compare a;
    { t with idx = a }
  in
  (finish !left, finish !right)

let materialize t = Dataset.subset t.data t.idx
