(** ARFF (Attribute-Relation File Format) import — the native format of
    the Weka lineage RIPPER and C4.5 belong to.

    Supported subset: [@relation], [@attribute name numeric|real|integer]
    and [@attribute name {v1,v2,…}] declarations, and a comma-separated
    [@data] section with optional single-quoted values. The class
    attribute defaults to the last declared one. Sparse rows, strings,
    dates and missing values ([?]) are not supported and raise
    [Parse_error] — rare-class data with missing values should be imputed
    upstream. *)

exception Parse_error of string

(** [parse_string ?class_attribute s] parses ARFF text. The class
    attribute must be nominal. *)
val parse_string : ?class_attribute:string -> string -> Dataset.t

(** [load ?class_attribute path] reads an ARFF file. Raises [Parse_error]
    or [Sys_error]. *)
val load : ?class_attribute:string -> string -> Dataset.t

(** [save ds path] writes the dataset as ARFF (relation "pnrule",
    class attribute last, named "class"). *)
val save : Dataset.t -> string -> unit
