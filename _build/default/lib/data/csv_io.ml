exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* Minimal CSV field splitting with double-quote escaping. *)
let split_line line =
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let n = String.length line in
  let rec plain i =
    if i >= n then finish ()
    else
      match line.[i] with
      | ',' ->
        fields := Buffer.contents buf :: !fields;
        Buffer.clear buf;
        plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then fail "unterminated quoted field"
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  and finish () =
    fields := Buffer.contents buf :: !fields;
    List.rev !fields
  in
  plain 0

let is_float s =
  match float_of_string_opt (String.trim s) with
  | Some _ -> true
  | None -> false

let parse_rows lines =
  match lines with
  | [] -> fail "empty input"
  | header :: rows ->
    let names = Array.of_list (split_line header) in
    let rows =
      List.filter_map
        (fun line ->
          if String.trim line = "" then None
          else begin
            let cells = Array.of_list (split_line line) in
            if Array.length cells <> Array.length names then
              fail "row has %d fields, header has %d" (Array.length cells)
                (Array.length names);
            Some cells
          end)
        rows
    in
    (names, Array.of_list rows)

let build ?class_column names rows =
  let n_cols = Array.length names in
  if n_cols = 0 then fail "no columns";
  if Array.length rows = 0 then fail "no data rows";
  let class_col =
    match class_column with
    | None -> n_cols - 1
    | Some name -> (
      match Array.find_index (String.equal name) names with
      | Some i -> i
      | None -> fail "class column %S not found" name)
  in
  let data_cols =
    Array.of_list (List.filter (fun j -> j <> class_col) (Array.to_list (Pn_util.Arr.range n_cols)))
  in
  let n = Array.length rows in
  (* Class table in first-seen order. *)
  let class_table = Hashtbl.create 8 in
  let class_names = ref [] in
  let intern_class s =
    match Hashtbl.find_opt class_table s with
    | Some i -> i
    | None ->
      let i = Hashtbl.length class_table in
      Hashtbl.add class_table s i;
      class_names := s :: !class_names;
      i
  in
  let labels = Array.map (fun row -> intern_class (String.trim row.(class_col))) rows in
  let attrs_and_columns =
    Array.map
      (fun j ->
        let name = names.(j) in
        let numeric =
          Array.for_all (fun row -> String.trim row.(j) = "" || is_float row.(j)) rows
          && Array.exists (fun row -> String.trim row.(j) <> "") rows
        in
        if numeric then begin
          let col =
            Array.map
              (fun row ->
                let cell = String.trim row.(j) in
                if cell = "" then 0.0 else float_of_string cell)
              rows
          in
          (Attribute.numeric name, Dataset.Num col)
        end
        else begin
          let table = Hashtbl.create 16 in
          let values = ref [] in
          let intern s =
            match Hashtbl.find_opt table s with
            | Some i -> i
            | None ->
              let i = Hashtbl.length table in
              Hashtbl.add table s i;
              values := s :: !values;
              i
          in
          let col = Array.map (fun row -> intern (String.trim row.(j))) rows in
          (Attribute.categorical name (Array.of_list (List.rev !values)), Dataset.Cat col)
        end)
      data_cols
  in
  ignore n;
  Dataset.create
    ~attrs:(Array.map fst attrs_and_columns)
    ~columns:(Array.map snd attrs_and_columns)
    ~labels
    ~classes:(Array.of_list (List.rev !class_names))
    ()

let parse_string ?class_column s =
  let names, rows = parse_rows (String.split_on_char '\n' s) in
  build ?class_column names rows

let load ?class_column path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let names, rows = parse_rows (List.rev !lines) in
  build ?class_column names rows

let escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let save (ds : Dataset.t) path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let headers =
        Array.to_list (Array.map (fun (a : Attribute.t) -> escape a.name) ds.attrs)
        @ [ "class" ]
      in
      output_string oc (String.concat "," headers);
      output_char oc '\n';
      for i = 0 to Dataset.n_records ds - 1 do
        let cells =
          Array.to_list
            (Array.mapi
               (fun j (a : Attribute.t) ->
                 match a.kind with
                 | Attribute.Numeric -> Printf.sprintf "%.9g" (Dataset.num_value ds ~col:j i)
                 | Attribute.Categorical values ->
                   escape values.(Dataset.cat_value ds ~col:j i))
               ds.attrs)
          @ [ escape ds.classes.(Dataset.label ds i) ]
        in
        output_string oc (String.concat "," cells);
        output_char oc '\n'
      done)
