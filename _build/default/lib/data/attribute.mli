(** Attribute descriptors for the columnar dataset engine. *)

type kind =
  | Numeric
      (** continuous-valued; stored as a float column *)
  | Categorical of string array
      (** finite-valued; stored as value indices into the name table *)

type t = { name : string; kind : kind }

val numeric : string -> t

val categorical : string -> string array -> t

(** [arity a] is the number of distinct values of a categorical attribute;
    raises [Invalid_argument] on a numeric one. *)
val arity : t -> int

val is_numeric : t -> bool

(** [value_name a v] is the display name of categorical value index [v];
    for numeric attributes it formats the float. *)
val value_name : t -> int -> string

val pp : Format.formatter -> t -> unit
