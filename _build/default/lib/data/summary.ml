type numeric_stats = { min : float; max : float; mean : float; stddev : float }

type attribute_summary =
  | Numeric_summary of numeric_stats
  | Categorical_summary of (string * float) list

let numeric_over ds ~col keep =
  let n = Dataset.n_records ds in
  let count = ref 0.0
  and sum = ref 0.0
  and sum2 = ref 0.0
  and mn = ref infinity
  and mx = ref neg_infinity in
  for i = 0 to n - 1 do
    if keep i then begin
      let v = Dataset.num_value ds ~col i in
      let w = Dataset.weight ds i in
      count := !count +. w;
      sum := !sum +. (w *. v);
      sum2 := !sum2 +. (w *. v *. v);
      if v < !mn then mn := v;
      if v > !mx then mx := v
    end
  done;
  if !count <= 0.0 then Numeric_summary { min = 0.0; max = 0.0; mean = 0.0; stddev = 0.0 }
  else begin
    let mean = !sum /. !count in
    let var = Float.max 0.0 ((!sum2 /. !count) -. (mean *. mean)) in
    Numeric_summary { min = !mn; max = !mx; mean; stddev = sqrt var }
  end

let categorical_over ds ~col keep =
  let attr = ds.Dataset.attrs.(col) in
  let arity = Attribute.arity attr in
  let weights = Array.make arity 0.0 in
  let total = ref 0.0 in
  for i = 0 to Dataset.n_records ds - 1 do
    if keep i then begin
      let w = Dataset.weight ds i in
      weights.(Dataset.cat_value ds ~col i) <- weights.(Dataset.cat_value ds ~col i) +. w;
      total := !total +. w
    end
  done;
  let ranked =
    List.sort
      (fun (_, a) (_, b) -> Float.compare b a)
      (List.filteri
         (fun _ (_, w) -> w > 0.0)
         (Array.to_list (Array.mapi (fun v w -> (Attribute.value_name attr v, w)) weights)))
  in
  let share (name, w) = (name, if !total > 0.0 then w /. !total else 0.0) in
  Categorical_summary (List.map share (Pn_util.Arr.take 8 ranked))

let over ds ~col keep =
  match ds.Dataset.attrs.(col).Attribute.kind with
  | Attribute.Numeric -> numeric_over ds ~col keep
  | Attribute.Categorical _ -> categorical_over ds ~col keep

let attribute ds ~col = over ds ~col (fun _ -> true)

let attribute_for_class ds ~col ~cls = over ds ~col (fun i -> Dataset.label ds i = cls)

let pp ppf ds =
  Format.fprintf ppf "@[<v>%a@," Dataset.pp_summary ds;
  Array.iteri
    (fun col (a : Attribute.t) ->
      match attribute ds ~col with
      | Numeric_summary s ->
        Format.fprintf ppf "  %-20s min=%.4g max=%.4g mean=%.4g sd=%.4g@," a.name
          s.min s.max s.mean s.stddev
      | Categorical_summary top ->
        Format.fprintf ppf "  %-20s %s@," a.name
          (String.concat ", "
             (List.map (fun (v, share) -> Printf.sprintf "%s:%.1f%%" v (100.0 *. share)) top)))
    ds.Dataset.attrs;
  Format.fprintf ppf "@]"
