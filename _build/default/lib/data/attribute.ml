type kind = Numeric | Categorical of string array

type t = { name : string; kind : kind }

let numeric name = { name; kind = Numeric }

let categorical name values = { name; kind = Categorical values }

let arity t =
  match t.kind with
  | Categorical values -> Array.length values
  | Numeric -> invalid_arg "Attribute.arity: numeric attribute"

let is_numeric t =
  match t.kind with
  | Numeric -> true
  | Categorical _ -> false

let value_name t v =
  match t.kind with
  | Categorical values ->
    if v >= 0 && v < Array.length values then values.(v)
    else Printf.sprintf "<value %d>" v
  | Numeric -> string_of_int v

let pp ppf t =
  match t.kind with
  | Numeric -> Format.fprintf ppf "%s: numeric" t.name
  | Categorical values ->
    Format.fprintf ppf "%s: categorical(%d)" t.name (Array.length values)
