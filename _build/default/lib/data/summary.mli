(** Per-attribute descriptive statistics, including per-class breakdowns
    — the first thing to look at when hunting a rare class's signature. *)

type numeric_stats = {
  min : float;
  max : float;
  mean : float;
  stddev : float;
}

type attribute_summary =
  | Numeric_summary of numeric_stats
  | Categorical_summary of (string * float) list
      (** values with their weighted share, most frequent first (top 8) *)

(** [attribute ds ~col] summarizes one column over the whole dataset. *)
val attribute : Dataset.t -> col:int -> attribute_summary

(** [attribute_for_class ds ~col ~cls] summarizes one column over the
    records of one class (weighted). *)
val attribute_for_class : Dataset.t -> col:int -> cls:int -> attribute_summary

(** [pp ds] prints the schema with class balance and per-attribute
    statistics. *)
val pp : Format.formatter -> Dataset.t -> unit
