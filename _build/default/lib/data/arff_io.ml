exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type decl =
  | Dnumeric of string
  | Dnominal of string * string array

let strip_comment line =
  match String.index_opt line '%' with
  | Some i when i = 0 -> ""
  | _ -> line

(* Attribute names and nominal values may be single-quoted. *)
let unquote s =
  let s = String.trim s in
  let n = String.length s in
  if n >= 2 && s.[0] = '\'' && s.[n - 1] = '\'' then String.sub s 1 (n - 2) else s

let parse_attribute_decl rest =
  (* rest = "name numeric" or "name {a,b,c}" — the name may be quoted and
     contain spaces. *)
  let rest = String.trim rest in
  let name, spec =
    if String.length rest > 0 && rest.[0] = '\'' then begin
      match String.index_from_opt rest 1 '\'' with
      | None -> fail "unterminated attribute name quote"
      | Some close ->
        ( String.sub rest 1 (close - 1),
          String.trim (String.sub rest (close + 1) (String.length rest - close - 1)) )
    end
    else begin
      match String.index_opt rest ' ' with
      | None -> (
        match String.index_opt rest '\t' with
        | None -> fail "attribute declaration needs a type: %S" rest
        | Some i ->
          ( String.sub rest 0 i,
            String.trim (String.sub rest (i + 1) (String.length rest - i - 1)) ))
      | Some i ->
        ( String.sub rest 0 i,
          String.trim (String.sub rest (i + 1) (String.length rest - i - 1)) )
    end
  in
  if String.length spec = 0 then fail "attribute %S has no type" name;
  if spec.[0] = '{' then begin
    if spec.[String.length spec - 1] <> '}' then fail "unterminated nominal set for %S" name;
    let inner = String.sub spec 1 (String.length spec - 2) in
    let values =
      List.map unquote (String.split_on_char ',' inner) |> Array.of_list
    in
    if Array.length values = 0 then fail "empty nominal set for %S" name;
    Dnominal (name, values)
  end
  else begin
    match String.lowercase_ascii spec with
    | "numeric" | "real" | "integer" -> Dnumeric name
    | other -> fail "unsupported attribute type %S for %S" other name
  end

let parse_string ?class_attribute text =
  let lines = String.split_on_char '\n' text in
  let decls = ref [] in
  let data = ref [] in
  let in_data = ref false in
  List.iter
    (fun raw ->
      let line = String.trim (strip_comment raw) in
      if line <> "" then begin
        let lower = String.lowercase_ascii line in
        if String.length lower >= 9 && String.sub lower 0 9 = "@relation" then ()
        else if String.length lower >= 10 && String.sub lower 0 10 = "@attribute" then
          decls := parse_attribute_decl (String.sub line 10 (String.length line - 10)) :: !decls
        else if lower = "@data" then in_data := true
        else if String.length lower >= 1 && lower.[0] = '@' then
          fail "unsupported directive: %S" line
        else if !in_data then data := line :: !data
        else fail "data before @data: %S" line
      end)
    lines;
  let decls = Array.of_list (List.rev !decls) in
  let rows = Array.of_list (List.rev !data) in
  if Array.length decls < 2 then fail "need at least one attribute and a class";
  if Array.length rows = 0 then fail "no data rows";
  let decl_name = function
    | Dnumeric n | Dnominal (n, _) -> n
  in
  let class_col =
    match class_attribute with
    | None -> Array.length decls - 1
    | Some name -> (
      match Array.find_index (fun d -> String.equal (decl_name d) name) decls with
      | Some i -> i
      | None -> fail "class attribute %S not declared" name)
  in
  let classes =
    match decls.(class_col) with
    | Dnominal (_, values) -> values
    | Dnumeric n -> fail "class attribute %S must be nominal" n
  in
  let nominal_code values cell name =
    match Array.find_index (String.equal cell) values with
    | Some i -> i
    | None -> fail "value %S not in the nominal set of %S" cell name
  in
  let n = Array.length rows in
  let parsed =
    Array.map
      (fun row ->
        let cells = Array.of_list (List.map unquote (String.split_on_char ',' row)) in
        if Array.length cells <> Array.length decls then
          fail "row has %d fields, expected %d: %S" (Array.length cells)
            (Array.length decls) row;
        Array.iter (fun c -> if c = "?" then fail "missing values (?) unsupported") cells;
        cells)
      rows
  in
  let labels =
    Array.map (fun cells -> nominal_code classes cells.(class_col) "class") parsed
  in
  let data_cols =
    Array.of_list
      (List.filter (fun j -> j <> class_col) (Array.to_list (Pn_util.Arr.range (Array.length decls))))
  in
  let attrs_and_columns =
    Array.map
      (fun j ->
        match decls.(j) with
        | Dnumeric name ->
          let col =
            Array.init n (fun i ->
                match float_of_string_opt parsed.(i).(j) with
                | Some v -> v
                | None -> fail "non-numeric cell %S in %S" parsed.(i).(j) name)
          in
          (Attribute.numeric name, Dataset.Num col)
        | Dnominal (name, values) ->
          let col = Array.init n (fun i -> nominal_code values parsed.(i).(j) name) in
          (Attribute.categorical name values, Dataset.Cat col))
      data_cols
  in
  Dataset.create
    ~attrs:(Array.map fst attrs_and_columns)
    ~columns:(Array.map snd attrs_and_columns)
    ~labels ~classes ()

let load ?class_attribute path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse_string ?class_attribute (In_channel.input_all ic))

let quote_if_needed s =
  if String.exists (fun c -> c = ' ' || c = ',' || c = '\'') s then
    "'" ^ String.concat "\\'" (String.split_on_char '\'' s) ^ "'"
  else s

let save (ds : Dataset.t) path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "@relation pnrule\n\n";
      Array.iter
        (fun (a : Attribute.t) ->
          match a.kind with
          | Attribute.Numeric ->
            Printf.fprintf oc "@attribute %s numeric\n" (quote_if_needed a.name)
          | Attribute.Categorical values ->
            Printf.fprintf oc "@attribute %s {%s}\n" (quote_if_needed a.name)
              (String.concat "," (Array.to_list (Array.map quote_if_needed values))))
        ds.attrs;
      Printf.fprintf oc "@attribute class {%s}\n\n@data\n"
        (String.concat "," (Array.to_list (Array.map quote_if_needed ds.classes)));
      for i = 0 to Dataset.n_records ds - 1 do
        let cells =
          Array.to_list
            (Array.mapi
               (fun j (a : Attribute.t) ->
                 match a.kind with
                 | Attribute.Numeric -> Printf.sprintf "%.9g" (Dataset.num_value ds ~col:j i)
                 | Attribute.Categorical values ->
                   quote_if_needed values.(Dataset.cat_value ds ~col:j i))
               ds.attrs)
          @ [ quote_if_needed ds.classes.(Dataset.label ds i) ]
        in
        output_string oc (String.concat "," cells);
        output_char oc '\n'
      done)
