(** CSV import/export.

    The format is plain comma-separated values with a header row. The
    class column is named by [~class_column] (default: the last column).
    A column is inferred numeric when every non-empty cell parses as a
    float; otherwise it is categorical with values in first-seen order. *)

exception Parse_error of string

(** [load ?class_column path] reads a CSV file into a dataset with unit
    weights. Raises [Parse_error] on malformed input and [Sys_error] on IO
    failure. *)
val load : ?class_column:string -> string -> Dataset.t

(** [save ds path] writes the dataset (class column last, named "class").
    Weights are not persisted. *)
val save : Dataset.t -> string -> unit

(** [parse_string ?class_column s] parses CSV text directly (for tests). *)
val parse_string : ?class_column:string -> string -> Dataset.t
