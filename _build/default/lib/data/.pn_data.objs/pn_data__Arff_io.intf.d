lib/data/arff_io.mli: Dataset
