lib/data/summary.ml: Array Attribute Dataset Float Format List Pn_util Printf String
