lib/data/builder.ml: Array Attribute Dataset List
