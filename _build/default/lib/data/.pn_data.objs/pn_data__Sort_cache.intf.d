lib/data/sort_cache.mli:
