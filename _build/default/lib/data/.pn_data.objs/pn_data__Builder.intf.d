lib/data/builder.mli: Attribute Dataset
