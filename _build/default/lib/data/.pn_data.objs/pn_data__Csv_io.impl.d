lib/data/csv_io.ml: Array Attribute Buffer Dataset Fun Hashtbl List Pn_util Printf String
