lib/data/attribute.mli: Format
