lib/data/view.ml: Array Dataset Float Pn_util Seq
