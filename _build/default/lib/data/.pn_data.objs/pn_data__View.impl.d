lib/data/view.ml: Array Bytes Dataset Float Int Pn_util
