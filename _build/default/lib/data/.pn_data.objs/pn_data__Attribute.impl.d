lib/data/attribute.ml: Array Format Printf
