lib/data/view.mli: Dataset Pn_util
