lib/data/dataset.ml: Array Attribute Format Pn_util Printf Sort_cache String
