lib/data/dataset.ml: Array Attribute Format Pn_util Printf String
