lib/data/arff_io.ml: Array Attribute Dataset Fun In_channel List Pn_util Printf String
