lib/data/dataset.mli: Attribute Format
