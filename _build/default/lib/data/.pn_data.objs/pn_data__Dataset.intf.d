lib/data/dataset.mli: Attribute Format Sort_cache
