lib/data/sort_cache.ml: Array Float Int
