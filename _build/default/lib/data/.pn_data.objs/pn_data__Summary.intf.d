lib/data/summary.mli: Dataset Format
