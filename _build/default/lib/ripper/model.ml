type t = {
  target : int;
  classes : string array;
  attrs : Pn_data.Attribute.t array;
  rules : Pn_rules.Rule_list.t;
  params : Params.t;
}

let predict t ds i = Pn_rules.Rule_list.any_match ds t.rules i

let predict_all t ds = Array.init (Pn_data.Dataset.n_records ds) (predict t ds)

let evaluate t ds =
  let acc = ref Pn_metrics.Confusion.zero in
  for i = 0 to Pn_data.Dataset.n_records ds - 1 do
    acc :=
      Pn_metrics.Confusion.add !acc
        ~actual:(Pn_data.Dataset.label ds i = t.target)
        ~predicted:(predict t ds i)
        ~weight:(Pn_data.Dataset.weight ds i)
  done;
  !acc

let n_rules t = Pn_rules.Rule_list.length t.rules

let pp ppf t =
  Format.fprintf ppf "@[<v>RIPPER model for class %S (%d rules)@,%a@]"
    t.classes.(t.target) (n_rules t)
    (Pn_rules.Rule_list.pp t.attrs)
    t.rules
