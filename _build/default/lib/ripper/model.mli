(** Trained RIPPER models: an ordered rule list for the target class with
    the non-target class as default. *)

type t = {
  target : int;
  classes : string array;
  attrs : Pn_data.Attribute.t array;
  rules : Pn_rules.Rule_list.t;
  params : Params.t;
}

(** [predict t ds i] is true when some rule matches record [i]. *)
val predict : t -> Pn_data.Dataset.t -> int -> bool

val predict_all : t -> Pn_data.Dataset.t -> bool array

val evaluate : t -> Pn_data.Dataset.t -> Pn_metrics.Confusion.t

val n_rules : t -> int

val pp : Format.formatter -> t -> unit
