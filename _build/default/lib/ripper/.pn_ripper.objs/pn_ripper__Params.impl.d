lib/ripper/params.ml: Format Pn_metrics
