lib/ripper/model.ml: Array Format Params Pn_data Pn_metrics Pn_rules
