lib/ripper/params.mli: Format
