lib/ripper/learner.ml: Float Fun List Logs Model Params Pn_data Pn_induct Pn_metrics Pn_rules Pn_util
