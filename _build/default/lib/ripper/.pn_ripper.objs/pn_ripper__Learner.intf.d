lib/ripper/learner.mli: Model Params Pn_data
