type t = {
  optimization_passes : int;
  grow_fraction : float;
  mdl_slack : float;
  seed : int;
  prune : bool;
  max_rules : int;
}

let default =
  {
    optimization_passes = 2;
    grow_fraction = 2.0 /. 3.0;
    mdl_slack = Pn_metrics.Mdl.default_slack;
    seed = 1;
    prune = true;
    max_rules = 256;
  }

let pp ppf t =
  Format.fprintf ppf "k=%d grow=%.2f slack=%.0f prune=%b seed=%d"
    t.optimization_passes t.grow_fraction t.mdl_slack t.prune t.seed
