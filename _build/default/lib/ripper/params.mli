(** RIPPER hyper-parameters (defaults follow Cohen '95 / RIPPER v2.5 as
    used in the paper: 2 optimization passes, 2/3 grow split, 64-bit MDL
    slack, one-sided numeric conditions only). *)

type t = {
  optimization_passes : int;  (** k in RIPPERk; the paper's default is 2 *)
  grow_fraction : float;  (** fraction of data used to grow (rest prunes) *)
  mdl_slack : float;  (** stop once DL exceeds the minimum by this *)
  seed : int;  (** RNG seed for the grow/prune splits *)
  prune : bool;  (** disable to get plain (overfitting) grow-only rules *)
  max_rules : int;  (** safety cap *)
}

val default : t

val pp : Format.formatter -> t -> unit
