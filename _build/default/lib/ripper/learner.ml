module RM = Pn_metrics.Rule_metric

let src = Logs.Src.create "ripper" ~doc:"RIPPER rule induction"

module Log = (val Logs.src_log src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* Growing                                                              *)
(* ------------------------------------------------------------------ *)

(* Grow [rule] to purity on [grow_view] by FOIL information gain. The
   gain of a refinement is measured against the current rule's own
   coverage, so the metric context tracks the shrinking covered set. *)
let grow_from ~target rule grow_view =
  let covered0 = Pn_rules.Rule.covered_of grow_view rule in
  let rec loop rule covered =
    let pos, neg = Pn_data.View.binary_weights covered ~target in
    if pos <= 0.0 || neg <= 0.0 then rule
    else begin
      let ctx = { RM.pos_total = pos; neg_total = neg } in
      match
        Pn_induct.Grower.best_condition ~allow_ranges:false ~current:rule
          ~metric:RM.Info_gain ~ctx ~target covered
      with
      | None -> rule
      | Some cand ->
        if cand.Pn_induct.Grower.score <= 1e-12 then rule
        else begin
          let rule = Pn_rules.Rule.add rule cand.Pn_induct.Grower.condition in
          let covered =
            Pn_data.View.filter covered (fun i ->
                Pn_rules.Condition.matches covered.Pn_data.View.data
                  cand.Pn_induct.Grower.condition i)
          in
          loop rule covered
        end
    end
  in
  loop rule covered0

let grow ~target grow_view = grow_from ~target Pn_rules.Rule.empty grow_view

(* ------------------------------------------------------------------ *)
(* Pruning                                                              *)
(* ------------------------------------------------------------------ *)

(* IREP*'s pruning value (p − n)/(p + n) of a rule on the prune set. *)
let prune_value ~target prune_view rule =
  let c = Pn_rules.Rule.coverage prune_view rule ~target in
  let s = RM.support c in
  if s <= 0.0 then -1.0 else (c.RM.pos -. c.RM.neg) /. s

(* Delete a final sequence of conditions: evaluate every prefix, keep the
   best value; ties prefer the shorter rule (more general). *)
let prune_rule ~target prune_view rule =
  let len = Pn_rules.Rule.n_conditions rule in
  if len = 0 || Pn_data.View.is_empty prune_view then rule
  else begin
    let best = ref rule and best_v = ref (prune_value ~target prune_view rule) in
    for keep = len - 1 downto 0 do
      let candidate = Pn_rules.Rule.truncate rule keep in
      let v = prune_value ~target prune_view candidate in
      if v >= !best_v then begin
        best := candidate;
        best_v := v
      end
    done;
    !best
  end

(* Generic pruning used by the optimization phase: choose the prefix of
   [rule] maximizing [value]. *)
let prune_by ~value rule =
  let len = Pn_rules.Rule.n_conditions rule in
  let best = ref rule and best_v = ref (value rule) in
  for keep = len - 1 downto 1 do
    let candidate = Pn_rules.Rule.truncate rule keep in
    let v = value candidate in
    if v >= !best_v then begin
      best := candidate;
      best_v := v
    end
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Description length of a rule list on the full training data          *)
(* ------------------------------------------------------------------ *)

let ruleset_dl ~n_candidates ds ~target rules =
  let rl = Pn_rules.Rule_list.of_list rules in
  let covered_pos = ref 0.0
  and covered_neg = ref 0.0
  and unc_pos = ref 0.0
  and unc_neg = ref 0.0 in
  for i = 0 to Pn_data.Dataset.n_records ds - 1 do
    let w = Pn_data.Dataset.weight ds i in
    let is_target = Pn_data.Dataset.label ds i = target in
    if Pn_rules.Rule_list.any_match ds rl i then
      if is_target then covered_pos := !covered_pos +. w
      else covered_neg := !covered_neg +. w
    else if is_target then unc_pos := !unc_pos +. w
    else unc_neg := !unc_neg +. w
  done;
  Pn_metrics.Mdl.ruleset_bits ~n_candidate_conditions:n_candidates
    ~rule_sizes:(List.map Pn_rules.Rule.n_conditions rules)
    ~covered:(!covered_pos +. !covered_neg)
    ~uncovered:(!unc_pos +. !unc_neg)
    ~fp:!covered_neg ~fn:!unc_pos

(* ------------------------------------------------------------------ *)
(* IREP* covering loop                                                  *)
(* ------------------------------------------------------------------ *)

(* Learn rules covering the positives still present in [remaining],
   appending to [rules0]. DL bookkeeping always spans the full rule list
   on the full training set. *)
let irep_loop ~params ~n_candidates ~rng ds ~target remaining rules0 =
  let rec loop remaining rules dl_min =
    if List.length rules >= params.Params.max_rules then List.rev rules
    else if fst (Pn_data.View.binary_weights remaining ~target) <= 0.0 then
      List.rev rules
    else begin
      let grow_view, prune_view =
        Pn_data.View.split remaining rng ~left_fraction:params.Params.grow_fraction
      in
      let rule = grow ~target grow_view in
      let rule =
        if params.Params.prune then prune_rule ~target prune_view rule else rule
      in
      let counts = Pn_rules.Rule.coverage remaining rule ~target in
      if Pn_rules.Rule.is_empty rule || counts.RM.pos <= 0.0 then List.rev rules
      else begin
        let rules' = rule :: rules in
        let dl = ruleset_dl ~n_candidates ds ~target (List.rev rules') in
        if dl > dl_min +. params.Params.mdl_slack then List.rev rules
        else begin
          Log.debug (fun m ->
              m "rule %d: %s (pos=%.1f neg=%.1f dl=%.1f)" (List.length rules)
                (Pn_rules.Rule.to_string ds.Pn_data.Dataset.attrs rule)
                counts.RM.pos counts.RM.neg dl);
          loop
            (Pn_rules.Rule.uncovered_of remaining rule)
            rules' (Float.min dl dl_min)
        end
      end
    end
  in
  let dl0 = ruleset_dl ~n_candidates ds ~target (List.rev rules0) in
  loop remaining (List.rev rules0) dl0

(* Deletion post-pass: drop rules (last first) whose removal does not
   increase the DL. *)
let simplify ~params ~n_candidates ds ~target rules =
  ignore params;
  let rec loop kept = function
    | [] -> List.rev kept
    | rule :: rest ->
      let with_rule = List.rev_append kept (rule :: rest) in
      let without_rule = List.rev_append kept rest in
      let dl_with = ruleset_dl ~n_candidates ds ~target with_rule in
      let dl_without = ruleset_dl ~n_candidates ds ~target without_rule in
      if dl_without <= dl_with then loop kept rest else loop (rule :: kept) rest
  in
  (* Examine from the last rule backwards, as Cohen does. *)
  List.rev (loop [] (List.rev rules))

(* ------------------------------------------------------------------ *)
(* Optimization phase                                                   *)
(* ------------------------------------------------------------------ *)

(* Weighted error of the full rule list on a view (used to prune
   replacement/revision against the whole rule set). Lower is better, so
   the prune objective returns its negation. *)
let ruleset_error view ~target rules =
  let rl = Pn_rules.Rule_list.of_list rules in
  Pn_data.View.fold view 0.0 (fun acc i ->
      let predicted = Pn_rules.Rule_list.any_match view.Pn_data.View.data rl i in
      let actual = Pn_data.Dataset.label view.Pn_data.View.data i = target in
      if predicted <> actual then acc +. Pn_data.Dataset.weight view.Pn_data.View.data i
      else acc)

let substitute rules i replacement =
  List.mapi (fun j r -> if j = i then replacement else r) rules

let remove_at rules i = List.filteri (fun j _ -> j <> i) rules

let optimize_pass ~params ~n_candidates ~rng ds ~target rules =
  let all = Pn_data.View.all ds in
  let rules = ref rules in
  let len = List.length !rules in
  for i = 0 to len - 1 do
    if i < List.length !rules then begin
      let current = List.nth !rules i in
      let others = remove_at !rules i in
      let others_rl = Pn_rules.Rule_list.of_list others in
      let grow_view, prune_view =
        Pn_data.View.split all rng ~left_fraction:params.Params.grow_fraction
      in
      (* Grow on what the other rules leave uncovered, so the variant
         focuses on this rule's share of the positives. *)
      let residual_grow =
        Pn_data.View.filter grow_view (fun r ->
            not (Pn_rules.Rule_list.any_match ds others_rl r))
      in
      let prune_objective variant_rule =
        let variant = substitute !rules i variant_rule in
        -.ruleset_error prune_view ~target variant
      in
      let replacement =
        let grown = grow ~target residual_grow in
        if Pn_rules.Rule.is_empty grown then None
        else Some (prune_by ~value:prune_objective grown)
      in
      let revision =
        let grown = grow_from ~target current residual_grow in
        if Pn_rules.Rule.is_empty grown then None
        else Some (prune_by ~value:prune_objective grown)
      in
      let candidates =
        current :: List.filter_map Fun.id [ replacement; revision ]
      in
      let scored =
        List.map
          (fun r ->
            let variant = simplify ~params ~n_candidates ds ~target (substitute !rules i r) in
            (ruleset_dl ~n_candidates ds ~target variant, variant))
          candidates
      in
      let best =
        List.fold_left
          (fun (bd, bv) (d, v) -> if d < bd then (d, v) else (bd, bv))
          (List.hd scored) (List.tl scored)
      in
      rules := snd best
    end
  done;
  !rules

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)
(* ------------------------------------------------------------------ *)

let train ?(params = Params.default) ds ~target =
  let n_candidates = Pn_induct.Grower.candidate_space_size ds in
  let rng = Pn_util.Rng.create params.Params.seed in
  let all = Pn_data.View.all ds in
  let rules = irep_loop ~params ~n_candidates ~rng ds ~target all [] in
  let rules = simplify ~params ~n_candidates ds ~target rules in
  let rules = ref rules in
  for pass = 1 to params.Params.optimization_passes do
    rules := optimize_pass ~params ~n_candidates ~rng ds ~target !rules;
    (* Re-cover positives the optimized rules lost. *)
    let rl = Pn_rules.Rule_list.of_list !rules in
    let uncovered =
      Pn_data.View.filter all (fun i -> not (Pn_rules.Rule_list.any_match ds rl i))
    in
    if fst (Pn_data.View.binary_weights uncovered ~target) > 0.0 then
      rules := irep_loop ~params ~n_candidates ~rng ds ~target uncovered !rules;
    rules := simplify ~params ~n_candidates ds ~target !rules;
    Log.debug (fun m -> m "after optimization pass %d: %d rules" pass (List.length !rules))
  done;
  {
    Model.target;
    classes = ds.Pn_data.Dataset.classes;
    attrs = ds.Pn_data.Dataset.attrs;
    rules = Pn_rules.Rule_list.of_list !rules;
    params;
  }
