(** RIPPER training (Cohen '95), for the binary task the paper evaluates:
    rules for the target class, non-target as default.

    The IREP* loop alternates growing a rule to purity on a random 2/3
    split (maximizing FOIL information gain) and pruning it on the
    remaining 1/3 (maximizing (p−n)/(p+n)); rule-set growth stops when the
    total description length exceeds the minimum seen by 64 bits. A
    deletion post-pass then drops rules that increase the DL, and k
    optimization passes rebuild each rule as a grown-from-scratch
    replacement or a grown-further revision, keeping the variant whose
    rule set has the smallest DL. Uncovered positives are re-covered with
    a final IREP* round after each optimization pass. *)

val train : ?params:Params.t -> Pn_data.Dataset.t -> target:int -> Model.t
