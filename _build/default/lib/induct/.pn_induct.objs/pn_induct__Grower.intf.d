lib/induct/grower.mli: Pn_data Pn_metrics Pn_rules Pn_util
