lib/induct/grower.ml: Array Float Pn_data Pn_metrics Pn_rules Pn_util
