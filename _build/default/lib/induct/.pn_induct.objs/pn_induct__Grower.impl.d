lib/induct/grower.ml: Array Hashtbl List Pn_data Pn_metrics Pn_rules
