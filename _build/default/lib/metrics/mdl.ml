let default_slack = 64.0

let theory_bits ~n_candidate_conditions ~rule_conditions =
  if rule_conditions <= 0 then 0.0
  else begin
    let k = float_of_int rule_conditions in
    let n = float_of_int (max n_candidate_conditions rule_conditions) in
    (* Send k (log₂ k, plus the customary correction for k itself needing
       a length prefix), then identify which k of the n candidate
       conditions appear. Scaled by 0.5: conditions sets are redundant, so
       attribute-ordering information is not charged in full. *)
    let send_k =
      let bits = Pn_util.Stats.log2 k in
      if rule_conditions > 1 && bits > 1.0 then bits +. (2.0 *. Pn_util.Stats.log2 bits)
      else bits
    in
    0.5 *. (send_k +. Pn_util.Stats.log_comb n k)
  end

let exception_bits ~covered ~uncovered ~fp ~fn =
  let covered = Float.max covered 0.0 and uncovered = Float.max uncovered 0.0 in
  let fp = Float.max 0.0 (Float.min fp covered) in
  let fn = Float.max 0.0 (Float.min fn uncovered) in
  let total = covered +. uncovered in
  let send_count n k =
    (* log₂(n+1) to transmit the error count, then the subset. *)
    if n <= 0.0 then 0.0
    else Pn_util.Stats.log2 (n +. 1.0) +. Pn_util.Stats.log_comb n k
  in
  if total <= 0.0 then 0.0 else send_count covered fp +. send_count uncovered fn

let ruleset_bits ~n_candidate_conditions ~rule_sizes ~covered ~uncovered ~fp ~fn =
  let theory =
    List.fold_left
      (fun acc k -> acc +. theory_bits ~n_candidate_conditions ~rule_conditions:k)
      0.0 rule_sizes
  in
  theory +. exception_bits ~covered ~uncovered ~fp ~fn
