lib/metrics/mdl.mli:
