lib/metrics/rule_metric.ml: Array List Pn_util String
