lib/metrics/mdl.ml: Float List Pn_util
