lib/metrics/rule_metric.mli:
