lib/metrics/pr_curve.mli:
