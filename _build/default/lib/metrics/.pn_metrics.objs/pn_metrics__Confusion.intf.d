lib/metrics/confusion.mli: Format
