lib/metrics/pr_curve.ml: Array List Pn_util
