lib/metrics/confusion.ml: Array Format
