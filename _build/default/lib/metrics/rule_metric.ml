type context = { pos_total : float; neg_total : float }

type counts = { pos : float; neg : float }

type kind = Z_number | Info_gain | Gini | Chi_squared | Laplace

let all_kinds = [ Z_number; Info_gain; Gini; Chi_squared; Laplace ]

let kind_name = function
  | Z_number -> "z-number"
  | Info_gain -> "info-gain"
  | Gini -> "gini"
  | Chi_squared -> "chi-squared"
  | Laplace -> "laplace"

let kind_of_string s =
  List.find_opt (fun k -> String.equal (kind_name k) s) all_kinds

let support c = c.pos +. c.neg

let accuracy c =
  let s = support c in
  if s <= 0.0 then 0.0 else c.pos /. s

let prior ctx =
  let t = ctx.pos_total +. ctx.neg_total in
  if t <= 0.0 then 0.0 else ctx.pos_total /. t

let z_number ctx c =
  let s = support c in
  if s <= 0.0 then 0.0
  else begin
    let p0 = prior ctx in
    let denom = p0 *. (1.0 -. p0) in
    if denom <= 0.0 then 0.0 else sqrt s *. (accuracy c -. p0) /. sqrt denom
  end

let info_gain ctx c =
  if c.pos <= 0.0 then 0.0
  else begin
    let p0 = prior ctx in
    if p0 <= 0.0 then 0.0
    else c.pos *. (Pn_util.Stats.log2 (accuracy c) -. Pn_util.Stats.log2 p0)
  end

let gini ctx c =
  (* Impurity decrease of splitting the remaining set into covered /
     uncovered, weighted by the branch sizes. *)
  let total = ctx.pos_total +. ctx.neg_total in
  if total <= 0.0 then 0.0
  else begin
    let gini_of pos neg =
      let s = pos +. neg in
      if s <= 0.0 then 0.0
      else begin
        let p = pos /. s in
        2.0 *. p *. (1.0 -. p)
      end
    in
    let covered = support c in
    let rest_pos = ctx.pos_total -. c.pos and rest_neg = ctx.neg_total -. c.neg in
    let rest = rest_pos +. rest_neg in
    gini_of ctx.pos_total ctx.neg_total
    -. ((covered /. total) *. gini_of c.pos c.neg)
    -. ((rest /. total) *. gini_of rest_pos rest_neg)
  end

let chi_squared ctx c =
  let total = ctx.pos_total +. ctx.neg_total in
  let covered = support c in
  if total <= 0.0 || covered <= 0.0 || covered >= total then 0.0
  else begin
    let cells =
      [|
        (c.pos, ctx.pos_total *. covered /. total);
        (c.neg, ctx.neg_total *. covered /. total);
        (ctx.pos_total -. c.pos, ctx.pos_total *. (total -. covered) /. total);
        (ctx.neg_total -. c.neg, ctx.neg_total *. (total -. covered) /. total);
      |]
    in
    let stat =
      Array.fold_left
        (fun acc (obs, exp) ->
          if exp <= 0.0 then acc else acc +. ((obs -. exp) ** 2.0 /. exp))
        0.0 cells
    in
    (* Sign the statistic so enrichment and depletion are distinguished. *)
    if accuracy c >= prior ctx then stat else -.stat
  end

let laplace c = (c.pos +. 1.0) /. (support c +. 2.0)

let eval kind ctx c =
  match kind with
  | Z_number -> z_number ctx c
  | Info_gain -> info_gain ctx c
  | Gini -> gini ctx c
  | Chi_squared -> chi_squared ctx c
  | Laplace -> laplace c
