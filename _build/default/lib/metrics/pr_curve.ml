type point = {
  threshold : float;
  recall : float;
  precision : float;
  f_measure : float;
}

let compute ?weights ~scores ~actual () =
  let n = Array.length scores in
  if Array.length actual <> n then invalid_arg "Pr_curve.compute: length mismatch";
  (match weights with
  | Some w when Array.length w <> n -> invalid_arg "Pr_curve.compute: weights length"
  | _ -> ());
  let weight i =
    match weights with
    | Some w -> w.(i)
    | None -> 1.0
  in
  let order = Pn_util.Arr.argsort_floats scores in
  let total_pos = ref 0.0 in
  for i = 0 to n - 1 do
    if actual.(i) then total_pos := !total_pos +. weight i
  done;
  if !total_pos <= 0.0 then []
  else begin
    (* Sweep thresholds from the highest score down; at threshold t the
       positive predictions are exactly the records with score > t, so
       each distinct score value contributes one curve point. *)
    let tp = ref 0.0 and fp = ref 0.0 in
    let points = ref [] in
    let k = ref (n - 1) in
    while !k >= 0 do
      let t = scores.(order.(!k)) in
      (* Absorb the whole tie group at t, then emit the point for
         "predict positive when score ≥ t". *)
      let tie_start = ref !k in
      while !tie_start >= 0 && scores.(order.(!tie_start)) = t do
        let i = order.(!tie_start) in
        if actual.(i) then tp := !tp +. weight i else fp := !fp +. weight i;
        decr tie_start
      done;
      let recall = !tp /. !total_pos in
      let precision = if !tp +. !fp <= 0.0 then 1.0 else !tp /. (!tp +. !fp) in
      let f =
        if recall +. precision <= 0.0 then 0.0
        else 2.0 *. recall *. precision /. (recall +. precision)
      in
      points := { threshold = t; recall; precision; f_measure = f } :: !points;
      k := !tie_start
    done;
    (* Highest threshold first. *)
    List.rev !points
  end

let best_f = function
  | [] -> invalid_arg "Pr_curve.best_f: empty curve"
  | first :: rest ->
    List.fold_left (fun acc p -> if p.f_measure > acc.f_measure then p else acc) first rest

let auc_pr curve =
  (* Integrate precision over recall; the curve arrives with recall
     ascending as thresholds descend. *)
  let rec go acc = function
    | a :: (b :: _ as rest) ->
      let dr = b.recall -. a.recall in
      go (acc +. (dr *. (a.precision +. b.precision) /. 2.0)) rest
    | [ _ ] | [] -> acc
  in
  match curve with
  | [] | [ _ ] -> 0.0
  | first :: _ ->
    (* Extend to recall 0 at the first point's precision. *)
    go (first.recall *. first.precision) curve

let at_threshold curve t =
  (* Points are ordered by descending threshold; the operating point for
     threshold t is the last point whose threshold is still ≥ t. *)
  let rec go best = function
    | [] -> best
    | p :: rest -> if p.threshold >= t then go (Some p) rest else best
  in
  go None curve
