(** Minimum-description-length accounting for rule sets, in the style of
    RIPPER (Cohen '95) / C4.5rules (Quinlan '93). Both the N-phase of
    PNrule and RIPPER's stopping criterion compare description lengths and
    stop once the DL exceeds the best seen so far by a slack (64 bits). *)

(** [theory_bits ~n_candidate_conditions ~rule_conditions] is the cost in
    bits of transmitting one rule with [rule_conditions] conjuncts chosen
    among [n_candidate_conditions] possible conjuncts, scaled by the
    customary 0.5 redundancy factor. 0 for the empty rule. *)
val theory_bits : n_candidate_conditions:int -> rule_conditions:int -> float

(** [exception_bits ~covered ~uncovered ~fp ~fn] is the cost of
    transmitting the classifier's errors: which of the [covered] weighted
    examples are false positives and which of the [uncovered] are false
    negatives, using the log₂ C(n, k) subset coding. *)
val exception_bits : covered:float -> uncovered:float -> fp:float -> fn:float -> float

(** [ruleset_bits ~n_candidate_conditions ~rule_sizes ~covered ~uncovered
    ~fp ~fn] is theory + exception bits for a whole rule set. *)
val ruleset_bits :
  n_candidate_conditions:int ->
  rule_sizes:int list ->
  covered:float ->
  uncovered:float ->
  fp:float ->
  fn:float ->
  float

(** The slack, in bits, that RIPPER and PNrule's N-phase allow the DL to
    grow above its minimum before stopping (Cohen's 64). *)
val default_slack : float
