type t = { tp : float; fp : float; fn : float; tn : float }

let zero = { tp = 0.0; fp = 0.0; fn = 0.0; tn = 0.0 }

let add t ~actual ~predicted ~weight =
  match (actual, predicted) with
  | true, true -> { t with tp = t.tp +. weight }
  | false, true -> { t with fp = t.fp +. weight }
  | true, false -> { t with fn = t.fn +. weight }
  | false, false -> { t with tn = t.tn +. weight }

let of_predictions ?weights ~actual ~predicted () =
  let n = Array.length actual in
  if Array.length predicted <> n then
    invalid_arg "Confusion.of_predictions: length mismatch";
  (match weights with
  | Some w when Array.length w <> n ->
    invalid_arg "Confusion.of_predictions: weights length mismatch"
  | _ -> ());
  let weight i =
    match weights with
    | Some w -> w.(i)
    | None -> 1.0
  in
  let acc = ref zero in
  for i = 0 to n - 1 do
    acc := add !acc ~actual:actual.(i) ~predicted:predicted.(i) ~weight:(weight i)
  done;
  !acc

let recall t = if t.tp +. t.fn <= 0.0 then 0.0 else t.tp /. (t.tp +. t.fn)

let precision t = if t.tp +. t.fp <= 0.0 then 0.0 else t.tp /. (t.tp +. t.fp)

let f_measure ?(beta = 1.0) t =
  let r = recall t and p = precision t in
  let b2 = beta *. beta in
  let denom = (b2 *. p) +. r in
  if denom <= 0.0 then 0.0 else (1.0 +. b2) *. p *. r /. denom

let total t = t.tp +. t.fp +. t.fn +. t.tn

let accuracy t =
  let n = total t in
  if n <= 0.0 then 0.0 else (t.tp +. t.tn) /. n

let pp ppf t =
  Format.fprintf ppf "tp=%.1f fp=%.1f fn=%.1f tn=%.1f R=%.4f P=%.4f F=%.4f" t.tp
    t.fp t.fn t.tn (recall t) (precision t) (f_measure t)
