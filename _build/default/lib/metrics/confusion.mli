(** Binary confusion counts and the recall / precision / F-measure family
    the paper evaluates with (van Rijsbergen's F with equal weights). All
    counts are weighted. *)

type t = {
  tp : float;  (** target predicted target *)
  fp : float;  (** non-target predicted target *)
  fn : float;  (** target predicted non-target *)
  tn : float;  (** non-target predicted non-target *)
}

val zero : t

(** [add t ~actual ~predicted ~weight] accumulates one decision. *)
val add : t -> actual:bool -> predicted:bool -> weight:float -> t

(** [of_predictions ?weights ~actual ~predicted ()] tallies two equal
    length arrays; weights default to 1. *)
val of_predictions :
  ?weights:float array -> actual:bool array -> predicted:bool array -> unit -> t

(** [recall t] is tp / (tp + fn); 0 when no positives exist. *)
val recall : t -> float

(** [precision t] is tp / (tp + fp); 0 when nothing was predicted. *)
val precision : t -> float

(** [f_measure ?beta t] is the weighted harmonic mean
    (1+β²)·R·P / (β²·P + R); [beta] defaults to 1 (the paper's 2RP/(R+P)).
    0 when both recall and precision are 0. *)
val f_measure : ?beta:float -> t -> float

val accuracy : t -> float

val total : t -> float

val pp : Format.formatter -> t -> unit
