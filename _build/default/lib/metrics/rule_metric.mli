(** Evaluation metrics for candidate rules.

    A candidate is summarized by the weighted positives/negatives it
    covers, judged against the class distribution of the data it was
    learned from (the "remaining" set in sequential covering). Section 2.2
    of the paper uses the Z-number by default and mentions information
    gain, gini, and chi-squared as alternatives; Section 4 switches to
    information gain for the KDD experiments. *)

type context = {
  pos_total : float;  (** weighted target examples in the remaining set *)
  neg_total : float;  (** weighted non-target examples in the remaining set *)
}

type counts = {
  pos : float;  (** weighted target examples the rule covers *)
  neg : float;  (** weighted non-target examples the rule covers *)
}

type kind =
  | Z_number
      (** √s·(a−p)/√(p(1−p)): significance of accuracy above the prior *)
  | Info_gain  (** FOIL-style: p·(log₂ a − log₂ prior) *)
  | Gini  (** weighted gini impurity reduction of the rule's split *)
  | Chi_squared  (** Pearson χ² of the 2×2 coverage table, signed *)
  | Laplace  (** (p+1)/(p+n+2) *)

val all_kinds : kind list

val kind_name : kind -> string

val kind_of_string : string -> kind option

(** [support c] is the rule's total covered weight. *)
val support : counts -> float

(** [accuracy c] is pos / (pos + neg); 0 on empty coverage. *)
val accuracy : counts -> float

(** [prior ctx] is the target fraction of the remaining set. *)
val prior : context -> float

(** [eval kind ctx counts] scores a candidate; higher is better. All
    metrics are signed so that rules *worse* than the prior score
    negatively (Laplace excepted, which is a plain accuracy estimate). *)
val eval : kind -> context -> counts -> float

(** [z_number ctx counts] is the paper's Z-number. *)
val z_number : context -> counts -> float
