(** Precision-recall analysis for score-producing classifiers.

    PNrule assigns each record a probability-like score and thresholds it
    (the paper uses 50 %); this module computes the full precision-recall
    trade-off so a deployment can pick its own operating point. *)

type point = {
  threshold : float;  (** predict positive when score ≥ threshold *)
  recall : float;
  precision : float;
  f_measure : float;
}

(** [compute ?weights ~scores ~actual ()] evaluates every distinct score
    as a threshold, descending, and returns the resulting curve (highest
    threshold first). Weighted when [weights] is given. Raises
    [Invalid_argument] on length mismatches. *)
val compute :
  ?weights:float array -> scores:float array -> actual:bool array -> unit -> point list

(** [best_f curve] is the point with the highest F-measure; raises
    [Invalid_argument] on an empty curve. *)
val best_f : point list -> point

(** [auc_pr curve] is the area under the precision-recall curve
    (trapezoidal over recall). 0 for fewer than two points. *)
val auc_pr : point list -> float

(** [at_threshold curve t] is the curve point whose threshold is the
    smallest one ≥ [t] (i.e. the operating point obtained by predicting
    positive above [t]); [None] if every threshold is below [t]. *)
val at_threshold : point list -> float -> point option
