(** C4.5rules (Quinlan '93 ch. 5): convert an overfitted decision tree to
    a ruleset.

    Every root-to-leaf path becomes a rule for the leaf's class. Each rule
    is generalized by greedily deleting conditions whose removal does not
    increase the pessimistic error estimate (CF = the tree's). Rules are
    deduplicated, a per-class subset is selected by greedy MDL
    minimization, classes are ordered by the false positives their
    rulesets commit, and the default class is the one most frequent among
    uncovered training records. *)

type t = {
  groups : (int * Pn_rules.Rule_list.t) list;
      (** (class, its rules) in evaluation order *)
  default_class : int;
  classes : string array;
  attrs : Pn_data.Attribute.t array;
  params : Params.t;
}

(** [train ?params ds] builds the unpruned tree and converts it. *)
val train : ?params:Params.t -> Pn_data.Dataset.t -> t

(** [of_tree tree ds] converts an existing (typically unpruned) tree using
    [ds] as the generalization set. The paper's C4.5rules-we variant
    builds the tree from the stratified set but generalizes on the
    unit-weight set; this entry point supports that. *)
val of_tree : Tree.t -> Pn_data.Dataset.t -> t

val predict : t -> Pn_data.Dataset.t -> int -> int

val evaluate_binary : t -> Pn_data.Dataset.t -> target:int -> Pn_metrics.Confusion.t

val n_rules : t -> int

val pp : Format.formatter -> t -> unit
