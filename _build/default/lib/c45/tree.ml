type split =
  | Num_threshold of { col : int; threshold : float }
  | Cat_multi of { col : int }

type node =
  | Leaf of { counts : float array; predicted : int }
  | Split of {
      split : split;
      children : node array;
      counts : float array;
      predicted : int;
    }

type t = {
  root : node;
  classes : string array;
  attrs : Pn_data.Attribute.t array;
  params : Params.t;
}

let node_counts = function
  | Leaf { counts; _ } | Split { counts; _ } -> counts

let majority counts =
  let best = ref 0 in
  Array.iteri (fun c w -> if w > counts.(!best) then best := c) counts;
  !best

let view_counts ~n_classes view =
  let counts = Array.make n_classes 0.0 in
  Pn_data.View.iter view (fun i ->
      let c = Pn_data.Dataset.label view.Pn_data.View.data i in
      counts.(c) <- counts.(c) +. Pn_data.Dataset.weight view.Pn_data.View.data i);
  counts

(* Candidate split of one attribute: its information gain, split info, and
   how to realize it. *)
type candidate = { split : split; gain : float; split_info : float }

let numeric_candidate ~params ~n_classes view ~col ~base_entropy ~total =
  let ds = view.Pn_data.View.data in
  let sorted = Pn_data.View.sorted_by_num view ~col in
  let n = Array.length sorted in
  if n < 2 then None
  else begin
    let left = Array.make n_classes 0.0 in
    let right = view_counts ~n_classes view in
    let left_w = ref 0.0 in
    let best = ref None in
    let boundaries = ref 0 in
    let k = ref 0 in
    while !k < n - 1 do
      let i = sorted.(!k) in
      let v = Pn_data.Dataset.num_value ds ~col i in
      let c = Pn_data.Dataset.label ds i in
      let w = Pn_data.Dataset.weight ds i in
      left.(c) <- left.(c) +. w;
      right.(c) <- right.(c) -. w;
      left_w := !left_w +. w;
      let v_next = Pn_data.Dataset.num_value ds ~col sorted.(!k + 1) in
      if v_next > v then begin
        incr boundaries;
        let right_w = total -. !left_w in
        if !left_w >= params.Params.min_objects && right_w >= params.Params.min_objects
        then begin
          let info =
            (!left_w /. total *. Pn_util.Stats.entropy left)
            +. (right_w /. total *. Pn_util.Stats.entropy right)
          in
          let gain = base_entropy -. info in
          match !best with
          | Some (g, _, _) when g >= gain -> ()
          | Some _ | None -> best := Some (gain, v, !left_w)
        end
      end;
      incr k
    done;
    match !best with
    | None -> None
    | Some (gain, threshold, left_at_best) ->
      (* Release 8 charges continuous splits for choosing among the
         candidate thresholds. *)
      let gain =
        if params.Params.r8_penalty && !boundaries > 1 then
          gain -. (Pn_util.Stats.log2 (float_of_int !boundaries) /. total)
        else gain
      in
      if gain <= 0.0 then None
      else begin
        (* The boundary scan already accumulated the left-branch weight
           when this threshold won; no second pass over the view. *)
        let split_info =
          Pn_util.Stats.entropy [| left_at_best; total -. left_at_best |]
        in
        Some { split = Num_threshold { col; threshold }; gain; split_info }
      end
  end

let categorical_candidate ~params ~n_classes view ~col ~arity ~base_entropy ~total =
  let ds = view.Pn_data.View.data in
  let per_value = Array.init arity (fun _ -> Array.make n_classes 0.0) in
  Pn_data.View.iter view (fun i ->
      let v = Pn_data.Dataset.cat_value ds ~col i in
      let c = Pn_data.Dataset.label ds i in
      per_value.(v).(c) <- per_value.(v).(c) +. Pn_data.Dataset.weight ds i);
  let branch_weights = Array.map Pn_util.Arr.sum_floats per_value in
  let populated =
    Array.fold_left
      (fun acc w -> if w >= params.Params.min_objects then acc + 1 else acc)
      0 branch_weights
  in
  if populated < 2 then None
  else begin
    let info = ref 0.0 in
    Array.iteri
      (fun v w ->
        if w > 0.0 then
          info := !info +. (w /. total *. Pn_util.Stats.entropy per_value.(v)))
      branch_weights;
    let info = !info in
    let gain = base_entropy -. info in
    if gain <= 0.0 then None
    else Some { split = Cat_multi { col }; gain; split_info = Pn_util.Stats.entropy branch_weights }
  end

let choose_split ~params ~n_classes view ~total ~counts =
  let base_entropy = Pn_util.Stats.entropy counts in
  if base_entropy <= 0.0 then None
  else begin
    let attrs = view.Pn_data.View.data.Pn_data.Dataset.attrs in
    let candidates = ref [] in
    Array.iteri
      (fun col (attr : Pn_data.Attribute.t) ->
        let cand =
          match attr.kind with
          | Pn_data.Attribute.Numeric ->
            numeric_candidate ~params ~n_classes view ~col ~base_entropy ~total
          | Pn_data.Attribute.Categorical values ->
            categorical_candidate ~params ~n_classes view ~col
              ~arity:(Array.length values) ~base_entropy ~total
        in
        match cand with
        | Some c -> candidates := c :: !candidates
        | None -> ())
      attrs;
    match !candidates with
    | [] -> None
    | cands ->
      (* C4.5's average-gain gate: only candidates with at least average
         gain compete on gain ratio, keeping ratio from favouring trivial
         splits. *)
      let cands = Array.of_list cands in
      let avg_gain = Pn_util.Arr.mean_of (fun c -> c.gain) cands in
      let eligible =
        Pn_util.Arr.filteri (fun _ c -> c.gain >= avg_gain -. 1e-9) cands
      in
      let pool = if Array.length eligible = 0 then cands else eligible in
      let score c =
        if params.Params.gain_ratio then
          if c.split_info <= 1e-9 then 0.0 else c.gain /. c.split_info
        else c.gain
      in
      Some (Pn_util.Arr.max_by score pool)
  end

let split_view view = function
  | Num_threshold { col; threshold } ->
    let le, gt =
      Pn_data.View.partition view (fun i ->
          Pn_data.Dataset.num_value view.Pn_data.View.data ~col i <= threshold)
    in
    [| le; gt |]
  | Cat_multi { col } ->
    let ds = view.Pn_data.View.data in
    let arity = Pn_data.Attribute.arity ds.Pn_data.Dataset.attrs.(col) in
    let buckets = Array.make arity [] in
    (* Reverse iteration keeps each bucket in index order. *)
    for k = Pn_data.View.size view - 1 downto 0 do
      let i = Pn_data.View.record view k in
      let v = Pn_data.Dataset.cat_value ds ~col i in
      buckets.(v) <- i :: buckets.(v)
    done;
    Array.map
      (fun bucket -> Pn_data.View.of_indices ds (Array.of_list bucket))
      buckets

let rec build ~params ~n_classes view ~depth =
  let counts = view_counts ~n_classes view in
  let total = Pn_util.Arr.sum_floats counts in
  let predicted = majority counts in
  let make_leaf () = Leaf { counts; predicted } in
  if
    total < 2.0 *. params.Params.min_objects
    || depth >= params.Params.max_depth
    || Array.exists (fun w -> w >= total -. 1e-9) counts
  then make_leaf ()
  else begin
    match choose_split ~params ~n_classes view ~total ~counts with
    | None -> make_leaf ()
    | Some { split; _ } ->
      let parts = split_view view split in
      let non_empty =
        Array.fold_left
          (fun acc v -> if Pn_data.View.is_empty v then acc else acc + 1)
          0 parts
      in
      if non_empty < 2 then make_leaf ()
      else begin
        let children =
          Array.map
            (fun part ->
              if Pn_data.View.is_empty part then Leaf { counts; predicted }
              else build ~params ~n_classes part ~depth:(depth + 1))
            parts
        in
        Split { split; children; counts; predicted }
      end
  end

(* ------------------------------------------------------------------ *)
(* Pessimistic-error pruning (subtree replacement)                      *)
(* ------------------------------------------------------------------ *)

let pessimistic_errors ~cf counts =
  let total = Pn_util.Arr.sum_floats counts in
  if total <= 0.0 then 0.0
  else begin
    let errors = total -. counts.(majority counts) in
    total *. Pn_util.Stats.binomial_upper ~cf ~n:total ~e:errors
  end

let rec subtree_estimate ~cf = function
  | Leaf { counts; _ } -> pessimistic_errors ~cf counts
  | Split { children; _ } ->
    Array.fold_left (fun acc child -> acc +. subtree_estimate ~cf child) 0.0 children

let rec prune_node ~cf node =
  match node with
  | Leaf _ -> node
  | Split ({ children; counts; predicted; _ } as s) ->
    let children = Array.map (prune_node ~cf) children in
    let pruned = Split { s with children } in
    let as_leaf = Leaf { counts; predicted } in
    (* C4.5 replaces when collapsing does not worsen the estimate by more
       than a tenth of a case. *)
    if pessimistic_errors ~cf counts <= subtree_estimate ~cf pruned +. 0.1 then as_leaf
    else pruned

let train_unpruned ?(params = Params.default) ds =
  let n_classes = Pn_data.Dataset.n_classes ds in
  let root = build ~params ~n_classes (Pn_data.View.all ds) ~depth:0 in
  { root; classes = ds.Pn_data.Dataset.classes; attrs = ds.Pn_data.Dataset.attrs; params }

let prune t = { t with root = prune_node ~cf:t.params.Params.cf t.root }

let train ?params ds = prune (train_unpruned ?params ds)

let rec predict_node ds i = function
  | Leaf { predicted; _ } -> predicted
  | Split { split; children; _ } -> (
    match split with
    | Num_threshold { col; threshold } ->
      let child = if Pn_data.Dataset.num_value ds ~col i <= threshold then 0 else 1 in
      predict_node ds i children.(child)
    | Cat_multi { col } ->
      predict_node ds i children.(Pn_data.Dataset.cat_value ds ~col i))

let predict t ds i = predict_node ds i t.root

let evaluate_binary t ds ~target =
  let acc = ref Pn_metrics.Confusion.zero in
  for i = 0 to Pn_data.Dataset.n_records ds - 1 do
    acc :=
      Pn_metrics.Confusion.add !acc
        ~actual:(Pn_data.Dataset.label ds i = target)
        ~predicted:(predict t ds i = target)
        ~weight:(Pn_data.Dataset.weight ds i)
  done;
  !acc

let paths t =
  let out = ref [] in
  let rec walk conds = function
    | Leaf { counts; predicted } ->
      if Pn_util.Arr.sum_floats counts > 0.0 then
        out := (List.rev conds, predicted, counts) :: !out
    | Split { split; children; _ } -> (
      match split with
      | Num_threshold { col; threshold } ->
        walk (Pn_rules.Condition.Num_le { col; threshold } :: conds) children.(0);
        (* "value > threshold" expressed as ≥ the next representable
           float, keeping the condition type closed under ≤ / ≥. *)
        walk
          (Pn_rules.Condition.Num_ge { col; threshold = Float.succ threshold } :: conds)
          children.(1)
      | Cat_multi { col } ->
        Array.iteri
          (fun value child ->
            walk (Pn_rules.Condition.Cat_eq { col; value } :: conds) child)
          children)
  in
  walk [] t.root;
  List.rev !out

let rec count_leaves = function
  | Leaf _ -> 1
  | Split { children; _ } -> Array.fold_left (fun acc c -> acc + count_leaves c) 0 children

let n_leaves t = count_leaves t.root

let rec node_depth = function
  | Leaf _ -> 0
  | Split { children; _ } ->
    1 + Array.fold_left (fun acc c -> max acc (node_depth c)) 0 children

let depth t = node_depth t.root

let pp ppf t =
  let rec go indent node =
    let pad = String.make indent ' ' in
    match node with
    | Leaf { counts; predicted } ->
      Format.fprintf ppf "%s-> %s (%.1f)@," pad t.classes.(predicted)
        (Pn_util.Arr.sum_floats counts)
    | Split { split; children; _ } -> (
      match split with
      | Num_threshold { col; threshold } ->
        Format.fprintf ppf "%s%s <= %.4g:@," pad t.attrs.(col).Pn_data.Attribute.name
          threshold;
        go (indent + 2) children.(0);
        Format.fprintf ppf "%s%s > %.4g:@," pad t.attrs.(col).Pn_data.Attribute.name
          threshold;
        go (indent + 2) children.(1)
      | Cat_multi { col } ->
        Array.iteri
          (fun v child ->
            Format.fprintf ppf "%s%s = %s:@," pad
              t.attrs.(col).Pn_data.Attribute.name
              (Pn_data.Attribute.value_name t.attrs.(col) v);
            go (indent + 2) child)
          children)
  in
  Format.fprintf ppf "@[<v>";
  go 0 t.root;
  Format.fprintf ppf "@]";
  ignore node_counts
