type t = {
  groups : (int * Pn_rules.Rule_list.t) list;
  default_class : int;
  classes : string array;
  attrs : Pn_data.Attribute.t array;
  params : Params.t;
}

let src = Logs.Src.create "c45rules" ~doc:"C4.5rules construction"

module Log = (val Logs.src_log src : Logs.LOG)

(* Pessimistic error rate of a rule for [cls]: upper confidence limit on
   the error among the weight it covers. An uncovered rule is useless, so
   it gets the worst possible estimate. *)
let pessimistic ~cf ~covered ~errors =
  if covered <= 0.0 then 1.0
  else Pn_util.Stats.binomial_upper ~cf ~n:covered ~e:errors

(* One pass over the data evaluates the rule and, simultaneously, every
   "drop one condition" variant: a record failing exactly one condition
   would be covered by the variant that drops it. *)
let drop_profiles ds ~cls conds =
  let k = Array.length conds in
  let covered = ref 0.0
  and errors = ref 0.0 in
  let drop_covered = Array.make k 0.0
  and drop_errors = Array.make k 0.0 in
  for i = 0 to Pn_data.Dataset.n_records ds - 1 do
    let failures = ref 0 and last_fail = ref (-1) in
    (try
       for j = 0 to k - 1 do
         if not (Pn_rules.Condition.matches ds conds.(j) i) then begin
           incr failures;
           last_fail := j;
           if !failures > 1 then raise Exit
         end
       done
     with Exit -> ());
    if !failures <= 1 then begin
      let w = Pn_data.Dataset.weight ds i in
      let err = if Pn_data.Dataset.label ds i = cls then 0.0 else w in
      if !failures = 0 then begin
        covered := !covered +. w;
        errors := !errors +. err;
        for j = 0 to k - 1 do
          drop_covered.(j) <- drop_covered.(j) +. w;
          drop_errors.(j) <- drop_errors.(j) +. err
        done
      end
      else begin
        let j = !last_fail in
        drop_covered.(j) <- drop_covered.(j) +. w;
        drop_errors.(j) <- drop_errors.(j) +. err
      end
    end
  done;
  (!covered, !errors, drop_covered, drop_errors)

let generalize ~cf ds ~cls conds =
  let rec loop conds =
    let k = Array.length conds in
    if k = 0 then conds
    else begin
      let covered, errors, drop_covered, drop_errors = drop_profiles ds ~cls conds in
      let current = pessimistic ~cf ~covered ~errors in
      let best = ref None in
      for j = 0 to k - 1 do
        let est = pessimistic ~cf ~covered:drop_covered.(j) ~errors:drop_errors.(j) in
        match !best with
        | Some (e, _) when e <= est -> ()
        | Some _ | None -> best := Some (est, j)
      done;
      match !best with
      | Some (est, j) when est <= current +. 1e-12 ->
        loop (Pn_util.Arr.filteri (fun idx _ -> idx <> j) conds)
      | Some _ | None -> conds
    end
  in
  loop conds

(* ------------------------------------------------------------------ *)
(* Per-class subset selection by MDL                                    *)
(* ------------------------------------------------------------------ *)

(* Hill-climb on the MDL of "this class's rules against the rest" by
   deleting rules. Exhaustive greedy would cost O(R³·N); instead each
   rule's covered-record list is materialized once, a per-record cover
   count makes a deletion's effect O(|rule coverage|), and backward
   passes repeat until a pass deletes nothing — the same fixed point the
   slow greedy reaches in practice. *)
let select_subset ~n_candidates ds ~cls rules =
  match rules with
  | [] -> []
  | _ ->
    let n = Pn_data.Dataset.n_records ds in
    let rules = Array.of_list rules in
    let r = Array.length rules in
    let coverage =
      Array.map
        (fun rule ->
          let hits = ref [] in
          for i = n - 1 downto 0 do
            if Pn_rules.Rule.matches ds rule i then hits := i :: !hits
          done;
          Array.of_list !hits)
        rules
    in
    let cover_count = Array.make n 0 in
    Array.iter (Array.iter (fun i -> cover_count.(i) <- cover_count.(i) + 1)) coverage;
    let total_pos = Pn_data.Dataset.class_weight ds cls in
    let total = Pn_data.Dataset.total_weight ds in
    let covered_pos = ref 0.0 and covered_all = ref 0.0 in
    for i = 0 to n - 1 do
      if cover_count.(i) > 0 then begin
        let w = Pn_data.Dataset.weight ds i in
        covered_all := !covered_all +. w;
        if Pn_data.Dataset.label ds i = cls then covered_pos := !covered_pos +. w
      end
    done;
    let selected = Array.make r true in
    let theory = ref 0.0 in
    Array.iter
      (fun rule ->
        theory :=
          !theory
          +. Pn_metrics.Mdl.theory_bits ~n_candidate_conditions:n_candidates
               ~rule_conditions:(Pn_rules.Rule.n_conditions rule))
      rules;
    let dl ~theory ~covered_pos ~covered_all =
      theory
      +. Pn_metrics.Mdl.exception_bits ~covered:covered_all
           ~uncovered:(total -. covered_all)
           ~fp:(covered_all -. covered_pos)
           ~fn:(total_pos -. covered_pos)
    in
    let changed = ref true in
    while !changed do
      changed := false;
      for j = r - 1 downto 0 do
        if selected.(j) then begin
          (* What the union loses if rule j goes: its uniquely covered
             records. *)
          let lost_pos = ref 0.0 and lost_all = ref 0.0 in
          Array.iter
            (fun i ->
              if cover_count.(i) = 1 then begin
                let w = Pn_data.Dataset.weight ds i in
                lost_all := !lost_all +. w;
                if Pn_data.Dataset.label ds i = cls then lost_pos := !lost_pos +. w
              end)
            coverage.(j);
          let theory_without =
            !theory
            -. Pn_metrics.Mdl.theory_bits ~n_candidate_conditions:n_candidates
                 ~rule_conditions:(Pn_rules.Rule.n_conditions rules.(j))
          in
          let dl_with =
            dl ~theory:!theory ~covered_pos:!covered_pos ~covered_all:!covered_all
          in
          let dl_without =
            dl ~theory:theory_without
              ~covered_pos:(!covered_pos -. !lost_pos)
              ~covered_all:(!covered_all -. !lost_all)
          in
          if dl_without <= dl_with then begin
            selected.(j) <- false;
            changed := true;
            theory := theory_without;
            covered_pos := !covered_pos -. !lost_pos;
            covered_all := !covered_all -. !lost_all;
            Array.iter (fun i -> cover_count.(i) <- cover_count.(i) - 1) coverage.(j)
          end
        end
      done
    done;
    List.filteri (fun j _ -> selected.(j)) (Array.to_list rules)

(* ------------------------------------------------------------------ *)
(* Assembly                                                             *)
(* ------------------------------------------------------------------ *)

let dedup rules =
  let rec loop seen = function
    | [] -> List.rev seen
    | r :: rest ->
      let duplicate =
        List.exists
          (fun s ->
            Pn_rules.Rule.n_conditions s = Pn_rules.Rule.n_conditions r
            && List.for_all2 Pn_rules.Condition.equal s.Pn_rules.Rule.conditions
                 r.Pn_rules.Rule.conditions)
          seen
      in
      if duplicate then loop seen rest else loop (r :: seen) rest
  in
  loop [] rules

let of_tree (tree : Tree.t) ds =
  let params = tree.Tree.params in
  let cf = params.Params.cf in
  let n_classes = Pn_data.Dataset.n_classes ds in
  let n_candidates = Pn_induct.Grower.candidate_space_size ds in
  let paths = Tree.paths tree in
  Log.debug (fun m -> m "%d paths from tree" (List.length paths));
  (* Group paths per class and cap each group at the heaviest
     [max_initial_rules_per_class] leaves. Overfitted trees on large noisy
     data shed thousands of 2-3-record shards; generalizing all of them is
     quadratic work for rules the MDL subset selection deletes anyway. *)
  let grouped = Array.make n_classes [] in
  List.iter
    (fun (conds, cls, counts) ->
      grouped.(cls) <- (Pn_util.Arr.sum_floats counts, conds) :: grouped.(cls))
    paths;
  let by_class = Array.make n_classes [] in
  Array.iteri
    (fun cls weighted_paths ->
      let cap = params.Params.max_initial_rules_per_class in
      let weighted_paths =
        List.sort (fun (w1, _) (w2, _) -> Float.compare w2 w1) weighted_paths
      in
      let kept = Pn_util.Arr.take cap weighted_paths in
      if List.length weighted_paths > cap then
        Log.debug (fun m ->
            m "class %d: generalizing %d of %d paths (cap)" cls cap
              (List.length weighted_paths));
      List.iter
        (fun (_, conds) ->
          let conds = generalize ~cf ds ~cls (Array.of_list conds) in
          if Array.length conds > 0 then
            by_class.(cls) <-
              Pn_rules.Rule.of_conditions (Array.to_list conds) :: by_class.(cls))
        kept)
    grouped;
  let selected =
    Array.mapi
      (fun cls rules ->
        let rules = dedup (List.rev rules) in
        let rules = select_subset ~n_candidates ds ~cls rules in
        Log.debug (fun m -> m "class %d: %d rules after selection" cls (List.length rules));
        rules)
      by_class
  in
  (* Order classes by the false positives their ruleset commits. *)
  let fp_of cls rules =
    let rl = Pn_rules.Rule_list.of_list rules in
    let fp = ref 0.0 in
    for i = 0 to Pn_data.Dataset.n_records ds - 1 do
      if Pn_data.Dataset.label ds i <> cls && Pn_rules.Rule_list.any_match ds rl i
      then fp := !fp +. Pn_data.Dataset.weight ds i
    done;
    !fp
  in
  let order =
    List.sort
      (fun (_, fp1) (_, fp2) -> Float.compare fp1 fp2)
      (List.init n_classes (fun cls -> (cls, fp_of cls selected.(cls))))
  in
  let groups =
    List.map (fun (cls, _) -> (cls, Pn_rules.Rule_list.of_list selected.(cls))) order
  in
  (* Default class: most frequent among records no rule covers. *)
  let uncovered = Array.make n_classes 0.0 in
  for i = 0 to Pn_data.Dataset.n_records ds - 1 do
    let hit =
      List.exists (fun (_, rl) -> Pn_rules.Rule_list.any_match ds rl i) groups
    in
    if not hit then begin
      let c = Pn_data.Dataset.label ds i in
      uncovered.(c) <- uncovered.(c) +. Pn_data.Dataset.weight ds i
    end
  done;
  let default_class = ref 0 in
  Array.iteri (fun c w -> if w > uncovered.(!default_class) then default_class := c) uncovered;
  {
    groups;
    default_class = !default_class;
    classes = ds.Pn_data.Dataset.classes;
    attrs = ds.Pn_data.Dataset.attrs;
    params;
  }

let train ?params ds = of_tree (Tree.train_unpruned ?params ds) ds

let predict t ds i =
  let rec loop = function
    | [] -> t.default_class
    | (cls, rl) :: rest ->
      if Pn_rules.Rule_list.any_match ds rl i then cls else loop rest
  in
  loop t.groups

let evaluate_binary t ds ~target =
  let acc = ref Pn_metrics.Confusion.zero in
  for i = 0 to Pn_data.Dataset.n_records ds - 1 do
    acc :=
      Pn_metrics.Confusion.add !acc
        ~actual:(Pn_data.Dataset.label ds i = target)
        ~predicted:(predict t ds i = target)
        ~weight:(Pn_data.Dataset.weight ds i)
  done;
  !acc

let n_rules t =
  List.fold_left (fun acc (_, rl) -> acc + Pn_rules.Rule_list.length rl) 0 t.groups

let pp ppf t =
  Format.fprintf ppf "@[<v>C4.5rules model (default: %s)@,"
    t.classes.(t.default_class);
  List.iter
    (fun (cls, rl) ->
      Format.fprintf ppf "rules for %s:@,%a" t.classes.(cls)
        (Pn_rules.Rule_list.pp t.attrs) rl)
    t.groups;
  Format.fprintf ppf "@]"
