(** C4.5 hyper-parameters (Quinlan '93 Release 8 defaults as used in the
    paper: CF = 0.25, minimum 2 cases per branch). *)

type t = {
  cf : float;  (** pruning confidence level (lower prunes harder) *)
  min_objects : float;
      (** minimum weighted cases in at least two branches of a split *)
  max_depth : int;  (** safety cap on tree depth *)
  gain_ratio : bool;
      (** select splits by gain ratio (C4.5) rather than raw gain (ID3) *)
  r8_penalty : bool;
      (** Release 8's log₂(candidates)/N correction on continuous-split
          gain *)
  max_initial_rules_per_class : int;
      (** C4.5rules guard: when the overfitted tree yields more paths for
          a class than this, only the highest-weight paths are
          generalized (the dropped ones are tiny noise shards that MDL
          subset selection would discard; the cap keeps rule-set
          construction near-linear). *)
}

val default : t

val pp : Format.formatter -> t -> unit
