lib/c45/rules.ml: Array Float Format List Logs Params Pn_data Pn_induct Pn_metrics Pn_rules Pn_util Tree
