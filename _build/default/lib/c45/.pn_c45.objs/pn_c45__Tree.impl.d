lib/c45/tree.ml: Array Float Format List Params Pn_data Pn_metrics Pn_rules Pn_util String
