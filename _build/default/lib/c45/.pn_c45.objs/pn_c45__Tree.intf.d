lib/c45/tree.mli: Format Params Pn_data Pn_metrics Pn_rules
