lib/c45/rules.mli: Format Params Pn_data Pn_metrics Pn_rules Tree
