lib/c45/params.mli: Format
