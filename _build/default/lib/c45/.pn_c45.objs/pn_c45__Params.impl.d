lib/c45/params.ml: Format
