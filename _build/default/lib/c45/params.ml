type t = {
  cf : float;
  min_objects : float;
  max_depth : int;
  gain_ratio : bool;
  r8_penalty : bool;
  max_initial_rules_per_class : int;
}

let default =
  {
    cf = 0.25;
    min_objects = 2.0;
    max_depth = 60;
    gain_ratio = true;
    r8_penalty = true;
    max_initial_rules_per_class = 512;
  }

let pp ppf t =
  Format.fprintf ppf "cf=%.2f minobjs=%.1f max_depth=%d gain_ratio=%b r8=%b" t.cf
    t.min_objects t.max_depth t.gain_ratio t.r8_penalty
