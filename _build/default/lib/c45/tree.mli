(** C4.5 decision trees: gain-ratio induction with binary numeric splits
    and multiway categorical splits, then pessimistic-error pruning by
    subtree replacement. Multi-class. *)

type split =
  | Num_threshold of { col : int; threshold : float }
      (** children.(0): value ≤ threshold; children.(1): value > *)
  | Cat_multi of { col : int }  (** children indexed by category code *)

type node =
  | Leaf of { counts : float array; predicted : int }
  | Split of {
      split : split;
      children : node array;
      counts : float array;
      predicted : int;  (** majority class, used when a branch is empty *)
    }

type t = {
  root : node;
  classes : string array;
  attrs : Pn_data.Attribute.t array;
  params : Params.t;
}

(** [train ?params ds] grows a full tree and prunes it. *)
val train : ?params:Params.t -> Pn_data.Dataset.t -> t

(** [train_unpruned ?params ds] grows the overfitted tree only (the
    starting point of C4.5rules). *)
val train_unpruned : ?params:Params.t -> Pn_data.Dataset.t -> t

(** [prune t ds] applies pessimistic subtree replacement using the
    training data distribution already stored in the nodes. *)
val prune : t -> t

(** [predict t ds i] is the predicted class index for record [i]. *)
val predict : t -> Pn_data.Dataset.t -> int -> int

(** [evaluate_binary t ds ~target] scores the tree as a binary classifier
    for [target] (prediction = target vs anything else). *)
val evaluate_binary : t -> Pn_data.Dataset.t -> target:int -> Pn_metrics.Confusion.t

(** [paths t] enumerates every root-to-leaf path as (conditions along the
    path, leaf class, leaf counts); the raw material of C4.5rules. *)
val paths : t -> (Pn_rules.Condition.t list * int * float array) list

val n_leaves : t -> int

val depth : t -> int

val pp : Format.formatter -> t -> unit
