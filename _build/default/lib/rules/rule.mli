(** Conjunctive rules: an ordered list of conditions, all of which must
    hold. The empty rule matches everything (the "most general rule" the
    paper's general-to-specific search starts from). *)

type t = { conditions : Condition.t list }

val empty : t

val of_conditions : Condition.t list -> t

val n_conditions : t -> int

val is_empty : t -> bool

(** [add t c] appends a condition (specializes the rule). *)
val add : t -> Condition.t -> t

(** [remove_nth t k] drops the k-th condition (0-based); used by pruning.
    Raises [Invalid_argument] when out of range. *)
val remove_nth : t -> int -> t

(** [truncate t k] keeps only the first [k] conditions; RIPPER's pruning
    deletes a final sequence of conditions. *)
val truncate : t -> int -> t

(** [matches ds t i] is true when record [i] satisfies every condition. *)
val matches : Pn_data.Dataset.t -> t -> int -> bool

(** [coverage view t ~target] is the weighted positive/negative coverage
    of the rule over [view]. *)
val coverage :
  Pn_data.View.t -> t -> target:int -> Pn_metrics.Rule_metric.counts

(** [covered_of view t] filters [view] down to the matching records. *)
val covered_of : Pn_data.View.t -> t -> Pn_data.View.t

(** [uncovered_of view t] filters [view] down to the non-matching
    records. *)
val uncovered_of : Pn_data.View.t -> t -> Pn_data.View.t

(** [redundant_with t c] is true when [c] is subsumed by a condition
    already in [t]. *)
val redundant_with : t -> Condition.t -> bool

val pp : Pn_data.Attribute.t array -> Format.formatter -> t -> unit

val to_string : Pn_data.Attribute.t array -> t -> string
