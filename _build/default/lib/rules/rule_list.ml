type t = { rules : Rule.t array }

let of_list rules = { rules = Array.of_list rules }

let of_array rules = { rules }

let length t = Array.length t.rules

let get t i = t.rules.(i)

let to_list t = Array.to_list t.rules

let first_match ds t i =
  let n = Array.length t.rules in
  let rec loop k =
    if k >= n then None else if Rule.matches ds t.rules.(k) i then Some k else loop (k + 1)
  in
  loop 0

let any_match ds t i = Option.is_some (first_match ds t i)

let covered ds t =
  let hits = ref [] in
  for i = Pn_data.Dataset.n_records ds - 1 downto 0 do
    if any_match ds t i then hits := i :: !hits
  done;
  Pn_data.View.of_indices ds (Array.of_list !hits)

let total_conditions t =
  Array.fold_left (fun acc r -> acc + Rule.n_conditions r) 0 t.rules

let pp attrs ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun k r -> Format.fprintf ppf "%2d. %a@," k (Rule.pp attrs) r)
    t.rules;
  Format.fprintf ppf "@]"
