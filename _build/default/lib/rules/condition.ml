type t =
  | Cat_eq of { col : int; value : int }
  | Num_le of { col : int; threshold : float }
  | Num_ge of { col : int; threshold : float }
  | Num_range of { col : int; lo : float; hi : float }

let col = function
  | Cat_eq { col; _ } | Num_le { col; _ } | Num_ge { col; _ } | Num_range { col; _ } ->
    col

let matches ds t i =
  match t with
  | Cat_eq { col; value } -> Pn_data.Dataset.cat_value ds ~col i = value
  | Num_le { col; threshold } -> Pn_data.Dataset.num_value ds ~col i <= threshold
  | Num_ge { col; threshold } -> Pn_data.Dataset.num_value ds ~col i >= threshold
  | Num_range { col; lo; hi } ->
    let v = Pn_data.Dataset.num_value ds ~col i in
    lo <= v && v <= hi

let subsumes a b =
  col a = col b
  &&
  match (a, b) with
  | Cat_eq { value = va; _ }, Cat_eq { value = vb; _ } -> va = vb
  | Num_le { threshold = ta; _ }, Num_le { threshold = tb; _ } -> ta >= tb
  | Num_ge { threshold = ta; _ }, Num_ge { threshold = tb; _ } -> ta <= tb
  | Num_le { threshold = ta; _ }, Num_range { hi; _ } -> ta >= hi
  | Num_ge { threshold = ta; _ }, Num_range { lo; _ } -> ta <= lo
  | Num_range { lo; hi; _ }, Num_range { lo = lb; hi = hb; _ } -> lo <= lb && hi >= hb
  | Num_range { lo; hi; _ }, Num_le { threshold; _ } ->
    lo = Float.neg_infinity && hi >= threshold
  | Num_range { lo; hi; _ }, Num_ge { threshold; _ } ->
    hi = Float.infinity && lo <= threshold
  | Cat_eq _, (Num_le _ | Num_ge _ | Num_range _)
  | (Num_le _ | Num_ge _ | Num_range _), Cat_eq _
  | Num_le _, Num_ge _
  | Num_ge _, Num_le _ ->
    false

let equal a b =
  match (a, b) with
  | Cat_eq x, Cat_eq y -> x.col = y.col && x.value = y.value
  | Num_le x, Num_le y -> x.col = y.col && x.threshold = y.threshold
  | Num_ge x, Num_ge y -> x.col = y.col && x.threshold = y.threshold
  | Num_range x, Num_range y -> x.col = y.col && x.lo = y.lo && x.hi = y.hi
  | (Cat_eq _ | Num_le _ | Num_ge _ | Num_range _), _ -> false

let pp attrs ppf t =
  let name c = attrs.(c).Pn_data.Attribute.name in
  match t with
  | Cat_eq { col; value } ->
    Format.fprintf ppf "%s = %s" (name col)
      (Pn_data.Attribute.value_name attrs.(col) value)
  | Num_le { col; threshold } -> Format.fprintf ppf "%s <= %.4g" (name col) threshold
  | Num_ge { col; threshold } -> Format.fprintf ppf "%s >= %.4g" (name col) threshold
  | Num_range { col; lo; hi } ->
    Format.fprintf ppf "%.4g <= %s <= %.4g" lo (name col) hi

let to_string attrs t = Format.asprintf "%a" (pp attrs) t
