lib/rules/rule.mli: Condition Format Pn_data Pn_metrics
