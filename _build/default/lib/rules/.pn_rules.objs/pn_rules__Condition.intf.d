lib/rules/condition.mli: Format Pn_data
