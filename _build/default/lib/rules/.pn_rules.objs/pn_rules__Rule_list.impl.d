lib/rules/rule_list.ml: Array Format Option Pn_data Rule
