lib/rules/rule_list.mli: Format Pn_data Rule
