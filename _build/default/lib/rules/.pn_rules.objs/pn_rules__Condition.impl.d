lib/rules/condition.ml: Array Float Format Pn_data
