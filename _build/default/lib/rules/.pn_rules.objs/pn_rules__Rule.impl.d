lib/rules/rule.ml: Condition Format List Pn_data Pn_metrics Pn_util
