(** Atomic conditions of conjunctive rules.

    Besides the usual categorical equality and one-sided numeric
    thresholds, the paper's rule builder explicitly searches *range*
    conditions [lo ≤ A ≤ hi] (§2.2), so ranges are first-class here. *)

type t =
  | Cat_eq of { col : int; value : int }  (** A = v *)
  | Num_le of { col : int; threshold : float }  (** A ≤ v *)
  | Num_ge of { col : int; threshold : float }  (** A ≥ v *)
  | Num_range of { col : int; lo : float; hi : float }  (** lo ≤ A ≤ hi *)

(** [col t] is the attribute index the condition tests. *)
val col : t -> int

(** [matches ds t i] evaluates the condition on record [i]. *)
val matches : Pn_data.Dataset.t -> t -> int -> bool

(** [subsumes a b] is true when [a] and [b] test the same attribute and
    every record satisfying [b] satisfies [a] (used to avoid re-adding
    weaker duplicates while growing). *)
val subsumes : t -> t -> bool

val equal : t -> t -> bool

val pp : Pn_data.Attribute.t array -> Format.formatter -> t -> unit

val to_string : Pn_data.Attribute.t array -> t -> string
