(** Ordered rule lists with first-match semantics.

    Both PNrule phases and RIPPER produce rules "in decreasing order of
    significance, which is the same as their order of discovery"; at
    prediction time the first applicable rule wins. *)

type t = { rules : Rule.t array }

val of_list : Rule.t list -> t

val of_array : Rule.t array -> t

val length : t -> int

val get : t -> int -> Rule.t

val to_list : t -> Rule.t list

(** [first_match ds t i] is the index of the first rule matching record
    [i], or [None]. *)
val first_match : Pn_data.Dataset.t -> t -> int -> int option

(** [any_match ds t i] is true when some rule matches. *)
val any_match : Pn_data.Dataset.t -> t -> int -> bool

(** [covered ds t] is the set of record indices matched by at least one
    rule, as a view. *)
val covered : Pn_data.Dataset.t -> t -> Pn_data.View.t

(** [total_conditions t] is Σ per-rule condition counts (MDL input). *)
val total_conditions : t -> int

val pp : Pn_data.Attribute.t array -> Format.formatter -> t -> unit
