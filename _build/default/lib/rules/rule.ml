type t = { conditions : Condition.t list }

let empty = { conditions = [] }

let of_conditions conditions = { conditions }

let n_conditions t = List.length t.conditions

let is_empty t = t.conditions = []

let add t c = { conditions = t.conditions @ [ c ] }

let remove_nth t k =
  if k < 0 || k >= n_conditions t then invalid_arg "Rule.remove_nth";
  { conditions = List.filteri (fun i _ -> i <> k) t.conditions }

let truncate t k = { conditions = Pn_util.Arr.take k t.conditions }

let matches ds t i = List.for_all (fun c -> Condition.matches ds c i) t.conditions

let coverage view t ~target =
  let pos = ref 0.0 and neg = ref 0.0 in
  Pn_data.View.iter view (fun i ->
      if matches view.Pn_data.View.data t i then begin
        let w = Pn_data.Dataset.weight view.Pn_data.View.data i in
        if Pn_data.Dataset.label view.Pn_data.View.data i = target then
          pos := !pos +. w
        else neg := !neg +. w
      end);
  { Pn_metrics.Rule_metric.pos = !pos; neg = !neg }

let covered_of view t =
  Pn_data.View.filter view (fun i -> matches view.Pn_data.View.data t i)

let uncovered_of view t =
  Pn_data.View.filter view (fun i -> not (matches view.Pn_data.View.data t i))

let redundant_with t c =
  List.exists (fun existing -> Condition.subsumes existing c || Condition.subsumes c existing)
    t.conditions

let pp attrs ppf t =
  match t.conditions with
  | [] -> Format.pp_print_string ppf "<true>"
  | conds ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " AND ")
      (Condition.pp attrs) ppf conds

let to_string attrs t = Format.asprintf "%a" (pp attrs) t
