(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (ids t1..t6, f1, s4a..s4d, a1) and runs Bechamel timing
   micro-benchmarks (id: timing).

   Usage:
     dune exec bench/main.exe                 -- run everything at scale 0.2
     dune exec bench/main.exe -- --list
     dune exec bench/main.exe -- --only t1 --scale 0.05
     dune exec bench/main.exe -- --only timing *)

let default_scale = 0.2

(* ------------------------------------------------------------------ *)
(* Bechamel timing benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let timing_benchmarks ~scale =
  ignore scale;
  let open Bechamel in
  let spec = Pn_synth.Numerical.nsyn 3 in
  let ds = Pn_synth.Numerical.generate spec ~seed:11 ~n:20_000 in
  let target = Pn_synth.Numerical.target_class in
  let pn_model = Pnrule.Learner.train ds ~target in
  let tests =
    [
      Test.make ~name:"pnrule-train-20k"
        (Staged.stage (fun () -> ignore (Pnrule.Learner.train ds ~target)));
      Test.make ~name:"ripper-train-20k"
        (Staged.stage (fun () ->
             let params = { Pn_ripper.Params.default with optimization_passes = 0 } in
             ignore (Pn_ripper.Learner.train ~params ds ~target)));
      Test.make ~name:"c45-tree-train-20k"
        (Staged.stage (fun () -> ignore (Pn_c45.Tree.train ds)));
      Test.make ~name:"pnrule-score-20k"
        (Staged.stage (fun () -> ignore (Pnrule.Model.predict_all pn_model ds)));
    ]
  in
  let benchmark test =
    let quota = Time.second 2.0 in
    Benchmark.all
      (Benchmark.cfg ~limit:200 ~quota ~kde:(Some 10) ())
      Toolkit.Instance.[ monotonic_clock ]
      test
  in
  let analyze raw =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  Printf.printf "\n== Timing (Bechamel, monotonic clock) ==\n%!";
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ t ] -> Printf.printf "%-32s %14.0f ns/run\n%!" name t
          | Some _ | None -> Printf.printf "%-32s (no estimate)\n%!" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let registry =
  Pn_harness.Tables.all
  @ [ ("timing", "Bechamel timing micro-benchmarks", timing_benchmarks) ]

let () =
  let only = ref [] in
  let scale = ref default_scale in
  let list_only = ref false in
  let verbose = ref false in
  let spec =
    [
      ( "--only",
        Arg.String (fun s -> only := s :: !only),
        "ID run only this benchmark (repeatable)" );
      ("--scale", Arg.Set_float scale, "S dataset scale relative to the paper (default 0.2)");
      ("--list", Arg.Set list_only, " list benchmark ids");
      ("-v", Arg.Set verbose, " verbose (method-level progress on stderr)");
    ]
  in
  Arg.parse spec (fun s -> only := s :: !only) "bench/main.exe [--only ID] [--scale S]";
  if !verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info)
  end;
  if !list_only then
    List.iter (fun (id, desc, _) -> Printf.printf "%-8s %s\n" id desc) registry
  else begin
    let selected =
      match !only with
      | [] -> registry
      | ids -> List.filter (fun (id, _, _) -> List.mem id ids) registry
    in
    if selected = [] then begin
      prerr_endline "no matching benchmark id; use --list";
      exit 1
    end;
    Printf.printf "running %d benchmark(s) at scale %.3f\n%!" (List.length selected) !scale;
    List.iter
      (fun (id, desc, run) ->
        Printf.printf "\n#### [%s] %s\n%!" id desc;
        let t0 = Unix.gettimeofday () in
        run ~scale:!scale;
        Printf.printf "#### [%s] done in %.1fs\n%!" id (Unix.gettimeofday () -. t0))
      selected
  end
