(* Tests for the experiment harness: method registry, evaluation
   protocol, sampling, table formatting. *)

module D = Pn_data.Dataset
module E = Pn_harness.Experiment
module M = Pn_harness.Methods
module S = Pn_harness.Sampling

let small_problem ~seed ~n =
  let rng = Pn_util.Rng.create seed in
  let xs = Array.make n 0.0 and labels = Array.make n 0 in
  for i = 0 to n - 1 do
    if Pn_util.Rng.bernoulli rng 0.05 then begin
      labels.(i) <- 1;
      xs.(i) <- 50.0 +. Pn_util.Rng.float rng 3.0
    end
    else begin
      let rec draw () =
        let v = Pn_util.Rng.float rng 100.0 in
        if v >= 49.5 && v <= 53.5 then draw () else v
      in
      xs.(i) <- draw ()
    end
  done;
  D.create
    ~attrs:[| Pn_data.Attribute.numeric "x" |]
    ~columns:[| D.Num xs |] ~labels
    ~classes:[| "neg"; "pos" |]
    ()

let test_all_methods_run () =
  let train = small_problem ~seed:1 ~n:4000 in
  let test = small_problem ~seed:2 ~n:4000 in
  List.iter
    (fun spec ->
      let r = E.run spec ~train ~test ~target:1 in
      if r.E.f_measure < 0.8 then
        Alcotest.failf "%s failed the trivial problem: F=%.3f" r.E.method_name
          r.E.f_measure)
    [
      M.pnrule ();
      M.ripper ();
      M.ripper ~stratified:true ();
      M.c45rules ();
      M.c45rules ~stratified:true ();
      M.c45tree ();
      M.c45tree ~stratified:true ();
    ]

let test_best_of () =
  let train = small_problem ~seed:3 ~n:3000 in
  let test = small_problem ~seed:4 ~n:3000 in
  let results = E.run_all (M.pnrule_grid ()) ~train ~test ~target:1 in
  Alcotest.(check int) "grid size" 4 (List.length results);
  let best = E.best_of ~name:"PN" results in
  Alcotest.(check string) "renamed" "PN" best.E.method_name;
  List.iter
    (fun r ->
      if r.E.f_measure > best.E.f_measure then Alcotest.fail "best_of not maximal")
    results;
  (try
     ignore (E.best_of []);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_result_fields_consistent () =
  let train = small_problem ~seed:5 ~n:3000 in
  let test = small_problem ~seed:6 ~n:3000 in
  let r = E.run (M.pnrule ()) ~train ~test ~target:1 in
  Alcotest.(check (float 1e-9)) "recall matches confusion"
    (Pn_metrics.Confusion.recall r.E.confusion)
    r.E.recall;
  Alcotest.(check (float 1e-9)) "f matches confusion"
    (Pn_metrics.Confusion.f_measure r.E.confusion)
    r.E.f_measure;
  Alcotest.(check bool) "time nonnegative" true (r.E.train_seconds >= 0.0)

let test_subsample_keeps_targets () =
  let ds = small_problem ~seed:7 ~n:5000 in
  let before = ref 0 in
  for i = 0 to D.n_records ds - 1 do
    if D.label ds i = 1 then incr before
  done;
  let sub = S.subsample_non_target ds ~target:1 ~fraction:0.1 ~seed:8 in
  let after = ref 0 in
  for i = 0 to D.n_records sub - 1 do
    if D.label sub i = 1 then incr after
  done;
  Alcotest.(check int) "all targets kept" !before !after;
  Alcotest.(check bool) "non-targets reduced" true
    (D.n_records sub < D.n_records ds / 2);
  let pct = S.target_percentage sub ~target:1 in
  Alcotest.(check bool) "target share rose" true
    (pct > S.target_percentage ds ~target:1)

let test_subsample_extremes () =
  let ds = small_problem ~seed:9 ~n:1000 in
  let all = S.subsample_non_target ds ~target:1 ~fraction:1.0 ~seed:1 in
  Alcotest.(check int) "fraction 1 keeps everything" (D.n_records ds) (D.n_records all);
  let none = S.subsample_non_target ds ~target:1 ~fraction:0.0 ~seed:1 in
  Alcotest.(check (float 1e-6)) "fraction 0 keeps only targets" 100.0
    (S.target_percentage none ~target:1)

let test_tablefmt () =
  Alcotest.(check string) "pct" "97.07" (Pn_harness.Tablefmt.pct 0.9707);
  Alcotest.(check string) "f4" ".9792" (Pn_harness.Tablefmt.f4 0.9792);
  Alcotest.(check string) "f4 one" "1.0000" (Pn_harness.Tablefmt.f4 1.0);
  (try
     Pn_harness.Tablefmt.print ~title:"t" ~header:[ "a"; "b" ] [ [ "1" ] ];
     Alcotest.fail "expected ragged-row failure"
   with Invalid_argument _ -> ())

let test_stratified_only_affects_training () =
  (* Evaluation must use test-set unit weights even when the method
     trains stratified. *)
  let train = small_problem ~seed:10 ~n:3000 in
  let test = small_problem ~seed:11 ~n:3000 in
  let r = E.run (M.ripper ~stratified:true ()) ~train ~test ~target:1 in
  Alcotest.(check (float 1e-6)) "test totals are unit-weighted"
    (D.total_weight test)
    (Pn_metrics.Confusion.total r.E.confusion)

let suite =
  [
    Alcotest.test_case "all methods solve a trivial problem" `Slow test_all_methods_run;
    Alcotest.test_case "best_of picks the max" `Quick test_best_of;
    Alcotest.test_case "result fields consistent" `Quick test_result_fields_consistent;
    Alcotest.test_case "subsample keeps all targets" `Quick test_subsample_keeps_targets;
    Alcotest.test_case "subsample extremes" `Quick test_subsample_extremes;
    Alcotest.test_case "table formatting" `Quick test_tablefmt;
    Alcotest.test_case "stratification only affects training" `Quick test_stratified_only_affects_training;
  ]
