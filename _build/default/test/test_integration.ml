(* Integration tests: the paper's qualitative claims on scaled-down
   versions of its synthetic models. These are the end-to-end checks that
   the reproduction actually reproduces. *)

module D = Pn_data.Dataset
module E = Pn_harness.Experiment
module M = Pn_harness.Methods
module C = Pn_metrics.Confusion

(* A scaled-down nsyn3-style dataset large enough for the effects to be
   stable: ~0.75 % target so the per-peak counts stay healthy at n=40k. *)
let nsyn3_small ~seed ~n =
  let spec = { (Pn_synth.Numerical.nsyn 3) with Pn_synth.Numerical.target_fraction = 0.0075 } in
  Pn_synth.Numerical.generate spec ~seed ~n

let test_pnrule_beats_ripper_on_splintered_data () =
  (* The paper's central claim (Tables 1-2): on peaked rare-class data
     with multiple non-target subclasses, PNrule clearly beats RIPPER. *)
  let train = nsyn3_small ~seed:21 ~n:40_000 in
  let test = nsyn3_small ~seed:22 ~n:20_000 in
  let target = Pn_synth.Numerical.target_class in
  let pn =
    E.best_of (E.run_all (M.pnrule_grid ()) ~train ~test ~target)
  in
  let ripper = E.run (M.ripper ()) ~train ~test ~target in
  Alcotest.(check bool)
    (Printf.sprintf "PNrule F=%.3f > RIPPER F=%.3f" pn.E.f_measure ripper.E.f_measure)
    true
    (pn.E.f_measure > ripper.E.f_measure);
  Alcotest.(check bool)
    (Printf.sprintf "PNrule F=%.3f is strong" pn.E.f_measure)
    true (pn.E.f_measure > 0.8)

let test_stratified_trades_precision_for_recall () =
  (* Figure 1's "-we" effect: stratification pushes recall up and lets
     precision collapse. *)
  let train = nsyn3_small ~seed:23 ~n:40_000 in
  let test = nsyn3_small ~seed:24 ~n:20_000 in
  let target = Pn_synth.Numerical.target_class in
  let unit = E.run (M.ripper ()) ~train ~test ~target in
  let we = E.run (M.ripper ~stratified:true ()) ~train ~test ~target in
  Alcotest.(check bool)
    (Printf.sprintf "recall-we %.3f >= recall %.3f - 0.05" we.E.recall unit.E.recall)
    true
    (we.E.recall >= unit.E.recall -. 0.05);
  Alcotest.(check bool)
    (Printf.sprintf "precision-we %.3f <= precision %.3f + 0.05" we.E.precision
       unit.E.precision)
    true
    (we.E.precision <= unit.E.precision +. 0.05)

let test_gap_narrows_as_class_grows () =
  (* Table 5's trend: PNrule's edge over RIPPER shrinks (or disappears)
     when the target class stops being rare. *)
  (* A 1 % target keeps per-subclass counts healthy at this size; the
     rare-vs-common contrast comes from the subsampling fractions. *)
  let spec = { Pn_synth.General.default with Pn_synth.General.target_fraction = 0.01 } in
  let target = Pn_synth.General.target_class in
  let train0 = Pn_synth.General.generate spec ~seed:31 ~n:80_000 in
  let test0 = Pn_synth.General.generate spec ~seed:32 ~n:40_000 in
  let gap frac =
    let train =
      Pn_harness.Sampling.subsample_non_target train0 ~target ~fraction:frac ~seed:33
    in
    let test =
      Pn_harness.Sampling.subsample_non_target test0 ~target ~fraction:frac ~seed:34
    in
    let pn = E.best_of (E.run_all (M.pnrule_grid ()) ~train ~test ~target) in
    let rip = E.run (M.ripper ()) ~train ~test ~target in
    pn.E.f_measure -. rip.E.f_measure
  in
  let rare_gap = gap 1.0 in
  let common_gap = gap 0.01 in
  Alcotest.(check bool)
    (Printf.sprintf "gap rare %.3f > gap common %.3f - 0.05" rare_gap common_gap)
    true
    (rare_gap > common_gap -. 0.05);
  Alcotest.(check bool) "PNrule ahead when rare" true (rare_gap > 0.0)

let test_kdd_pipeline_end_to_end () =
  (* Section 4 wiring: train on the simulator's training distribution,
     evaluate on the shifted test distribution, for both rare classes. *)
  let train = Pn_synth.Kddcup.train ~seed:41 ~n:40_000 in
  let test = Pn_synth.Kddcup.test ~seed:42 ~n:25_000 in
  List.iter
    (fun (name, target) ->
      let params =
        {
          Pnrule.Params.default with
          metric = Pn_metrics.Rule_metric.Info_gain;
          max_p_rule_length = Some 1;
          recall_floor = 0.95;
        }
      in
      let r = E.run (M.pnrule ~params ()) ~train ~test ~target in
      Alcotest.(check bool)
        (Printf.sprintf "%s: F=%.3f > 0" name r.E.f_measure)
        true (r.E.f_measure > 0.0);
      Alcotest.(check bool)
        (Printf.sprintf "%s: precision %.3f sane" name r.E.precision)
        true
        (r.E.precision > 0.1))
    [ ("probe", Pn_synth.Kddcup.probe); ("r2l", Pn_synth.Kddcup.r2l) ]

let test_p1_boosts_probe_like_classes () =
  (* Section 4's probe.P1 observation: very general P-rules + N-phase
     beat heavily refined P-rules when the test distribution shifts. *)
  let train = Pn_synth.Kddcup.train ~seed:43 ~n:40_000 in
  let test = Pn_synth.Kddcup.test ~seed:44 ~n:25_000 in
  let target = Pn_synth.Kddcup.probe in
  let f p1 =
    let params =
      {
        Pnrule.Params.default with
        metric = Pn_metrics.Rule_metric.Info_gain;
        max_p_rule_length = (if p1 then Some 1 else None);
      }
    in
    (E.run (M.pnrule ~params ()) ~train ~test ~target).E.f_measure
  in
  let with_p1 = f true and without = f false in
  (* We don't require a strict win (sampling noise), but P1 must stay
     competitive — within 0.1 — as the paper argues. *)
  Alcotest.(check bool)
    (Printf.sprintf "P1 %.3f vs unrestricted %.3f" with_p1 without)
    true
    (with_p1 >= without -. 0.1)

let test_ablation_components_matter () =
  let train = nsyn3_small ~seed:51 ~n:40_000 in
  let test = nsyn3_small ~seed:52 ~n:20_000 in
  let target = Pn_synth.Numerical.target_class in
  let f params = (E.run (M.pnrule ~params ()) ~train ~test ~target).E.f_measure in
  let full = f Pnrule.Params.default in
  let no_n = f { Pnrule.Params.default with enable_n_phase = false } in
  Alcotest.(check bool)
    (Printf.sprintf "N-phase matters: full %.3f > no-N %.3f" full no_n)
    true (full > no_n)

let suite =
  [
    Alcotest.test_case "PNrule beats RIPPER on splintered data" `Slow
      test_pnrule_beats_ripper_on_splintered_data;
    Alcotest.test_case "stratification trades precision for recall" `Slow
      test_stratified_trades_precision_for_recall;
    Alcotest.test_case "gap narrows as target class grows" `Slow
      test_gap_narrows_as_class_grows;
    Alcotest.test_case "KDD pipeline end to end" `Slow test_kdd_pipeline_end_to_end;
    Alcotest.test_case "P1 competitive on probe-like classes" `Slow
      test_p1_boosts_probe_like_classes;
    Alcotest.test_case "ablation: N-phase matters" `Slow test_ablation_components_matter;
  ]
