(* Tests for the paper's future-work extensions: automatic recall-limit
   selection (Auto) and multi-phase induction (Multiphase). *)

module A = Pn_data.Attribute
module D = Pn_data.Dataset
module C = Pn_metrics.Confusion

(* Rare target inside an impure band (decoy interior on y) — the setup
   where rp/rn actually matter. *)
let problem ~seed ~n =
  let rng = Pn_util.Rng.create seed in
  let xs = Array.make n 0.0 and ys = Array.make n 0.0 and labels = Array.make n 0 in
  for i = 0 to n - 1 do
    let r = Pn_util.Rng.float rng 1.0 in
    if r < 0.01 then begin
      labels.(i) <- 1;
      xs.(i) <- 40.0 +. Pn_util.Rng.float rng 2.0;
      ys.(i) <- Pn_util.Rng.float rng 100.0
    end
    else if r < 0.05 then begin
      xs.(i) <- 40.0 +. Pn_util.Rng.float rng 2.0;
      ys.(i) <- 40.0 +. Pn_util.Rng.float rng 20.0
    end
    else begin
      let rec draw () =
        let v = Pn_util.Rng.float rng 100.0 in
        if v >= 39.9 && v <= 42.1 then draw () else v
      in
      xs.(i) <- draw ();
      ys.(i) <- Pn_util.Rng.float rng 100.0
    end
  done;
  D.create
    ~attrs:[| A.numeric "x"; A.numeric "y" |]
    ~columns:[| D.Num xs; D.Num ys |]
    ~labels ~classes:[| "neg"; "pos" |] ()

let base = { Pnrule.Params.default with min_support_fraction = 0.7 }

(* ------------------------------------------------------------------ *)
(* Auto                                                                 *)
(* ------------------------------------------------------------------ *)

let test_auto_trains_and_reports () =
  let train = problem ~seed:1 ~n:15_000 in
  let test = problem ~seed:2 ~n:10_000 in
  let model, choice = Pnrule.Auto.train ~base ~seed:5 train ~target:1 in
  Alcotest.(check bool) "validation F recorded" true
    (choice.Pnrule.Auto.validation_f > 0.5);
  let f = C.f_measure (Pnrule.Model.evaluate model test) in
  Alcotest.(check bool) (Printf.sprintf "test F %.3f decent" f) true (f > 0.8);
  (* The winner comes from the requested grid. *)
  Alcotest.(check bool) "rp from grid" true
    (List.mem choice.Pnrule.Auto.params.Pnrule.Params.min_coverage [ 0.95; 0.99 ])

let test_auto_respects_custom_grid () =
  let train = problem ~seed:3 ~n:10_000 in
  let _, choice =
    Pnrule.Auto.train ~base ~rps:[ 0.9 ] ~rns:[ 0.8 ] ~try_p1:false train ~target:1
  in
  Alcotest.(check (float 1e-9)) "rp" 0.9 choice.Pnrule.Auto.params.Pnrule.Params.min_coverage;
  Alcotest.(check (float 1e-9)) "rn" 0.8 choice.Pnrule.Auto.params.Pnrule.Params.recall_floor;
  Alcotest.(check bool) "no p1" true
    (choice.Pnrule.Auto.params.Pnrule.Params.max_p_rule_length = None)

let test_auto_deterministic () =
  let train = problem ~seed:4 ~n:8_000 in
  let _, c1 = Pnrule.Auto.train ~base ~seed:9 train ~target:1 in
  let _, c2 = Pnrule.Auto.train ~base ~seed:9 train ~target:1 in
  Alcotest.(check (float 1e-12)) "same validation F" c1.Pnrule.Auto.validation_f
    c2.Pnrule.Auto.validation_f

(* ------------------------------------------------------------------ *)
(* Multiphase                                                           *)
(* ------------------------------------------------------------------ *)

let test_multiphase_structure () =
  let train = problem ~seed:6 ~n:15_000 in
  let m = Pnrule.Multiphase.train ~params:base ~max_phases:4 train ~target:1 in
  let sizes = Pnrule.Multiphase.phase_sizes m in
  Alcotest.(check bool) "at least two phases" true (List.length sizes >= 2);
  List.iter (fun s -> Alcotest.(check bool) "non-empty phases" true (s > 0)) sizes

let test_multiphase_quality () =
  let train = problem ~seed:7 ~n:15_000 in
  let test = problem ~seed:8 ~n:10_000 in
  let m = Pnrule.Multiphase.train ~params:base train ~target:1 in
  (* The parity decision has no ScoreMatrix softening, so the bar is a
     little lower than PNrule proper's. *)
  let f = C.f_measure (Pnrule.Multiphase.evaluate m test) in
  Alcotest.(check bool) (Printf.sprintf "test F %.3f" f) true (f > 0.6)

let test_multiphase_two_phases_matches_dnf_idea () =
  (* With max_phases = 1 the model is presence-only: recall high,
     precision poor on the impure problem; adding the absence phase must
     improve precision. *)
  let train = problem ~seed:9 ~n:15_000 in
  let test = problem ~seed:10 ~n:10_000 in
  let eval k =
    let m = Pnrule.Multiphase.train ~params:base ~max_phases:k train ~target:1 in
    Pnrule.Multiphase.evaluate m test
  in
  let one = eval 1 and two = eval 2 in
  Alcotest.(check bool)
    (Printf.sprintf "phase-2 precision %.3f > phase-1 %.3f" (C.precision two)
       (C.precision one))
    true
    (C.precision two > C.precision one)

let test_multiphase_no_target_raises () =
  let ds =
    D.create ~attrs:[| A.numeric "x" |] ~columns:[| D.Num [| 1.0 |] |]
      ~labels:[| 0 |] ~classes:[| "neg"; "pos" |] ()
  in
  try
    ignore (Pnrule.Multiphase.train ds ~target:1);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_multiphase_predict_parity () =
  (* A record matching no phase-1 rule is negative regardless of later
     phases. *)
  let train = problem ~seed:11 ~n:10_000 in
  let m = Pnrule.Multiphase.train ~params:base train ~target:1 in
  let probe =
    D.create
      ~attrs:train.D.attrs
      ~columns:[| D.Num [| 5.0 |]; D.Num [| 5.0 |] |]
      ~labels:[| 0 |] ~classes:train.D.classes ()
  in
  Alcotest.(check bool) "far-away record negative" false
    (Pnrule.Multiphase.predict m probe 0)

(* ------------------------------------------------------------------ *)
(* N-stage pruning                                                      *)
(* ------------------------------------------------------------------ *)

let test_n_prune_trains_comparably () =
  let train = problem ~seed:12 ~n:15_000 in
  let test = problem ~seed:13 ~n:10_000 in
  let f n_prune =
    let params = { base with Pnrule.Params.n_prune } in
    C.f_measure
      (Pnrule.Model.evaluate (Pnrule.Learner.train ~params train ~target:1) test)
  in
  let off = f false and on = f true in
  Alcotest.(check bool)
    (Printf.sprintf "pruned N-stage F %.3f within 0.1 of unpruned %.3f" on off)
    true
    (on >= off -. 0.1)

let test_n_prune_never_lengthens () =
  let train = problem ~seed:14 ~n:15_000 in
  let conds n_prune =
    let params = { base with Pnrule.Params.n_prune } in
    let model = Pnrule.Learner.train ~params train ~target:1 in
    Pn_rules.Rule_list.total_conditions model.Pnrule.Model.n_rules
    |> float_of_int
    |> fun total ->
    total /. Float.max 1.0 (float_of_int (Pn_rules.Rule_list.length model.Pnrule.Model.n_rules))
  in
  (* Average N-rule length with pruning must not exceed the unpruned
     average by more than rounding noise. *)
  Alcotest.(check bool) "pruning does not lengthen rules" true
    (conds true <= conds false +. 0.51)

let suite =
  [
    Alcotest.test_case "n-prune: comparable quality" `Quick test_n_prune_trains_comparably;
    Alcotest.test_case "n-prune: rules not longer" `Quick test_n_prune_never_lengthens;
    Alcotest.test_case "auto: trains and reports" `Quick test_auto_trains_and_reports;
    Alcotest.test_case "auto: custom grid" `Quick test_auto_respects_custom_grid;
    Alcotest.test_case "auto: deterministic" `Quick test_auto_deterministic;
    Alcotest.test_case "multiphase: structure" `Quick test_multiphase_structure;
    Alcotest.test_case "multiphase: quality" `Quick test_multiphase_quality;
    Alcotest.test_case "multiphase: absence phase buys precision" `Quick
      test_multiphase_two_phases_matches_dnf_idea;
    Alcotest.test_case "multiphase: no target raises" `Quick test_multiphase_no_target_raises;
    Alcotest.test_case "multiphase: parity prediction" `Quick test_multiphase_predict_parity;
  ]
