(* Tests for the C4.5 tree and C4.5rules baselines. *)

module A = Pn_data.Attribute
module D = Pn_data.Dataset
module P = Pn_c45.Params
module T = Pn_c45.Tree
module R = Pn_c45.Rules
module C = Pn_metrics.Confusion

(* Three-class problem with one numeric and one categorical attribute:
   class 0 iff x < 30; otherwise class depends on color. *)
let mixed ~seed ~n =
  let rng = Pn_util.Rng.create seed in
  let xs = Array.make n 0.0 and cs = Array.make n 0 and labels = Array.make n 0 in
  for i = 0 to n - 1 do
    xs.(i) <- Pn_util.Rng.float rng 100.0;
    cs.(i) <- Pn_util.Rng.int rng 3;
    labels.(i) <- (if xs.(i) < 30.0 then 0 else if cs.(i) = 2 then 2 else 1)
  done;
  D.create
    ~attrs:[| A.numeric "x"; A.categorical "color" [| "r"; "g"; "b" |] |]
    ~columns:[| D.Num xs; D.Cat cs |]
    ~labels
    ~classes:[| "low"; "mid"; "high" |]
    ()

let accuracy tree ds =
  let hits = ref 0 in
  for i = 0 to D.n_records ds - 1 do
    if T.predict tree ds i = D.label ds i then incr hits
  done;
  float_of_int !hits /. float_of_int (D.n_records ds)

(* ------------------------------------------------------------------ *)
(* Tree                                                                 *)
(* ------------------------------------------------------------------ *)

let test_tree_learns_structure () =
  let ds = mixed ~seed:1 ~n:4000 in
  let tree = T.train ds in
  Alcotest.(check bool) "train accuracy" true (accuracy tree ds > 0.99);
  let test = mixed ~seed:2 ~n:4000 in
  Alcotest.(check bool) "test accuracy" true (accuracy tree test > 0.99);
  Alcotest.(check bool) "multiple leaves" true (T.n_leaves tree >= 3)

let test_pruning_shrinks () =
  (* On noisy labels the unpruned tree overfits; pruning must not grow
     the tree. *)
  let rng = Pn_util.Rng.create 3 in
  let n = 2000 in
  let xs = Array.init n (fun _ -> Pn_util.Rng.float rng 1.0) in
  let labels = Array.init n (fun _ -> if Pn_util.Rng.bernoulli rng 0.3 then 1 else 0) in
  let ds =
    D.create ~attrs:[| A.numeric "x" |] ~columns:[| D.Num xs |] ~labels
      ~classes:[| "a"; "b" |] ()
  in
  let unpruned = T.train_unpruned ds in
  let pruned = T.prune unpruned in
  Alcotest.(check bool) "fewer or equal leaves" true
    (T.n_leaves pruned <= T.n_leaves unpruned);
  (* Pure noise should collapse to (nearly) a single leaf. *)
  Alcotest.(check bool)
    (Printf.sprintf "noise collapses (%d leaves)" (T.n_leaves pruned))
    true
    (T.n_leaves pruned <= 3)

let test_max_depth () =
  let ds = mixed ~seed:4 ~n:2000 in
  let params = { P.default with max_depth = 1 } in
  let tree = T.train_unpruned ~params ds in
  Alcotest.(check bool) "depth capped" true (T.depth tree <= 1)

let test_min_objects () =
  let ds = mixed ~seed:5 ~n:200 in
  let params = { P.default with min_objects = 50.0 } in
  let tree = T.train_unpruned ~params ds in
  (* With 200 records and 50 minimum per branch the tree stays tiny. *)
  Alcotest.(check bool) "few leaves" true (T.n_leaves tree <= 4)

let test_paths_consistent_with_predictions () =
  let ds = mixed ~seed:6 ~n:1500 in
  let tree = T.train ds in
  let paths = T.paths tree in
  Alcotest.(check int) "one path per leaf" (T.n_leaves tree) (List.length paths);
  (* Each record must satisfy exactly one path, and that path's class
     must equal the tree's prediction. *)
  for i = 0 to 300 do
    let matching =
      List.filter
        (fun (conds, _, _) ->
          List.for_all (fun c -> Pn_rules.Condition.matches ds c i) conds)
        paths
    in
    match matching with
    | [ (_, cls, _) ] ->
      Alcotest.(check int) "path class = prediction" (T.predict tree ds i) cls
    | other -> Alcotest.failf "record %d matches %d paths" i (List.length other)
  done

let test_binary_evaluation () =
  let ds = mixed ~seed:7 ~n:2000 in
  let tree = T.train ds in
  let cm = T.evaluate_binary tree ds ~target:2 in
  Alcotest.(check (float 1e-6)) "totals" (D.total_weight ds) (C.total cm);
  Alcotest.(check bool) "recall high" true (C.recall cm > 0.95)

let test_weighted_tree () =
  let ds = mixed ~seed:8 ~n:2000 in
  let st = D.stratify ds ~target:2 in
  let tree = T.train st in
  Alcotest.(check bool) "stratified tree trains" true (T.n_leaves tree >= 2)

(* ------------------------------------------------------------------ *)
(* C4.5rules                                                            *)
(* ------------------------------------------------------------------ *)

let test_rules_match_tree_quality () =
  let ds = mixed ~seed:9 ~n:3000 in
  let rules = R.train ds in
  Alcotest.(check bool) "has rules" true (R.n_rules rules >= 2);
  let test = mixed ~seed:10 ~n:3000 in
  let hits = ref 0 in
  for i = 0 to D.n_records test - 1 do
    if R.predict rules test i = D.label test i then incr hits
  done;
  let acc = float_of_int !hits /. float_of_int (D.n_records test) in
  Alcotest.(check bool) (Printf.sprintf "rule accuracy %.3f" acc) true (acc > 0.97)

let test_rules_are_generalizations () =
  (* Generalized rules never have more conditions than the deepest
     tree path. *)
  let ds = mixed ~seed:11 ~n:2000 in
  let tree = T.train_unpruned ds in
  let max_path =
    List.fold_left
      (fun acc (conds, _, _) -> max acc (List.length conds))
      0 (T.paths tree)
  in
  let rules = R.of_tree tree ds in
  List.iter
    (fun (_, rl) ->
      List.iter
        (fun r ->
          Alcotest.(check bool) "not longer than any path" true
            (Pn_rules.Rule.n_conditions r <= max_path))
        (Pn_rules.Rule_list.to_list rl))
    rules.R.groups

let test_default_class_used () =
  (* A trivial dataset where one class never gets rules: the default
     must pick it up. *)
  let ds =
    D.create ~attrs:[| A.numeric "x" |]
      ~columns:[| D.Num [| 1.0; 2.0; 3.0; 4.0; 10.0; 11.0; 12.0; 13.0 |] |]
      ~labels:[| 0; 0; 0; 0; 1; 1; 1; 1 |]
      ~classes:[| "a"; "b" |] ()
  in
  let rules = R.train ds in
  for i = 0 to 7 do
    Alcotest.(check int) "correct" (D.label ds i) (R.predict rules ds i)
  done

let test_binary_eval_rules () =
  let ds = mixed ~seed:12 ~n:2000 in
  let rules = R.train ds in
  let cm = R.evaluate_binary rules ds ~target:1 in
  Alcotest.(check (float 1e-6)) "totals" (D.total_weight ds) (C.total cm)

let suite =
  [
    Alcotest.test_case "tree learns structure" `Quick test_tree_learns_structure;
    Alcotest.test_case "pruning shrinks noise trees" `Quick test_pruning_shrinks;
    Alcotest.test_case "max depth" `Quick test_max_depth;
    Alcotest.test_case "min objects" `Quick test_min_objects;
    Alcotest.test_case "paths consistent with predictions" `Quick test_paths_consistent_with_predictions;
    Alcotest.test_case "binary evaluation" `Quick test_binary_evaluation;
    Alcotest.test_case "weighted (stratified) tree" `Quick test_weighted_tree;
    Alcotest.test_case "c45rules quality" `Quick test_rules_match_tree_quality;
    Alcotest.test_case "rules are generalizations" `Quick test_rules_are_generalizations;
    Alcotest.test_case "default class" `Quick test_default_class_used;
    Alcotest.test_case "rules binary evaluation" `Quick test_binary_eval_rules;
  ]
