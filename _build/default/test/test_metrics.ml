(* Tests for pn_metrics: confusion matrices, rule metrics, MDL. *)

module C = Pn_metrics.Confusion
module RM = Pn_metrics.Rule_metric
module Mdl = Pn_metrics.Mdl

let check_float = Alcotest.(check (float 1e-9))

let check_close eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Confusion                                                            *)
(* ------------------------------------------------------------------ *)

let test_confusion_add () =
  let c =
    C.zero
    |> fun c ->
    C.add c ~actual:true ~predicted:true ~weight:2.0
    |> fun c ->
    C.add c ~actual:true ~predicted:false ~weight:1.0
    |> fun c ->
    C.add c ~actual:false ~predicted:true ~weight:3.0
    |> fun c -> C.add c ~actual:false ~predicted:false ~weight:4.0
  in
  check_float "tp" 2.0 c.C.tp;
  check_float "fn" 1.0 c.C.fn;
  check_float "fp" 3.0 c.C.fp;
  check_float "tn" 4.0 c.C.tn;
  check_float "recall" (2.0 /. 3.0) (C.recall c);
  check_float "precision" (2.0 /. 5.0) (C.precision c);
  check_float "accuracy" 0.6 (C.accuracy c);
  check_float "total" 10.0 (C.total c)

let test_f_measure () =
  let c = { C.tp = 50.0; fp = 50.0; fn = 0.0; tn = 0.0 } in
  (* R = 1, P = 0.5 → F = 2RP/(R+P) = 2/3. *)
  check_float "f1" (2.0 /. 3.0) (C.f_measure c);
  (* β = 2 weighs recall higher. *)
  check_float "f2" (5.0 *. 0.5 /. (4.0 *. 0.5 +. 1.0)) (C.f_measure ~beta:2.0 c);
  check_float "degenerate" 0.0 (C.f_measure { C.tp = 0.0; fp = 0.0; fn = 0.0; tn = 1.0 })

let test_of_predictions () =
  let actual = [| true; false; true |] and predicted = [| true; true; false |] in
  let c = C.of_predictions ~actual ~predicted () in
  check_float "tp" 1.0 c.C.tp;
  check_float "fp" 1.0 c.C.fp;
  check_float "fn" 1.0 c.C.fn;
  let cw = C.of_predictions ~weights:[| 2.0; 3.0; 4.0 |] ~actual ~predicted () in
  check_float "weighted tp" 2.0 cw.C.tp;
  check_float "weighted fp" 3.0 cw.C.fp;
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Confusion.of_predictions: length mismatch") (fun () ->
      ignore (C.of_predictions ~actual ~predicted:[| true |] ()))

(* ------------------------------------------------------------------ *)
(* Rule metrics                                                         *)
(* ------------------------------------------------------------------ *)

let ctx = { RM.pos_total = 10.0; neg_total = 990.0 }

let test_support_accuracy_prior () =
  check_float "support" 30.0 (RM.support { RM.pos = 10.0; neg = 20.0 });
  check_float "accuracy" (1.0 /. 3.0) (RM.accuracy { RM.pos = 10.0; neg = 20.0 });
  check_float "accuracy empty" 0.0 (RM.accuracy { RM.pos = 0.0; neg = 0.0 });
  check_float "prior" 0.01 (RM.prior ctx)

let test_z_number () =
  (* A rule at exactly the prior accuracy has Z = 0. *)
  check_close 1e-9 "at prior" 0.0 (RM.z_number ctx { RM.pos = 1.0; neg = 99.0 });
  let enriched = RM.z_number ctx { RM.pos = 8.0; neg = 2.0 } in
  if enriched <= 0.0 then Alcotest.fail "enriched rule must score positive";
  let depleted = RM.z_number ctx { RM.pos = 0.0; neg = 100.0 } in
  if depleted >= 0.0 then Alcotest.fail "depleted rule must score negative";
  (* Same accuracy, more support → higher Z (the paper's statistical
     support argument). *)
  let small = RM.z_number ctx { RM.pos = 2.0; neg = 2.0 } in
  let large = RM.z_number ctx { RM.pos = 8.0; neg = 8.0 } in
  if large <= small then Alcotest.fail "Z must grow with support at fixed accuracy"

let test_info_gain () =
  check_float "no positives" 0.0 (RM.eval RM.Info_gain ctx { RM.pos = 0.0; neg = 50.0 });
  let g = RM.eval RM.Info_gain ctx { RM.pos = 8.0; neg = 2.0 } in
  check_close 1e-9 "foil formula"
    (8.0 *. (Pn_util.Stats.log2 0.8 -. Pn_util.Stats.log2 0.01))
    g

let test_gini () =
  (* A perfect separator on a balanced context removes all impurity. *)
  let balanced = { RM.pos_total = 50.0; neg_total = 50.0 } in
  check_close 1e-9 "perfect split" 0.5
    (RM.eval RM.Gini balanced { RM.pos = 50.0; neg = 0.0 });
  check_close 1e-9 "useless split" 0.0
    (RM.eval RM.Gini balanced { RM.pos = 25.0; neg = 25.0 })

let test_chi_squared () =
  let enriched = RM.eval RM.Chi_squared ctx { RM.pos = 8.0; neg = 2.0 } in
  if enriched <= 0.0 then Alcotest.fail "enrichment must be positive";
  let depleted = RM.eval RM.Chi_squared ctx { RM.pos = 0.0; neg = 500.0 } in
  if depleted >= 0.0 then Alcotest.fail "depletion must be negative";
  check_float "degenerate full coverage" 0.0
    (RM.eval RM.Chi_squared ctx { RM.pos = 10.0; neg = 990.0 })

let test_laplace () =
  check_float "laplace" (9.0 /. 12.0) (RM.eval RM.Laplace ctx { RM.pos = 8.0; neg = 2.0 });
  check_float "laplace empty" 0.5 (RM.eval RM.Laplace ctx { RM.pos = 0.0; neg = 0.0 })

let test_kind_names () =
  List.iter
    (fun k ->
      match RM.kind_of_string (RM.kind_name k) with
      | Some k' when k' = k -> ()
      | _ -> Alcotest.failf "name roundtrip failed for %s" (RM.kind_name k))
    RM.all_kinds;
  Alcotest.(check bool) "unknown name" true (RM.kind_of_string "nope" = None)

(* ------------------------------------------------------------------ *)
(* MDL                                                                  *)
(* ------------------------------------------------------------------ *)

let test_theory_bits () =
  check_float "empty rule" 0.0 (Mdl.theory_bits ~n_candidate_conditions:100 ~rule_conditions:0);
  let one = Mdl.theory_bits ~n_candidate_conditions:100 ~rule_conditions:1 in
  let three = Mdl.theory_bits ~n_candidate_conditions:100 ~rule_conditions:3 in
  if one <= 0.0 then Alcotest.fail "one condition costs bits";
  if three <= one then Alcotest.fail "more conditions cost more";
  (* Larger candidate alphabets cost more per condition. *)
  let wide = Mdl.theory_bits ~n_candidate_conditions:10_000 ~rule_conditions:3 in
  if wide <= three then Alcotest.fail "alphabet size must matter"

let test_exception_bits () =
  let perfect = Mdl.exception_bits ~covered:100.0 ~uncovered:900.0 ~fp:0.0 ~fn:0.0 in
  let noisy = Mdl.exception_bits ~covered:100.0 ~uncovered:900.0 ~fp:10.0 ~fn:20.0 in
  if noisy <= perfect then Alcotest.fail "errors must cost bits";
  check_float "empty data" 0.0 (Mdl.exception_bits ~covered:0.0 ~uncovered:0.0 ~fp:0.0 ~fn:0.0);
  (* Clamping keeps nonsense inputs finite. *)
  let clamped = Mdl.exception_bits ~covered:10.0 ~uncovered:10.0 ~fp:99.0 ~fn:99.0 in
  if not (Float.is_finite clamped) then Alcotest.fail "must clamp to finite"

let test_ruleset_bits () =
  let dl_empty =
    Mdl.ruleset_bits ~n_candidate_conditions:50 ~rule_sizes:[] ~covered:0.0
      ~uncovered:1000.0 ~fp:0.0 ~fn:10.0
  in
  let dl_good_rule =
    Mdl.ruleset_bits ~n_candidate_conditions:50 ~rule_sizes:[ 2 ] ~covered:10.0
      ~uncovered:990.0 ~fp:0.0 ~fn:0.0
  in
  (* A 2-condition rule explaining all 10 positives should beat paying
     for 10 exceptions. *)
  if dl_good_rule >= dl_empty then Alcotest.fail "useful rule should shrink DL"

(* ------------------------------------------------------------------ *)
(* PR curve                                                             *)
(* ------------------------------------------------------------------ *)

module PR = Pn_metrics.Pr_curve

let test_pr_curve_basic () =
  (* Scores perfectly separate: a threshold between the groups yields
     recall = precision = 1. *)
  let scores = [| 0.9; 0.8; 0.2; 0.1 |] in
  let actual = [| true; true; false; false |] in
  let curve = PR.compute ~scores ~actual () in
  Alcotest.(check int) "one point per distinct score" 4 (List.length curve);
  let best = PR.best_f curve in
  check_float "perfect F" 1.0 best.PR.f_measure;
  check_float "best threshold" 0.8 best.PR.threshold;
  (* The lowest threshold covers everything: recall 1, precision 1/2. *)
  let last = List.nth curve 3 in
  check_float "full recall" 1.0 last.PR.recall;
  check_float "half precision" 0.5 last.PR.precision

let test_pr_curve_monotone_recall () =
  let scores = [| 0.1; 0.5; 0.5; 0.9; 0.3; 0.7 |] in
  let actual = [| false; true; false; true; true; false |] in
  let curve = PR.compute ~scores ~actual () in
  let rec check prev = function
    | [] -> ()
    | p :: rest ->
      if p.PR.recall < prev -. 1e-12 then Alcotest.fail "recall must not decrease";
      check p.PR.recall rest
  in
  check 0.0 curve

let test_pr_curve_weighted () =
  let scores = [| 0.9; 0.1 |] and actual = [| true; true |] in
  let curve = PR.compute ~weights:[| 3.0; 1.0 |] ~scores ~actual () in
  (match curve with
  | [ first; _ ] -> check_float "weighted recall" 0.75 first.PR.recall
  | _ -> Alcotest.fail "expected two points");
  Alcotest.(check bool) "no positives -> empty" true
    (PR.compute ~scores ~actual:[| false; false |] () = [])

let test_pr_curve_auc () =
  (* A perfect classifier's PR curve has area 1. *)
  let scores = [| 1.0; 1.0; 0.0; 0.0 |] in
  let actual = [| true; true; false; false |] in
  let auc = PR.auc_pr (PR.compute ~scores ~actual ()) in
  check_close 1e-9 "perfect auc" 1.0 auc

let test_pr_curve_at_threshold () =
  let scores = [| 0.9; 0.5; 0.1 |] in
  let actual = [| true; false; true |] in
  let curve = PR.compute ~scores ~actual () in
  (match PR.at_threshold curve 0.4 with
  | Some p -> check_float "point at 0.5" 0.5 p.PR.threshold
  | None -> Alcotest.fail "expected a point");
  Alcotest.(check bool) "above max threshold" true (PR.at_threshold curve 0.95 = None)

let qcheck_props =
  [
    QCheck.Test.make ~count:200 ~name:"f-measure between min and max of R,P"
      QCheck.(quad (float_range 0. 50.) (float_range 0. 50.) (float_range 0. 50.) (float_range 0. 50.))
      (fun (tp, fp, fn, tn) ->
        let c = { C.tp; fp; fn; tn } in
        let r = C.recall c and p = C.precision c and f = C.f_measure c in
        f >= Float.min r p -. 1e-9 && f <= Float.max r p +. 1e-9);
    QCheck.Test.make ~count:200 ~name:"z-number sign matches accuracy vs prior"
      QCheck.(pair (float_range 0. 100.) (float_range 0. 100.))
      (fun (pos, neg) ->
        QCheck.assume (pos +. neg > 0.0);
        let z = RM.z_number ctx { RM.pos = pos; neg } in
        let a = pos /. (pos +. neg) in
        let p = RM.prior ctx in
        if a > p then z > 0.0 else if a < p then z < 0.0 else Float.abs z < 1e-9);
    QCheck.Test.make ~count:100 ~name:"theory bits nonnegative, monotone below n/2"
      QCheck.(pair (int_range 1 15) (int_range 40 1000))
      (fun (k, n) ->
        (* Subset coding C(n, k) only grows while k stays below n/2, so
           the monotonicity claim is restricted to that regime. *)
        let b k = Mdl.theory_bits ~n_candidate_conditions:n ~rule_conditions:k in
        b k >= 0.0 && b (k + 1) >= b k -. 1e-6);
  ]

let suite =
  [
    Alcotest.test_case "confusion: add/ratios" `Quick test_confusion_add;
    Alcotest.test_case "confusion: f-measure" `Quick test_f_measure;
    Alcotest.test_case "confusion: of_predictions" `Quick test_of_predictions;
    Alcotest.test_case "rule metric: support/accuracy/prior" `Quick test_support_accuracy_prior;
    Alcotest.test_case "rule metric: z-number" `Quick test_z_number;
    Alcotest.test_case "rule metric: info gain" `Quick test_info_gain;
    Alcotest.test_case "rule metric: gini" `Quick test_gini;
    Alcotest.test_case "rule metric: chi-squared" `Quick test_chi_squared;
    Alcotest.test_case "rule metric: laplace" `Quick test_laplace;
    Alcotest.test_case "rule metric: kind names" `Quick test_kind_names;
    Alcotest.test_case "mdl: theory bits" `Quick test_theory_bits;
    Alcotest.test_case "mdl: exception bits" `Quick test_exception_bits;
    Alcotest.test_case "mdl: ruleset bits" `Quick test_ruleset_bits;
    Alcotest.test_case "pr curve: basics" `Quick test_pr_curve_basic;
    Alcotest.test_case "pr curve: recall monotone" `Quick test_pr_curve_monotone_recall;
    Alcotest.test_case "pr curve: weighted and degenerate" `Quick test_pr_curve_weighted;
    Alcotest.test_case "pr curve: auc" `Quick test_pr_curve_auc;
    Alcotest.test_case "pr curve: at_threshold" `Quick test_pr_curve_at_threshold;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_props
