(* Tests for pn_rules: conditions, rules, ordered rule lists. *)

module A = Pn_data.Attribute
module D = Pn_data.Dataset
module V = Pn_data.View
module Cond = Pn_rules.Condition
module Rule = Pn_rules.Rule
module RL = Pn_rules.Rule_list

let attrs = [| A.numeric "x"; A.categorical "c" [| "a"; "b"; "z" |] |]

let ds =
  lazy
    (D.create ~attrs
       ~columns:[| D.Num [| 1.0; 2.0; 3.0; 4.0 |]; D.Cat [| 0; 1; 0; 2 |] |]
       ~labels:[| 0; 1; 1; 0 |]
       ~classes:[| "neg"; "pos" |]
       ())

(* ------------------------------------------------------------------ *)
(* Conditions                                                           *)
(* ------------------------------------------------------------------ *)

let test_condition_matching () =
  let ds = Lazy.force ds in
  let le = Cond.Num_le { col = 0; threshold = 2.0 } in
  let ge = Cond.Num_ge { col = 0; threshold = 3.0 } in
  let range = Cond.Num_range { col = 0; lo = 2.0; hi = 3.0 } in
  let eq = Cond.Cat_eq { col = 1; value = 0 } in
  Alcotest.(check (list bool)) "le" [ true; true; false; false ]
    (List.init 4 (Cond.matches ds le));
  Alcotest.(check (list bool)) "ge" [ false; false; true; true ]
    (List.init 4 (Cond.matches ds ge));
  Alcotest.(check (list bool)) "range inclusive" [ false; true; true; false ]
    (List.init 4 (Cond.matches ds range));
  Alcotest.(check (list bool)) "cat" [ true; false; true; false ]
    (List.init 4 (Cond.matches ds eq))

let test_condition_col () =
  Alcotest.(check int) "col" 1 (Cond.col (Cond.Cat_eq { col = 1; value = 0 }));
  Alcotest.(check int) "col range" 0 (Cond.col (Cond.Num_range { col = 0; lo = 1.0; hi = 2.0 }))

let test_condition_subsumes () =
  let le5 = Cond.Num_le { col = 0; threshold = 5.0 } in
  let le3 = Cond.Num_le { col = 0; threshold = 3.0 } in
  let ge2 = Cond.Num_ge { col = 0; threshold = 2.0 } in
  let r23 = Cond.Num_range { col = 0; lo = 2.0; hi = 3.0 } in
  let r14 = Cond.Num_range { col = 0; lo = 1.0; hi = 4.0 } in
  Alcotest.(check bool) "wider le subsumes" true (Cond.subsumes le5 le3);
  Alcotest.(check bool) "narrower le does not" false (Cond.subsumes le3 le5);
  Alcotest.(check bool) "le subsumes range" true (Cond.subsumes le5 r23);
  Alcotest.(check bool) "ge subsumes range" true (Cond.subsumes ge2 r23);
  Alcotest.(check bool) "wide range subsumes narrow" true (Cond.subsumes r14 r23);
  Alcotest.(check bool) "narrow range does not" false (Cond.subsumes r23 r14);
  Alcotest.(check bool) "le vs ge unrelated" false (Cond.subsumes le5 ge2);
  Alcotest.(check bool) "different columns" false
    (Cond.subsumes le5 (Cond.Num_le { col = 1; threshold = 3.0 }));
  Alcotest.(check bool) "same cat value" true
    (Cond.subsumes (Cond.Cat_eq { col = 1; value = 0 }) (Cond.Cat_eq { col = 1; value = 0 }));
  Alcotest.(check bool) "different cat value" false
    (Cond.subsumes (Cond.Cat_eq { col = 1; value = 0 }) (Cond.Cat_eq { col = 1; value = 1 }))

let test_condition_print () =
  Alcotest.(check string) "le" "x <= 2.5" (Cond.to_string attrs (Cond.Num_le { col = 0; threshold = 2.5 }));
  Alcotest.(check string) "cat" "c = b" (Cond.to_string attrs (Cond.Cat_eq { col = 1; value = 1 }));
  Alcotest.(check string) "range" "1 <= x <= 2"
    (Cond.to_string attrs (Cond.Num_range { col = 0; lo = 1.0; hi = 2.0 }))

(* ------------------------------------------------------------------ *)
(* Rules                                                                *)
(* ------------------------------------------------------------------ *)

let test_rule_matching () =
  let ds = Lazy.force ds in
  Alcotest.(check bool) "empty matches everything" true (Rule.matches ds Rule.empty 0);
  let rule =
    Rule.of_conditions
      [ Cond.Num_ge { col = 0; threshold = 2.0 }; Cond.Cat_eq { col = 1; value = 0 } ]
  in
  Alcotest.(check (list bool)) "conjunction" [ false; false; true; false ]
    (List.init 4 (Rule.matches ds rule))

let test_rule_editing () =
  let c1 = Cond.Num_le { col = 0; threshold = 3.0 } in
  let c2 = Cond.Cat_eq { col = 1; value = 1 } in
  let rule = Rule.add (Rule.add Rule.empty c1) c2 in
  Alcotest.(check int) "grown" 2 (Rule.n_conditions rule);
  Alcotest.(check int) "truncate" 1 (Rule.n_conditions (Rule.truncate rule 1));
  Alcotest.(check bool) "truncate keeps prefix" true
    (Cond.equal c1 (List.hd (Rule.truncate rule 1).Rule.conditions));
  let removed = Rule.remove_nth rule 0 in
  Alcotest.(check bool) "remove_nth" true (Cond.equal c2 (List.hd removed.Rule.conditions));
  Alcotest.check_raises "remove out of range" (Invalid_argument "Rule.remove_nth")
    (fun () -> ignore (Rule.remove_nth rule 5))

let test_rule_coverage () =
  let ds = Lazy.force ds in
  let v = V.all ds in
  let rule = Rule.of_conditions [ Cond.Num_ge { col = 0; threshold = 2.0 } ] in
  let c = Rule.coverage v rule ~target:1 in
  Alcotest.(check (float 1e-9)) "pos" 2.0 c.Pn_metrics.Rule_metric.pos;
  Alcotest.(check (float 1e-9)) "neg" 1.0 c.Pn_metrics.Rule_metric.neg;
  Alcotest.(check int) "covered view" 3 (V.size (Rule.covered_of v rule));
  Alcotest.(check int) "uncovered view" 1 (V.size (Rule.uncovered_of v rule))

let test_rule_redundancy () =
  let rule = Rule.of_conditions [ Cond.Num_le { col = 0; threshold = 3.0 } ] in
  Alcotest.(check bool) "weaker duplicate is redundant" true
    (Rule.redundant_with rule (Cond.Num_le { col = 0; threshold = 5.0 }));
  Alcotest.(check bool) "other attribute fine" false
    (Rule.redundant_with rule (Cond.Cat_eq { col = 1; value = 0 }))

let test_rule_print () =
  Alcotest.(check string) "empty" "<true>" (Rule.to_string attrs Rule.empty);
  let rule =
    Rule.of_conditions
      [ Cond.Num_le { col = 0; threshold = 1.0 }; Cond.Cat_eq { col = 1; value = 2 } ]
  in
  Alcotest.(check string) "and" "x <= 1 AND c = z" (Rule.to_string attrs rule)

(* ------------------------------------------------------------------ *)
(* Rule lists                                                           *)
(* ------------------------------------------------------------------ *)

let test_rule_list_first_match () =
  let ds = Lazy.force ds in
  let r1 = Rule.of_conditions [ Cond.Cat_eq { col = 1; value = 1 } ] in
  let r2 = Rule.of_conditions [ Cond.Num_ge { col = 0; threshold = 2.0 } ] in
  let rl = RL.of_list [ r1; r2 ] in
  Alcotest.(check int) "length" 2 (RL.length rl);
  (* Record 1 matches both: discovery order wins. *)
  Alcotest.(check (option int)) "first wins" (Some 0) (RL.first_match ds rl 1);
  Alcotest.(check (option int)) "second rule" (Some 1) (RL.first_match ds rl 2);
  Alcotest.(check (option int)) "no match" None (RL.first_match ds rl 0);
  Alcotest.(check bool) "any_match" true (RL.any_match ds rl 3);
  Alcotest.(check int) "covered" 3 (V.size (RL.covered ds rl));
  Alcotest.(check int) "total conditions" 2 (RL.total_conditions rl)

let test_rule_list_empty () =
  let ds = Lazy.force ds in
  let rl = RL.of_list [] in
  Alcotest.(check (option int)) "none" None (RL.first_match ds rl 0);
  Alcotest.(check int) "covered empty" 0 (V.size (RL.covered ds rl))

let qcheck_props =
  [
    QCheck.Test.make ~count:200 ~name:"range matches iff both sides match"
      QCheck.(triple (float_range 0. 10.) (float_range 0. 10.) (float_range 0. 10.))
      (fun (lo, hi, v) ->
        let lo, hi = if lo <= hi then (lo, hi) else (hi, lo) in
        let ds =
          D.create
            ~attrs:[| A.numeric "x" |]
            ~columns:[| D.Num [| v |] |]
            ~labels:[| 0 |] ~classes:[| "c" |] ()
        in
        let range = Cond.matches ds (Cond.Num_range { col = 0; lo; hi }) 0 in
        let both =
          Cond.matches ds (Cond.Num_ge { col = 0; threshold = lo }) 0
          && Cond.matches ds (Cond.Num_le { col = 0; threshold = hi }) 0
        in
        range = both);
    QCheck.Test.make ~count:200 ~name:"subsumption implies match implication"
      QCheck.(
        quad (float_range 0. 10.) (float_range 0. 10.) (float_range 0. 10.)
          (float_range 0. 10.))
      (fun (a, b, c, v) ->
        let mk lo hi = Cond.Num_range { col = 0; lo = Float.min lo hi; hi = Float.max lo hi } in
        let c1 = mk a b and c2 = mk b c in
        QCheck.assume (Cond.subsumes c1 c2);
        let ds =
          D.create
            ~attrs:[| A.numeric "x" |]
            ~columns:[| D.Num [| v |] |]
            ~labels:[| 0 |] ~classes:[| "c" |] ()
        in
        (not (Cond.matches ds c2 0)) || Cond.matches ds c1 0);
  ]

let suite =
  [
    Alcotest.test_case "condition matching" `Quick test_condition_matching;
    Alcotest.test_case "condition col" `Quick test_condition_col;
    Alcotest.test_case "condition subsumption" `Quick test_condition_subsumes;
    Alcotest.test_case "condition printing" `Quick test_condition_print;
    Alcotest.test_case "rule matching" `Quick test_rule_matching;
    Alcotest.test_case "rule editing" `Quick test_rule_editing;
    Alcotest.test_case "rule coverage" `Quick test_rule_coverage;
    Alcotest.test_case "rule redundancy" `Quick test_rule_redundancy;
    Alcotest.test_case "rule printing" `Quick test_rule_print;
    Alcotest.test_case "rule list first match" `Quick test_rule_list_first_match;
    Alcotest.test_case "rule list empty" `Quick test_rule_list_empty;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_props
