test/test_rules.ml: Alcotest Float Lazy List Pn_data Pn_metrics Pn_rules QCheck QCheck_alcotest
