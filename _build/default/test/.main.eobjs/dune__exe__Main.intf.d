test/main.mli:
