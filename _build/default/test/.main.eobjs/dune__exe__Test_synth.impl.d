test/test_synth.ml: Alcotest Array List Pn_data Pn_synth Pn_util Printf
