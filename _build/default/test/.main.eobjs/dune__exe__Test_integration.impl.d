test/test_integration.ml: Alcotest List Pn_data Pn_harness Pn_metrics Pn_synth Pnrule Printf
