test/test_ripper.ml: Alcotest Array List Pn_data Pn_metrics Pn_ripper Pn_rules Pn_util Printf
