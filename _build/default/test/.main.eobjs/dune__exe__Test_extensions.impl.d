test/test_extensions.ml: Alcotest Array Float List Pn_data Pn_metrics Pn_rules Pn_util Pnrule Printf
