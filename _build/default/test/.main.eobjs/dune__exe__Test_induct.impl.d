test/test_induct.ml: Alcotest Array List Pn_data Pn_induct Pn_metrics Pn_rules Pn_util Printf QCheck QCheck_alcotest
