test/test_induct.ml: Alcotest Array Fun List Pn_data Pn_induct Pn_metrics Pn_rules Pn_synth Pn_util Pnrule Printf QCheck QCheck_alcotest
