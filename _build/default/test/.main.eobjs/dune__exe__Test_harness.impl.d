test/test_harness.ml: Alcotest Array List Pn_data Pn_harness Pn_metrics Pn_util
