test/test_data.ml: Alcotest Array Filename Float Fun Gen Hashtbl Int List Pn_data Pn_util QCheck QCheck_alcotest Sys
