test/test_pnrule.ml: Alcotest Array Float List Pn_data Pn_metrics Pn_rules Pn_util Pnrule Printf QCheck QCheck_alcotest
