test/test_serialize.ml: Alcotest Array Filename Float Fun List Pn_data Pn_metrics Pn_rules Pn_util Pnrule Printf Sys
