test/test_util.ml: Alcotest Array Float Fun Gen List Pn_util Printf QCheck QCheck_alcotest
