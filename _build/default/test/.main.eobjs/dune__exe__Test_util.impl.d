test/test_util.ml: Alcotest Array Float Gen List Pn_util QCheck QCheck_alcotest
