test/test_metrics.ml: Alcotest Float List Pn_metrics Pn_util QCheck QCheck_alcotest
