test/test_c45.ml: Alcotest Array List Pn_c45 Pn_data Pn_metrics Pn_rules Pn_util Printf
