(* Tests for the synthetic data generators and the KDD simulator. *)

module D = Pn_data.Dataset
module Sig = Pn_synth.Signature
module Num = Pn_synth.Numerical
module Cat = Pn_synth.Categorical
module Gen = Pn_synth.General
module Kdd = Pn_synth.Kddcup

let class_fraction ds ~target =
  let c = ref 0 in
  for i = 0 to D.n_records ds - 1 do
    if D.label ds i = target then incr c
  done;
  float_of_int !c /. float_of_int (D.n_records ds)

(* ------------------------------------------------------------------ *)
(* Signature peaks                                                      *)
(* ------------------------------------------------------------------ *)

let test_signature_disjoint () =
  List.iter
    (fun shape ->
      let peaks =
        Sig.make ~n_peaks:4 ~total_width:4.0 ~domain:100.0 ~shape ~phase:0.3
      in
      let intervals = Sig.intervals peaks in
      Alcotest.(check int) "4 intervals" 4 (List.length intervals);
      let rec check = function
        | (_, hi) :: ((lo, _) :: _ as rest) ->
          if hi >= lo then Alcotest.fail "peaks overlap";
          check rest
        | _ -> ()
      in
      check intervals)
    [ Sig.Rectangular; Sig.Triangular; Sig.Gaussian ]

let test_signature_samples_inside () =
  let rng = Pn_util.Rng.create 5 in
  List.iter
    (fun shape ->
      let peaks =
        Sig.make ~n_peaks:3 ~total_width:1.0 ~domain:100.0 ~shape ~phase:0.1
      in
      for _ = 1 to 2000 do
        let v = Sig.sample peaks rng in
        if not (Sig.contains peaks v) then
          Alcotest.failf "%s sample %f outside peaks" (Sig.shape_name shape) v
      done)
    [ Sig.Rectangular; Sig.Triangular; Sig.Gaussian ]

let test_signature_at_centers () =
  let peaks = Sig.at_centers ~centers:[| 10.0; 20.0 |] ~width:2.0 ~shape:Sig.Rectangular in
  Alcotest.(check bool) "contains" true (Sig.contains peaks 10.9);
  Alcotest.(check bool) "not contains" false (Sig.contains peaks 15.0)

(* ------------------------------------------------------------------ *)
(* Numerical model                                                      *)
(* ------------------------------------------------------------------ *)

let test_numerical_basics () =
  let spec = Num.nsyn 3 in
  let ds = Num.generate spec ~seed:1 ~n:30_000 in
  Alcotest.(check int) "attrs = tc + ntc" (spec.Num.tc + spec.Num.ntc) (D.n_attrs ds);
  let frac = class_fraction ds ~target:Num.target_class in
  Alcotest.(check bool)
    (Printf.sprintf "target fraction %.4f near 0.003" frac)
    true
    (frac > 0.001 && frac < 0.006)

let test_numerical_deterministic () =
  let spec = Num.nsyn 2 in
  let a = Num.generate spec ~seed:7 ~n:1000 and b = Num.generate spec ~seed:7 ~n:1000 in
  for i = 0 to 999 do
    if D.label a i <> D.label b i then Alcotest.fail "labels differ";
    for j = 0 to D.n_attrs a - 1 do
      if D.num_value a ~col:j i <> D.num_value b ~col:j i then
        Alcotest.fail "values differ"
    done
  done

let test_numerical_signatures_hold () =
  (* Every target record must carry a peak value on its distinguishing
     attribute: nsyn3 has tc = 1, so attribute 0 with 4 peaks of total
     width 0.2. Check via a reference comb built with the same params. *)
  let spec = Num.nsyn 3 in
  let ds = Num.generate spec ~seed:3 ~n:60_000 in
  let inside = ref 0 and total = ref 0 in
  (* Reconstruct: target subclass 0 peaks on attribute 0. *)
  let reference =
    Sig.make ~n_peaks:spec.Num.nsptc ~total_width:(spec.Num.tr +. 1e-6) ~domain:100.0
      ~shape:spec.Num.shape ~phase:0.0
  in
  for i = 0 to D.n_records ds - 1 do
    if D.label ds i = Num.target_class then begin
      incr total;
      if Sig.contains reference (D.num_value ds ~col:0 i) then incr inside
    end
  done;
  Alcotest.(check bool) "some targets exist" true (!total > 50);
  Alcotest.(check int) "all targets inside their peaks" !total !inside

let test_numerical_presets () =
  List.iter
    (fun k ->
      let spec = Num.nsyn k in
      Alcotest.(check bool) "valid" true (spec.Num.tc >= 1 && spec.Num.ntc >= 2))
    [ 1; 2; 3; 4; 5; 6 ];
  (try
     ignore (Num.nsyn 7);
     Alcotest.fail "expected failure"
   with Invalid_argument _ -> ())

let test_numerical_width_override () =
  let spec = Num.with_widths (Num.nsyn 3) ~tr:4.0 ~nr:2.0 in
  Alcotest.(check (float 1e-9)) "tr" 4.0 spec.Num.tr;
  Alcotest.(check (float 1e-9)) "nr" 2.0 spec.Num.nr

(* ------------------------------------------------------------------ *)
(* Categorical model                                                    *)
(* ------------------------------------------------------------------ *)

let test_categorical_basics () =
  let spec = Cat.coa 1 in
  let ds = Cat.generate spec ~seed:1 ~n:30_000 in
  (* 2 attrs per subclass: target 1 subclass, non-target 2. *)
  Alcotest.(check int) "attrs" 6 (D.n_attrs ds);
  let frac = class_fraction ds ~target:Cat.target_class in
  Alcotest.(check bool) "rare" true (frac > 0.001 && frac < 0.006);
  (* Target attributes have the target vocabulary. *)
  Alcotest.(check int) "vocab 400" 400 (Pn_data.Attribute.arity ds.D.attrs.(0));
  Alcotest.(check int) "vocab 100" 100 (Pn_data.Attribute.arity ds.D.attrs.(2))

let test_categorical_signature_words () =
  (* Target records use only signature words (codes < nspa * words) on
     their distinguishing pair. *)
  let spec = Cat.coa 4 in
  let ds = Cat.generate spec ~seed:2 ~n:60_000 in
  let limit = spec.Cat.target.Cat.nspa * spec.Cat.target.Cat.words in
  for i = 0 to D.n_records ds - 1 do
    if D.label ds i = Cat.target_class then begin
      if D.cat_value ds ~col:0 i >= limit then Alcotest.fail "non-signature word on attr 0";
      if D.cat_value ds ~col:1 i >= limit then Alcotest.fail "non-signature word on attr 1"
    end
  done

let test_categorical_presets () =
  List.iter (fun k -> ignore (Cat.coa k)) [ 1; 2; 3; 4; 5; 6 ];
  List.iter (fun k -> ignore (Cat.coad k)) [ 1; 2; 3; 4 ];
  (try
     ignore (Cat.coa 9);
     Alcotest.fail "expected failure"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* General model                                                        *)
(* ------------------------------------------------------------------ *)

let test_general_basics () =
  let ds = Gen.generate Gen.default ~seed:1 ~n:40_000 in
  Alcotest.(check int) "8 attributes" 8 (D.n_attrs ds);
  let frac = class_fraction ds ~target:Gen.target_class in
  Alcotest.(check bool) "rare" true (frac > 0.001 && frac < 0.006);
  (* First four numeric, last four categorical. *)
  for j = 0 to 3 do
    Alcotest.(check bool) "numeric" true (Pn_data.Attribute.is_numeric ds.D.attrs.(j))
  done;
  for j = 4 to 7 do
    Alcotest.(check bool) "categorical" false (Pn_data.Attribute.is_numeric ds.D.attrs.(j))
  done

let test_general_deterministic () =
  let a = Gen.generate Gen.default ~seed:9 ~n:500 in
  let b = Gen.generate Gen.default ~seed:9 ~n:500 in
  for i = 0 to 499 do
    if D.label a i <> D.label b i then Alcotest.fail "labels differ"
  done

(* ------------------------------------------------------------------ *)
(* KDD simulator                                                        *)
(* ------------------------------------------------------------------ *)

let test_kdd_train_proportions () =
  let ds = Kdd.train ~seed:1 ~n:60_000 in
  Alcotest.(check int) "5 classes" 5 (D.n_classes ds);
  let frac c = class_fraction ds ~target:c in
  let check name lo hi v =
    if v < lo || v > hi then Alcotest.failf "%s fraction %.4f outside [%.4f, %.4f]" name v lo hi
  in
  check "dos" 0.76 0.82 (frac Kdd.dos);
  check "normal" 0.17 0.23 (frac Kdd.normal);
  check "probe" 0.005 0.012 (frac Kdd.probe);
  check "r2l" 0.001 0.005 (frac Kdd.r2l)

let test_kdd_test_shift () =
  let ds = Kdd.test ~seed:2 ~n:60_000 in
  let frac c = class_fraction ds ~target:c in
  (* r2l jumps to ~5.2 % in the test distribution. *)
  Alcotest.(check bool)
    (Printf.sprintf "r2l %.4f > 0.03" (frac Kdd.r2l))
    true
    (frac Kdd.r2l > 0.03);
  Alcotest.(check bool) "probe > train share" true (frac Kdd.probe > 0.008)

let test_kdd_schema () =
  let train = Kdd.train ~seed:3 ~n:1000 in
  let test = Kdd.test ~seed:4 ~n:1000 in
  Alcotest.(check int) "22 features" 22 (D.n_attrs train);
  (* Train and test share the schema so models transfer. *)
  Alcotest.(check bool) "same schema" true (train.D.attrs = test.D.attrs);
  Alcotest.(check bool) "same classes" true (train.D.classes = test.D.classes)

let test_kdd_novel_subclasses () =
  let only_test = Kdd.subclass_names ~test_only:true in
  Alcotest.(check bool) "snmpguess is novel" true
    (List.mem "r2l.snmpguess" only_test);
  let train_subs = Kdd.subclass_names ~test_only:false in
  Alcotest.(check bool) "guess_passwd trains" true
    (List.mem "r2l.guess_passwd" train_subs);
  Alcotest.(check bool) "disjoint" true
    (List.for_all (fun s -> not (List.mem s train_subs)) only_test)

let test_kdd_r2l_impure_service () =
  (* The r2l presence signature must be impure: dos and normal traffic
     also use ftp — the paper's motivating example. *)
  let ds = Kdd.train ~seed:5 ~n:200_000 in
  let ftp = ref [] in
  for i = 0 to D.n_records ds - 1 do
    let service =
      Pn_data.Attribute.value_name ds.D.attrs.(16 + 1) (D.cat_value ds ~col:17 i)
    in
    if service = "ftp" then ftp := D.label ds i :: !ftp
  done;
  let has c = List.mem c !ftp in
  Alcotest.(check bool) "r2l uses ftp" true (has Kdd.r2l);
  Alcotest.(check bool) "dos uses ftp too" true (has Kdd.dos);
  Alcotest.(check bool) "normal uses ftp too" true (has Kdd.normal)

let suite =
  [
    Alcotest.test_case "signature peaks disjoint" `Quick test_signature_disjoint;
    Alcotest.test_case "signature samples inside peaks" `Quick test_signature_samples_inside;
    Alcotest.test_case "signature at explicit centers" `Quick test_signature_at_centers;
    Alcotest.test_case "numerical: basics" `Quick test_numerical_basics;
    Alcotest.test_case "numerical: deterministic" `Quick test_numerical_deterministic;
    Alcotest.test_case "numerical: target signatures hold" `Quick test_numerical_signatures_hold;
    Alcotest.test_case "numerical: presets" `Quick test_numerical_presets;
    Alcotest.test_case "numerical: width override" `Quick test_numerical_width_override;
    Alcotest.test_case "categorical: basics" `Quick test_categorical_basics;
    Alcotest.test_case "categorical: signature words" `Quick test_categorical_signature_words;
    Alcotest.test_case "categorical: presets" `Quick test_categorical_presets;
    Alcotest.test_case "general: basics" `Quick test_general_basics;
    Alcotest.test_case "general: deterministic" `Quick test_general_deterministic;
    Alcotest.test_case "kdd: train proportions" `Quick test_kdd_train_proportions;
    Alcotest.test_case "kdd: test distribution shift" `Quick test_kdd_test_shift;
    Alcotest.test_case "kdd: schema" `Quick test_kdd_schema;
    Alcotest.test_case "kdd: novel test subclasses" `Quick test_kdd_novel_subclasses;
    Alcotest.test_case "kdd: r2l service impurity" `Quick test_kdd_r2l_impure_service;
  ]
