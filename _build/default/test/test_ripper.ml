(* Tests for the RIPPER baseline. *)

module A = Pn_data.Attribute
module D = Pn_data.Dataset
module P = Pn_ripper.Params
module L = Pn_ripper.Learner
module M = Pn_ripper.Model
module C = Pn_metrics.Confusion

let separable ~seed ~n =
  let rng = Pn_util.Rng.create seed in
  let xs = Array.make n 0.0 and labels = Array.make n 0 in
  for i = 0 to n - 1 do
    if Pn_util.Rng.bernoulli rng 0.05 then begin
      labels.(i) <- 1;
      xs.(i) <- 70.0 +. Pn_util.Rng.float rng 5.0
    end
    else begin
      let rec draw () =
        let v = Pn_util.Rng.float rng 100.0 in
        if v >= 69.5 && v <= 75.5 then draw () else v
      in
      xs.(i) <- draw ()
    end
  done;
  D.create ~attrs:[| A.numeric "x" |] ~columns:[| D.Num xs |] ~labels
    ~classes:[| "neg"; "pos" |] ()

let categorical_problem ~seed ~n =
  (* Target iff c = b AND d = q; both conditions needed. *)
  let rng = Pn_util.Rng.create seed in
  let cs = Array.make n 0 and ds_col = Array.make n 0 and labels = Array.make n 0 in
  for i = 0 to n - 1 do
    if Pn_util.Rng.bernoulli rng 0.1 then begin
      labels.(i) <- 1;
      cs.(i) <- 1;
      ds_col.(i) <- 1
    end
    else begin
      cs.(i) <- Pn_util.Rng.int rng 3;
      ds_col.(i) <- Pn_util.Rng.int rng 3;
      if cs.(i) = 1 && ds_col.(i) = 1 then cs.(i) <- 0
    end
  done;
  D.create
    ~attrs:[| A.categorical "c" [| "a"; "b"; "z" |]; A.categorical "d" [| "p"; "q"; "r" |] |]
    ~columns:[| D.Cat cs; D.Cat ds_col |]
    ~labels ~classes:[| "neg"; "pos" |] ()

(* ------------------------------------------------------------------ *)

let test_separable () =
  let train = separable ~seed:1 ~n:8000 in
  let model = L.train train ~target:1 in
  Alcotest.(check bool) "has rules" true (M.n_rules model >= 1);
  let cm = M.evaluate model (separable ~seed:2 ~n:8000) in
  Alcotest.(check bool)
    (Printf.sprintf "test F %.3f > 0.95" (C.f_measure cm))
    true
    (C.f_measure cm > 0.95)

let test_categorical_conjunction () =
  let train = categorical_problem ~seed:3 ~n:6000 in
  let model = L.train train ~target:1 in
  let cm = M.evaluate model (categorical_problem ~seed:4 ~n:6000) in
  Alcotest.(check bool)
    (Printf.sprintf "test F %.3f > 0.95" (C.f_measure cm))
    true
    (C.f_measure cm > 0.95)

let test_no_positives_gives_empty_model () =
  let ds =
    D.create ~attrs:[| A.numeric "x" |]
      ~columns:[| D.Num [| 1.0; 2.0; 3.0 |] |]
      ~labels:[| 0; 0; 0 |] ~classes:[| "neg"; "pos" |] ()
  in
  let model = L.train ds ~target:1 in
  Alcotest.(check int) "no rules" 0 (M.n_rules model);
  Alcotest.(check bool) "predicts negative" false (M.predict model ds 0)

let test_rules_only_use_one_sided_conditions () =
  let train = separable ~seed:5 ~n:6000 in
  let model = L.train train ~target:1 in
  List.iter
    (fun r ->
      List.iter
        (fun c ->
          match c with
          | Pn_rules.Condition.Num_range _ ->
            Alcotest.fail "RIPPER must not emit range conditions"
          | Pn_rules.Condition.Num_le _ | Pn_rules.Condition.Num_ge _
          | Pn_rules.Condition.Cat_eq _ ->
            ())
        r.Pn_rules.Rule.conditions)
    (Pn_rules.Rule_list.to_list model.M.rules)

let test_optimization_not_harmful () =
  let train = separable ~seed:6 ~n:6000 in
  let test = separable ~seed:7 ~n:6000 in
  let f k =
    let params = { P.default with optimization_passes = k } in
    C.f_measure (M.evaluate (L.train ~params train ~target:1) test)
  in
  let f0 = f 0 and f2 = f 2 in
  Alcotest.(check bool)
    (Printf.sprintf "k=2 (%.3f) within 0.1 of k=0 (%.3f)" f2 f0)
    true
    (f2 >= f0 -. 0.1)

let test_prune_disabled_overfits_more () =
  let train = separable ~seed:8 ~n:6000 in
  let no_prune =
    L.train ~params:{ P.default with prune = false; optimization_passes = 0 } train
      ~target:1
  in
  let with_prune =
    L.train ~params:{ P.default with optimization_passes = 0 } train ~target:1
  in
  let conds m = Pn_rules.Rule_list.total_conditions m.M.rules in
  Alcotest.(check bool) "pruning does not add conditions" true
    (conds with_prune <= conds no_prune)

let test_stratified_changes_model () =
  let train = separable ~seed:9 ~n:6000 in
  let st = D.stratify train ~target:1 in
  let model = L.train st ~target:1 in
  (* Stratified training must still produce a usable classifier. *)
  let cm = M.evaluate model (separable ~seed:10 ~n:6000) in
  Alcotest.(check bool) "recall decent" true (C.recall cm > 0.8)

let test_deterministic_given_seed () =
  let train = separable ~seed:11 ~n:5000 in
  let m1 = L.train train ~target:1 and m2 = L.train train ~target:1 in
  Alcotest.(check bool) "same predictions" true
    (M.predict_all m1 train = M.predict_all m2 train);
  let m3 = L.train ~params:{ P.default with seed = 99 } train ~target:1 in
  (* A different seed may give a different model, but must stay valid. *)
  Alcotest.(check bool) "other seed trains" true (M.n_rules m3 >= 0)

let suite =
  [
    Alcotest.test_case "separable problem" `Quick test_separable;
    Alcotest.test_case "categorical conjunction" `Quick test_categorical_conjunction;
    Alcotest.test_case "no positives" `Quick test_no_positives_gives_empty_model;
    Alcotest.test_case "one-sided conditions only" `Quick test_rules_only_use_one_sided_conditions;
    Alcotest.test_case "optimization not harmful" `Quick test_optimization_not_harmful;
    Alcotest.test_case "pruning shortens rules" `Quick test_prune_disabled_overfits_more;
    Alcotest.test_case "stratified training" `Quick test_stratified_changes_model;
    Alcotest.test_case "deterministic given seed" `Quick test_deterministic_given_seed;
  ]
