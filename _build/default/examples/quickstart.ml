(* Quickstart: build a small rare-class dataset in memory, train PNrule,
   inspect the two-phase model, and evaluate on held-out data.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A toy deviation-detection problem: 1 % of "sessions" are malicious.
     The malicious signature is impure — bursts of requests (rate > 80)
     also happen for one benign subclass (batch jobs, which additionally
     have large payloads). Exactly the situation PNrule's N-phase exists
     for: the P-rule "rate high" needs a rule for the *absence* of batch
     jobs. *)
  let rng = Pn_util.Rng.create 2024 in
  let n = 30_000 in
  let rate = Array.make n 0.0 and payload = Array.make n 0.0 in
  let labels = Array.make n 0 in
  for i = 0 to n - 1 do
    let r = Pn_util.Rng.float rng 1.0 in
    if r < 0.01 then begin
      (* malicious: high rate, small payloads *)
      labels.(i) <- 1;
      rate.(i) <- 80.0 +. Pn_util.Rng.float rng 20.0;
      payload.(i) <- Pn_util.Rng.float rng 10.0
    end
    else if r < 0.06 then begin
      (* benign batch jobs: high rate AND big payloads *)
      rate.(i) <- 80.0 +. Pn_util.Rng.float rng 20.0;
      payload.(i) <- 50.0 +. Pn_util.Rng.float rng 50.0
    end
    else begin
      (* ordinary traffic *)
      rate.(i) <- Pn_util.Rng.float rng 60.0;
      payload.(i) <- Pn_util.Rng.float rng 100.0
    end
  done;
  let dataset sub_from sub_to =
    let len = sub_to - sub_from in
    let slice a = Array.sub a sub_from len in
    Pn_data.Dataset.create
      ~attrs:[| Pn_data.Attribute.numeric "rate"; Pn_data.Attribute.numeric "payload" |]
      ~columns:[| Pn_data.Dataset.Num (slice rate); Pn_data.Dataset.Num (slice payload) |]
      ~labels:(Array.sub labels sub_from len)
      ~classes:[| "benign"; "malicious" |]
      ()
  in
  let train = dataset 0 20_000 and test = dataset 20_000 30_000 in
  let target = Pn_data.Dataset.class_index train "malicious" in

  (* Train with default parameters: Z-number metric, rp = 0.95, rn = 0.7. *)
  let model, stats = Pnrule.Learner.train_with_stats train ~target in
  Format.printf "%a@." Pnrule.Model.pp model;
  Format.printf "P-phase covered %.1f%% of the malicious class@."
    (100.0 *. stats.Pnrule.Learner.p_coverage);

  (* Evaluate: for rare classes, accuracy is useless — the paper's
     F-measure balances recall and precision. *)
  let cm = Pnrule.Model.evaluate model test in
  Format.printf "held-out: recall=%.3f precision=%.3f F=%.3f (accuracy=%.3f)@."
    (Pn_metrics.Confusion.recall cm)
    (Pn_metrics.Confusion.precision cm)
    (Pn_metrics.Confusion.f_measure cm)
    (Pn_metrics.Confusion.accuracy cm);

  (* Probability-style scores are available per record. *)
  let scored = Pnrule.Model.score model test 0 in
  Format.printf "score of first held-out record: %.2f@." scored
