examples/quickstart.mli:
