examples/rare_sweep.mli:
