examples/fraud_detection.ml: Array Filename Format List Pn_data Pn_harness Pn_util Sys
