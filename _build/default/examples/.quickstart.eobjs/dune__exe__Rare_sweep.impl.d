examples/rare_sweep.ml: List Pn_harness Pn_synth Printf
