examples/threshold_tuning.mli:
