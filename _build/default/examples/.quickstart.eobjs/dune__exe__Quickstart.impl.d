examples/quickstart.ml: Array Format Pn_data Pn_metrics Pn_util Pnrule
