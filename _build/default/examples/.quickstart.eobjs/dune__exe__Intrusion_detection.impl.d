examples/intrusion_detection.ml: Format List Pn_c45 Pn_data Pn_metrics Pn_ripper Pn_synth Pnrule
