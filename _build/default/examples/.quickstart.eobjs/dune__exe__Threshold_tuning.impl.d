examples/threshold_tuning.ml: Array Filename Format Pn_data Pn_metrics Pn_util Pnrule Sys
