(* Fraud detection with mixed attribute types and a CSV round trip.

   Builds a card-transaction dataset (0.4 % fraud) with the row-level
   Builder API, saves it to CSV, loads it back (exercising schema
   inference), and compares PNrule's parameter grid against RIPPER.

   Run with: dune exec examples/fraud_detection.exe *)

let categories = [| "grocery"; "fuel"; "electronics"; "travel"; "jewelry"; "other" |]

let countries = [| "domestic"; "nearby"; "far" |]

let make_dataset ~seed ~n =
  let rng = Pn_util.Rng.create seed in
  let attrs =
    [|
      Pn_data.Attribute.numeric "amount";
      Pn_data.Attribute.numeric "hour";
      Pn_data.Attribute.numeric "txn_last_24h";
      Pn_data.Attribute.categorical "merchant" categories;
      Pn_data.Attribute.categorical "country" countries;
    |]
  in
  let b = Pn_data.Builder.create ~attrs ~classes:[| "legit"; "fraud" |] in
  for _ = 1 to n do
    let fraud = Pn_util.Rng.bernoulli rng 0.004 in
    let night_owl = Pn_util.Rng.bernoulli rng 0.08 in
    let cells =
      if fraud then
        (* Fraud: high-value electronics/jewelry from far away, at night,
           in bursts. Impure: night-owl travellers share most of it. *)
        [|
          Pn_data.Builder.Fnum (300.0 +. Pn_util.Rng.float rng 1500.0);
          Pn_data.Builder.Fnum (Pn_util.Rng.float rng 6.0);
          Pn_data.Builder.Fnum (4.0 +. Pn_util.Rng.float rng 12.0);
          Pn_data.Builder.Fcat (if Pn_util.Rng.bool rng then 2 else 4);
          Pn_data.Builder.Fcat 2;
        |]
      else if night_owl then
        [|
          Pn_data.Builder.Fnum (200.0 +. Pn_util.Rng.float rng 1200.0);
          Pn_data.Builder.Fnum (Pn_util.Rng.float rng 6.0);
          Pn_data.Builder.Fnum (Pn_util.Rng.float rng 4.0);
          Pn_data.Builder.Fcat 3;
          Pn_data.Builder.Fcat 2;
        |]
      else
        [|
          Pn_data.Builder.Fnum (5.0 +. Pn_util.Rng.float rng 200.0);
          Pn_data.Builder.Fnum (7.0 +. Pn_util.Rng.float rng 16.0);
          Pn_data.Builder.Fnum (Pn_util.Rng.float rng 5.0);
          Pn_data.Builder.Fcat (Pn_util.Rng.int rng (Array.length categories));
          Pn_data.Builder.Fcat (if Pn_util.Rng.bernoulli rng 0.9 then 0 else 1);
        |]
    in
    Pn_data.Builder.add_row b cells ~label:(if fraud then 1 else 0)
  done;
  Pn_data.Builder.to_dataset b

let () =
  let train = make_dataset ~seed:7 ~n:80_000 in
  let test = make_dataset ~seed:8 ~n:40_000 in

  (* Round-trip through CSV to show the file-based workflow. *)
  let path = Filename.temp_file "fraud" ".csv" in
  Pn_data.Csv_io.save train path;
  let train = Pn_data.Csv_io.load path in
  Sys.remove path;
  let target = Pn_data.Dataset.class_index train "fraud" in
  Format.printf "%a@." Pn_data.Dataset.pp_summary train;

  (* Paper protocol: try PNrule's small rp × rn grid, keep the best. *)
  let results =
    Pn_harness.Experiment.run_all
      (Pn_harness.Methods.pnrule_grid ())
      ~train ~test ~target
  in
  List.iter
    (fun (r : Pn_harness.Experiment.result) ->
      Format.printf "%-24s F=%.4f (R=%.3f, P=%.3f)@." r.method_name r.f_measure
        r.recall r.precision)
    results;
  let best = Pn_harness.Experiment.best_of ~name:"PNrule(best)" results in
  let ripper =
    Pn_harness.Experiment.run (Pn_harness.Methods.ripper ()) ~train ~test ~target
  in
  Format.printf "@.%-24s F=%.4f@." best.method_name best.f_measure;
  Format.printf "%-24s F=%.4f@." ripper.method_name ripper.f_measure
