(* Intrusion detection on the simulated KDDCUP'99 data (the paper's §4).

   Trains classifiers for the rare r2l class (0.23 % of training traffic)
   and shows why two-phase induction helps: the r2l "presence" signature
   (ftp/telnet services) also covers dos floods, so precision comes from
   the N-phase learning the absence of dos.

   Run with: dune exec examples/intrusion_detection.exe *)

let () =
  let train = Pn_synth.Kddcup.train ~seed:42 ~n:60_000 in
  let test = Pn_synth.Kddcup.test ~seed:43 ~n:40_000 in
  let target = Pn_synth.Kddcup.r2l in
  Format.printf "training data:@.%a@." Pn_data.Dataset.pp_summary train;

  (* The paper's best r2l setting: information-gain metric and very
     general one-condition P-rules (r2l.P1), leaving false-positive
     removal entirely to the N-phase. *)
  let params =
    {
      Pnrule.Params.default with
      metric = Pn_metrics.Rule_metric.Info_gain;
      min_coverage = 0.95;
      recall_floor = 0.95;
      max_p_rule_length = Some 1;
    }
  in
  let model, stats = Pnrule.Learner.train_with_stats ~params train ~target in
  Format.printf "@.PNrule model for r2l:@.%a@." Pnrule.Model.pp model;
  List.iteri
    (fun i (fp, tp) ->
      Format.printf "N-rule %d removes %.0f false positives at the cost of %.0f r2l records@."
        i fp tp)
    stats.Pnrule.Learner.n_rule_coverage;

  let report name cm =
    Format.printf "%-12s recall=%.4f precision=%.4f F=%.4f@." name
      (Pn_metrics.Confusion.recall cm)
      (Pn_metrics.Confusion.precision cm)
      (Pn_metrics.Confusion.f_measure cm)
  in
  Format.printf "@.test-set comparison for r2l (shifted distribution, novel attacks):@.";
  report "PNrule" (Pnrule.Model.evaluate model test);
  let ripper = Pn_ripper.Learner.train train ~target in
  report "RIPPER" (Pn_ripper.Model.evaluate ripper test);
  let c45 = Pn_c45.Rules.train train in
  report "C4.5rules" (Pn_c45.Rules.evaluate_binary c45 test ~target);
  Format.printf
    "@.(test recall is inherently limited: the test r2l mass is dominated by@ \
     attack subclasses absent from training, as in the real contest data)@."
