(* Operating-point tuning and model lifecycle:
   - Pnrule.Auto picks the rp/rn recall limits on a validation split
     (the paper's §5 "automating the selection of recall limits");
   - Pn_metrics.Pr_curve turns the model's probability-like scores into
     the full precision-recall trade-off (the paper fixes the threshold
     at 50 %; deployments rarely can);
   - Pnrule.Serialize round-trips the model through a file.

   Run with: dune exec examples/threshold_tuning.exe *)

let make ~seed ~n =
  let rng = Pn_util.Rng.create seed in
  let xs = Array.make n 0.0 and ys = Array.make n 0.0 and labels = Array.make n 0 in
  for i = 0 to n - 1 do
    let r = Pn_util.Rng.float rng 1.0 in
    if r < 0.008 then begin
      labels.(i) <- 1;
      xs.(i) <- 30.0 +. Pn_util.Rng.float rng 2.0;
      ys.(i) <- Pn_util.Rng.float rng 100.0
    end
    else if r < 0.04 then begin
      (* decoy inside the target's band *)
      xs.(i) <- 30.0 +. Pn_util.Rng.float rng 2.0;
      ys.(i) <- 55.0 +. Pn_util.Rng.float rng 15.0
    end
    else begin
      (* Ordinary traffic stays out of the alert band, so the only
         in-band negatives are the decoys the N-phase can learn. *)
      let rec draw () =
        let v = Pn_util.Rng.float rng 100.0 in
        if v >= 29.9 && v <= 32.1 then draw () else v
      in
      xs.(i) <- draw ();
      ys.(i) <- Pn_util.Rng.float rng 100.0
    end
  done;
  Pn_data.Dataset.create
    ~attrs:[| Pn_data.Attribute.numeric "x"; Pn_data.Attribute.numeric "y" |]
    ~columns:[| Pn_data.Dataset.Num xs; Pn_data.Dataset.Num ys |]
    ~labels ~classes:[| "ok"; "alert" |] ()

let () =
  let train = make ~seed:31 ~n:40_000 in
  let test = make ~seed:32 ~n:20_000 in
  let target = Pn_data.Dataset.class_index train "alert" in

  (* 1. Let the library choose rp and rn. *)
  let model, choice = Pnrule.Auto.train train ~target in
  Format.printf "chosen: rp=%.2f rn=%.2f P1=%b (validation F=%.3f)@."
    choice.Pnrule.Auto.params.Pnrule.Params.min_coverage
    choice.Pnrule.Auto.params.Pnrule.Params.recall_floor
    (choice.Pnrule.Auto.params.Pnrule.Params.max_p_rule_length = Some 1)
    choice.Pnrule.Auto.validation_f;

  (* 2. Examine the score distribution instead of trusting 0.5. *)
  let scores = Pnrule.Model.score_all model test in
  let actual = Pn_data.Dataset.binary_labels test ~target in
  let curve = Pn_metrics.Pr_curve.compute ~scores ~actual () in
  let best = Pn_metrics.Pr_curve.best_f curve in
  Format.printf "AUC-PR: %.3f@." (Pn_metrics.Pr_curve.auc_pr curve);
  Format.printf "best F %.3f at threshold %.2f (R=%.3f, P=%.3f)@."
    best.Pn_metrics.Pr_curve.f_measure best.Pn_metrics.Pr_curve.threshold
    best.Pn_metrics.Pr_curve.recall best.Pn_metrics.Pr_curve.precision;
  (match Pn_metrics.Pr_curve.at_threshold curve 0.5 with
  | Some p ->
    Format.printf "paper's fixed 0.5 threshold: F=%.3f@." p.Pn_metrics.Pr_curve.f_measure
  | None -> ());

  (* 3. Persist and reload; predictions survive the round trip. *)
  let path = Filename.temp_file "alert_model" ".pn" in
  Pnrule.Serialize.save model path;
  let reloaded = Pnrule.Serialize.load path in
  Sys.remove path;
  assert (Pnrule.Model.predict_all reloaded test = Pnrule.Model.predict_all model test);
  Format.printf "model round-tripped through %s@." (Filename.basename path)
