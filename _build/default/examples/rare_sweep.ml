(* Why PNrule is *especially* a rare-class method (the paper's §3.3 /
   Table 5): as the target class proportion grows, the advantage over
   single-phase learners shrinks.

   Sweeps the target proportion of the syngen model by sub-sampling the
   non-target class and prints F for PNrule vs RIPPER vs C4.5rules.

   Run with: dune exec examples/rare_sweep.exe *)

let () =
  let spec = { Pn_synth.General.default with Pn_synth.General.target_fraction = 0.008 } in
  let target = Pn_synth.General.target_class in
  let train0 = Pn_synth.General.generate spec ~seed:101 ~n:60_000 in
  let test0 = Pn_synth.General.generate spec ~seed:102 ~n:30_000 in
  Printf.printf "%8s  %6s  %9s  %8s  %8s\n" "ntc-frac" "tc %" "C4.5rules" "RIPPER"
    "PNrule";
  List.iter
    (fun frac ->
      let train =
        Pn_harness.Sampling.subsample_non_target train0 ~target ~fraction:frac
          ~seed:201
      in
      let test =
        Pn_harness.Sampling.subsample_non_target test0 ~target ~fraction:frac
          ~seed:202
      in
      let tc_pct = Pn_harness.Sampling.target_percentage train ~target in
      let f spec = (Pn_harness.Experiment.run spec ~train ~test ~target).f_measure in
      let pn =
        (Pn_harness.Experiment.best_of
           (Pn_harness.Experiment.run_all
              (Pn_harness.Methods.pnrule_grid ())
              ~train ~test ~target))
          .f_measure
      in
      Printf.printf "%8.3f  %5.1f%%  %9.4f  %8.4f  %8.4f\n%!" frac tc_pct
        (f (Pn_harness.Methods.c45rules ()))
        (f (Pn_harness.Methods.ripper ()))
        pn)
    [ 1.0; 0.1; 0.02 ]
