(** Supervised background retraining on drift detections.

    Owns a {!Drift} monitor and a bounded reservoir of recent labeled
    rows (fed from the daemon's feedback endpoint). A background domain
    polls {!tick}: when the monitor detects drift, the retrainer
    snapshots the reservoir, round-trips it through the binary [.pnc]
    path, retrains the current model kind (same decision parameters,
    the configured sub-sampling), derives fresh expectations, publishes
    the result as the next registry generation under the
    [retrain.publish] fault point, and triggers the caller's rollout —
    the daemon's canary-warmed flip.

    Failure discipline: any stage failure (including injected
    [retrain.train] / [retrain.publish] faults) is caught, counted by
    outcome and surfaced in {!stats}; the serving generation is never
    touched by a failed attempt, and retries are scheduled with
    exponential backoff against wall clock — never a hot loop. After
    [max_attempts] failures the detection is dropped; persistent drift
    re-detects. *)

type config = {
  drift : Drift.config;
  reservoir : int;  (** max labeled rows retained (whole-chunk eviction) *)
  min_rows : int;  (** below this, a detection resolves as [no_data] *)
  sampling : Pn_induct.Sampling.t;  (** sub-sampling for the retrain *)
  poll_interval : float;  (** background loop period, seconds *)
  max_attempts : int;  (** failed attempts before dropping a detection *)
  spill_dir : string option;
      (** where the snapshot [.pnc] spills; default: the registry
          directory *)
}

(** Default drift config, 100k-row reservoir, 256 min rows, no
    sampling, 0.25 s poll, 5 attempts, registry-dir spill. *)
val default_config : config

type outcome = Ok_retrain | No_data | Train_error | Publish_error | Rollout_error

type stats = {
  ok : int;
  no_data : int;
  train_error : int;
  publish_error : int;
  rollout_error : int;
  pending : bool;  (** a detection awaits a (re)attempt *)
  attempt : int;
  reservoir_rows : int;
  last_error : string option;
  last_duration : float;  (** seconds; 0.0 until a retrain completed *)
}

type t

(** [create ~slots ~registry ~model ~rollout ()] builds a stopped
    retrainer. [model] must return the currently served model (the
    retrain inherits its kind, decision parameters and target);
    [rollout ~gen] must flip the daemon to the published generation
    through its staged path and report failure as [Error]. [slots] is
    the worker-domain count for the embedded drift monitor. Raises
    [Invalid_argument] on a malformed config. *)
val create :
  ?config:config ->
  slots:int ->
  registry:Pnrule.Registry.t ->
  model:(unit -> Pnrule.Saved.t) ->
  rollout:(gen:int -> (unit, string) result) ->
  unit ->
  t

(** The embedded drift monitor — the serving path feeds
    {!Drift.observe} / {!Drift.set_model} through this. *)
val drift : t -> Drift.t

(** [add t ds] appends a chunk of labeled rows to the reservoir,
    evicting the oldest chunks once the row cap is exceeded. [ds] must
    be on the model's schema; the caller must pass an owned dataset
    (never one aliasing decoder buffers). Lock-guarded, cheap, callable
    from any worker. *)
val add : t -> Pn_data.Dataset.t -> unit

val reservoir_rows : t -> int

(** One scheduler step, runnable deterministically from tests: polls
    the drift monitor, and — when a detection is pending and its
    backoff has elapsed (against [now], default
    [Unix.gettimeofday ()]) — runs one retrain attempt. Returns the
    newly published generation on a fully successful
    retrain+publish+rollout, [None] otherwise. Serialized internally;
    never raises. *)
val tick : ?now:float -> t -> int option

val stats : t -> stats

(** Spawn the background polling domain. Raises [Invalid_argument] if
    already started. *)
val start : t -> unit

(** Stop and join the background domain; idempotent. *)
val stop : t -> unit
