(* Supervised background retraining: the adaptation loop's slow half.

   The drift monitor accumulates on the serving path; this domain polls
   it. On a detection the retrainer snapshots its bounded reservoir of
   recent labeled rows, spills the snapshot through the binary .pnc
   round-trip (the same decode path a file-based retrain would take),
   retrains the current model kind with the configured sub-sampling,
   derives fresh expectations, publishes the result as the next registry
   generation under the [retrain.publish] fault point and asks the
   serving layer to roll it out through the normal canary-warmed path.

   Failure discipline: every stage failure — including injected
   [retrain.train] / [retrain.publish] faults — is caught, counted by
   outcome and reported; the serving generation is never touched by a
   failed attempt (a torn publish removes its temp file and allocates
   no generation), and retries are Backoff-scheduled against wall
   clock, never a hot loop. After [max_attempts] the detection is
   dropped: the monitor will re-detect if the drift persists. *)

let src = Logs.Src.create "pnrule.retrainer" ~doc:"background drift retraining"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  drift : Drift.config;
  reservoir : int;
  min_rows : int;
  sampling : Pn_induct.Sampling.t;
  poll_interval : float;
  max_attempts : int;
  spill_dir : string option;
}

let default_config =
  {
    drift = Drift.default_config;
    reservoir = 100_000;
    min_rows = 256;
    sampling = Pn_induct.Sampling.none;
    poll_interval = 0.25;
    max_attempts = 5;
    spill_dir = None;
  }

type outcome = Ok_retrain | No_data | Train_error | Publish_error | Rollout_error

type stats = {
  ok : int;
  no_data : int;
  train_error : int;
  publish_error : int;
  rollout_error : int;
  pending : bool;
  attempt : int;
  reservoir_rows : int;
  last_error : string option;
  last_duration : float;  (** seconds; 0.0 until a retrain completed *)
}

type t = {
  config : config;
  drift : Drift.t;
  registry : Pnrule.Registry.t;
  model : unit -> Pnrule.Saved.t;
  rollout : gen:int -> (unit, string) result;
  (* reservoir: newest chunk first, bounded by whole-chunk eviction *)
  res_mutex : Mutex.t;
  mutable chunks : Pn_data.Dataset.t list;
  mutable res_rows : int;
  (* retrain scheduling, serialized by tick_mutex *)
  tick_mutex : Mutex.t;
  pending : bool Atomic.t;
  attempt : int Atomic.t;
  mutable not_before : float;
  (* observability *)
  c_ok : int Atomic.t;
  c_no_data : int Atomic.t;
  c_train_error : int Atomic.t;
  c_publish_error : int Atomic.t;
  c_rollout_error : int Atomic.t;
  last_error : string option Atomic.t;
  last_duration : float Atomic.t;
  stop_req : bool Atomic.t;
  mutable domain : unit Domain.t option;
}

let create ?(config = default_config) ~slots ~registry ~model ~rollout () =
  if config.reservoir < 1 then invalid_arg "Retrainer.create: reservoir";
  if config.min_rows < 1 then invalid_arg "Retrainer.create: min_rows";
  if config.poll_interval <= 0.0 then
    invalid_arg "Retrainer.create: poll_interval";
  if config.max_attempts < 1 then invalid_arg "Retrainer.create: max_attempts";
  {
    config;
    drift = Drift.create ~config:config.drift ~slots ();
    registry;
    model;
    rollout;
    res_mutex = Mutex.create ();
    chunks = [];
    res_rows = 0;
    tick_mutex = Mutex.create ();
    pending = Atomic.make false;
    attempt = Atomic.make 0;
    not_before = 0.0;
    c_ok = Atomic.make 0;
    c_no_data = Atomic.make 0;
    c_train_error = Atomic.make 0;
    c_publish_error = Atomic.make 0;
    c_rollout_error = Atomic.make 0;
    last_error = Atomic.make None;
    last_duration = Atomic.make 0.0;
    stop_req = Atomic.make false;
    domain = None;
  }

let drift t = t.drift

(* Bounded by whole-chunk eviction from the OLD end: the list holds the
   newest window of labeled rows, which is exactly what a retrain should
   learn from. *)
let add t ds =
  let n = Pn_data.Dataset.n_records ds in
  if n > 0 then begin
    Mutex.lock t.res_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.res_mutex)
      (fun () ->
        t.chunks <- ds :: t.chunks;
        t.res_rows <- t.res_rows + n;
        if t.res_rows > t.config.reservoir then begin
          (* Drop oldest chunks (list tail) while the newer ones alone
             still satisfy the cap. *)
          let rec keep rows = function
            | [] -> ([], rows)
            | c :: rest ->
              let nc = Pn_data.Dataset.n_records c in
              if rows + nc > t.config.reservoir && rows > 0 then (* evict c and everything older *)
                ([], rows)
              else
                let kept, rows' = keep (rows + nc) rest in
                (c :: kept, rows')
          in
          let kept, rows = keep 0 t.chunks in
          t.chunks <- kept;
          t.res_rows <- rows
        end)
  end

let reservoir_rows t =
  Mutex.lock t.res_mutex;
  let n = t.res_rows in
  Mutex.unlock t.res_mutex;
  n

let snapshot_reservoir t =
  Mutex.lock t.res_mutex;
  let chunks = t.chunks in
  Mutex.unlock t.res_mutex;
  match chunks with
  | [] -> None
  | newest :: older ->
    (* Oldest-first concatenation keeps row order chronological. *)
    Some
      (List.fold_left
         (fun acc c -> Pn_data.Dataset.append c acc)
         newest older)

(* Transient errnos injected at [retrain.train] get the same bounded
   backed-off absorption as the registry's load path; anything else is a
   training failure for the attempt-level retry to handle. *)
let train_fault_gate () =
  let rec pass attempt =
    match Pn_util.Fault.check "retrain.train" with
    | () -> ()
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      when attempt < 5 ->
      Pn_util.Backoff.sleep ~attempt ();
      pass (attempt + 1)
  in
  pass 0

let spill_path t =
  let dir =
    match t.config.spill_dir with
    | Some d -> d
    | None -> Pnrule.Registry.dir t.registry
  in
  Filename.concat dir (Printf.sprintf "retrain-%d.pnc" (Unix.getpid ()))

(* One full retrain attempt. Returns the outcome and, on success, the
   published generation. Never raises. *)
let attempt_retrain t =
  let t0 = Unix.gettimeofday () in
  let fail_with outcome counter msg =
    Atomic.incr counter;
    Atomic.set t.last_error (Some msg);
    Log.warn (fun m -> m "retrain failed: %s" msg);
    (outcome, None)
  in
  let result =
    match snapshot_reservoir t with
    | None -> (No_data, None)
    | Some mem when Pn_data.Dataset.n_records mem < t.config.min_rows ->
      (No_data, None)
    | Some mem -> (
      let trained =
        try
          (* .pnc-backed spill: the snapshot round-trips through the
             binary columnar path, so the retrain consumes exactly what
             a file-based retrain would — and the spill is on disk for
             post-mortems if training brings the domain down. *)
          let spill = spill_path t in
          let ds =
            Fun.protect
              ~finally:(fun () ->
                try Sys.remove spill with Sys_error _ -> ())
              (fun () ->
                Pn_data.Columnar.save mem spill;
                Pn_data.Columnar.load spill)
          in
          train_fault_gate ();
          let current = t.model () in
          let target = Pnrule.Saved.target current in
          let sm =
            match current with
            | Pnrule.Saved.Single m ->
              Pnrule.Saved.Single
                (Pnrule.Learner.train ~params:m.Pnrule.Model.params
                   ~sampling:t.config.sampling ds ~target)
            | Pnrule.Saved.Boosted e ->
              Pnrule.Saved.Boosted
                (Pnrule.Ensemble.train
                   ~params:
                     {
                       Pnrule.Ensemble.default_params with
                       threshold = e.Pnrule.Ensemble.threshold;
                     }
                   ~sampling:t.config.sampling ds ~target)
          in
          let exp = Expectations.derive sm ds in
          Ok (sm, exp)
        with e -> Error (Printexc.to_string e)
      in
      match trained with
      | Error msg -> fail_with Train_error t.c_train_error ("train: " ^ msg)
      | Ok (sm, exp) -> (
        match
          Pnrule.Registry.publish ~expectations:exp
            ~fault_point:"retrain.publish" t.registry sm
        with
        | exception e ->
          fail_with Publish_error t.c_publish_error
            ("publish: " ^ Printexc.to_string e)
        | gen -> (
          match t.rollout ~gen with
          | Ok () ->
            Atomic.incr t.c_ok;
            Atomic.set t.last_error None;
            Log.info (fun m -> m "retrained and rolled out generation %d" gen);
            (Ok_retrain, Some gen)
          | Error msg ->
            fail_with Rollout_error t.c_rollout_error
              (Printf.sprintf "rollout of generation %d: %s" gen msg))))
  in
  (match result with
  | No_data, _ ->
    Atomic.incr t.c_no_data;
    Atomic.set t.last_error
      (Some
         (Printf.sprintf "no data: reservoir below min_rows (%d)"
            t.config.min_rows))
  | _ -> ());
  Atomic.set t.last_duration (Unix.gettimeofday () -. t0);
  result

let tick ?now t =
  Mutex.lock t.tick_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.tick_mutex)
    (fun () ->
      let now = match now with Some v -> v | None -> Unix.gettimeofday () in
      (match Drift.check t.drift with
      | Some d ->
        Log.info (fun m ->
            m "drift detected: rule %d score %.3f (window %d)" d.Drift.rule
              d.Drift.score d.Drift.window);
        if not (Atomic.get t.pending) then begin
          Atomic.set t.pending true;
          Atomic.set t.attempt 0;
          t.not_before <- now
        end
      | None -> ());
      if Atomic.get t.pending && now >= t.not_before then begin
        let outcome, gen = attempt_retrain t in
        (match outcome with
        | Ok_retrain | No_data ->
          (* Success clears the detection; so does an empty reservoir —
             nothing to learn from until more labels arrive, and the
             monitor will re-detect if the drift persists. *)
          Atomic.set t.pending false;
          Atomic.set t.attempt 0
        | Train_error | Publish_error | Rollout_error ->
          let a = Atomic.get t.attempt + 1 in
          Atomic.set t.attempt a;
          if a >= t.config.max_attempts then begin
            Log.warn (fun m ->
                m "giving up after %d failed retrain attempts" a);
            Atomic.set t.pending false;
            Atomic.set t.attempt 0
          end
          else
            (* Never a hot loop: the next attempt waits out an
               exponential, jittered delay. *)
            t.not_before <-
              now +. Pn_util.Backoff.delay ~base:0.1 ~cap:5.0 ~attempt:a ());
        gen
      end
      else None)

let stats t =
  {
    ok = Atomic.get t.c_ok;
    no_data = Atomic.get t.c_no_data;
    train_error = Atomic.get t.c_train_error;
    publish_error = Atomic.get t.c_publish_error;
    rollout_error = Atomic.get t.c_rollout_error;
    pending = Atomic.get t.pending;
    attempt = Atomic.get t.attempt;
    reservoir_rows = reservoir_rows t;
    last_error = Atomic.get t.last_error;
    last_duration = Atomic.get t.last_duration;
  }

let start t =
  match t.domain with
  | Some _ -> invalid_arg "Retrainer.start: already started"
  | None ->
    Atomic.set t.stop_req false;
    t.domain <-
      Some
        (Domain.spawn (fun () ->
             while not (Atomic.get t.stop_req) do
               (try ignore (tick t)
                with e ->
                  (* The loop must survive anything an attempt leaks —
                     a dead retrainer is silent non-adaptation. *)
                  Atomic.set t.last_error (Some (Printexc.to_string e)));
               (* OCaml's Condition has no timed wait; a bounded sleep
                  poll keeps the loop simple and cheap. *)
               if not (Atomic.get t.stop_req) then
                 Unix.sleepf t.config.poll_interval
             done))

let stop t =
  match t.domain with
  | None -> ()
  | Some d ->
    Atomic.set t.stop_req true;
    Domain.join d;
    t.domain <- None
