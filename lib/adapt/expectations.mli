(** Per-rule training-time baselines for the online drift monitor.

    An alias of {!Pnrule.Saved.expectations} — the record serialization
    format v4 persists next to the model — plus the one derivation the
    trainer and background retrainer share. *)

type t = Pnrule.Saved.expectations = {
  rates : float array;
  precisions : float array;
  support : int;
}

(** [derive sm ds] replays [ds] through the same compiled batch path
    serving uses and returns each monitored rule's firing rate (fraction
    of rows whose first matching P-rule it was, or — for a boosted
    ensemble — the fraction of rows the member covered) and precision
    (fraction of its firings whose label was the target class; 0 for a
    rule that never fired). [support] is [Dataset.n_records ds]. Raises
    [Invalid_argument] on an empty dataset. *)
val derive : ?pool:Pn_util.Pool.t -> Pnrule.Saved.t -> Pn_data.Dataset.t -> t
