(* Deriving the drift monitor's baseline: replay the training (or any
   reference) set through the exact batch path serving uses, and record
   what each monitored rule did there. Matching the serving path's
   semantics — FIRST-match attribution for a single model's P-rules,
   per-member coverage for a boosted ensemble — is what makes the
   baseline comparable to online counts: both sides count the same
   event. *)

type t = Pnrule.Saved.expectations = {
  rates : float array;
  precisions : float array;
  support : int;
}

let derive ?pool (sm : Pnrule.Saved.t) ds =
  let n = Pn_data.Dataset.n_records ds in
  if n = 0 then invalid_arg "Expectations.derive: empty dataset";
  let monitored = Pnrule.Saved.n_monitored sm in
  let fired = Array.make monitored 0 in
  let hits = Array.make monitored 0 in
  let target = Pnrule.Saved.target sm in
  (match sm with
  | Pnrule.Saved.Single m ->
    let pm, _ = Pnrule.Model.first_matches ?pool m ds in
    for i = 0 to n - 1 do
      let k = pm.(i) in
      if k >= 0 then begin
        fired.(k) <- fired.(k) + 1;
        if Pn_data.Dataset.label ds i = target then hits.(k) <- hits.(k) + 1
      end
    done
  | Pnrule.Saved.Boosted e ->
    let fm = Pnrule.Ensemble.eval_matches ?pool e ds in
    Array.iteri
      (fun l fl ->
        for i = 0 to n - 1 do
          if fl.(i) >= 0 then begin
            fired.(l) <- fired.(l) + 1;
            if Pn_data.Dataset.label ds i = target then hits.(l) <- hits.(l) + 1
          end
        done)
      fm);
  let nf = float_of_int n in
  {
    rates = Array.map (fun c -> float_of_int c /. nf) fired;
    precisions =
      Array.init monitored (fun k ->
          if fired.(k) = 0 then 0.0
          else float_of_int hits.(k) /. float_of_int fired.(k));
    support = n;
  }
