(* Sliding-window concept-drift monitor over the serving path's
   compiled-engine match counts.

   The accumulation side follows the Telemetry pattern: one slot of
   single-writer atomic counters per worker domain, bumped from the
   scored-chunk observer with plain get+set (each slot has exactly one
   writer, so no CAS is needed), merged by summation at check time.
   Summed counters are order-independent, which is what makes the
   detector's verdict a pure function of the observed row stream — the
   same rows through any number of workers, in any interleaving, close
   the same windows on the same counts.

   The detection side is a Page–Hinkley-style cumulative test per
   monitored rule. Each time [check] finds a full window of rows it
   computes the window's per-rule firing rate, takes the absolute
   log-divergence from the rule's training-time expectation (smoothed by
   1/span so empty cells stay finite), adds the one-sided
   false-positive divergence when enough labeled rows arrived, subtracts
   the per-window slack [delta] and accumulates into the rule's PH
   score, floored at 0. A single noisy window decays; sustained
   divergence grows linearly until some rule's score crosses
   [threshold] — one detection, after which all scores reset. *)

type config = {
  window : int;
  threshold : float;
  delta : float;
  min_labeled : int;
  seed : int;
}

let default_config =
  { window = 4096; threshold = 3.0; delta = 0.1; min_labeled = 64; seed = 42 }

type detection = { rule : int; score : float; window : int }

type rule_stat = {
  expected_rate : float;
  observed_rate : float;
  expected_precision : float;
  observed_fp_rate : float;
  score : float;
}

type snapshot = {
  monitoring : bool;
  rows : int;
  labeled : int;
  windows : int;
  detections : int;
  last : detection option;
  rules : rule_stat array;
}

type slot = {
  s_rows : int Atomic.t;
  s_labeled : int Atomic.t;
  s_fired : int Atomic.t array;
  s_fp : int Atomic.t array;
}

(* One epoch per served model: swapping the model atomically swaps the
   whole counting state, so counts from different rule index spaces can
   never mix. The window baselines, PH scores and tallies below the
   slots are owned by whoever holds the check mutex. *)
type epoch = {
  n_rules : int;
  target : int;
  exp : Pnrule.Saved.expectations option;
  slots : slot array;
  mutable win_rows0 : int;
  mutable win_labeled0 : int;
  win_fired0 : int array;
  win_fp0 : int array;
  ph : float array;
  mutable windows : int;
  mutable detections : int;
  mutable last : detection option;
}

type t = {
  config : config;
  n_slots : int;
  epoch : epoch Atomic.t;
  check_mutex : Mutex.t;
  total_detections : int Atomic.t;
      (* monotonic across model swaps, for the Prometheus counter *)
}

let make_slot n_rules =
  {
    s_rows = Atomic.make 0;
    s_labeled = Atomic.make 0;
    s_fired = Array.init n_rules (fun _ -> Atomic.make 0);
    s_fp = Array.init n_rules (fun _ -> Atomic.make 0);
  }

let make_epoch ~n_slots ~n_rules ~target exp =
  {
    n_rules;
    target;
    exp;
    slots = Array.init n_slots (fun _ -> make_slot n_rules);
    win_rows0 = 0;
    win_labeled0 = 0;
    win_fired0 = Array.make n_rules 0;
    win_fp0 = Array.make n_rules 0;
    ph = Array.make n_rules 0.0;
    windows = 0;
    detections = 0;
    last = None;
  }

let create ?(config = default_config) ~slots () =
  if slots < 1 then invalid_arg "Drift.create: slots";
  if config.window < 1 then invalid_arg "Drift.create: window";
  if config.threshold <= 0.0 then invalid_arg "Drift.create: threshold";
  if config.delta < 0.0 then invalid_arg "Drift.create: delta";
  if config.min_labeled < 1 then invalid_arg "Drift.create: min_labeled";
  {
    config;
    n_slots = slots;
    epoch = Atomic.make (make_epoch ~n_slots:slots ~n_rules:0 ~target:0 None);
    check_mutex = Mutex.create ();
    total_detections = Atomic.make 0;
  }

let config t = t.config

let set_model t ~n_rules ~target exp =
  (match exp with
  | Some (e : Pnrule.Saved.expectations) ->
    if Array.length e.rates <> n_rules || Array.length e.precisions <> n_rules
    then invalid_arg "Drift.set_model: expectations do not cover n_rules"
  | None -> ());
  Atomic.set t.epoch (make_epoch ~n_slots:t.n_slots ~n_rules ~target exp)

(* Single-writer bump: this slot's counters are only ever written by the
   worker owning [slot], so get+set is a data-race-free increment. *)
let bump a k = if k <> 0 then Atomic.set a (Atomic.get a + k)

let observe t ~slot ~n ~(batch : Pnrule.Saved.batch) ~actuals =
  let ep = Atomic.get t.epoch in
  match ep.exp with
  | None -> ()
  | Some _ ->
    let nr = ep.n_rules in
    (* Accumulate the chunk locally, then one atomic store per counter:
       the monitor's hot-path cost stays a couple of array passes. *)
    let fired = Array.make nr 0 in
    let fp = Array.make nr 0 in
    let labeled = ref 0 in
    for i = 0 to n - 1 do
      if Array.unsafe_get actuals i >= 0 then incr labeled
    done;
    (match batch.Pnrule.Saved.fires with
    | Pnrule.Saved.First_match pm ->
      for i = 0 to n - 1 do
        let k = Array.unsafe_get pm i in
        (* The index guard covers the benign race where a chunk scored
           by a freshly swapped model lands on the previous epoch. *)
        if k >= 0 && k < nr then begin
          fired.(k) <- fired.(k) + 1;
          let a = Array.unsafe_get actuals i in
          if a >= 0 && a <> ep.target then fp.(k) <- fp.(k) + 1
        end
      done
    | Pnrule.Saved.Per_rule fm ->
      let nl = min (Array.length fm) nr in
      for l = 0 to nl - 1 do
        let fl = fm.(l) in
        for i = 0 to n - 1 do
          if Array.unsafe_get fl i >= 0 then begin
            fired.(l) <- fired.(l) + 1;
            let a = Array.unsafe_get actuals i in
            if a >= 0 && a <> ep.target then fp.(l) <- fp.(l) + 1
          end
        done
      done);
    let s = ep.slots.(slot) in
    bump s.s_rows n;
    bump s.s_labeled !labeled;
    for k = 0 to nr - 1 do
      bump s.s_fired.(k) fired.(k);
      bump s.s_fp.(k) fp.(k)
    done

let sum_slots slots f =
  Array.fold_left (fun acc s -> acc + Atomic.get (f s)) 0 slots

(* splitmix64 of (seed, rule): the seeded tie-break for the detection's
   attributed rule when two PH scores are bit-equal. *)
let mix seed k =
  let open Int64 in
  let z =
    ref (add (of_int seed) (mul (of_int (k + 1)) 0x9E3779B97F4A7C15L))
  in
  z := mul (logxor !z (shift_right_logical !z 30)) 0xBF58476D1CE4E5B9L;
  z := mul (logxor !z (shift_right_logical !z 27)) 0x94D049BB133111EBL;
  logxor !z (shift_right_logical !z 31)

let check t =
  Mutex.lock t.check_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.check_mutex)
    (fun () ->
      let ep = Atomic.get t.epoch in
      match ep.exp with
      | None -> None
      | Some exp ->
        let rows = sum_slots ep.slots (fun s -> s.s_rows) in
        if rows - ep.win_rows0 < t.config.window then None
        else begin
          let span = rows - ep.win_rows0 in
          let spanf = float_of_int span in
          let s = 1.0 /. spanf in
          let labeled = sum_slots ep.slots (fun s -> s.s_labeled) in
          let labeled_span = labeled - ep.win_labeled0 in
          (* The labeled (false-positive) window advances on its own
             cadence: only once [min_labeled] labeled rows arrived —
             under sparse feedback it spans several rate windows rather
             than being diluted away. *)
          let use_fp = labeled_span >= t.config.min_labeled in
          let lsf = float_of_int (max labeled_span 1) in
          let sl = 1.0 /. lsf in
          for k = 0 to ep.n_rules - 1 do
            let fired_k = sum_slots ep.slots (fun s -> s.s_fired.(k)) in
            let obs = float_of_int (fired_k - ep.win_fired0.(k)) /. spanf in
            let d_rate = Float.abs (log ((obs +. s) /. (exp.rates.(k) +. s))) in
            let d_fp =
              if not use_fp then 0.0
              else begin
                let fp_k = sum_slots ep.slots (fun s -> s.s_fp.(k)) in
                let obs_fp = float_of_int (fp_k - ep.win_fp0.(k)) /. lsf in
                let exp_fp = exp.rates.(k) *. (1.0 -. exp.precisions.(k)) in
                (* One-sided: only a RISING false-positive rate is
                   drift; a rule getting cleaner is not. *)
                Float.max 0.0 (log ((obs_fp +. sl) /. (exp_fp +. sl)))
              end
            in
            ep.ph.(k) <-
              Float.max 0.0 (ep.ph.(k) +. d_rate +. d_fp -. t.config.delta);
            ep.win_fired0.(k) <- fired_k;
            if use_fp then
              ep.win_fp0.(k) <- sum_slots ep.slots (fun s -> s.s_fp.(k))
          done;
          ep.win_rows0 <- rows;
          if use_fp then ep.win_labeled0 <- labeled;
          ep.windows <- ep.windows + 1;
          let best = ref (-1) in
          for k = 0 to ep.n_rules - 1 do
            if
              !best < 0
              || ep.ph.(k) > ep.ph.(!best)
              || (ep.ph.(k) = ep.ph.(!best)
                 && Int64.unsigned_compare (mix t.config.seed k)
                      (mix t.config.seed !best)
                    > 0)
            then best := k
          done;
          if !best >= 0 && ep.ph.(!best) > t.config.threshold then begin
            let d =
              { rule = !best; score = ep.ph.(!best); window = ep.windows }
            in
            Array.fill ep.ph 0 ep.n_rules 0.0;
            ep.detections <- ep.detections + 1;
            ep.last <- Some d;
            Atomic.set t.total_detections (Atomic.get t.total_detections + 1);
            Some d
          end
          else None
        end)

let detections_total t = Atomic.get t.total_detections

let snapshot t =
  Mutex.lock t.check_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.check_mutex)
    (fun () ->
      let ep = Atomic.get t.epoch in
      let rows = sum_slots ep.slots (fun s -> s.s_rows) in
      let labeled = sum_slots ep.slots (fun s -> s.s_labeled) in
      let rules =
        Array.init ep.n_rules (fun k ->
            let fired_k = sum_slots ep.slots (fun s -> s.s_fired.(k)) in
            let fp_k = sum_slots ep.slots (fun s -> s.s_fp.(k)) in
            let expected_rate, expected_precision =
              match ep.exp with
              | Some e -> (e.rates.(k), e.precisions.(k))
              | None -> (0.0, 0.0)
            in
            {
              expected_rate;
              observed_rate =
                (if rows = 0 then 0.0
                 else float_of_int fired_k /. float_of_int rows);
              expected_precision;
              observed_fp_rate =
                (if labeled = 0 then 0.0
                 else float_of_int fp_k /. float_of_int labeled);
              score = ep.ph.(k);
            })
      in
      {
        monitoring = ep.exp <> None;
        rows;
        labeled;
        windows = ep.windows;
        detections = ep.detections;
        last = ep.last;
        rules;
      })
