(** Sliding-window concept-drift monitor over the serving path's
    per-rule match counts.

    Worker domains feed scored chunks through {!observe} into per-slot
    single-writer atomic counters (the {!Pn_server.Telemetry} pattern —
    no lock, no CAS on the hot path); {!check} merges the slots and
    runs a seeded, deterministic Page–Hinkley-style cumulative test:
    every [window] observed rows, each monitored rule's windowed firing
    rate — and, once [min_labeled] labeled rows arrived via the
    feedback endpoint, its windowed false-positive rate — is compared
    against the training-time expectation as a smoothed log-divergence;
    the per-window divergence minus the slack [delta] accumulates into
    the rule's PH score (floored at 0), and the first score above
    [threshold] is a {!detection}, after which all scores reset.

    Because merged counters are order-independent sums and window
    boundaries depend only on the merged row count at each {!check},
    the verdict is a pure function of the observed stream and the check
    cadence: the same rows spread over any number of slots in any
    interleaving detect at the same step. *)

type config = {
  window : int;  (** rows per detection window *)
  threshold : float;  (** cumulative PH score that triggers a detection *)
  delta : float;  (** per-window divergence slack (PH drift term) *)
  min_labeled : int;
      (** labeled rows required before a false-positive window closes *)
  seed : int;  (** tie-break seed for the attributed rule *)
}

(** window 4096, threshold 3.0, delta 0.1, min_labeled 64, seed 42. *)
val default_config : config

type detection = {
  rule : int;  (** monitored rule with the crossing PH score *)
  score : float;
  window : int;  (** 1-based index of the window that crossed *)
}

type rule_stat = {
  expected_rate : float;
  observed_rate : float;  (** cumulative over the current model's epoch *)
  expected_precision : float;
  observed_fp_rate : float;  (** per labeled row, cumulative *)
  score : float;  (** current PH score *)
}

type snapshot = {
  monitoring : bool;  (** false = no expectations, the monitor idles *)
  rows : int;
  labeled : int;
  windows : int;
  detections : int;  (** within the current epoch *)
  last : detection option;
  rules : rule_stat array;
}

type t

(** [create ~slots ()] builds an idle monitor for [slots] worker
    domains. It starts with no model: {!observe} and {!check} are no-ops
    until {!set_model} installs expectations. Raises [Invalid_argument]
    on a non-positive [slots] or a malformed config. *)
val create : ?config:config -> slots:int -> unit -> t

val config : t -> config

(** [set_model t ~n_rules ~target exp] atomically swaps in a fresh
    epoch for a newly served model: all counters, window baselines and
    PH scores reset ([detections_total] does not). [None] expectations
    — a pre-v4 model file — leaves the monitor idle. Raises
    [Invalid_argument] when [exp]'s arrays do not cover [n_rules]. *)
val set_model :
  t -> n_rules:int -> target:int -> Pnrule.Saved.expectations option -> unit

(** [observe t ~slot ~n ~batch ~actuals] accumulates one scored chunk
    into [slot]'s counters: [n] rows, their per-rule firings from
    [batch.fires], and — for rows with [actuals.(i) >= 0] — labeled and
    false-positive tallies. Each slot must have a single writer (the
    worker that owns it). Never blocks, never allocates more than two
    small arrays. *)
val observe :
  t -> slot:int -> n:int -> batch:Pnrule.Saved.batch -> actuals:int array -> unit

(** [check t] merges the slots and closes a detection window if at
    least [window] rows arrived since the last close (one window per
    call; the span is everything since the last close, so rates stay
    exact under a slow check cadence). Returns the detection when some
    rule's PH score crossed the threshold — scores then reset — and
    [None] otherwise. Safe to call from any thread; serialized
    internally. *)
val check : t -> detection option

(** Detections across all epochs — monotonic, for the Prometheus
    counter. *)
val detections_total : t -> int

(** Racy-read-tolerant view of the current epoch for [/admin/drift] and
    [/metrics]. *)
val snapshot : t -> snapshot
