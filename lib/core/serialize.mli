(** Plain-text persistence for PNrule models.

    The format is line-oriented and self-contained: it carries the class
    table, the attribute schema (with categorical value names), both rule
    lists, the ScoreMatrix, and the parameters needed to reproduce the
    model's decision behaviour. Written models round-trip exactly.

    Format v2 (the only version written) ends with a [crc XXXXXXXX]
    footer — the CRC-32 of every byte above it — which the readers
    verify before parsing, so torn, truncated or bit-flipped files are
    rejected with one clean error. v1 files (no footer) still load. *)

exception Corrupt of string
(** Raised by the readers on malformed input — bad syntax, implausible
    counts, or a checksum mismatch — with a description. Every reader
    failure mode is funnelled into this exception so callers can safely
    decide "keep the previous model". *)

(** [to_string model] serializes a model (v2, checksum footer included). *)
val to_string : Model.t -> string

(** [of_string s] parses a serialized model. Raises [Corrupt]. *)
val of_string : string -> Model.t

(** [save model path] writes atomically: the bytes go to a temp file in
    [path]'s directory, are fsynced, and are renamed over [path] only
    once complete — a crash mid-save leaves the previous file intact,
    never a torn hybrid. Passes the [serialize.write] fault point.
    Raises [Unix.Unix_error] / [Sys_error] on IO failure (the temp file
    is removed, [path] untouched). *)
val save : Model.t -> string -> unit

(** [load path] reads and verifies a model file. Raises [Corrupt] or
    [Sys_error]. *)
val load : string -> Model.t
