(** Plain-text persistence for PNrule models.

    The format is line-oriented and self-contained: it carries the class
    table, the attribute schema (with categorical value names), and the
    model body. Written models round-trip exactly.

    Two bodies exist: v2 holds a single two-phase PNrule model (both
    rule lists, the ScoreMatrix, decision parameters); v3 holds a
    boosted ensemble ([kind boosted]: bias, decision threshold, and one
    weighted rule per member). Both end with a [crc XXXXXXXX] footer —
    the CRC-32 of every byte above it — which the readers verify before
    parsing, so torn, truncated or bit-flipped files are rejected with
    one clean error. v1 files (no footer) still load. *)

exception Corrupt of string
(** Raised by the readers on malformed input — bad syntax, implausible
    counts, or a checksum mismatch — with a description. Every reader
    failure mode is funnelled into this exception so callers can safely
    decide "keep the previous model". *)

(** [to_string model] serializes a single model (v2, checksum footer
    included). *)
val to_string : Model.t -> string

(** [of_string s] parses a serialized single model. Raises [Corrupt] —
    including on a (valid) v3 ensemble file, which only
    {!saved_of_string} accepts. *)
val of_string : string -> Model.t

(** [string_of_saved sm] serializes either kind: [Single] produces the
    same v2 bytes as {!to_string}, [Boosted] produces v3. *)
val string_of_saved : Saved.t -> string

(** [saved_of_string s] parses any supported version: v1/v2 come back as
    [Single], v3 as [Boosted]. Raises [Corrupt]. *)
val saved_of_string : string -> Saved.t

(** [write_atomic data path] is the raw crash-safe write protocol
    behind {!save}: temp file in [path]'s directory, fsync, rename,
    directory fsync — a crash at any point leaves [path] either absent
    or entirely the old bytes. [fault_point] names the {!Pn_util.Fault}
    point the write loop passes (default [serialize.write]); the model
    registry reuses this protocol for its [CURRENT] pointer under its
    own [registry.flip] point. Raises [Unix.Unix_error] / [Sys_error]
    on IO failure (the temp file is removed, [path] untouched). *)
val write_atomic : ?fault_point:string -> string -> string -> unit

(** [save model path] writes atomically: the bytes go to a temp file in
    [path]'s directory, are fsynced, and are renamed over [path] only
    once complete — a crash mid-save leaves the previous file intact,
    never a torn hybrid. Passes the [serialize.write] fault point.
    Raises [Unix.Unix_error] / [Sys_error] on IO failure (the temp file
    is removed, [path] untouched). *)
val save : Model.t -> string -> unit

(** [save_saved sm path] is {!save} for either model kind — same atomic
    protocol, same [serialize.write] fault point. *)
val save_saved : Saved.t -> string -> unit

(** [load path] reads and verifies a single-model file. Raises [Corrupt]
    or [Sys_error]. *)
val load : string -> Model.t

(** [load_saved path] reads and verifies a model file of any supported
    version. Raises [Corrupt] or [Sys_error]. *)
val load_saved : string -> Saved.t
