(** Plain-text persistence for PNrule models.

    The format is line-oriented and self-contained: it carries the class
    table, the attribute schema (with categorical value names), and the
    model body. Written models round-trip exactly.

    Two bodies exist: v2 holds a single two-phase PNrule model (both
    rule lists, the ScoreMatrix, decision parameters); v3 holds a
    boosted ensemble ([kind boosted]: bias, decision threshold, and one
    weighted rule per member). Both end with a [crc XXXXXXXX] footer —
    the CRC-32 of every byte above it — which the readers verify before
    parsing, so torn, truncated or bit-flipped files are rejected with
    one clean error. v1 files (no footer) still load.

    v4 ([kind pnrule] or [kind boosted]) appends a per-rule
    drift-expectations block ({!Saved.expectations}) between the v2/v3
    body and the footer, for the online drift monitor's baseline.
    Writing v4 is opt-in ({!string_of_saved_ex} with [Some]
    expectations); everything written without expectations stays
    byte-identical to v2/v3, and all of v1–v4 load through
    {!saved_of_string_ex}. *)

exception Corrupt of string
(** Raised by the readers on malformed input — bad syntax, implausible
    counts, or a checksum mismatch — with a description. Every reader
    failure mode is funnelled into this exception so callers can safely
    decide "keep the previous model". *)

(** [to_string model] serializes a single model (v2, checksum footer
    included). *)
val to_string : Model.t -> string

(** [of_string s] parses a serialized single model. Raises [Corrupt] —
    including on a (valid) v3 ensemble file, which only
    {!saved_of_string} accepts. *)
val of_string : string -> Model.t

(** [string_of_saved sm] serializes either kind: [Single] produces the
    same v2 bytes as {!to_string}, [Boosted] produces v3. *)
val string_of_saved : Saved.t -> string

(** [saved_of_string s] parses any supported version: v1/v2 come back as
    [Single], v3 as [Boosted], v4 as its embedded kind (the expectations
    block is verified and dropped — use {!saved_of_string_ex} to keep
    it). Raises [Corrupt]. *)
val saved_of_string : string -> Saved.t

(** [string_of_saved_ex sm expectations] serializes [sm] together with
    its drift-expectations baseline: [None] falls back to
    {!string_of_saved} (v2/v3 bytes), [Some e] produces v4. Raises
    [Invalid_argument] when [e]'s arrays do not cover exactly
    [Saved.n_monitored sm] rules. *)
val string_of_saved_ex : Saved.t -> Saved.expectations option -> string

(** [saved_of_string_ex s] parses any supported version and surfaces the
    expectations block when the file has one (v4 only — v1–v3 load as
    [(model, None)]). Raises [Corrupt]. *)
val saved_of_string_ex : string -> Saved.t * Saved.expectations option

(** [write_atomic data path] is the raw crash-safe write protocol
    behind {!save}: temp file in [path]'s directory, fsync, rename,
    directory fsync — a crash at any point leaves [path] either absent
    or entirely the old bytes. [fault_point] names the {!Pn_util.Fault}
    point the write loop passes (default [serialize.write]); the model
    registry reuses this protocol for its [CURRENT] pointer under its
    own [registry.flip] point. Raises [Unix.Unix_error] / [Sys_error]
    on IO failure (the temp file is removed, [path] untouched). *)
val write_atomic : ?fault_point:string -> string -> string -> unit

(** [save model path] writes atomically: the bytes go to a temp file in
    [path]'s directory, are fsynced, and are renamed over [path] only
    once complete — a crash mid-save leaves the previous file intact,
    never a torn hybrid. Passes the [serialize.write] fault point.
    Raises [Unix.Unix_error] / [Sys_error] on IO failure (the temp file
    is removed, [path] untouched). *)
val save : Model.t -> string -> unit

(** [save_saved sm path] is {!save} for either model kind — same atomic
    protocol, same [serialize.write] fault point. *)
val save_saved : Saved.t -> string -> unit

(** [save_saved_ex sm expectations path] is {!save_saved} plus the v4
    expectations block when [expectations] is [Some]. [fault_point]
    overrides the write loop's fault point (default [serialize.write]) —
    the background retrainer publishes under [retrain.publish]. *)
val save_saved_ex :
  ?fault_point:string -> Saved.t -> Saved.expectations option -> string -> unit

(** [load path] reads and verifies a single-model file. Raises [Corrupt]
    or [Sys_error]. *)
val load : string -> Model.t

(** [load_saved path] reads and verifies a model file of any supported
    version. Raises [Corrupt] or [Sys_error]. *)
val load_saved : string -> Saved.t

(** [load_saved_ex path] is {!load_saved} keeping the v4 expectations
    block when present. Raises [Corrupt] or [Sys_error]. *)
val load_saved_ex : string -> Saved.t * Saved.expectations option
