module RM = Pn_metrics.Rule_metric

let src = Logs.Src.create "pnrule" ~doc:"PNrule two-phase rule induction"

module Log = (val Logs.src_log src : Logs.LOG)

type stats = {
  p_coverage : float;
  p_rule_coverage : (float * float) list;
  n_rule_coverage : (float * float) list;
  n_dl_trace : float list;
  train_confusion : Pn_metrics.Confusion.t;
}

(* Weighted (positive, negative) coverage of [view]; [negate] flips which
   class counts as positive, because the N-phase targets absence. *)
let view_counts view ~target ~negate =
  let pos, neg = Pn_data.View.binary_weights view ~target in
  if negate then { RM.pos = neg; neg = pos } else { RM.pos = pos; neg = neg }

(* Grow one rule on [remaining] by general-to-specific refinement. The
   metric context is pinned to [remaining]'s class distribution for the
   whole growth (§2.2). [accept] decides whether a refinement with the
   given scores is taken; [force] lets the N-phase push past a
   non-improving refinement when the recall floor demands it. *)
let grow_rule ?features ~params ~target ~negate ~min_support ~max_length ~accept
    ~force remaining =
  let counts0 = view_counts remaining ~target ~negate in
  let ctx = { RM.pos_total = counts0.RM.pos; neg_total = counts0.RM.neg } in
  let metric = params.Params.metric in
  let rec refine rule covered current_counts current_score =
    let too_long =
      match max_length with
      | Some k -> Pn_rules.Rule.n_conditions rule >= k
      | None -> false
    in
    if too_long then (rule, covered, current_counts)
    else begin
      match
        Pn_induct.Grower.best_condition ~allow_ranges:params.Params.allow_ranges
          ~min_support ~current:rule ?features ~metric ~ctx ~target ~negate covered
      with
      | None -> (rule, covered, current_counts)
      | Some cand ->
        if
          accept ~current_score ~candidate_score:cand.Pn_induct.Grower.score
            ~candidate_counts:cand.Pn_induct.Grower.counts
          || force ~rule ~covered ~current_counts
        then begin
          let rule = Pn_rules.Rule.add rule cand.Pn_induct.Grower.condition in
          let covered =
            Pn_data.View.filter covered (fun i ->
                Pn_rules.Condition.matches covered.Pn_data.View.data
                  cand.Pn_induct.Grower.condition i)
          in
          refine rule covered cand.Pn_induct.Grower.counts cand.Pn_induct.Grower.score
        end
        else (rule, covered, current_counts)
    end
  in
  refine Pn_rules.Rule.empty remaining counts0 (RM.eval metric ctx counts0)

(* ------------------------------------------------------------------ *)
(* P-phase                                                              *)
(* ------------------------------------------------------------------ *)

(* [sctx] streams the per-rule feature masks; with feature sampling off
   it draws nothing, so unsampled training is byte-identical to before
   the sampling hooks existed. [view] is the (possibly instance-sampled)
   training view both phases run on. *)
let p_phase ~params ~sctx ds ~view ~target =
  let target_total = Pn_data.View.class_weight view target in
  if target_total <= 0.0 then
    invalid_arg "Pnrule.Learner.train: no target-class weight in training data";
  let n_attrs = Pn_data.Dataset.n_attrs ds in
  let min_support = params.Params.min_support_fraction *. target_total in
  let accept ~current_score ~candidate_score ~candidate_counts =
    candidate_score > current_score +. 1e-12
    && RM.support candidate_counts >= min_support
  in
  let no_force ~rule:_ ~covered:_ ~current_counts:_ = false in
  let rec loop remaining covered_target acc_rules acc_cov =
    let stop () = (List.rev acc_rules, List.rev acc_cov, covered_target /. target_total) in
    if List.length acc_rules >= params.Params.max_p_rules then stop ()
    else if fst (Pn_data.View.binary_weights remaining ~target) <= 0.0 then stop ()
    else begin
      let features = Pn_induct.Sampling.feature_mask sctx ~n_attrs in
      let rule, _covered, counts =
        grow_rule ?features ~params ~target ~negate:false ~min_support
          ~max_length:params.Params.max_p_rule_length ~accept ~force:no_force
          remaining
      in
      if Pn_rules.Rule.is_empty rule || counts.RM.pos <= 0.0 then stop ()
      else begin
        let coverage_so_far = covered_target /. target_total in
        let accuracy = RM.accuracy counts in
        if
          coverage_so_far >= params.Params.min_coverage
          && accuracy < params.Params.min_accuracy
        then stop ()
        else begin
          Log.debug (fun m ->
              m "P-rule %d: %s  (pos=%.1f neg=%.1f acc=%.3f)"
                (List.length acc_rules)
                (Pn_rules.Rule.to_string ds.Pn_data.Dataset.attrs rule)
                counts.RM.pos counts.RM.neg accuracy);
          let remaining = Pn_rules.Rule.uncovered_of remaining rule in
          loop remaining
            (covered_target +. counts.RM.pos)
            (rule :: acc_rules)
            ((counts.RM.pos, counts.RM.neg) :: acc_cov)
        end
      end
    end
  in
  loop view 0.0 [] []

(* ------------------------------------------------------------------ *)
(* N-phase                                                              *)
(* ------------------------------------------------------------------ *)

(* Description length of the N-rule set seen as a classifier on the
   pooled set [u]: it "covers" (removes) records; errors are the target
   weight it removes plus the non-target weight it fails to remove. *)
let n_ruleset_dl ~n_candidates ~u_pos ~u_neg rules_with_counts =
  let covered_pos, covered_neg, sizes =
    List.fold_left
      (fun (cp, cn, sizes) (rule, (fp_removed, tp_removed)) ->
        (cp +. tp_removed, cn +. fp_removed, Pn_rules.Rule.n_conditions rule :: sizes))
      (0.0, 0.0, []) rules_with_counts
  in
  (* Here "positive" for the N-ruleset is the non-target class. *)
  let covered = covered_pos +. covered_neg in
  let uncovered = u_pos +. u_neg -. covered in
  let fp = covered_pos (* target records wrongly removed *) in
  let fn = u_neg -. covered_neg (* non-target records left in *) in
  Pn_metrics.Mdl.ruleset_bits ~n_candidate_conditions:n_candidates ~rule_sizes:sizes
    ~covered ~uncovered ~fp ~fn

(* §5-style held-out pruning of one N-rule: delete a trailing sequence of
   conditions when the shorter rule removes false positives at least as
   efficiently on the prune split — (fp − tp)/(fp + tp) with the N-phase
   polarity — without sinking recall below the floor. *)
let prune_n_rule ~params ~target ~target_total ~recall prune_view rule =
  let len = Pn_rules.Rule.n_conditions rule in
  if len <= 1 || Pn_data.View.is_empty prune_view then rule
  else begin
    let value r =
      let c = Pn_rules.Rule.coverage prune_view r ~target in
      (* c.pos is target weight (true positives this rule would cost). *)
      let fp = c.RM.neg and tp = c.RM.pos in
      if fp +. tp <= 0.0 then -1.0 else (fp -. tp) /. (fp +. tp)
    in
    let recall_safe r =
      let c = Pn_rules.Rule.coverage prune_view r ~target in
      recall -. (c.RM.pos /. Float.max target_total 1e-9)
      >= params.Params.recall_floor -. 1e-9
    in
    let best = ref rule and best_v = ref (value rule) in
    for keep = len - 1 downto 1 do
      let candidate = Pn_rules.Rule.truncate rule keep in
      let v = value candidate in
      if v >= !best_v && recall_safe candidate then begin
        best := candidate;
        best_v := v
      end
    done;
    !best
  end

let n_phase ~params ~sctx ds ~view ~target ~p_rules ~p_coverage =
  (* The pooled set U is the P-covered part of the *training view*: one
     compiled first-match pass over the dataset, then an O(view) filter,
     so sampled training never walks the full record set interpretively.
     On the unsampled all-records view this selects exactly the indices
     [Rule_list.covered] used to. *)
  let u =
    let fm =
      Pn_rules.Compiled.first_match_all p_rules.Pn_rules.Rule_list.rules ds
    in
    Pn_data.View.filter view (fun i -> fm.(i) >= 0)
  in
  let u_pos, u_neg = Pn_data.View.binary_weights u ~target in
  let target_total = Pn_data.View.class_weight view target in
  let n_attrs = Pn_data.Dataset.n_attrs ds in
  let n_candidates = Pn_induct.Grower.candidate_space_size ds in
  let rng = Pn_util.Rng.create params.Params.seed in
  let recall = ref p_coverage in
  let accept ~current_score ~candidate_score ~candidate_counts:_ =
    candidate_score > current_score +. 1e-12
  in
  let rec loop remaining acc_rules acc_cov dl_trace dl_min =
    let stop () = (List.rev acc_rules, List.rev acc_cov, List.rev dl_trace) in
    if List.length acc_rules >= params.Params.max_n_rules then stop ()
    else if snd (Pn_data.View.binary_weights remaining ~target) <= 0.0 then stop ()
    else begin
      (* Force refinement when accepting the rule as-is would sink the
         recall of the original target class below rn (§2.2). *)
      let force ~rule ~covered:_ ~current_counts =
        (not (Pn_rules.Rule.is_empty rule))
        && current_counts.RM.neg > 0.0
        &&
        let tp_removed = current_counts.RM.neg in
        !recall -. (tp_removed /. target_total) < params.Params.recall_floor
      in
      let features = Pn_induct.Sampling.feature_mask sctx ~n_attrs in
      let rule, counts =
        if params.Params.n_prune then begin
          let grow_view, prune_view =
            Pn_data.View.split remaining rng ~left_fraction:(2.0 /. 3.0)
          in
          let rule, _, _ =
            grow_rule ?features ~params ~target ~negate:true ~min_support:0.0
              ~max_length:params.Params.max_n_rule_length ~accept ~force grow_view
          in
          let rule =
            prune_n_rule ~params ~target ~target_total ~recall:!recall prune_view rule
          in
          let c = Pn_rules.Rule.coverage remaining rule ~target in
          (rule, { RM.pos = c.RM.neg; neg = c.RM.pos })
        end
        else begin
          let rule, _covered, counts =
            grow_rule ?features ~params ~target ~negate:true ~min_support:0.0
              ~max_length:params.Params.max_n_rule_length ~accept ~force remaining
          in
          (rule, counts)
        end
      in
      (* counts: pos = non-target (false positives removed),
                 neg = target (true positives sacrificed). *)
      if Pn_rules.Rule.is_empty rule || counts.RM.pos <= 0.0 then stop ()
      else begin
        let fp_removed = counts.RM.pos and tp_removed = counts.RM.neg in
        let acc_cov' = (fp_removed, tp_removed) :: acc_cov in
        let acc_rules' = rule :: acc_rules in
        let dl =
          n_ruleset_dl ~n_candidates ~u_pos ~u_neg
            (List.combine acc_rules' acc_cov')
        in
        if dl > dl_min +. params.Params.mdl_slack then stop ()
        else begin
          Log.debug (fun m ->
              m "N-rule %d: %s  (removes fp=%.1f tp=%.1f, dl=%.1f)"
                (List.length acc_rules)
                (Pn_rules.Rule.to_string ds.Pn_data.Dataset.attrs rule)
                fp_removed tp_removed dl);
          recall := !recall -. (tp_removed /. target_total);
          let remaining = Pn_rules.Rule.uncovered_of remaining rule in
          loop remaining acc_rules' acc_cov' (dl :: dl_trace) (Float.min dl dl_min)
        end
      end
    end
  in
  let dl0 = n_ruleset_dl ~n_candidates ~u_pos ~u_neg [] in
  loop u [] [] [ dl0 ] dl0

(* ------------------------------------------------------------------ *)
(* ScoreMatrix                                                          *)
(* ------------------------------------------------------------------ *)

let laplace pos total = (pos +. 1.0) /. (total +. 2.0)

(* The ScoreMatrix is estimated on the same (possibly sampled) view the
   rules were grown on: at a million rows an all-records interpretive
   first-match pass here would eat most of what sampling saved. *)
let build_scores ~params view ~target ~p_rules ~n_rules =
  let ds = view.Pn_data.View.data in
  let np = Pn_rules.Rule_list.length p_rules in
  let nn = Pn_rules.Rule_list.length n_rules in
  let cell_w = Array.make_matrix np (nn + 1) 0.0 in
  let cell_pos = Array.make_matrix np (nn + 1) 0.0 in
  Pn_data.View.iter view (fun i ->
      match Pn_rules.Rule_list.first_match ds p_rules i with
      | None -> ()
      | Some p ->
        let j =
          match Pn_rules.Rule_list.first_match ds n_rules i with
          | None -> nn
          | Some j -> j
        in
        let w = Pn_data.Dataset.weight ds i in
        cell_w.(p).(j) <- cell_w.(p).(j) +. w;
        if Pn_data.Dataset.label ds i = target then
          cell_pos.(p).(j) <- cell_pos.(p).(j) +. w);
  Array.init np (fun p ->
      let row_w = Pn_util.Arr.sum_floats cell_w.(p) in
      let row_pos = Pn_util.Arr.sum_floats cell_pos.(p) in
      let base_acc = if row_w > 0.0 then row_pos /. row_w else 0.0 in
      let base_score = laplace row_pos row_w in
      Array.init (nn + 1) (fun j ->
          let w = cell_w.(p).(j) and pos = cell_pos.(p).(j) in
          if w < params.Params.score_min_cell_support then base_score
          else begin
            let acc = pos /. w in
            let z =
              Pn_util.Stats.two_proportion_z ~p1:acc ~n1:w ~p2:base_acc ~n2:row_w
            in
            (* An N-rule must demonstrably shift this P-rule's accuracy to
               be honoured for it ("selectively ignoring" N-rules). The
               default no-N-rule column is always honoured. *)
            if j < nn && Float.abs z < params.Params.score_z_threshold then
              base_score
            else laplace pos w
          end))

(* ------------------------------------------------------------------ *)
(* Training entry points                                                *)
(* ------------------------------------------------------------------ *)

let train_with_stats ?(params = Params.default)
    ?(sampling = Pn_induct.Sampling.none) ds ~target =
  (* One sampling stream per training run: the instance sample is drawn
     first, then one feature mask per rule, all on this thread — results
     depend on the seed only, never on the domain-pool size. *)
  let sctx = Pn_induct.Sampling.ctx sampling in
  let view = Pn_induct.Sampling.sample_instances sctx (Pn_data.View.all ds) in
  if Pn_data.View.size view < Pn_data.Dataset.n_records ds then
    Log.info (fun m ->
        m "instance sampling: training on %d of %d records"
          (Pn_data.View.size view) (Pn_data.Dataset.n_records ds));
  let p_list, p_cov, p_coverage = p_phase ~params ~sctx ds ~view ~target in
  let p_rules = Pn_rules.Rule_list.of_list p_list in
  Log.info (fun m ->
      m "P-phase: %d rules, target coverage %.3f" (List.length p_list) p_coverage);
  let n_list, n_cov, dl_trace =
    if params.Params.enable_n_phase && p_list <> [] then
      n_phase ~params ~sctx ds ~view ~target ~p_rules ~p_coverage
    else ([], [], [])
  in
  let n_rules = Pn_rules.Rule_list.of_list n_list in
  Log.info (fun m -> m "N-phase: %d rules" (List.length n_list));
  let scores =
    if p_list = [] then [||]
    else build_scores ~params view ~target ~p_rules ~n_rules
  in
  let model =
    {
      Model.target;
      classes = ds.Pn_data.Dataset.classes;
      attrs = ds.Pn_data.Dataset.attrs;
      p_rules;
      n_rules;
      scores;
      params;
    }
  in
  let stats =
    {
      p_coverage;
      p_rule_coverage = p_cov;
      n_rule_coverage = n_cov;
      n_dl_trace = dl_trace;
      train_confusion = Model.evaluate model ds;
    }
  in
  (model, stats)

let train ?params ?sampling ds ~target =
  fst (train_with_stats ?params ?sampling ds ~target)
