(** PNrule training (§2 of the paper).

    The P-phase runs sequential covering for rules that *detect the
    presence* of the target class, preferring support over accuracy until
    the coverage target [rp] is met. The N-phase pools every record the
    union of P-rules covers and runs sequential covering for rules that
    *detect the absence* of the target class, stopping on MDL growth and
    refining under the recall floor [rn]. Finally the ScoreMatrix is
    estimated on the training set. *)

type stats = {
  p_coverage : float;
      (** fraction of target-class weight covered by the P-rules *)
  p_rule_coverage : (float * float) list;
      (** per P-rule (positive, negative) weighted coverage on the
          remaining set it was learned from, discovery order *)
  n_rule_coverage : (float * float) list;
      (** per N-rule (false positives removed, true positives sacrificed)
          on the remaining pooled set, discovery order *)
  n_dl_trace : float list;
      (** description length after each accepted N-rule *)
  train_confusion : Pn_metrics.Confusion.t;
}

(** [train ?params ?sampling ds ~target] learns a binary PNrule model
    for class index [target]. Raises [Invalid_argument] if the training
    view carries no target-class weight.

    [sampling] (default {!Pn_induct.Sampling.none}) sub-samples the
    induction itself: both phases grow their rules — and the ScoreMatrix
    is estimated — on the instance-sampled view, and each rule searches
    only its drawn feature subset. All draws come from the strategy's
    seed on the calling thread, so sampled training is bit-identical
    across [PNRULE_DOMAINS]; with [Sampling.none] nothing is drawn and
    training is byte-identical to the unsampled learner. *)
val train :
  ?params:Params.t ->
  ?sampling:Pn_induct.Sampling.t ->
  Pn_data.Dataset.t ->
  target:int ->
  Model.t

val train_with_stats :
  ?params:Params.t ->
  ?sampling:Pn_induct.Sampling.t ->
  Pn_data.Dataset.t ->
  target:int ->
  Model.t * stats
