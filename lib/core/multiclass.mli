(** Multi-class classification with PNrule, one binary model per class.

    The paper focuses on binary rare-class models and notes (footnote 3)
    that the framework extends to multi-class problems; this module
    provides that extension: a PNrule model is trained for each class
    against the rest, and a record is assigned the class whose model
    scores it highest. Classes are trained rarest-first, and ties at
    score 0 fall back to the most prevalent class. *)

type t = {
  models : (int * Model.t) array;  (** (class index, its binary model) *)
  fallback : int;  (** majority class, used when every model scores 0 *)
  classes : string array;
}

(** [train ?params ?params_for ds] trains one binary model per class.
    [params_for class_index] overrides [params] per class (e.g. P1 rules
    for one attack type only). Classes without any training weight are
    skipped and can never be predicted. *)
val train :
  ?params:Params.t -> ?params_for:(int -> Params.t option) -> Pn_data.Dataset.t -> t

(** [predict t ds i] is the class index with the highest score
    (per-record reference path). *)
val predict : t -> Pn_data.Dataset.t -> int -> int

(** [scores t ds i] is the per-class score vector (0 for skipped
    classes). *)
val scores : t -> Pn_data.Dataset.t -> int -> float array

(** [predict_all t ds] is the per-record predicted class vector. Every
    per-class model's rule lists compile into one
    {!Pn_rules.Compiled} program — conditions shared across class
    models are evaluated once per record — and record chunks fan across
    [pool] (default {!Pn_util.Pool.get_default}). Bit-identical to
    mapping {!predict} at every pool size. *)
val predict_all : ?pool:Pn_util.Pool.t -> t -> Pn_data.Dataset.t -> int array

(** [accuracy t ds] is the weighted multi-class accuracy, predicting
    through the compiled batch path. *)
val accuracy : ?pool:Pn_util.Pool.t -> t -> Pn_data.Dataset.t -> float

(** [confusion t ds ~target] is the binary confusion of the multi-class
    prediction collapsed onto one class. *)
val confusion :
  ?pool:Pn_util.Pool.t -> t -> Pn_data.Dataset.t -> target:int -> Pn_metrics.Confusion.t
