type t = Single of Model.t | Boosted of Ensemble.t

let kind = function Single _ -> "pnrule" | Boosted _ -> "boosted"

let attrs = function
  | Single m -> m.Model.attrs
  | Boosted e -> e.Ensemble.attrs

let classes = function
  | Single m -> m.Model.classes
  | Boosted e -> e.Ensemble.classes

let target = function
  | Single m -> m.Model.target
  | Boosted e -> e.Ensemble.target

let resolve_header t header =
  let attrs = attrs t in
  let find name =
    let hits = ref [] in
    Array.iteri
      (fun j h -> if String.equal h name then hits := j :: !hits)
      header;
    match !hits with
    | [ j ] -> Ok j
    | [] -> Error (Printf.sprintf "column %S required by the model is missing" name)
    | _ :: _ ->
      Error (Printf.sprintf "column %S appears more than once in the header" name)
  in
  let mapping = Array.make (Array.length attrs) 0 in
  let errs = ref [] in
  Array.iteri
    (fun k (a : Pn_data.Attribute.t) ->
      match find a.name with
      | Ok j -> mapping.(k) <- j
      | Error e -> errs := e :: !errs)
    attrs;
  match List.rev !errs with
  | [] -> Ok mapping
  | errs -> Error (String.concat "; " errs)

let predict_all ?pool t ds =
  match t with
  | Single m -> Model.predict_all ?pool m ds
  | Boosted e -> Ensemble.predict_all ?pool e ds

let score_all ?pool t ds =
  match t with
  | Single m -> Model.score_all ?pool m ds
  | Boosted e -> Ensemble.score_all ?pool e ds

let evaluate ?pool t ds =
  match t with
  | Single m -> Model.evaluate ?pool m ds
  | Boosted e -> Ensemble.evaluate ?pool e ds

let pp ppf = function
  | Single m -> Model.pp ppf m
  | Boosted e -> Ensemble.pp ppf e
