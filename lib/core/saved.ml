type t = Single of Model.t | Boosted of Ensemble.t

(* Training-time per-rule behaviour, the drift monitor's baseline: how
   often each monitored rule fired on the training set and how often a
   firing meant the target class. Persisted next to the model (format
   v4) so a freshly loaded generation arrives with its own baseline. *)
type expectations = {
  rates : float array;
  precisions : float array;
  support : int;
}

type fires =
  | First_match of int array
  | Per_rule of int array array

type batch = {
  preds : bool array;
  scores_v : float array option;
  fires : fires;
}

let kind = function Single _ -> "pnrule" | Boosted _ -> "boosted"

let n_monitored = function
  | Single m -> fst (Model.rule_counts m)
  | Boosted e -> Ensemble.n_members e

let attrs = function
  | Single m -> m.Model.attrs
  | Boosted e -> e.Ensemble.attrs

let classes = function
  | Single m -> m.Model.classes
  | Boosted e -> e.Ensemble.classes

let target = function
  | Single m -> m.Model.target
  | Boosted e -> e.Ensemble.target

let resolve_header t header =
  let attrs = attrs t in
  let find name =
    let hits = ref [] in
    Array.iteri
      (fun j h -> if String.equal h name then hits := j :: !hits)
      header;
    match !hits with
    | [ j ] -> Ok j
    | [] -> Error (Printf.sprintf "column %S required by the model is missing" name)
    | _ :: _ ->
      Error (Printf.sprintf "column %S appears more than once in the header" name)
  in
  let mapping = Array.make (Array.length attrs) 0 in
  let errs = ref [] in
  Array.iteri
    (fun k (a : Pn_data.Attribute.t) ->
      match find a.name with
      | Ok j -> mapping.(k) <- j
      | Error e -> errs := e :: !errs)
    attrs;
  match List.rev !errs with
  | [] -> Ok mapping
  | errs -> Error (String.concat "; " errs)

let predict_all ?pool t ds =
  match t with
  | Single m -> Model.predict_all ?pool m ds
  | Boosted e -> Ensemble.predict_all ?pool e ds

let score_all ?pool t ds =
  match t with
  | Single m -> Model.score_all ?pool m ds
  | Boosted e -> Ensemble.score_all ?pool e ds

(* The serving batch path: one compiled-engine pass yields predictions,
   optional scores, and the per-rule firing evidence — so arming the
   drift monitor (and asking for scores) costs no extra evals. *)
let eval_batch ?pool ?(scores = false) t ds =
  let n = Pn_data.Dataset.n_records ds in
  match t with
  | Single m ->
    let pm, nm = Model.first_matches ?pool m ds in
    let score i =
      Model.score_of_matches m ~p:(Array.unsafe_get pm i)
        ~n:(Array.unsafe_get nm i)
    in
    let preds =
      if m.Model.params.Params.use_scoring then begin
        let thr = m.Model.params.Params.score_threshold in
        Array.init n (fun i -> score i > thr)
      end
      else
        Array.init n (fun i ->
            Array.unsafe_get pm i >= 0 && Array.unsafe_get nm i < 0)
    in
    let scores_v = if scores then Some (Array.init n score) else None in
    { preds; scores_v; fires = First_match pm }
  | Boosted e ->
    let fm = Ensemble.eval_matches ?pool e ds in
    let sv = Ensemble.scores_of_matches e ~n fm in
    let thr = e.Ensemble.threshold in
    {
      preds = Array.map (fun s -> s > thr) sv;
      scores_v = (if scores then Some sv else None);
      fires = Per_rule fm;
    }

let evaluate ?pool t ds =
  match t with
  | Single m -> Model.evaluate ?pool m ds
  | Boosted e -> Ensemble.evaluate ?pool e ds

let pp ppf = function
  | Single m -> Model.pp ppf m
  | Boosted e -> Ensemble.pp ppf e
