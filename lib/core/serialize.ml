exception Corrupt of string

let fail fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* Names (class names, attribute names, categorical values) are written
   as OCaml string literals so embedded spaces and quotes survive. *)
let quote s = Printf.sprintf "%S" s

(* ------------------------------------------------------------------ *)
(* Writing                                                              *)
(* ------------------------------------------------------------------ *)

let write_condition buf c =
  match c with
  | Pn_rules.Condition.Cat_eq { col; value } ->
    Buffer.add_string buf (Printf.sprintf "    cat %d %d\n" col value)
  | Pn_rules.Condition.Num_le { col; threshold } ->
    Buffer.add_string buf (Printf.sprintf "    le %d %h\n" col threshold)
  | Pn_rules.Condition.Num_ge { col; threshold } ->
    Buffer.add_string buf (Printf.sprintf "    ge %d %h\n" col threshold)
  | Pn_rules.Condition.Num_range { col; lo; hi } ->
    Buffer.add_string buf (Printf.sprintf "    range %d %h %h\n" col lo hi)

let write_rules buf label rules =
  Buffer.add_string buf (Printf.sprintf "%s %d\n" label (Pn_rules.Rule_list.length rules));
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  rule %d\n" (Pn_rules.Rule.n_conditions r));
      List.iter (write_condition buf) r.Pn_rules.Rule.conditions)
    (Pn_rules.Rule_list.to_list rules)

let write_schema buf ~target ~classes ~attrs =
  Buffer.add_string buf (Printf.sprintf "target %d\n" target);
  Buffer.add_string buf (Printf.sprintf "classes %d\n" (Array.length classes));
  Array.iter (fun c -> Buffer.add_string buf ("  " ^ quote c ^ "\n")) classes;
  Buffer.add_string buf (Printf.sprintf "attrs %d\n" (Array.length attrs));
  Array.iter
    (fun (a : Pn_data.Attribute.t) ->
      match a.kind with
      | Pn_data.Attribute.Numeric ->
        Buffer.add_string buf ("  num " ^ quote a.name ^ "\n")
      | Pn_data.Attribute.Categorical values ->
        Buffer.add_string buf
          (Printf.sprintf "  cat %s %d%s\n" (quote a.name) (Array.length values)
             (Array.fold_left (fun acc v -> acc ^ " " ^ quote v) "" values)))
    attrs

(* Both formats end with a CRC-32 footer over every byte above it;
   [load] refuses a file whose body and footer disagree, which is what
   lets hot reload tell a torn or bit-flipped file from a healthy one. *)
let add_crc_footer buf =
  Buffer.add_string buf
    (Printf.sprintf "crc %08x\n" (Pn_util.Crc32.string (Buffer.contents buf)));
  Buffer.contents buf

(* Everything of a single model below the header line: the v2 payload,
   shared verbatim by the v4 writer. *)
let write_single_body buf (m : Model.t) =
  write_schema buf ~target:m.Model.target ~classes:m.Model.classes
    ~attrs:m.Model.attrs;
  let p = m.Model.params in
  Buffer.add_string buf
    (Printf.sprintf "decision %h %b\n" p.Params.score_threshold p.Params.use_scoring);
  write_rules buf "p_rules" m.Model.p_rules;
  write_rules buf "n_rules" m.Model.n_rules;
  let rows = Array.length m.Model.scores in
  let cols = if rows = 0 then 0 else Array.length m.Model.scores.(0) in
  Buffer.add_string buf (Printf.sprintf "scores %d %d\n" rows cols);
  Array.iter
    (fun row ->
      Buffer.add_string buf " ";
      Array.iter (fun s -> Buffer.add_string buf (Printf.sprintf " %h" s)) row;
      Buffer.add_char buf '\n')
    m.Model.scores

let write_boosted_body buf (e : Ensemble.t) =
  write_schema buf ~target:e.Ensemble.target ~classes:e.Ensemble.classes
    ~attrs:e.Ensemble.attrs;
  Buffer.add_string buf (Printf.sprintf "decision %h\n" e.Ensemble.threshold);
  Buffer.add_string buf (Printf.sprintf "bias %h\n" e.Ensemble.bias);
  Buffer.add_string buf
    (Printf.sprintf "members %d\n" (Array.length e.Ensemble.members));
  Array.iter
    (fun (mb : Ensemble.member) ->
      Buffer.add_string buf
        (Printf.sprintf "  member %h %d\n" mb.Ensemble.weight
           (Pn_rules.Rule.n_conditions mb.Ensemble.rule));
      List.iter (write_condition buf) mb.Ensemble.rule.Pn_rules.Rule.conditions)
    e.Ensemble.members

let to_string (m : Model.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "pnrule-model v2\n";
  write_single_body buf m;
  add_crc_footer buf

(* v3 carries a boosted ensemble: same schema block as v2, then the
   decision threshold, the bias, and one weighted rule per member. A
   [Saved.Single] keeps writing v2 bytes, so files produced before v3
   existed and files produced after are byte-identical. *)
let string_of_saved = function
  | Saved.Single m -> to_string m
  | Saved.Boosted e ->
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "pnrule-model v3\nkind boosted\n";
    write_boosted_body buf e;
    add_crc_footer buf

(* v4 is a v2/v3 payload plus a drift-expectations block, under an
   explicit kind discriminator for both model kinds. Writing stays
   opt-in: [string_of_saved] above keeps emitting v2/v3 bytes, so every
   pre-v4 file and every file written without expectations is
   byte-identical to what earlier releases produced. *)
let write_expectations buf (e : Saved.expectations) =
  Buffer.add_string buf
    (Printf.sprintf "expectations %d\n" (Array.length e.Saved.rates));
  Array.iteri
    (fun k rate ->
      Buffer.add_string buf
        (Printf.sprintf "  exp %h %h\n" rate e.Saved.precisions.(k)))
    e.Saved.rates;
  Buffer.add_string buf (Printf.sprintf "support %d\n" e.Saved.support)

let string_of_saved_ex sm expectations =
  match expectations with
  | None -> string_of_saved sm
  | Some exp ->
    if Array.length exp.Saved.rates <> Array.length exp.Saved.precisions then
      invalid_arg "Serialize.string_of_saved_ex: rates/precisions lengths differ";
    if Array.length exp.Saved.rates <> Saved.n_monitored sm then
      invalid_arg
        "Serialize.string_of_saved_ex: expectations do not match the model's \
         monitored rules";
    let buf = Buffer.create 4096 in
    (match sm with
    | Saved.Single m ->
      Buffer.add_string buf "pnrule-model v4\nkind pnrule\n";
      write_single_body buf m
    | Saved.Boosted e ->
      Buffer.add_string buf "pnrule-model v4\nkind boosted\n";
      write_boosted_body buf e);
    write_expectations buf exp;
    add_crc_footer buf

(* ------------------------------------------------------------------ *)
(* Reading                                                              *)
(* ------------------------------------------------------------------ *)

(* A tiny token stream over whitespace-separated words, where quoted
   OCaml string literals count as single tokens. *)
type stream = { mutable tokens : string list }

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\n' || c = '\t' || c = '\r' then incr i
    else if c = '"' then begin
      (* Scan to the closing unescaped quote. A backslash escapes the
         character after it, so "a\\" (the two-character value [a\])
         closes at its final quote — checking only the preceding
         character would misread the escaped backslash as escaping the
         quote and overrun the literal. *)
      let j = ref (!i + 1) in
      let closed = ref false in
      while (not !closed) && !j < n do
        if s.[!j] = '\\' then j := !j + 2
        else if s.[!j] = '"' then closed := true
        else incr j
      done;
      if not !closed then fail "unterminated string literal";
      let literal = String.sub s !i (!j - !i + 1) in
      let value = Scanf.sscanf literal "%S" Fun.id in
      tokens := value :: !tokens;
      i := !j + 1
    end
    else begin
      let j = ref !i in
      while !j < n && s.[!j] <> ' ' && s.[!j] <> '\n' && s.[!j] <> '\t' && s.[!j] <> '\r' do
        incr j
      done;
      tokens := String.sub s !i (!j - !i) :: !tokens;
      i := !j
    end
  done;
  { tokens = List.rev !tokens }

let next st =
  match st.tokens with
  | [] -> fail "unexpected end of input"
  | t :: rest ->
    st.tokens <- rest;
    t

let expect st word =
  let t = next st in
  if not (String.equal t word) then fail "expected %S, found %S" word t

let int_tok st =
  let t = next st in
  match int_of_string_opt t with
  | Some v -> v
  | None -> fail "expected integer, found %S" t

let float_tok st =
  let t = next st in
  match float_of_string_opt t with
  | Some v -> v
  | None -> fail "expected float, found %S" t

let bool_tok st =
  let t = next st in
  match bool_of_string_opt t with
  | Some v -> v
  | None -> fail "expected bool, found %S" t

(* An element count from untrusted input: it must not exceed the tokens
   actually present, or a corrupted count would drive a huge allocation
   before the parse fails. *)
let count_tok st ~what =
  let v = int_tok st in
  if v < 0 || v > List.length st.tokens then fail "implausible %s count %d" what v;
  v

let read_condition st =
  match next st with
  | "cat" ->
    let col = int_tok st in
    let value = int_tok st in
    Pn_rules.Condition.Cat_eq { col; value }
  | "le" ->
    let col = int_tok st in
    let threshold = float_tok st in
    Pn_rules.Condition.Num_le { col; threshold }
  | "ge" ->
    let col = int_tok st in
    let threshold = float_tok st in
    Pn_rules.Condition.Num_ge { col; threshold }
  | "range" ->
    let col = int_tok st in
    let lo = float_tok st in
    let hi = float_tok st in
    Pn_rules.Condition.Num_range { col; lo; hi }
  | other -> fail "unknown condition kind %S" other

let read_rules st label =
  expect st label;
  let count = count_tok st ~what:"rule" in
  let rules =
    List.init count (fun _ ->
        expect st "rule";
        let k = count_tok st ~what:"condition" in
        Pn_rules.Rule.of_conditions (List.init k (fun _ -> read_condition st)))
  in
  Pn_rules.Rule_list.of_list rules

(* v2+ files end with "crc XXXXXXXX\n" over every byte above it. Checked
   on the raw bytes, before tokenization: any flip or truncation
   anywhere in the file — including inside string literals the tokenizer
   would otherwise choke on — surfaces as this one clean error. *)
let verify_crc s =
  let n = String.length s in
  if n < 2 || s.[n - 1] <> '\n' then fail "missing checksum footer";
  let body_end =
    match String.rindex_from_opt s (n - 2) '\n' with Some i -> i + 1 | None -> 0
  in
  let footer = String.sub s body_end (n - body_end) in
  let stored =
    try Scanf.sscanf footer "crc %x\n%!" Fun.id
    with Scanf.Scan_failure _ | Failure _ | End_of_file ->
      fail "malformed checksum footer %S" (String.trim footer)
  in
  let actual = Pn_util.Crc32.string ~len:body_end s in
  if stored <> actual then
    fail "checksum mismatch: footer says %08x, content hashes to %08x" stored
      actual

let read_schema st =
  expect st "target";
  let target = int_tok st in
  expect st "classes";
  let n_classes = count_tok st ~what:"class" in
  let classes = Array.init n_classes (fun _ -> next st) in
  expect st "attrs";
  let n_attrs = count_tok st ~what:"attribute" in
  let attrs =
    Array.init n_attrs (fun _ ->
        match next st with
        | "num" -> Pn_data.Attribute.numeric (next st)
        | "cat" ->
          let name = next st in
          let arity = count_tok st ~what:"value" in
          Pn_data.Attribute.categorical name (Array.init arity (fun _ -> next st))
        | other -> fail "unknown attribute kind %S" other)
  in
  if target < 0 || target >= n_classes then fail "target class out of range";
  (target, classes, attrs)

(* [consume_crc] eats the trailing "crc XXXXXXXX" tokens when the body
   is the last block of the file (v2). v1 has no footer; in v4 the
   expectations block follows, so the dispatcher consumes the footer. *)
let read_single st ~consume_crc =
  let target, classes, attrs = read_schema st in
  expect st "decision";
  let score_threshold = float_tok st in
  let use_scoring = bool_tok st in
  let p_rules = read_rules st "p_rules" in
  let n_rules = read_rules st "n_rules" in
  expect st "scores";
  let rows = count_tok st ~what:"score row" in
  let cols = count_tok st ~what:"score column" in
  let scores = Array.init rows (fun _ -> Array.init cols (fun _ -> float_tok st)) in
  if rows > 0 && cols <> Pn_rules.Rule_list.length n_rules + 1 then
    fail "score matrix width %d does not match %d N-rules" cols
      (Pn_rules.Rule_list.length n_rules);
  if rows <> Pn_rules.Rule_list.length p_rules then
    fail "score matrix height %d does not match %d P-rules" rows
      (Pn_rules.Rule_list.length p_rules);
  if consume_crc then begin
    expect st "crc";
    ignore (next st)
  end;
  {
    Model.target;
    classes;
    attrs;
    p_rules;
    n_rules;
    scores;
    params = { Params.default with score_threshold; use_scoring };
  }

let read_boosted st =
  let target, classes, attrs = read_schema st in
  expect st "decision";
  let threshold = float_tok st in
  expect st "bias";
  let bias = float_tok st in
  expect st "members";
  let count = count_tok st ~what:"member" in
  let members =
    Array.init count (fun _ ->
        expect st "member";
        let weight = float_tok st in
        let k = count_tok st ~what:"condition" in
        let rule =
          Pn_rules.Rule.of_conditions (List.init k (fun _ -> read_condition st))
        in
        { Ensemble.rule; weight })
  in
  { Ensemble.target; classes; attrs; members; bias; threshold }

let read_expectations st ~monitored =
  expect st "expectations";
  let count = count_tok st ~what:"expectation" in
  if count <> monitored then
    fail "expectations block covers %d rules, model has %d" count monitored;
  let rates = Array.make count 0.0 in
  let precisions = Array.make count 0.0 in
  for k = 0 to count - 1 do
    expect st "exp";
    rates.(k) <- float_tok st;
    precisions.(k) <- float_tok st
  done;
  expect st "support";
  let support = int_tok st in
  if support < 0 then fail "negative expectations support %d" support;
  { Saved.rates; precisions; support }

let saved_of_string_ex s =
  let parse () =
    let st = tokenize s in
    expect st "pnrule-model";
    let version =
      match next st with
      | "v1" -> 1 (* legacy: no checksum footer *)
      | "v2" -> 2
      | "v3" -> 3
      | "v4" -> 4
      | other -> fail "unsupported format version %S" other
    in
    if version >= 2 then verify_crc s;
    match version with
    | 1 | 2 ->
      (Saved.Single (read_single st ~consume_crc:(version = 2)), None)
    | 3 ->
      expect st "kind";
      (match next st with
      | "boosted" ->
        let e = read_boosted st in
        expect st "crc";
        ignore (next st);
        (Saved.Boosted e, None)
      | other -> fail "unknown model kind %S" other)
    | _ ->
      expect st "kind";
      let sm =
        match next st with
        | "pnrule" -> Saved.Single (read_single st ~consume_crc:false)
        | "boosted" -> Saved.Boosted (read_boosted st)
        | other -> fail "unknown model kind %S" other
      in
      let exp = read_expectations st ~monitored:(Saved.n_monitored sm) in
      expect st "crc";
      ignore (next st);
      (sm, Some exp)
  in
  (* Every reader failure mode must come out as [Corrupt]: callers (hot
     reload, the CLI) decide "keep the old model" on that one exception,
     and a stray [Scan_failure] would instead kill the worker. *)
  try parse () with
  | Corrupt _ as c -> raise c
  | Scanf.Scan_failure _ | Failure _ | Invalid_argument _ | Not_found
  | End_of_file ->
    fail "malformed model text"

let saved_of_string s = fst (saved_of_string_ex s)

let of_string s =
  match saved_of_string s with
  | Saved.Single m -> m
  | Saved.Boosted _ ->
    fail "boosted ensemble (v3) where a single PNrule model was expected"

(* ------------------------------------------------------------------ *)
(* Files                                                                *)
(* ------------------------------------------------------------------ *)

(* fsync of a directory makes the rename itself durable. Some
   filesystems refuse it; that only weakens durability, never
   atomicity, so errors are ignored. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

(* Atomic save: all bytes go to a temp file in the target's directory,
   reach disk via fsync, and only then rename over [path] — a crash at
   any point leaves either the complete old file or the complete new
   one, never a torn hybrid. The write loop passes the
   [serialize.write] fault point so chaos tests can cut it short at an
   arbitrary byte. *)
let write_atomic ?(fault_point = "serialize.write") data path =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let write_all fd =
    let len = String.length data in
    let off = ref 0 in
    while !off < len do
      let want = Pn_util.Fault.cap fault_point (min 65536 (len - !off)) in
      match Unix.write_substring fd data !off want with
      | n -> off := !off + n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  match
    let fd =
      Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        write_all fd;
        Unix.fsync fd)
  with
  | () ->
    Sys.rename tmp path;
    fsync_dir (Filename.dirname path)
  | exception e ->
    (* Never leave the half-written temp file behind — and never let the
       failure touch [path]: the previous model generation stays valid. *)
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let save m path = write_atomic (to_string m) path

let save_saved sm path = write_atomic (string_of_saved sm) path

let save_saved_ex ?fault_point sm expectations path =
  write_atomic ?fault_point (string_of_saved_ex sm expectations) path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> In_channel.input_all ic)

let load path = of_string (read_file path)

let load_saved path = saved_of_string (read_file path)

let load_saved_ex path = saved_of_string_ex (read_file path)
