(** Boosted rule ensembles on the PNrule substrate.

    A SLIPPER-style confidence-rated booster: each round grows one
    conjunctive rule (the same {!Pn_induct.Grower} search the rule
    lists use, under the round's instance/feature sample) on the
    reweighted training set and gives it a confidence weight
    [shrinkage · ½·ln((W₊+ε)/(W₋+ε))] from its weighted coverage; the
    records it covers are then reweighted AdaBoost-style. Rules abstain
    on records they do not cover, so a record's score is the bias (the
    default-rule confidence — strongly negative for a rare target
    class) plus the weights of the member rules covering it.

    Serving compiles the members into the bitset engine — one
    single-rule list per member, conditions deduplicated across
    members, coverage resolved word-at-a-time — so the weighted vote
    costs a columnar add per member, never a per-record interpretive
    rule walk. *)

type member = { rule : Pn_rules.Rule.t; weight : float }

type t = {
  target : int;
  classes : string array;
  attrs : Pn_data.Attribute.t array;
  members : member array;
  bias : float;  (** default-rule confidence, added to every score *)
  threshold : float;  (** predict the target class when score exceeds it *)
}

type params = {
  rounds : int;  (** boosting rounds; degenerate rounds add no member *)
  shrinkage : float;  (** confidence multiplier in (0, 1] *)
  metric : Pn_metrics.Rule_metric.kind;
  max_rule_length : int option;
  min_support_fraction : float;
      (** per-rule support floor, as a fraction of the round view's
          positive weight *)
  threshold : float;
}

(** 30 rounds, shrinkage 0.5, Z-number metric, rules of ≤ 4 conditions,
    1% support floor, decision threshold 0. *)
val default_params : params

(** [train ?params ?sampling ds ~target] boosts for [params.rounds]
    rounds. Each round draws its own sampling context from a stream
    split off [sampling.seed], so the ensemble — like the single-list
    learner — is bit-identical across [PNRULE_DOMAINS] at a fixed
    seed. Raises [Invalid_argument] on an empty dataset or zero
    target-class weight. *)
val train :
  ?params:params ->
  ?sampling:Pn_induct.Sampling.t ->
  Pn_data.Dataset.t ->
  target:int ->
  t

(** [eval_matches t ds] is the compiled engine's raw per-member
    coverage: one first-match array per member ([>= 0] = covered), [[||]]
    for the empty ensemble. One eval; {!scores_of_matches} folds it into
    scores, and the serving path also counts per-member firings from it
    for the drift monitor. *)
val eval_matches :
  ?pool:Pn_util.Pool.t -> t -> Pn_data.Dataset.t -> int array array

(** [scores_of_matches t ~n fm] is the weighted vote
    (bias + Σ covering member weights) over [n] records given
    {!eval_matches} output. *)
val scores_of_matches : t -> n:int -> int array array -> float array

(** [score_all ?pool t ds] is each record's ensemble score
    (bias + Σ covering member weights), resolved through one compiled
    bitset program over all members. *)
val score_all : ?pool:Pn_util.Pool.t -> t -> Pn_data.Dataset.t -> float array

val predict_all : ?pool:Pn_util.Pool.t -> t -> Pn_data.Dataset.t -> bool array

(** Weighted binary confusion of the ensemble on [ds]. *)
val evaluate : ?pool:Pn_util.Pool.t -> t -> Pn_data.Dataset.t -> Pn_metrics.Confusion.t

val n_members : t -> int

val pp : Format.formatter -> t -> unit
