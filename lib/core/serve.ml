exception Error of string
exception Limit of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type report = {
  ingest : Pn_data.Ingest_report.t;
  chunks : int;
  rows_out : int;
  unknown_labels : int;
  seconds : float;
  confusion : Pn_metrics.Confusion.t option;
}

type observer =
  n:int ->
  columns:Pn_data.Dataset.column array ->
  batch:Saved.batch ->
  actuals:int array ->
  unit

(* Per-attribute chunk column storage, preallocated once and reused. *)
type store =
  | Snum of float array
  | Scat of int array

exception Row_drop of string

let median sorted =
  let m = Array.length sorted in
  if m land 1 = 1 then sorted.(m / 2)
  else (sorted.((m / 2) - 1) +. sorted.(m / 2)) /. 2.0

(* The output side shared by the CSV and columnar feeds: header line,
   chunk scoring, prediction formatting and confusion accounting. Both
   decoders funnel their chunks through [em_emit], which is what makes a
   CSV feed and a columnar feed of the same rows produce byte-identical
   prediction output. *)
type emitter = {
  em_header : unit -> unit;
  em_emit :
    n:int -> columns:Pn_data.Dataset.column array -> actuals:int array -> unit;
  em_chunks : int ref;
  em_rows_out : int ref;
  em_confusion : Pn_metrics.Confusion.t ref;
}

let make_emitter ?pool ?observe ~scores ~(model : Saved.t) ~write () =
  let outbuf = Buffer.create 4096 in
  let chunks = ref 0 in
  let rows_out = ref 0 in
  let confusion = ref Pn_metrics.Confusion.zero in
  let target = Saved.target model in
  let target_name = (Saved.classes model).(target) in
  let negative_name = "not-" ^ target_name in
  let em_header () =
    write (if scores then "prediction,score\n" else "prediction\n")
  in
  let em_emit ~n ~columns ~actuals =
    let ds =
      Pn_data.Dataset.create ~attrs:(Saved.attrs model) ~columns
        ~labels:(Array.make n 0) ~classes:(Saved.classes model) ()
    in
    (* One compiled-engine pass serves predictions, scores and the
       per-rule firing evidence the drift observer consumes. *)
    let batch = Saved.eval_batch ?pool ~scores model ds in
    let predicted = batch.Saved.preds in
    let score_v = batch.Saved.scores_v in
    Buffer.clear outbuf;
    for i = 0 to n - 1 do
      let name = if predicted.(i) then target_name else negative_name in
      (match score_v with
      | Some s ->
        Buffer.add_string outbuf (Pn_data.Csv_io.escape name);
        Buffer.add_char outbuf ',';
        Buffer.add_string outbuf (Printf.sprintf "%.6g" s.(i))
      | None -> Buffer.add_string outbuf (Pn_data.Csv_io.escape name));
      Buffer.add_char outbuf '\n';
      incr rows_out;
      if actuals.(i) >= 0 then
        confusion :=
          Pn_metrics.Confusion.add !confusion ~actual:(actuals.(i) = target)
            ~predicted:predicted.(i) ~weight:1.0
    done;
    (* Observer runs before the write so drift evidence cannot be lost
       to a client that disconnects mid-chunk. [columns] may alias
       reader-owned buffers reused for the next chunk — an observer
       retaining rows must copy. *)
    (match observe with
    | Some f -> f ~n ~columns ~batch ~actuals
    | None -> ());
    write (Buffer.contents outbuf);
    incr chunks
  in
  {
    em_header;
    em_emit;
    em_chunks = chunks;
    em_rows_out = rows_out;
    em_confusion = confusion;
  }

(* The shared decode/score core: both the batch file pipeline
   ([predict_csv]) and the online daemon ([Pn_server]) run this exact
   function, so a request body and a file of the same rows produce
   byte-identical prediction lines. Input arrives as a {!Pn_data.Stream}
   source; output leaves through [write], one call for the header line
   and one per scored chunk. *)
let predict_stream ?(policy = Pn_data.Ingest_report.Strict) ?(chunk_size = 8192)
    ?class_column ?(scores = false) ?max_rows ?pool ?observe ~(model : Saved.t)
    ~source ~write () =
  if chunk_size <= 0 then invalid_arg "Serve.predict_stream: chunk_size";
  (match max_rows with
  | Some m when m <= 0 -> invalid_arg "Serve.predict_stream: max_rows"
  | Some _ | None -> ());
  let t0 = Unix.gettimeofday () in
  let attrs = Saved.attrs model in
  let n_attrs = Array.length attrs in
  (* O(1) categorical decoding. *)
  let cat_tables =
    Array.map
      (fun (a : Pn_data.Attribute.t) ->
        match a.kind with
        | Pn_data.Attribute.Numeric -> None
        | Pn_data.Attribute.Categorical values ->
          let tbl = Hashtbl.create (2 * Array.length values) in
          Array.iteri (fun code v -> if not (Hashtbl.mem tbl v) then Hashtbl.add tbl v code) values;
          Some tbl)
      attrs
  in
  let class_table = Hashtbl.create 8 in
  Array.iteri
    (fun code c -> if not (Hashtbl.mem class_table c) then Hashtbl.add class_table c code)
    (Saved.classes model);
  let ingest = Pn_data.Ingest_report.create () in
  (* Header-dependent state, set when the first row arrives. *)
  let mapping = ref [||] in
  let n_header = ref 0 in
  let class_idx = ref None in
  (* Chunk state. *)
  let stores =
    Array.map
      (fun (a : Pn_data.Attribute.t) ->
        match a.kind with
        | Pn_data.Attribute.Numeric -> Snum (Array.make chunk_size 0.0)
        | Pn_data.Attribute.Categorical _ -> Scat (Array.make chunk_size 0))
      attrs
  in
  (* Positions imputation must patch, per attribute, chunk-local. *)
  let misses = Array.make n_attrs [] in
  let actuals = Array.make chunk_size (-1) in
  let fill = ref 0 in
  let unknown_labels = ref 0 in
  let em = make_emitter ?pool ?observe ~scores ~model ~write () in
  (* Every data row — kept, skipped or malformed — counts against the
     row budget; the daemon maps [Limit] to 413. *)
  let count_row () =
    Pn_data.Ingest_report.row_read ingest;
    match max_rows with
    | Some m when ingest.Pn_data.Ingest_report.rows_read > m ->
      raise (Limit (Printf.sprintf "input exceeds the row limit (%d rows)" m))
    | Some _ | None -> ()
  in
  let resolve_header names =
    (match Saved.resolve_header model names with
    | Ok m -> mapping := m
    | Error msg -> fail "schema mismatch: %s" msg);
    n_header := Array.length names;
    let col =
      match class_column with
      | Some name -> (
        match Array.find_index (String.equal name) names with
        | Some j -> Some j
        | None -> fail "class column %S not found" name)
      | None -> Array.find_index (String.equal "class") names
    in
    (* A column the model claims as a feature cannot double as labels. *)
    (class_idx :=
       match col with
       | Some j when class_column = None && Array.exists (( = ) j) !mapping -> None
       | other -> other);
    em.em_header ()
  in
  let flush_chunk () =
    if !fill > 0 then begin
      let n = !fill in
      (* Chunk-local imputation. *)
      Array.iteri
        (fun k miss ->
          match miss with
          | [] -> ()
          | miss ->
            let missing = Array.make n false in
            List.iter (fun i -> missing.(i) <- true) miss;
            (match stores.(k) with
            | Snum col ->
              let present = ref [] in
              for i = 0 to n - 1 do
                if (not missing.(i)) && not (Float.is_nan col.(i)) then
                  present := col.(i) :: !present
              done;
              let m =
                match !present with
                | [] -> 0.0 (* no usable value in this chunk *)
                | l ->
                  let a = Array.of_list l in
                  Array.sort Float.compare a;
                  median a
              in
              List.iter
                (fun i ->
                  col.(i) <- m;
                  Pn_data.Ingest_report.cell_imputed ingest)
                miss
            | Scat col ->
              let arity = Pn_data.Attribute.arity attrs.(k) in
              let counts = Array.make arity 0 in
              for i = 0 to n - 1 do
                if not missing.(i) then counts.(col.(i)) <- counts.(col.(i)) + 1
              done;
              let majority = ref 0 in
              Array.iteri (fun v c -> if c > counts.(!majority) then majority := v) counts;
              List.iter
                (fun i ->
                  col.(i) <- !majority;
                  Pn_data.Ingest_report.cell_imputed ingest)
                miss);
            misses.(k) <- [])
        misses;
      let columns =
        Array.map
          (function
            | Snum col -> Pn_data.Dataset.Num (Array.sub col 0 n)
            | Scat col -> Pn_data.Dataset.Cat (Array.sub col 0 n))
          stores
      in
      em.em_emit ~n ~columns ~actuals;
      fill := 0
    end
  in
  let data_row ~line cells =
    count_row ();
    let drop msg =
      match policy with
      | Pn_data.Ingest_report.Strict -> fail "line %d: %s" line msg
      | Pn_data.Ingest_report.Skip | Pn_data.Ingest_report.Impute ->
        Pn_data.Ingest_report.row_skipped ingest ~line msg
    in
    match
      if Array.length cells <> !n_header then
        raise
          (Row_drop
             (Printf.sprintf "row has %d fields, header has %d" (Array.length cells)
                !n_header));
      let k = !fill in
      (* All writes target index [k]; a dropped row simply never
         increments [fill], so partial writes are overwritten. *)
      let row_misses = ref [] in
      Array.iteri
        (fun a j ->
          let cell = String.trim cells.(j) in
          let missing = cell = "" || cell = "?" in
          let impute_at () =
            match policy with
            | Pn_data.Ingest_report.Impute -> row_misses := a :: !row_misses
            | Pn_data.Ingest_report.Strict | Pn_data.Ingest_report.Skip ->
              raise
                (Row_drop
                   (Printf.sprintf "missing value in column %S" attrs.(a).Pn_data.Attribute.name))
          in
          match stores.(a) with
          | Snum col ->
            if missing then impute_at ()
            else (
              match float_of_string_opt cell with
              | Some v -> col.(k) <- v
              | None ->
                raise
                  (Row_drop
                     (Printf.sprintf "non-numeric cell %S in column %S" cell
                        attrs.(a).Pn_data.Attribute.name)))
          | Scat col -> (
            if missing then impute_at ()
            else
              match Hashtbl.find_opt (Option.get cat_tables.(a)) cell with
              | Some code -> col.(k) <- code
              | None -> (
                match policy with
                | Pn_data.Ingest_report.Impute ->
                  (* a category the model has never seen: impute *)
                  row_misses := a :: !row_misses
                | Pn_data.Ingest_report.Strict | Pn_data.Ingest_report.Skip ->
                  raise
                    (Row_drop
                       (Printf.sprintf "value %S not known to the model in column %S"
                          cell attrs.(a).Pn_data.Attribute.name)))))
        !mapping;
      !row_misses
    with
    | exception Row_drop msg -> drop msg
    | row_misses ->
      Pn_data.Ingest_report.row_kept ingest;
      let k = !fill in
      (* Labels are metrics-only: unknown or missing labels never fail
         the feed. *)
      actuals.(k) <-
        (match !class_idx with
        | None -> -1
        | Some j -> (
          let cell = String.trim cells.(j) in
          if cell = "" || cell = "?" then -1
          else
            match Hashtbl.find_opt class_table cell with
            | Some code -> code
            | None ->
              incr unknown_labels;
              -1));
      List.iter (fun a -> misses.(a) <- k :: misses.(a)) row_misses;
      incr fill;
      if !fill = chunk_size then flush_chunk ()
  in
  Pn_data.Stream.fold_csv source ~init:() ~f:(fun () ~line result ->
      if !n_header = 0 then
        match result with
        | Error msg -> fail "header: %s" msg
        | Ok names -> resolve_header names
      else
        match result with
        | Error msg ->
          count_row ();
          (match policy with
          | Pn_data.Ingest_report.Strict -> fail "line %d: %s" line msg
          | Pn_data.Ingest_report.Skip | Pn_data.Ingest_report.Impute ->
            Pn_data.Ingest_report.row_skipped ingest ~line msg)
        | Ok cells -> data_row ~line cells);
  if !n_header = 0 then fail "empty input";
  flush_chunk ();
  Pn_data.Ingest_report.add_io_retries ingest (Pn_data.Stream.retries source);
  {
    ingest;
    chunks = !(em.em_chunks);
    rows_out = !(em.em_rows_out);
    unknown_labels = !unknown_labels;
    seconds = Unix.gettimeofday () -. t0;
    confusion = (if !class_idx <> None then Some !(em.em_confusion) else None);
  }

(* The columnar fast path: one row group per chunk, decoded straight
   into the reader's preallocated buffers — no text parsing, no
   per-cell branching on the hot path. Only categorical codes are
   touched row-by-row (remapped from the file dictionary to the model's,
   skipped entirely when the dictionaries already agree); numeric
   columns go to the scorer as the decode buffers themselves. *)
let predict_columnar_stream ?(policy = Pn_data.Ingest_report.Strict)
    ?(scores = false) ?max_rows ?pool ?observe ~(model : Saved.t) ~source
    ~write () =
  (match max_rows with
  | Some m when m <= 0 -> invalid_arg "Serve.predict_columnar_stream: max_rows"
  | Some _ | None -> ());
  let t0 = Unix.gettimeofday () in
  let corrupt f =
    try f () with Pn_data.Columnar.Corrupt msg -> fail "columnar: %s" msg
  in
  let r = corrupt (fun () -> Pn_data.Columnar.open_reader source) in
  let sch = Pn_data.Columnar.schema r in
  let file_attrs = sch.Pn_data.Columnar.attrs in
  let names =
    Array.map (fun (a : Pn_data.Attribute.t) -> a.name) file_attrs
  in
  let mapping =
    match Saved.resolve_header model names with
    | Ok m -> m
    | Error msg -> fail "schema mismatch: %s" msg
  in
  let attrs = Saved.attrs model in
  let n_attrs = Array.length attrs in
  (* resolve_header matches names; the binary format also carries kinds,
     which must agree. Categorical dictionaries may differ from the
     model's: precompute file-code -> model-code remaps (-1 = a value
     the model has never seen). *)
  let remaps = Array.make n_attrs [||] in
  let identity = Array.make n_attrs true in
  Array.iteri
    (fun a j ->
      match (attrs.(a).Pn_data.Attribute.kind, file_attrs.(j).Pn_data.Attribute.kind)
      with
      | Pn_data.Attribute.Numeric, Pn_data.Attribute.Numeric -> ()
      | Pn_data.Attribute.Categorical mvals, Pn_data.Attribute.Categorical fvals
        ->
        let tbl = Hashtbl.create (2 * Array.length mvals) in
        Array.iteri
          (fun code v -> if not (Hashtbl.mem tbl v) then Hashtbl.add tbl v code)
          mvals;
        let remap =
          Array.map
            (fun v ->
              match Hashtbl.find_opt tbl v with Some c -> c | None -> -1)
            fvals
        in
        remaps.(a) <- remap;
        identity.(a) <-
          Array.length fvals = Array.length mvals
          && (let ok = ref true in
              Array.iteri (fun i c -> if c <> i then ok := false) remap;
              !ok)
      | Pn_data.Attribute.Numeric, Pn_data.Attribute.Categorical _ ->
        fail "schema mismatch: column %S is categorical in the file but numeric in the model"
          names.(j)
      | Pn_data.Attribute.Categorical _, Pn_data.Attribute.Numeric ->
        fail "schema mismatch: column %S is numeric in the file but categorical in the model"
          names.(j))
    mapping;
  let class_remap =
    let classes = Saved.classes model in
    Array.map
      (fun c ->
        match Array.find_index (String.equal c) classes with
        | Some code -> code
        | None -> -1)
      sch.Pn_data.Columnar.classes
  in
  (* Blocks of columns the model does not use are checksum-verified but
     never decoded. *)
  let wanted = Array.make (Array.length file_attrs) false in
  Array.iter (fun j -> wanted.(j) <- true) mapping;
  Pn_data.Columnar.set_wanted r wanted;
  let ingest = Pn_data.Ingest_report.create () in
  let unknown_labels = ref 0 in
  let em = make_emitter ?pool ?observe ~scores ~model ~write () in
  em.em_header ();
  let gs = sch.Pn_data.Columnar.group_size in
  let actuals = Array.make gs (-1) in
  let keep = Array.make gs true in
  let misses = Array.make n_attrs [] in
  let base_row = ref 0 in
  let rec groups () =
    match corrupt (fun () -> Pn_data.Columnar.read_group r) with
    | None -> ()
    | Some rows ->
      (* Every decoded row counts against the row budget, as in the CSV
         path. *)
      for _ = 1 to rows do
        Pn_data.Ingest_report.row_read ingest
      done;
      (match max_rows with
      | Some m when ingest.Pn_data.Ingest_report.rows_read > m ->
        raise (Limit (Printf.sprintf "input exceeds the row limit (%d rows)" m))
      | Some _ | None -> ());
      Array.fill keep 0 rows true;
      (* Row policy, column-major: a missing cell or an unknown
         categorical value fails / drops / queues the row for chunk-local
         imputation — the same decisions the CSV decoder takes cell by
         cell. *)
      Array.iteri
        (fun a j ->
          let name = attrs.(a).Pn_data.Attribute.name in
          let miss = Pn_data.Columnar.col_missing r j in
          let on_missing i =
            match policy with
            | Pn_data.Ingest_report.Strict ->
              fail "row %d: missing value in column %S" (!base_row + i + 1) name
            | Pn_data.Ingest_report.Skip ->
              keep.(i) <- false;
              Pn_data.Ingest_report.row_skipped ingest ~line:(!base_row + i + 1)
                (Printf.sprintf "missing value in column %S" name)
            | Pn_data.Ingest_report.Impute -> misses.(a) <- i :: misses.(a)
          in
          match attrs.(a).Pn_data.Attribute.kind with
          | Pn_data.Attribute.Numeric -> (
            match miss with
            | None -> ()
            | Some mask ->
              for i = 0 to rows - 1 do
                if mask.(i) && keep.(i) then on_missing i
              done)
          | Pn_data.Attribute.Categorical _ ->
            let col = Pn_data.Columnar.cat_col r j in
            let remap = remaps.(a) in
            let fvals =
              match file_attrs.(j).Pn_data.Attribute.kind with
              | Pn_data.Attribute.Categorical v -> v
              | Pn_data.Attribute.Numeric -> assert false
            in
            let is_missing i =
              match miss with None -> false | Some mask -> mask.(i)
            in
            if identity.(a) then (
              match miss with
              | None -> ()
              | Some mask ->
                for i = 0 to rows - 1 do
                  if mask.(i) && keep.(i) then on_missing i
                done)
            else
              for i = 0 to rows - 1 do
                if keep.(i) then
                  if is_missing i then on_missing i
                  else
                    let m = remap.(col.(i)) in
                    if m >= 0 then col.(i) <- m
                    else
                      match policy with
                      | Pn_data.Ingest_report.Strict ->
                        fail "row %d: value %S not known to the model in column %S"
                          (!base_row + i + 1) fvals.(col.(i)) name
                      | Pn_data.Ingest_report.Skip ->
                        keep.(i) <- false;
                        Pn_data.Ingest_report.row_skipped ingest
                          ~line:(!base_row + i + 1)
                          (Printf.sprintf
                             "value %S not known to the model in column %S"
                             fvals.(col.(i)) name)
                      | Pn_data.Ingest_report.Impute ->
                        misses.(a) <- i :: misses.(a)
              done)
        mapping;
      (* Chunk-local imputation, mirroring the CSV path. *)
      Array.iteri
        (fun a miss ->
          match miss with
          | [] -> ()
          | miss ->
            let missing = Array.make rows false in
            List.iter (fun i -> missing.(i) <- true) miss;
            let j = mapping.(a) in
            (match attrs.(a).Pn_data.Attribute.kind with
            | Pn_data.Attribute.Numeric ->
              let col = Pn_data.Columnar.num_col r j in
              let present = ref [] in
              for i = 0 to rows - 1 do
                if (not missing.(i)) && not (Float.is_nan col.(i)) then
                  present := col.(i) :: !present
              done;
              let m =
                match !present with
                | [] -> 0.0
                | l ->
                  let a = Array.of_list l in
                  Array.sort Float.compare a;
                  median a
              in
              List.iter
                (fun i ->
                  col.(i) <- m;
                  Pn_data.Ingest_report.cell_imputed ingest)
                miss
            | Pn_data.Attribute.Categorical _ ->
              let col = Pn_data.Columnar.cat_col r j in
              let arity = Pn_data.Attribute.arity attrs.(a) in
              let counts = Array.make arity 0 in
              for i = 0 to rows - 1 do
                if not missing.(i) then counts.(col.(i)) <- counts.(col.(i)) + 1
              done;
              let majority = ref 0 in
              Array.iteri
                (fun v c -> if c > counts.(!majority) then majority := v)
                counts;
              List.iter
                (fun i ->
                  col.(i) <- !majority;
                  Pn_data.Ingest_report.cell_imputed ingest)
                miss);
            misses.(a) <- [])
        misses;
      (* Labels are metrics-only; compact kept rows in place (column by
         column) when the policy dropped any. *)
      let labels = Pn_data.Columnar.group_labels r in
      let n = ref 0 in
      for i = 0 to rows - 1 do
        if keep.(i) then begin
          actuals.(!n) <-
            (match labels with
            | None -> -1
            | Some lab ->
              if lab.(i) < 0 then -1
              else
                let code = class_remap.(lab.(i)) in
                if code < 0 then begin
                  incr unknown_labels;
                  -1
                end
                else code);
          Pn_data.Ingest_report.row_kept ingest;
          incr n
        end
      done;
      let n = !n in
      if n < rows then
        Array.iteri
          (fun j w ->
            if w then
              match file_attrs.(j).Pn_data.Attribute.kind with
              | Pn_data.Attribute.Numeric ->
                let col = Pn_data.Columnar.num_col r j in
                let w = ref 0 in
                for i = 0 to rows - 1 do
                  if keep.(i) then begin
                    col.(!w) <- col.(i);
                    incr w
                  end
                done
              | Pn_data.Attribute.Categorical _ ->
                let col = Pn_data.Columnar.cat_col r j in
                let w = ref 0 in
                for i = 0 to rows - 1 do
                  if keep.(i) then begin
                    col.(!w) <- col.(i);
                    incr w
                  end
                done)
          wanted;
      if n > 0 then begin
        let columns =
          Array.map
            (fun j ->
              match file_attrs.(j).Pn_data.Attribute.kind with
              | Pn_data.Attribute.Numeric ->
                let col = Pn_data.Columnar.num_col r j in
                Pn_data.Dataset.Num
                  (if n = Array.length col then col else Array.sub col 0 n)
              | Pn_data.Attribute.Categorical _ ->
                let col = Pn_data.Columnar.cat_col r j in
                Pn_data.Dataset.Cat
                  (if n = Array.length col then col else Array.sub col 0 n))
            mapping
        in
        em.em_emit ~n ~columns ~actuals
      end;
      base_row := !base_row + rows;
      groups ()
  in
  groups ();
  Pn_data.Ingest_report.add_io_retries ingest (Pn_data.Columnar.io_retries r);
  {
    ingest;
    chunks = !(em.em_chunks);
    rows_out = !(em.em_rows_out);
    unknown_labels = !unknown_labels;
    seconds = Unix.gettimeofday () -. t0;
    confusion =
      (if sch.Pn_data.Columnar.has_labels then Some !(em.em_confusion) else None);
  }

let predict_pnc ?policy ?scores ?pool ~model ~input ~output () =
  let ic = open_in_bin input in
  let report =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        predict_columnar_stream ?policy ?scores ?pool ~model
          ~source:(Pn_data.Stream.of_channel ic)
          ~write:(output_string output) ())
  in
  flush output;
  report

let predict_csv ?policy ?chunk_size ?class_column ?scores ?pool ~model ~input
    ~output () =
  let ic = open_in_bin input in
  let report =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        predict_stream ?policy ?chunk_size ?class_column ?scores ?pool ~model
          ~source:(Pn_data.Stream.of_channel ic)
          ~write:(output_string output) ())
  in
  flush output;
  report
