(** Versioned on-disk model registry with staged rollout support.

    A registry is a directory of immutable generation files plus an
    atomically rewritten pointer:

    {v
    <dir>/gen-1.model    serialized model, any supported format version
    <dir>/gen-2.model
    <dir>/CURRENT        one line naming the serving file: "gen-2.model"
    v}

    Generation files are never rewritten in place ({!publish} always
    allocates the next number), so flipping {!set_current} forward is a
    rollout, flipping it backward is a rollback, and every earlier
    generation stays on disk for one-command recovery. The pointer
    write reuses {!Serialize.write_atomic} under the [registry.flip]
    fault point; {!load_gen} passes [registry.load]. A crash mid-flip
    leaves at most a temp file behind — [CURRENT] keeps naming the old
    generation, which is what a restart will serve. *)

exception Error of string
(** Registry-level failures: missing directory, empty registry, absent
    generation, canary rejection. IO and parse failures keep their own
    exceptions ([Sys_error], {!Serialize.Corrupt}). *)

type t

(** [open_dir dir] wraps an existing directory. Raises {!Error} if
    [dir] is not a directory — the caller creates it, the registry
    never does. *)
val open_dir : string -> t

val dir : t -> string

(** [gen_path t g] is the path of generation [g]'s file, existing or
    not. *)
val gen_path : t -> int -> string

(** All generation numbers present on disk, ascending. Temp files and
    foreign names are ignored. *)
val generations : t -> int list

(** The generation the [CURRENT] pointer names, if the pointer exists
    and parses. A missing or mangled pointer is [None], never an
    error — {!load_initial} falls back to the highest generation. *)
val current : t -> int option

(** [set_current t g] atomically repoints [CURRENT] at an existing
    generation. Raises {!Error} if [g] is not on disk; IO failures
    (and [registry.flip] faults) propagate with [CURRENT] untouched. *)
val set_current : t -> int -> unit

(** [load_gen t g] reads and verifies generation [g]. Raises
    {!Serialize.Corrupt} / [Sys_error]; transient errnos injected at
    the [registry.load] fault point are retried with backoff. *)
val load_gen : t -> int -> Saved.t

(** [load_gen_ex t g] is {!load_gen} keeping the generation's v4
    drift-expectations block when it has one. *)
val load_gen_ex : t -> int -> Saved.t * Saved.expectations option

(** [load_initial t] resolves what a booting daemon should serve: the
    generation [CURRENT] names if it loads, else the highest loadable
    generation (scanning downward past corrupt files, each logged).
    Raises {!Error} when the registry is empty or nothing loads. *)
val load_initial : t -> int * Saved.t

(** [load_initial_ex t] is {!load_initial} keeping the picked
    generation's expectations block when present. *)
val load_initial_ex : t -> int * Saved.t * Saved.expectations option

(** Smallest generation strictly above / largest strictly below [g] —
    the default rollout and rollback targets. *)
val next_above : t -> int -> int option

val prev_below : t -> int -> int option

(** [publish t saved] writes [saved] as the next generation (atomic
    write protocol) and returns its number. Does not touch [CURRENT].
    [expectations] adds the v4 drift baseline to the file;
    [fault_point] renames the write loop's fault point (default
    [serialize.write]) — the background retrainer publishes under
    [retrain.publish] so chaos tests can tear exactly this write. A
    failed write removes its temp file and allocates no generation. *)
val publish :
  ?expectations:Saved.expectations -> ?fault_point:string -> t -> Saved.t -> int

(** [warm saved] forces the compile → score path on a synthetic canary
    batch built from the model's own schema (every column, every
    categorical code). Any exception means the model must not be
    flipped live; returns unit on success. *)
val warm : Saved.t -> unit
