(* Versioned on-disk model registry: a directory of immutable
   generation files plus an atomically rewritten CURRENT pointer.

   Layout:
     <dir>/gen-1.model    serialized Saved.t, any supported version
     <dir>/gen-2.model
     <dir>/CURRENT        one line naming the serving file: "gen-2.model"

   Generation files are never rewritten in place — [publish] always
   allocates the next number — so a flip is a pointer swap and a
   rollback is the same swap in reverse, with every earlier generation
   still on disk. The pointer write rides [Serialize.write_atomic]
   under the [registry.flip] fault point: a crash mid-flip tears at
   most a temp file, and CURRENT keeps naming the old generation. *)

let log = Logs.Src.create "pnrule.registry" ~doc:"versioned model registry"

module Log = (val Logs.src_log log)

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type t = { dir : string }

let current_name = "CURRENT"

let open_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    fail "registry %s: not a directory" dir;
  { dir }

let dir t = t.dir

let gen_file g = Printf.sprintf "gen-%d.model" g

let gen_path t g = Filename.concat t.dir (gen_file g)

(* "gen-N.model" with nothing after it: the %! rejects trailing bytes,
   so temp files left by a torn atomic write ("gen-2.model.tmp.123")
   never parse as a generation. *)
let parse_gen name =
  match Scanf.sscanf name "gen-%d.model%!" Fun.id with
  | g when g >= 1 -> Some g
  | _ -> None
  | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> None

let generations t =
  Sys.readdir t.dir |> Array.to_list
  |> List.filter_map parse_gen
  |> List.sort_uniq compare

let current t =
  match
    In_channel.with_open_bin (Filename.concat t.dir current_name)
      In_channel.input_all
  with
  | s -> parse_gen (String.trim s)
  | exception Sys_error _ -> None

let set_current t g =
  if not (Sys.file_exists (gen_path t g)) then
    fail "registry %s: generation %d does not exist" t.dir g;
  Serialize.write_atomic ~fault_point:"registry.flip"
    (gen_file g ^ "\n")
    (Filename.concat t.dir current_name)

(* Transient errnos injected at [registry.load] get the same bounded
   backed-off retry as the production IO loops; anything else (Corrupt,
   Sys_error, a hard Injected) propagates to the caller's keep-the-old-
   generation policy. *)
let load_gen_ex t g =
  let rec pass attempt =
    match Pn_util.Fault.check "registry.load" with
    | () -> ()
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      when attempt < 5 ->
      Pn_util.Backoff.sleep ~attempt ();
      pass (attempt + 1)
  in
  pass 0;
  Serialize.load_saved_ex (gen_path t g)

let load_gen t g = fst (load_gen_ex t g)

let next_above t g = List.find_opt (fun x -> x > g) (generations t)

let prev_below t g =
  List.fold_left
    (fun acc x -> if x < g then Some x else acc)
    None (generations t)

let load_initial_ex t =
  let gens = generations t in
  if gens = [] then fail "registry %s: no gen-N.model files" t.dir;
  let try_load g =
    match load_gen_ex t g with
    | m, exp -> Some (g, m, exp)
    | exception Serialize.Corrupt reason ->
      Log.warn (fun m ->
          m "registry %s: skipping corrupt generation %d: %s" t.dir g reason);
      None
    | exception Sys_error _ -> None
  in
  let picked =
    match Option.bind (current t) try_load with
    | Some _ as r -> r
    | None ->
      (* No (valid) pointer: fall back to the highest generation that
         still loads, scanning downward past corrupt files. *)
      List.fold_left
        (fun acc g -> match acc with Some _ -> acc | None -> try_load g)
        None (List.rev gens)
  in
  match picked with
  | Some r -> r
  | None -> fail "registry %s: no loadable generation" t.dir

let load_initial t =
  let g, m, _ = load_initial_ex t in
  (g, m)

let publish ?expectations ?fault_point t saved =
  let g = List.fold_left max 0 (generations t) + 1 in
  Serialize.save_saved_ex ?fault_point saved expectations (gen_path t g);
  g

(* The canary batch is synthetic but schema-exact: every column of the
   model's own attribute table, every categorical code hit via mod, so
   warming forces the full load → compile → score path a real request
   would take. Values need no realism — an out-of-range rule column, an
   empty dictionary or a broken compiled program all surface here as
   exceptions, which is the point: a generation that cannot score a
   trivial batch must never be flipped live. *)
let canary_rows = 64

let warm saved =
  let attrs = Saved.attrs saved in
  if Array.length attrs > 0 then begin
    let n = canary_rows in
    let columns =
      Array.map
        (fun (a : Pn_data.Attribute.t) ->
          match a.kind with
          | Pn_data.Attribute.Numeric ->
            Pn_data.Dataset.Num
              (Array.init n (fun i -> (float_of_int (i mod 13) -. 6.0) *. 0.75))
          | Pn_data.Attribute.Categorical values ->
            let arity = Array.length values in
            if arity = 0 then
              fail "canary: attribute %S has no categorical values" a.name;
            Pn_data.Dataset.Cat (Array.init n (fun i -> i mod arity)))
        attrs
    in
    let classes = Saved.classes saved in
    let labels = Array.init n (fun i -> i mod max 1 (Array.length classes)) in
    let ds = Pn_data.Dataset.create ~attrs ~columns ~labels ~classes () in
    let preds = Saved.predict_all ~pool:Pn_util.Pool.sequential saved ds in
    let scores = Saved.score_all ~pool:Pn_util.Pool.sequential saved ds in
    if Array.length preds <> n || Array.length scores <> n then
      fail "canary: scoring returned %d/%d results for %d rows"
        (Array.length preds) (Array.length scores) n
  end
