module RM = Pn_metrics.Rule_metric

let src = Logs.Src.create "pnrule.ensemble" ~doc:"boosted rule ensembles"

module Log = (val Logs.src_log src : Logs.LOG)

type member = { rule : Pn_rules.Rule.t; weight : float }

type t = {
  target : int;
  classes : string array;
  attrs : Pn_data.Attribute.t array;
  members : member array;
  bias : float;
  threshold : float;
}

type params = {
  rounds : int;
  shrinkage : float;
  metric : Pn_metrics.Rule_metric.kind;
  max_rule_length : int option;
  min_support_fraction : float;
  threshold : float;
}

let default_params =
  {
    rounds = 30;
    shrinkage = 0.5;
    metric = Pn_metrics.Rule_metric.Z_number;
    max_rule_length = Some 4;
    min_support_fraction = 0.01;
    threshold = 0.0;
  }

(* One general-to-specific refinement under the round's feature mask:
   the booster's weak learner is a single rule, not a rule list. *)
let grow_one ~params ~features ~target view =
  let pos, neg = Pn_data.View.binary_weights view ~target in
  let ctx = { RM.pos_total = pos; neg_total = neg } in
  let min_support = params.min_support_fraction *. pos in
  let rec refine rule covered current_score =
    let too_long =
      match params.max_rule_length with
      | Some k -> Pn_rules.Rule.n_conditions rule >= k
      | None -> false
    in
    if too_long then rule
    else begin
      match
        Pn_induct.Grower.best_condition ~min_support ~current:rule ?features
          ~metric:params.metric ~ctx ~target covered
      with
      | Some cand when cand.Pn_induct.Grower.score > current_score +. 1e-12 ->
        let rule = Pn_rules.Rule.add rule cand.Pn_induct.Grower.condition in
        let covered =
          Pn_data.View.filter covered (fun i ->
              Pn_rules.Condition.matches covered.Pn_data.View.data
                cand.Pn_induct.Grower.condition i)
        in
        refine rule covered cand.Pn_induct.Grower.score
      | Some _ | None -> rule
    end
  in
  refine Pn_rules.Rule.empty view (RM.eval params.metric ctx { RM.pos; neg })

let train ?(params = default_params) ?(sampling = Pn_induct.Sampling.none) ds
    ~target =
  let n = Pn_data.Dataset.n_records ds in
  if n = 0 then invalid_arg "Pnrule.Ensemble.train: empty dataset";
  if params.rounds < 1 then invalid_arg "Pnrule.Ensemble.train: rounds < 1";
  let n_attrs = Pn_data.Dataset.n_attrs ds in
  let w = Array.init n (fun i -> Pn_data.Dataset.weight ds i) in
  let normalize () =
    let s = Pn_util.Arr.sum_floats w in
    if s > 0.0 then begin
      let k = float_of_int n /. s in
      for i = 0 to n - 1 do
        w.(i) <- w.(i) *. k
      done
    end
  in
  normalize ();
  let weights ~covers =
    let pos = ref 0.0 and neg = ref 0.0 in
    for i = 0 to n - 1 do
      if covers i then
        if Pn_data.Dataset.label ds i = target then pos := !pos +. w.(i)
        else neg := !neg +. w.(i)
    done;
    (!pos, !neg)
  in
  (* SLIPPER's smoothing: ½·(1/n) keeps confidences finite on pure
     coverage without washing out strong rules. *)
  let eps = 0.5 /. float_of_int n in
  let confidence (pos, neg) =
    params.shrinkage *. 0.5 *. log ((pos +. eps) /. (neg +. eps))
  in
  (* Covered records move as in real AdaBoost: correct ones (target
     under a positive-confidence rule) down, mistakes up. *)
  let reweight ~covers alpha =
    let up = exp alpha and down = exp (-.alpha) in
    for i = 0 to n - 1 do
      if covers i then
        w.(i) <- w.(i) *. (if Pn_data.Dataset.label ds i = target then down else up)
    done;
    normalize ()
  in
  let all_pos, all_neg = weights ~covers:(fun _ -> true) in
  if all_pos <= 0.0 then
    invalid_arg "Pnrule.Ensemble.train: no target-class weight in training data";
  (* Round 0 is the default rule: it covers everything, so its (for a
     rare class, strongly negative) confidence becomes the score bias
     and its reweighting is what lifts the rare class into view for the
     rule rounds — boosting's own form of stratification. *)
  let bias = confidence (all_pos, all_neg) in
  reweight ~covers:(fun _ -> true) bias;
  let master = Pn_util.Rng.create sampling.Pn_induct.Sampling.seed in
  let members = ref [] in
  for round = 1 to params.rounds do
    (* Each round owns a split-off stream: adding draws to one round
       (say a bagged sample) never perturbs another's. *)
    let sctx = Pn_induct.Sampling.ctx_of_rng sampling (Pn_util.Rng.split master) in
    let dsw = Pn_data.Dataset.with_weights ds (Array.copy w) in
    let view = Pn_induct.Sampling.sample_instances sctx (Pn_data.View.all dsw) in
    let features = Pn_induct.Sampling.feature_mask sctx ~n_attrs in
    let vpos, _ = Pn_data.View.binary_weights view ~target in
    if vpos > 0.0 then begin
      let rule = grow_one ~params ~features ~target view in
      if not (Pn_rules.Rule.is_empty rule) then begin
        (* Confidence and reweighting use the rule's coverage of the
           FULL weighted set (one compiled pass), not just the round's
           sample — the sample only steered the search. *)
        let fm = Pn_rules.Compiled.first_match_all [| rule |] ds in
        let covers i = fm.(i) >= 0 in
        let cov = weights ~covers in
        let alpha = confidence cov in
        if alpha > 0.0 then begin
          Log.debug (fun m ->
              m "round %d: %s  (W+=%.2f W-=%.2f alpha=%.3f)" round
                (Pn_rules.Rule.to_string ds.Pn_data.Dataset.attrs rule)
                (fst cov) (snd cov) alpha);
          members := { rule; weight = alpha } :: !members;
          reweight ~covers alpha
        end
      end
    end
  done;
  let members = Array.of_list (List.rev !members) in
  Log.info (fun m ->
      m "boosted ensemble: %d members from %d rounds (bias %.3f)"
        (Array.length members) params.rounds bias);
  {
    target;
    classes = ds.Pn_data.Dataset.classes;
    attrs = ds.Pn_data.Dataset.attrs;
    members;
    bias;
    threshold = params.threshold;
  }

(* ------------------------------------------------------------------ *)
(* Scoring                                                              *)
(* ------------------------------------------------------------------ *)

(* Every member becomes a one-rule list of a single compiled program:
   conditions shared between members evaluate once, and each member's
   coverage bitset resolves word-at-a-time. The vote itself is then one
   columnar float add per member. *)
let compiled t =
  Pn_rules.Compiled.compile (Array.map (fun m -> [| m.rule |]) t.members)

(* Raw per-member coverage: one first-match array per member, [||] for
   the empty ensemble. Exposed so the serving path can derive scores
   AND per-rule firing counts from a single eval. *)
let eval_matches ?pool t ds =
  if Array.length t.members = 0 then [||]
  else Pn_rules.Compiled.eval ?pool (compiled t) ds

let scores_of_matches t ~n fm =
  let out = Array.make n t.bias in
  Array.iteri
    (fun l m ->
      let fl = fm.(l) in
      let weight = m.weight in
      for i = 0 to n - 1 do
        if Array.unsafe_get fl i >= 0 then
          Array.unsafe_set out i (Array.unsafe_get out i +. weight)
      done)
    t.members;
  out

let score_all ?pool t ds =
  let n = Pn_data.Dataset.n_records ds in
  scores_of_matches t ~n (eval_matches ?pool t ds)

let predict_all ?pool (t : t) ds =
  Array.map (fun s -> s > t.threshold) (score_all ?pool t ds)

let evaluate ?pool t ds =
  let predicted = predict_all ?pool t ds in
  let acc = ref Pn_metrics.Confusion.zero in
  for i = 0 to Pn_data.Dataset.n_records ds - 1 do
    acc :=
      Pn_metrics.Confusion.add !acc
        ~actual:(Pn_data.Dataset.label ds i = t.target)
        ~predicted:predicted.(i)
        ~weight:(Pn_data.Dataset.weight ds i)
  done;
  !acc

let n_members t = Array.length t.members

let pp ppf t =
  Format.fprintf ppf
    "@[<v>Boosted ensemble for class %S (%d members, bias %.3f, threshold %g)@,"
    t.classes.(t.target) (Array.length t.members) t.bias t.threshold;
  Array.iteri
    (fun k m ->
      Format.fprintf ppf "  %+.3f  %a@," m.weight (Pn_rules.Rule.pp t.attrs)
        m.rule;
      ignore k)
    t.members;
  Format.fprintf ppf "@]"
