(** Trained PNrule models.

    A model is an ordered P-rule list, an ordered N-rule list, and the
    ScoreMatrix. Prediction (§2.3): apply P-rules in rank order — if none
    applies the score is 0; otherwise apply N-rules in rank order and
    return ScoreMatrix[first P-rule, first N-rule], where "no N-rule
    applies" is the implicit default last N-rule. *)

type t = {
  target : int;  (** index of the target class in [classes] *)
  classes : string array;
  attrs : Pn_data.Attribute.t array;
  p_rules : Pn_rules.Rule_list.t;
  n_rules : Pn_rules.Rule_list.t;
  scores : float array array;
      (** nP rows × (nN + 1) columns; the last column is the default
          "no N-rule applied" entry *)
  params : Params.t;
}

(** [score t ds i] is the model's probability-like score ∈ [0,1] that
    record [i] of [ds] belongs to the target class. Per-record
    reference path; the batch functions below must (and are tested to)
    agree with it bit-for-bit. *)
val score : t -> Pn_data.Dataset.t -> int -> float

(** [predict t ds i] thresholds [score] at [t.params.score_threshold].
    When [t.params.use_scoring] is false, the plain DNF decision is used:
    true iff some P-rule applies and no N-rule applies. *)
val predict : t -> Pn_data.Dataset.t -> int -> bool

(** [first_matches t ds] is the compiled batch engine's raw output: the
    first matching P-rule and N-rule index per record, [-1] for no
    match. One {!Pn_rules.Compiled.eval} pass; {!score_all} and
    {!predict_all} are lookups over it, and the serving path reuses the
    P-side as its per-rule drift signal. *)
val first_matches :
  ?pool:Pn_util.Pool.t -> t -> Pn_data.Dataset.t -> int array * int array

(** [score_of_matches t ~p ~n] is the ScoreMatrix lookup for a record
    whose first P-rule is [p] and first N-rule is [n] ([-1] = none):
    0 when no P-rule applied, the last (default) column when no N-rule
    did. *)
val score_of_matches : t -> p:int -> n:int -> float

(** [predict_all t ds] is the per-record prediction vector, served by the
    compiled bitset engine ({!Pn_rules.Compiled}): conditions are
    deduplicated across the P- and N-lists and evaluated columnar-style,
    with record chunks fanned across [pool] (default
    {!Pn_util.Pool.get_default}). Bit-identical to mapping {!predict} at
    every pool size. *)
val predict_all : ?pool:Pn_util.Pool.t -> t -> Pn_data.Dataset.t -> bool array

(** [score_all t ds] is the per-record score vector, e.g. for
    precision-recall analysis with {!Pn_metrics.Pr_curve}. Same compiled
    batch path as {!predict_all}. *)
val score_all : ?pool:Pn_util.Pool.t -> t -> Pn_data.Dataset.t -> float array

(** [evaluate t ds] tallies the weighted confusion matrix of the model on
    a dataset labeled with the same class table, predicting through the
    compiled batch path. *)
val evaluate : ?pool:Pn_util.Pool.t -> t -> Pn_data.Dataset.t -> Pn_metrics.Confusion.t

(** [resolve_header t names] validates a CSV header against the model's
    training schema: every attribute of [t.attrs] must appear exactly
    once in [names] (extra columns are allowed). On success returns the
    mapping from attribute index to header column index; on failure a
    human-readable description of every mismatched attribute,
    ["; "]-separated. *)
val resolve_header : t -> string array -> (int array, string) result

(** [rule_counts t] is (number of P-rules, number of N-rules). *)
val rule_counts : t -> int * int

val pp : Format.formatter -> t -> unit
