(** What a model file can hold: a single two-phase PNrule list
    ({!Model.t}, formats v1/v2) or a boosted ensemble ({!Ensemble.t},
    format v3). The serving stack — {!Serve}, the daemon, the CLI — is
    written against this type, so every model kind rides the same
    streaming pipeline and the same compiled bitset scoring. *)

type t = Single of Model.t | Boosted of Ensemble.t

(** ["pnrule"] or ["boosted"] — the discriminator surfaced on
    [GET /model]. *)
val kind : t -> string

val attrs : t -> Pn_data.Attribute.t array

val classes : t -> string array

(** Index of the target class in {!classes}. *)
val target : t -> int

(** Same name-based schema check as {!Model.resolve_header}, over
    either kind: [Ok mapping] maps attribute [k] to header column
    [mapping.(k)]; [Error] lists every missing/duplicated column. *)
val resolve_header : t -> string array -> (int array, string) result

val predict_all : ?pool:Pn_util.Pool.t -> t -> Pn_data.Dataset.t -> bool array

val score_all : ?pool:Pn_util.Pool.t -> t -> Pn_data.Dataset.t -> float array

val evaluate : ?pool:Pn_util.Pool.t -> t -> Pn_data.Dataset.t -> Pn_metrics.Confusion.t

val pp : Format.formatter -> t -> unit
