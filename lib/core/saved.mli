(** What a model file can hold: a single two-phase PNrule list
    ({!Model.t}, formats v1/v2) or a boosted ensemble ({!Ensemble.t},
    format v3). The serving stack — {!Serve}, the daemon, the CLI — is
    written against this type, so every model kind rides the same
    streaming pipeline and the same compiled bitset scoring. *)

type t = Single of Model.t | Boosted of Ensemble.t

(** Per-rule training-time behaviour, the online drift monitor's
    baseline. For a [Single] model the monitored rules are the P-rules
    and [rates.(k)] is the fraction of training rows whose first
    matching P-rule was rule [k] (first-match semantics — exactly what
    the serving path observes); for a [Boosted] ensemble the monitored
    rules are the members and [rates.(l)] is the fraction of rows
    member [l] covered. [precisions.(k)] is, among those firings, the
    fraction whose label was the target class; [support] is the number
    of rows the baseline was derived from. Persisted with the model as
    serialization format v4 ({!Serialize.save_saved_ex}). *)
type expectations = {
  rates : float array;
  precisions : float array;
  support : int;
}

(** Per-record rule-firing evidence of one scored batch, in the shape
    the model kind produces for free: the first-match P-rule index per
    record ([-1] = none) for a [Single] model, or one first-match array
    per ensemble member ([>= 0] = the member covered the record) for a
    [Boosted] one. *)
type fires =
  | First_match of int array
  | Per_rule of int array array

type batch = {
  preds : bool array;
  scores_v : float array option;  (** present iff requested *)
  fires : fires;
}

(** ["pnrule"] or ["boosted"] — the discriminator surfaced on
    [GET /model]. *)
val kind : t -> string

(** Number of monitored rules: P-rules of a [Single] model, members of
    a [Boosted] one. The length of {!expectations} arrays and the rule
    index space of {!fires}. *)
val n_monitored : t -> int

val attrs : t -> Pn_data.Attribute.t array

val classes : t -> string array

(** Index of the target class in {!classes}. *)
val target : t -> int

(** Same name-based schema check as {!Model.resolve_header}, over
    either kind: [Ok mapping] maps attribute [k] to header column
    [mapping.(k)]; [Error] lists every missing/duplicated column. *)
val resolve_header : t -> string array -> (int array, string) result

val predict_all : ?pool:Pn_util.Pool.t -> t -> Pn_data.Dataset.t -> bool array

val score_all : ?pool:Pn_util.Pool.t -> t -> Pn_data.Dataset.t -> float array

(** [eval_batch t ds] scores a batch through ONE compiled-engine pass
    and returns predictions, scores (when [scores] is true) and the
    per-rule firing evidence together — the serving path's way to feed
    the drift monitor without a second eval. Predictions and scores are
    bit-identical to {!predict_all} / {!score_all}. *)
val eval_batch :
  ?pool:Pn_util.Pool.t -> ?scores:bool -> t -> Pn_data.Dataset.t -> batch

val evaluate : ?pool:Pn_util.Pool.t -> t -> Pn_data.Dataset.t -> Pn_metrics.Confusion.t

val pp : Format.formatter -> t -> unit
