(** Streaming batch prediction: the end-to-end serving pipeline.

    [predict_csv] pulls a CSV feed through the {!Pn_data.Stream} decoder
    in fixed-size chunks, validates each chunk against the saved model's
    schema ({!Saved.resolve_header} on the header, per-cell kind checks on
    the rows), scores it through the compiled bitset engine and streams a
    predictions CSV out — the full dataset is never materialized, so
    resident memory is bounded by the chunk size, not the feed. The
    pipeline is written against {!Saved.t}, so a boosted ensemble serves
    through exactly the same path as a single PNrule model.

    Row handling follows the ingestion {!Pn_data.Ingest_report.policy}:
    - [Strict]: any undecodable row (malformed CSV, wrong arity, missing
      value, categorical value the model has never seen) raises {!Error};
    - [Skip]: such rows are dropped and counted — no prediction line is
      emitted for them;
    - [Impute]: missing cells ("?" or empty) and unseen categorical
      values are filled with the {e chunk-local} median / majority value
      (serving sees data one chunk at a time, so imputation statistics
      are per chunk by design; a chunk with no usable value for a column
      falls back to 0 / the first categorical value). Structurally bad
      rows are still dropped as under [Skip].

    Labels are metrics-only: when a class column is present (explicit
    [~class_column], or a header column named "class" that the model does
    not claim as a feature), rows whose label matches the model's class
    table feed a running confusion matrix; unknown or missing labels are
    counted but never fail the feed. *)

exception Error of string

(** Raised by {!predict_stream} when the feed exceeds [max_rows]. Kept
    distinct from {!Error} so the daemon can answer 413 rather than
    400. *)
exception Limit of string

type report = {
  ingest : Pn_data.Ingest_report.t;
  chunks : int;  (** number of scored chunks *)
  rows_out : int;  (** prediction lines written *)
  unknown_labels : int;
      (** rows whose class cell did not name a model class *)
  seconds : float;  (** wall-clock time for the whole pipeline *)
  confusion : Pn_metrics.Confusion.t option;
      (** running test metrics, when a usable class column exists *)
}

(** Per-chunk tap on the scored stream, for the drift monitor and the
    retraining reservoir: called once per scored chunk, after scoring
    and before the chunk's output is written, with the chunk's decoded
    [columns], the {!Saved.eval_batch} result and the resolved label
    codes ([actuals.(i) < 0] = unlabeled; only the first [n] entries
    are valid). [columns] may alias decoder-owned buffers that the next
    chunk overwrites — an observer that retains rows must copy. An
    exception from the observer aborts the feed like a scoring error. *)
type observer =
  n:int ->
  columns:Pn_data.Dataset.column array ->
  batch:Saved.batch ->
  actuals:int array ->
  unit

(** [predict_stream ~model ~source ~write ()] is the decode/score core
    shared by the batch pipeline and the online daemon: it pulls CSV
    rows from an arbitrary {!Pn_data.Stream.source} (a file, a socket
    body, an in-memory string) and pushes prediction lines through
    [write] — one call for the header line, then one per scored chunk,
    which is what lets the HTTP path emit exactly one transfer chunk
    per scored chunk. [max_rows] bounds the number of data rows
    (kept, skipped or malformed) the feed may carry; exceeding it
    raises {!Limit}. Raises {!Error} on a schema mismatch or, under
    [Strict], on the first bad row. *)
val predict_stream :
  ?policy:Pn_data.Ingest_report.policy ->
  ?chunk_size:int ->
  ?class_column:string ->
  ?scores:bool ->
  ?max_rows:int ->
  ?pool:Pn_util.Pool.t ->
  ?observe:observer ->
  model:Saved.t ->
  source:Pn_data.Stream.source ->
  write:(string -> unit) ->
  unit ->
  report

(** [predict_columnar_stream ~model ~source ~write ()] is the binary
    fast path: the same scoring, output formatting and policy semantics
    as {!predict_stream}, fed from a {!Pn_data.Columnar} [.pnc] stream
    instead of CSV text. One row group is scored per chunk (so the
    file's group size plays the role of [chunk_size]), decoded straight
    into reusable buffers with no per-cell parsing; on the same rows the
    output is byte-identical to the CSV path's. The file's categorical
    dictionaries and class table are remapped to the model's by name;
    values the model has never seen follow the policy exactly like
    unknown CSV cells, and missing-value bitmaps drive
    Strict/Skip/Impute the same way. When the file carries labels they
    feed the confusion matrix, as a CSV "class" column would. Raises
    {!Error} (wrapping {!Pn_data.Columnar.Corrupt} as
    ["columnar: ..."] ) and {!Limit} like the CSV core. *)
val predict_columnar_stream :
  ?policy:Pn_data.Ingest_report.policy ->
  ?scores:bool ->
  ?max_rows:int ->
  ?pool:Pn_util.Pool.t ->
  ?observe:observer ->
  model:Saved.t ->
  source:Pn_data.Stream.source ->
  write:(string -> unit) ->
  unit ->
  report

(** [predict_pnc ~model ~input ~output ()] — {!predict_columnar_stream}
    over a [.pnc] file, the binary counterpart of {!predict_csv}. *)
val predict_pnc :
  ?policy:Pn_data.Ingest_report.policy ->
  ?scores:bool ->
  ?pool:Pn_util.Pool.t ->
  model:Saved.t ->
  input:string ->
  output:out_channel ->
  unit ->
  report

(** [predict_csv ~model ~input ~output ()] streams file [input] through
    [model] and writes one CSV line per surviving row to [output]
    (header [prediction], plus a [score] column with [~scores:true]).
    [chunk_size] rows are decoded and scored at a time (default 8192).
    A thin wrapper over {!predict_stream}.
    Raises {!Error} on a schema mismatch or, under [Strict], on the
    first bad row; [Sys_error] on IO failure. *)
val predict_csv :
  ?policy:Pn_data.Ingest_report.policy ->
  ?chunk_size:int ->
  ?class_column:string ->
  ?scores:bool ->
  ?pool:Pn_util.Pool.t ->
  model:Saved.t ->
  input:string ->
  output:out_channel ->
  unit ->
  report
