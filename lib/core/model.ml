type t = {
  target : int;
  classes : string array;
  attrs : Pn_data.Attribute.t array;
  p_rules : Pn_rules.Rule_list.t;
  n_rules : Pn_rules.Rule_list.t;
  scores : float array array;
  params : Params.t;
}

let score t ds i =
  match Pn_rules.Rule_list.first_match ds t.p_rules i with
  | None -> 0.0
  | Some p ->
    let col =
      match Pn_rules.Rule_list.first_match ds t.n_rules i with
      | None -> Pn_rules.Rule_list.length t.n_rules
      | Some n -> n
    in
    t.scores.(p).(col)

let predict t ds i =
  if t.params.Params.use_scoring then score t ds i > t.params.Params.score_threshold
  else
    Pn_rules.Rule_list.any_match ds t.p_rules i
    && not (Pn_rules.Rule_list.any_match ds t.n_rules i)

(* Batch serving goes through the compiled bitset engine: one program
   over both rule lists (conditions deduplicated across P and N),
   first-match arrays resolved in columnar word passes, then the same
   ScoreMatrix lookup as the per-record reference above — which stays
   the oracle the equivalence tests compare against. *)

let compiled t =
  Pn_rules.Compiled.compile
    [| t.p_rules.Pn_rules.Rule_list.rules; t.n_rules.Pn_rules.Rule_list.rules |]

(* (first P-rule, first N-rule) per record, -1 for no match. *)
let first_matches ?pool t ds =
  let fm = Pn_rules.Compiled.eval ?pool (compiled t) ds in
  (fm.(0), fm.(1))

let score_of_matches t ~p ~n =
  if p < 0 then 0.0
  else t.scores.(p).(if n < 0 then Pn_rules.Rule_list.length t.n_rules else n)

let score_all ?pool t ds =
  let pm, nm = first_matches ?pool t ds in
  let n = Pn_data.Dataset.n_records ds in
  let out = Array.make n 0.0 in
  for i = 0 to n - 1 do
    Array.unsafe_set out i
      (score_of_matches t ~p:(Array.unsafe_get pm i) ~n:(Array.unsafe_get nm i))
  done;
  out

let predict_all ?pool t ds =
  let pm, nm = first_matches ?pool t ds in
  let n = Pn_data.Dataset.n_records ds in
  let out = Array.make n false in
  if t.params.Params.use_scoring then begin
    let thr = t.params.Params.score_threshold in
    for i = 0 to n - 1 do
      Array.unsafe_set out i
        (score_of_matches t ~p:(Array.unsafe_get pm i) ~n:(Array.unsafe_get nm i)
        > thr)
    done
  end
  else
    for i = 0 to n - 1 do
      Array.unsafe_set out i
        (Array.unsafe_get pm i >= 0 && Array.unsafe_get nm i < 0)
    done;
  out

let evaluate ?pool t ds =
  let predicted = predict_all ?pool t ds in
  let acc = ref Pn_metrics.Confusion.zero in
  for i = 0 to Pn_data.Dataset.n_records ds - 1 do
    acc :=
      Pn_metrics.Confusion.add !acc
        ~actual:(Pn_data.Dataset.label ds i = t.target)
        ~predicted:predicted.(i)
        ~weight:(Pn_data.Dataset.weight ds i)
  done;
  !acc

(* Serving-side schema validation: a CSV feed is compatible when every
   attribute the model was trained on appears exactly once in the
   header. Extra columns are allowed (and ignored by the caller). *)
let resolve_header t header =
  let find name =
    let hits = ref [] in
    Array.iteri
      (fun j h -> if String.equal h name then hits := j :: !hits)
      header;
    match !hits with
    | [ j ] -> Ok j
    | [] -> Error (Printf.sprintf "column %S required by the model is missing" name)
    | _ :: _ ->
      Error (Printf.sprintf "column %S appears more than once in the header" name)
  in
  let mapping = Array.make (Array.length t.attrs) 0 in
  let errs = ref [] in
  Array.iteri
    (fun k (a : Pn_data.Attribute.t) ->
      match find a.name with
      | Ok j -> mapping.(k) <- j
      | Error e -> errs := e :: !errs)
    t.attrs;
  match List.rev !errs with
  | [] -> Ok mapping
  | errs -> Error (String.concat "; " errs)

let rule_counts t =
  (Pn_rules.Rule_list.length t.p_rules, Pn_rules.Rule_list.length t.n_rules)

let pp ppf t =
  let np, nn = rule_counts t in
  Format.fprintf ppf "@[<v>PNrule model for class %S (%d P-rules, %d N-rules)@,"
    t.classes.(t.target) np nn;
  Format.fprintf ppf "P-rules:@,%a" (Pn_rules.Rule_list.pp t.attrs) t.p_rules;
  Format.fprintf ppf "N-rules:@,%a" (Pn_rules.Rule_list.pp t.attrs) t.n_rules;
  Format.fprintf ppf "ScoreMatrix (rows: P-rules; last column: no N-rule):@,";
  Array.iteri
    (fun p row ->
      Format.fprintf ppf "  P%-2d" p;
      Array.iter (fun s -> Format.fprintf ppf " %5.2f" s) row;
      ignore p;
      Format.pp_print_cut ppf ())
    t.scores;
  Format.fprintf ppf "@]"
