type t = {
  models : (int * Model.t) array;
  fallback : int;
  classes : string array;
}

let train ?(params = Params.default) ?(params_for = fun _ -> None) ds =
  let counts = Pn_data.Dataset.class_counts ds in
  let order =
    (* Rarest first: rare classes get first claim on ties, mirroring the
       rare-class priority of the binary method. *)
    List.sort
      (fun a b -> Float.compare counts.(a) counts.(b))
      (List.filter
         (fun c -> counts.(c) > 0.0)
         (Array.to_list (Pn_util.Arr.range (Array.length counts))))
  in
  let models =
    List.map
      (fun cls ->
        let params = Option.value (params_for cls) ~default:params in
        (cls, Learner.train ~params ds ~target:cls))
      order
  in
  let fallback = ref 0 in
  Array.iteri (fun c w -> if w > counts.(!fallback) then fallback := c) counts;
  { models = Array.of_list models; fallback = !fallback; classes = ds.Pn_data.Dataset.classes }

let scores t ds i =
  let out = Array.make (Array.length t.classes) 0.0 in
  Array.iter (fun (cls, model) -> out.(cls) <- Model.score model ds i) t.models;
  out

let predict t ds i =
  let best_cls = ref t.fallback and best_score = ref 0.0 in
  (* Models are stored rarest-first, so a rare class wins exact ties. *)
  Array.iter
    (fun (cls, model) ->
      let s = Model.score model ds i in
      if s > !best_score then begin
        best_cls := cls;
        best_score := s
      end)
    t.models;
  !best_cls

(* Batch one-vs-rest prediction: every per-class model's P- and N-lists
   compile into ONE bitset program, so a condition shared across class
   models (attack signatures frequently share service/protocol tests)
   is evaluated once per record for the whole ensemble. The per-record
   [predict] above stays the oracle. *)
let predict_all ?pool t ds =
  let lists =
    Array.concat
      (Array.to_list
         (Array.map
            (fun (_, m) ->
              [|
                m.Model.p_rules.Pn_rules.Rule_list.rules;
                m.Model.n_rules.Pn_rules.Rule_list.rules;
              |])
            t.models))
  in
  let fm = Pn_rules.Compiled.eval ?pool (Pn_rules.Compiled.compile lists) ds in
  Array.init (Pn_data.Dataset.n_records ds) (fun i ->
      let best_cls = ref t.fallback and best_score = ref 0.0 in
      (* Same rarest-first tie rule as [predict]. *)
      Array.iteri
        (fun k (cls, model) ->
          let p = fm.(2 * k).(i) and n = fm.((2 * k) + 1).(i) in
          let s =
            if p < 0 then 0.0
            else
              model.Model.scores.(p).(if n < 0 then
                                        Pn_rules.Rule_list.length
                                          model.Model.n_rules
                                      else n)
          in
          if s > !best_score then begin
            best_cls := cls;
            best_score := s
          end)
        t.models;
      !best_cls)

let accuracy ?pool t ds =
  let predicted = predict_all ?pool t ds in
  let hit = ref 0.0 and total = ref 0.0 in
  for i = 0 to Pn_data.Dataset.n_records ds - 1 do
    let w = Pn_data.Dataset.weight ds i in
    total := !total +. w;
    if predicted.(i) = Pn_data.Dataset.label ds i then hit := !hit +. w
  done;
  if !total <= 0.0 then 0.0 else !hit /. !total

let confusion ?pool t ds ~target =
  let predicted = predict_all ?pool t ds in
  let acc = ref Pn_metrics.Confusion.zero in
  for i = 0 to Pn_data.Dataset.n_records ds - 1 do
    acc :=
      Pn_metrics.Confusion.add !acc
        ~actual:(Pn_data.Dataset.label ds i = target)
        ~predicted:(predicted.(i) = target)
        ~weight:(Pn_data.Dataset.weight ds i)
  done;
  !acc
