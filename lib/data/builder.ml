type cell = Fnum of float | Fcat of int

type t = {
  attrs : Attribute.t array;
  classes : string array;
  mutable rows : cell array list;
  mutable labels : int list;
  mutable weights : float list;
  mutable count : int;
}

let create ~attrs ~classes = { attrs; classes; rows = []; labels = []; weights = []; count = 0 }

let add_row ?(weight = 1.0) t cells ~label =
  if Array.length cells <> Array.length t.attrs then
    invalid_arg "Builder.add_row: arity mismatch";
  Array.iteri
    (fun j cell ->
      match (t.attrs.(j).Attribute.kind, cell) with
      | Attribute.Numeric, Fnum _ -> ()
      | Attribute.Categorical values, Fcat v ->
        if v < 0 || v >= Array.length values then
          invalid_arg "Builder.add_row: categorical code out of range"
      | Attribute.Numeric, Fcat _ | Attribute.Categorical _, Fnum _ ->
        invalid_arg "Builder.add_row: cell kind mismatch")
    cells;
  if label < 0 || label >= Array.length t.classes then
    invalid_arg "Builder.add_row: label out of range";
  t.rows <- cells :: t.rows;
  t.labels <- label :: t.labels;
  t.weights <- weight :: t.weights;
  t.count <- t.count + 1

let length t = t.count

let clear t =
  t.rows <- [];
  t.labels <- [];
  t.weights <- [];
  t.count <- 0

let to_dataset t =
  let n = t.count in
  let rows = Array.of_list (List.rev t.rows) in
  let columns =
    Array.mapi
      (fun j (attr : Attribute.t) ->
        match attr.kind with
        | Attribute.Numeric ->
          Dataset.Num
            (Array.init n (fun i ->
                 match rows.(i).(j) with
                 | Fnum x -> x
                 | Fcat _ -> assert false))
        | Attribute.Categorical _ ->
          Dataset.Cat
            (Array.init n (fun i ->
                 match rows.(i).(j) with
                 | Fcat v -> v
                 | Fnum _ -> assert false)))
      t.attrs
  in
  Dataset.create
    ~weights:(Array.of_list (List.rev t.weights))
    ~attrs:t.attrs ~columns
    ~labels:(Array.of_list (List.rev t.labels))
    ~classes:t.classes ()
