type column = Num of float array | Cat of int array

type t = {
  attrs : Attribute.t array;
  columns : column array;
  labels : int array;
  classes : string array;
  weights : float array;
  n : int;
  sort_cache : Sort_cache.t;
}

let column_length = function
  | Num a -> Array.length a
  | Cat a -> Array.length a

let validate ~attrs ~columns ~labels ~classes ~weights ~n =
  if Array.length attrs <> Array.length columns then
    invalid_arg "Dataset.create: schema/column count mismatch";
  Array.iteri
    (fun j col ->
      if column_length col <> n then
        invalid_arg
          (Printf.sprintf "Dataset.create: column %d has length %d, expected %d"
             j (column_length col) n);
      match (attrs.(j).Attribute.kind, col) with
      | Attribute.Numeric, Num _ -> ()
      | Attribute.Categorical values, Cat codes ->
        let arity = Array.length values in
        Array.iter
          (fun v ->
            if v < 0 || v >= arity then
              invalid_arg
                (Printf.sprintf
                   "Dataset.create: column %d code %d out of range [0,%d)" j v
                   arity))
          codes
      | Attribute.Numeric, Cat _ | Attribute.Categorical _, Num _ ->
        invalid_arg (Printf.sprintf "Dataset.create: column %d kind mismatch" j))
    columns;
  if Array.length labels <> n then invalid_arg "Dataset.create: labels length";
  if Array.length weights <> n then invalid_arg "Dataset.create: weights length";
  let n_classes = Array.length classes in
  Array.iter
    (fun c ->
      if c < 0 || c >= n_classes then
        invalid_arg "Dataset.create: label out of class range")
    labels;
  Array.iter
    (fun w -> if w < 0.0 then invalid_arg "Dataset.create: negative weight")
    weights

let create ?weights ~attrs ~columns ~labels ~classes () =
  let n = Array.length labels in
  let weights =
    match weights with
    | Some w -> w
    | None -> Array.make n 1.0
  in
  validate ~attrs ~columns ~labels ~classes ~weights ~n;
  let sort_cache = Sort_cache.create (Array.length columns) in
  { attrs; columns; labels; classes; weights; n; sort_cache }

let n_records t = t.n

let n_attrs t = Array.length t.attrs

let n_classes t = Array.length t.classes

let num_value t ~col i =
  match t.columns.(col) with
  | Num a -> a.(i)
  | Cat _ -> invalid_arg "Dataset.num_value: categorical column"

let cat_value t ~col i =
  match t.columns.(col) with
  | Cat a -> a.(i)
  | Num _ -> invalid_arg "Dataset.cat_value: numeric column"

let sort_entry t ~col =
  match t.columns.(col) with
  | Num a -> Sort_cache.entry t.sort_cache ~col a
  | Cat _ -> invalid_arg "Dataset.sort_entry: categorical column"

let sort_entry_opt t ~col =
  match t.columns.(col) with
  | Num _ -> Sort_cache.peek t.sort_cache ~col
  | Cat _ -> None

let sorted_order t ~col = (sort_entry t ~col).Sort_cache.order

let sorted_rank t ~col = (sort_entry t ~col).Sort_cache.rank

let n_distinct_num t ~col = (sort_entry t ~col).Sort_cache.n_distinct

let label t i = t.labels.(i)

let weight t i = t.weights.(i)

let class_index t name =
  let rec loop i =
    if i >= Array.length t.classes then raise Not_found
    else if String.equal t.classes.(i) name then i
    else loop (i + 1)
  in
  loop 0

let class_counts t =
  let counts = Array.make (Array.length t.classes) 0.0 in
  for i = 0 to t.n - 1 do
    counts.(t.labels.(i)) <- counts.(t.labels.(i)) +. t.weights.(i)
  done;
  counts

let class_weight t c = (class_counts t).(c)

let total_weight t = Pn_util.Arr.sum_floats t.weights

let with_weights t w =
  if Array.length w <> t.n then invalid_arg "Dataset.with_weights: length";
  { t with weights = w }

let stratify t ~target =
  let target_count = ref 0 in
  let other_weight = ref 0.0 in
  for i = 0 to t.n - 1 do
    if t.labels.(i) = target then incr target_count
    else other_weight := !other_weight +. t.weights.(i)
  done;
  if !target_count = 0 then t
  else begin
    let boosted = !other_weight /. float_of_int !target_count in
    let w =
      Array.init t.n (fun i ->
          if t.labels.(i) = target then boosted else t.weights.(i))
    in
    { t with weights = w }
  end

let subset t indices =
  let pick_col = function
    | Num a -> Num (Array.map (fun i -> a.(i)) indices)
    | Cat a -> Cat (Array.map (fun i -> a.(i)) indices)
  in
  {
    attrs = t.attrs;
    columns = Array.map pick_col t.columns;
    labels = Array.map (fun i -> t.labels.(i)) indices;
    classes = t.classes;
    weights = Array.map (fun i -> t.weights.(i)) indices;
    n = Array.length indices;
    sort_cache = Sort_cache.create (Array.length t.columns);
  }

let same_schema a b =
  Array.length a.attrs = Array.length b.attrs
  && Array.for_all2
       (fun (x : Attribute.t) (y : Attribute.t) ->
         String.equal x.name y.name && x.kind = y.kind)
       a.attrs b.attrs
  && a.classes = b.classes

let append a b =
  if not (same_schema a b) then invalid_arg "Dataset.append: schema mismatch";
  let join_col x y =
    match (x, y) with
    | Num u, Num v -> Num (Array.append u v)
    | Cat u, Cat v -> Cat (Array.append u v)
    | Num _, Cat _ | Cat _, Num _ -> assert false
  in
  {
    attrs = a.attrs;
    columns = Array.map2 join_col a.columns b.columns;
    labels = Array.append a.labels b.labels;
    classes = a.classes;
    weights = Array.append a.weights b.weights;
    n = a.n + b.n;
    sort_cache = Sort_cache.create (Array.length a.columns);
  }

let binary_labels t ~target = Array.map (fun l -> l = target) t.labels

let equal a b =
  same_schema a b && a.n = b.n
  && a.labels = b.labels
  && a.weights = b.weights
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | Num u, Num v ->
           (* nan-tolerant cell comparison: a column is the same when
              every cell has the same bit-level meaning *)
           Array.length u = Array.length v
           && Array.for_all2 (fun p q -> Float.compare p q = 0) u v
         | Cat u, Cat v -> u = v
         | Num _, Cat _ | Cat _, Num _ -> false)
       a.columns b.columns

let pp_summary ppf t =
  Format.fprintf ppf "@[<v>%d records, %d attributes@," t.n (n_attrs t);
  Array.iter (fun a -> Format.fprintf ppf "  %a@," Attribute.pp a) t.attrs;
  let counts = class_counts t in
  Array.iteri
    (fun c name -> Format.fprintf ppf "  class %-12s weight %.1f@," name counts.(c))
    t.classes;
  Format.fprintf ppf "@]"
