exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type decl =
  | Dnumeric of string
  | Dnominal of string * string array

let strip_comment line =
  match String.index_opt line '%' with
  | Some i when i = 0 -> ""
  | _ -> line

(* Attribute names and nominal values may be single-quoted. *)
let unquote s =
  let s = String.trim s in
  let n = String.length s in
  if n >= 2 && s.[0] = '\'' && s.[n - 1] = '\'' then String.sub s 1 (n - 2) else s

let parse_attribute_decl rest =
  (* rest = "name numeric" or "name {a,b,c}" — the name may be quoted and
     contain spaces. *)
  let rest = String.trim rest in
  let name, spec =
    if String.length rest > 0 && rest.[0] = '\'' then begin
      match String.index_from_opt rest 1 '\'' with
      | None -> fail "unterminated attribute name quote"
      | Some close ->
        ( String.sub rest 1 (close - 1),
          String.trim (String.sub rest (close + 1) (String.length rest - close - 1)) )
    end
    else begin
      match String.index_opt rest ' ' with
      | None -> (
        match String.index_opt rest '\t' with
        | None -> fail "attribute declaration needs a type: %S" rest
        | Some i ->
          ( String.sub rest 0 i,
            String.trim (String.sub rest (i + 1) (String.length rest - i - 1)) ))
      | Some i ->
        ( String.sub rest 0 i,
          String.trim (String.sub rest (i + 1) (String.length rest - i - 1)) )
    end
  in
  if String.length spec = 0 then fail "attribute %S has no type" name;
  if spec.[0] = '{' then begin
    if spec.[String.length spec - 1] <> '}' then fail "unterminated nominal set for %S" name;
    let inner = String.sub spec 1 (String.length spec - 2) in
    let values =
      List.map unquote (String.split_on_char ',' inner) |> Array.of_list
    in
    if Array.length values = 0 then fail "empty nominal set for %S" name;
    Dnominal (name, values)
  end
  else begin
    match String.lowercase_ascii spec with
    | "numeric" | "real" | "integer" -> Dnumeric name
    | other -> fail "unsupported attribute type %S for %S" other name
  end

(* ------------------------------------------------------------------ *)
(* Streaming parse                                                      *)
(* ------------------------------------------------------------------ *)

(* Growable column stores for the single-pass build: the number of
   surviving rows is unknown until end of input. *)
type 'a grow = { mutable data : 'a array; mutable len : int; dummy : 'a }

let grow dummy = { data = Array.make 16 dummy; len = 0; dummy }

let push g x =
  if g.len = Array.length g.data then begin
    let d = Array.make (2 * g.len) g.dummy in
    Array.blit g.data 0 d 0 g.len;
    g.data <- d
  end;
  g.data.(g.len) <- x;
  g.len <- g.len + 1

let to_array g = Array.sub g.data 0 g.len

type store =
  | Gnum of float grow * int grow  (* values; indices of missing cells *)
  | Gcat of int grow  (* value codes; -1 marks a missing cell *)

(* Frozen schema, built when the @data directive is reached. *)
type schema = {
  decls : decl array;
  class_col : int;
  classes : string array;
  data_cols : int array;
  stores : store array;  (* per data column, in [data_cols] order *)
  labels : int grow;
}

exception Row_error of string

let median sorted =
  let m = Array.length sorted in
  if m land 1 = 1 then sorted.(m / 2)
  else (sorted.((m / 2) - 1) +. sorted.(m / 2)) /. 2.0

let parse_source ?class_attribute ~(policy : Ingest_report.policy) source =
  let report = Ingest_report.create () in
  let decls = ref [] in
  let schema = ref None in
  let freeze () =
    let decls = Array.of_list (List.rev !decls) in
    if Array.length decls < 2 then fail "need at least one attribute and a class";
    let decl_name = function
      | Dnumeric n | Dnominal (n, _) -> n
    in
    let class_col =
      match class_attribute with
      | None -> Array.length decls - 1
      | Some name -> (
        match Array.find_index (fun d -> String.equal (decl_name d) name) decls with
        | Some i -> i
        | None -> fail "class attribute %S not declared" name)
    in
    let classes =
      match decls.(class_col) with
      | Dnominal (_, values) -> values
      | Dnumeric n -> fail "class attribute %S must be nominal" n
    in
    let data_cols =
      Array.of_list
        (List.filter (fun j -> j <> class_col)
           (List.init (Array.length decls) Fun.id))
    in
    let stores =
      Array.map
        (fun j ->
          match decls.(j) with
          | Dnumeric _ -> Gnum (grow 0.0, grow 0)
          | Dnominal _ -> Gcat (grow 0))
        data_cols
    in
    { decls; class_col; classes; data_cols; stores; labels = grow 0 }
  in
  let nominal_code values cell name =
    match Array.find_index (String.equal cell) values with
    | Some i -> i
    | None ->
      raise (Row_error (Printf.sprintf "value %S not in the nominal set of %S" cell name))
  in
  let data_row sc ~line row =
    Ingest_report.row_read report;
    let drop msg =
      match policy with
      | Ingest_report.Strict -> fail "line %d: %s" line msg
      | Ingest_report.Skip | Ingest_report.Impute ->
        Ingest_report.row_skipped report ~line msg
    in
    match
      let cells = Array.of_list (List.map unquote (String.split_on_char ',' row)) in
      if Array.length cells <> Array.length sc.decls then
        raise
          (Row_error
             (Printf.sprintf "row has %d fields, expected %d: %S" (Array.length cells)
                (Array.length sc.decls) row));
      (* Decode the whole row before touching the stores, so a bad cell
         cannot leave a half-appended record behind. *)
      let label =
        let cell = cells.(sc.class_col) in
        if cell = "?" then raise (Row_error "missing class label (?)")
        else nominal_code sc.classes cell "class"
      in
      let decoded =
        Array.map
          (fun j ->
            let cell = cells.(j) in
            if cell = "?" then begin
              if policy <> Ingest_report.Impute then
                raise (Row_error "missing value (?)");
              `Missing
            end
            else
              match sc.decls.(j) with
              | Dnumeric name -> (
                match float_of_string_opt cell with
                | Some v -> `Num v
                | None ->
                  raise
                    (Row_error (Printf.sprintf "non-numeric cell %S in %S" cell name)))
              | Dnominal (name, values) -> `Cat (nominal_code values cell name))
          sc.data_cols
      in
      (label, decoded)
    with
    | exception Row_error msg -> drop msg
    | label, decoded ->
      Ingest_report.row_kept report;
      push sc.labels label;
      Array.iteri
        (fun k cell ->
          match (sc.stores.(k), cell) with
          | Gnum (col, _), `Num v -> push col v
          | Gnum (col, miss), `Missing ->
            push miss col.len;
            push col 0.0
          | Gcat col, `Cat v -> push col v
          | Gcat col, `Missing -> push col (-1)
          | Gnum _, `Cat _ | Gcat _, `Num _ -> assert false)
        decoded
  in
  Stream.fold_lines source ~init:() ~f:(fun () ~line raw ->
      let text = String.trim (strip_comment raw) in
      if text <> "" then begin
        let lower = String.lowercase_ascii text in
        match !schema with
        | Some sc -> data_row sc ~line text
        | None ->
          if String.length lower >= 9 && String.sub lower 0 9 = "@relation" then ()
          else if String.length lower >= 10 && String.sub lower 0 10 = "@attribute" then
            decls := parse_attribute_decl (String.sub text 10 (String.length text - 10)) :: !decls
          else if lower = "@data" then schema := Some (freeze ())
          else if String.length lower >= 1 && lower.[0] = '@' then
            fail "unsupported directive: %S" text
          else fail "data before @data: %S" text
      end);
  let sc =
    match !schema with
    | Some sc -> sc
    | None -> freeze () (* surfaces the schema errors before "no data rows" *)
  in
  let n = sc.labels.len in
  if n = 0 then fail "no data rows";
  let attrs_and_columns =
    Array.mapi
      (fun k j ->
        let decl = sc.decls.(j) in
        match (sc.stores.(k), decl) with
        | Gnum (colg, missg), Dnumeric name ->
          let col = to_array colg in
          let miss = to_array missg in
          if Array.length miss > 0 then begin
            let is_missing = Array.make n false in
            Array.iter (fun i -> is_missing.(i) <- true) miss;
            let present = ref [] in
            Array.iteri (fun i v -> if not is_missing.(i) then present := v :: !present) col;
            let present = Array.of_list !present in
            if Array.length present = 0 then
              fail "column %S has only missing values" name;
            Array.sort Float.compare present;
            let m = median present in
            Array.iter
              (fun i ->
                col.(i) <- m;
                Ingest_report.cell_imputed report)
              miss
          end;
          (Attribute.numeric name, Dataset.Num col)
        | Gcat colg, Dnominal (name, values) ->
          let col = to_array colg in
          if Array.exists (fun c -> c < 0) col then begin
            let counts = Array.make (Array.length values) 0 in
            Array.iter (fun c -> if c >= 0 then counts.(c) <- counts.(c) + 1) col;
            let majority = ref 0 in
            Array.iteri (fun v c -> if c > counts.(!majority) then majority := v) counts;
            if counts.(!majority) = 0 then
              fail "column %S has only missing values" name;
            Array.iteri
              (fun i c ->
                if c < 0 then begin
                  col.(i) <- !majority;
                  Ingest_report.cell_imputed report
                end)
              col
          end;
          (Attribute.categorical name values, Dataset.Cat col)
        | Gnum _, Dnominal _ | Gcat _, Dnumeric _ -> assert false)
      sc.data_cols
  in
  let ds =
    Dataset.create
      ~attrs:(Array.map fst attrs_and_columns)
      ~columns:(Array.map snd attrs_and_columns)
      ~labels:(to_array sc.labels) ~classes:sc.classes ()
  in
  (ds, report)

let parse_string_with_report ?class_attribute ?(policy = Ingest_report.Strict) text =
  parse_source ?class_attribute ~policy (Stream.of_string text)

let parse_string ?class_attribute ?policy text =
  fst (parse_string_with_report ?class_attribute ?policy text)

let load_with_report ?class_attribute ?(policy = Ingest_report.Strict) path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse_source ?class_attribute ~policy (Stream.of_channel ic))

let load ?class_attribute ?policy path =
  fst (load_with_report ?class_attribute ?policy path)

(* ------------------------------------------------------------------ *)
(* Writing                                                              *)
(* ------------------------------------------------------------------ *)

let quote_if_needed s =
  if String.exists (fun c -> c = ' ' || c = ',' || c = '\'') s then
    "'" ^ String.concat "\\'" (String.split_on_char '\'' s) ^ "'"
  else s

let save (ds : Dataset.t) path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "@relation pnrule\n\n";
      Array.iter
        (fun (a : Attribute.t) ->
          match a.kind with
          | Attribute.Numeric ->
            Printf.fprintf oc "@attribute %s numeric\n" (quote_if_needed a.name)
          | Attribute.Categorical values ->
            Printf.fprintf oc "@attribute %s {%s}\n" (quote_if_needed a.name)
              (String.concat "," (Array.to_list (Array.map quote_if_needed values))))
        ds.attrs;
      Printf.fprintf oc "@attribute class {%s}\n\n@data\n"
        (String.concat "," (Array.to_list (Array.map quote_if_needed ds.classes)));
      for i = 0 to Dataset.n_records ds - 1 do
        let cells =
          Array.to_list
            (Array.mapi
               (fun j (a : Attribute.t) ->
                 match a.kind with
                 | Attribute.Numeric -> Printf.sprintf "%.9g" (Dataset.num_value ds ~col:j i)
                 | Attribute.Categorical values ->
                   quote_if_needed values.(Dataset.cat_value ds ~col:j i))
               ds.attrs)
          @ [ quote_if_needed ds.classes.(Dataset.label ds i) ]
        in
        output_string oc (String.concat "," cells);
        output_char oc '\n'
      done)
