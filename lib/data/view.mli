(** Lightweight record subsets.

    A view is an index array over a dataset. Sequential covering removes
    covered records over and over; views make that O(kept) without copying
    columns. All aggregate functions are weight-based. *)

type t = { data : Dataset.t; idx : int array }

(** [all d] views every record. *)
val all : Dataset.t -> t

(** [of_indices d idx] views the given record indices (not copied). *)
val of_indices : Dataset.t -> int array -> t

val size : t -> int

val is_empty : t -> bool

(** [record t k] is the dataset index of the view's [k]-th record. *)
val record : t -> int -> int

(** [filter t keep] keeps the records whose dataset index satisfies
    [keep], preserving order. [keep] is evaluated once per record. *)
val filter : t -> (int -> bool) -> t

(** [partition t pred] splits into (satisfying, rest), preserving order. *)
val partition : t -> (int -> bool) -> t * t

(** [total_weight t] is Σ weights of the viewed records. *)
val total_weight : t -> float

(** [class_weight t c] is the viewed weight of class [c]. *)
val class_weight : t -> int -> float

(** [binary_weights t ~target] is [(positive, negative)] viewed weight. *)
val binary_weights : t -> target:int -> float * float

(** [count_class t c] is the number (not weight) of viewed records of
    class [c]. *)
val count_class : t -> int -> int

(** [iter t f] applies [f] to each viewed dataset index. *)
val iter : t -> (int -> unit) -> unit

(** [fold t init f] folds over viewed dataset indices. *)
val fold : t -> 'a -> ('a -> int -> 'a) -> 'a

(** [sorted_by_num t ~col] is the view's dataset indices sorted ascending
    by the numeric column [col]; ties break on the dataset index. Views
    covering a sizeable fraction of the dataset are served in O(n) by
    filtering the dataset's cached global order ([Dataset.sorted_order])
    through a membership bitmask; small views argsort directly. Both
    paths return identical arrays. *)
val sorted_by_num : t -> col:int -> int array

(** [split t rng ~left_fraction] randomly splits the view into two parts,
    the first receiving about [left_fraction] of the records; the split is
    stratified per class so rare classes appear on both sides whenever
    they have ≥ 2 records. *)
val split : t -> Pn_util.Rng.t -> left_fraction:float -> t * t

(** [materialize t] copies the viewed records into a standalone dataset. *)
val materialize : t -> Dataset.t
