type source = {
  buf : bytes;
  mutable pos : int;
  mutable len : int;
  refill : bytes -> int;
  mutable retries : int;
}

let of_channel ?(buf_size = 65536) ic =
  if buf_size <= 0 then invalid_arg "Stream.of_channel: buf_size";
  let buf = Bytes.create buf_size in
  {
    buf;
    pos = 0;
    len = 0;
    refill = (fun b -> input ic b 0 (Bytes.length b));
    retries = 0;
  }

let of_string s =
  {
    buf = Bytes.of_string s;
    pos = 0;
    len = String.length s;
    refill = (fun _ -> 0);
    retries = 0;
  }

let of_refill ?(buf_size = 65536) refill =
  if buf_size <= 0 then invalid_arg "Stream.of_refill: buf_size";
  { buf = Bytes.create buf_size; pos = 0; len = 0; refill; retries = 0 }

let retries src = src.retries

(* Transient refill errors (EINTR/EAGAIN storms, injected faults) are
   retried a bounded number of times with jittered exponential backoff;
   each retry is counted on the source and surfaced through
   [Ingest_report.io_retries]. Anything still failing after the budget
   propagates to the caller. *)
let max_refill_retries = 5

let refill src =
  let len = Bytes.length src.buf in
  let rec attempt k =
    match
      (* A string-backed source can carry an empty buffer; the fault
         point only makes sense for real reads. *)
      let want = if len = 0 then 0 else Pn_util.Fault.cap "stream.refill" len in
      if want >= len then src.refill src.buf
      else begin
        (* Injected short read: offer the producer a smaller window, so
           every byte it yields still lands in [buf] — data is delayed,
           never dropped. *)
        let sub = Bytes.create want in
        let n = src.refill sub in
        Bytes.blit sub 0 src.buf 0 n;
        n
      end
    with
    | n -> n
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      when k < max_refill_retries ->
      src.retries <- src.retries + 1;
      Pn_util.Backoff.sleep ~attempt:k ();
      attempt (k + 1)
  in
  attempt 0

(* Bulk binary read for the columnar decoder: drain the buffered bytes
   first, then refill. Returns 0 only at end of input. *)
let read_into src dst pos len =
  if pos < 0 || len < 0 || pos + len > Bytes.length dst then
    invalid_arg "Stream.read_into";
  if len = 0 then 0
  else if src.pos < src.len then begin
    let n = min len (src.len - src.pos) in
    Bytes.blit src.buf src.pos dst pos n;
    src.pos <- src.pos + n;
    n
  end
  else begin
    let n = refill src in
    if n = 0 then 0
    else begin
      src.len <- n;
      let k = min len n in
      Bytes.blit src.buf 0 dst pos k;
      src.pos <- k;
      k
    end
  end

let next src =
  if src.pos < src.len then begin
    let c = Bytes.unsafe_get src.buf src.pos in
    src.pos <- src.pos + 1;
    Some c
  end
  else begin
    let n = refill src in
    if n = 0 then None
    else begin
      src.len <- n;
      src.pos <- 1;
      Some (Bytes.unsafe_get src.buf 0)
    end
  end

(* ------------------------------------------------------------------ *)
(* CSV state machine                                                    *)
(* ------------------------------------------------------------------ *)

let fold_csv src ~init ~f =
  let field = Buffer.create 64 in
  let fields = ref [] in
  (* [line] counts physical lines consumed so far; [row_line] is where
     the row being decoded started. *)
  let line = ref 1 in
  let row_line = ref 1 in
  let row_quoted = ref false in
  let acc = ref init in
  let push_field () =
    fields := Buffer.contents field :: !fields;
    Buffer.clear field
  in
  let reset_row () =
    Buffer.clear field;
    fields := [];
    row_quoted := false;
    row_line := !line
  in
  let emit_row () =
    let row = Array.of_list (List.rev (Buffer.contents field :: !fields)) in
    (* Whitespace-only unquoted rows are the blank lines the line-based
       loader used to drop. *)
    if not (Array.length row = 1 && (not !row_quoted) && String.trim row.(0) = "")
    then acc := f !acc ~line:!row_line (Ok row);
    reset_row ()
  in
  let emit_error msg = acc := f !acc ~line:!row_line (Error msg) in
  (* After a row error: drop input up to and including the next newline,
     then restart cleanly. *)
  let rec resync () =
    match next src with
    | None -> ()
    | Some '\n' -> incr line
    | Some _ -> resync ()
  in
  let fail_row msg k =
    emit_error msg;
    resync ();
    reset_row ();
    k ()
  in
  let rec field_start () =
    match next src with
    | None ->
      if !fields <> [] || Buffer.length field > 0 || !row_quoted then emit_row ()
    | Some ',' ->
      push_field ();
      field_start ()
    | Some '"' ->
      row_quoted := true;
      quoted ()
    | Some '\n' ->
      incr line;
      emit_row ();
      field_start ()
    | Some '\r' -> cr_unquoted ()
    | Some c ->
      Buffer.add_char field c;
      unquoted ()
  and unquoted () =
    match next src with
    | None -> emit_row ()
    | Some ',' ->
      push_field ();
      field_start ()
    | Some '"' -> fail_row "'\"' inside an unquoted field" field_start
    | Some '\n' ->
      incr line;
      emit_row ();
      field_start ()
    | Some '\r' -> cr_unquoted ()
    | Some c ->
      Buffer.add_char field c;
      unquoted ()
  (* Saw '\r' outside quotes: strip it when it closes the row, keep it as
     a literal character otherwise. *)
  and cr_unquoted () =
    match next src with
    | None -> emit_row () (* end of input is a row boundary: strip the CR *)
    | Some '\n' ->
      incr line;
      emit_row ();
      field_start ()
    | Some ',' ->
      Buffer.add_char field '\r';
      push_field ();
      field_start ()
    | Some '"' ->
      Buffer.add_char field '\r';
      fail_row "'\"' inside an unquoted field" field_start
    | Some '\r' ->
      Buffer.add_char field '\r';
      cr_unquoted ()
    | Some c ->
      Buffer.add_char field '\r';
      Buffer.add_char field c;
      unquoted ()
  and quoted () =
    match next src with
    | None -> fail_row "unterminated quoted field" (fun () -> ())
    | Some '"' -> quote_seen ()
    | Some '\n' ->
      incr line;
      Buffer.add_char field '\n';
      quoted ()
    | Some c ->
      Buffer.add_char field c;
      quoted ()
  (* Saw '"' inside a quoted field: either an escape ("") or the close. *)
  and quote_seen () =
    match next src with
    | None -> emit_row ()
    | Some '"' ->
      Buffer.add_char field '"';
      quoted ()
    | Some ',' ->
      push_field ();
      field_start ()
    | Some '\n' ->
      incr line;
      emit_row ();
      field_start ()
    | Some '\r' -> cr_after_close ()
    | Some c ->
      fail_row (Printf.sprintf "character %C after closing quote" c) field_start
  and cr_after_close () =
    match next src with
    | None -> emit_row ()
    | Some '\n' ->
      incr line;
      emit_row ();
      field_start ()
    | Some c ->
      fail_row (Printf.sprintf "character %C after closing quote" c) field_start
  in
  field_start ();
  !acc

(* ------------------------------------------------------------------ *)
(* Line streaming (ARFF)                                                *)
(* ------------------------------------------------------------------ *)

let fold_lines src ~init ~f =
  let buf = Buffer.create 256 in
  let line = ref 1 in
  let acc = ref init in
  let emit () =
    let s = Buffer.contents buf in
    Buffer.clear buf;
    let s =
      let n = String.length s in
      if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s
    in
    acc := f !acc ~line:!line s
  in
  let rec loop () =
    match next src with
    | None -> if Buffer.length buf > 0 then emit ()
    | Some '\n' ->
      emit ();
      incr line;
      loop ()
    | Some c ->
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  !acc
