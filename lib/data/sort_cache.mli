(** Lazily memoized per-column sorted orders.

    Rule growth argsorts numeric columns over and over; this cache pays
    one O(n log n) argsort per column per dataset lifetime and serves
    every later request in O(1). Entries are immutable once built, so a
    concurrent first access from two domains is a benign idempotent
    race. *)

type entry = {
  order : int array;
      (** record indices in ascending column order; ties break on the
          record index ([Float.compare] semantics, so [nan] sorts first
          and [-0.] equals [0.]) *)
  rank : int array;  (** inverse permutation: [rank.(order.(k)) = k] *)
  n_distinct : int;  (** distinct values under [Float.compare] *)
}

type t

(** [create n_cols] makes an empty cache with one slot per column. *)
val create : int -> t

(** [entry t ~col values] returns the cached entry for [col], building
    it from [values] on first access. Callers must pass the same value
    array for a given column every time. *)
val entry : t -> col:int -> float array -> entry

(** [peek t ~col] is the cached entry if one has been built, without
    building it. Lets opportunistic consumers (the compiled scoring
    engine) reuse rank arrays a training pass already paid for, while
    falling back to direct comparison on fresh serving data. *)
val peek : t -> col:int -> entry option
