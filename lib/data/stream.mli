(** Constant-memory streaming decoders for the ingestion layer.

    {!fold_csv} runs an RFC-4180 CSV state machine over a byte source,
    yielding one decoded record (or one row-level error) at a time — the
    raw text is never retained beyond a fixed refill buffer, so ingest
    memory is bounded by the longest single row, not the file.

    Decoding rules:
    - fields are separated by [','], rows by ['\n']; a ['\r'] immediately
      before a row boundary is stripped (CRLF input parses like LF input);
    - a field starting with ['"'] is quoted: it may contain commas,
      ['""'] escapes for literal quotes, and raw newlines (which stay part
      of the value, so quoted fields span physical lines);
    - a quote character appearing after other content in an unquoted
      field, or any character other than [','] / end-of-row after a
      closing quote, is a deterministic row error (the RFC leaves such
      mid-field quotes undefined; we reject rather than guess);
    - an unterminated quote at end of input is a row error;
    - rows whose entire unquoted text is whitespace are silently dropped,
      like the blank lines the line-based loader used to skip.

    After a row error the machine resynchronizes at the next ['\n'] and
    keeps going, so a [Skip] policy can count bad rows and continue. *)

type source

(** [of_channel ?buf_size ic] streams from a channel through a fixed
    refill buffer ([buf_size] bytes, default 64 KiB). The caller keeps
    ownership of [ic] and must close it. *)
val of_channel : ?buf_size:int -> in_channel -> source

(** [of_string s] streams from an in-memory string. *)
val of_string : string -> source

(** [of_refill f] streams from an arbitrary byte producer: [f buf] must
    write at most [Bytes.length buf] bytes at offset 0 and return how
    many it wrote, 0 meaning end of input. Used by the prediction daemon
    to decode a request body straight off a socket. *)
val of_refill : ?buf_size:int -> (bytes -> int) -> source

(** [read_into src dst pos len] reads up to [len] bytes into [dst] at
    [pos]: buffered bytes first, one refill otherwise. Returns the
    number of bytes moved; 0 means end of input. Used by the binary
    columnar decoder ({!Columnar}), interleaving safely with the
    character-level readers. *)
val read_into : source -> bytes -> int -> int -> int

(** [retries src] — transient refill errors (EINTR/EAGAIN, injected
    faults at the [stream.refill] point) retried so far. Each refill
    gets a bounded retry budget with jittered exponential backoff;
    exhausting it propagates the error. *)
val retries : source -> int

(** [fold_csv src ~init ~f] folds [f] over every row of [src]. [line] is
    the 1-based physical line on which the row started; the payload is
    the decoded fields, or a description of why the row could not be
    decoded. A source can only be folded once. *)
val fold_csv :
  source -> init:'a -> f:('a -> line:int -> (string array, string) result -> 'a) -> 'a

(** [fold_lines src ~init ~f] folds over physical lines (terminated by
    ['\n'] or end of input; a trailing ['\r'] is stripped). Used by the
    line-oriented ARFF reader. *)
val fold_lines : source -> init:'a -> f:('a -> line:int -> string -> 'a) -> 'a
