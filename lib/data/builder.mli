(** Row-by-row dataset construction, used by the synthetic generators and
    the CSV loader. *)

type t

type cell =
  | Fnum of float
  | Fcat of int

(** [create ~attrs ~classes] starts an empty builder for the schema. *)
val create : attrs:Attribute.t array -> classes:string array -> t

(** [add_row t cells ~label] appends a record; [cells] must match the
    schema in length and kinds (checked), [label] must index the class
    table. Optional [weight] defaults to 1. *)
val add_row : ?weight:float -> t -> cell array -> label:int -> unit

val length : t -> int

(** [clear t] drops all rows but keeps the schema, so one builder can be
    reused chunk after chunk by the streaming serving path. *)
val clear : t -> unit

(** [to_dataset t] freezes the rows into a columnar dataset. *)
val to_dataset : t -> Dataset.t
