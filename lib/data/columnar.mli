(** [pnc] — the compact binary columnar dataset format.

    A [.pnc] file carries one dataset as typed per-column blocks grouped
    into fixed-size {e row groups}, so readers stream it group-by-group
    in constant memory, with no per-cell text parsing:

    - numeric columns are raw little-endian IEEE-754 float64 arrays
      (NaN/infinities round-trip bit-exactly);
    - categorical columns are dictionary-encoded: the header carries the
      per-column string table once, cells are 1/2/4-byte codes picked
      from the dictionary arity;
    - every column block may carry a missing-value bitmap, so the
      Strict/Skip/Impute ingestion policies apply exactly as they do to
      CSV feeds;
    - labels (when present) are a per-group code block against the class
      table in the header; the reserved code [n_classes] marks a missing
      label and decodes as [-1].

    Integrity: the header, each row-group header, and each block payload
    carry their own CRC-32 ({!Pn_util.Crc32}), verified before any
    decoded byte is used; the footer carries the total row count and a
    file-level CRC-32 over the concatenated block checksums, so
    truncation, bit flips, and group reordering/omission all surface as
    {!Corrupt} — never a crash, never silently wrong data. Writers
    ([{!save}]) are atomic: temp file, fsync, rename. The byte-counted
    fault points [columnar.write] / [columnar.read]
    ({!Pn_util.Fault.cap}) sit on both paths for chaos testing.

    The full on-disk layout is specified in DESIGN.md. *)

(** The file cannot be decoded: bad magic, checksum mismatch, truncated
    or malformed structure — or, under the [Strict] policy, a missing
    value the policy refuses to accept. *)
exception Corrupt of string

(** Rows per row group when the writer is not told otherwise (8192,
    matching the serving tier's default chunk size). *)
val default_group_size : int

type schema = {
  n_rows : int;
  group_size : int;  (** rows per group (the last group may be shorter) *)
  n_groups : int;
  has_labels : bool;
  classes : string array;
  attrs : Attribute.t array;
}

(** {1 Writing} *)

(** [write sink ds] streams the encoded file through [sink] in block
    units. [missing], when given, has one entry per attribute; a
    [Some mask] marks cells to flag in that column's missing bitmaps
    (the stored cell value is still the dataset's). Dataset weights are
    not stored. *)
val write :
  ?group_size:int ->
  ?missing:bool array option array ->
  (string -> unit) ->
  Dataset.t ->
  unit

val to_string :
  ?group_size:int -> ?missing:bool array option array -> Dataset.t -> string

(** [save ds path] writes atomically: all bytes reach a temp file in
    [path]'s directory and are fsynced before the rename, so a crash
    mid-write (including one injected at [columnar.write]) leaves any
    previous file at [path] byte-identical. *)
val save :
  ?group_size:int -> ?missing:bool array option array -> Dataset.t -> string -> unit

(** {1 Streaming reads}

    The group reader decodes straight into per-column buffers allocated
    once and reused for every group — the serving tier hands these
    buffers to the compiled scoring engine without copying. *)

type reader

(** [open_reader source] reads and verifies the magic and header.
    Raises {!Corrupt}. *)
val open_reader : Stream.source -> reader

val schema : reader -> schema

(** [set_wanted r mask] restricts decoding to the columns with
    [mask.(j) = true] (all columns by default): unwanted blocks are
    still checksum-verified but never decoded. Must be called before the
    first {!read_group}. *)
val set_wanted : reader -> bool array -> unit

(** [read_group r] decodes the next row group and returns its row count,
    or [None] once the footer has been read and verified. Raises
    {!Corrupt} on any integrity failure. The accessors below expose the
    decoded group; their arrays are reused by the next call. *)
val read_group : reader -> int option

(** [num_col r j] / [cat_col r j] — column [j]'s decoded cells for the
    current group (only the first [n] cells are meaningful). The cat
    codes index the file dictionary [attrs.(j)]. The returned array is
    the reader's own buffer: callers may mutate it (e.g. remap codes in
    place) until the next {!read_group}. *)
val num_col : reader -> int -> float array

val cat_col : reader -> int -> int array

(** [col_missing r j] is column [j]'s missing mask for the current
    group, or [None] when the group's block carried no bitmap. *)
val col_missing : reader -> int -> bool array option

(** Label codes of the current group ([-1] = missing label), when the
    file carries labels. *)
val group_labels : reader -> int array option

(** Transient IO retries accumulated by the underlying source. *)
val io_retries : reader -> int

(** {1 Whole-file loads} *)

(** [load path] decodes a labeled [.pnc] file back into a dataset
    (weights reset to 1). Missing cells follow [policy] exactly like the
    CSV loader: [Strict] (default) raises, [Skip] drops the row,
    [Impute] fills with the whole-column median / majority; rows with a
    missing label are dropped under [Skip]/[Impute]. Raises {!Corrupt}
    (also for unlabeled files, which cannot rebuild a dataset). *)
val load : ?policy:Ingest_report.policy -> string -> Dataset.t

val load_with_report :
  ?policy:Ingest_report.policy -> string -> Dataset.t * Ingest_report.t

val of_string : ?policy:Ingest_report.policy -> string -> Dataset.t
