(** Row-level error policies and ingestion accounting for the streaming
    loaders ({!Csv_io}, {!Arff_io}) and the chunked serving path.

    A loader parameterized by a {!policy} decides what happens to a data
    row that cannot be decoded cleanly — wrong arity, malformed quoting,
    a value outside a declared nominal set, or a missing cell ([?] in
    ARFF, [?]/empty under imputation in CSV). Whatever the policy, the
    loader fills in a report so callers can tell how much of the feed
    actually made it into the dataset. *)

type policy =
  | Strict  (** any bad row raises [Parse_error] — the legacy behaviour *)
  | Skip  (** bad rows are dropped and counted *)
  | Impute
      (** missing cells are filled with the column median (numeric) or
          majority value (categorical); structurally bad rows — wrong
          arity, malformed quoting, unknown nominal values, missing
          class labels — are dropped and counted as under [Skip] *)

val policy_name : policy -> string

(** [policy_of_string s] parses ["strict"], ["skip"] or ["impute"]. *)
val policy_of_string : string -> policy option

type t = {
  mutable rows_read : int;  (** data rows seen (header and blank lines excluded) *)
  mutable rows_kept : int;  (** rows that made it into the dataset *)
  mutable rows_skipped : int;  (** rows dropped by [Skip]/[Impute] *)
  mutable cells_imputed : int;  (** cells filled by [Impute] *)
  mutable io_retries : int;
      (** transient IO errors retried while feeding this ingest
          ({!Stream.retries} of the underlying source) *)
  mutable errors : (int * string) list;
      (** sample of skip reasons as [(line, message)], oldest first;
          capped at {!max_errors} *)
}

(** Number of skip reasons retained in [errors]. *)
val max_errors : int

val create : unit -> t

val row_read : t -> unit

val row_kept : t -> unit

(** [row_skipped t ~line msg] counts a dropped row and retains the reason
    while fewer than {!max_errors} are stored. *)
val row_skipped : t -> line:int -> string -> unit

val cell_imputed : t -> unit

(** [add_io_retries t n] accounts [n] transient-error retries. *)
val add_io_retries : t -> int -> unit

val pp : Format.formatter -> t -> unit
