(* Per-column sorted-order cache. One argsort of the full column is paid
   on first access and reused for the dataset's lifetime; every
   view-level sort then reduces to a linear filter of the cached order.

   A concurrent fill of the same column from two domains is a benign
   race: both compute the identical immutable entry and the slot ends up
   holding one of them. *)

type entry = {
  order : int array;
  rank : int array;
  n_distinct : int;
}

type t = { slots : entry option array }

let create n_cols = { slots = Array.make n_cols None }

let build values =
  let n = Array.length values in
  let order = Array.init n (fun i -> i) in
  (* Ties break on the record index, giving one canonical total order
     that view-level filters inherit. *)
  Array.sort
    (fun i j ->
      let c = Float.compare values.(i) values.(j) in
      if c <> 0 then c else Int.compare i j)
    order;
  let rank = Array.make n 0 in
  Array.iteri (fun k i -> rank.(i) <- k) order;
  let n_distinct = ref (if n = 0 then 0 else 1) in
  for k = 1 to n - 1 do
    if Float.compare values.(order.(k)) values.(order.(k - 1)) <> 0 then
      incr n_distinct
  done;
  { order; rank; n_distinct = !n_distinct }

let peek t ~col = t.slots.(col)

let entry t ~col values =
  match t.slots.(col) with
  | Some e -> e
  | None ->
    let e = build values in
    t.slots.(col) <- Some e;
    e
