(** Columnar, weighted, labeled dataset.

    Records are rows; each attribute is stored as one column (floats for
    numeric, value indices for categorical). Every record carries a class
    index into [classes] and a positive weight. All learners in this
    repository count weights rather than records, which is how the paper's
    stratified "-we" variants are expressed. *)

type column =
  | Num of float array
  | Cat of int array

type t = private {
  attrs : Attribute.t array;
  columns : column array;
  labels : int array;
  classes : string array;
  weights : float array;
  n : int;
  sort_cache : Sort_cache.t;
      (** lazily filled per-column sorted orders; shared by weight
          variants ([with_weights], [stratify]), fresh for new columns *)
}

(** [create ~attrs ~columns ~labels ~classes ()] builds a dataset with
    unit weights (override with [?weights]). Validates that all columns
    and label/weight arrays have equal length, that column kinds match the
    schema, that labels index [classes], and that categorical codes are in
    range. Raises [Invalid_argument] otherwise. *)
val create :
  ?weights:float array ->
  attrs:Attribute.t array ->
  columns:column array ->
  labels:int array ->
  classes:string array ->
  unit ->
  t

val n_records : t -> int

val n_attrs : t -> int

val n_classes : t -> int

(** [num_value t ~col i] reads a numeric cell; raises [Invalid_argument]
    if column [col] is categorical. *)
val num_value : t -> col:int -> int -> float

(** [cat_value t ~col i] reads a categorical cell code. *)
val cat_value : t -> col:int -> int -> int

(** [sorted_order t ~col] is the memoized ascending order of numeric
    column [col] over the whole dataset: record indices sorted by value,
    ties broken by record index. The first call per column costs one
    argsort; later calls return the same (physically shared) array,
    which callers must not mutate. Raises [Invalid_argument] on a
    categorical column. *)
val sorted_order : t -> col:int -> int array

(** [sorted_rank t ~col] is the inverse permutation of
    [sorted_order t ~col]: [rank.(i)] is record [i]'s position in the
    sorted order. Same memoization and sharing rules. *)
val sorted_rank : t -> col:int -> int array

(** [sort_entry_opt t ~col] is the cached sort entry for numeric column
    [col] if an earlier call already built one, and [None] otherwise
    (including on categorical columns). Never triggers the argsort. *)
val sort_entry_opt : t -> col:int -> Sort_cache.entry option

(** [n_distinct_num t ~col] is the number of distinct values (under
    [Float.compare]) in numeric column [col], computed from the cached
    sorted order. *)
val n_distinct_num : t -> col:int -> int

val label : t -> int -> int

val weight : t -> int -> float

(** [class_index t name] finds a class by name. Raises [Not_found]. *)
val class_index : t -> string -> int

(** [class_weight t c] is the total weight of class [c]. *)
val class_weight : t -> int -> float

(** [class_counts t] is the per-class total weight vector. *)
val class_counts : t -> float array

(** [total_weight t] is the sum of all record weights. *)
val total_weight : t -> float

(** [with_weights t w] shares columns and labels but carries new weights. *)
val with_weights : t -> float array -> t

(** [stratify t ~target] gives every record of class [target] the weight
    (Σ weight of other classes) / (count of target records), so the target
    class reaches equal aggregate strength — the paper's "-we" training
    sets. Non-target records keep their weights. *)
val stratify : t -> target:int -> t

(** [subset t indices] materializes the selected records (in the given
    order) into a new dataset. *)
val subset : t -> int array -> t

(** [append a b] concatenates two datasets with identical schemas and
    class tables. Raises [Invalid_argument] on schema mismatch. *)
val append : t -> t -> t

(** [binary_labels t ~target] is a bool array marking membership of the
    target class. *)
val binary_labels : t -> target:int -> bool array

(** [equal a b] is structural equality of schema, classes, labels,
    weights and cell contents (numeric cells compared with
    [Float.compare], so equal nan patterns count as equal). Used by the
    streaming-vs-in-memory loader equivalence tests. *)
val equal : t -> t -> bool

(** [pp_summary] prints the schema, per-class weights and record count. *)
val pp_summary : Format.formatter -> t -> unit
