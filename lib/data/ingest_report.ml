type policy = Strict | Skip | Impute

let policy_name = function
  | Strict -> "strict"
  | Skip -> "skip"
  | Impute -> "impute"

let policy_of_string = function
  | "strict" -> Some Strict
  | "skip" -> Some Skip
  | "impute" -> Some Impute
  | _ -> None

type t = {
  mutable rows_read : int;
  mutable rows_kept : int;
  mutable rows_skipped : int;
  mutable cells_imputed : int;
  mutable io_retries : int;
  mutable errors : (int * string) list;
}

let max_errors = 5

let create () =
  {
    rows_read = 0;
    rows_kept = 0;
    rows_skipped = 0;
    cells_imputed = 0;
    io_retries = 0;
    errors = [];
  }

let row_read t = t.rows_read <- t.rows_read + 1

let row_kept t = t.rows_kept <- t.rows_kept + 1

let row_skipped t ~line msg =
  t.rows_skipped <- t.rows_skipped + 1;
  if List.length t.errors < max_errors then t.errors <- t.errors @ [ (line, msg) ]

let cell_imputed t = t.cells_imputed <- t.cells_imputed + 1

let add_io_retries t n = t.io_retries <- t.io_retries + n

let pp ppf t =
  Format.fprintf ppf "@[<v>rows read %d, kept %d, skipped %d, cells imputed %d"
    t.rows_read t.rows_kept t.rows_skipped t.cells_imputed;
  if t.io_retries > 0 then Format.fprintf ppf ", io retries %d" t.io_retries;
  List.iter
    (fun (line, msg) -> Format.fprintf ppf "@,  line %d: %s" line msg)
    t.errors;
  if t.rows_skipped > List.length t.errors && t.errors <> [] then
    Format.fprintf ppf "@,  … %d more" (t.rows_skipped - List.length t.errors);
  Format.fprintf ppf "@]"
