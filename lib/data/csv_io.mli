(** CSV import/export.

    The format is comma-separated values with a header row, decoded by
    the streaming RFC-4180 state machine in {!Stream}: quoted fields may
    contain commas, escaped quotes and raw newlines, CRLF line endings
    parse like LF, and the raw text is never held in memory (the loaders
    make two streaming passes — a schema scan, then the build).

    The class column is named by [~class_column] (default: the last
    column). A column is inferred numeric when every non-missing cell
    parses as a {e finite} float ("nan"/"inf" literals stay categorical);
    otherwise it is categorical with values in first-seen order.

    Malformed rows are handled per {!Ingest_report.policy}:
    - [Strict] (default): raise {!Parse_error} — the legacy behaviour.
      Empty numeric cells still read as 0 and "?" is an ordinary string.
    - [Skip]: rows with decode errors, wrong arity or "?" cells are
      dropped and counted.
    - [Impute]: "?" and empty cells are filled with the column median
      (numeric) or majority value (categorical); structurally bad rows
      and rows with a missing class label are dropped and counted. *)

exception Parse_error of string

(** [load ?class_column ?policy ?buf_size path] reads a CSV file into a
    dataset with unit weights. [buf_size] sizes the streaming refill
    buffer (default 64 KiB; exposed for boundary tests). Raises
    [Parse_error] on malformed input and [Sys_error] on IO failure. *)
val load :
  ?class_column:string ->
  ?policy:Ingest_report.policy ->
  ?buf_size:int ->
  string ->
  Dataset.t

(** [load_with_report] additionally returns the ingest accounting —
    essential under [Skip]/[Impute] to see how much of the feed
    survived. *)
val load_with_report :
  ?class_column:string ->
  ?policy:Ingest_report.policy ->
  ?buf_size:int ->
  string ->
  Dataset.t * Ingest_report.t

(** [save ds path] writes the dataset (class column last, named "class").
    Weights are not persisted. *)
val save : Dataset.t -> string -> unit

(** [escape s] quotes a single field for CSV output when it contains a
    comma, quote or line break (used by the streaming prediction
    writer). *)
val escape : string -> string

(** [parse_string ?class_column ?policy s] parses CSV text directly. *)
val parse_string :
  ?class_column:string -> ?policy:Ingest_report.policy -> string -> Dataset.t

val parse_string_with_report :
  ?class_column:string ->
  ?policy:Ingest_report.policy ->
  string ->
  Dataset.t * Ingest_report.t
