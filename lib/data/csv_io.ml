exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* Numeric inference accepts only finite literals: columns of string IDs
   like "nan", "inf" or "infinity" (or overflowing literals such as
   1e400) must stay categorical. *)
let is_float s =
  match float_of_string_opt (String.trim s) with
  | Some v -> Float.is_finite v
  | None -> false

let resolve_class_col class_column names =
  match class_column with
  | None -> Array.length names - 1
  | Some name -> (
    match Array.find_index (String.equal name) names with
    | Some i -> i
    | None -> fail "class column %S not found" name)

(* A cell is "missing" for inference and imputation when it is empty
   (the legacy loader already special-cased empty numeric cells), and
   additionally when it is "?" under [Impute]. Under [Skip] a "?" never
   reaches this predicate: the whole row is dropped up front. *)
let missing ~policy cell =
  let t = String.trim cell in
  t = "" || (policy = Ingest_report.Impute && t = "?")

(* One streaming pass: resolve the header, apply the row-level policy,
   hand every surviving data row to [row]. [report] is only supplied on
   the final pass so counters are not doubled. Returns
   (header names, class column index). *)
let stream_pass ?class_column ~(policy : Ingest_report.policy) ?report source ~row =
  let header = ref None in
  Stream.fold_csv source ~init:() ~f:(fun () ~line result ->
      match !header with
      | None -> (
        match result with
        | Error msg -> fail "header: %s" msg
        | Ok names -> header := Some (names, resolve_class_col class_column names))
      | Some (names, class_col) -> (
        Option.iter Ingest_report.row_read report;
        let drop msg =
          match policy with
          | Ingest_report.Strict -> fail "line %d: %s" line msg
          | Ingest_report.Skip | Ingest_report.Impute ->
            Option.iter (fun r -> Ingest_report.row_skipped r ~line msg) report
        in
        match result with
        | Error msg -> drop msg
        | Ok cells ->
          if Array.length cells <> Array.length names then
            drop
              (Printf.sprintf "row has %d fields, header has %d"
                 (Array.length cells) (Array.length names))
          else if
            policy = Ingest_report.Skip
            && Array.exists (fun c -> String.trim c = "?") cells
          then drop "missing value (?)"
          else if
            policy = Ingest_report.Impute
            &&
            let t = String.trim cells.(class_col) in
            t = "" || t = "?"
          then drop "missing class label"
          else begin
            Option.iter Ingest_report.row_kept report;
            row cells
          end));
  match !header with
  | None -> fail "empty input"
  | Some h -> h

let median sorted =
  let m = Array.length sorted in
  if m land 1 = 1 then sorted.(m / 2)
  else (sorted.((m / 2) - 1) +. sorted.(m / 2)) /. 2.0

(* Two streaming passes over [with_source]: a schema scan (column kind
   inference, surviving-row count), then the build pass that fills
   exact-size columns. Neither pass retains raw text beyond the
   decoder's refill buffer. *)
let build ?class_column ~policy ~with_source () =
  let report = Ingest_report.create () in
  (* Pass 1: schema scan. *)
  let numeric_ok = ref [||] in
  let has_value = ref [||] in
  let kept = ref 0 in
  let header = ref ([||], 0) in
  with_source (fun source ->
      header :=
        stream_pass ?class_column ~policy source ~row:(fun cells ->
            if Array.length !numeric_ok <> Array.length cells then begin
              numeric_ok := Array.make (Array.length cells) true;
              has_value := Array.make (Array.length cells) false
            end;
            incr kept;
            Array.iteri
              (fun j cell ->
                if not (missing ~policy cell) then begin
                  !has_value.(j) <- true;
                  if not (is_float cell) then !numeric_ok.(j) <- false
                end)
              cells));
  let names, class_col = !header in
  let n_cols = Array.length names in
  if n_cols = 0 then fail "no columns";
  let n = !kept in
  if n = 0 then fail "no data rows";
  let numeric = Array.init n_cols (fun j -> !numeric_ok.(j) && !has_value.(j)) in
  (* Pass 2: build exact-size columns. *)
  let class_table = Hashtbl.create 8 in
  let class_names = ref [] in
  let intern table names_ref s =
    match Hashtbl.find_opt table s with
    | Some i -> i
    | None ->
      let i = Hashtbl.length table in
      Hashtbl.add table s i;
      names_ref := s :: !names_ref;
      i
  in
  let labels = Array.make n 0 in
  let stores =
    Array.init n_cols (fun j ->
        if j = class_col then `Class
        else if numeric.(j) then `Num (Array.make n 0.0)
        else `Cat (Array.make n 0, Hashtbl.create 16, ref []))
  in
  let i = ref 0 in
  with_source (fun source ->
      ignore
        (stream_pass ?class_column ~policy ~report source ~row:(fun cells ->
             let k = !i in
             incr i;
             labels.(k) <- intern class_table class_names (String.trim cells.(class_col));
             Array.iteri
               (fun j cell ->
                 match stores.(j) with
                 | `Class -> ()
                 | `Num col ->
                   if missing ~policy cell then
                     (* legacy: empty numeric cells read as 0; under
                        Impute they become a median-patched placeholder *)
                     col.(k) <-
                       (if policy = Ingest_report.Impute then Float.nan else 0.0)
                   else col.(k) <- float_of_string (String.trim cell)
                 | `Cat (col, table, vals) ->
                   if policy = Ingest_report.Impute && missing ~policy cell then
                     col.(k) <- -1
                   else col.(k) <- intern table vals (String.trim cell))
               cells)));
  (* Patch imputed placeholders and freeze the columns. *)
  let data_cols =
    Array.of_list (List.filter (fun j -> j <> class_col) (List.init n_cols Fun.id))
  in
  let attrs_and_columns =
    Array.map
      (fun j ->
        let name = names.(j) in
        match stores.(j) with
        | `Class -> assert false
        | `Num col ->
          if policy = Ingest_report.Impute && Array.exists Float.is_nan col then begin
            let present = Array.of_list (List.filter (fun v -> not (Float.is_nan v)) (Array.to_list col)) in
            Array.sort Float.compare present;
            let m = median present in
            Array.iteri
              (fun k v ->
                if Float.is_nan v then begin
                  col.(k) <- m;
                  Ingest_report.cell_imputed report
                end)
              col
          end;
          (Attribute.numeric name, Dataset.Num col)
        | `Cat (col, _, vals) ->
          let values = Array.of_list (List.rev !vals) in
          if Array.exists (fun c -> c < 0) col then begin
            if Array.length values = 0 then
              fail "column %S has only missing values" name;
            let counts = Array.make (Array.length values) 0 in
            Array.iter (fun c -> if c >= 0 then counts.(c) <- counts.(c) + 1) col;
            let majority = ref 0 in
            Array.iteri
              (fun v c -> if c > counts.(!majority) then majority := v)
              counts;
            Array.iteri
              (fun k c ->
                if c < 0 then begin
                  col.(k) <- !majority;
                  Ingest_report.cell_imputed report
                end)
              col
          end;
          (Attribute.categorical name values, Dataset.Cat col))
      data_cols
  in
  let ds =
    Dataset.create
      ~attrs:(Array.map fst attrs_and_columns)
      ~columns:(Array.map snd attrs_and_columns)
      ~labels
      ~classes:(Array.of_list (List.rev !class_names))
      ()
  in
  (ds, report)

let parse_string_with_report ?class_column ?(policy = Ingest_report.Strict) s =
  build ?class_column ~policy ~with_source:(fun k -> k (Stream.of_string s)) ()

let parse_string ?class_column ?policy s =
  fst (parse_string_with_report ?class_column ?policy s)

let load_with_report ?class_column ?(policy = Ingest_report.Strict) ?buf_size path =
  build ?class_column ~policy
    ~with_source:(fun k ->
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> k (Stream.of_channel ?buf_size ic)))
    ()

let load ?class_column ?policy ?buf_size path =
  fst (load_with_report ?class_column ?policy ?buf_size path)

let escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let save (ds : Dataset.t) path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let headers =
        Array.to_list (Array.map (fun (a : Attribute.t) -> escape a.name) ds.attrs)
        @ [ "class" ]
      in
      output_string oc (String.concat "," headers);
      output_char oc '\n';
      for i = 0 to Dataset.n_records ds - 1 do
        let cells =
          Array.to_list
            (Array.mapi
               (fun j (a : Attribute.t) ->
                 match a.kind with
                 | Attribute.Numeric -> Printf.sprintf "%.9g" (Dataset.num_value ds ~col:j i)
                 | Attribute.Categorical values ->
                   escape values.(Dataset.cat_value ds ~col:j i))
               ds.attrs)
          @ [ escape ds.classes.(Dataset.label ds i) ]
        in
        output_string oc (String.concat "," cells);
        output_char oc '\n'
      done)
