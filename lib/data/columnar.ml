exception Corrupt of string

let fail fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* Version byte 1; the \r\n tail catches text-mode newline mangling the
   way PNG's magic does. *)
let magic = "pncol\x01\r\n"

let default_group_size = 8192

(* A corrupted header must not drive a huge allocation before its
   checksum is verified, so every size field is capped at read time. *)
let max_group_size = 1 lsl 24

let max_header_len = 1 lsl 24

let max_string_len = 1 lsl 24

let max_rows = 1 lsl 48

type schema = {
  n_rows : int;
  group_size : int;
  n_groups : int;
  has_labels : bool;
  classes : string array;
  attrs : Attribute.t array;
}

(* Dictionary codes are stored at the narrowest width the arity fits. *)
let width_of_arity arity =
  if arity <= 0x100 then 1 else if arity <= 0x10000 then 2 else 4

let groups_of_rows ~group_size n =
  if n = 0 then 0 else ((n - 1) / group_size) + 1

let rows_in_group sch g =
  if g < sch.n_groups - 1 then sch.group_size
  else sch.n_rows - (sch.group_size * (sch.n_groups - 1))

(* ------------------------------------------------------------------ *)
(* Writing                                                              *)
(* ------------------------------------------------------------------ *)

let add_u8 buf v = Buffer.add_uint8 buf v

let add_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)

let add_u64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

let add_str buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let le32_string v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  Bytes.unsafe_to_string b

let add_code buf ~width code =
  match width with
  | 1 -> add_u8 buf code
  | 2 -> Buffer.add_uint16_le buf code
  | _ -> add_u32 buf code

let header_payload ~group_size ~has_labels (ds : Dataset.t) =
  let buf = Buffer.create 1024 in
  let n = Dataset.n_records ds in
  add_u64 buf n;
  add_u32 buf group_size;
  add_u32 buf (groups_of_rows ~group_size n);
  add_u8 buf (if has_labels then 1 else 0);
  add_u32 buf (Array.length ds.Dataset.classes);
  Array.iter (add_str buf) ds.Dataset.classes;
  add_u32 buf (Array.length ds.Dataset.attrs);
  Array.iter
    (fun (a : Attribute.t) ->
      match a.kind with
      | Attribute.Numeric ->
        add_u8 buf 0;
        add_str buf a.name
      | Attribute.Categorical values ->
        add_u8 buf 1;
        add_str buf a.name;
        add_u32 buf (Array.length values);
        Array.iter (add_str buf) values)
    ds.Dataset.attrs;
  Buffer.contents buf

let write ?(group_size = default_group_size) ?missing sink (ds : Dataset.t) =
  if group_size < 1 || group_size > max_group_size then
    invalid_arg "Columnar.write: group_size";
  let n = Dataset.n_records ds in
  let n_attrs = Array.length ds.Dataset.attrs in
  (match missing with
  | None -> ()
  | Some m ->
    if Array.length m <> n_attrs then
      invalid_arg "Columnar.write: missing has one entry per attribute";
    Array.iter
      (function
        | Some mask when Array.length mask <> n ->
          invalid_arg "Columnar.write: missing mask length"
        | Some _ | None -> ())
      m);
  let col_missing j =
    match missing with None -> None | Some m -> m.(j)
  in
  (* Concatenated block-checksum fields, in file order; the footer's
     file CRC covers them, which transitively covers every payload
     byte. *)
  let crcs = Buffer.create 256 in
  let emit_block payload =
    sink payload;
    let crc_field = le32_string (Pn_util.Crc32.string payload) in
    sink crc_field;
    Buffer.add_string crcs crc_field
  in
  sink magic;
  let header = header_payload ~group_size ~has_labels:true ds in
  let hbuf = Buffer.create (String.length header + 8) in
  add_u32 hbuf (String.length header);
  sink (Buffer.contents hbuf);
  emit_block header;
  let n_groups = groups_of_rows ~group_size n in
  let block = Buffer.create (group_size * 8) in
  let lwidth = width_of_arity (Array.length ds.Dataset.classes + 1) in
  for g = 0 to n_groups - 1 do
    let base = g * group_size in
    let rows = min group_size (n - base) in
    Buffer.clear block;
    Buffer.add_string block "PNCG";
    add_u32 block g;
    add_u32 block rows;
    emit_block (Buffer.contents block);
    for j = 0 to n_attrs - 1 do
      Buffer.clear block;
      let mask = col_missing j in
      let any_missing =
        match mask with
        | None -> false
        | Some mask ->
          let any = ref false in
          for i = base to base + rows - 1 do
            if mask.(i) then any := true
          done;
          !any
      in
      add_u8 block (if any_missing then 1 else 0);
      (if any_missing then
         let mask = Option.get mask in
         let nbytes = (rows + 7) / 8 in
         for b = 0 to nbytes - 1 do
           let byte = ref 0 in
           for bit = 0 to 7 do
             let i = (b * 8) + bit in
             if i < rows && mask.(base + i) then byte := !byte lor (1 lsl bit)
           done;
           add_u8 block !byte
         done);
      (match ds.Dataset.columns.(j) with
      | Dataset.Num a ->
        for i = base to base + rows - 1 do
          Buffer.add_int64_le block (Int64.bits_of_float a.(i))
        done
      | Dataset.Cat a ->
        let width = width_of_arity (Attribute.arity ds.Dataset.attrs.(j)) in
        for i = base to base + rows - 1 do
          add_code block ~width a.(i)
        done);
      emit_block (Buffer.contents block)
    done;
    Buffer.clear block;
    for i = base to base + rows - 1 do
      add_code block ~width:lwidth ds.Dataset.labels.(i)
    done;
    emit_block (Buffer.contents block)
  done;
  Buffer.clear block;
  Buffer.add_string block "PNCE";
  add_u64 block n;
  add_u32 block (Pn_util.Crc32.string (Buffer.contents crcs));
  sink (Buffer.contents block)

let to_string ?group_size ?missing ds =
  let buf = Buffer.create 4096 in
  write ?group_size ?missing (Buffer.add_string buf) ds;
  Buffer.contents buf

(* Same durability contract as [Serialize.save]: fsync of the directory
   makes the rename durable; refusal only weakens durability, never
   atomicity. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let save ?group_size ?missing ds path =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let write_all fd data =
    let len = String.length data in
    let off = ref 0 in
    while !off < len do
      let want = Pn_util.Fault.cap "columnar.write" (min 65536 (len - !off)) in
      match Unix.write_substring fd data !off want with
      | n -> off := !off + n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  match
    let fd =
      Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        write ?group_size ?missing (write_all fd) ds;
        Unix.fsync fd)
  with
  | () ->
    Sys.rename tmp path;
    fsync_dir (Filename.dirname path)
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

(* ------------------------------------------------------------------ *)
(* Reading                                                              *)
(* ------------------------------------------------------------------ *)

type rcol =
  | Rnum of float array
  | Rcat of int array
  | Rskip  (** checksum-verified, never decoded *)

type reader = {
  src : Stream.source;
  sch : schema;
  mutable wanted : bool array;
  (* Decode buffers, length [group_size], allocated at the first
     [read_group] (after [set_wanted]) and reused for every group. *)
  mutable cols : rcol array;
  mutable miss : bool array option array;
  mutable labels : int array option;
  mutable scratch : bytes;
  mutable next_group : int;
  mutable started : bool;
  mutable finished : bool;
  crcs : Buffer.t;
}

let read_exact r buf pos len =
  let off = ref pos and rem = ref len in
  while !rem > 0 do
    let want = Pn_util.Fault.cap "columnar.read" !rem in
    let n = Stream.read_into r.src buf !off want in
    if n = 0 then fail "unexpected end of file";
    off := !off + n;
    rem := !rem - n
  done

(* Little-endian field readers over a header payload string. *)
let str_u8 s pos =
  if !pos >= String.length s then fail "truncated header";
  let v = Char.code s.[!pos] in
  incr pos;
  v

let str_u32 s pos =
  if !pos + 4 > String.length s then fail "truncated header";
  let v = Int32.to_int (String.get_int32_le s !pos) land 0xFFFFFFFF in
  pos := !pos + 4;
  v

let str_u64 s pos =
  if !pos + 8 > String.length s then fail "truncated header";
  let v = String.get_int64_le s !pos in
  pos := !pos + 8;
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_rows) > 0 then
    fail "implausible row count";
  Int64.to_int v

let str_string s pos =
  let len = str_u32 s pos in
  if len > max_string_len || !pos + len > String.length s then
    fail "implausible string length %d" len;
  let v = String.sub s !pos len in
  pos := !pos + len;
  v

let parse_header payload =
  let pos = ref 0 in
  (* [str_*] advance a cursor, so every repeated field is read with an
     explicit in-order loop — [Array.init]'s evaluation order is
     unspecified. *)
  let str_strings count =
    let a = Array.make count "" in
    for i = 0 to count - 1 do
      a.(i) <- str_string payload pos
    done;
    a
  in
  let n_rows = str_u64 payload pos in
  let group_size = str_u32 payload pos in
  if group_size < 1 || group_size > max_group_size then
    fail "implausible group size %d" group_size;
  let n_groups = str_u32 payload pos in
  if n_groups <> groups_of_rows ~group_size n_rows then
    fail "group count %d does not cover %d rows" n_groups n_rows;
  let has_labels =
    match str_u8 payload pos with
    | 0 -> false
    | 1 -> true
    | b -> fail "bad label flag %d" b
  in
  let n_classes = str_u32 payload pos in
  if n_classes > max_group_size then fail "implausible class count %d" n_classes;
  let classes = str_strings n_classes in
  let n_attrs = str_u32 payload pos in
  if n_attrs > 1 lsl 20 then fail "implausible column count %d" n_attrs;
  let attrs = Array.make n_attrs (Attribute.numeric "") in
  for j = 0 to n_attrs - 1 do
    attrs.(j) <-
      (match str_u8 payload pos with
      | 0 -> Attribute.numeric (str_string payload pos)
      | 1 ->
        let name = str_string payload pos in
        let arity = str_u32 payload pos in
        if arity > max_group_size then
          fail "implausible dictionary arity %d" arity;
        Attribute.categorical name (str_strings arity)
      | k -> fail "unknown column kind %d" k)
  done;
  if !pos <> String.length payload then fail "trailing bytes in header";
  { n_rows; group_size; n_groups; has_labels; classes; attrs }

let open_reader src =
  let crcs = Buffer.create 256 in
  let r0 =
    {
      src;
      sch =
        {
          n_rows = 0;
          group_size = 1;
          n_groups = 0;
          has_labels = false;
          classes = [||];
          attrs = [||];
        };
      wanted = [||];
      cols = [||];
      miss = [||];
      labels = None;
      scratch = Bytes.create 64;
      next_group = 0;
      started = false;
      finished = false;
      crcs;
    }
  in
  let b = r0.scratch in
  read_exact r0 b 0 (String.length magic);
  if Bytes.sub_string b 0 (String.length magic) <> magic then
    fail "not a pnc columnar file (bad magic)";
  read_exact r0 b 0 4;
  let hlen = Int32.to_int (Bytes.get_int32_le b 0) land 0xFFFFFFFF in
  if hlen > max_header_len then fail "implausible header length %d" hlen;
  let hbuf = Bytes.create hlen in
  read_exact r0 hbuf 0 hlen;
  read_exact r0 b 0 4;
  let stored = Int32.to_int (Bytes.get_int32_le b 0) land 0xFFFFFFFF in
  let payload = Bytes.unsafe_to_string hbuf in
  let actual = Pn_util.Crc32.string payload in
  if stored <> actual then
    fail "header checksum mismatch: stored %08x, content %08x" stored actual;
  Buffer.add_string crcs (le32_string stored);
  let sch = parse_header payload in
  { r0 with sch; wanted = Array.make (Array.length sch.attrs) true }

let schema r = r.sch

let io_retries r = Stream.retries r.src

let set_wanted r mask =
  if r.started then invalid_arg "Columnar.set_wanted: groups already read";
  if Array.length mask <> Array.length r.sch.attrs then
    invalid_arg "Columnar.set_wanted: mask length";
  r.wanted <- Array.copy mask

let prepare_buffers r =
  let gs = r.sch.group_size in
  r.cols <-
    Array.mapi
      (fun j (a : Attribute.t) ->
        if not r.wanted.(j) then Rskip
        else
          match a.kind with
          | Attribute.Numeric -> Rnum (Array.make gs 0.0)
          | Attribute.Categorical _ -> Rcat (Array.make gs 0))
      r.sch.attrs;
  r.miss <- Array.make (Array.length r.sch.attrs) None;
  if r.sch.has_labels then r.labels <- Some (Array.make gs 0);
  (* Big enough for the largest block — flag byte + bitmap + 8-byte
     cells — plus the trailing CRC field read in place after it. The
     floor covers the 16-byte group-header and footer reads when the
     group size is tiny. *)
  r.scratch <- Bytes.create (max 16 (1 + ((gs + 7) / 8) + (gs * 8) + 4));
  r.started <- true

(* Read one [len]-byte block payload (at [offset] into scratch, for
   payloads whose length depends on a prefix byte already read), verify
   its stored CRC against the bytes, and feed the stored field into the
   running file checksum. *)
let finish_block r ~len =
  let b = r.scratch in
  read_exact r b len 4;
  let stored = Int32.to_int (Bytes.get_int32_le b len) land 0xFFFFFFFF in
  let actual = Pn_util.Crc32.string ~len (Bytes.unsafe_to_string b) in
  if stored <> actual then
    fail "block checksum mismatch in group %d: stored %08x, content %08x"
      r.next_group stored actual;
  Buffer.add_string r.crcs (le32_string stored)

let get_code b ~width pos =
  match width with
  | 1 -> Bytes.get_uint8 b pos
  | 2 -> Bytes.get_uint16_le b pos
  | _ -> Int32.to_int (Bytes.get_int32_le b pos) land 0xFFFFFFFF

let read_footer r =
  let b = r.scratch in
  read_exact r b 0 16;
  if Bytes.sub_string b 0 4 <> "PNCE" then fail "bad footer magic";
  let rows = Bytes.get_int64_le b 4 in
  if rows <> Int64.of_int r.sch.n_rows then
    fail "footer row count %Ld does not match header %d" rows r.sch.n_rows;
  let stored = Int32.to_int (Bytes.get_int32_le b 12) land 0xFFFFFFFF in
  let actual = Pn_util.Crc32.string (Buffer.contents r.crcs) in
  if stored <> actual then
    fail "file checksum mismatch: stored %08x, blocks hash to %08x" stored actual;
  if Stream.read_into r.src b 0 1 <> 0 then fail "trailing bytes after footer";
  r.finished <- true

let read_group r =
  if r.finished then None
  else begin
    if not r.started then prepare_buffers r;
    if r.next_group >= r.sch.n_groups then begin
      read_footer r;
      None
    end
    else begin
      let b = r.scratch in
      (* Group header: magic, index, row count — under its own CRC so a
         flipped row count can never misalign the block reads. *)
      read_exact r b 0 12;
      finish_block r ~len:12;
      if Bytes.sub_string b 0 4 <> "PNCG" then fail "bad group magic";
      let g = Int32.to_int (Bytes.get_int32_le b 4) land 0xFFFFFFFF in
      if g <> r.next_group then
        fail "group %d found where group %d was expected" g r.next_group;
      let rows = Int32.to_int (Bytes.get_int32_le b 8) land 0xFFFFFFFF in
      if rows <> rows_in_group r.sch r.next_group then
        fail "group %d has %d rows, expected %d" g rows
          (rows_in_group r.sch r.next_group);
      let nbytes_bitmap = (rows + 7) / 8 in
      Array.iteri
        (fun j (a : Attribute.t) ->
          read_exact r b 0 1;
          let has_missing =
            match Bytes.get_uint8 b 0 with
            | 0 -> false
            | 1 -> true
            | v -> fail "bad missing flag %d in group %d" v g
          in
          let bitmap_len = if has_missing then nbytes_bitmap else 0 in
          let cell_width =
            match a.kind with
            | Attribute.Numeric -> 8
            | Attribute.Categorical values ->
              width_of_arity (Array.length values)
          in
          let data_len = rows * cell_width in
          read_exact r b 1 (bitmap_len + data_len);
          finish_block r ~len:(1 + bitmap_len + data_len);
          (match (r.cols.(j), has_missing) with
          | Rskip, _ -> ()
          | (Rnum _ | Rcat _), true ->
            let mask =
              match r.miss.(j) with
              | Some m -> m
              | None ->
                let m = Array.make r.sch.group_size false in
                r.miss.(j) <- Some m;
                m
            in
            for i = 0 to rows - 1 do
              mask.(i) <-
                (Bytes.get_uint8 b (1 + (i lsr 3)) lsr (i land 7)) land 1 = 1
            done
          | (Rnum _ | Rcat _), false -> r.miss.(j) <- None);
          match r.cols.(j) with
          | Rskip -> ()
          | Rnum dst ->
            let base = 1 + bitmap_len in
            for i = 0 to rows - 1 do
              dst.(i) <-
                Int64.float_of_bits (Bytes.get_int64_le b (base + (i lsl 3)))
            done
          | Rcat dst ->
            let base = 1 + bitmap_len in
            let arity =
              match a.kind with
              | Attribute.Categorical values -> Array.length values
              | Attribute.Numeric -> assert false
            in
            for i = 0 to rows - 1 do
              let code = get_code b ~width:cell_width (base + (i * cell_width)) in
              if code >= arity then
                fail "dictionary code %d out of range in group %d column %d"
                  code g j;
              dst.(i) <- code
            done)
        r.sch.attrs;
      (if r.sch.has_labels then begin
         let n_classes = Array.length r.sch.classes in
         let lwidth = width_of_arity (n_classes + 1) in
         let len = rows * lwidth in
         read_exact r b 0 len;
         finish_block r ~len;
         let dst = Option.get r.labels in
         for i = 0 to rows - 1 do
           let code = get_code b ~width:lwidth (i * lwidth) in
           if code > n_classes then
             fail "label code %d out of range in group %d" code g;
           dst.(i) <- (if code = n_classes then -1 else code)
         done
       end);
      r.next_group <- r.next_group + 1;
      Some rows
    end
  end

let num_col r j =
  match r.cols.(j) with
  | Rnum a -> a
  | Rcat _ | Rskip -> invalid_arg "Columnar.num_col"

let cat_col r j =
  match r.cols.(j) with
  | Rcat a -> a
  | Rnum _ | Rskip -> invalid_arg "Columnar.cat_col"

let col_missing r j = r.miss.(j)

let group_labels r = r.labels

(* ------------------------------------------------------------------ *)
(* Whole-file loads                                                     *)
(* ------------------------------------------------------------------ *)

let median sorted =
  let m = Array.length sorted in
  if m land 1 = 1 then sorted.(m / 2)
  else (sorted.((m / 2) - 1) +. sorted.(m / 2)) /. 2.0

let load_source ?(policy = Ingest_report.Strict) src =
  let report = Ingest_report.create () in
  let r = open_reader src in
  let sch = r.sch in
  if not sch.has_labels then
    fail "file carries no labels; cannot rebuild a dataset";
  let n = sch.n_rows in
  let n_attrs = Array.length sch.attrs in
  let columns =
    Array.map
      (fun (a : Attribute.t) ->
        match a.kind with
        | Attribute.Numeric -> Dataset.Num (Array.make n 0.0)
        | Attribute.Categorical _ -> Dataset.Cat (Array.make n 0))
      sch.attrs
  in
  let missing = Array.make n_attrs [||] in
  let any_missing = Array.make n_attrs false in
  let labels = Array.make n 0 in
  let base = ref 0 in
  let rec groups () =
    match read_group r with
    | None -> ()
    | Some rows ->
      for j = 0 to n_attrs - 1 do
        (match columns.(j) with
        | Dataset.Num dst -> Array.blit (num_col r j) 0 dst !base rows
        | Dataset.Cat dst -> Array.blit (cat_col r j) 0 dst !base rows);
        match col_missing r j with
        | None -> ()
        | Some mask ->
          if not any_missing.(j) then begin
            missing.(j) <- Array.make n false;
            any_missing.(j) <- true
          end;
          Array.blit mask 0 missing.(j) !base rows
      done;
      Array.blit (Option.get (group_labels r)) 0 labels !base rows;
      base := !base + rows;
      groups ()
  in
  groups ();
  Ingest_report.add_io_retries report (io_retries r);
  for _ = 1 to n do
    Ingest_report.row_read report
  done;
  (* Apply the row policy, mirroring the CSV loader: a missing label
     drops the row, a missing cell raises / drops / imputes. *)
  let row_missing i =
    let rec probe j =
      if j >= n_attrs then None
      else if any_missing.(j) && missing.(j).(i) then Some j
      else probe (j + 1)
    in
    probe 0
  in
  let keep = Array.make n true in
  for i = 0 to n - 1 do
    if labels.(i) < 0 then begin
      (match policy with
      | Ingest_report.Strict -> fail "row %d: missing class label" (i + 1)
      | Ingest_report.Skip | Ingest_report.Impute -> ());
      keep.(i) <- false;
      Ingest_report.row_skipped report ~line:(i + 1) "missing class label"
    end
    else
      match row_missing i with
      | None -> Ingest_report.row_kept report
      | Some j -> (
        let name = sch.attrs.(j).Attribute.name in
        match policy with
        | Ingest_report.Strict ->
          fail "row %d: missing value in column %S" (i + 1) name
        | Ingest_report.Skip ->
          keep.(i) <- false;
          Ingest_report.row_skipped report ~line:(i + 1)
            (Printf.sprintf "missing value in column %S" name)
        | Ingest_report.Impute -> Ingest_report.row_kept report)
  done;
  (* Whole-column imputation over the kept rows. *)
  if policy = Ingest_report.Impute then
    for j = 0 to n_attrs - 1 do
      if any_missing.(j) then begin
        let mask = missing.(j) in
        match columns.(j) with
        | Dataset.Num col ->
          let present = ref [] in
          for i = 0 to n - 1 do
            if keep.(i) && (not mask.(i)) && not (Float.is_nan col.(i)) then
              present := col.(i) :: !present
          done;
          let m =
            match !present with
            | [] -> 0.0
            | l ->
              let a = Array.of_list l in
              Array.sort Float.compare a;
              median a
          in
          for i = 0 to n - 1 do
            if keep.(i) && mask.(i) then begin
              col.(i) <- m;
              Ingest_report.cell_imputed report
            end
          done
        | Dataset.Cat col ->
          let arity = Attribute.arity sch.attrs.(j) in
          if arity = 0 then
            fail "column %S has only missing values" sch.attrs.(j).Attribute.name;
          let counts = Array.make arity 0 in
          let seen = ref false in
          for i = 0 to n - 1 do
            if keep.(i) && not mask.(i) then begin
              counts.(col.(i)) <- counts.(col.(i)) + 1;
              seen := true
            end
          done;
          if not !seen then
            fail "column %S has only missing values" sch.attrs.(j).Attribute.name;
          let majority = ref 0 in
          Array.iteri (fun v c -> if c > counts.(!majority) then majority := v) counts;
          for i = 0 to n - 1 do
            if keep.(i) && mask.(i) then begin
              col.(i) <- !majority;
              Ingest_report.cell_imputed report
            end
          done
      end
    done;
  let all_kept = Array.for_all Fun.id keep in
  let ds =
    if all_kept then
      Dataset.create ~attrs:sch.attrs ~columns ~labels ~classes:sch.classes ()
    else begin
      let idx = ref [] in
      for i = n - 1 downto 0 do
        if keep.(i) then idx := i :: !idx
      done;
      let idx = Array.of_list !idx in
      let pick = function
        | Dataset.Num a -> Dataset.Num (Array.map (fun i -> a.(i)) idx)
        | Dataset.Cat a -> Dataset.Cat (Array.map (fun i -> a.(i)) idx)
      in
      Dataset.create ~attrs:sch.attrs
        ~columns:(Array.map pick columns)
        ~labels:(Array.map (fun i -> labels.(i)) idx)
        ~classes:sch.classes ()
    end
  in
  (ds, report)

let load_with_report ?policy path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> load_source ?policy (Stream.of_channel ic))

let load ?policy path = fst (load_with_report ?policy path)

let of_string ?policy s = fst (load_source ?policy (Stream.of_string s))
