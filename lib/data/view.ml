type t = { data : Dataset.t; idx : int array }

let all data = { data; idx = Pn_util.Arr.range (Dataset.n_records data) }

let of_indices data idx = { data; idx }

let size t = Array.length t.idx

let is_empty t = size t = 0

let record t k = t.idx.(k)

let filter t keep =
  (* Single pass into a preallocated scratch buffer: no Seq nodes, and
     [keep] (often a rule-match) is evaluated once per record. *)
  let n = Array.length t.idx in
  let scratch = Array.make n 0 in
  let m = ref 0 in
  for k = 0 to n - 1 do
    let i = t.idx.(k) in
    if keep i then begin
      scratch.(!m) <- i;
      incr m
    end
  done;
  { t with idx = Array.sub scratch 0 !m }

let partition t pred =
  let yes = ref [] and no = ref [] in
  for k = Array.length t.idx - 1 downto 0 do
    let i = t.idx.(k) in
    if pred i then yes := i :: !yes else no := i :: !no
  done;
  ({ t with idx = Array.of_list !yes }, { t with idx = Array.of_list !no })

let total_weight t =
  Array.fold_left (fun acc i -> acc +. Dataset.weight t.data i) 0.0 t.idx

let class_weight t c =
  Array.fold_left
    (fun acc i -> if Dataset.label t.data i = c then acc +. Dataset.weight t.data i else acc)
    0.0 t.idx

let binary_weights t ~target =
  let pos = ref 0.0 and neg = ref 0.0 in
  Array.iter
    (fun i ->
      let w = Dataset.weight t.data i in
      if Dataset.label t.data i = target then pos := !pos +. w else neg := !neg +. w)
    t.idx;
  (!pos, !neg)

let count_class t c =
  Array.fold_left (fun acc i -> if Dataset.label t.data i = c then acc + 1 else acc) 0 t.idx

let iter t f = Array.iter f t.idx

let fold t init f = Array.fold_left f init t.idx

(* Sort the view's indices directly, with the cache's tie-break (value,
   then record index), so both strategies below agree bit-for-bit. *)
let sorted_by_num_direct t ~col =
  let ds = t.data in
  let idx = Array.copy t.idx in
  Array.sort
    (fun i j ->
      let c = Float.compare (Dataset.num_value ds ~col i) (Dataset.num_value ds ~col j) in
      if c <> 0 then c else Int.compare i j)
    idx;
  idx

let sorted_by_num t ~col =
  let k = Array.length t.idx in
  let n = Dataset.n_records t.data in
  (* The cached path costs O(n) (mask + scan of the global order); the
     direct path costs O(k log k). Small views fall back to the direct
     sort so late covering rounds don't pay the full-dataset scan. *)
  if k = 0 then [||]
  else if 16 * k < n then sorted_by_num_direct t ~col
  else begin
    let order = Dataset.sorted_order t.data ~col in
    let mask = Bytes.make n '\000' in
    Array.iter (fun i -> Bytes.unsafe_set mask i '\001') t.idx;
    let out = Array.make k 0 in
    let m = ref 0 in
    for p = 0 to n - 1 do
      let i = Array.unsafe_get order p in
      if Bytes.unsafe_get mask i = '\001' && !m < k then begin
        Array.unsafe_set out !m i;
        incr m
      end
    done;
    (* A view with duplicate indices marks fewer mask bits than it has
       entries; restore the exact multiset via the direct sort. *)
    if !m < k then sorted_by_num_direct t ~col else out
  end

let split t rng ~left_fraction =
  let n_classes = Dataset.n_classes t.data in
  let by_class = Array.make n_classes [] in
  (* Build per-class buckets in reverse so the final lists keep order. *)
  for k = Array.length t.idx - 1 downto 0 do
    let i = t.idx.(k) in
    let c = Dataset.label t.data i in
    by_class.(c) <- i :: by_class.(c)
  done;
  let left = ref [] and right = ref [] in
  Array.iter
    (fun bucket ->
      let a = Array.of_list bucket in
      Pn_util.Rng.shuffle rng a;
      let n = Array.length a in
      let k =
        if n >= 2 then
          (* Keep at least one record on each side of the split. *)
          max 1 (min (n - 1) (int_of_float (Float.round (left_fraction *. float_of_int n))))
        else int_of_float (Float.round (left_fraction *. float_of_int n))
      in
      for j = 0 to n - 1 do
        if j < k then left := a.(j) :: !left else right := a.(j) :: !right
      done)
    by_class;
  let finish l =
    let a = Array.of_list l in
    Array.sort Int.compare a;
    { t with idx = a }
  in
  (finish !left, finish !right)

let materialize t = Dataset.subset t.data t.idx
