(** ARFF (Attribute-Relation File Format) import — the native format of
    the Weka lineage RIPPER and C4.5 belong to.

    Supported subset: [@relation], [@attribute name numeric|real|integer]
    and [@attribute name {v1,v2,…}] declarations, and a comma-separated
    [@data] section with optional single-quoted values. The class
    attribute defaults to the last declared one. Files are decoded line
    by line through {!Stream} (CRLF tolerated, constant decoding memory);
    sparse rows, strings and dates are not supported and raise
    [Parse_error].

    Missing values ([?]) are routed through the row-level error policy:
    under [Strict] (the default) they raise [Parse_error] as before;
    under [Skip] the row is dropped and counted; under [Impute] the cell
    is filled with the column median (numeric) or majority value
    (nominal) — except for a missing class label, which always drops the
    row. Structurally bad rows (wrong arity, values outside their
    declared nominal set, unparseable numerics) raise under [Strict] and
    are dropped and counted otherwise. *)

exception Parse_error of string

(** [parse_string ?class_attribute ?policy s] parses ARFF text. The
    class attribute must be nominal. [policy] defaults to
    [Ingest_report.Strict]. *)
val parse_string :
  ?class_attribute:string -> ?policy:Ingest_report.policy -> string -> Dataset.t

val parse_string_with_report :
  ?class_attribute:string ->
  ?policy:Ingest_report.policy ->
  string ->
  Dataset.t * Ingest_report.t

(** [load ?class_attribute ?policy path] reads an ARFF file. Raises
    [Parse_error] or [Sys_error]. *)
val load :
  ?class_attribute:string -> ?policy:Ingest_report.policy -> string -> Dataset.t

val load_with_report :
  ?class_attribute:string ->
  ?policy:Ingest_report.policy ->
  string ->
  Dataset.t * Ingest_report.t

(** [save ds path] writes the dataset as ARFF (relation "pnrule",
    class attribute last, named "class"). *)
val save : Dataset.t -> string -> unit
