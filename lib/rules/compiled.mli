(** Compiled bitset scoring engine for first-match rule evaluation.

    The reference serving path walks records one at a time, re-testing
    every condition of every rule through boxed [Dataset] accessors.
    This module compiles a batch of rule lists — a PNrule model's P- and
    N-lists, or every list of a one-vs-rest multiclass ensemble — into a
    form that evaluates in a handful of columnar passes:

    + the distinct conditions across all lists are deduplicated, so a
      test shared by many rules (or many per-class models) is evaluated
      once per record instead of once per occurrence;
    + each distinct condition is evaluated into a {!Pn_util.Bitset}
      over the record space — numeric thresholds become intervals of
      the dataset's {!Pn_data.Sort_cache} sorted order when a training
      pass already built it (the bitset is filled by scattering only
      the covered records, no per-record comparison at all), and fall
      back to direct comparison sweeps on fresh serving data;
    + first-match resolution per rule list works word-at-a-time: AND the
      condition bitsets of each rule into the not-yet-resolved mask,
      commit the hits, clear them, and stop as soon as every record is
      resolved.

    Evaluation fans across the domain pool in two phases — one job per
    condition bitset, then one job per word-aligned chunk of the output
    arrays. Every job writes disjoint memory, so results are
    bit-identical at every pool size — and identical to the per-record
    reference path ([Rule_list.first_match]), which remains the oracle
    the property tests check against. *)

type t

(** [compile lists] deduplicates conditions across [lists] (each an
    ordered rule array, first match wins) and returns the compiled
    program. Compilation touches no data, so one program serves any
    number of datasets over the same schema. *)
val compile : Rule.t array array -> t

(** Number of rule lists the program was compiled from. *)
val n_lists : t -> int

(** Number of distinct conditions after deduplication. *)
val n_distinct_conditions : t -> int

(** [eval ?pool t ds] resolves first-match for every compiled list over
    every record: [(eval t ds).(l).(i)] is the index of the first rule
    of list [l] matching record [i], or [-1] when none matches (an
    empty rule matches everything). [pool] defaults to
    {!Pn_util.Pool.get_default}; the result does not depend on the pool
    size. Raises [Invalid_argument] if a condition's column kind
    disagrees with the dataset schema, like the reference path. *)
val eval : ?pool:Pn_util.Pool.t -> t -> Pn_data.Dataset.t -> int array array

(** [first_match_all ?pool rules ds] compiles and evaluates a single
    rule list: per-record first-match indices, [-1] for no match. *)
val first_match_all : ?pool:Pn_util.Pool.t -> Rule.t array -> Pn_data.Dataset.t -> int array
