type t = { rules : Rule.t array }

let of_list rules = { rules = Array.of_list rules }

let of_array rules = { rules }

let length t = Array.length t.rules

let get t i = t.rules.(i)

let to_list t = Array.to_list t.rules

let first_match ds t i =
  let n = Array.length t.rules in
  let rec loop k =
    if k >= n then None else if Rule.matches ds t.rules.(k) i then Some k else loop (k + 1)
  in
  loop 0

let any_match ds t i = Option.is_some (first_match ds t i)

let covered ds t =
  (* One compiled pass over the bitset engine instead of re-running
     any_match (every condition of every rule) per record. *)
  let fm = Compiled.first_match_all t.rules ds in
  let n_hits = ref 0 in
  Array.iter (fun m -> if m >= 0 then incr n_hits) fm;
  let hits = Array.make !n_hits 0 in
  let k = ref 0 in
  Array.iteri
    (fun i m ->
      if m >= 0 then begin
        hits.(!k) <- i;
        incr k
      end)
    fm;
  Pn_data.View.of_indices ds hits

let total_conditions t =
  Array.fold_left (fun acc r -> acc + Rule.n_conditions r) 0 t.rules

let pp attrs ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun k r -> Format.fprintf ppf "%2d. %a@," k (Rule.pp attrs) r)
    t.rules;
  Format.fprintf ppf "@]"
