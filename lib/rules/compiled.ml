(* Compiled bitset engine: dedup conditions, evaluate each with one
   columnar sweep into a bitset, resolve first-match word-at-a-time.
   See compiled.mli for the contract; the per-record reference path in
   Rule_list/Condition is the oracle this must match bit-for-bit. *)

module Bitset = Pn_util.Bitset
module Dataset = Pn_data.Dataset

type t = {
  conditions : Condition.t array;  (* deduplicated, in first-seen order *)
  lists : int array array array;  (* list -> rule -> condition ids *)
}

let compile lists =
  let tbl = Hashtbl.create 64 in
  let rev_conds = ref [] in
  let n_conds = ref 0 in
  let id_of c =
    match Hashtbl.find_opt tbl c with
    | Some id -> id
    | None ->
      let id = !n_conds in
      incr n_conds;
      rev_conds := c :: !rev_conds;
      Hashtbl.add tbl c id;
      id
  in
  let lists =
    Array.map
      (Array.map (fun r -> Array.of_list (List.map id_of r.Rule.conditions)))
      lists
  in
  { conditions = Array.of_list (List.rev !rev_conds); lists }

let n_lists t = Array.length t.lists

let n_distinct_conditions t = Array.length t.conditions

(* ------------------------------------------------------------------ *)
(* Per-dataset condition preparation                                    *)
(* ------------------------------------------------------------------ *)

(* A condition bound to the dataset's raw columns. Numeric tests become
   a half-open interval of the cached sorted order when the sort cache
   already holds the column (the bitset is then filled by walking only
   the order positions inside the interval — O(covered records), not
   O(n)); otherwise they sweep the float column directly with the same
   operators as Condition.matches. *)
type prep =
  | P_cat of int array * int
  | P_le of float array * float
  | P_ge of float array * float
  | P_range of float array * float * float
  | P_interval of int array * int * int
      (* (order, lo, hi): the matching records are order.(lo..hi-1) *)

(* First position p in the sorted order whose value satisfies [pred];
   [pred] must be monotone (false then true) along the order, which
   Float.compare-based predicates are, nans included. *)
let lower_bound order values pred =
  let lo = ref 0 and hi = ref (Array.length order) in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if pred values.(Array.unsafe_get order mid) then hi := mid else lo := mid + 1
  done;
  !lo

let num_column ds col =
  match ds.Dataset.columns.(col) with
  | Dataset.Num values -> values
  | Dataset.Cat _ ->
    invalid_arg "Compiled.eval: numeric condition on categorical column"

(* Translate a numeric test into a rank interval over the cached sorted
   order. Float.compare agrees with (<=)/(>=) on everything except
   nans, which it sorts first; the lower cut excludes them so the
   interval matches the reference semantics (a nan value satisfies no
   threshold, a nan threshold is satisfied by no value). *)
let rank_prep entry values cond =
  let order = entry.Pn_data.Sort_cache.order in
  let n = Array.length order in
  let count_le thr = lower_bound order values (fun v -> Float.compare v thr > 0) in
  let count_lt thr = lower_bound order values (fun v -> Float.compare v thr >= 0) in
  let n_nan = lower_bound order values (fun v -> not (Float.is_nan v)) in
  match cond with
  | Condition.Num_le { threshold; _ } ->
    if Float.is_nan threshold then P_interval (order, 0, 0)
    else P_interval (order, n_nan, count_le threshold)
  | Condition.Num_ge { threshold; _ } ->
    if Float.is_nan threshold then P_interval (order, 0, 0)
    else P_interval (order, count_lt threshold, n)
  | Condition.Num_range { lo; hi; _ } ->
    if Float.is_nan lo || Float.is_nan hi then P_interval (order, 0, 0)
    else P_interval (order, max n_nan (count_lt lo), count_le hi)
  | Condition.Cat_eq _ -> assert false

let prepare ds cond =
  match cond with
  | Condition.Cat_eq { col; value } -> (
    match ds.Dataset.columns.(col) with
    | Dataset.Cat codes -> P_cat (codes, value)
    | Dataset.Num _ ->
      invalid_arg "Compiled.eval: categorical condition on numeric column")
  | Condition.Num_le { col; threshold } -> (
    let values = num_column ds col in
    match Dataset.sort_entry_opt ds ~col with
    | Some e -> rank_prep e values cond
    | None -> P_le (values, threshold))
  | Condition.Num_ge { col; threshold } -> (
    let values = num_column ds col in
    match Dataset.sort_entry_opt ds ~col with
    | Some e -> rank_prep e values cond
    | None -> P_ge (values, threshold))
  | Condition.Num_range { col; lo; hi } -> (
    let values = num_column ds col in
    match Dataset.sort_entry_opt ds ~col with
    | Some e -> rank_prep e values cond
    | None -> P_range (values, lo, hi))

(* ------------------------------------------------------------------ *)
(* Columnar sweeps                                                      *)
(* ------------------------------------------------------------------ *)

let bits = Bitset.bits_per_word

(* Resolution chunks span an exact number of words, so parallel chunks
   own disjoint word ranges of the output arrays. *)
let records_per_chunk = bits * 64

(* Exact [idx / 63] without a hardware divide: split off [idx lsr 6]
   (a 64-divide underestimates a 63-divide), then finish the small
   remainder with a round-up magic multiply. The multiply is
   overflow-free and exact for idx < 2^36 — verified by brute force to
   2^26 and sampling to 2^36 — far beyond any dataset this engine will
   see. Only used when [bits] = 63 (every 64-bit platform). *)
let div63 idx =
  let q0 = idx lsr 6 in
  let d = (idx land 63) + q0 in
  q0 + ((d * 2181570691) lsr 37)

(* Scatter the records at order positions [p_lo, p_hi) into the word
   array. Sequential reads of [order], single-bit ors into a bitset
   that is tiny (n/8 bytes) and therefore cache-resident. *)
let set_interval order w ~p_lo ~p_hi =
  if bits = 63 then
    for p = p_lo to p_hi - 1 do
      let idx = Array.unsafe_get order p in
      let q = div63 idx in
      Array.unsafe_set w q (Array.unsafe_get w q lor (1 lsl (idx - (q * 63))))
    done
  else
    for p = p_lo to p_hi - 1 do
      let idx = Array.unsafe_get order p in
      let q = idx / bits in
      Array.unsafe_set w q (Array.unsafe_get w q lor (1 lsl (idx mod bits)))
    done

(* Fill one condition's bitset over the whole dataset. The direct-sweep
   variants each get their own word-structured loop: the outer loop
   advances one output word (= [bits] records) at a time, the inner
   loop is a direct array read + branchless compare-to-bit (no closure
   dispatch per record), which is what makes a sweep ~1-2 ns per
   record. The interval variant does no sweep at all: it scatters only
   the covered records — or, for wide intervals, the uncovered ones
   followed by a word-wise complement — so its cost is
   O(min(covered, n - covered)), not O(n). *)
let fill prep bs =
  let w = Bitset.words bs in
  let n = Bitset.length bs in
  match prep with
  | P_cat (codes, v) ->
    let wi = ref 0 and base = ref 0 in
    while !base < n do
      let b0 = !base in
      let m = min bits (n - b0) in
      let acc = ref 0 in
      for b = 0 to m - 1 do
        acc := !acc lor (Bool.to_int (Array.unsafe_get codes (b0 + b) = v) lsl b)
      done;
      Array.unsafe_set w !wi !acc;
      incr wi;
      base := b0 + m
    done
  | P_le (values, thr) ->
    let wi = ref 0 and base = ref 0 in
    while !base < n do
      let b0 = !base in
      let m = min bits (n - b0) in
      let acc = ref 0 in
      for b = 0 to m - 1 do
        acc := !acc lor (Bool.to_int (Array.unsafe_get values (b0 + b) <= thr) lsl b)
      done;
      Array.unsafe_set w !wi !acc;
      incr wi;
      base := b0 + m
    done
  | P_ge (values, thr) ->
    let wi = ref 0 and base = ref 0 in
    while !base < n do
      let b0 = !base in
      let m = min bits (n - b0) in
      let acc = ref 0 in
      for b = 0 to m - 1 do
        acc := !acc lor (Bool.to_int (Array.unsafe_get values (b0 + b) >= thr) lsl b)
      done;
      Array.unsafe_set w !wi !acc;
      incr wi;
      base := b0 + m
    done
  | P_range (values, range_lo, range_hi) ->
    let wi = ref 0 and base = ref 0 in
    while !base < n do
      let b0 = !base in
      let m = min bits (n - b0) in
      let acc = ref 0 in
      for b = 0 to m - 1 do
        let v = Array.unsafe_get values (b0 + b) in
        acc := !acc lor (Bool.to_int (range_lo <= v && v <= range_hi) lsl b)
      done;
      Array.unsafe_set w !wi !acc;
      incr wi;
      base := b0 + m
    done
  | P_interval (order, cut_lo, cut_hi) ->
    let covered = cut_hi - cut_lo in
    if 2 * covered <= n then set_interval order w ~p_lo:cut_lo ~p_hi:cut_hi
    else begin
      (* Wide interval: scatter the complement, then flip. *)
      set_interval order w ~p_lo:0 ~p_hi:cut_lo;
      set_interval order w ~p_lo:cut_hi ~p_hi:n;
      let nw = Array.length w in
      for j = 0 to nw - 1 do
        Array.unsafe_set w j (lnot (Array.unsafe_get w j))
      done;
      let r = n mod bits in
      if r <> 0 && nw > 0 then w.(nw - 1) <- w.(nw - 1) land ((1 lsl r) - 1)
    end

(* ------------------------------------------------------------------ *)
(* Word-at-a-time first-match resolution                                *)
(* ------------------------------------------------------------------ *)

(* First-match resolution for one rule list over one chunk of records.
   [cond_words] are the full-length word arrays of the global condition
   bitsets; this chunk reads them at word offset [lo / bits] and writes
   only its own slice of [out]. [out] is prefilled with -1; only hits
   are written, each record at most once (its bit leaves [unresolved]
   the moment a rule claims it). *)
let resolve rules cond_words out ~lo ~len =
  let unresolved = Bitset.full len in
  let hit = Bitset.create len in
  let nw = Bitset.words_for len in
  let w0 = lo / bits in
  let uw = Bitset.words unresolved and hw = Bitset.words hit in
  let n_rules = Array.length rules in
  let k = ref 0 and live = ref (len > 0) in
  while !live && !k < n_rules do
    let conds = rules.(!k) in
    Array.blit uw 0 hw 0 nw;
    for ci = 0 to Array.length conds - 1 do
      let cw = Array.unsafe_get cond_words (Array.unsafe_get conds ci) in
      for j = 0 to nw - 1 do
        Array.unsafe_set hw j
          (Array.unsafe_get hw j land Array.unsafe_get cw (w0 + j))
      done
    done;
    let rule_idx = !k in
    let any_left = ref false in
    for wi = 0 to nw - 1 do
      let h = Array.unsafe_get hw wi in
      if h <> 0 then begin
        let word = ref h and idx = ref (lo + (wi * bits)) in
        while !word <> 0 do
          if !word land 1 <> 0 then Array.unsafe_set out !idx rule_idx;
          word := !word lsr 1;
          incr idx
        done;
        Array.unsafe_set uw wi (Array.unsafe_get uw wi land lnot h)
      end;
      if Array.unsafe_get uw wi <> 0 then any_left := true
    done;
    live := !any_left;
    incr k
  done

let eval ?pool t ds =
  let n = Dataset.n_records ds in
  let out = Array.map (fun _ -> Array.make n (-1)) t.lists in
  if n > 0 && Array.length t.lists > 0 then begin
    let preps = Array.map (prepare ds) t.conditions in
    let pool =
      match pool with Some p -> p | None -> Pn_util.Pool.get_default ()
    in
    let n_conds = Array.length preps in
    let cond_sets = Array.map (fun _ -> Bitset.create n) preps in
    (* Phase 1: one bitset per distinct condition, each job owning its
       own bitset. Phase 2: first-match resolution, each job owning a
       word-aligned slice of the output arrays. Both phases write
       disjoint memory, so the result is identical at any pool size. *)
    if n_conds > 0 then
      ignore
        (Pn_util.Pool.map_array pool n_conds (fun ci ->
             fill preps.(ci) cond_sets.(ci)));
    let cond_words = Array.map Bitset.words cond_sets in
    let n_chunks = ((n - 1) / records_per_chunk) + 1 in
    ignore
      (Pn_util.Pool.map_array pool n_chunks (fun chunk ->
           let lo = chunk * records_per_chunk in
           let len = min records_per_chunk (n - lo) in
           Array.iteri
             (fun l rules -> resolve rules cond_words out.(l) ~lo ~len)
             t.lists))
  end;
  out

let first_match_all ?pool rules ds = (eval ?pool (compile [| rules |]) ds).(0)
