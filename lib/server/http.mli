(** Minimal from-scratch HTTP/1.1 server-side protocol layer.

    One {!conn} per accepted socket, holding a preallocated read buffer
    that lives for the whole connection (keep-alive requests reuse it).
    Requests are parsed with bounded header size; bodies are exposed as
    a refill function compatible with {!Pn_data.Stream.of_refill}, so a
    predict body streams straight off the socket without ever being
    materialized.

    Writes are SIGPIPE-safe by construction provided the process ignores
    SIGPIPE (the server installs that): a peer that went away surfaces
    as {!Disconnect}, never as a signal. *)

(** The request could not be parsed; answer 400 and close. *)
exception Bad_request of string

(** The peer closed or reset the connection. *)
exception Disconnect

(** A read exceeded the socket receive timeout. *)
exception Timeout

type conn

(** [make_conn fd] wraps an accepted socket. [buf_size] is the
    per-connection read buffer (default 64 KiB). [write_fault] names the
    fault point passed on every write (default ["serve.chunk_write"]);
    [read_fault], when given, names one passed on every buffered read —
    the router's proxy legs use ["router.proxy_write"] /
    ["router.proxy_read"] so chaos runs can fail either direction of a
    proxied request deterministically. The caller closes [fd]. *)
val make_conn :
  ?buf_size:int ->
  ?write_fault:string ->
  ?read_fault:string ->
  Unix.file_descr ->
  conn

val fd : conn -> Unix.file_descr

(** [take_io_retries c] returns the transient write errors retried on
    this connection since the last call, and zeroes the counter — the
    handler drains it once per request into the telemetry slot. Writes
    retry EINTR/EAGAIN (and faults injected at [serve.chunk_write]) a
    bounded number of times with jittered exponential backoff. *)
val take_io_retries : conn -> int

type request = {
  meth : string;  (** uppercase, e.g. ["GET"] *)
  path : string;  (** percent-decoded, without the query string *)
  query : (string * string) list;  (** decoded key/value pairs, in order *)
  version : string;  (** ["HTTP/1.1"] *)
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  content_length : int option;
  chunked_body : bool;  (** Transfer-Encoding: chunked request body *)
  keep_alive : bool;  (** what the client asked for *)
}

(** First value of header [name] (give it lowercased). *)
val header : request -> string -> string option

(** [read_request conn] blocks for and parses one request head. Raises
    {!Bad_request} (malformed or oversized head), {!Disconnect} (EOF
    before a complete head — clean EOF between requests included),
    {!Timeout}. [max_header] bounds the head size (default 8 KiB). *)
val read_request : ?max_header:int -> conn -> request

(** [body_reader conn ~length] is a refill function that yields exactly
    [length] body bytes then 0, suitable for
    {!Pn_data.Stream.of_refill}. Raises {!Disconnect} if the peer closes
    early, {!Timeout} on a stalled read. *)
val body_reader : conn -> length:int -> bytes -> int

(** [wait_readable conn ~timeout ~stop] waits for the next request on a
    keep-alive connection: polls in short slices so a drain ([stop ()]
    turning true) is noticed promptly. [`Readable] may also mean EOF —
    the next read will raise {!Disconnect}. *)
val wait_readable :
  conn -> timeout:float -> stop:(unit -> bool) -> [ `Readable | `Timeout | `Stopped ]

(** [respond conn ~status ~body ()] writes a complete response with
    [Content-Length]. [content_type] defaults to [text/plain].
    [keep_alive] (default false) selects the [Connection] header.
    [headers] appends extra response headers (lowercase names),
    e.g. [("retry-after", "1")] on a 503. *)
val respond :
  conn ->
  ?content_type:string ->
  ?keep_alive:bool ->
  ?headers:(string * string) list ->
  status:int ->
  body:string ->
  unit ->
  unit

(** [deny fd ~status ~retry_after ~body] writes one canned refusal
    (with a [Retry-After] header) straight to a raw accepted socket —
    the listener's load-shedding path, used before any {!conn} exists.
    Single best-effort write, never raises, never blocks on a slow
    peer; the caller closes [fd]. *)
val deny : Unix.file_descr -> status:int -> retry_after:int -> body:string -> unit

(** [continue_100 conn] writes the interim [100 Continue] response. *)
val continue_100 : conn -> unit

(** Deferred streaming response: nothing reaches the socket until the
    buffered output crosses a threshold, so a handler that fails early
    (schema mismatch, row limit) can still discard it and send a clean
    error status instead. Once started, the response is chunked; a
    failure after that point can only abort the connection. *)
type stream_response

(** [start_stream conn ~status ~keep_alive ()] creates a deferred
    response. [threshold] is the buffered-bytes point at which the head
    plus first chunk hit the socket (default 16 KiB). *)
val start_stream :
  conn ->
  ?content_type:string ->
  ?threshold:int ->
  status:int ->
  keep_alive:bool ->
  unit ->
  stream_response

(** Whether any byte of this response has reached the socket. *)
val stream_started : stream_response -> bool

(** Append body output (sent as one transfer chunk once streaming). *)
val stream_write : stream_response -> string -> unit

(** Finish the response: a small never-started response degrades to a
    plain [Content-Length] one; a started response gets its final
    chunk. *)
val stream_finish : stream_response -> unit

val status_text : int -> string

(** [url_encode s] percent-encodes everything outside the RFC 3986
    unreserved set; with [plus_space] a space becomes ['+'] (form
    encoding). Inverse of [url_decode] under the same [plus_space]. *)
val url_encode : ?plus_space:bool -> string -> string

(** [encode_query q] re-serializes a parsed query string such that
    {!parse_query} [(encode_query q) = q] for any [q] — the router
    depends on this round-trip when proxying. *)
val encode_query : (string * string) list -> string

val url_decode : ?plus_space:bool -> string -> string
val parse_query : string -> (string * string) list

(** {1 Client half}

    The same buffered conn, framing code and exceptions, pointed at the
    other side of the wire. Used by the shard router for proxy legs,
    health probes and metrics scrapes. A response that cannot be parsed
    raises {!Bad_request} (the router maps it to a 502); EOF before or
    inside a response raises {!Disconnect} (retryable — the backend
    died); a stalled backend raises {!Timeout} via the socket receive
    timeout, never a hang. *)

type response = {
  status : int;
  reason : string;
  rheaders : (string * string) list;  (** names lowercased *)
  body : string;  (** fully buffered; chunked bodies are de-chunked *)
}

(** First value of response header [name] (give it lowercased). *)
val rheader : response -> string -> string option

(** [connect ~host ~port ~timeout ()] opens a TCP connection with
    [TCP_NODELAY] and both socket timeouts set to [timeout].
    [write_fault]/[read_fault] as in {!make_conn}. Raises
    [Unix.Unix_error] on connect failure (the fd is closed). *)
val connect :
  ?buf_size:int ->
  ?write_fault:string ->
  ?read_fault:string ->
  host:string ->
  port:int ->
  timeout:float ->
  unit ->
  conn

(** Close the underlying fd, ignoring errors. *)
val close : conn -> unit

(** [send_request c ~meth ~target ()] writes one request head (plus
    [body], framed with [Content-Length], when given). [headers] are
    written as-is; pass [("connection", "close")] for one-shot use. *)
val send_request :
  conn ->
  meth:string ->
  target:string ->
  ?headers:(string * string) list ->
  ?body:string ->
  unit ->
  unit

(** [read_response c] blocks for and fully buffers one response.
    [max_header] bounds the head (default 16 KiB), [max_body] the
    decoded body (default unbounded). Raises {!Bad_request},
    {!Disconnect}, {!Timeout} as described above. *)
val read_response : ?max_header:int -> ?max_body:int -> conn -> response
