(** Minimal from-scratch HTTP/1.1 server-side protocol layer.

    One {!conn} per accepted socket, holding a preallocated read buffer
    that lives for the whole connection (keep-alive requests reuse it).
    Requests are parsed with bounded header size; bodies are exposed as
    a refill function compatible with {!Pn_data.Stream.of_refill}, so a
    predict body streams straight off the socket without ever being
    materialized.

    Writes are SIGPIPE-safe by construction provided the process ignores
    SIGPIPE (the server installs that): a peer that went away surfaces
    as {!Disconnect}, never as a signal. *)

(** The request could not be parsed; answer 400 and close. *)
exception Bad_request of string

(** The peer closed or reset the connection. *)
exception Disconnect

(** A read exceeded the socket receive timeout. *)
exception Timeout

type conn

(** [make_conn fd] wraps an accepted socket. [buf_size] is the
    per-connection read buffer (default 64 KiB). The caller closes [fd]. *)
val make_conn : ?buf_size:int -> Unix.file_descr -> conn

val fd : conn -> Unix.file_descr

(** [take_io_retries c] returns the transient write errors retried on
    this connection since the last call, and zeroes the counter — the
    handler drains it once per request into the telemetry slot. Writes
    retry EINTR/EAGAIN (and faults injected at [serve.chunk_write]) a
    bounded number of times with jittered exponential backoff. *)
val take_io_retries : conn -> int

type request = {
  meth : string;  (** uppercase, e.g. ["GET"] *)
  path : string;  (** percent-decoded, without the query string *)
  query : (string * string) list;  (** decoded key/value pairs, in order *)
  version : string;  (** ["HTTP/1.1"] *)
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  content_length : int option;
  chunked_body : bool;  (** Transfer-Encoding: chunked request body *)
  keep_alive : bool;  (** what the client asked for *)
}

(** First value of header [name] (give it lowercased). *)
val header : request -> string -> string option

(** [read_request conn] blocks for and parses one request head. Raises
    {!Bad_request} (malformed or oversized head), {!Disconnect} (EOF
    before a complete head — clean EOF between requests included),
    {!Timeout}. [max_header] bounds the head size (default 8 KiB). *)
val read_request : ?max_header:int -> conn -> request

(** [body_reader conn ~length] is a refill function that yields exactly
    [length] body bytes then 0, suitable for
    {!Pn_data.Stream.of_refill}. Raises {!Disconnect} if the peer closes
    early, {!Timeout} on a stalled read. *)
val body_reader : conn -> length:int -> bytes -> int

(** [wait_readable conn ~timeout ~stop] waits for the next request on a
    keep-alive connection: polls in short slices so a drain ([stop ()]
    turning true) is noticed promptly. [`Readable] may also mean EOF —
    the next read will raise {!Disconnect}. *)
val wait_readable :
  conn -> timeout:float -> stop:(unit -> bool) -> [ `Readable | `Timeout | `Stopped ]

(** [respond conn ~status ~body ()] writes a complete response with
    [Content-Length]. [content_type] defaults to [text/plain].
    [keep_alive] (default false) selects the [Connection] header.
    [headers] appends extra response headers (lowercase names),
    e.g. [("retry-after", "1")] on a 503. *)
val respond :
  conn ->
  ?content_type:string ->
  ?keep_alive:bool ->
  ?headers:(string * string) list ->
  status:int ->
  body:string ->
  unit ->
  unit

(** [deny fd ~status ~retry_after ~body] writes one canned refusal
    (with a [Retry-After] header) straight to a raw accepted socket —
    the listener's load-shedding path, used before any {!conn} exists.
    Single best-effort write, never raises, never blocks on a slow
    peer; the caller closes [fd]. *)
val deny : Unix.file_descr -> status:int -> retry_after:int -> body:string -> unit

(** [continue_100 conn] writes the interim [100 Continue] response. *)
val continue_100 : conn -> unit

(** Deferred streaming response: nothing reaches the socket until the
    buffered output crosses a threshold, so a handler that fails early
    (schema mismatch, row limit) can still discard it and send a clean
    error status instead. Once started, the response is chunked; a
    failure after that point can only abort the connection. *)
type stream_response

(** [start_stream conn ~status ~keep_alive ()] creates a deferred
    response. [threshold] is the buffered-bytes point at which the head
    plus first chunk hit the socket (default 16 KiB). *)
val start_stream :
  conn ->
  ?content_type:string ->
  ?threshold:int ->
  status:int ->
  keep_alive:bool ->
  unit ->
  stream_response

(** Whether any byte of this response has reached the socket. *)
val stream_started : stream_response -> bool

(** Append body output (sent as one transfer chunk once streaming). *)
val stream_write : stream_response -> string -> unit

(** Finish the response: a small never-started response degrades to a
    plain [Content-Length] one; a started response gets its final
    chunk. *)
val stream_finish : stream_response -> unit

val status_text : int -> string
