(** Endpoint logic of the prediction daemon, one call per request.

    The handler owns the hot-swappable model state: an [Atomic.t] whose
    value is replaced wholesale on reload, so a request reads the model
    exactly once at dispatch and keeps scoring on that snapshot even if
    a reload lands mid-request — in-flight requests always finish on the
    model they started with. *)

(** One loaded model generation. *)
type state = {
  model : Pnrule.Saved.t;
  generation : int;  (** 1 for the initial load, +1 per successful reload *)
  loaded_at : float;  (** unix time of the swap *)
}

type t

(** [create ~load ~telemetry ...] loads the initial model via [load]
    (exceptions propagate) and fixes the serving parameters. [deadline]
    is the per-request wall-clock budget in seconds (0 disables it); a
    request that overruns it — checked on every body refill and every
    response write — is answered 408 (or aborted if the response already
    started). [draining] is shared with the accept loop: when true,
    responses stop offering keep-alive and [/healthz] turns 503. *)
val create :
  load:(unit -> Pnrule.Saved.t) ->
  telemetry:Telemetry.t ->
  policy:Pn_data.Ingest_report.policy ->
  chunk_size:int ->
  max_body:int ->
  max_rows:int ->
  deadline:float ->
  draining:bool Atomic.t ->
  t

val telemetry : t -> Telemetry.t

(** Current model snapshot. *)
val state : t -> state

(** Bumped by the accept loop; surfaced on [/metrics]. *)
val connections : t -> int Atomic.t

(** Bumped by the listener when it respawns a dead worker domain;
    surfaced on [/metrics] as [pnrule_worker_restarts_total]. *)
val worker_restarts : t -> int Atomic.t

(** [reload t] runs [load] and atomically swaps the model in. On
    failure the old model stays and the failure is counted (surfaced on
    [/metrics] as [pnrule_model_reload_failures_total]). *)
val reload : t -> (unit, string) result

(** [handle t ~slot conn] reads one request off [conn], dispatches it,
    writes the response, and records telemetry into [slot]. Returns
    whether the connection may serve another request. Never raises:
    protocol errors become 4xx responses, handler bugs become 500s, and
    a vanished peer becomes [`Close]. *)
val handle : t -> slot:Telemetry.slot -> Http.conn -> [ `Keep | `Close ]
