(** Endpoint logic of the prediction daemon, one call per request.

    The handler owns the hot-swappable model state: an [Atomic.t] whose
    value is replaced wholesale on reload or rollout, so a request reads
    the model exactly once at dispatch and keeps scoring on that
    snapshot even if a flip lands mid-request — in-flight requests
    always finish on the model they started with. *)

(** One loaded model generation. *)
type state = {
  model : Pnrule.Saved.t;
  generation : int;
      (** [Loader] source: 1 for the initial load, +1 per successful
          reload. [Registry] source: the on-disk generation number. *)
  loaded_at : float;  (** unix time of the swap *)
  expectations : Pnrule.Saved.expectations option;
      (** training-time coverage expectations carried by a v4 model
          file, if any — what the drift monitor compares against *)
}

(** Where models come from. A [Loader] is re-run on every reload and
    generations are a local counter; a [Registry] makes generations
    on-disk facts and enables [POST /admin/rollout] / [/admin/rollback]
    staged flips. *)
type source =
  | Loader of (unit -> Pnrule.Saved.t)
  | Registry of Pnrule.Registry.t

type t

(** [create ~source ~telemetry ...] loads the initial model from
    [source] (exceptions propagate) and fixes the serving parameters.
    [deadline] is the per-request wall-clock budget in seconds (0
    disables it); a request that overruns it — checked on every body
    refill and every response write — is answered 408 (or aborted if
    the response already started). [draining] is shared with the accept
    loop: when true, responses stop offering keep-alive, [/healthz]
    turns 503 and new predict requests are shed. [queued] is the shared
    count of accepted-but-unserved connections and [queue_limit] the
    admission bound, both surfaced on [/metrics]. *)
val create :
  source:source ->
  telemetry:Telemetry.t ->
  policy:Pn_data.Ingest_report.policy ->
  chunk_size:int ->
  max_body:int ->
  max_rows:int ->
  deadline:float ->
  draining:bool Atomic.t ->
  queued:int Atomic.t ->
  queue_limit:int ->
  t

val telemetry : t -> Telemetry.t

(** Current model snapshot. *)
val state : t -> state

(** Bumped by the accept loop; surfaced on [/metrics]. *)
val connections : t -> int Atomic.t

(** Bumped by the listener when it respawns a dead worker domain;
    surfaced on [/metrics] as [pnrule_worker_restarts_total]. *)
val worker_restarts : t -> int Atomic.t

(** [note_shed t reason] counts one load-shedding refusal, surfaced as
    [pnrule_shed_total{reason=...}]. [`Overload] is bumped by the
    listener's admission control, [`Draining] and [`Warming] by the
    handler itself. *)
val note_shed : t -> [ `Overload | `Draining | `Warming ] -> unit

(** [admission_load t] is in-flight requests plus
    accepted-but-unserved connections — what the listener compares
    against the queue limit before admitting a connection. *)
val admission_load : t -> int

(** [reload t] re-resolves the source and atomically swaps the model
    in: a [Loader] is re-run (generation +1), a [Registry] re-resolves
    its CURRENT pointer — a plain reload never advances past what the
    pointer names. On failure the old model stays and the failure is
    counted (surfaced as [pnrule_model_reload_failures_total]). *)
val reload : t -> (unit, string) result

(** [rollout t ~back ~gen] performs one staged flip against a
    [Registry] source: pick the target generation ([gen] if given, else
    the next above the serving one — or below for [~back:true]), load
    it, warm it (compile + canary-score), persist the CURRENT pointer,
    and only then swap the serving snapshot. Any failure leaves the old
    generation serving. [`Busy] means another flip holds the admin
    lock; [`No_registry] that the daemon runs from a plain model file;
    [`Failed (cur, msg)] that the candidate was rejected and [cur] is
    still serving. *)
val rollout :
  t ->
  back:bool ->
  gen:int option ->
  ( int,
    [ `Busy
    | `No_registry
    | `No_candidate of string
    | `Failed of int * string ] )
  result

(** [set_adapt t r] attaches an online-adaptation retrainer: predict
    and feedback bodies start feeding its drift monitor, [/feedback]
    and [GET /admin/drift] come alive, and the monitor is (re)synced to
    the serving model's expectations now and on every future model
    swap. Call once, before serving traffic. *)
val set_adapt : t -> Pn_adapt.Retrainer.t -> unit

val adapt : t -> Pn_adapt.Retrainer.t option

(** [handle t ~slot ~index conn] reads one request off [conn],
    dispatches it, writes the response, and records telemetry into
    [slot] ([index] is the worker's slot index, used to address the
    drift monitor's per-domain counters). Returns whether the
    connection may serve another request. Never raises: protocol errors
    become 4xx responses, handler bugs become 500s, and a vanished peer
    becomes [`Close]. *)
val handle :
  t -> slot:Telemetry.slot -> index:int -> Http.conn -> [ `Keep | `Close ]
