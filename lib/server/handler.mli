(** Endpoint logic of the prediction daemon, one call per request.

    The handler owns the hot-swappable model state: an [Atomic.t] whose
    value is replaced wholesale on reload, so a request reads the model
    exactly once at dispatch and keeps scoring on that snapshot even if
    a reload lands mid-request — in-flight requests always finish on the
    model they started with. *)

(** One loaded model generation. *)
type state = {
  model : Pnrule.Model.t;
  generation : int;  (** 1 for the initial load, +1 per successful reload *)
  loaded_at : float;  (** unix time of the swap *)
}

type t

(** [create ~load ~telemetry ...] loads the initial model via [load]
    (exceptions propagate) and fixes the serving parameters. [draining]
    is shared with the accept loop: when true, responses stop offering
    keep-alive and [/healthz] turns 503. *)
val create :
  load:(unit -> Pnrule.Model.t) ->
  telemetry:Telemetry.t ->
  policy:Pn_data.Ingest_report.policy ->
  chunk_size:int ->
  max_body:int ->
  max_rows:int ->
  draining:bool Atomic.t ->
  t

val telemetry : t -> Telemetry.t

(** Current model snapshot. *)
val state : t -> state

(** Bumped by the accept loop; surfaced on [/metrics]. *)
val connections : t -> int Atomic.t

(** [reload t] runs [load] and atomically swaps the model in. On
    failure the old model stays and the failure is counted (surfaced on
    [/metrics] as [pnrule_model_reload_failures_total]). *)
val reload : t -> (unit, string) result

(** [handle t ~slot conn] reads one request off [conn], dispatches it,
    writes the response, and records telemetry into [slot]. Returns
    whether the connection may serve another request. Never raises:
    protocol errors become 4xx responses, handler bugs become 500s, and
    a vanished peer becomes [`Close]. *)
val handle : t -> slot:Telemetry.slot -> Http.conn -> [ `Keep | `Close ]
