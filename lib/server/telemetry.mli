(** Serving metrics: lock-free per-domain counters, merged at scrape.

    Every worker domain owns one {!slot} and is the only writer to it, so
    recording a request is a handful of uncontended atomic stores — no
    lock, no shared cache line ping-pong on the hot path. A scrape
    ([/metrics]) walks all slots and sums, which is the only cross-domain
    read; slightly stale per-slot values are acceptable there by design.

    Rendered in the Prometheus text exposition format (version 0.0.4). *)

type t

(** One worker domain's private counter block. *)
type slot

type endpoint =
  | Predict
  | Healthz
  | Model_info
  | Metrics
  | Admin  (** the /admin/rollout and /admin/rollback endpoints *)
  | Feedback  (** the /feedback labeled-stream endpoint *)
  | Other  (** unknown paths, unparsable requests *)

(** [create ~slots] preallocates [slots] counter blocks (one per worker
    domain). *)
val create : slots:int -> t

(** [slot t i] is worker [i]'s block ([0 <= i < slots]). *)
val slot : t -> int -> slot

(** Histogram bucket upper bounds, in seconds. *)
val buckets : float array

(** [observe slot ep ~status ~seconds] records one finished request:
    bumps the request counter, the error counter when [status >= 400],
    and the latency histogram of [ep]. *)
val observe : slot -> endpoint -> status:int -> seconds:float -> unit

(** [add_rows slot ~rows_in ~rows_out] accounts one predict body:
    [rows_in] data rows decoded (kept or skipped), [rows_out] prediction
    lines written. *)
val add_rows : slot -> rows_in:int -> rows_out:int -> unit

(** [add_retries slot n] accounts [n] transient IO errors that were
    retried (stream refills and response writes) — exported as
    [pnrule_io_retries_total]. *)
val add_retries : slot -> int -> unit

(** The in-flight request gauge (shared; incremented when a request has
    been parsed, decremented when its response is done). *)
val in_flight_incr : t -> unit

val in_flight_decr : t -> unit

(** Current value of the in-flight gauge. Read by the listener's
    admission control on every accept, so it must stay an O(1) atomic
    load. *)
val in_flight_count : t -> int

(** [render t ~extra] merges all slots and renders the exposition text.
    [extra] may append additional, caller-owned metric lines (the server
    adds model generation / reload counters). *)
val render : t -> extra:(Buffer.t -> unit) -> string
