(** The resident prediction daemon: a TCP listener domain feeding a
    fixed pool of worker domains over a blocking queue.

    Lifecycle:
    - {!start} loads the model, binds the socket, spawns the domains and
      returns immediately;
    - SIGHUP (or {!reload}) swaps the model atomically — requests in
      flight finish on the model they started with;
    - SIGTERM/SIGINT (or {!stop}) drains gracefully: the listener stops
      accepting, already-accepted connections are served to completion,
      idle keep-alive connections are closed, workers are joined.

    Signals only flip atomics; the listener loop notices them within
    ~50 ms and does the actual work, so handlers stay trivial. SIGPIPE
    is ignored for the whole process while a server runs — a vanished
    client surfaces as an [EPIPE] that the HTTP layer turns into a
    closed connection, never a killed process.

    The listener is also the admission controller: every accepted
    connection is checked against [queue_limit] (in-flight plus queued
    work) and refused with a canned [429] + [Retry-After] when the
    daemon is saturated — accepted work is never dropped, new work is
    shed at accept speed. Refusals are counted per reason as
    [pnrule_shed_total].

    The listener also supervises the worker pool: a worker domain that
    dies on an escaped exception flags itself, and the listener joins
    the corpse and respawns a fresh domain into the same slot (same
    telemetry index) within ~50 ms. Restarts are counted and exported as
    [pnrule_worker_restarts_total]. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port; see {!port} *)
  domains : int;  (** worker domains, 1..64 *)
  policy : Pn_data.Ingest_report.policy;  (** default row policy *)
  chunk_size : int;  (** rows decoded/scored per batch *)
  max_body : int;  (** request body byte limit (413 beyond) *)
  max_rows : int;  (** rows-per-request limit (413 beyond) *)
  idle_timeout : float;
      (** seconds a keep-alive connection may sit idle; also the
          per-read stall timeout inside a request *)
  deadline : float;
      (** per-request wall-clock budget in seconds; 0 disables it. A
          predict request that overruns it is answered 408 (or aborted
          mid-stream). *)
  backlog : int;  (** kernel [listen(2)] backlog, 1..65535 *)
  queue_limit : int;
      (** admission limit: once in-flight requests plus
          accepted-but-unserved connections reach this, new connections
          are refused with [429] + [Retry-After] instead of queued *)
  adapt : Pn_adapt.Retrainer.config option;
      (** online adaptation: [Some cfg] attaches a drift monitor fed
          from predict/feedback traffic and a background retrainer that
          publishes and rolls out new generations on detection. Requires
          a {!Handler.Registry} source — [start] raises
          [Invalid_argument] otherwise. *)
}

(** [{host = "127.0.0.1"; port = 0; domains = 1; policy = Strict;
    chunk_size = 8192; max_body = 64 MiB; max_rows = 1_000_000;
    idle_timeout = 5.0; deadline = 0.0; backlog = 128;
    queue_limit = 256; adapt = None}] *)
val default_config : config

type t

(** [start ~config ~source ()] — [source] produces the initial model
    now (exceptions propagate): a {!Handler.Loader} is re-run on every
    reload, a {!Handler.Registry} serves its CURRENT generation and
    enables [POST /admin/rollout] / [/admin/rollback]. Raises
    [Invalid_argument] on an out-of-range config, [Unix.Unix_error] if
    the bind fails. *)
val start : ?config:config -> source:Handler.source -> unit -> t

(** The actually-bound port (useful with [port = 0]). *)
val port : t -> int

(** Current model generation (loader source: 1 = initial load;
    registry source: the on-disk generation number). *)
val generation : t -> int

(** Synchronous reload — what SIGHUP triggers asynchronously. *)
val reload : t -> (unit, string) result

(** Flip the reload flag from a signal handler; the listener performs
    the reload within ~50 ms. *)
val request_reload : t -> unit

(** Flip the stop flag; the listener begins the graceful drain within
    ~50 ms. Signal-safe. *)
val request_stop : t -> unit

(** Block until the drain completes and all domains are joined. *)
val join : t -> unit

(** [request_stop] + [join]. Idempotent. *)
val stop : t -> unit

(** Install SIGHUP → reload, SIGTERM/SIGINT → stop for this server. *)
val install_signals : t -> unit
