exception Bad_request of string
exception Disconnect
exception Timeout

type conn = {
  fd : Unix.file_descr;
  rbuf : bytes;
  mutable rpos : int;
  mutable rlen : int;
  mutable wretries : int;
  write_fault : string;
  read_fault : string option;
}

let make_conn ?(buf_size = 65536) ?(write_fault = "serve.chunk_write")
    ?read_fault fd =
  if buf_size <= 0 then invalid_arg "Http.make_conn: buf_size";
  {
    fd;
    rbuf = Bytes.create buf_size;
    rpos = 0;
    rlen = 0;
    wretries = 0;
    write_fault;
    read_fault;
  }

let fd c = c.fd

(* Write-side retry accounting, drained once per request by the handler
   so keep-alive connections never double-count. *)
let take_io_retries c =
  let n = c.wretries in
  c.wretries <- 0;
  n

(* ------------------------------------------------------------------ *)
(* Raw IO                                                               *)
(* ------------------------------------------------------------------ *)

(* Refill the connection buffer; false means EOF. The socket carries
   SO_RCVTIMEO, so a stalled peer surfaces as [Timeout], not a hung
   worker. *)
let refill c =
  let rec go () =
    match
      let want = Bytes.length c.rbuf in
      let want =
        (* Client-side conns (the router's proxy legs) carry a named
           read fault point so chaos runs can starve or kill the read
           deterministically; server conns read clean. *)
        match c.read_fault with
        | None -> want
        | Some p -> max 1 (Pn_util.Fault.cap p want)
      in
      Unix.read c.fd c.rbuf 0 want
    with
    | 0 -> false
    | n ->
      c.rpos <- 0;
      c.rlen <- n;
      true
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      (* Only fault-instrumented (client) conns count read retries:
         server-side [pnrule_io_retries_total] keeps its historical
         write-only meaning. *)
      if c.read_fault <> None then c.wretries <- c.wretries + 1;
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      raise Timeout
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      raise Disconnect
  in
  go ()

(* Transient write errors get a bounded, backed-off retry budget per
   write call (EINTR used to spin-retry unboundedly — an EINTR storm
   could wedge a worker). The [serve.chunk_write] fault point can cut a
   write short or inject those errors; short writes are naturally safe
   because the loop resumes at the new offset. *)
let max_write_retries = 5

let write_all c s =
  let len = String.length s in
  let rec go off attempts =
    if off < len then
      match
        let want = Pn_util.Fault.cap c.write_fault (len - off) in
        Unix.write_substring c.fd s off want
      with
      | n -> go (off + n) 0
      | exception
          Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        when attempts < max_write_retries ->
        c.wretries <- c.wretries + 1;
        Pn_util.Backoff.sleep ~attempt:attempts ();
        go off (attempts + 1)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        raise Disconnect
  in
  go 0 0

let wait_readable c ~timeout ~stop =
  if c.rpos < c.rlen then `Readable
  else begin
    let deadline = Unix.gettimeofday () +. timeout in
    let rec loop () =
      if stop () then `Stopped
      else begin
        let now = Unix.gettimeofday () in
        if now >= deadline then `Timeout
        else begin
          let slice = Float.min 0.1 (deadline -. now) in
          match Unix.select [ c.fd ] [] [] slice with
          | [ _ ], _, _ -> `Readable
          | _ -> loop ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        end
      end
    in
    loop ()
  end

(* ------------------------------------------------------------------ *)
(* Request parsing                                                      *)
(* ------------------------------------------------------------------ *)

type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  version : string;
  headers : (string * string) list;
  content_length : int option;
  chunked_body : bool;
  keep_alive : bool;
}

let header req name = List.assoc_opt name req.headers

let hex_value c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let url_decode ?(plus_space = false) s =
  if not (String.contains s '%' || (plus_space && String.contains s '+')) then s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      (match s.[!i] with
      | '%' ->
        (* Both malformed shapes — "%2" cut off by the end of the
           string and "%zz" with non-hex digits — must fail identically
           here: Bad_request becomes a deterministic 400 upstream,
           never an escaped exception or a silently mangled byte. *)
        if !i + 2 >= n then
          raise
            (Bad_request
               (Printf.sprintf "truncated percent-encoding %S"
                  (String.sub s !i (n - !i))));
        (match (hex_value s.[!i + 1], hex_value s.[!i + 2]) with
        | Some hi, Some lo -> Buffer.add_char buf (Char.chr ((16 * hi) + lo))
        | _ ->
          raise
            (Bad_request
               (Printf.sprintf "invalid percent-encoding %S"
                  (String.sub s !i 3))));
        i := !i + 2
      | '+' when plus_space -> Buffer.add_char buf ' '
      | c -> Buffer.add_char buf c);
      incr i
    done;
    Buffer.contents buf
  end

let parse_query s =
  if s = "" then []
  else
    String.split_on_char '&' s
    |> List.filter_map (fun kv ->
           if kv = "" then None
           else
             match String.index_opt kv '=' with
             | None -> Some (url_decode ~plus_space:true kv, "")
             | Some eq ->
               Some
                 ( url_decode ~plus_space:true (String.sub kv 0 eq),
                   url_decode ~plus_space:true
                     (String.sub kv (eq + 1) (String.length kv - eq - 1)) ))

(* Inverse of [url_decode]: unreserved bytes pass through, everything
   else becomes %XX (or '+' for space when [plus_space]). The pair is a
   true round-trip — the router re-serializes a parsed query string
   when proxying, so decode∘encode must be the identity. *)
let url_encode ?(plus_space = false) s =
  let unreserved = function
    | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '-' | '.' | '_' | '~' -> true
    | _ -> false
  in
  if String.for_all unreserved s then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun ch ->
        if unreserved ch then Buffer.add_char buf ch
        else if ch = ' ' && plus_space then Buffer.add_char buf '+'
        else Printf.bprintf buf "%%%02X" (Char.code ch))
      s;
    Buffer.contents buf
  end

let encode_query q =
  String.concat "&"
    (List.map
       (fun (k, v) ->
         url_encode ~plus_space:true k ^ "=" ^ url_encode ~plus_space:true v)
       q)

(* Read one head line (up to '\n', '\r' stripped). [budget] is the
   remaining head byte allowance, mutated as we consume. [at_start]
   distinguishes a clean EOF between keep-alive requests (Disconnect)
   from EOF inside a head (Bad_request). *)
let read_line c ~budget ~at_start =
  let buf = Buffer.create 128 in
  let rec go () =
    if c.rpos >= c.rlen && not (refill c) then
      if at_start && Buffer.length buf = 0 then raise Disconnect
      else raise (Bad_request "EOF inside request head")
    else begin
      let stop = min c.rlen (c.rpos + !budget + 1) in
      (* find '\n' in the buffered window *)
      let nl = ref c.rpos in
      while !nl < stop && Bytes.unsafe_get c.rbuf !nl <> '\n' do
        incr nl
      done;
      let chunk_len = !nl - c.rpos in
      Buffer.add_subbytes buf c.rbuf c.rpos chunk_len;
      budget := !budget - chunk_len;
      if !budget < 0 then raise (Bad_request "request head too large");
      if !nl < c.rlen && Bytes.unsafe_get c.rbuf !nl = '\n' then begin
        c.rpos <- !nl + 1;
        decr budget;
        (* The LF byte counts against the budget too: without this
           check a head exactly one byte over the limit is admitted. *)
        if !budget < 0 then raise (Bad_request "request head too large");
        let s = Buffer.contents buf in
        let n = String.length s in
        let s = if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s in
        (* A CR anywhere but immediately before the LF is a smuggling
           vector (some stacks treat bare CR as a line break, we do
           not); reject instead of silently disagreeing with the peer. *)
        if String.contains s '\r' then
          raise (Bad_request "bare CR in request head");
        s
      end
      else begin
        c.rpos <- !nl;
        if !budget <= 0 then raise (Bad_request "request head too large");
        go ()
      end
    end
  in
  go ()

(* Header block shared by the server half (request heads) and the
   client half (response heads): lowercased names, trimmed values,
   terminated by the empty line. *)
let read_header_block c ~budget =
  let headers = ref [] in
  let rec loop () =
    let line = read_line c ~budget ~at_start:false in
    if line <> "" then begin
      (match String.index_opt line ':' with
      | None | Some 0 -> raise (Bad_request "malformed header line")
      | Some colon ->
        let name = String.lowercase_ascii (String.sub line 0 colon) in
        let value =
          String.trim (String.sub line (colon + 1) (String.length line - colon - 1))
        in
        headers := (name, value) :: !headers);
      loop ()
    end
  in
  loop ();
  List.rev !headers

let read_request ?(max_header = 8192) c =
  let budget = ref max_header in
  let request_line = read_line c ~budget ~at_start:true in
  let meth, target, version =
    match String.split_on_char ' ' request_line with
    | [ m; t; v ] when m <> "" && t <> "" -> (m, t, v)
    | _ -> raise (Bad_request "malformed request line")
  in
  if not (String.length version = 8 && String.sub version 0 7 = "HTTP/1.") then
    raise (Bad_request "unsupported protocol version");
  let path, query =
    match String.index_opt target '?' with
    | None -> (url_decode target, [])
    | Some q ->
      ( url_decode (String.sub target 0 q),
        parse_query (String.sub target (q + 1) (String.length target - q - 1)) )
  in
  let headers = read_header_block c ~budget in
  let find name = List.assoc_opt name headers in
  let content_length =
    match find "content-length" with
    | None -> None
    | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 0 -> Some n
      | Some _ | None -> raise (Bad_request "malformed Content-Length"))
  in
  let chunked_body =
    match find "transfer-encoding" with
    | Some v -> String.lowercase_ascii (String.trim v) <> "identity"
    | None -> false
  in
  let keep_alive =
    let conn = Option.map String.lowercase_ascii (find "connection") in
    if version = "HTTP/1.0" then conn = Some "keep-alive" else conn <> Some "close"
  in
  {
    meth;
    path;
    query;
    version;
    headers;
    content_length;
    chunked_body;
    keep_alive;
  }

let body_reader c ~length =
  let remaining = ref length in
  fun buf ->
    if !remaining <= 0 then 0
    else begin
      let want = min (Bytes.length buf) !remaining in
      let n =
        if c.rpos < c.rlen then begin
          let n = min want (c.rlen - c.rpos) in
          Bytes.blit c.rbuf c.rpos buf 0 n;
          c.rpos <- c.rpos + n;
          n
        end
        else begin
          let rec rd () =
            match Unix.read c.fd buf 0 want with
            | 0 -> raise Disconnect (* body shorter than Content-Length *)
            | n -> n
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> rd ()
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              raise Timeout
            | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
              raise Disconnect
          in
          rd ()
        end
      in
      remaining := !remaining - n;
      n
    end

(* ------------------------------------------------------------------ *)
(* Responses                                                            *)
(* ------------------------------------------------------------------ *)

let status_text = function
  | 100 -> "Continue"
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 409 -> "Conflict"
  | 411 -> "Length Required"
  | 413 -> "Payload Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 502 -> "Bad Gateway"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let add_head buf ~status ~content_type ~keep_alive extra =
  Printf.bprintf buf "HTTP/1.1 %d %s\r\n" status (status_text status);
  Printf.bprintf buf "server: pnrule\r\n";
  Printf.bprintf buf "content-type: %s\r\n" content_type;
  Printf.bprintf buf "connection: %s\r\n"
    (if keep_alive then "keep-alive" else "close");
  extra buf;
  Buffer.add_string buf "\r\n"

let respond c ?(content_type = "text/plain; charset=utf-8") ?(keep_alive = false)
    ?(headers = []) ~status ~body () =
  let buf = Buffer.create (String.length body + 256) in
  add_head buf ~status ~content_type ~keep_alive (fun buf ->
      Printf.bprintf buf "content-length: %d\r\n" (String.length body);
      List.iter (fun (k, v) -> Printf.bprintf buf "%s: %s\r\n" k v) headers);
  Buffer.add_string buf body;
  write_all c (Buffer.contents buf)

(* Pre-admission refusal, called from the listener domain on a socket
   that has no [conn] yet: one best-effort write of a tiny canned
   response straight to the raw fd, no buffering and no retries —
   shedding must never block the accept loop behind a slow peer. The
   caller closes the fd. *)
let deny fd ~status ~retry_after ~body =
  let buf = Buffer.create 256 in
  add_head buf ~status ~content_type:"text/plain; charset=utf-8"
    ~keep_alive:false (fun buf ->
      Printf.bprintf buf "content-length: %d\r\n" (String.length body);
      Printf.bprintf buf "retry-after: %d\r\n" retry_after);
  Buffer.add_string buf body;
  let s = Buffer.contents buf in
  match Unix.write_substring fd s 0 (String.length s) with
  | _ -> ()
  | exception Unix.Unix_error _ -> ()

let continue_100 c = write_all c "HTTP/1.1 100 Continue\r\n\r\n"

type stream_response = {
  sc : conn;
  status : int;
  content_type : string;
  keep_alive : bool;
  threshold : int;
  pending : Buffer.t;
  chunk : Buffer.t;
  mutable started : bool;
  mutable finished : bool;
}

let start_stream c ?(content_type = "text/csv; charset=utf-8") ?(threshold = 16384)
    ~status ~keep_alive () =
  {
    sc = c;
    status;
    content_type;
    keep_alive;
    threshold;
    pending = Buffer.create 4096;
    chunk = Buffer.create 4096;
    started = false;
    finished = false;
  }

let stream_started r = r.started

(* One transfer chunk per call, head and payload in a single write. *)
let send_chunk r s =
  if String.length s > 0 then begin
    Buffer.clear r.chunk;
    Printf.bprintf r.chunk "%x\r\n" (String.length s);
    Buffer.add_string r.chunk s;
    Buffer.add_string r.chunk "\r\n";
    write_all r.sc (Buffer.contents r.chunk)
  end

let start_now r =
  let buf = Buffer.create 256 in
  add_head buf ~status:r.status ~content_type:r.content_type
    ~keep_alive:r.keep_alive (fun buf ->
      Buffer.add_string buf "transfer-encoding: chunked\r\n");
  write_all r.sc (Buffer.contents buf);
  r.started <- true

let stream_write r s =
  if r.finished then invalid_arg "Http.stream_write: finished";
  if r.started then send_chunk r s
  else begin
    Buffer.add_string r.pending s;
    if Buffer.length r.pending >= r.threshold then begin
      start_now r;
      let s = Buffer.contents r.pending in
      Buffer.clear r.pending;
      send_chunk r s
    end
  end

let stream_finish r =
  if not r.finished then begin
    r.finished <- true;
    if r.started then write_all r.sc "0\r\n\r\n"
    else
      respond r.sc ~content_type:r.content_type ~keep_alive:r.keep_alive
        ~status:r.status
        ~body:(Buffer.contents r.pending)
        ()
  end

(* ------------------------------------------------------------------ *)
(* Client half                                                          *)
(* ------------------------------------------------------------------ *)

(* The router reuses this module's buffered conn for its proxy legs:
   same framing code on both sides of the wire means a response the
   backend can emit is by construction one the router can parse, and
   anything else is a deterministic [Bad_request] (mapped to 502
   upstream), never a hang — both directions are bounded by the socket
   timeouts set in [connect]. *)

type response = {
  status : int;
  reason : string;
  rheaders : (string * string) list;  (* names lowercased *)
  body : string;
}

let rheader r name = List.assoc_opt name r.rheaders

let connect ?buf_size ?write_fault ?read_fault ~host ~port ~timeout () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.setsockopt fd Unix.TCP_NODELAY true;
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  make_conn ?buf_size ?write_fault ?read_fault fd

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send_request c ~meth ~target ?(headers = []) ?body () =
  let buf =
    Buffer.create (match body with Some b -> String.length b + 256 | None -> 256)
  in
  Printf.bprintf buf "%s %s HTTP/1.1\r\n" meth target;
  List.iter (fun (k, v) -> Printf.bprintf buf "%s: %s\r\n" k v) headers;
  (match body with
  | Some b -> Printf.bprintf buf "content-length: %d\r\n" (String.length b)
  | None -> ());
  Buffer.add_string buf "\r\n";
  (match body with Some b -> Buffer.add_string buf b | None -> ());
  write_all c (Buffer.contents buf)

(* Exactly [n] body bytes; EOF first raises [Disconnect] (a backend
   that died mid-response is a retryable IO failure, not a protocol
   error). *)
let read_exact c n =
  let out = Bytes.create n in
  let off = ref 0 in
  while !off < n do
    if c.rpos >= c.rlen && not (refill c) then raise Disconnect;
    let take = min (n - !off) (c.rlen - c.rpos) in
    Bytes.blit c.rbuf c.rpos out !off take;
    c.rpos <- c.rpos + take;
    off := !off + take
  done;
  Bytes.unsafe_to_string out

let read_to_eof c ~max_body =
  let buf = Buffer.create 4096 in
  let rec go () =
    if c.rpos < c.rlen then begin
      Buffer.add_subbytes buf c.rbuf c.rpos (c.rlen - c.rpos);
      c.rpos <- c.rlen
    end;
    if Buffer.length buf > max_body then
      raise (Bad_request "response body too large");
    if refill c then go ()
  in
  go ();
  Buffer.contents buf

let read_chunked c ~max_body =
  let buf = Buffer.create 4096 in
  let rec chunks () =
    let lbudget = ref 256 in
    let line = read_line c ~budget:lbudget ~at_start:false in
    let size =
      let line =
        match String.index_opt line ';' with
        | Some i -> String.sub line 0 i (* drop any chunk extension *)
        | None -> line
      in
      match int_of_string_opt ("0x" ^ String.trim line) with
      | Some n when n >= 0 -> n
      | _ ->
        raise (Bad_request (Printf.sprintf "malformed chunk size %S" line))
    in
    if Buffer.length buf + size > max_body then
      raise (Bad_request "response body too large");
    if size > 0 then begin
      Buffer.add_string buf (read_exact c size);
      (match read_exact c 2 with
      | "\r\n" -> ()
      | s ->
        raise (Bad_request (Printf.sprintf "malformed chunk terminator %S" s)));
      chunks ()
    end
    else begin
      (* trailer section, up to the closing empty line *)
      let tbudget = ref 1024 in
      let rec trailers () =
        if read_line c ~budget:tbudget ~at_start:false <> "" then trailers ()
      in
      trailers ()
    end
  in
  chunks ();
  Buffer.contents buf

let read_response ?(max_header = 16384) ?(max_body = Sys.max_string_length) c =
  let budget = ref max_header in
  let status_line = read_line c ~budget ~at_start:true in
  let status, reason =
    match String.split_on_char ' ' status_line with
    | version :: code :: rest
      when String.length version >= 8 && String.sub version 0 7 = "HTTP/1." -> (
      match int_of_string_opt code with
      | Some s when s >= 100 && s <= 599 -> (s, String.concat " " rest)
      | _ ->
        raise
          (Bad_request (Printf.sprintf "malformed status line %S" status_line)))
    | _ ->
      raise (Bad_request (Printf.sprintf "malformed status line %S" status_line))
  in
  let rheaders = read_header_block c ~budget in
  let find name = List.assoc_opt name rheaders in
  let chunked =
    match find "transfer-encoding" with
    | Some v -> String.lowercase_ascii (String.trim v) <> "identity"
    | None -> false
  in
  let body =
    if chunked then read_chunked c ~max_body
    else
      match find "content-length" with
      | Some v -> (
        match int_of_string_opt (String.trim v) with
        | Some n when n >= 0 && n <= max_body -> read_exact c n
        | Some n when n >= 0 -> raise (Bad_request "response body too large")
        | Some _ | None -> raise (Bad_request "malformed Content-Length"))
      | None -> read_to_eof c ~max_body
  in
  { status; reason; rheaders; body }
