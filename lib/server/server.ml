let log = Logs.Src.create "pn_server.lifecycle" ~doc:"daemon lifecycle"

module Log = (val Logs.src_log log)

type config = {
  host : string;
  port : int;
  domains : int;
  policy : Pn_data.Ingest_report.policy;
  chunk_size : int;
  max_body : int;
  max_rows : int;
  idle_timeout : float;
  deadline : float;
  backlog : int;
  queue_limit : int;
  adapt : Pn_adapt.Retrainer.config option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    domains = 1;
    policy = Pn_data.Ingest_report.Strict;
    chunk_size = 8192;
    max_body = 64 * 1024 * 1024;
    max_rows = 1_000_000;
    idle_timeout = 5.0;
    deadline = 0.0;
    backlog = 128;
    queue_limit = 256;
    adapt = None;
  }

(* Blocking multi-producer/multi-consumer queue; [None] is the
   per-worker shutdown sentinel. *)
module Q = struct
  type 'a t = { q : 'a Queue.t; m : Mutex.t; c : Condition.t }

  let create () = { q = Queue.create (); m = Mutex.create (); c = Condition.create () }

  let push t v =
    Mutex.lock t.m;
    Queue.push v t.q;
    Condition.signal t.c;
    Mutex.unlock t.m

  let pop t =
    Mutex.lock t.m;
    while Queue.is_empty t.q do
      Condition.wait t.c t.m
    done;
    let v = Queue.pop t.q in
    Mutex.unlock t.m;
    v
end

(* One worker domain plus the flag it raises when it dies on an escaped
   exception. The listener polls the flag, joins the corpse, and
   respawns into the same slot (same telemetry index), so a crashed
   worker never shrinks the pool. *)
type worker_slot = {
  mutable domain : unit Domain.t;
  dead : bool Atomic.t;
}

type t = {
  config : config;
  lfd : Unix.file_descr;
  port : int;
  handler : Handler.t;
  queue : Unix.file_descr option Q.t;
  queued : int Atomic.t;  (* depth of [queue], shared with the handler *)
  stop_req : bool Atomic.t;
  reload_req : bool Atomic.t;
  draining : bool Atomic.t;
  retrainer : Pn_adapt.Retrainer.t option;
  mutable workers : worker_slot array;
  mutable listener : unit Domain.t option;
}

let port t = t.port

let generation t = (Handler.state t.handler).Handler.generation

let reload t = Handler.reload t.handler

let request_reload t = Atomic.set t.reload_req true

let request_stop t = Atomic.set t.stop_req true

(* ------------------------------------------------------------------ *)
(* Worker domains                                                       *)
(* ------------------------------------------------------------------ *)

(* One connection, start to close: keep-alive requests loop until the
   client leaves, the idle timeout fires, or a drain begins. Any
   exception that escapes the handler (it catches its own) means the
   connection is beyond saving — close it, keep the worker. The one
   deliberate hole: an injected [server.worker] fault is re-raised so it
   kills the worker domain, which is exactly the crash the supervision
   path exists to recover from. *)
let serve_conn t ~slot ~index fd =
  let conn = Http.make_conn fd in
  let rec requests () =
    match
      Http.wait_readable conn ~timeout:t.config.idle_timeout ~stop:(fun () ->
          Atomic.get t.draining)
    with
    | `Timeout | `Stopped -> ()
    | `Readable -> (
      match Handler.handle t.handler ~slot ~index conn with
      | `Keep -> requests ()
      | `Close -> ())
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try
        Pn_util.Fault.check "server.worker";
        requests ()
      with
      | Pn_util.Fault.Injected _ as e -> raise e
      | _ -> ())

(* A worker never lets an exception escape its domain: it records the
   death in [dead] and returns, so [Domain.join] on the corpse is always
   clean and the listener can respawn it. *)
let worker t i dead () =
  let slot = Telemetry.slot (Handler.telemetry t.handler) i in
  let rec loop () =
    match Q.pop t.queue with
    | None -> ()
    | Some fd ->
      ignore (Atomic.fetch_and_add t.queued (-1));
      serve_conn t ~slot ~index:i fd;
      loop ()
  in
  try loop ()
  with e ->
    Log.err (fun m -> m "worker domain %d died: %s" i (Printexc.to_string e));
    Atomic.set dead true

let spawn_worker t i =
  let dead = Atomic.make false in
  { domain = Domain.spawn (worker t i dead); dead }

(* Supervision sweep, run from the listener loop: join any worker that
   flagged itself dead and respawn into the same slot. *)
let check_workers t =
  Array.iteri
    (fun i ws ->
      if Atomic.get ws.dead then begin
        Domain.join ws.domain;
        ignore (Atomic.fetch_and_add (Handler.worker_restarts t.handler) 1);
        Log.warn (fun m -> m "respawning dead worker domain %d" i);
        Atomic.set ws.dead false;
        ws.domain <- Domain.spawn (worker t i ws.dead)
      end)
    t.workers

(* ------------------------------------------------------------------ *)
(* Listener domain                                                      *)
(* ------------------------------------------------------------------ *)

let listener t () =
  let rec loop () =
    if Atomic.get t.reload_req then begin
      Atomic.set t.reload_req false;
      ignore (Handler.reload t.handler)
    end;
    check_workers t;
    if Atomic.get t.stop_req then ()
    else begin
      (match Unix.select [ t.lfd ] [] [] 0.05 with
      | [ _ ], _, _ -> (
        match Unix.accept ~cloexec:true t.lfd with
        | fd, _ ->
          (* Bound every read so a stalled peer cannot pin a worker. *)
          (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.idle_timeout
           with Unix.Unix_error _ -> ());
          (* Responses are written as header + body chunks back to back;
             without TCP_NODELAY, Nagle + delayed ACK turns that into a
             ~40 ms stall per request. *)
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          ignore (Atomic.fetch_and_add (Handler.connections t.handler) 1);
          (* Admission control: refuse work beyond what the worker pool
             plus a bounded queue can absorb. The estimate is in-flight
             requests plus accepted-but-unserved connections; a refusal
             is one canned write from this domain, so a saturated
             daemon sheds at accept speed instead of queueing work
             until deadlines fire. *)
          if Handler.admission_load t.handler >= t.config.queue_limit then begin
            Handler.note_shed t.handler `Overload;
            Http.deny fd ~status:429 ~retry_after:1
              ~body:"over capacity; retry later\n";
            try Unix.close fd with Unix.Unix_error _ -> ()
          end
          else begin
            ignore (Atomic.fetch_and_add t.queued 1);
            Q.push t.queue (Some fd)
          end
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
          ->
          ()
        | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
          (* The listening socket was closed under us (a stop racing the
             accept). Treat it as the stop it is instead of crashing the
             listener domain and hanging [join]. *)
          Atomic.set t.stop_req true)
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        (* Same race, seen by select: a closed lfd must start the drain,
           not busy-loop or kill the domain. *)
        Atomic.set t.stop_req true);
      loop ()
    end
  in
  loop ();
  (* Graceful drain: stop accepting, let queued and in-flight
     connections finish, wake idle keep-alive waits via [draining]. *)
  Log.info (fun m -> m "draining: %d worker domain(s)" t.config.domains);
  Atomic.set t.draining true;
  (try Unix.close t.lfd with Unix.Unix_error _ -> ());
  (* Sentinels queue behind any accepted-but-unserved connections, so
     those are served before the workers exit. *)
  Array.iter (fun _ -> Q.push t.queue None) t.workers;
  Array.iter (fun ws -> Domain.join ws.domain) t.workers;
  Option.iter Pn_adapt.Retrainer.stop t.retrainer;
  Log.info (fun m -> m "drained")

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                            *)
(* ------------------------------------------------------------------ *)

let start ?(config = default_config) ~source () =
  if config.domains < 1 || config.domains > 64 then
    invalid_arg "Server.start: domains must be in 1..64";
  if config.port < 0 || config.port > 65535 then
    invalid_arg "Server.start: port must be in 0..65535";
  if config.chunk_size <= 0 then invalid_arg "Server.start: chunk_size";
  if config.max_body <= 0 then invalid_arg "Server.start: max_body";
  if config.max_rows <= 0 then invalid_arg "Server.start: max_rows";
  if config.idle_timeout <= 0.0 then invalid_arg "Server.start: idle_timeout";
  if config.deadline < 0.0 then invalid_arg "Server.start: deadline";
  if config.backlog < 1 || config.backlog > 65535 then
    invalid_arg "Server.start: backlog must be in 1..65535";
  if config.queue_limit < 1 then invalid_arg "Server.start: queue_limit";
  (match (config.adapt, source) with
  | Some _, Handler.Loader _ ->
    invalid_arg "Server.start: adapt requires a Registry source"
  | _ -> ());
  (* SIGPIPE must die before the first write to a vanished client. *)
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let telemetry = Telemetry.create ~slots:config.domains in
  let draining = Atomic.make false in
  let queued = Atomic.make 0 in
  let handler =
    Handler.create ~source ~telemetry ~policy:config.policy
      ~chunk_size:config.chunk_size ~max_body:config.max_body
      ~max_rows:config.max_rows ~deadline:config.deadline ~draining ~queued
      ~queue_limit:config.queue_limit
  in
  (* Built before the socket so a malformed adapt config raises without
     leaking the listener fd. *)
  let retrainer =
    match (config.adapt, source) with
    | None, _ | _, Handler.Loader _ -> None
    | Some acfg, Handler.Registry reg ->
      let r =
        Pn_adapt.Retrainer.create ~config:acfg ~slots:config.domains
          ~registry:reg
          ~model:(fun () -> (Handler.state handler).Handler.model)
          ~rollout:(fun ~gen ->
            match Handler.rollout handler ~back:false ~gen:(Some gen) with
            | Ok _ -> Ok ()
            | Error `Busy -> Error "admin lock busy"
            | Error `No_registry -> Error "no registry"
            | Error (`No_candidate msg) -> Error msg
            | Error (`Failed (_, msg)) -> Error msg)
          ()
      in
      Handler.set_adapt handler r;
      Some r
  in
  let lfd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  let t =
    try
      Unix.setsockopt lfd Unix.SO_REUSEADDR true;
      Unix.bind lfd
        (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
      Unix.listen lfd config.backlog;
      let port =
        match Unix.getsockname lfd with
        | Unix.ADDR_INET (_, p) -> p
        | Unix.ADDR_UNIX _ -> assert false
      in
      {
        config;
        lfd;
        port;
        handler;
        queue = Q.create ();
        queued;
        stop_req = Atomic.make false;
        reload_req = Atomic.make false;
        draining;
        retrainer;
        workers = [||];
        listener = None;
      }
    with e ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      raise e
  in
  t.workers <- Array.init config.domains (fun i -> spawn_worker t i);
  Option.iter Pn_adapt.Retrainer.start t.retrainer;
  t.listener <- Some (Domain.spawn (listener t));
  Log.info (fun m ->
      m "listening on %s:%d (%d worker domain(s), model generation %d)"
        config.host t.port config.domains
        (Handler.state handler).Handler.generation);
  t

let join t =
  match t.listener with
  | None -> ()
  | Some d ->
    t.listener <- None;
    Domain.join d

let stop t =
  request_stop t;
  join t

let install_signals t =
  Sys.set_signal Sys.sighup (Sys.Signal_handle (fun _ -> request_reload t));
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> request_stop t));
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> request_stop t))
