let log = Logs.Src.create "pn_server" ~doc:"PNrule prediction daemon"

module Log = (val Logs.src_log log)

type state = {
  model : Pnrule.Saved.t;
  generation : int;
  loaded_at : float;
  expectations : Pnrule.Saved.expectations option;
      (* the model file's v4 drift baseline; None idles the monitor *)
}

(* Where models come from: a plain loader (SIGHUP re-runs it, generation
   is a local counter) or a versioned registry directory (generations
   are on-disk facts; /admin/rollout flips between them). *)
type source =
  | Loader of (unit -> Pnrule.Saved.t)
  | Registry of Pnrule.Registry.t

(* A request that outlives its per-request deadline. Checked on every
   body refill and every response write, so even a client trickling one
   byte per timeout window cannot pin a worker past the deadline. *)
exception Deadline

type t = {
  state : state Atomic.t;
  source : source;
  telemetry : Telemetry.t;
  policy : Pn_data.Ingest_report.policy;
  chunk_size : int;
  max_body : int;
  max_rows : int;
  deadline : float;
  draining : bool Atomic.t;
  queued : int Atomic.t;  (* accepted, not yet picked up by a worker *)
  queue_limit : int;
  connections : int Atomic.t;
  reloads : int Atomic.t;
  reload_failures : int Atomic.t;
  worker_restarts : int Atomic.t;
  (* Staged rollout: [admin] serializes flips, [warming] is the brief
     window in which a candidate generation is being canary-scored. *)
  admin : Mutex.t;
  warming : bool Atomic.t;
  rollouts : int Atomic.t;
  rollbacks : int Atomic.t;
  rollout_failures : int Atomic.t;
  shed_overload : int Atomic.t;
  shed_draining : int Atomic.t;
  shed_warming : int Atomic.t;
  (* Online adaptation, attached after construction by the server when
     --adapt is set; None = no monitor, no feedback reservoir. *)
  adapt : Pn_adapt.Retrainer.t option Atomic.t;
}

let initial_state source =
  let loaded_at = Unix.gettimeofday () in
  match source with
  | Loader load ->
    { model = load (); generation = 1; loaded_at; expectations = None }
  | Registry reg ->
    let generation, model, expectations = Pnrule.Registry.load_initial_ex reg in
    { model; generation; loaded_at; expectations }

let create ~source ~telemetry ~policy ~chunk_size ~max_body ~max_rows ~deadline
    ~draining ~queued ~queue_limit =
  {
    state = Atomic.make (initial_state source);
    source;
    telemetry;
    policy;
    chunk_size;
    max_body;
    max_rows;
    deadline;
    draining;
    queued;
    queue_limit;
    connections = Atomic.make 0;
    reloads = Atomic.make 0;
    reload_failures = Atomic.make 0;
    worker_restarts = Atomic.make 0;
    admin = Mutex.create ();
    warming = Atomic.make false;
    rollouts = Atomic.make 0;
    rollbacks = Atomic.make 0;
    rollout_failures = Atomic.make 0;
    shed_overload = Atomic.make 0;
    shed_draining = Atomic.make 0;
    shed_warming = Atomic.make 0;
    adapt = Atomic.make None;
  }

let telemetry t = t.telemetry

let state t = Atomic.get t.state

let adapt t = Atomic.get t.adapt

(* Every model swap — boot, reload, rollout, adaptation — re-arms the
   drift monitor against the new generation's own baseline (or idles it
   when the file carries none), so counts from different rule index
   spaces never mix. *)
let sync_drift t st =
  match Atomic.get t.adapt with
  | None -> ()
  | Some r ->
    Pn_adapt.Drift.set_model (Pn_adapt.Retrainer.drift r)
      ~n_rules:(Pnrule.Saved.n_monitored st.model)
      ~target:(Pnrule.Saved.target st.model)
      st.expectations

let set_adapt t r =
  Atomic.set t.adapt (Some r);
  sync_drift t (Atomic.get t.state)

let connections t = t.connections

let worker_restarts t = t.worker_restarts

let note_shed t = function
  | `Overload -> ignore (Atomic.fetch_and_add t.shed_overload 1)
  | `Draining -> ignore (Atomic.fetch_and_add t.shed_draining 1)
  | `Warming -> ignore (Atomic.fetch_and_add t.shed_warming 1)

(* The listener's admission estimate: requests being processed plus
   connections accepted but not yet picked up by a worker. *)
let admission_load t =
  Telemetry.in_flight_count t.telemetry + Atomic.get t.queued

(* SIGHUP semantics by source: a [Loader] re-runs the load function and
   bumps the generation; a [Registry] re-resolves the CURRENT pointer
   (falling back to the highest loadable generation), so an operator can
   repoint CURRENT by hand and SIGHUP into it — but a plain SIGHUP never
   advances past what the pointer names. Staged rollout stays an
   explicit /admin action. *)
let reload t =
  match
    match t.source with
    | Loader load -> (load (), (Atomic.get t.state).generation + 1, None)
    | Registry reg ->
      let g, m, exp = Pnrule.Registry.load_initial_ex reg in
      (m, g, exp)
  with
  | model, generation, expectations ->
    let st =
      { model; generation; loaded_at = Unix.gettimeofday (); expectations }
    in
    Atomic.set t.state st;
    sync_drift t st;
    ignore (Atomic.fetch_and_add t.reloads 1);
    Log.info (fun m -> m "model reloaded (generation %d)" generation);
    Ok ()
  | exception e ->
    ignore (Atomic.fetch_and_add t.reload_failures 1);
    let msg = Printexc.to_string e in
    Log.warn (fun m -> m "model reload failed, keeping old model: %s" msg);
    Error msg

(* One staged flip: resolve the target generation, load it, warm it
   (compile + canary-score), persist the CURRENT pointer, and only then
   swap the serving snapshot. Any failure before the swap leaves the old
   generation serving untouched. [gen] overrides the default target (the
   next generation up for rollout, the previous one down for rollback);
   a concurrent flip is refused rather than queued, so the client
   retries against fresh state. *)
let rollout t ~back ~gen =
  match t.source with
  | Loader _ -> Error `No_registry
  | Registry reg ->
    if not (Mutex.try_lock t.admin) then Error `Busy
    else
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.admin)
        (fun () ->
          let cur = (Atomic.get t.state).generation in
          let target =
            match gen with
            | Some g ->
              if List.mem g (Pnrule.Registry.generations reg) then Ok g
              else
                Error
                  (`No_candidate
                     (Printf.sprintf "generation %d is not in the registry" g))
            | None -> (
              match
                if back then Pnrule.Registry.prev_below reg cur
                else Pnrule.Registry.next_above reg cur
              with
              | Some g -> Ok g
              | None ->
                Error
                  (`No_candidate
                     (if back then
                        Printf.sprintf "no generation below %d to roll back to"
                          cur
                      else
                        Printf.sprintf "no generation above %d to roll out" cur)))
          in
          match target with
          | Error _ as e -> e
          | Ok g ->
            Atomic.set t.warming true;
            Fun.protect
              ~finally:(fun () -> Atomic.set t.warming false)
              (fun () ->
                match
                  let model, exp = Pnrule.Registry.load_gen_ex reg g in
                  Pnrule.Registry.warm model;
                  Pnrule.Registry.set_current reg g;
                  (model, exp)
                with
                | model, expectations ->
                  let st =
                    {
                      model;
                      generation = g;
                      loaded_at = Unix.gettimeofday ();
                      expectations;
                    }
                  in
                  Atomic.set t.state st;
                  sync_drift t st;
                  ignore
                    (Atomic.fetch_and_add
                       (if back then t.rollbacks else t.rollouts)
                       1);
                  Log.info (fun m ->
                      m "%s: generation %d -> %d"
                        (if back then "rollback" else "rollout")
                        cur g);
                  Ok g
                | exception e ->
                  ignore (Atomic.fetch_and_add t.rollout_failures 1);
                  let msg = Printexc.to_string e in
                  Log.warn (fun m ->
                      m "%s to generation %d failed, keeping generation %d: %s"
                        (if back then "rollback" else "rollout")
                        g cur msg);
                  Error (`Failed (cur, msg))))

(* ------------------------------------------------------------------ *)
(* Endpoints                                                            *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 -> Printf.bprintf buf "\\u%04x" (Char.code c)
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Hand-rolled on purpose: the repo carries no JSON dependency. *)
let model_json t =
  let st = Atomic.get t.state in
  let m = st.model in
  let classes = Pnrule.Saved.classes m in
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "{\"kind\": \"%s\",\n" (Pnrule.Saved.kind m);
  Printf.bprintf buf " \"target\": \"%s\",\n"
    (json_escape classes.(Pnrule.Saved.target m));
  Printf.bprintf buf " \"classes\": [%s],\n"
    (String.concat ", "
       (Array.to_list
          (Array.map (fun c -> Printf.sprintf "\"%s\"" (json_escape c)) classes)));
  (match m with
  | Pnrule.Saved.Single m ->
    let np, nn = Pnrule.Model.rule_counts m in
    Printf.bprintf buf " \"p_rules\": %d,\n \"n_rules\": %d,\n" np nn;
    Printf.bprintf buf " \"use_scoring\": %b,\n \"score_threshold\": %g,\n"
      m.Pnrule.Model.params.Pnrule.Params.use_scoring
      m.Pnrule.Model.params.Pnrule.Params.score_threshold
  | Pnrule.Saved.Boosted e ->
    Printf.bprintf buf " \"members\": %d,\n" (Pnrule.Ensemble.n_members e);
    Printf.bprintf buf " \"bias\": %g,\n \"threshold\": %g,\n"
      e.Pnrule.Ensemble.bias e.Pnrule.Ensemble.threshold);
  Printf.bprintf buf " \"source\": \"%s\",\n"
    (match t.source with Loader _ -> "file" | Registry _ -> "registry");
  Printf.bprintf buf " \"generation\": %d,\n \"loaded_at\": %.3f,\n" st.generation
    st.loaded_at;
  Printf.bprintf buf " \"uptime\": %.3f,\n"
    (Float.max 0.0 (Unix.gettimeofday () -. st.loaded_at));
  Printf.bprintf buf " \"attributes\": [";
  Array.iteri
    (fun i (a : Pn_data.Attribute.t) ->
      if i > 0 then Buffer.add_string buf ",";
      match a.kind with
      | Pn_data.Attribute.Numeric ->
        Printf.bprintf buf "\n  {\"name\": \"%s\", \"kind\": \"numeric\"}"
          (json_escape a.name)
      | Pn_data.Attribute.Categorical values ->
        Printf.bprintf buf
          "\n  {\"name\": \"%s\", \"kind\": \"categorical\", \"arity\": %d}"
          (json_escape a.name) (Array.length values))
    (Pnrule.Saved.attrs m);
  Buffer.add_string buf "\n ]}\n";
  Buffer.contents buf

let metrics_text t =
  Telemetry.render t.telemetry ~extra:(fun buf ->
      let st = Atomic.get t.state in
      (* Generation semantics differ by source: a registry daemon
         serves the on-disk generation number (rollbacks move it DOWN),
         a file daemon counts loads up from 1. The help text must not
         promise the file behaviour for both. *)
      Printf.bprintf buf
        "# HELP pnrule_model_generation Serving model generation (file \
         source: 1 = initial load, +1 per reload; registry source: the \
         on-disk generation number, moved by rollout/rollback).\n\
         # TYPE pnrule_model_generation gauge\n\
         pnrule_model_generation %d\n"
        st.generation;
      Printf.bprintf buf
        "# HELP pnrule_model_loaded_at_seconds Unix time the serving model \
         was loaded.\n\
         # TYPE pnrule_model_loaded_at_seconds gauge\n\
         pnrule_model_loaded_at_seconds %.3f\n"
        st.loaded_at;
      Printf.bprintf buf
        "# HELP pnrule_model_reloads_total Successful hot reloads.\n\
         # TYPE pnrule_model_reloads_total counter\n\
         pnrule_model_reloads_total %d\n"
        (Atomic.get t.reloads);
      Printf.bprintf buf
        "# HELP pnrule_model_reload_failures_total Reload attempts that kept \
         the old model.\n\
         # TYPE pnrule_model_reload_failures_total counter\n\
         pnrule_model_reload_failures_total %d\n"
        (Atomic.get t.reload_failures);
      Printf.bprintf buf
        "# HELP pnrule_model_rollouts_total Staged rollouts completed via \
         POST /admin/rollout.\n\
         # TYPE pnrule_model_rollouts_total counter\n\
         pnrule_model_rollouts_total %d\n"
        (Atomic.get t.rollouts);
      Printf.bprintf buf
        "# HELP pnrule_model_rollbacks_total Rollbacks completed via \
         POST /admin/rollback.\n\
         # TYPE pnrule_model_rollbacks_total counter\n\
         pnrule_model_rollbacks_total %d\n"
        (Atomic.get t.rollbacks);
      Printf.bprintf buf
        "# HELP pnrule_model_rollout_failures_total Rollout/rollback attempts \
         that kept the serving generation.\n\
         # TYPE pnrule_model_rollout_failures_total counter\n\
         pnrule_model_rollout_failures_total %d\n"
        (Atomic.get t.rollout_failures);
      Printf.bprintf buf
        "# HELP pnrule_warming Whether a candidate generation is being \
         canary-scored right now.\n\
         # TYPE pnrule_warming gauge\n\
         pnrule_warming %d\n"
        (if Atomic.get t.warming then 1 else 0);
      Printf.bprintf buf
        "# HELP pnrule_shed_total Requests refused by load shedding, by \
         reason.\n\
         # TYPE pnrule_shed_total counter\n\
         pnrule_shed_total{reason=\"overload\"} %d\n\
         pnrule_shed_total{reason=\"draining\"} %d\n\
         pnrule_shed_total{reason=\"warming\"} %d\n"
        (Atomic.get t.shed_overload)
        (Atomic.get t.shed_draining)
        (Atomic.get t.shed_warming);
      Printf.bprintf buf
        "# HELP pnrule_queue_depth Connections accepted but not yet picked up \
         by a worker.\n\
         # TYPE pnrule_queue_depth gauge\n\
         pnrule_queue_depth %d\n"
        (Atomic.get t.queued);
      Printf.bprintf buf
        "# HELP pnrule_queue_limit Admission limit on in-flight plus queued \
         work.\n\
         # TYPE pnrule_queue_limit gauge\n\
         pnrule_queue_limit %d\n"
        t.queue_limit;
      Printf.bprintf buf
        "# HELP pnrule_connections_total Connections accepted.\n\
         # TYPE pnrule_connections_total counter\n\
         pnrule_connections_total %d\n"
        (Atomic.get t.connections);
      Printf.bprintf buf
        "# HELP pnrule_worker_restarts_total Worker domains respawned after \
         dying on an escaped exception.\n\
         # TYPE pnrule_worker_restarts_total counter\n\
         pnrule_worker_restarts_total %d\n"
        (Atomic.get t.worker_restarts);
      match Atomic.get t.adapt with
      | None -> ()
      | Some r ->
        let dr = Pn_adapt.Retrainer.drift r in
        let snap = Pn_adapt.Drift.snapshot dr in
        Printf.bprintf buf
          "# HELP pnrule_drift_score Current Page-Hinkley drift score, by \
           monitored rule.\n\
           # TYPE pnrule_drift_score gauge\n";
        Array.iteri
          (fun k (rs : Pn_adapt.Drift.rule_stat) ->
            Printf.bprintf buf "pnrule_drift_score{rule=\"%d\"} %g\n" k
              rs.Pn_adapt.Drift.score)
          snap.Pn_adapt.Drift.rules;
        Printf.bprintf buf
          "# HELP pnrule_drift_detected_total Concept-drift detections.\n\
           # TYPE pnrule_drift_detected_total counter\n\
           pnrule_drift_detected_total %d\n"
          (Pn_adapt.Drift.detections_total dr);
        let s = Pn_adapt.Retrainer.stats r in
        Printf.bprintf buf
          "# HELP pnrule_retrains_total Background retrain attempts, by \
           outcome.\n\
           # TYPE pnrule_retrains_total counter\n\
           pnrule_retrains_total{outcome=\"ok\"} %d\n\
           pnrule_retrains_total{outcome=\"no_data\"} %d\n\
           pnrule_retrains_total{outcome=\"train_error\"} %d\n\
           pnrule_retrains_total{outcome=\"publish_error\"} %d\n\
           pnrule_retrains_total{outcome=\"rollout_error\"} %d\n"
          s.Pn_adapt.Retrainer.ok s.Pn_adapt.Retrainer.no_data
          s.Pn_adapt.Retrainer.train_error s.Pn_adapt.Retrainer.publish_error
          s.Pn_adapt.Retrainer.rollout_error;
        Printf.bprintf buf
          "# HELP pnrule_retrain_duration_seconds Wall-clock duration of the \
           last retrain attempt.\n\
           # TYPE pnrule_retrain_duration_seconds gauge\n\
           pnrule_retrain_duration_seconds %.6f\n"
          s.Pn_adapt.Retrainer.last_duration;
        Printf.bprintf buf
          "# HELP pnrule_feedback_reservoir_rows Labeled rows currently held \
           for background retraining.\n\
           # TYPE pnrule_feedback_reservoir_rows gauge\n\
           pnrule_feedback_reservoir_rows %d\n"
          s.Pn_adapt.Retrainer.reservoir_rows)

(* Serving pools: each worker domain is already one lane of parallelism,
   and Pool.map_array does not support concurrent submitters — so every
   request scores sequentially in its worker domain. *)
let predict t conn (req : Http.request) ~index ~keep =
  (* Per-request overrides, validated before any body byte is read. *)
  let q name = List.assoc_opt name req.query in
  let policy =
    match q "on-error" with
    | None -> Ok t.policy
    | Some v -> (
      match Pn_data.Ingest_report.policy_of_string v with
      | Some p -> Ok p
      | None -> Error (Printf.sprintf "unknown on-error policy %S" v))
  in
  let scores =
    match q "scores" with
    | None | Some "0" | Some "false" -> Ok false
    | Some "1" | Some "true" -> Ok true
    | Some v -> Error (Printf.sprintf "bad scores flag %S" v)
  in
  (* Content negotiation: a binary columnar body is routed to the
     [.pnc] fast path; anything else (including no Content-Type) keeps
     the historical CSV behaviour. *)
  let columnar =
    match Http.header req "content-type" with
    | None -> false
    | Some v ->
      let v =
        match String.index_opt v ';' with
        | Some i -> String.sub v 0 i
        | None -> v
      in
      String.lowercase_ascii (String.trim v) = "application/x-pnrule-columnar"
  in
  let scores =
    if columnar && q "class-column" <> None then
      Error "class-column does not apply to columnar input (labels are in the file)"
    else scores
  in
  match (policy, scores) with
  | Error msg, _ | _, Error msg ->
    Http.respond conn ~status:400 ~body:(msg ^ "\n") ();
    (400, `Close)
  | Ok policy, Ok scores -> (
    if req.Http.chunked_body then begin
      Http.respond conn ~status:411
        ~body:"chunked request bodies are not supported; send Content-Length\n" ();
      (411, `Close)
    end
    else
      match req.Http.content_length with
      | None ->
        Http.respond conn ~status:411 ~body:"Content-Length required\n" ();
        (411, `Close)
      | Some len when len > t.max_body ->
        Http.respond conn ~status:413
          ~body:
            (Printf.sprintf "body of %d bytes exceeds the %d byte limit\n" len
               t.max_body)
          ();
        (413, `Close)
      | Some len -> (
        (match Http.header req "expect" with
        | Some v when String.lowercase_ascii v = "100-continue" ->
          Http.continue_100 conn
        | Some _ | None -> ());
        let st = Atomic.get t.state in
        (* Deadline guard: checked on every body refill and every
           response write, the two points where a slow peer can stall
           the request indefinitely. 0 disables it. *)
        let deadline_at =
          if t.deadline > 0.0 then Unix.gettimeofday () +. t.deadline
          else Float.infinity
        in
        let guard () =
          if Unix.gettimeofday () > deadline_at then raise Deadline
        in
        let reader = Http.body_reader conn ~length:len in
        let source =
          Pn_data.Stream.of_refill (fun buf ->
              guard ();
              reader buf)
        in
        let resp = Http.start_stream conn ~status:200 ~keep_alive:keep () in
        let write s =
          guard ();
          Http.stream_write resp s
        in
        (* Predict traffic feeds the drift monitor's firing-rate side;
           labels (when a class column rides along) feed its
           false-positive side too. Only /feedback fills the retraining
           reservoir. *)
        let observe =
          match Atomic.get t.adapt with
          | None -> None
          | Some r ->
            let dr = Pn_adapt.Retrainer.drift r in
            Some
              (fun ~n ~columns:_ ~batch ~actuals ->
                Pn_adapt.Drift.observe dr ~slot:index ~n ~batch ~actuals)
        in
        match
          if columnar then
            Pnrule.Serve.predict_columnar_stream ~policy ~scores
              ~max_rows:t.max_rows ~pool:Pn_util.Pool.sequential ?observe
              ~model:st.model ~source ~write ()
          else
            Pnrule.Serve.predict_stream ~policy ~chunk_size:t.chunk_size
              ?class_column:(q "class-column") ~scores ~max_rows:t.max_rows
              ~pool:Pn_util.Pool.sequential ?observe ~model:st.model ~source
              ~write ()
        with
        | report ->
          Http.stream_finish resp;
          (200, `Rows report)
        | exception Deadline ->
          if Http.stream_started resp then (408, `Close)
          else begin
            Http.respond conn ~status:408
              ~body:
                (Printf.sprintf "request exceeded the %gs deadline\n" t.deadline)
              ();
            (408, `Close)
          end
        | exception Pnrule.Serve.Error msg ->
          if Http.stream_started resp then begin
            (* The 200 head is on the wire; all we can do is truncate the
               chunked body so the client sees a failed transfer. *)
            Log.debug (fun m -> m "predict failed mid-stream: %s" msg);
            (400, `Close)
          end
          else begin
            Http.respond conn ~status:400 ~body:(msg ^ "\n") ();
            (400, `Close)
          end
        | exception Pnrule.Serve.Limit msg ->
          if Http.stream_started resp then (413, `Close)
          else begin
            Http.respond conn ~status:413 ~body:(msg ^ "\n") ();
            (413, `Close)
          end))

(* POST /feedback: the labeled-stream endpoint of online adaptation.
   The body rides the exact predict pipeline (same decoders, same
   policies, same scoring — so drift sees precisely what serving would
   have answered), but predictions are discarded instead of streamed
   back; labeled rows are copied out of the decoder's buffers into the
   retrainer's reservoir. A body that resolves no labels at all is a
   client error: feedback without labels cannot feed anything. *)
let feedback t conn (req : Http.request) ~index ~keep =
  match Atomic.get t.adapt with
  | None ->
    Http.respond conn ~status:409
      ~body:"online adaptation is not enabled; start the daemon with --adapt\n"
      ();
    (409, `Close)
  | Some r -> (
    let q name = List.assoc_opt name req.query in
    let policy =
      match q "on-error" with
      | None -> Ok t.policy
      | Some v -> (
        match Pn_data.Ingest_report.policy_of_string v with
        | Some p -> Ok p
        | None -> Error (Printf.sprintf "unknown on-error policy %S" v))
    in
    let columnar =
      match Http.header req "content-type" with
      | None -> false
      | Some v ->
        let v =
          match String.index_opt v ';' with
          | Some i -> String.sub v 0 i
          | None -> v
        in
        String.lowercase_ascii (String.trim v) = "application/x-pnrule-columnar"
    in
    let policy =
      if columnar && q "class-column" <> None then
        Error
          "class-column does not apply to columnar input (labels are in the \
           file)"
      else policy
    in
    match policy with
    | Error msg ->
      Http.respond conn ~status:400 ~body:(msg ^ "\n") ();
      (400, `Close)
    | Ok policy -> (
      if req.Http.chunked_body then begin
        Http.respond conn ~status:411
          ~body:"chunked request bodies are not supported; send Content-Length\n"
          ();
        (411, `Close)
      end
      else
        match req.Http.content_length with
        | None ->
          Http.respond conn ~status:411 ~body:"Content-Length required\n" ();
          (411, `Close)
        | Some len when len > t.max_body ->
          Http.respond conn ~status:413
            ~body:
              (Printf.sprintf "body of %d bytes exceeds the %d byte limit\n" len
                 t.max_body)
            ();
          (413, `Close)
        | Some len -> (
          (match Http.header req "expect" with
          | Some v when String.lowercase_ascii v = "100-continue" ->
            Http.continue_100 conn
          | Some _ | None -> ());
          let st = Atomic.get t.state in
          let deadline_at =
            if t.deadline > 0.0 then Unix.gettimeofday () +. t.deadline
            else Float.infinity
          in
          let guard () =
            if Unix.gettimeofday () > deadline_at then raise Deadline
          in
          let reader = Http.body_reader conn ~length:len in
          let source =
            Pn_data.Stream.of_refill (fun buf ->
                guard ();
                reader buf)
          in
          let dr = Pn_adapt.Retrainer.drift r in
          let attrs = Pnrule.Saved.attrs st.model in
          let classes = Pnrule.Saved.classes st.model in
          let labeled_total = ref 0 in
          let observe ~n ~columns ~batch ~actuals =
            Pn_adapt.Drift.observe dr ~slot:index ~n ~batch ~actuals;
            let sel = ref [] in
            let cnt = ref 0 in
            for i = n - 1 downto 0 do
              if actuals.(i) >= 0 then begin
                sel := i :: !sel;
                incr cnt
              end
            done;
            if !cnt > 0 then begin
              labeled_total := !labeled_total + !cnt;
              let sel = Array.of_list !sel in
              (* Copy, never alias: [columns] may be decoder-owned
                 buffers that the next chunk overwrites. *)
              let sub =
                Array.map
                  (function
                    | Pn_data.Dataset.Num col ->
                      Pn_data.Dataset.Num (Array.map (Array.get col) sel)
                    | Pn_data.Dataset.Cat col ->
                      Pn_data.Dataset.Cat (Array.map (Array.get col) sel))
                  columns
              in
              let labels = Array.map (Array.get actuals) sel in
              Pn_adapt.Retrainer.add r
                (Pn_data.Dataset.create ~attrs ~columns:sub ~labels ~classes ())
            end
          in
          match
            if columnar then
              Pnrule.Serve.predict_columnar_stream ~policy ~scores:false
                ~max_rows:t.max_rows ~pool:Pn_util.Pool.sequential ~observe
                ~model:st.model ~source ~write:ignore ()
            else
              Pnrule.Serve.predict_stream ~policy ~chunk_size:t.chunk_size
                ?class_column:(q "class-column") ~scores:false
                ~max_rows:t.max_rows ~pool:Pn_util.Pool.sequential ~observe
                ~model:st.model ~source ~write:ignore ()
          with
          | report ->
            if !labeled_total = 0 then begin
              Http.respond conn ~status:400
                ~body:
                  "no labeled rows in the feedback body; provide a class \
                   column (CSV) or a labeled .pnc file\n"
                ();
              (400, `Close)
            end
            else begin
              Http.respond conn ~status:200 ~keep_alive:keep
                ~content_type:"application/json; charset=utf-8"
                ~body:
                  (Printf.sprintf
                     "{\"status\": \"ok\", \"rows\": %d, \"labeled\": %d, \
                      \"reservoir_rows\": %d}\n"
                     report.Pnrule.Serve.rows_out !labeled_total
                     (Pn_adapt.Retrainer.reservoir_rows r))
                ();
              (200, `Keep)
            end
          | exception Deadline ->
            Http.respond conn ~status:408
              ~body:
                (Printf.sprintf "request exceeded the %gs deadline\n" t.deadline)
              ();
            (408, `Close)
          | exception Pnrule.Serve.Error msg ->
            Http.respond conn ~status:400 ~body:(msg ^ "\n") ();
            (400, `Close)
          | exception Pnrule.Serve.Limit msg ->
            Http.respond conn ~status:413 ~body:(msg ^ "\n") ();
            (413, `Close))))

(* GET /admin/drift: one JSON snapshot of the whole adaptation loop —
   monitor state per rule plus the retrainer's outcome counters. *)
let drift_json r =
  let dr = Pn_adapt.Retrainer.drift r in
  let snap = Pn_adapt.Drift.snapshot dr in
  let s = Pn_adapt.Retrainer.stats r in
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "{\"monitoring\": %b,\n" snap.Pn_adapt.Drift.monitoring;
  Printf.bprintf buf " \"rows\": %d,\n \"labeled\": %d,\n \"windows\": %d,\n"
    snap.Pn_adapt.Drift.rows snap.Pn_adapt.Drift.labeled
    snap.Pn_adapt.Drift.windows;
  Printf.bprintf buf " \"detections\": %d,\n \"detections_total\": %d,\n"
    snap.Pn_adapt.Drift.detections
    (Pn_adapt.Drift.detections_total dr);
  (match snap.Pn_adapt.Drift.last with
  | None -> Buffer.add_string buf " \"last_detection\": null,\n"
  | Some d ->
    Printf.bprintf buf
      " \"last_detection\": {\"rule\": %d, \"score\": %g, \"window\": %d},\n"
      d.Pn_adapt.Drift.rule d.Pn_adapt.Drift.score d.Pn_adapt.Drift.window);
  Printf.bprintf buf
    " \"retrain\": {\"ok\": %d, \"no_data\": %d, \"train_error\": %d, \
     \"publish_error\": %d, \"rollout_error\": %d, \"pending\": %b, \
     \"attempt\": %d, \"reservoir_rows\": %d, \"last_duration\": %.6f, \
     \"last_error\": %s},\n"
    s.Pn_adapt.Retrainer.ok s.Pn_adapt.Retrainer.no_data
    s.Pn_adapt.Retrainer.train_error s.Pn_adapt.Retrainer.publish_error
    s.Pn_adapt.Retrainer.rollout_error s.Pn_adapt.Retrainer.pending
    s.Pn_adapt.Retrainer.attempt s.Pn_adapt.Retrainer.reservoir_rows
    s.Pn_adapt.Retrainer.last_duration
    (match s.Pn_adapt.Retrainer.last_error with
    | None -> "null"
    | Some e -> Printf.sprintf "\"%s\"" (json_escape e));
  Printf.bprintf buf " \"rules\": [";
  Array.iteri
    (fun k (rs : Pn_adapt.Drift.rule_stat) ->
      if k > 0 then Buffer.add_string buf ",";
      Printf.bprintf buf
        "\n  {\"rule\": %d, \"expected_rate\": %g, \"observed_rate\": %g, \
         \"expected_precision\": %g, \"observed_fp_rate\": %g, \"score\": %g}"
        k rs.Pn_adapt.Drift.expected_rate rs.Pn_adapt.Drift.observed_rate
        rs.Pn_adapt.Drift.expected_precision rs.Pn_adapt.Drift.observed_fp_rate
        rs.Pn_adapt.Drift.score)
    snap.Pn_adapt.Drift.rules;
  Buffer.add_string buf "\n ]}\n";
  Buffer.contents buf

let admin t conn (req : Http.request) ~back ~keep =
  let action = if back then "rollback" else "rollout" in
  match List.assoc_opt "gen" req.Http.query with
  | Some v when int_of_string_opt v = None ->
    Http.respond conn ~status:400
      ~body:(Printf.sprintf "bad gen %S: expected a generation number\n" v)
      ();
    (400, `Close)
  | gen_raw -> (
    match rollout t ~back ~gen:(Option.map int_of_string gen_raw) with
    | Ok g ->
      Http.respond conn ~status:200 ~keep_alive:keep
        ~content_type:"application/json; charset=utf-8"
        ~body:
          (Printf.sprintf
             "{\"status\": \"ok\", \"action\": \"%s\", \"generation\": %d}\n"
             action g)
        ();
      (200, `Keep)
    | Error `No_registry ->
      Http.respond conn ~status:409
        ~body:"no model registry configured; start the daemon with --registry DIR\n"
        ();
      (409, `Close)
    | Error `Busy ->
      note_shed t `Warming;
      Http.respond conn ~status:503
        ~headers:[ ("retry-after", "1") ]
        ~body:"another rollout is in progress; retry shortly\n" ();
      (503, `Close)
    | Error (`No_candidate msg) ->
      Http.respond conn ~status:409 ~body:(msg ^ "\n") ();
      (409, `Close)
    | Error (`Failed (cur, msg)) ->
      Http.respond conn ~status:500
        ~body:
          (Printf.sprintf "%s failed, still serving generation %d: %s\n" action
             cur msg)
        ();
      (500, `Close))

let dispatch t conn (req : Http.request) ~index ~keep =
  match (req.Http.meth, req.Http.path) with
  | "POST", "/predict" ->
    if Atomic.get t.draining then begin
      (* New work is refused during the drain with an explicit retry
         hint; requests already admitted keep running to completion. *)
      note_shed t `Draining;
      Http.respond conn ~status:503
        ~headers:[ ("retry-after", "1") ]
        ~body:"draining; retry against another instance\n" ();
      (Telemetry.Predict, (503, `Close))
    end
    else (Telemetry.Predict, predict t conn req ~index ~keep)
  | _, "/predict" ->
    Http.respond conn ~status:405 ~body:"use POST\n" ();
    (Telemetry.Predict, (405, `Close))
  | "POST", "/feedback" ->
    if Atomic.get t.draining then begin
      note_shed t `Draining;
      Http.respond conn ~status:503
        ~headers:[ ("retry-after", "1") ]
        ~body:"draining; retry against another instance\n" ();
      (Telemetry.Feedback, (503, `Close))
    end
    else (Telemetry.Feedback, feedback t conn req ~index ~keep)
  | _, "/feedback" ->
    Http.respond conn ~status:405 ~body:"use POST\n" ();
    (Telemetry.Feedback, (405, `Close))
  | "POST", "/admin/rollout" -> (Telemetry.Admin, admin t conn req ~back:false ~keep)
  | "POST", "/admin/rollback" -> (Telemetry.Admin, admin t conn req ~back:true ~keep)
  | "GET", "/admin/drift" -> (
    match Atomic.get t.adapt with
    | None ->
      Http.respond conn ~status:409
        ~body:
          "online adaptation is not enabled; start the daemon with --adapt\n"
        ();
      (Telemetry.Admin, (409, `Close))
    | Some r ->
      Http.respond conn ~status:200 ~keep_alive:keep
        ~content_type:"application/json; charset=utf-8" ~body:(drift_json r) ();
      (Telemetry.Admin, (200, `Keep)))
  | _, ("/admin/rollout" | "/admin/rollback") ->
    Http.respond conn ~status:405 ~body:"use POST\n" ();
    (Telemetry.Admin, (405, `Close))
  | _, "/admin/drift" ->
    Http.respond conn ~status:405 ~body:"use GET\n" ();
    (Telemetry.Admin, (405, `Close))
  | "GET", "/healthz" ->
    if Atomic.get t.draining then begin
      Http.respond conn ~status:503
        ~headers:[ ("retry-after", "1") ]
        ~body:"draining\n" ();
      (Telemetry.Healthz, (503, `Close))
    end
    else begin
      Http.respond conn ~status:200 ~keep_alive:keep ~body:"ok\n" ();
      (Telemetry.Healthz, (200, `Keep))
    end
  | "GET", "/model" ->
    Http.respond conn ~status:200 ~keep_alive:keep
      ~content_type:"application/json; charset=utf-8" ~body:(model_json t) ();
    (Telemetry.Model_info, (200, `Keep))
  | "GET", "/metrics" ->
    Http.respond conn ~status:200 ~keep_alive:keep
      ~content_type:"text/plain; version=0.0.4; charset=utf-8"
      ~body:(metrics_text t) ();
    (Telemetry.Metrics, (200, `Keep))
  | _, ("/healthz" | "/model" | "/metrics") ->
    Http.respond conn ~status:405 ~body:"use GET\n" ();
    (Telemetry.Other, (405, `Close))
  | _, path ->
    Http.respond conn ~status:404 ~body:(Printf.sprintf "no route %s\n" path) ();
    (Telemetry.Other, (404, `Close))

let handle t ~slot ~index conn =
  match Http.read_request conn with
  | exception Http.Disconnect -> `Close
  | exception Http.Timeout -> `Close
  | exception Http.Bad_request msg -> (
    match
      Http.respond conn ~status:400 ~body:(msg ^ "\n") ();
      Telemetry.observe slot Telemetry.Other ~status:400 ~seconds:0.0
    with
    | () -> `Close
    | exception _ -> `Close)
  | req ->
    let t0 = Unix.gettimeofday () in
    Telemetry.in_flight_incr t.telemetry;
    (* The decrement must survive any exit path: admission control
       compares in_flight against the queue limit, so a decrement lost
       to a raising handler would not just skew a gauge — every leak
       would permanently shrink the daemon's capacity until it sheds
       all traffic. *)
    Fun.protect
      ~finally:(fun () -> Telemetry.in_flight_decr t.telemetry)
      (fun () ->
        (* A keep-alive response is only offered when the client asked
           for it, the server is not draining, and the request carried
           no body we might leave half-read on the socket. *)
        let keep =
          req.Http.keep_alive
          && (not (Atomic.get t.draining))
          && (req.Http.meth = "POST" || req.Http.content_length = None)
          && not req.Http.chunked_body
        in
        let result =
          match dispatch t conn req ~index ~keep with
          | r -> r
          | exception (Http.Disconnect | Http.Timeout) ->
            (* nginx's 499: the client went away mid-request *)
            (Telemetry.Other, (499, `Close))
          | exception e ->
            (* A handler bug must not take the worker domain down. *)
            Log.err (fun m ->
                m "request %s %s crashed: %s" req.Http.meth req.Http.path
                  (Printexc.to_string e));
            let status = 500 in
            (match Http.respond conn ~status ~body:"internal error\n" () with
            | () -> ()
            | exception _ -> ());
            (Telemetry.Other, (status, `Close))
        in
        let endpoint, (status, outcome) = result in
        let seconds = Unix.gettimeofday () -. t0 in
        Telemetry.observe slot endpoint ~status ~seconds;
        Telemetry.add_retries slot (Http.take_io_retries conn);
        match outcome with
        | `Rows (report : Pnrule.Serve.report) ->
          Telemetry.add_rows slot
            ~rows_in:report.Pnrule.Serve.ingest.Pn_data.Ingest_report.rows_read
            ~rows_out:report.Pnrule.Serve.rows_out;
          Telemetry.add_retries slot
            report.Pnrule.Serve.ingest.Pn_data.Ingest_report.io_retries;
          if keep then `Keep else `Close
        | `Keep -> if keep then `Keep else `Close
        | `Close -> `Close)
