let log = Logs.Src.create "pn_server" ~doc:"PNrule prediction daemon"

module Log = (val Logs.src_log log)

type state = {
  model : Pnrule.Saved.t;
  generation : int;
  loaded_at : float;
}

(* A request that outlives its per-request deadline. Checked on every
   body refill and every response write, so even a client trickling one
   byte per timeout window cannot pin a worker past the deadline. *)
exception Deadline

type t = {
  state : state Atomic.t;
  load : unit -> Pnrule.Saved.t;
  telemetry : Telemetry.t;
  policy : Pn_data.Ingest_report.policy;
  chunk_size : int;
  max_body : int;
  max_rows : int;
  deadline : float;
  draining : bool Atomic.t;
  connections : int Atomic.t;
  reloads : int Atomic.t;
  reload_failures : int Atomic.t;
  worker_restarts : int Atomic.t;
}

let create ~load ~telemetry ~policy ~chunk_size ~max_body ~max_rows ~deadline
    ~draining =
  let model = load () in
  {
    state =
      Atomic.make { model; generation = 1; loaded_at = Unix.gettimeofday () };
    load;
    telemetry;
    policy;
    chunk_size;
    max_body;
    max_rows;
    deadline;
    draining;
    connections = Atomic.make 0;
    reloads = Atomic.make 0;
    reload_failures = Atomic.make 0;
    worker_restarts = Atomic.make 0;
  }

let telemetry t = t.telemetry

let state t = Atomic.get t.state

let connections t = t.connections

let worker_restarts t = t.worker_restarts

let reload t =
  match t.load () with
  | model ->
    let old = Atomic.get t.state in
    Atomic.set t.state
      { model; generation = old.generation + 1; loaded_at = Unix.gettimeofday () };
    ignore (Atomic.fetch_and_add t.reloads 1);
    Log.info (fun m -> m "model reloaded (generation %d)" (old.generation + 1));
    Ok ()
  | exception e ->
    ignore (Atomic.fetch_and_add t.reload_failures 1);
    let msg = Printexc.to_string e in
    Log.warn (fun m -> m "model reload failed, keeping old model: %s" msg);
    Error msg

(* ------------------------------------------------------------------ *)
(* Endpoints                                                            *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 -> Printf.bprintf buf "\\u%04x" (Char.code c)
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Hand-rolled on purpose: the repo carries no JSON dependency. *)
let model_json t =
  let st = Atomic.get t.state in
  let m = st.model in
  let classes = Pnrule.Saved.classes m in
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "{\"kind\": \"%s\",\n" (Pnrule.Saved.kind m);
  Printf.bprintf buf " \"target\": \"%s\",\n"
    (json_escape classes.(Pnrule.Saved.target m));
  Printf.bprintf buf " \"classes\": [%s],\n"
    (String.concat ", "
       (Array.to_list
          (Array.map (fun c -> Printf.sprintf "\"%s\"" (json_escape c)) classes)));
  (match m with
  | Pnrule.Saved.Single m ->
    let np, nn = Pnrule.Model.rule_counts m in
    Printf.bprintf buf " \"p_rules\": %d,\n \"n_rules\": %d,\n" np nn;
    Printf.bprintf buf " \"use_scoring\": %b,\n \"score_threshold\": %g,\n"
      m.Pnrule.Model.params.Pnrule.Params.use_scoring
      m.Pnrule.Model.params.Pnrule.Params.score_threshold
  | Pnrule.Saved.Boosted e ->
    Printf.bprintf buf " \"members\": %d,\n" (Pnrule.Ensemble.n_members e);
    Printf.bprintf buf " \"bias\": %g,\n \"threshold\": %g,\n"
      e.Pnrule.Ensemble.bias e.Pnrule.Ensemble.threshold);
  Printf.bprintf buf " \"generation\": %d,\n \"loaded_at\": %.3f,\n" st.generation
    st.loaded_at;
  Printf.bprintf buf " \"attributes\": [";
  Array.iteri
    (fun i (a : Pn_data.Attribute.t) ->
      if i > 0 then Buffer.add_string buf ",";
      match a.kind with
      | Pn_data.Attribute.Numeric ->
        Printf.bprintf buf "\n  {\"name\": \"%s\", \"kind\": \"numeric\"}"
          (json_escape a.name)
      | Pn_data.Attribute.Categorical values ->
        Printf.bprintf buf
          "\n  {\"name\": \"%s\", \"kind\": \"categorical\", \"arity\": %d}"
          (json_escape a.name) (Array.length values))
    (Pnrule.Saved.attrs m);
  Buffer.add_string buf "\n ]}\n";
  Buffer.contents buf

let metrics_text t =
  Telemetry.render t.telemetry ~extra:(fun buf ->
      let st = Atomic.get t.state in
      Printf.bprintf buf
        "# HELP pnrule_model_generation Model generation (1 = initial load, +1 \
         per reload).\n\
         # TYPE pnrule_model_generation gauge\n\
         pnrule_model_generation %d\n"
        st.generation;
      Printf.bprintf buf
        "# HELP pnrule_model_reloads_total Successful hot reloads.\n\
         # TYPE pnrule_model_reloads_total counter\n\
         pnrule_model_reloads_total %d\n"
        (Atomic.get t.reloads);
      Printf.bprintf buf
        "# HELP pnrule_model_reload_failures_total Reload attempts that kept \
         the old model.\n\
         # TYPE pnrule_model_reload_failures_total counter\n\
         pnrule_model_reload_failures_total %d\n"
        (Atomic.get t.reload_failures);
      Printf.bprintf buf
        "# HELP pnrule_connections_total Connections accepted.\n\
         # TYPE pnrule_connections_total counter\n\
         pnrule_connections_total %d\n"
        (Atomic.get t.connections);
      Printf.bprintf buf
        "# HELP pnrule_worker_restarts_total Worker domains respawned after \
         dying on an escaped exception.\n\
         # TYPE pnrule_worker_restarts_total counter\n\
         pnrule_worker_restarts_total %d\n"
        (Atomic.get t.worker_restarts))

(* Serving pools: each worker domain is already one lane of parallelism,
   and Pool.map_array does not support concurrent submitters — so every
   request scores sequentially in its worker domain. *)
let predict t conn (req : Http.request) ~keep =
  (* Per-request overrides, validated before any body byte is read. *)
  let q name = List.assoc_opt name req.query in
  let policy =
    match q "on-error" with
    | None -> Ok t.policy
    | Some v -> (
      match Pn_data.Ingest_report.policy_of_string v with
      | Some p -> Ok p
      | None -> Error (Printf.sprintf "unknown on-error policy %S" v))
  in
  let scores =
    match q "scores" with
    | None | Some "0" | Some "false" -> Ok false
    | Some "1" | Some "true" -> Ok true
    | Some v -> Error (Printf.sprintf "bad scores flag %S" v)
  in
  (* Content negotiation: a binary columnar body is routed to the
     [.pnc] fast path; anything else (including no Content-Type) keeps
     the historical CSV behaviour. *)
  let columnar =
    match Http.header req "content-type" with
    | None -> false
    | Some v ->
      let v =
        match String.index_opt v ';' with
        | Some i -> String.sub v 0 i
        | None -> v
      in
      String.lowercase_ascii (String.trim v) = "application/x-pnrule-columnar"
  in
  let scores =
    if columnar && q "class-column" <> None then
      Error "class-column does not apply to columnar input (labels are in the file)"
    else scores
  in
  match (policy, scores) with
  | Error msg, _ | _, Error msg ->
    Http.respond conn ~status:400 ~body:(msg ^ "\n") ();
    (400, `Close)
  | Ok policy, Ok scores -> (
    if req.Http.chunked_body then begin
      Http.respond conn ~status:411
        ~body:"chunked request bodies are not supported; send Content-Length\n" ();
      (411, `Close)
    end
    else
      match req.Http.content_length with
      | None ->
        Http.respond conn ~status:411 ~body:"Content-Length required\n" ();
        (411, `Close)
      | Some len when len > t.max_body ->
        Http.respond conn ~status:413
          ~body:
            (Printf.sprintf "body of %d bytes exceeds the %d byte limit\n" len
               t.max_body)
          ();
        (413, `Close)
      | Some len -> (
        (match Http.header req "expect" with
        | Some v when String.lowercase_ascii v = "100-continue" ->
          Http.continue_100 conn
        | Some _ | None -> ());
        let st = Atomic.get t.state in
        (* Deadline guard: checked on every body refill and every
           response write, the two points where a slow peer can stall
           the request indefinitely. 0 disables it. *)
        let deadline_at =
          if t.deadline > 0.0 then Unix.gettimeofday () +. t.deadline
          else Float.infinity
        in
        let guard () =
          if Unix.gettimeofday () > deadline_at then raise Deadline
        in
        let reader = Http.body_reader conn ~length:len in
        let source =
          Pn_data.Stream.of_refill (fun buf ->
              guard ();
              reader buf)
        in
        let resp = Http.start_stream conn ~status:200 ~keep_alive:keep () in
        let write s =
          guard ();
          Http.stream_write resp s
        in
        match
          if columnar then
            Pnrule.Serve.predict_columnar_stream ~policy ~scores
              ~max_rows:t.max_rows ~pool:Pn_util.Pool.sequential ~model:st.model
              ~source ~write ()
          else
            Pnrule.Serve.predict_stream ~policy ~chunk_size:t.chunk_size
              ?class_column:(q "class-column") ~scores ~max_rows:t.max_rows
              ~pool:Pn_util.Pool.sequential ~model:st.model ~source ~write ()
        with
        | report ->
          Http.stream_finish resp;
          (200, `Rows report)
        | exception Deadline ->
          if Http.stream_started resp then (408, `Close)
          else begin
            Http.respond conn ~status:408
              ~body:
                (Printf.sprintf "request exceeded the %gs deadline\n" t.deadline)
              ();
            (408, `Close)
          end
        | exception Pnrule.Serve.Error msg ->
          if Http.stream_started resp then begin
            (* The 200 head is on the wire; all we can do is truncate the
               chunked body so the client sees a failed transfer. *)
            Log.debug (fun m -> m "predict failed mid-stream: %s" msg);
            (400, `Close)
          end
          else begin
            Http.respond conn ~status:400 ~body:(msg ^ "\n") ();
            (400, `Close)
          end
        | exception Pnrule.Serve.Limit msg ->
          if Http.stream_started resp then (413, `Close)
          else begin
            Http.respond conn ~status:413 ~body:(msg ^ "\n") ();
            (413, `Close)
          end))

let dispatch t conn (req : Http.request) ~keep =
  match (req.Http.meth, req.Http.path) with
  | "POST", "/predict" -> (Telemetry.Predict, predict t conn req ~keep)
  | _, "/predict" ->
    Http.respond conn ~status:405 ~body:"use POST\n" ();
    (Telemetry.Predict, (405, `Close))
  | "GET", "/healthz" ->
    if Atomic.get t.draining then begin
      Http.respond conn ~status:503 ~body:"draining\n" ();
      (Telemetry.Healthz, (503, `Close))
    end
    else begin
      Http.respond conn ~status:200 ~keep_alive:keep ~body:"ok\n" ();
      (Telemetry.Healthz, (200, `Keep))
    end
  | "GET", "/model" ->
    Http.respond conn ~status:200 ~keep_alive:keep
      ~content_type:"application/json; charset=utf-8" ~body:(model_json t) ();
    (Telemetry.Model_info, (200, `Keep))
  | "GET", "/metrics" ->
    Http.respond conn ~status:200 ~keep_alive:keep
      ~content_type:"text/plain; version=0.0.4; charset=utf-8"
      ~body:(metrics_text t) ();
    (Telemetry.Metrics, (200, `Keep))
  | _, ("/healthz" | "/model" | "/metrics") ->
    Http.respond conn ~status:405 ~body:"use GET\n" ();
    (Telemetry.Other, (405, `Close))
  | _, path ->
    Http.respond conn ~status:404 ~body:(Printf.sprintf "no route %s\n" path) ();
    (Telemetry.Other, (404, `Close))

let handle t ~slot conn =
  match Http.read_request conn with
  | exception Http.Disconnect -> `Close
  | exception Http.Timeout -> `Close
  | exception Http.Bad_request msg -> (
    match
      Http.respond conn ~status:400 ~body:(msg ^ "\n") ();
      Telemetry.observe slot Telemetry.Other ~status:400 ~seconds:0.0
    with
    | () -> `Close
    | exception _ -> `Close)
  | req -> (
    let t0 = Unix.gettimeofday () in
    Telemetry.in_flight_incr t.telemetry;
    (* A keep-alive response is only offered when the client asked for
       it, the server is not draining, and the request carried no body
       we might leave half-read on the socket. *)
    let keep =
      req.Http.keep_alive
      && (not (Atomic.get t.draining))
      && (req.Http.meth = "POST" || req.Http.content_length = None)
      && not req.Http.chunked_body
    in
    let result =
      match dispatch t conn req ~keep with
      | r -> r
      | exception (Http.Disconnect | Http.Timeout) ->
        (* nginx's 499: the client went away mid-request *)
        (Telemetry.Other, (499, `Close))
      | exception e ->
        (* A handler bug must not take the worker domain down. *)
        Log.err (fun m ->
            m "request %s %s crashed: %s" req.Http.meth req.Http.path
              (Printexc.to_string e));
        let status = 500 in
        (match Http.respond conn ~status ~body:"internal error\n" () with
        | () -> ()
        | exception _ -> ());
        (Telemetry.Other, (status, `Close))
    in
    let endpoint, (status, outcome) = result in
    Telemetry.in_flight_decr t.telemetry;
    let seconds = Unix.gettimeofday () -. t0 in
    Telemetry.observe slot endpoint ~status ~seconds;
    Telemetry.add_retries slot (Http.take_io_retries conn);
    match outcome with
    | `Rows (report : Pnrule.Serve.report) ->
      Telemetry.add_rows slot
        ~rows_in:report.Pnrule.Serve.ingest.Pn_data.Ingest_report.rows_read
        ~rows_out:report.Pnrule.Serve.rows_out;
      Telemetry.add_retries slot
        report.Pnrule.Serve.ingest.Pn_data.Ingest_report.io_retries;
      if keep then `Keep else `Close
    | `Keep -> if keep then `Keep else `Close
    | `Close -> `Close)
