type endpoint =
  | Predict
  | Healthz
  | Model_info
  | Metrics
  | Admin
  | Feedback
  | Other

let endpoints = [| Predict; Healthz; Model_info; Metrics; Admin; Feedback; Other |]

let n_endpoints = Array.length endpoints

let endpoint_index = function
  | Predict -> 0
  | Healthz -> 1
  | Model_info -> 2
  | Metrics -> 3
  | Admin -> 4
  | Feedback -> 5
  | Other -> 6

let endpoint_label = function
  | Predict -> "predict"
  | Healthz -> "healthz"
  | Model_info -> "model"
  | Metrics -> "metrics"
  | Admin -> "admin"
  | Feedback -> "feedback"
  | Other -> "other"

let buckets =
  [| 0.0005; 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0; 2.5 |]

let n_buckets = Array.length buckets

(* Single-writer per slot: each atomic is only ever written by its
   owning worker domain, so there is no contention — Atomic is used for
   publication (the scraping domain must see a coherent value), not for
   mutual exclusion. *)
type slot = {
  requests : int Atomic.t array;  (* per endpoint *)
  errors : int Atomic.t array;  (* per endpoint, status >= 400 *)
  lat_buckets : int Atomic.t array array;  (* per endpoint x bucket *)
  lat_sum : float Atomic.t array;  (* per endpoint, seconds *)
  rows_in : int Atomic.t;
  rows_out : int Atomic.t;
  io_retries : int Atomic.t;
}

type t = {
  slots : slot array;
  in_flight : int Atomic.t;
}

let make_slot () =
  {
    requests = Array.init n_endpoints (fun _ -> Atomic.make 0);
    errors = Array.init n_endpoints (fun _ -> Atomic.make 0);
    lat_buckets =
      Array.init n_endpoints (fun _ -> Array.init n_buckets (fun _ -> Atomic.make 0));
    lat_sum = Array.init n_endpoints (fun _ -> Atomic.make 0.0);
    rows_in = Atomic.make 0;
    rows_out = Atomic.make 0;
    io_retries = Atomic.make 0;
  }

let create ~slots =
  if slots < 1 then invalid_arg "Telemetry.create: slots";
  { slots = Array.init slots (fun _ -> make_slot ()); in_flight = Atomic.make 0 }

let slot t i = t.slots.(i)

(* Uncontended by construction, so a plain read-modify-write is fine. *)
let bump a = Atomic.set a (Atomic.get a + 1)

let add a n = Atomic.set a (Atomic.get a + n)

let observe s ep ~status ~seconds =
  let e = endpoint_index ep in
  bump s.requests.(e);
  if status >= 400 then bump s.errors.(e);
  Atomic.set s.lat_sum.(e) (Atomic.get s.lat_sum.(e) +. seconds);
  let b = ref 0 in
  while !b < n_buckets && seconds > buckets.(!b) do
    incr b
  done;
  if !b < n_buckets then bump s.lat_buckets.(e).(!b)

let add_rows s ~rows_in ~rows_out =
  add s.rows_in rows_in;
  add s.rows_out rows_out

let add_retries s n = if n > 0 then add s.io_retries n

let in_flight_incr t = ignore (Atomic.fetch_and_add t.in_flight 1)

let in_flight_decr t = ignore (Atomic.fetch_and_add t.in_flight (-1))

let in_flight_count t = Atomic.get t.in_flight

(* ------------------------------------------------------------------ *)
(* Scrape-time merge + exposition text                                  *)
(* ------------------------------------------------------------------ *)

let sum_int t f = Array.fold_left (fun acc s -> acc + Atomic.get (f s)) 0 t.slots

let sum_float t f =
  Array.fold_left (fun acc s -> acc +. Atomic.get (f s)) 0.0 t.slots

let header buf name help kind =
  Printf.bprintf buf "# HELP %s %s\n# TYPE %s %s\n" name help name kind

let render t ~extra =
  let buf = Buffer.create 4096 in
  header buf "pnrule_requests_total" "Requests handled, by endpoint." "counter";
  Array.iter
    (fun ep ->
      let e = endpoint_index ep in
      Printf.bprintf buf "pnrule_requests_total{endpoint=%S} %d\n"
        (endpoint_label ep)
        (sum_int t (fun s -> s.requests.(e))))
    endpoints;
  header buf "pnrule_request_errors_total"
    "Requests answered with a 4xx/5xx status, by endpoint." "counter";
  Array.iter
    (fun ep ->
      let e = endpoint_index ep in
      Printf.bprintf buf "pnrule_request_errors_total{endpoint=%S} %d\n"
        (endpoint_label ep)
        (sum_int t (fun s -> s.errors.(e))))
    endpoints;
  header buf "pnrule_rows_in_total"
    "Data rows decoded from predict bodies (kept or skipped)." "counter";
  Printf.bprintf buf "pnrule_rows_in_total %d\n" (sum_int t (fun s -> s.rows_in));
  header buf "pnrule_rows_out_total" "Prediction lines written." "counter";
  Printf.bprintf buf "pnrule_rows_out_total %d\n" (sum_int t (fun s -> s.rows_out));
  header buf "pnrule_io_retries_total"
    "Transient IO errors retried with backoff (socket reads and writes)."
    "counter";
  Printf.bprintf buf "pnrule_io_retries_total %d\n"
    (sum_int t (fun s -> s.io_retries));
  header buf "pnrule_in_flight" "Requests currently being processed." "gauge";
  Printf.bprintf buf "pnrule_in_flight %d\n" (Atomic.get t.in_flight);
  header buf "pnrule_request_seconds" "Request latency, by endpoint." "histogram";
  Array.iter
    (fun ep ->
      let e = endpoint_index ep in
      let label = endpoint_label ep in
      let cumulative = ref 0 in
      Array.iteri
        (fun b le ->
          cumulative := !cumulative + sum_int t (fun s -> s.lat_buckets.(e).(b));
          Printf.bprintf buf "pnrule_request_seconds_bucket{endpoint=%S,le=\"%g\"} %d\n"
            label le !cumulative)
        buckets;
      let count = sum_int t (fun s -> s.requests.(e)) in
      Printf.bprintf buf "pnrule_request_seconds_bucket{endpoint=%S,le=\"+Inf\"} %d\n"
        label count;
      Printf.bprintf buf "pnrule_request_seconds_sum{endpoint=%S} %.6f\n" label
        (sum_float t (fun s -> s.lat_sum.(e)));
      Printf.bprintf buf "pnrule_request_seconds_count{endpoint=%S} %d\n" label count)
    endpoints;
  extra buf;
  Buffer.contents buf
