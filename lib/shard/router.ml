let log = Logs.Src.create "pn_shard.router" ~doc:"shard router lifecycle"

module Log = (val Logs.src_log log)
module Http = Pn_server.Http

(* ------------------------------------------------------------------ *)
(* Configuration                                                        *)
(* ------------------------------------------------------------------ *)

type config = {
  host : string;
  port : int;
  domains : int;  (* router worker domains *)
  backends : int;  (* shard processes to supervise *)
  backend_argv : index:int -> port:int -> string array;
  backend_env : index:int -> string array option;
      (* [None] inherits the router's environment — the hook exists so
         tests can arm per-shard PNRULE_FAULTS *)
  max_body : int;
  idle_timeout : float;  (* client keep-alive idle bound *)
  proxy_timeout : float;  (* per-IO bound on proxy legs *)
  probe_interval : float;  (* supervisor tick *)
  probe_timeout : float;  (* per-IO bound on probes and scrapes *)
  fail_threshold : int;  (* consecutive bad probes before escalating *)
  start_budget : float;  (* seconds a starting shard gets to go healthy *)
  flap_window : float;  (* healthy seconds before the backoff ladder resets *)
  respawn_cap : int;  (* backoff ladder cap (flap damping) *)
  drain_budget : float;  (* SIGTERM-to-SIGKILL grace per shard on drain *)
  backlog : int;
  queue_limit : int;  (* admission bound: queued + in-flight *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    domains = 1;
    backends = 2;
    backend_argv = (fun ~index:_ ~port:_ -> [||]);
    backend_env = (fun ~index:_ -> None);
    max_body = 64 * 1024 * 1024;
    idle_timeout = 5.0;
    proxy_timeout = 30.0;
    probe_interval = 0.05;
    probe_timeout = 2.0;
    fail_threshold = 3;
    start_budget = 30.0;
    flap_window = 10.0;
    respawn_cap = 8;
    drain_budget = 5.0;
    backlog = 128;
    queue_limit = 256;
  }

(* ------------------------------------------------------------------ *)
(* Router telemetry                                                     *)
(* ------------------------------------------------------------------ *)

(* The router's own series live under [pnrule_router_*] so they can
   never collide with the backend [pnrule_*] series merged into the
   same /metrics scrape. Plain shared atomics (not the per-domain
   Telemetry slots): the router's counters are incremented once per
   request, not per chunk, so contention is negligible. *)

let endpoint_labels =
  [| "predict"; "feedback"; "healthz"; "model"; "metrics"; "admin"; "other" |]

let ep_predict = 0
let ep_feedback = 1
let ep_healthz = 2
let ep_model = 3
let ep_metrics = 4
let ep_admin = 5
let ep_other = 6

let classify path =
  match path with
  | "/predict" -> ep_predict
  | "/feedback" -> ep_feedback
  | "/healthz" -> ep_healthz
  | "/model" -> ep_model
  | "/metrics" -> ep_metrics
  | _ ->
    if String.length path >= 7 && String.sub path 0 7 = "/admin/" then ep_admin
    else ep_other

type rtel = {
  requests : int Atomic.t array;  (* per endpoint class *)
  errors : int Atomic.t array;  (* responses >= 400, per class *)
  failovers : int Atomic.t;  (* re-dispatches to another shard *)
  proxy_retries : int Atomic.t;  (* transient IO retries on proxy legs *)
  respawns : int Atomic.t;  (* shard processes respawned *)
  spawn_failures : int Atomic.t;  (* spawn attempts that failed outright *)
  shed_overload : int Atomic.t;
  shed_no_backend : int Atomic.t;
  shed_draining : int Atomic.t;
  connections : int Atomic.t;
  in_flight : int Atomic.t;
}

let make_rtel () =
  let n = Array.length endpoint_labels in
  {
    requests = Array.init n (fun _ -> Atomic.make 0);
    errors = Array.init n (fun _ -> Atomic.make 0);
    failovers = Atomic.make 0;
    proxy_retries = Atomic.make 0;
    respawns = Atomic.make 0;
    spawn_failures = Atomic.make 0;
    shed_overload = Atomic.make 0;
    shed_no_backend = Atomic.make 0;
    shed_draining = Atomic.make 0;
    connections = Atomic.make 0;
    in_flight = Atomic.make 0;
  }

(* ------------------------------------------------------------------ *)
(* Router state                                                         *)
(* ------------------------------------------------------------------ *)

module Q = struct
  type 'a t = { q : 'a Queue.t; m : Mutex.t; c : Condition.t }

  let create () =
    { q = Queue.create (); m = Mutex.create (); c = Condition.create () }

  let push t v =
    Mutex.lock t.m;
    Queue.push v t.q;
    Condition.signal t.c;
    Mutex.unlock t.m

  let pop t =
    Mutex.lock t.m;
    while Queue.is_empty t.q do
      Condition.wait t.c t.m
    done;
    let v = Queue.pop t.q in
    Mutex.unlock t.m;
    v
end

type worker_slot = { mutable domain : unit Domain.t; dead : bool Atomic.t }

type t = {
  config : config;
  lfd : Unix.file_descr;
  port : int;
  backends : Backend.t array;
  queue : Unix.file_descr option Q.t;
  queued : int Atomic.t;
  stop_req : bool Atomic.t;
  draining : bool Atomic.t;
  stop_backends : bool Atomic.t;  (* raised only after workers drained *)
  chld : bool Atomic.t;  (* SIGCHLD arrived; reap promptly *)
  rr : int Atomic.t;  (* round-robin cursor *)
  rtel : rtel;
  admin : Mutex.t;  (* serializes rolling rollout/rollback *)
  mutable workers : worker_slot array;
  mutable listener : unit Domain.t option;
  mutable supervisor : unit Domain.t option;
}

let port t = t.port
let request_stop t = Atomic.set t.stop_req true
let note_chld t = Atomic.set t.chld true

let healthy_count t =
  Array.fold_left
    (fun acc b -> if Atomic.get b.Backend.state = Backend.Healthy then acc + 1 else acc)
    0 t.backends

let backend_pid t i = Atomic.get t.backends.(i).Backend.pid
let backend_port t i = Atomic.get t.backends.(i).Backend.port
let backend_state t i = Atomic.get t.backends.(i).Backend.state

(* ------------------------------------------------------------------ *)
(* Proxy legs                                                           *)
(* ------------------------------------------------------------------ *)

(* One request/response exchange with one shard on a fresh connection.
   The leg carries the [router.proxy_write] / [router.proxy_read] fault
   points, so chaos runs can kill either direction deterministically;
   transient retries inside the leg are drained into
   [pnrule_router_proxy_io_retries_total] whether the leg succeeds or
   not. *)
let attempt t b ~meth ~target ~headers ~body =
  let port = Atomic.get b.Backend.port in
  match
    let c =
      Http.connect ~host:t.config.host ~port ~timeout:t.config.proxy_timeout
        ~write_fault:"router.proxy_write" ~read_fault:"router.proxy_read" ()
    in
    Fun.protect
      ~finally:(fun () ->
        ignore
          (Atomic.fetch_and_add t.rtel.proxy_retries (Http.take_io_retries c));
        Http.close c)
      (fun () ->
        Http.send_request c ~meth ~target ~headers ?body ();
        Http.read_response ~max_body:Sys.max_string_length c)
  with
  | resp -> Ok resp
  | exception Http.Bad_request msg -> Error (`Malformed msg)
  | exception Http.Disconnect -> Error (`Io "connection lost")
  | exception Http.Timeout -> Error (`Io "timed out")
  | exception Unix.Unix_error (e, _, _) -> Error (`Io (Unix.error_message e))
  | exception Pn_util.Fault.Injected m -> Error (`Io ("injected fault " ^ m))

(* Probes and scrapes run on clean conns (no fault points): injected
   proxy chaos must not make the supervisor's view of shard health
   nondeterministic. *)
let scrape t b target =
  match
    let c =
      Http.connect ~host:t.config.host
        ~port:(Atomic.get b.Backend.port)
        ~timeout:t.config.probe_timeout ()
    in
    Fun.protect
      ~finally:(fun () -> Http.close c)
      (fun () ->
        Http.send_request c ~meth:"GET" ~target
          ~headers:[ ("connection", "close") ]
          ();
        Http.read_response c)
  with
  | resp -> Some resp
  | exception _ -> None

let probe t b =
  match scrape t b "/healthz" with Some r -> r.Http.status = 200 | None -> false

(* Round-robin over healthy shards with transparent failover: an IO
   failure trips the shard's breaker and re-dispatches the buffered
   request to the next healthy shard (each shard tried at most once) —
   scores are idempotent, so an admitted request is never lost to a
   crash. A parseable-but-malformed response is a protocol bug, not a
   crash: no retry, deterministic 502. *)
let dispatch_failover t ~meth ~target ~headers ~body =
  let n = Array.length t.backends in
  let tried = Array.make n false in
  let start = Atomic.fetch_and_add t.rr 1 in
  let pick () =
    let rec go k =
      if k >= n then None
      else begin
        let b = t.backends.((start + k) mod n) in
        if
          (not tried.(b.Backend.index))
          && Atomic.get b.Backend.state = Backend.Healthy
        then Some b
        else go (k + 1)
      end
    in
    go 0
  in
  let rec go ntried =
    match pick () with
    | None -> if ntried = 0 then Error `No_backend else Error (`Exhausted ntried)
    | Some b -> (
      tried.(b.Backend.index) <- true;
      if ntried > 0 then ignore (Atomic.fetch_and_add t.rtel.failovers 1);
      match attempt t b ~meth ~target ~headers ~body with
      | Ok resp -> Ok (b, resp)
      | Error (`Io msg) ->
        ignore (Backend.trip b);
        Log.warn (fun m ->
            m "backend %d (127.0.0.1:%d) failed mid-request (%s); failing over"
              b.Backend.index
              (Atomic.get b.Backend.port)
              msg);
        go (ntried + 1)
      | Error (`Malformed msg) ->
        ignore (Backend.trip b);
        Error (`Bad_gateway (b, msg)))
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Aggregated endpoints                                                 *)
(* ------------------------------------------------------------------ *)

(* Merge Prometheus text bodies: series with the same name+labels sum,
   comment lines keep their first occurrence, order is first-seen.
   Backends are identical processes, so their HELP/TYPE lines agree. *)
let merge_scrapes bodies =
  let items = ref [] in
  let vals : (string, float) Hashtbl.t = Hashtbl.create 128 in
  let seen_comment : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun body ->
      String.split_on_char '\n' body
      |> List.iter (fun line ->
             if line = "" then ()
             else if line.[0] = '#' then begin
               if not (Hashtbl.mem seen_comment line) then begin
                 Hashtbl.add seen_comment line ();
                 items := `Comment line :: !items
               end
             end
             else
               match String.rindex_opt line ' ' with
               | None -> ()
               | Some sp -> (
                 let key = String.sub line 0 sp in
                 match
                   float_of_string_opt
                     (String.sub line (sp + 1) (String.length line - sp - 1))
                 with
                 | None -> ()
                 | Some v -> (
                   match Hashtbl.find_opt vals key with
                   | None ->
                     Hashtbl.add vals key v;
                     items := `Series key :: !items
                   | Some old -> Hashtbl.replace vals key (old +. v)))))
    bodies;
  let buf = Buffer.create 4096 in
  List.iter
    (function
      | `Comment l ->
        Buffer.add_string buf l;
        Buffer.add_char buf '\n'
      | `Series k ->
        let v = Hashtbl.find vals k in
        if Float.is_integer v && Float.abs v < 1e15 then
          Printf.bprintf buf "%s %.0f\n" k v
        else Printf.bprintf buf "%s %.9g\n" k v)
    (List.rev !items);
  Buffer.contents buf

let router_metrics_text t =
  let buf = Buffer.create 2048 in
  let counter name help render =
    Printf.bprintf buf "# HELP %s %s\n# TYPE %s counter\n" name help name;
    render name
  in
  let gauge name help render =
    Printf.bprintf buf "# HELP %s %s\n# TYPE %s gauge\n" name help name;
    render name
  in
  let scalar v name = Printf.bprintf buf "%s %d\n" name v in
  counter "pnrule_router_requests_total" "Requests seen by the shard router"
    (fun name ->
      Array.iteri
        (fun i c ->
          Printf.bprintf buf "%s{endpoint=%S} %d\n" name endpoint_labels.(i)
            (Atomic.get c))
        t.rtel.requests);
  counter "pnrule_router_request_errors_total"
    "Router responses with status >= 400" (fun name ->
      Array.iteri
        (fun i c ->
          Printf.bprintf buf "%s{endpoint=%S} %d\n" name endpoint_labels.(i)
            (Atomic.get c))
        t.rtel.errors);
  counter "pnrule_router_failovers_total"
    "Requests transparently re-dispatched to another shard after a failure"
    (scalar (Atomic.get t.rtel.failovers));
  counter "pnrule_router_proxy_io_retries_total"
    "Transient IO retries on router->shard proxy legs"
    (scalar (Atomic.get t.rtel.proxy_retries));
  counter "pnrule_router_respawns_total" "Shard processes respawned"
    (scalar (Atomic.get t.rtel.respawns));
  counter "pnrule_router_spawn_failures_total"
    "Shard spawn attempts that failed"
    (scalar (Atomic.get t.rtel.spawn_failures));
  counter "pnrule_router_shed_total" "Requests refused by the router"
    (fun name ->
      Printf.bprintf buf "%s{reason=\"overload\"} %d\n" name
        (Atomic.get t.rtel.shed_overload);
      Printf.bprintf buf "%s{reason=\"no_backend\"} %d\n" name
        (Atomic.get t.rtel.shed_no_backend);
      Printf.bprintf buf "%s{reason=\"draining\"} %d\n" name
        (Atomic.get t.rtel.shed_draining));
  counter "pnrule_router_connections_total" "Client connections accepted"
    (scalar (Atomic.get t.rtel.connections));
  gauge "pnrule_router_backends" "Configured shard count"
    (scalar (Array.length t.backends));
  gauge "pnrule_router_backends_healthy" "Shards currently in rotation"
    (scalar (healthy_count t));
  gauge "pnrule_router_backend_up" "Per-shard health (1 = in rotation)"
    (fun name ->
      Array.iter
        (fun b ->
          Printf.bprintf buf "%s{backend=\"%d\"} %d\n" name b.Backend.index
            (if Atomic.get b.Backend.state = Backend.Healthy then 1 else 0))
        t.backends);
  Buffer.contents buf

let metrics_body t =
  let bodies =
    Array.to_list t.backends
    |> List.filter_map (fun b ->
           if Atomic.get b.Backend.state = Backend.Healthy then
             match scrape t b "/metrics" with
             | Some r when r.Http.status = 200 -> Some r.Http.body
             | _ -> None
           else None)
  in
  router_metrics_text t ^ merge_scrapes bodies

let model_body t =
  let shards =
    Array.to_list t.backends
    |> List.map (fun b ->
           let st = Atomic.get b.Backend.state in
           if st = Backend.Healthy then
             match scrape t b "/model" with
             | Some r when r.Http.status = 200 ->
               Printf.sprintf
                 "{\"index\": %d, \"port\": %d, \"state\": \"healthy\", \
                  \"model\": %s}"
                 b.Backend.index
                 (Atomic.get b.Backend.port)
                 (String.trim r.Http.body)
             | _ ->
               Printf.sprintf
                 "{\"index\": %d, \"port\": %d, \"state\": \"unreachable\"}"
                 b.Backend.index
                 (Atomic.get b.Backend.port)
           else
             Printf.sprintf "{\"index\": %d, \"port\": %d, \"state\": %S}"
               b.Backend.index
               (Atomic.get b.Backend.port)
               (Backend.state_label st))
  in
  Printf.sprintf
    "{\"router\": {\"backends\": %d, \"healthy\": %d}, \"shards\": [%s]}\n"
    (Array.length t.backends) (healthy_count t)
    (String.concat ", " shards)

let backends_body t =
  let rows =
    Array.to_list t.backends
    |> List.map (fun b ->
           Printf.sprintf
             "{\"index\": %d, \"port\": %d, \"pid\": %d, \"state\": %S, \
              \"respawn_attempt\": %d, \"proxied\": %d}"
             b.Backend.index
             (Atomic.get b.Backend.port)
             (Atomic.get b.Backend.pid)
             (Backend.state_label (Atomic.get b.Backend.state))
             b.Backend.respawn_attempt
             (Atomic.get b.Backend.proxied))
  in
  Printf.sprintf "[%s]\n" (String.concat ", " rows)

(* ------------------------------------------------------------------ *)
(* Rolling admin fan-out                                                *)
(* ------------------------------------------------------------------ *)

(* Flip one shard at a time, in index order, aborting on the first
   failure: survivors keep serving the generation they already hold, so
   no response ever mixes generations, and the error names the stuck
   shard. Requires the whole fleet healthy up front — rolling over a
   degraded fleet would leave even less capacity mid-flip. *)
let rolling_admin t ~back ~query =
  if not (Mutex.try_lock t.admin) then
    ( 503,
      [ ("retry-after", "1") ],
      "rolling admin operation already in progress; retry later\n" )
  else
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.admin)
      (fun () ->
        let action = if back then "rollback" else "rollout" in
        let n = Array.length t.backends in
        match
          Array.fold_left
            (fun acc b ->
              match acc with
              | Some _ -> acc
              | None ->
                if Atomic.get b.Backend.state <> Backend.Healthy then Some b
                else None)
            None t.backends
        with
        | Some b ->
          ( 503,
            [ ("retry-after", "1") ],
            Printf.sprintf
              "backend %d is %s; the whole fleet must be healthy to %s\n"
              b.Backend.index
              (Backend.state_label (Atomic.get b.Backend.state))
              action )
        | None ->
          let target =
            "/admin/" ^ action
            ^ match query with [] -> "" | q -> "?" ^ Http.encode_query q
          in
          let coverage i =
            if i = 0 then "no backends were flipped"
            else
              Printf.sprintf
                "backends 0..%d serve the new generation; %d..%d remain on \
                 the old"
                (i - 1) i (n - 1)
          in
          let rec flip i last_body =
            if i >= n then
              ( 200,
                [],
                Printf.sprintf
                  "{\"action\": %S, \"backends\": %d, \"result\": %s}\n" action
                  n (String.trim last_body) )
            else begin
              let b = t.backends.(i) in
              match
                attempt t b ~meth:"POST" ~target
                  ~headers:[ ("connection", "close") ]
                  ~body:None
              with
              | Ok resp when resp.Http.status = 200 ->
                Log.info (fun m ->
                    m "%s: backend %d flipped" action b.Backend.index);
                flip (i + 1) resp.Http.body
              | Ok resp when i = 0 && resp.Http.status = 409 ->
                (* Nothing flipped anywhere yet: relay the refusal
                   (e.g. nothing to roll out to). *)
                (409, [], resp.Http.body)
              | Ok resp ->
                ( 500,
                  [],
                  Printf.sprintf
                    "%s aborted at backend %d (127.0.0.1:%d): HTTP %d: %s; %s\n"
                    action b.Backend.index
                    (Atomic.get b.Backend.port)
                    resp.Http.status
                    (String.trim resp.Http.body)
                    (coverage i) )
              | Error (`Io msg) | Error (`Malformed msg) ->
                ignore (Backend.trip b);
                ( 500,
                  [],
                  Printf.sprintf
                    "%s aborted at backend %d (127.0.0.1:%d): %s; %s\n" action
                    b.Backend.index
                    (Atomic.get b.Backend.port)
                    msg (coverage i) )
            end
          in
          flip 0 "{}")

(* ------------------------------------------------------------------ *)
(* Request handling                                                     *)
(* ------------------------------------------------------------------ *)

let observe t ~ep ~status =
  ignore (Atomic.fetch_and_add t.rtel.requests.(ep) 1);
  if status >= 400 then ignore (Atomic.fetch_and_add t.rtel.errors.(ep) 1)

let read_body conn ~length =
  let reader = Http.body_reader conn ~length in
  let out = Buffer.create (min length 65536) in
  let tmp = Bytes.create 65536 in
  let rec go () =
    let n = reader tmp in
    if n > 0 then begin
      Buffer.add_subbytes out tmp 0 n;
      go ()
    end
  in
  go ();
  Buffer.contents out

let encode_target req =
  let path =
    String.split_on_char '/' req.Http.path
    |> List.map Http.url_encode |> String.concat "/"
  in
  match req.Http.query with
  | [] -> path
  | q -> path ^ "?" ^ Http.encode_query q

(* Proxy one scoring request: buffer the body (it must survive the
   first shard dying mid-exchange), dispatch with failover, relay the
   winning response under Content-Length framing. The body bytes are
   relayed untouched, so predictions through the router are
   byte-identical to a direct backend (and to batch Serve). *)
let proxy t conn req ~ep ~keep =
  if Atomic.get t.draining then begin
    ignore (Atomic.fetch_and_add t.rtel.shed_draining 1);
    observe t ~ep ~status:503;
    Http.respond conn ~status:503
      ~headers:[ ("retry-after", "1") ]
      ~body:"draining; retry later\n" ();
    `Close
  end
  else if req.Http.chunked_body then begin
    observe t ~ep ~status:411;
    Http.respond conn ~status:411
      ~body:"chunked request bodies are not supported; send Content-Length\n"
      ();
    `Close
  end
  else
    match req.Http.content_length with
    | None ->
      observe t ~ep ~status:411;
      Http.respond conn ~status:411 ~body:"Content-Length required\n" ();
      `Close
    | Some len when len > t.config.max_body ->
      observe t ~ep ~status:413;
      Http.respond conn ~status:413 ~body:"request body too large\n" ();
      `Close
    | Some len -> (
      (match Http.header req "expect" with
      | Some e when String.lowercase_ascii e = "100-continue" ->
        Http.continue_100 conn
      | _ -> ());
      match read_body conn ~length:len with
      | exception (Http.Disconnect | Http.Timeout) ->
        (* The client vanished before the request was admitted. *)
        `Close
      | body -> (
        let target = encode_target req in
        let headers =
          ("connection", "close")
          ::
          (match Http.header req "content-type" with
          | Some ct -> [ ("content-type", ct) ]
          | None -> [])
        in
        match
          dispatch_failover t ~meth:req.Http.meth ~target ~headers
            ~body:(Some body)
        with
        | Ok (b, resp) ->
          ignore (Atomic.fetch_and_add b.Backend.proxied 1);
          observe t ~ep ~status:resp.Http.status;
          let content_type =
            Option.value
              (Http.rheader resp "content-type")
              ~default:"text/plain; charset=utf-8"
          in
          let extra =
            match Http.rheader resp "retry-after" with
            | Some v -> [ ("retry-after", v) ]
            | None -> []
          in
          Http.respond conn ~content_type ~keep_alive:keep ~headers:extra
            ~status:resp.Http.status ~body:resp.Http.body ();
          if keep then `Keep else `Close
        | Error `No_backend ->
          ignore (Atomic.fetch_and_add t.rtel.shed_no_backend 1);
          observe t ~ep ~status:503;
          Http.respond conn ~status:503
            ~headers:[ ("retry-after", "1") ]
            ~body:"no healthy backends; retry later\n" ();
          `Close
        | Error (`Exhausted ntried) ->
          observe t ~ep ~status:502;
          Http.respond conn ~status:502
            ~body:
              (Printf.sprintf "all %d healthy backends failed; retry later\n"
                 ntried)
            ();
          `Close
        | Error (`Bad_gateway (b, msg)) ->
          observe t ~ep ~status:502;
          Http.respond conn ~status:502
            ~body:
              (Printf.sprintf
                 "backend %d (127.0.0.1:%d) returned a malformed response: \
                  %s\n"
                 b.Backend.index
                 (Atomic.get b.Backend.port)
                 msg)
            ();
          `Close))

let handle t conn =
  match Http.read_request conn with
  | exception Http.Bad_request msg ->
    observe t ~ep:ep_other ~status:400;
    (try Http.respond conn ~status:400 ~body:(msg ^ "\n") ()
     with Http.Disconnect | Http.Timeout -> ());
    `Close
  | exception (Http.Disconnect | Http.Timeout) -> `Close
  | req ->
    ignore (Atomic.fetch_and_add t.rtel.in_flight 1);
    Fun.protect
      ~finally:(fun () -> ignore (Atomic.fetch_and_add t.rtel.in_flight (-1)))
      (fun () ->
        let keep = req.Http.keep_alive && not (Atomic.get t.draining) in
        let ep = classify req.Http.path in
        let simple ?headers status body =
          observe t ~ep ~status;
          Http.respond conn ?headers ~keep_alive:keep ~status ~body ();
          if keep then `Keep else `Close
        in
        match (req.Http.meth, req.Http.path) with
        | "GET", "/healthz" ->
          if Atomic.get t.draining then
            simple ~headers:[ ("retry-after", "1") ] 503 "draining\n"
          else begin
            let healthy = healthy_count t in
            if healthy > 0 then
              simple 200
                (Printf.sprintf "ok %d/%d backends healthy\n" healthy
                   (Array.length t.backends))
            else
              simple
                ~headers:[ ("retry-after", "1") ]
                503 "no healthy backends\n"
          end
        | "GET", "/metrics" -> simple 200 (metrics_body t)
        | "GET", "/model" -> simple 200 (model_body t)
        | "GET", "/admin/backends" -> simple 200 (backends_body t)
        | "POST", "/admin/rollout" | "POST", "/admin/rollback" ->
          if Atomic.get t.draining then
            simple ~headers:[ ("retry-after", "1") ] 503 "draining\n"
          else begin
            let status, headers, body =
              rolling_admin t
                ~back:(req.Http.path = "/admin/rollback")
                ~query:req.Http.query
            in
            simple ~headers status body
          end
        | "POST", ("/predict" | "/feedback") -> proxy t conn req ~ep ~keep
        | _, ("/predict" | "/feedback") -> simple 405 "use POST\n"
        | _, ("/healthz" | "/model" | "/metrics" | "/admin/backends") ->
          simple 405 "use GET\n"
        | _, ("/admin/rollout" | "/admin/rollback") -> simple 405 "use POST\n"
        | _ -> simple 404 "not found\n")

(* ------------------------------------------------------------------ *)
(* Worker domains                                                       *)
(* ------------------------------------------------------------------ *)

let serve_conn t fd =
  let conn = Http.make_conn fd in
  let rec requests () =
    match
      Http.wait_readable conn ~timeout:t.config.idle_timeout ~stop:(fun () ->
          Atomic.get t.draining)
    with
    | `Timeout | `Stopped -> ()
    | `Readable -> (
      match handle t conn with `Keep -> requests () | `Close -> ())
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> try requests () with _ -> ())

let worker t i dead () =
  let rec loop () =
    match Q.pop t.queue with
    | None -> ()
    | Some fd ->
      ignore (Atomic.fetch_and_add t.queued (-1));
      serve_conn t fd;
      loop ()
  in
  try loop ()
  with e ->
    Log.err (fun m ->
        m "router worker domain %d died: %s" i (Printexc.to_string e));
    Atomic.set dead true

let spawn_worker t i =
  let dead = Atomic.make false in
  { domain = Domain.spawn (worker t i dead); dead }

let check_workers t =
  Array.iteri
    (fun i ws ->
      if Atomic.get ws.dead then begin
        Domain.join ws.domain;
        Log.warn (fun m -> m "respawning dead router worker domain %d" i);
        Atomic.set ws.dead false;
        ws.domain <- Domain.spawn (worker t i ws.dead)
      end)
    t.workers

(* ------------------------------------------------------------------ *)
(* Backend supervision                                                  *)
(* ------------------------------------------------------------------ *)

let pick_port host =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, 0));
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> assert false)

(* Respawn pacing: jittered exponential from 50 ms, capped at 2 s, with
   the ladder position itself capped (flap damping) — a shard that
   crash-loops settles into a bounded respawn rate instead of a hot
   fork loop, and the ladder only resets after [flap_window] healthy
   seconds. *)
let schedule_respawn t b =
  b.Backend.respawn_at <-
    Unix.gettimeofday ()
    +. Pn_util.Backoff.delay ~base:0.05 ~cap:2.0
         ~attempt:b.Backend.respawn_attempt ();
  b.Backend.respawn_attempt <-
    min (b.Backend.respawn_attempt + 1) t.config.respawn_cap

let kill_backend b signal =
  let pid = Atomic.get b.Backend.pid in
  if pid > 0 then try Unix.kill pid signal with Unix.Unix_error _ -> ()

(* The [router.spawn] fault point: injected EINTR/EAGAIN are transient
   (retried with backoff, like any syscall); an injected Raise aborts
   this attempt and the backoff ladder schedules the next one. *)
let spawn_backend t b =
  let rec check attempts =
    match Pn_util.Fault.check "router.spawn" with
    | () -> ()
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      when attempts < 5 ->
      Pn_util.Backoff.sleep ~attempt:attempts ();
      check (attempts + 1)
  in
  check 0;
  let port = pick_port t.config.host in
  let argv = t.config.backend_argv ~index:b.Backend.index ~port in
  if Array.length argv = 0 then invalid_arg "Router: backend_argv is empty";
  let env = t.config.backend_env ~index:b.Backend.index in
  (* [Unix.fork] is forbidden once other domains exist (OCaml 5), and
     the router always has worker domains by the time the supervisor
     spawns anything — [create_process] uses the spawn path instead and
     is domain-safe. The shard inherits the router's stdio. *)
  let pid =
    match env with
    | None ->
      Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr
    | Some e ->
      Unix.create_process_env argv.(0) argv e Unix.stdin Unix.stdout
        Unix.stderr
  in
  Atomic.set b.Backend.port port;
  Atomic.set b.Backend.pid pid;
  if b.Backend.ever_spawned then
    ignore (Atomic.fetch_and_add t.rtel.respawns 1);
  b.Backend.ever_spawned <- true;
  Log.info (fun m ->
      m "spawned backend %d (pid %d, 127.0.0.1:%d)" b.Backend.index pid port)

(* Targeted reaping — each shard's pid is waited on individually so a
   router embedded in a larger process never steals another
   subsystem's children. *)
let reap t =
  Array.iter
    (fun b ->
      let pid = Atomic.get b.Backend.pid in
      if pid > 0 then begin
        let gone =
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ -> false
          | _, _ -> true
          | exception Unix.Unix_error (Unix.ECHILD, _, _) -> true
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
        in
        if gone then begin
          Atomic.set b.Backend.pid 0;
          if Atomic.get b.Backend.state <> Backend.Dead then begin
            Log.warn (fun m ->
                m "backend %d (pid %d) exited; scheduling respawn"
                  b.Backend.index pid);
            Atomic.set b.Backend.state Backend.Dead;
            schedule_respawn t b
          end
        end
      end)
    t.backends

let step t b now =
  match Atomic.get b.Backend.state with
  | Backend.Dead ->
    if Atomic.get b.Backend.pid = 0 && now >= b.Backend.respawn_at then begin
      match spawn_backend t b with
      | () ->
        Atomic.set b.Backend.state Backend.Starting;
        b.Backend.started_at <- now;
        b.Backend.consec_failures <- 0
      | exception e ->
        ignore (Atomic.fetch_and_add t.rtel.spawn_failures 1);
        Log.err (fun m ->
            m "spawning backend %d failed: %s" b.Backend.index
              (Printexc.to_string e));
        schedule_respawn t b
    end
  | Backend.Starting ->
    if probe t b then begin
      Atomic.set b.Backend.state Backend.Healthy;
      b.Backend.healthy_since <- now;
      b.Backend.consec_failures <- 0;
      Log.info (fun m ->
          m "backend %d healthy (127.0.0.1:%d)" b.Backend.index
            (Atomic.get b.Backend.port))
    end
    else if now -. b.Backend.started_at > t.config.start_budget then begin
      Log.err (fun m ->
          m "backend %d failed to become healthy within %gs; killing"
            b.Backend.index t.config.start_budget);
      kill_backend b Sys.sigkill
      (* the reap path transitions to Dead and schedules the respawn *)
    end
  | Backend.Healthy ->
    if probe t b then begin
      b.Backend.consec_failures <- 0;
      if
        b.Backend.respawn_attempt > 0
        && now -. b.Backend.healthy_since >= t.config.flap_window
      then b.Backend.respawn_attempt <- 0
    end
    else begin
      b.Backend.consec_failures <- b.Backend.consec_failures + 1;
      if b.Backend.consec_failures >= t.config.fail_threshold then begin
        ignore (Backend.trip b);
        b.Backend.consec_failures <- 0;
        Log.warn (fun m ->
            m "backend %d failed %d probes; suspect" b.Backend.index
              t.config.fail_threshold)
      end
    end
  | Backend.Suspect ->
    if probe t b then begin
      Atomic.set b.Backend.state Backend.Healthy;
      b.Backend.healthy_since <- now;
      b.Backend.consec_failures <- 0;
      Log.info (fun m -> m "backend %d recovered" b.Backend.index)
    end
    else begin
      b.Backend.consec_failures <- b.Backend.consec_failures + 1;
      if b.Backend.consec_failures >= t.config.fail_threshold then begin
        Log.err (fun m ->
            m "backend %d unresponsive while suspect; killing for respawn"
              b.Backend.index);
        kill_backend b Sys.sigkill
      end
    end

(* Rolling drain: TERM each shard in turn, give it [drain_budget] to
   exit, then KILL. Runs after the router's own workers have finished,
   so no in-flight proxied request is cut. *)
let drain_backends t =
  Array.iter
    (fun b ->
      Atomic.set b.Backend.state Backend.Dead;
      let pid = Atomic.get b.Backend.pid in
      if pid > 0 then begin
        (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
        let deadline = Unix.gettimeofday () +. t.config.drain_budget in
        let rec waitloop killed =
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ ->
            if (not killed) && Unix.gettimeofday () > deadline then begin
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              waitloop true
            end
            else begin
              (try Unix.sleepf 0.02
               with Unix.Unix_error (Unix.EINTR, _, _) -> ());
              waitloop killed
            end
          | _, _ -> ()
          | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitloop killed
        in
        waitloop false;
        Atomic.set b.Backend.pid 0
      end)
    t.backends;
  Log.info (fun m -> m "backend fleet drained")

let supervisor t () =
  let rec loop () =
    if Atomic.get t.stop_backends then ()
    else begin
      (* SIGCHLD interrupts the sleep below, so an exited shard is
         reaped now rather than at the next tick. *)
      if Atomic.exchange t.chld false then reap t;
      reap t;
      let now = Unix.gettimeofday () in
      Array.iter (fun b -> try step t b now with _ -> ()) t.backends;
      (try Unix.sleepf t.config.probe_interval
       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  (try loop ()
   with e ->
     Log.err (fun m -> m "supervisor died: %s" (Printexc.to_string e)));
  drain_backends t

(* ------------------------------------------------------------------ *)
(* Listener domain                                                      *)
(* ------------------------------------------------------------------ *)

let admission_load t = Atomic.get t.queued + Atomic.get t.rtel.in_flight

let listener t () =
  let rec loop () =
    check_workers t;
    if Atomic.get t.stop_req then ()
    else begin
      (match Unix.select [ t.lfd ] [] [] 0.05 with
      | [ _ ], _, _ -> (
        match Unix.accept ~cloexec:true t.lfd with
        | fd, _ ->
          (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.idle_timeout
           with Unix.Unix_error _ -> ());
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          ignore (Atomic.fetch_and_add t.rtel.connections 1);
          if admission_load t >= t.config.queue_limit then begin
            ignore (Atomic.fetch_and_add t.rtel.shed_overload 1);
            Http.deny fd ~status:429 ~retry_after:1
              ~body:"over capacity; retry later\n";
            try Unix.close fd with Unix.Unix_error _ -> ()
          end
          else begin
            ignore (Atomic.fetch_and_add t.queued 1);
            Q.push t.queue (Some fd)
          end
        | exception
            Unix.Unix_error
              ( (Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED),
                _,
                _ ) ->
          ()
        | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
          Atomic.set t.stop_req true)
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
        Atomic.set t.stop_req true);
      loop ()
    end
  in
  loop ();
  (* Drain order matters: stop accepting, finish queued + in-flight
     client requests (which may still be proxying), and only then let
     the supervisor take the backend fleet down. *)
  Log.info (fun m -> m "router draining: %d worker domain(s)" t.config.domains);
  Atomic.set t.draining true;
  (try Unix.close t.lfd with Unix.Unix_error _ -> ());
  Array.iter (fun _ -> Q.push t.queue None) t.workers;
  Array.iter (fun ws -> Domain.join ws.domain) t.workers;
  Atomic.set t.stop_backends true;
  Log.info (fun m -> m "router drained")

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                            *)
(* ------------------------------------------------------------------ *)

let start ?(config = default_config) () =
  if config.domains < 1 || config.domains > 64 then
    invalid_arg "Router.start: domains must be in 1..64";
  if config.backends < 1 || config.backends > 64 then
    invalid_arg "Router.start: backends must be in 1..64";
  if config.port < 0 || config.port > 65535 then
    invalid_arg "Router.start: port must be in 0..65535";
  if config.max_body <= 0 then invalid_arg "Router.start: max_body";
  if config.idle_timeout <= 0.0 then invalid_arg "Router.start: idle_timeout";
  if config.proxy_timeout <= 0.0 then invalid_arg "Router.start: proxy_timeout";
  if config.probe_interval <= 0.0 then
    invalid_arg "Router.start: probe_interval";
  if config.probe_timeout <= 0.0 then invalid_arg "Router.start: probe_timeout";
  if config.fail_threshold < 1 then invalid_arg "Router.start: fail_threshold";
  if config.start_budget <= 0.0 then invalid_arg "Router.start: start_budget";
  if config.respawn_cap < 0 then invalid_arg "Router.start: respawn_cap";
  if config.backlog < 1 || config.backlog > 65535 then
    invalid_arg "Router.start: backlog must be in 1..65535";
  if config.queue_limit < 1 then invalid_arg "Router.start: queue_limit";
  if Array.length (config.backend_argv ~index:0 ~port:0) = 0 then
    invalid_arg "Router.start: backend_argv";
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let lfd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  let t =
    try
      Unix.setsockopt lfd Unix.SO_REUSEADDR true;
      Unix.bind lfd
        (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
      Unix.listen lfd config.backlog;
      let port =
        match Unix.getsockname lfd with
        | Unix.ADDR_INET (_, p) -> p
        | Unix.ADDR_UNIX _ -> assert false
      in
      {
        config;
        lfd;
        port;
        backends = Array.init config.backends Backend.make;
        queue = Q.create ();
        queued = Atomic.make 0;
        stop_req = Atomic.make false;
        draining = Atomic.make false;
        stop_backends = Atomic.make false;
        chld = Atomic.make false;
        rr = Atomic.make 0;
        rtel = make_rtel ();
        admin = Mutex.create ();
        workers = [||];
        listener = None;
        supervisor = None;
      }
    with e ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      raise e
  in
  t.workers <- Array.init config.domains (fun i -> spawn_worker t i);
  t.supervisor <- Some (Domain.spawn (supervisor t));
  t.listener <- Some (Domain.spawn (listener t));
  Log.info (fun m ->
      m "router listening on %s:%d (%d worker domain(s), %d backend(s))"
        config.host t.port config.domains config.backends);
  t

let join t =
  (match t.listener with
  | None -> ()
  | Some d ->
    t.listener <- None;
    Domain.join d);
  match t.supervisor with
  | None -> ()
  | Some d ->
    t.supervisor <- None;
    (* If the listener never ran (or already joined), make sure the
       supervisor is told to stop before we block on it. *)
    if Atomic.get t.stop_req then Atomic.set t.stop_backends true;
    Domain.join d

let stop t =
  request_stop t;
  join t

let install_signals t =
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> request_stop t));
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> request_stop t));
  Sys.set_signal Sys.sigchld (Sys.Signal_handle (fun _ -> note_chld t))
