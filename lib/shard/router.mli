(** Sharded serving tier: a router process that supervises N backend
    [pnrule serve] processes on loopback ports (all reading the same
    registry directory) and proxies scoring traffic across them.

    - [POST /predict], [POST /feedback]: round-robin over healthy
      shards; a shard that fails mid-exchange is tripped to suspect and
      the buffered request transparently retries on another healthy
      shard (scores are idempotent), so an admitted request is never
      lost to a shard crash. All shards down → 503 + [Retry-After]; a
      shard that answers with a malformed response → deterministic 502.
    - [GET /healthz], [GET /model], [GET /metrics]: fleet-aggregated.
      Backend metric scrapes are summed series-by-series and appended
      after the router's own [pnrule_router_*] series, so names never
      collide.
    - [POST /admin/rollout] / [/admin/rollback]: rolling fan-out, one
      shard at a time, aborting on the first failure with a 500 naming
      the stuck shard (survivors keep their old generation).
    - [GET /admin/backends]: per-shard state dump (JSON).

    Supervision: health probes every [probe_interval] drive the
    per-shard state machine (see {!Backend}); exited shards are reaped
    (SIGCHLD interrupts the supervisor tick) and respawned with
    jittered exponential backoff and flap damping. SIGTERM drains the
    router's own workers first, then rolls SIGTERM across the fleet.

    Fault points: [router.proxy_read], [router.proxy_write] (proxy
    legs), [router.spawn] (process creation; injected EINTR/EAGAIN are
    retried, Raise aborts the attempt into the backoff ladder). *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; see {!port} *)
  domains : int;  (** router worker domains *)
  backends : int;  (** shard processes to supervise *)
  backend_argv : index:int -> port:int -> string array;
      (** argv for shard [index] listening on [port]; [argv.(0)] is the
          executable path *)
  backend_env : index:int -> string array option;
      (** [None] inherits the router's environment *)
  max_body : int;
  idle_timeout : float;
  proxy_timeout : float;
  probe_interval : float;
  probe_timeout : float;
  fail_threshold : int;
  start_budget : float;
  flap_window : float;
  respawn_cap : int;
  drain_budget : float;
  backlog : int;
  queue_limit : int;
}

val default_config : config

type t

(** [start ~config ()] binds, spawns worker + supervisor + listener
    domains, and returns immediately; the supervisor brings the shard
    fleet up asynchronously (poll {!healthy_count}). Raises
    [Invalid_argument] on out-of-range config. *)
val start : ?config:config -> unit -> t

(** The bound port (useful when the config asked for port 0). *)
val port : t -> int

val healthy_count : t -> int

(** Supervisor-side view of shard [i]; 0 / [Dead] when not running. *)
val backend_pid : t -> int -> int

val backend_port : t -> int -> int
val backend_state : t -> int -> Backend.state

val request_stop : t -> unit

(** Block until the router has drained: workers finish in-flight
    requests, then the shard fleet is rolled down. *)
val join : t -> unit

(** {!request_stop} then {!join}. *)
val stop : t -> unit

(** SIGTERM/SIGINT → drain; SIGCHLD → prompt reap. *)
val install_signals : t -> unit
