(* One supervised backend shard.

   Lifecycle state machine, driven by the router's supervisor domain:

     {v
     dead ──backoff elapsed, spawn──▶ starting
     starting ──first good probe──▶ healthy
     starting ──start budget blown──▶ (SIGKILL) ──reap──▶ dead
     healthy ──fail_threshold bad probes──▶ suspect
     healthy ──proxy IO failure (worker CAS)──▶ suspect
     suspect ──one good probe──▶ healthy
     suspect ──fail_threshold more bad probes──▶ (SIGKILL) ──reap──▶ dead
     any ──process exit (reaped)──▶ dead
     v}

   Ownership discipline: worker domains only read [state]/[port] and CAS
   [Healthy -> Suspect] (tripping the circuit breaker on a proxy
   failure). Every other field is written exclusively by the single
   supervisor domain, so the plain mutable fields need no lock. *)

type state = Starting | Healthy | Suspect | Dead

let state_label = function
  | Starting -> "starting"
  | Healthy -> "healthy"
  | Suspect -> "suspect"
  | Dead -> "dead"

type t = {
  index : int;
  port : int Atomic.t;  (* current listen port; re-picked per spawn *)
  pid : int Atomic.t;  (* 0 when no live process *)
  state : state Atomic.t;
  (* supervisor-owned *)
  mutable consec_failures : int;  (* consecutive bad probes *)
  mutable respawn_attempt : int;  (* backoff ladder position *)
  mutable respawn_at : float;  (* earliest next spawn, epoch seconds *)
  mutable started_at : float;  (* when the current process was spawned *)
  mutable healthy_since : float;  (* last Starting/Suspect -> Healthy *)
  mutable ever_spawned : bool;  (* distinguishes respawns from boot *)
  (* counters *)
  proxied : int Atomic.t;  (* requests this shard answered *)
}

let make index =
  {
    index;
    port = Atomic.make 0;
    pid = Atomic.make 0;
    state = Atomic.make Dead;
    consec_failures = 0;
    respawn_attempt = 0;
    respawn_at = 0.0;
    started_at = 0.0;
    healthy_since = 0.0;
    ever_spawned = false;
    proxied = Atomic.make 0;
  }

(* Trip the circuit breaker: only a healthy shard can be tripped, and
   the CAS makes concurrent trips idempotent. Returns whether this call
   did the tripping. *)
let trip b = Atomic.compare_and_set b.state Healthy Suspect
