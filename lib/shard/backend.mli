(** Per-shard state for the router's backend fleet.

    Worker domains only read {!val-state}/[port] and trip the circuit
    breaker with {!trip}; all other mutable fields belong to the single
    supervisor domain and need no lock. *)

type state = Starting | Healthy | Suspect | Dead

val state_label : state -> string

type t = {
  index : int;
  port : int Atomic.t;
  pid : int Atomic.t;
  state : state Atomic.t;
  mutable consec_failures : int;
  mutable respawn_attempt : int;
  mutable respawn_at : float;
  mutable started_at : float;
  mutable healthy_since : float;
  mutable ever_spawned : bool;
  proxied : int Atomic.t;
}

val make : int -> t

(** CAS [Healthy -> Suspect]; true when this call tripped it. *)
val trip : t -> bool
