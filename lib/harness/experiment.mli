(** Train-and-evaluate plumbing shared by every benchmark, plus the
    paper's §3.1 comparison protocol (evaluate on a test set drawn from
    the identical model; when a method has several variations, report the
    variation that scores best on the test set). *)

type result = {
  method_name : string;
  confusion : Pn_metrics.Confusion.t;
  recall : float;
  precision : float;
  f_measure : float;
  train_seconds : float;
}

(** [run spec ~train ~test ~target] trains one method and scores it on the
    test set. The weighted evaluation always uses the *test* set's own
    (unit) weights — stratification only affects training. *)
val run :
  Methods.t -> train:Pn_data.Dataset.t -> test:Pn_data.Dataset.t -> target:int -> result

(** [run_all specs ~train ~test ~target] runs each method, fanning the
    independent train-and-evaluate jobs across [pool] (default
    {!Pn_util.Pool.get_default}). Results keep the order of [specs] and
    are bit-identical at every pool size; [train_seconds] is the only
    field affected by core sharing. *)
val run_all :
  ?pool:Pn_util.Pool.t ->
  Methods.t list ->
  train:Pn_data.Dataset.t ->
  test:Pn_data.Dataset.t ->
  target:int ->
  result list

(** [best_of ?name results] keeps the result with the highest F-measure
    and renames it (the paper's best-of-variations column). Raises
    [Invalid_argument] on an empty list. *)
val best_of : ?name:string -> result list -> result
