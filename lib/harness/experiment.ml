type result = {
  method_name : string;
  confusion : Pn_metrics.Confusion.t;
  recall : float;
  precision : float;
  f_measure : float;
  train_seconds : float;
}

let src = Logs.Src.create "harness" ~doc:"experiment harness"

module Log = (val Logs.src_log src : Logs.LOG)

let run (spec : Methods.t) ~train ~test ~target =
  let t0 = Unix.gettimeofday () in
  let model = spec.Methods.train train ~target in
  let train_seconds = Unix.gettimeofday () -. t0 in
  let confusion = Methods.evaluate model test ~target in
  let result =
    {
      method_name = spec.Methods.name;
      confusion;
      recall = Pn_metrics.Confusion.recall confusion;
      precision = Pn_metrics.Confusion.precision confusion;
      f_measure = Pn_metrics.Confusion.f_measure confusion;
      train_seconds;
    }
  in
  Log.info (fun m ->
      m "%-24s R=%.4f P=%.4f F=%.4f (%.1fs)" result.method_name result.recall
        result.precision result.f_measure train_seconds);
  result

let run_all ?pool specs ~train ~test ~target =
  (* Independent methods (or grid points) fan across the domain pool.
     Training inside a worker is safe: a nested Pool.map_array (rule
     growth fanning attribute scans) degrades to sequential execution,
     and PR 1's pool-vs-sequential bit-identity keeps every trained
     model — hence every result — independent of the pool size. *)
  let pool = match pool with Some p -> p | None -> Pn_util.Pool.get_default () in
  let specs = Array.of_list specs in
  Array.to_list
    (Pn_util.Pool.map_array pool (Array.length specs) (fun k ->
         run specs.(k) ~train ~test ~target))

let best_of ?name results =
  match results with
  | [] -> invalid_arg "Experiment.best_of: empty result list"
  | first :: rest ->
    let best =
      List.fold_left
        (fun acc r -> if r.f_measure > acc.f_measure then r else acc)
        first rest
    in
    (match name with
    | Some n -> { best with method_name = n }
    | None -> best)
