let seed_of name k = (Hashtbl.hash (name, k) land 0xFFFFFF) + 1

let train_n ~scale base = max 2000 (int_of_float (float_of_int base *. scale))

(* ------------------------------------------------------------------ *)
(* Method batteries                                                     *)
(* ------------------------------------------------------------------ *)

(* The paper's full five-classifier line-up (Figure 1's C / Cte / R / Re /
   P columns). PNrule is reported as the best of its four-parameter grid
   (§3.1), matching the best-result-on-test protocol used for all
   methods. *)
let battery ~train ~test ~target =
  let open Experiment in
  let one spec = run spec ~train ~test ~target in
  let pn =
    best_of ~name:"PNrule"
      (run_all (Methods.pnrule_grid ()) ~train ~test ~target)
  in
  [
    one (Methods.c45rules ());
    one (Methods.c45tree ~stratified:true ());
    one (Methods.ripper ());
    one (Methods.ripper ~stratified:true ());
    pn;
  ]

let trio ~train ~test ~target =
  let open Experiment in
  [
    run (Methods.c45rules ()) ~train ~test ~target;
    run (Methods.ripper ()) ~train ~test ~target;
    best_of ~name:"PNrule" (run_all (Methods.pnrule_grid ()) ~train ~test ~target);
  ]

(* ------------------------------------------------------------------ *)
(* Table 1                                                              *)
(* ------------------------------------------------------------------ *)

let numeric_sets ~scale ~name spec =
  let n_train = train_n ~scale 500_000 and n_test = train_n ~scale 250_000 in
  ( Pn_synth.Numerical.generate spec ~seed:(seed_of name 1) ~n:n_train,
    Pn_synth.Numerical.generate spec ~seed:(seed_of name 2) ~n:n_test )

let table1 ~scale =
  let target = Pn_synth.Numerical.target_class in
  let rows =
    List.concat_map
      (fun k ->
        let name = Printf.sprintf "nsyn%d" k in
        let train, test = numeric_sets ~scale ~name (Pn_synth.Numerical.nsyn k) in
        let results = battery ~train ~test ~target in
        List.map
          (fun (r : Experiment.result) ->
            (name ^ "/" ^ r.method_name, Tablefmt.result_cells r))
          results)
      [ 1; 2; 3; 4; 5; 6 ]
  in
  Tablefmt.print ~title:"Table 1: numerical-only datasets (nsyn1..nsyn6)"
    ~header:[ "dataset/method"; "Rec"; "Prec"; "F" ]
    (List.map (fun (k, cells) -> k :: cells) rows)

(* ------------------------------------------------------------------ *)
(* Figure 1                                                             *)
(* ------------------------------------------------------------------ *)

let figure1 ~scale =
  let target = Pn_synth.Numerical.target_class in
  let widths = [ 0.2; 2.0; 4.0 ] in
  List.iter
    (fun tr ->
      let rows =
        List.concat_map
          (fun nr ->
            let spec = Pn_synth.Numerical.with_widths (Pn_synth.Numerical.nsyn 3) ~tr ~nr in
            let name = Printf.sprintf "nsyn3[tr=%.1f,nr=%.1f]" tr nr in
            let train, test = numeric_sets ~scale ~name spec in
            let results = battery ~train ~test ~target in
            List.map
              (fun (r : Experiment.result) ->
                Printf.sprintf "nr=%.1f/%s" nr r.method_name :: Tablefmt.result_cells r)
              results)
          widths
      in
      Tablefmt.print
        ~title:(Printf.sprintf "Figure 1: nsyn3, tr = %.1f (varying nr)" tr)
        ~header:[ "nr/method"; "Rec"; "Prec"; "F" ]
        rows)
    widths

(* ------------------------------------------------------------------ *)
(* Table 2                                                              *)
(* ------------------------------------------------------------------ *)

let table2 ~scale =
  let target = Pn_synth.Numerical.target_class in
  let rows =
    List.concat_map
      (fun (tr, nr) ->
        let spec = Pn_synth.Numerical.with_widths (Pn_synth.Numerical.nsyn 5) ~tr ~nr in
        let name = Printf.sprintf "nsyn5[tr=%.1f,nr=%.1f]" tr nr in
        let train, test = numeric_sets ~scale ~name spec in
        let results =
          let open Experiment in
          [
            run (Methods.c45tree ~stratified:true ()) ~train ~test ~target;
            run (Methods.ripper ~stratified:true ()) ~train ~test ~target;
            best_of ~name:"PNrule" (run_all (Methods.pnrule_grid ()) ~train ~test ~target);
          ]
        in
        List.map
          (fun (r : Experiment.result) ->
            Printf.sprintf "tr=%.1f,nr=%.1f/%s" tr nr r.method_name
            :: Tablefmt.result_cells r)
          results)
      [ (0.2, 0.2); (0.2, 4.0); (4.0, 0.2); (4.0, 4.0) ]
  in
  Tablefmt.print ~title:"Table 2: nsyn5 under width sweeps"
    ~header:[ "widths/method"; "Rec"; "Prec"; "F" ]
    rows

(* ------------------------------------------------------------------ *)
(* Table 3                                                              *)
(* ------------------------------------------------------------------ *)

let table3 ~scale =
  let target = Pn_synth.Categorical.target_class in
  let n_train = train_n ~scale 500_000 and n_test = train_n ~scale 250_000 in
  let datasets =
    List.map (fun k -> (Printf.sprintf "coa%d" k, Pn_synth.Categorical.coa k)) [ 1; 2; 3; 4; 5; 6 ]
    @ List.map (fun k -> (Printf.sprintf "coad%d" k, Pn_synth.Categorical.coad k)) [ 1; 2; 3; 4 ]
  in
  let rows =
    List.concat_map
      (fun (name, spec) ->
        let train = Pn_synth.Categorical.generate spec ~seed:(seed_of name 1) ~n:n_train in
        let test = Pn_synth.Categorical.generate spec ~seed:(seed_of name 2) ~n:n_test in
        let results = trio ~train ~test ~target in
        List.map
          (fun (r : Experiment.result) ->
            (name ^ "/" ^ r.method_name) :: Tablefmt.result_cells r)
          results)
      datasets
  in
  Tablefmt.print ~title:"Table 3: categorical-only datasets (coa, coad)"
    ~header:[ "dataset/method"; "Rec"; "Prec"; "F" ]
    rows

(* ------------------------------------------------------------------ *)
(* Table 4 (syngen; Figure 3's model)                                   *)
(* ------------------------------------------------------------------ *)

let syngen_sets ~scale ~name spec =
  let n_train = train_n ~scale 500_000 and n_test = train_n ~scale 250_000 in
  ( Pn_synth.General.generate spec ~seed:(seed_of name 1) ~n:n_train,
    Pn_synth.General.generate spec ~seed:(seed_of name 2) ~n:n_test )

let table4 ~scale =
  let target = Pn_synth.General.target_class in
  let rows =
    List.concat_map
      (fun (tr, nr) ->
        let spec = Pn_synth.General.with_widths Pn_synth.General.default ~tr ~nr in
        let name = Printf.sprintf "syngen[tr=%.1f,nr=%.1f]" tr nr in
        let train, test = syngen_sets ~scale ~name spec in
        let results =
          let open Experiment in
          [
            run (Methods.c45rules ()) ~train ~test ~target;
            run (Methods.ripper ~stratified:true ()) ~train ~test ~target;
            best_of ~name:"PNrule" (run_all (Methods.pnrule_grid ()) ~train ~test ~target);
          ]
        in
        List.map
          (fun (r : Experiment.result) ->
            Printf.sprintf "tr=%.1f,nr=%.1f/%s" tr nr r.method_name
            :: Tablefmt.result_cells r)
          results)
      [ (0.2, 0.2); (0.2, 4.0); (4.0, 0.2); (4.0, 4.0) ]
  in
  Tablefmt.print ~title:"Table 4: syngen (general mixed model)"
    ~header:[ "widths/method"; "Rec"; "Prec"; "F" ]
    rows

(* ------------------------------------------------------------------ *)
(* Table 5                                                              *)
(* ------------------------------------------------------------------ *)

let table5 ~scale =
  let target = Pn_synth.General.target_class in
  let sweep ~tr ~nr fracs =
    let spec = Pn_synth.General.with_widths Pn_synth.General.default ~tr ~nr in
    let name = Printf.sprintf "syngen-t5[tr=%.1f,nr=%.1f]" tr nr in
    let train0, test0 = syngen_sets ~scale ~name spec in
    let rows =
      List.map
        (fun frac ->
          let train =
            Sampling.subsample_non_target train0 ~target ~fraction:frac
              ~seed:(seed_of name 3)
          in
          let test =
            Sampling.subsample_non_target test0 ~target ~fraction:frac
              ~seed:(seed_of name 4)
          in
          let tc_pct = Sampling.target_percentage train ~target in
          let results = trio ~train ~test ~target in
          let f_of name =
            match
              List.find_opt
                (fun (r : Experiment.result) -> String.equal r.method_name name)
                results
            with
            | Some r -> Tablefmt.f4 r.f_measure
            | None -> "-"
          in
          [
            Printf.sprintf "%.3f" frac;
            Printf.sprintf "%.1f%%" tc_pct;
            f_of "C4.5rules";
            f_of "RIPPER";
            f_of "PNrule";
          ])
        fracs
    in
    Tablefmt.print
      ~title:
        (Printf.sprintf "Table 5: target-proportion sweep, syngen (tr=%.1f, nr=%.1f)" tr nr)
      ~header:[ "ntc-frac"; "tc %"; "C4.5rules"; "RIPPER"; "PNrule" ]
      rows
  in
  sweep ~tr:0.2 ~nr:0.2 [ 1.0; 0.5; 0.1; 0.05; 0.02; 0.01; 0.003 ];
  sweep ~tr:4.0 ~nr:4.0 [ 1.0; 0.1; 0.05; 0.02; 0.01 ]

(* ------------------------------------------------------------------ *)
(* KDD experiments                                                      *)
(* ------------------------------------------------------------------ *)

let kdd_sets ~scale =
  let n_train = train_n ~scale 494_021 and n_test = train_n ~scale 311_029 in
  ( Pn_synth.Kddcup.train ~seed:(seed_of "kdd" 1) ~n:n_train,
    Pn_synth.Kddcup.test ~seed:(seed_of "kdd" 2) ~n:n_test )

let table6 ~scale =
  let train, test = kdd_sets ~scale in
  let rows =
    List.concat_map
      (fun (cls_name, target) ->
        let open Experiment in
        let results =
          [
            best_of ~name:"C4.5rules"
              [
                run (Methods.c45rules ()) ~train ~test ~target;
                run (Methods.c45tree ~stratified:true ()) ~train ~test ~target;
              ];
            best_of ~name:"RIPPER"
              [
                run (Methods.ripper ()) ~train ~test ~target;
                run (Methods.ripper ~stratified:true ()) ~train ~test ~target;
              ];
            run
              (Methods.pnrule ~name:"PNrule[legacy]" ~params:Pnrule.Params.legacy ())
              ~train ~test ~target;
          ]
        in
        List.map
          (fun (r : Experiment.result) ->
            (cls_name ^ "/" ^ r.method_name) :: Tablefmt.result_cells r)
          results)
      [ ("probe", Pn_synth.Kddcup.probe); ("r2l", Pn_synth.Kddcup.r2l) ]
  in
  Tablefmt.print
    ~title:"Table 6: KDDCUP'99 (simulated), probe & r2l, baseline methods"
    ~header:[ "class/method"; "Rec"; "Prec"; "F" ]
    rows

let section4_grid ~scale ~cls_name ~target ~p1 ~rps ~rns ~title =
  let train, test = kdd_sets ~scale in
  let rows =
    List.concat_map
      (fun rp ->
        List.map
          (fun rn ->
            let params =
              {
                Pnrule.Params.default with
                metric = Pn_metrics.Rule_metric.Info_gain;
                min_coverage = rp;
                recall_floor = rn;
                max_p_rule_length = (if p1 then Some 1 else None);
              }
            in
            let r =
              Experiment.run
                (Methods.pnrule ~name:(Printf.sprintf "rp=%.3f rn=%.3f" rp rn) ~params ())
                ~train ~test ~target
            in
            r.Experiment.method_name :: Tablefmt.result_cells r)
          rns)
      rps
  in
  ignore cls_name;
  Tablefmt.print ~title ~header:[ "params"; "Rec"; "Prec"; "F" ] rows

let section4_r2l ~scale =
  section4_grid ~scale ~cls_name:"r2l" ~target:Pn_synth.Kddcup.r2l ~p1:false
    ~rps:[ 0.95; 0.995 ] ~rns:[ 0.95; 0.995 ]
    ~title:"Section 4: improved PNrule on r2l (unrestricted P-rules)"

let section4_r2l_p1 ~scale =
  section4_grid ~scale ~cls_name:"r2l" ~target:Pn_synth.Kddcup.r2l ~p1:true
    ~rps:[ 0.95; 0.995 ] ~rns:[ 0.8; 0.9; 0.95; 0.995 ]
    ~title:"Section 4: PNrule on r2l with P-rule length 1 (r2l.P1)"

let section4_probe ~scale =
  section4_grid ~scale ~cls_name:"probe" ~target:Pn_synth.Kddcup.probe ~p1:false
    ~rps:[ 0.95; 0.995 ] ~rns:[ 0.8; 0.95; 0.995 ]
    ~title:"Section 4: improved PNrule on probe (unrestricted P-rules)"

let section4_probe_p1 ~scale =
  section4_grid ~scale ~cls_name:"probe" ~target:Pn_synth.Kddcup.probe ~p1:true
    ~rps:[ 0.95; 0.995 ] ~rns:[ 0.9; 0.995 ]
    ~title:"Section 4: PNrule on probe with P-rule length 1 (probe.P1)"

(* ------------------------------------------------------------------ *)
(* Ablation                                                             *)
(* ------------------------------------------------------------------ *)

let ablation ~scale =
  let variants =
    [
      ("PNrule (full)", Pnrule.Params.default);
      ("no range conditions", { Pnrule.Params.default with allow_ranges = false });
      ("no ScoreMatrix (DNF)", { Pnrule.Params.default with use_scoring = false });
      ("no N-phase", { Pnrule.Params.default with enable_n_phase = false });
    ]
  in
  let run_on ~name ~train ~test ~target =
    let rows =
      List.map
        (fun (label, params) ->
          let r =
            Experiment.run (Methods.pnrule ~name:label ~params ()) ~train ~test ~target
          in
          label :: Tablefmt.result_cells r)
        variants
    in
    Tablefmt.print ~title:(Printf.sprintf "Ablation A1 on %s" name)
      ~header:[ "variant"; "Rec"; "Prec"; "F" ]
      rows
  in
  let train, test = numeric_sets ~scale ~name:"nsyn3-ablation" (Pn_synth.Numerical.nsyn 3) in
  run_on ~name:"nsyn3" ~train ~test ~target:Pn_synth.Numerical.target_class;
  let train, test = syngen_sets ~scale ~name:"syngen-ablation" Pn_synth.General.default in
  run_on ~name:"syngen" ~train ~test ~target:Pn_synth.General.target_class

(* A2: multi-phase extension vs two-phase PNrule on nsyn3. *)
let ablation_multiphase ~scale =
  let train, test = numeric_sets ~scale ~name:"nsyn3-multiphase" (Pn_synth.Numerical.nsyn 3) in
  let target = Pn_synth.Numerical.target_class in
  let rows =
    List.map
      (fun k ->
        let t0 = Unix.gettimeofday () in
        let m = Pnrule.Multiphase.train ~max_phases:k train ~target in
        let cm = Pnrule.Multiphase.evaluate m test in
        ignore (Unix.gettimeofday () -. t0);
        let sizes =
          String.concat "+" (List.map string_of_int (Pnrule.Multiphase.phase_sizes m))
        in
        [
          Printf.sprintf "%d phases (%s rules)" k sizes;
          Tablefmt.pct (Pn_metrics.Confusion.recall cm);
          Tablefmt.pct (Pn_metrics.Confusion.precision cm);
          Tablefmt.f4 (Pn_metrics.Confusion.f_measure cm);
        ])
      [ 1; 2; 3; 4; 6 ]
  in
  let pn =
    Experiment.run (Methods.pnrule ()) ~train ~test ~target
  in
  let rows =
    rows
    @ [
        [
          "PNrule (2-phase + ScoreMatrix)";
          Tablefmt.pct pn.Experiment.recall;
          Tablefmt.pct pn.Experiment.precision;
          Tablefmt.f4 pn.Experiment.f_measure;
        ];
      ]
  in
  Tablefmt.print ~title:"Ablation A2: multi-phase extension on nsyn3"
    ~header:[ "variant"; "Rec"; "Prec"; "F" ]
    rows

(* ------------------------------------------------------------------ *)
(* B1: boosted ensembles, accuracy vs training speed                    *)
(* ------------------------------------------------------------------ *)

(* The single PNrule list against the boosted ensemble, each unsampled
   and under the 10% stratified + √-features strategy — the first
   accuracy-vs-speed table for the ensemble path. [train_seconds] is
   wall clock under [run_all]'s core sharing, so read the ratios, not
   the absolutes. *)
let boosted_table ~scale =
  let sampled =
    {
      Pn_induct.Sampling.instances =
        Pn_induct.Sampling.Stratified { fraction = 0.1; min_per_class = 50 };
      features = Pn_induct.Sampling.Sqrt_features;
      seed = 7;
    }
  in
  let run_on ~name ~train ~test ~target =
    let specs =
      [
        Methods.c45rules ();
        Methods.ripper ();
        Methods.pnrule ();
        Methods.pnrule ~name:"PNrule[strat10%+sqrt]" ~sampling:sampled ();
        Methods.boosted ();
        Methods.boosted ~name:"Boosted[strat10%+sqrt]" ~sampling:sampled ();
      ]
    in
    let results = Experiment.run_all specs ~train ~test ~target in
    let rows =
      List.map
        (fun (r : Experiment.result) ->
          (r.method_name :: Tablefmt.result_cells r)
          @ [ Printf.sprintf "%.2f" r.train_seconds ])
        results
    in
    Tablefmt.print
      ~title:(Printf.sprintf "B1: boosted vs single-list on %s" name)
      ~header:[ "method"; "Rec"; "Prec"; "F"; "train s" ]
      rows
  in
  let train, test = numeric_sets ~scale ~name:"nsyn3-boosted" (Pn_synth.Numerical.nsyn 3) in
  run_on ~name:"nsyn3" ~train ~test ~target:Pn_synth.Numerical.target_class;
  let train, test = kdd_sets ~scale in
  run_on ~name:"kdd/probe" ~train ~test ~target:Pn_synth.Kddcup.probe

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)
(* ------------------------------------------------------------------ *)

let all =
  [
    ("t1", "Table 1: numerical-only nsyn1..6", table1);
    ("f1", "Figure 1: nsyn3 width sweep", figure1);
    ("t2", "Table 2: nsyn5 width sweep", table2);
    ("t3", "Table 3: categorical-only coa/coad", table3);
    ("t4", "Table 4: syngen general model", table4);
    ("t5", "Table 5: target-proportion sweep", table5);
    ("t6", "Table 6: KDD probe & r2l baselines", table6);
    ("s4a", "Section 4: r2l rp/rn grid", section4_r2l);
    ("s4b", "Section 4: r2l.P1 grid", section4_r2l_p1);
    ("s4c", "Section 4: probe rp/rn grid", section4_probe);
    ("s4d", "Section 4: probe.P1 grid", section4_probe_p1);
    ("b1", "B1: boosted vs single-list accuracy/speed", boosted_table);
    ("a1", "Ablation: PNrule component knockouts", ablation);
    ("a2", "Ablation: multi-phase extension", ablation_multiphase);
  ]
