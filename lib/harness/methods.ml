type model =
  | Pnrule_model of Pnrule.Model.t
  | Boosted_model of Pnrule.Ensemble.t
  | Ripper_model of Pn_ripper.Model.t
  | C45rules_model of Pn_c45.Rules.t
  | C45tree_model of Pn_c45.Tree.t

type t = {
  name : string;
  train : Pn_data.Dataset.t -> target:int -> model;
}

let evaluate model ds ~target =
  match model with
  | Pnrule_model m -> Pnrule.Model.evaluate m ds
  | Boosted_model m -> Pnrule.Ensemble.evaluate m ds
  | Ripper_model m -> Pn_ripper.Model.evaluate m ds
  | C45rules_model m -> Pn_c45.Rules.evaluate_binary m ds ~target
  | C45tree_model m -> Pn_c45.Tree.evaluate_binary m ds ~target

let pnrule ?name ?(params = Pnrule.Params.default)
    ?(sampling = Pn_induct.Sampling.none) () =
  let name = Option.value name ~default:"PNrule" in
  {
    name;
    train =
      (fun ds ~target ->
        Pnrule_model (Pnrule.Learner.train ~params ~sampling ds ~target));
  }

let boosted ?name ?(params = Pnrule.Ensemble.default_params)
    ?(sampling = Pn_induct.Sampling.none) () =
  let name = Option.value name ~default:"Boosted" in
  {
    name;
    train =
      (fun ds ~target ->
        Boosted_model (Pnrule.Ensemble.train ~params ~sampling ds ~target));
  }

let pnrule_grid ?(metric = Pn_metrics.Rule_metric.Z_number) () =
  List.concat_map
    (fun rp ->
      List.map
        (fun rn ->
          let params =
            { Pnrule.Params.default with metric; min_coverage = rp; recall_floor = rn }
          in
          pnrule ~name:(Printf.sprintf "PNrule[rp=%.2f,rn=%.2f]" rp rn) ~params ())
        [ 0.7; 0.95 ])
    [ 0.95; 0.99 ]

let ripper ?name ?(stratified = false) () =
  let name = Option.value name ~default:(if stratified then "RIPPER-we" else "RIPPER") in
  {
    name;
    train =
      (fun ds ~target ->
        let ds = if stratified then Pn_data.Dataset.stratify ds ~target else ds in
        Ripper_model (Pn_ripper.Learner.train ds ~target));
  }

let c45rules ?name ?(stratified = false) () =
  let name =
    Option.value name ~default:(if stratified then "C4.5rules-we" else "C4.5rules")
  in
  {
    name;
    train =
      (fun ds ~target ->
        if stratified then begin
          (* Overfitted tree from the stratified set, rules generalized on
             the unit-weight set (paper footnote 4). *)
          let tree = Pn_c45.Tree.train_unpruned (Pn_data.Dataset.stratify ds ~target) in
          C45rules_model (Pn_c45.Rules.of_tree tree ds)
        end
        else C45rules_model (Pn_c45.Rules.train ds));
  }

let c45tree ?name ?(stratified = false) () =
  let name = Option.value name ~default:(if stratified then "C4.5-we" else "C4.5") in
  {
    name;
    train =
      (fun ds ~target ->
        let ds = if stratified then Pn_data.Dataset.stratify ds ~target else ds in
        C45tree_model (Pn_c45.Tree.train ds));
  }
