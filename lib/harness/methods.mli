(** Uniform interface over the four classifier families, including the
    paper's stratified "-we" training variants and best-of-variations
    selection. *)

type model =
  | Pnrule_model of Pnrule.Model.t
  | Boosted_model of Pnrule.Ensemble.t
  | Ripper_model of Pn_ripper.Model.t
  | C45rules_model of Pn_c45.Rules.t
  | C45tree_model of Pn_c45.Tree.t

type t = {
  name : string;
  train : Pn_data.Dataset.t -> target:int -> model;
}

(** [evaluate model ds ~target] is the weighted binary confusion matrix of
    any model on [ds]. *)
val evaluate : model -> Pn_data.Dataset.t -> target:int -> Pn_metrics.Confusion.t

(** [pnrule ?name ?params ?sampling ()] — PNrule with the given
    parameters, optionally trained under a {!Pn_induct.Sampling}
    strategy pair. *)
val pnrule :
  ?name:string ->
  ?params:Pnrule.Params.t ->
  ?sampling:Pn_induct.Sampling.t ->
  unit ->
  t

(** [boosted ?name ?params ?sampling ()] — the {!Pnrule.Ensemble}
    booster, with each round sampled per [sampling]. *)
val boosted :
  ?name:string ->
  ?params:Pnrule.Ensemble.params ->
  ?sampling:Pn_induct.Sampling.t ->
  unit ->
  t

(** [pnrule_grid ()] — the paper's §3.1 protocol: rp ∈ {0.95, 0.99} ×
    rn ∈ {0.7, 0.95}, every other parameter conservative; the reported
    PNrule is the best of the four on the test set (chosen later by
    [Experiment.best_of]). *)
val pnrule_grid : ?metric:Pn_metrics.Rule_metric.kind -> unit -> t list

(** [ripper ?stratified ()] — RIPPER with default settings; [stratified]
    trains on the "-we" re-weighted set. *)
val ripper : ?name:string -> ?stratified:bool -> unit -> t

(** [c45rules ?stratified ()] — C4.5rules. Per the paper's footnote, the
    stratified variant builds the overfitted tree from the stratified set
    but generalizes rules against the unit-weight set. *)
val c45rules : ?name:string -> ?stratified:bool -> unit -> t

(** [c45tree ?stratified ()] — the pruned C4.5 tree itself (the paper's
    C4.5-we rows report the tree model). *)
val c45tree : ?name:string -> ?stratified:bool -> unit -> t
