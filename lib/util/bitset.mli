(** Dense bitsets over machine words.

    The compiled scoring engine evaluates rule conditions columnar-style:
    one sweep per distinct condition produces a bitset over the record
    index space, and rule conjunction / first-match resolution become
    word-wide [land]/[lnot] passes. Words are OCaml native ints — 63
    usable bits each — rather than boxed [int64]s, so every bulk
    operation stays allocation-free.

    Bulk operations live inside this module (one call per pass, tight
    loops internally); hot fill loops may write [words] directly. *)

(** Usable bits per word (63 on a 64-bit platform). *)
val bits_per_word : int

(** [words_for n] is the number of words needed for [n] bits. *)
val words_for : int -> int

type t = private { words : int array; n_bits : int }

(** [create n] is an all-zeros bitset of [n] bits. *)
val create : int -> t

(** [full n] is an all-ones bitset of [n] bits; the unused tail bits of
    the last word are zero, an invariant every operation preserves. *)
val full : int -> t

val length : t -> int

(** [words t] is the backing word array (bit [i] is bit [i mod 63] of
    word [i / 63]). Callers that write it directly must keep the unused
    tail bits of the last word zero. *)
val words : t -> int array

val set : t -> int -> unit

val get : t -> int -> bool

(** [fill_ones t] / [fill_zeros t] reset every bit in place. *)
val fill_ones : t -> unit

val fill_zeros : t -> unit

(** [inter ~into b] is [into := into AND b]. *)
val inter : into:t -> t -> unit

(** [diff ~into b] is [into := into AND NOT b]. *)
val diff : into:t -> t -> unit

val is_empty : t -> bool

(** [count t] is the number of set bits. *)
val count : t -> int

(** [iter t f] applies [f] to every set bit index in ascending order. *)
val iter : t -> (int -> unit) -> unit

(** [to_indices t] is the ascending array of set bit indices. *)
val to_indices : t -> int array
