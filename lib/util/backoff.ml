(* Exponential backoff with jitter for bounded IO retry loops. The
   jitter stream is a process-global splitmix64 sequence: it only spreads
   retry timing, so it needs no per-call-site seeding and never affects
   computed results. *)

let mu = Mutex.create ()

let rng = Rng.create 0x6a69747465 (* "jitte" *)

let jitter () = Mutex.protect mu (fun () -> Rng.float rng 1.0)

let delay ?(base = 0.001) ?(cap = 0.05) ~attempt () =
  if attempt < 0 then invalid_arg "Backoff.delay: attempt";
  let exp = Float.min cap (base *. Float.pow 2.0 (float_of_int attempt)) in
  (* Decorrelated-ish: uniform in [exp/2, exp), so concurrent retriers
     spread out instead of thundering in lockstep. *)
  (exp /. 2.0) *. (1.0 +. jitter ())

let sleep ?base ?cap ~attempt () = Unix.sleepf (delay ?base ?cap ~attempt ())
