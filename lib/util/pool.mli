(** Persistent domain pool for data-parallel index scans.

    A pool of size [k] keeps [k - 1] worker domains parked between jobs;
    the submitting domain participates in every job, so [k] is the total
    parallelism. Pools exist for the whole training run — dispatching a
    job costs a lock round-trip, not a [Domain.spawn].

    Determinism: [map_array] always returns results in index order, and
    [f i] depends only on [i], so callers that reduce the result array
    in a fixed order get bit-identical answers at every pool size. *)

type t

(** A pool of size 1 that runs everything in the calling domain. *)
val sequential : t

(** [create ~domains] spawns a pool of total size [max 1 domains]
    ([domains - 1] worker domains). [create ~domains:1] is
    [sequential]. *)
val create : domains:int -> t

(** Total parallelism (worker domains + the submitting domain). *)
val size : t -> int

(** [map_array t n f] is [Array.init n f] with the calls distributed
    over the pool's domains. [f] must be safe to call from any domain
    (pure reads of shared immutable data are fine). If some call
    raises, one of the raised exceptions is re-raised in the submitting
    domain after the job drains.

    Re-entrant: a [map_array] issued from inside a pool job (any pool)
    runs sequentially in the calling domain instead of submitting,
    so composed parallel layers — e.g. a parallel harness evaluation
    whose training fans attribute scans — cannot deadlock or clobber
    the in-flight job. *)
val map_array : t -> int -> (int -> 'a) -> 'a array

(** Stop and join the worker domains. The pool afterwards degrades to
    sequential execution; call it in tests or at process exit. *)
val shutdown : t -> unit

(** [domains_of_env raw] parses a [PNRULE_DOMAINS] value: [Ok d] for a
    positive integer (surrounding whitespace ignored, capped at 64),
    [Error msg] for anything else. Exposed so tests can pin the
    parsing contract down without mutating the environment. *)
val domains_of_env : string -> (int, string) result

(** The process-wide default pool, created on first use. Its size comes
    from the [PNRULE_DOMAINS] environment variable when set to a
    positive integer (1 forces sequential execution, values are capped
    at 64), otherwise from [Domain.recommended_domain_count ()]. A set
    but unparsable (or < 1) [PNRULE_DOMAINS] logs a warning and forces
    sequential execution rather than silently going parallel. *)
val get_default : unit -> t

(** Replace the process default (tests use this to pin a size). The
    previous default, if any, is not shut down. *)
val set_default : t -> unit
