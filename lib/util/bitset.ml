(* Dense bitsets over native-int words (63 usable bits per word on a
   64-bit platform). Invariant: the unused tail bits of the last word
   are always zero, so word-wide folds need no per-bit masking. *)

let bits_per_word = Sys.int_size (* 63 on 64-bit *)

let words_for n = if n = 0 then 0 else ((n - 1) / bits_per_word) + 1

type t = { words : int array; n_bits : int }

(* All-ones pattern for a full word: every representable bit set. *)
let full_word = -1

(* Mask covering the [r] low bits of the final word (0 < r < 63 uses a
   plain shift; r = 63 is the full word). *)
let tail_mask r = if r = 0 then full_word else (1 lsl r) - 1

let create n = { words = Array.make (words_for n) 0; n_bits = n }

let length t = t.n_bits

let words t = t.words

let fill_zeros t = Array.fill t.words 0 (Array.length t.words) 0

let fill_ones t =
  let nw = Array.length t.words in
  if nw > 0 then begin
    Array.fill t.words 0 nw full_word;
    t.words.(nw - 1) <- tail_mask (t.n_bits mod bits_per_word)
  end

let full n =
  let t = create n in
  fill_ones t;
  t

let set t i = t.words.(i / bits_per_word) <- t.words.(i / bits_per_word) lor (1 lsl (i mod bits_per_word))

let get t i = t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let inter ~into b =
  let wa = into.words and wb = b.words in
  for w = 0 to Array.length wa - 1 do
    Array.unsafe_set wa w (Array.unsafe_get wa w land Array.unsafe_get wb w)
  done

let diff ~into b =
  let wa = into.words and wb = b.words in
  for w = 0 to Array.length wa - 1 do
    Array.unsafe_set wa w (Array.unsafe_get wa w land lnot (Array.unsafe_get wb w))
  done

let is_empty t =
  let rec loop w = w >= Array.length t.words || (t.words.(w) = 0 && loop (w + 1)) in
  loop 0

let popcount x =
  let c = ref 0 and v = ref x in
  while !v <> 0 do
    v := !v land (!v - 1);
    incr c
  done;
  !c

let count t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter t f =
  for w = 0 to Array.length t.words - 1 do
    let bits = ref t.words.(w) in
    let base = ref (w * bits_per_word) in
    while !bits <> 0 do
      if !bits land 1 <> 0 then f !base;
      bits := !bits lsr 1;
      incr base
    done
  done

let to_indices t =
  let out = Array.make (count t) 0 in
  let m = ref 0 in
  iter t (fun i ->
      out.(!m) <- i;
      incr m);
  out
