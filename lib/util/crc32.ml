(* Table-driven CRC-32 (the IEEE 802.3 polynomial, reflected form
   0xEDB88320) — the checksum zlib, gzip and PNG use. Values are plain
   ints in 0..2^32-1; OCaml's 63-bit native ints hold them without
   boxing.

   The kernel is slicing-by-8: eight derived tables let one loop
   iteration fold eight input bytes into the running value with pure int
   arithmetic (no Int32/Int64 boxing). The byte-at-a-time table is
   tables.(0), kept for the sub-8-byte head/tail — both kernels compute
   the identical checksum, only the throughput differs (the columnar
   dataset reader checksums every block it decodes, which is what pushed
   this from ~260 MB/s to >1 GB/s). *)

let tables =
  lazy
    (let t0 =
       Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
           done;
           !c)
     in
     let tables = Array.make 8 t0 in
     for k = 1 to 7 do
       let prev = tables.(k - 1) in
       tables.(k) <-
         Array.init 256 (fun n -> t0.(prev.(n) land 0xFF) lxor (prev.(n) lsr 8))
     done;
     tables)

let update crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update";
  let tables = Lazy.force tables in
  let t0 = tables.(0)
  and t1 = tables.(1)
  and t2 = tables.(2)
  and t3 = tables.(3)
  and t4 = tables.(4)
  and t5 = tables.(5)
  and t6 = tables.(6)
  and t7 = tables.(7) in
  let byte i = Char.code (String.unsafe_get s i) in
  let c = ref (crc lxor 0xFFFFFFFF) in
  let i = ref pos in
  let stop = pos + len in
  while stop - !i >= 8 do
    let p = !i in
    let lo =
      !c
      lxor (byte p lor (byte (p + 1) lsl 8) lor (byte (p + 2) lsl 16)
           lor (byte (p + 3) lsl 24))
    in
    c :=
      Array.unsafe_get t7 (lo land 0xFF)
      lxor Array.unsafe_get t6 ((lo lsr 8) land 0xFF)
      lxor Array.unsafe_get t5 ((lo lsr 16) land 0xFF)
      lxor Array.unsafe_get t4 ((lo lsr 24) land 0xFF)
      lxor Array.unsafe_get t3 (byte (p + 4))
      lxor Array.unsafe_get t2 (byte (p + 5))
      lxor Array.unsafe_get t1 (byte (p + 6))
      lxor Array.unsafe_get t0 (byte (p + 7));
    i := p + 8
  done;
  while !i < stop do
    c := Array.unsafe_get t0 ((!c lxor byte !i) land 0xFF) lxor (!c lsr 8);
    incr i
  done;
  !c lxor 0xFFFFFFFF

let string ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  update 0 s ~pos ~len
