(* Table-driven CRC-32 (the IEEE 802.3 polynomial, reflected form
   0xEDB88320) — the checksum zlib, gzip and PNG use. Values are plain
   ints in 0..2^32-1; OCaml's 63-bit native ints hold them without
   boxing. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update";
  let table = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let string ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  update 0 s ~pos ~len
