exception Injected of string

type outcome =
  | Eintr
  | Eagain
  | Raise
  | Short of int
  | Crash_after of int

type point = {
  outcome : outcome;
  after : int;
  every : int;
  times : int;
  p : float;
  rng : Rng.t;
  mutable passes : int;
  mutable fired : int;
  (* Crash_after only: bytes still allowed through before the "crash". *)
  mutable budget : int;
}

(* The whole registry lives behind one mutex; fault points are consulted
   from worker domains concurrently. The disarmed fast path never takes
   the lock: it is a single atomic load, which is what lets the points
   sit permanently in IO hot loops. *)
let mu = Mutex.create ()

let enabled = Atomic.make false

let table : (string, point) Hashtbl.t = Hashtbl.create 8

let base_seed = ref 0

let locked f = Mutex.protect mu f

let set_seed n = locked (fun () -> base_seed := n)

let seed () = locked (fun () -> !base_seed)

(* Each point draws its probability coins from a private splitmix64
   stream derived from (seed, name), so arming extra points never
   perturbs another point's schedule. *)
let point_rng name =
  Rng.create (!base_seed lxor Hashtbl.hash name lxor 0x66617573 (* "faus" *))

let arm ?(after = 0) ?(every = 1) ?(times = max_int) ?(p = 1.0) name outcome =
  locked (fun () ->
      Hashtbl.replace table name
        {
          outcome;
          after = max 0 after;
          every = max 1 every;
          times = max 0 times;
          p = Float.min 1.0 (Float.max 0.0 p);
          rng = point_rng name;
          passes = 0;
          fired = 0;
          budget = (match outcome with Crash_after n -> max 0 n | _ -> 0);
        };
      Atomic.set enabled true)

let disarm name =
  locked (fun () ->
      Hashtbl.remove table name;
      if Hashtbl.length table = 0 then Atomic.set enabled false)

let reset () =
  locked (fun () ->
      Hashtbl.reset table;
      Atomic.set enabled false)

let find name = locked (fun () -> Hashtbl.find_opt table name)

let passes name = match find name with None -> 0 | Some pt -> pt.passes

let fired name = match find name with None -> 0 | Some pt -> pt.fired

let suppressed name = passes name - fired name

let stats () =
  locked (fun () ->
      Hashtbl.fold (fun name pt acc -> (name, pt.passes, pt.fired) :: acc) table [])
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Schedule evaluation                                                  *)
(* ------------------------------------------------------------------ *)

(* One pass of the deterministic schedule (registry lock held). The coin
   is only flipped on passes that are otherwise eligible, so the rng
   stream position — and therefore the whole replay — depends only on
   the pass sequence, never on wall clock or domain interleaving within
   a single point. *)
let schedule_fires pt =
  pt.passes > pt.after
  && (pt.passes - pt.after - 1) mod pt.every = 0
  && pt.fired < pt.times
  && (pt.p >= 1.0 || Rng.float pt.rng 1.0 < pt.p)

let exn_of name = function
  | Eintr -> Unix.Unix_error (Unix.EINTR, name, "injected")
  | Eagain -> Unix.Unix_error (Unix.EAGAIN, name, "injected")
  | Raise | Short _ | Crash_after _ -> Injected name

let check name =
  if Atomic.get enabled then begin
    let verdict =
      locked (fun () ->
          match Hashtbl.find_opt table name with
          | None -> None
          | Some pt -> (
            pt.passes <- pt.passes + 1;
            match pt.outcome with
            (* Byte-count outcomes cannot fire at a countless point. *)
            | Short _ | Crash_after _ -> None
            | (Eintr | Eagain | Raise) as o ->
              if schedule_fires pt then begin
                pt.fired <- pt.fired + 1;
                Some (exn_of name o)
              end
              else None))
    in
    match verdict with None -> () | Some e -> raise e
  end

let cap name n =
  if n <= 0 then invalid_arg "Fault.cap: byte count must be positive";
  if not (Atomic.get enabled) then n
  else begin
    let verdict =
      locked (fun () ->
          match Hashtbl.find_opt table name with
          | None -> Ok n
          | Some pt -> (
            pt.passes <- pt.passes + 1;
            match pt.outcome with
            | Crash_after _ ->
              (* Unconditional once armed: the budget is the schedule. *)
              if pt.budget >= n then begin
                pt.budget <- pt.budget - n;
                Ok n
              end
              else if pt.budget > 0 then begin
                let allowed = pt.budget in
                pt.budget <- 0;
                pt.fired <- pt.fired + 1;
                Ok allowed
              end
              else begin
                pt.fired <- pt.fired + 1;
                Error (Injected name)
              end
            | Short k ->
              if schedule_fires pt then begin
                pt.fired <- pt.fired + 1;
                Ok (min n (max 1 k))
              end
              else Ok n
            | (Eintr | Eagain | Raise) as o ->
              if schedule_fires pt then begin
                pt.fired <- pt.fired + 1;
                Error (exn_of name o)
              end
              else Ok n))
    in
    match verdict with Ok m -> m | Error e -> raise e
  end

(* ------------------------------------------------------------------ *)
(* PNRULE_FAULTS grammar                                                *)
(* ------------------------------------------------------------------ *)

let parse_int what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: %S is not an integer" what s)

let parse_mode clause s =
  let prefixed pre =
    let lp = String.length pre in
    if String.length s > lp && String.sub s 0 lp = pre then
      Some (String.sub s lp (String.length s - lp))
    else None
  in
  match s with
  | "eintr" -> Ok Eintr
  | "eagain" -> Ok Eagain
  | "raise" -> Ok Raise
  | _ -> (
    match prefixed "short@" with
    | Some k -> Result.map (fun k -> Short k) (parse_int clause k)
    | None -> (
      match prefixed "crash@" with
      | Some n -> Result.map (fun n -> Crash_after n) (parse_int clause n)
      | None -> Error (Printf.sprintf "%s: unknown mode %S" clause s)))

let parse_clause clause =
  match String.index_opt clause ':' with
  | None -> (
    (* seed=N is the only point-free clause. *)
    match String.split_on_char '=' clause with
    | [ "seed"; v ] -> Result.map (fun s -> `Seed s) (parse_int clause v)
    | _ ->
      Error
        (Printf.sprintf "%S: expected NAME:MODE[,k=v...] or seed=N" clause))
  | Some colon -> (
    let name = String.sub clause 0 colon in
    let rest = String.sub clause (colon + 1) (String.length clause - colon - 1) in
    match String.split_on_char ',' rest with
    | [] | [ "" ] -> Error (Printf.sprintf "%S: missing mode" clause)
    | mode :: modifiers -> (
      match parse_mode clause mode with
      | Error _ as e -> e
      | Ok outcome ->
        let rec apply ~after ~every ~times ~p = function
          | [] -> Ok (`Point (name, outcome, after, every, times, p))
          | m :: tl -> (
            match String.split_on_char '=' m with
            | [ "after"; v ] ->
              Result.bind (parse_int clause v) (fun after ->
                  apply ~after ~every ~times ~p tl)
            | [ "every"; v ] ->
              Result.bind (parse_int clause v) (fun every ->
                  apply ~after ~every ~times ~p tl)
            | [ "times"; v ] ->
              Result.bind (parse_int clause v) (fun times ->
                  apply ~after ~every ~times ~p tl)
            | [ "p"; v ] -> (
              match float_of_string_opt v with
              | Some p -> apply ~after ~every ~times ~p tl
              | None ->
                Error (Printf.sprintf "%s: p=%S is not a float" clause v))
            | _ ->
              Error (Printf.sprintf "%s: unknown modifier %S" clause m))
        in
        apply ~after:0 ~every:1 ~times:max_int ~p:1.0 modifiers))

let arm_spec spec =
  let clauses =
    String.split_on_char ';' spec
    |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  (* Two passes so seed=N applies to every point of the spec regardless
     of clause order. *)
  List.fold_left
    (fun acc clause ->
      Result.bind acc (fun parsed ->
          Result.map (fun c -> c :: parsed) (parse_clause clause)))
    (Ok []) clauses
  |> Result.map (fun parsed ->
         let parsed = List.rev parsed in
         List.iter (function `Seed s -> set_seed s | `Point _ -> ()) parsed;
         List.iter
           (function
             | `Seed _ -> ()
             | `Point (name, outcome, after, every, times, p) ->
               arm ~after ~every ~times ~p name outcome)
           parsed)

(* Environment arming happens once, at module initialization, so a
   PNRULE_FAULTS run needs no code changes anywhere. The seed is
   printed because the acceptance bar for every chaos failure is "replays
   exactly from the printed seed". *)
let () =
  match Sys.getenv_opt "PNRULE_FAULTS" with
  | None | Some "" -> ()
  | Some spec -> (
    match arm_spec spec with
    | Ok () ->
      Printf.eprintf "pnrule: fault injection armed (seed=%d): %s\n%!" (seed ())
        spec
    | Error msg ->
      Printf.eprintf
        "pnrule: ignoring malformed PNRULE_FAULTS (%s); no faults armed\n%!" msg)
