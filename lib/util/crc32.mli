(** CRC-32 (IEEE 802.3, the zlib/PNG checksum) over strings.

    Checksums are returned as plain non-negative ints in [0, 2^32). *)

(** [string s] is the CRC-32 of [s] (or of the [pos]/[len] slice). *)
val string : ?pos:int -> ?len:int -> string -> int

(** [update crc s ~pos ~len] extends a running checksum, so a value can
    be computed incrementally over slices: [update (update 0 a ...) b ...]
    equals [string (a ^ b)]. *)
val update : int -> string -> pos:int -> len:int -> int
