(** Deterministic fault injection: named fault points, armed on demand.

    A fault point is a named site in production code — [serialize.write],
    [stream.refill], [server.worker], [serve.chunk_write],
    [columnar.read], [columnar.write], [registry.flip], [registry.load],
    [router.proxy_read], [router.proxy_write], [router.spawn] — that
    consults
    this registry on every pass. When the registry is disarmed (the
    default) a pass costs one atomic load and a branch, so the points can
    live permanently in hot paths. When a point is armed, a deterministic
    splitmix64-seeded schedule decides on which passes the fault fires,
    and the outcome is injected: an exception, a transient [Unix] errno,
    a short read/write, or a simulated crash after a byte budget.

    Arming is either programmatic ({!arm}, for tests) or via the
    [PNRULE_FAULTS] environment variable (for chaos CI and manual ops
    drills), whose grammar is semicolon-separated clauses:

    {v
    PNRULE_FAULTS="seed=42;stream.refill:eintr,p=0.2;serialize.write:crash@4096"

    clause  := 'seed=' INT | NAME ':' mode modifiers
    mode    := 'eintr' | 'eagain' | 'raise' | 'short@' INT | 'crash@' INT
    modifier:= ',after=' INT   passes to let through before firing
             | ',every=' INT   then fire on every Nth eligible pass
             | ',times=' INT   stop after this many firings
             | ',p=' FLOAT     fire each eligible pass with probability p
    v}

    The same seed replays the same schedule exactly — including the
    [p]-gated coin flips, which come from a per-point splitmix64 stream —
    so every chaos failure reproduces from the printed seed. *)

exception Injected of string
(** The injected "software bug" exception; the payload names the point.
    Supervision layers treat it like any other escaped exception. *)

(** What an armed point does when its schedule fires. *)
type outcome =
  | Eintr  (** raise [Unix.Unix_error (EINTR, point, "")] *)
  | Eagain  (** raise [Unix.Unix_error (EAGAIN, point, "")] *)
  | Raise  (** raise {!Injected} *)
  | Short of int  (** cap the pass's byte count at this many bytes *)
  | Crash_after of int
      (** let this many bytes through the point in total, then raise
          {!Injected} on every later pass — a mid-write crash *)

(** [arm name outcome] arms a point programmatically. [after] passes are
    let through untouched (default 0); then every [every]-th eligible
    pass fires (default 1), each gated by probability [p] (default 1.0),
    until [times] firings have happened (default unlimited). Re-arming a
    name replaces its schedule and zeroes its counters. *)
val arm :
  ?after:int -> ?every:int -> ?times:int -> ?p:float -> string -> outcome -> unit

(** [arm_spec spec] parses and applies one [PNRULE_FAULTS]-grammar string.
    Returns [Error] (and arms nothing from the offending clause) on a
    malformed clause. *)
val arm_spec : string -> (unit, string) result

(** [disarm name] removes one point; {!reset} removes all of them and
    restores the zero-cost disarmed fast path. *)
val disarm : string -> unit

val reset : unit -> unit

(** [set_seed n] re-seeds the schedule streams of subsequently armed
    points (default seed 0). *)
val set_seed : int -> unit

(** The seed in force — printed by chaos harnesses so failures replay. *)
val seed : unit -> int

(** [check name] passes a non-IO fault point: raises per the armed
    outcome ([Short]/[Crash_after] never fire here — there is no byte
    count to cut). No-op when disarmed. *)
val check : string -> unit

(** [cap name n] passes an IO fault point that is about to move [n > 0]
    bytes: returns how many bytes the caller may actually move ([n] when
    disarmed or the schedule does not fire, [min n k] for [Short k], the
    remaining budget for [Crash_after]) and raises when the outcome is an
    exception. The caller must move at most the returned count this
    pass. *)
val cap : string -> int -> int

(** [fired name] / [passes name] — firings and total passes of a point,
    armed or not (0 for unknown names). [suppressed] is
    [passes - fired]. *)
val fired : string -> int

val passes : string -> int

val suppressed : string -> int

(** All armed points as [(name, passes, fired)], sorted by name. *)
val stats : unit -> (string * int * int) list
