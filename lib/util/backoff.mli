(** Exponential backoff with jitter for bounded retry of transient IO
    errors (EINTR/EAGAIN storms, injected faults). *)

(** [delay ~attempt ()] is the pause before retry number [attempt]
    (0-based): exponential from [base] seconds (default 1 ms), capped at
    [cap] (default 50 ms), jittered uniformly into [exp/2, exp) so
    concurrent retriers decorrelate. *)
val delay : ?base:float -> ?cap:float -> attempt:int -> unit -> float

(** [sleep ~attempt ()] sleeps for [delay ~attempt ()]. *)
val sleep : ?base:float -> ?cap:float -> attempt:int -> unit -> unit
