(* Persistent domain pool for fanning independent index-space scans
   across cores. Workers are spawned once and parked on a condition
   variable between jobs, so dispatch costs a lock round-trip rather
   than a Domain.spawn. *)

type job = {
  run : int -> unit;
  n_items : int;
  next : int Atomic.t;
  completed : int Atomic.t;
}

type t = {
  size : int;
  mutable workers : unit Domain.t list;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : job option;
  (* Bumped for every submitted job; parked workers wake when it moves. *)
  mutable generation : int;
  mutable stop : bool;
  mutable error : exn option;
}

let size t = t.size

(* True while the current domain is executing a pool job. A nested
   [map_array] (e.g. rule growth fanning attribute scans from inside a
   parallel harness evaluation) must not submit to the pool it is
   already running on — it would clobber the in-flight job — so nested
   calls degrade to sequential execution in the calling domain. *)
let in_job : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let record_error t e =
  Mutex.lock t.mutex;
  if t.error = None then t.error <- Some e;
  Mutex.unlock t.mutex

(* Drain the job's index space. Each index is claimed with a
   fetch-and-add, so the partition over domains is dynamic but every
   index runs exactly once. The last finisher signals the submitter. *)
let run_items t job =
  let was_in_job = Domain.DLS.get in_job in
  Domain.DLS.set in_job true;
  let rec grab () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.n_items then begin
      (try job.run i with e -> record_error t e);
      let finished = Atomic.fetch_and_add job.completed 1 + 1 in
      if finished = job.n_items then begin
        Mutex.lock t.mutex;
        Condition.broadcast t.work_done;
        Mutex.unlock t.mutex
      end;
      grab ()
    end
  in
  grab ();
  Domain.DLS.set in_job was_in_job

let rec worker t last_generation =
  Mutex.lock t.mutex;
  while t.generation = last_generation && not t.stop do
    Condition.wait t.work_ready t.mutex
  done;
  let generation = t.generation and job = t.job and stop = t.stop in
  Mutex.unlock t.mutex;
  if not stop then begin
    (match job with Some j -> run_items t j | None -> ());
    worker t generation
  end

let sequential =
  {
    size = 1;
    workers = [];
    mutex = Mutex.create ();
    work_ready = Condition.create ();
    work_done = Condition.create ();
    job = None;
    generation = 0;
    stop = false;
    error = None;
  }

let create ~domains =
  let domains = max 1 domains in
  if domains = 1 then sequential
  else begin
    let t =
      {
        size = domains;
        workers = [];
        mutex = Mutex.create ();
        work_ready = Condition.create ();
        work_done = Condition.create ();
        job = None;
        generation = 0;
        stop = false;
        error = None;
      }
    in
    (* The submitting domain participates, so spawn one fewer worker. *)
    t.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker t 0));
    t
  end

let shutdown t =
  if t.workers <> [] then begin
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let map_array t n f =
  if n <= 0 then [||]
  else if t.size <= 1 || t.workers = [] || n = 1 || Domain.DLS.get in_job then
    Array.init n f
  else begin
    let results = Array.make n None in
    let job =
      {
        run = (fun i -> results.(i) <- Some (f i));
        n_items = n;
        next = Atomic.make 0;
        completed = Atomic.make 0;
      }
    in
    Mutex.lock t.mutex;
    t.error <- None;
    t.job <- Some job;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    run_items t job;
    Mutex.lock t.mutex;
    while Atomic.get job.completed < n do
      Condition.wait t.work_done t.mutex
    done;
    let error = t.error in
    t.job <- None;
    Mutex.unlock t.mutex;
    (match error with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

(* ------------------------------------------------------------------ *)
(* Process-default pool                                                 *)
(* ------------------------------------------------------------------ *)

let domains_of_env raw =
  match int_of_string_opt (String.trim raw) with
  | Some d when d >= 1 -> Ok (min d 64)
  | Some d -> Error (Printf.sprintf "PNRULE_DOMAINS=%S: %d is not >= 1" raw d)
  | None -> Error (Printf.sprintf "PNRULE_DOMAINS=%S is not an integer" raw)

(* A bad PNRULE_DOMAINS used to silently fall through to
   [recommended_domain_count], i.e. a typo'd knob quietly went *more*
   parallel. Warn and force sequential instead: the conservative mode,
   and the one every PNRULE_DOMAINS result is tested to be
   bit-identical with. *)
let env_domains () =
  match Sys.getenv_opt "PNRULE_DOMAINS" with
  | None -> None
  | Some raw -> (
    match domains_of_env raw with
    | Ok d -> Some d
    | Error msg ->
      Logs.warn (fun m -> m "%s; falling back to sequential execution" msg);
      Some 1)

let default_pool : t option ref = ref None

let get_default () =
  match !default_pool with
  | Some pool -> pool
  | None ->
    let domains =
      match env_domains () with
      | Some d -> d
      | None -> Domain.recommended_domain_count ()
    in
    let pool = create ~domains in
    default_pool := Some pool;
    pool

let set_default pool = default_pool := Some pool
