module RM = Pn_metrics.Rule_metric

type candidate = {
  condition : Pn_rules.Condition.t;
  counts : RM.counts;
  score : float;
}

(* Distinct-value summary of one numeric column over a view: values
   ascending, with cumulative weighted positive/negative counts through
   each distinct-value group. *)
type numeric_profile = {
  values : float array;
  pos_prefix : float array;
  neg_prefix : float array;
}

let numeric_profile view ~col ~is_pos =
  let sorted = Pn_data.View.sorted_by_num view ~col in
  let ds = view.Pn_data.View.data in
  let n = Array.length sorted in
  (* One distinct-value group per record at worst; fill preallocated
     arrays and shrink once, instead of consing three lists. *)
  let values = Array.make (max n 1) 0.0 in
  let pos = Array.make (max n 1) 0.0 in
  let neg = Array.make (max n 1) 0.0 in
  let cum_pos = ref 0.0 and cum_neg = ref 0.0 in
  let m = ref 0 in
  for k = 0 to n - 1 do
    let i = sorted.(k) in
    let v = Pn_data.Dataset.num_value ds ~col i in
    (* Group boundaries sit between distinct values only, so thresholds
       never split a tie group. *)
    if !m = 0 || Float.compare values.(!m - 1) v <> 0 then begin
      values.(!m) <- v;
      incr m
    end;
    let w = Pn_data.Dataset.weight ds i in
    if is_pos (Pn_data.Dataset.label ds i) then cum_pos := !cum_pos +. w
    else cum_neg := !cum_neg +. w;
    pos.(!m - 1) <- !cum_pos;
    neg.(!m - 1) <- !cum_neg
  done;
  {
    values = Array.sub values 0 !m;
    pos_prefix = Array.sub pos 0 !m;
    neg_prefix = Array.sub neg 0 !m;
  }

(* Counts covered by the inclusive distinct-index window [j, k]. *)
let window_counts p j k =
  let pos_lo = if j = 0 then 0.0 else p.pos_prefix.(j - 1) in
  let neg_lo = if j = 0 then 0.0 else p.neg_prefix.(j - 1) in
  { RM.pos = p.pos_prefix.(k) -. pos_lo; neg = p.neg_prefix.(k) -. neg_lo }

(* Below this view size the per-call pool dispatch outweighs the scan
   itself; run in the submitting domain. *)
let parallel_min_records = 512

let best_condition ?(allow_ranges = true) ?(negate = false) ?(min_support = 0.0)
    ?current ?features ?pool ~metric ~ctx ~target view =
  let ds = view.Pn_data.View.data in
  let attrs = ds.Pn_data.Dataset.attrs in
  let is_pos label = if negate then label <> target else label = target in
  let raw_pos, raw_neg = Pn_data.View.binary_weights view ~target in
  let total_pos, total_neg = if negate then (raw_neg, raw_pos) else (raw_pos, raw_neg) in
  let total = { RM.pos = total_pos; neg = total_neg } in
  let redundant c =
    match current with
    | Some rule -> Pn_rules.Rule.redundant_with rule c
    | None -> false
  in
  (* Per-column search. Each call touches only its own column and its
     own [best] ref, so columns can run on any domain; the caller's
     ascending-column reduce keeps the winner identical to a sequential
     left-to-right scan. *)
  let scan_column col (attr : Pn_data.Attribute.t) =
    let best = ref None in
    let consider condition counts =
      (* A refinement that fails to shrink the coverage is vacuous: it can
         only re-derive the current rule's score and would loop forever.
         Candidates below the support floor are skipped here, inside the
         search, so the best *qualifying* candidate surfaces. *)
      let support = RM.support counts in
      let shrinks = support < RM.support total -. 1e-12 in
      if shrinks && support > 0.0 && support >= min_support && not (redundant condition)
      then begin
        let score = RM.eval metric ctx counts in
        match !best with
        | Some b when b.score >= score -> ()
        | Some _ | None -> best := Some { condition; counts; score }
      end
    in
    (match attr.kind with
    | Pn_data.Attribute.Categorical values ->
      let arity = Array.length values in
      let pos = Array.make arity 0.0 and neg = Array.make arity 0.0 in
      Pn_data.View.iter view (fun i ->
          let v = Pn_data.Dataset.cat_value ds ~col i in
          let w = Pn_data.Dataset.weight ds i in
          if is_pos (Pn_data.Dataset.label ds i) then pos.(v) <- pos.(v) +. w
          else neg.(v) <- neg.(v) +. w);
      for v = 0 to arity - 1 do
        if pos.(v) +. neg.(v) > 0.0 then
          consider
            (Pn_rules.Condition.Cat_eq { col; value = v })
            { RM.pos = pos.(v); neg = neg.(v) }
      done
    | Pn_data.Attribute.Numeric ->
      let p = numeric_profile view ~col ~is_pos in
      let m = Array.length p.values in
      if m >= 2 then begin
        (* One scan finds the best A <= v and the best A >= v. *)
        let best_le = ref None and best_ge = ref None in
        let better r score = match !r with
          | Some (s, _) when s >= score -> false
          | Some _ | None -> true
        in
        for k = 0 to m - 1 do
          if k < m - 1 then begin
            let c = window_counts p 0 k in
            let s = RM.eval metric ctx c in
            if RM.support c > 0.0 && better best_le s then best_le := Some (s, k)
          end;
          if k > 0 then begin
            let c = window_counts p k (m - 1) in
            let s = RM.eval metric ctx c in
            if RM.support c > 0.0 && better best_ge s then best_ge := Some (s, k)
          end
        done;
        (match !best_le with
        | Some (_, k) ->
          consider
            (Pn_rules.Condition.Num_le { col; threshold = p.values.(k) })
            (window_counts p 0 k)
        | None -> ());
        (match !best_ge with
        | Some (_, k) ->
          consider
            (Pn_rules.Condition.Num_ge { col; threshold = p.values.(k) })
            (window_counts p k (m - 1))
        | None -> ());
        if allow_ranges then begin
          (* §2.2: fix the better one-sided threshold, then a second
             scan over the sorted column finds the other end. *)
          let scan_lo hi_idx =
            for j = 1 to hi_idx do
              let c = window_counts p j hi_idx in
              if RM.support c > 0.0 then
                consider
                  (Pn_rules.Condition.Num_range
                     { col; lo = p.values.(j); hi = p.values.(hi_idx) })
                  c
            done
          in
          let scan_hi lo_idx =
            for k = lo_idx to m - 2 do
              let c = window_counts p lo_idx k in
              if RM.support c > 0.0 then
                consider
                  (Pn_rules.Condition.Num_range
                     { col; lo = p.values.(lo_idx); hi = p.values.(k) })
                  c
            done
          in
          (match (!best_le, !best_ge) with
          | Some (sle, kle), Some (sge, kge) ->
            if sle >= sge then scan_lo kle else scan_hi kge
          | Some (_, kle), None -> scan_lo kle
          | None, Some (_, kge) -> scan_hi kge
          | None, None -> ());
          (* Maximum-enrichment window: Kadane's scan over per-group
             (pos − prior·support) finds an interior peak even when
             neither one-sided optimum is anchored near it. *)
          let prior = RM.prior ctx in
          let group_gain k =
            let c = window_counts p k k in
            c.RM.pos -. (prior *. RM.support c)
          in
          let best_sum = ref neg_infinity
          and best_lo = ref 0
          and best_hi = ref 0 in
          let cur_sum = ref 0.0 and cur_lo = ref 0 in
          for k = 0 to m - 1 do
            let g = group_gain k in
            if !cur_sum +. g < g then begin
              cur_sum := g;
              cur_lo := k
            end
            else cur_sum := !cur_sum +. g;
            if !cur_sum > !best_sum then begin
              best_sum := !cur_sum;
              best_lo := !cur_lo;
              best_hi := k
            end
          done;
          if !best_sum > 0.0 && (!best_lo > 0 || !best_hi < m - 1) then
            consider
              (Pn_rules.Condition.Num_range
                 { col; lo = p.values.(!best_lo); hi = p.values.(!best_hi) })
              (window_counts p !best_lo !best_hi)
        end
      end);
    !best
  in
  (* Feature sampling prunes the fan-out itself: only the kept columns
     are scanned (or dispatched to the pool) at all. The kept array is
     ascending, so the reduce below stays the sequential left-to-right
     winner regardless of which columns survived. *)
  let n_cols =
    match features with
    | None -> Array.length attrs
    | Some kept -> Array.length kept
  in
  let col_of k = match features with None -> k | Some kept -> kept.(k) in
  let pool =
    match pool with Some p -> p | None -> Pn_util.Pool.get_default ()
  in
  let per_column =
    if
      Pn_util.Pool.size pool > 1 && n_cols > 1
      && Pn_data.View.size view >= parallel_min_records
    then
      Pn_util.Pool.map_array pool n_cols (fun k ->
          let col = col_of k in
          scan_column col attrs.(col))
    else
      Array.init n_cols (fun k ->
          let col = col_of k in
          scan_column col attrs.(col))
  in
  (* Deterministic reduce: ascending column index, and an earlier
     candidate survives a tie exactly as in the sequential scan
     ([b.score >= c.score] keeps [b], including its NaN behaviour). *)
  Array.fold_left
    (fun acc cand ->
      match (acc, cand) with
      | None, c -> c
      | (Some _ as acc), None -> acc
      | Some b, Some c -> if b.score >= c.score then acc else cand)
    None per_column

let candidate_space_size ds =
  let count = ref 0 in
  Array.iteri
    (fun col (attr : Pn_data.Attribute.t) ->
      match attr.kind with
      | Pn_data.Attribute.Categorical values -> count := !count + Array.length values
      | Pn_data.Attribute.Numeric ->
        (* The sort cache already knows the distinct-value count; no
           per-call hashing of every cell. *)
        count := !count + (2 * Pn_data.Dataset.n_distinct_num ds ~col))
    ds.Pn_data.Dataset.attrs;
  max 2 !count
