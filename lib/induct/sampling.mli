(** Pluggable sub-sampling for the induction hot path.

    Million-row training does not need every instance and every
    attribute scanned per candidate condition: a strategy pair drawn
    here prunes both axes before the grower runs. Instance strategies
    shrink the view a rule is grown on; feature strategies prune the
    per-attribute fan-out of {!Grower.best_condition} directly.

    Every draw comes from a splitmix64 stream derived from the explicit
    [seed], and all draws happen on the submitting thread — so a given
    strategy at a given seed selects the same records and columns at
    any [PNRULE_DOMAINS], which is what keeps sampled training
    bit-identical across pool sizes. *)

type instances =
  | All_instances  (** keep every record; draws nothing *)
  | Fraction of float  (** without replacement, keep ≈ fraction·n *)
  | Bagging of float
      (** with replacement, ≈ fraction·n draws; duplicates keep their
          multiplicity, which is how bagged rounds differ *)
  | Stratified of { fraction : float; min_per_class : int }
      (** [Fraction] applied per class, but never fewer than
          [min_per_class] records of any class (all of them when the
          class is smaller) — the rare class is never starved *)

type features =
  | All_features  (** scan every attribute; draws nothing *)
  | Sqrt_features  (** keep ⌈√n_attrs⌉ attributes per rule *)
  | Fraction_features of float  (** keep ≈ fraction·n_attrs per rule *)

type t = { instances : instances; features : features; seed : int }

(** No sampling on either axis, seed 1. Training with [none] draws
    nothing and is byte-identical to unsampled training. *)
val none : t

val is_none : t -> bool

(** A stateful stream of sampling decisions. One context serves one
    training run (or one boosted round): instance draws first, then one
    feature mask per rule, in a fixed order. *)
type ctx

(** [ctx t] seeds a fresh stream from [t.seed]. *)
val ctx : t -> ctx

(** [ctx_of_rng t rng] runs the strategies off an externally split
    stream — the boosted learner hands each round its own. *)
val ctx_of_rng : t -> Pn_util.Rng.t -> ctx

(** [sample_instances c view] applies the instance strategy. Kept
    indices stay in [view]'s order (bagging duplicates are sorted in),
    so downstream sort-cache filtering sees an ascending index array.
    [All_instances] returns [view] itself and draws nothing. *)
val sample_instances : ctx -> Pn_data.View.t -> Pn_data.View.t

(** [feature_mask c ~n_attrs] draws the column subset for one rule:
    [None] means every column ([All_features] draws nothing), otherwise
    a sorted array of kept column indices for
    {!Grower.best_condition}'s [?features]. *)
val feature_mask : ctx -> n_attrs:int -> int array option

(** Parsers for the CLI grammar (round-trips with the printers):
    instances: [none] | [FRAC] | [bag:FRAC] | [strat:FRAC] |
    [strat:FRAC:MIN]; features: [none] | [sqrt] | [FRAC]. Fractions
    must lie in (0, 1]. *)
val instances_of_string : string -> (instances, string) result

val features_of_string : string -> (features, string) result

val instances_to_string : instances -> string

val features_to_string : features -> string
