(** Shared rule-growing engine.

    Finds the best single condition to conjoin to a rule, given the
    records the current rule covers and an evaluation context. Categorical
    attributes contribute one [A = v] candidate per value; numeric
    attributes contribute the best [A ≤ v], the best [A ≥ v], and — per
    the paper §2.2 — the best range [vl ≤ A ≤ vr] found by fixing the
    better one-sided threshold and scanning the opposite end of the sorted
    column. *)

type candidate = {
  condition : Pn_rules.Condition.t;
  counts : Pn_metrics.Rule_metric.counts;
      (** weighted coverage of [current rule ∧ condition] over the view *)
  score : float;
}

(** [best_condition ?allow_ranges ?negate ?current ~metric ~ctx ~target
    view] scores every candidate refinement over [view] (the records the
    current rule covers, within the set the metric context describes) and
    returns the best, or [None] when no candidate strictly reduces
    coverage. [current] filters out conditions subsumed by the rule being
    grown. [allow_ranges] defaults to [true]. When [negate] is true
    (default false), records *not* of class [target] count as positive —
    PNrule's N-phase learns signatures of the target class's absence.

    [min_support] (default 0) excludes candidates whose weighted coverage
    falls below it *from the search itself*, so the best qualifying
    candidate is returned rather than none when an unqualifying one
    scores higher — this is how the paper's P-phase support constraint
    keeps tiny overfit ranges from stalling rule growth.

    Besides the paper's anchored two-scan range search, the numeric
    search proposes the maximum-enrichment window (a Kadane scan over
    per-value [positive − prior·support] scores), which finds interior
    signature peaks even when both one-sided optima land elsewhere.

    [features] (default: every column) restricts the search to the
    given ascending column indices — {!Sampling.feature_mask} draws one
    per rule — pruning the per-attribute fan-out itself rather than
    filtering candidates after the fact.

    [pool] (default [Pn_util.Pool.get_default ()], i.e. the
    [PNRULE_DOMAINS] knob) fans the per-attribute scans across domains
    for views of ≥ 512 records. The reduce is deterministic — higher
    score wins, ties keep the lowest column index — so every pool size,
    including 1, returns the identical candidate. *)
val best_condition :
  ?allow_ranges:bool ->
  ?negate:bool ->
  ?min_support:float ->
  ?current:Pn_rules.Rule.t ->
  ?features:int array ->
  ?pool:Pn_util.Pool.t ->
  metric:Pn_metrics.Rule_metric.kind ->
  ctx:Pn_metrics.Rule_metric.context ->
  target:int ->
  Pn_data.View.t ->
  candidate option

(** [candidate_space_size ds] estimates the number of distinct candidate
    conditions the dataset offers (Σ categorical arities + 2 × distinct
    numeric values, ranges not double-counted). Used as the MDL theory
    alphabet size. *)
val candidate_space_size : Pn_data.Dataset.t -> int
