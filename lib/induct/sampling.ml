type instances =
  | All_instances
  | Fraction of float
  | Bagging of float
  | Stratified of { fraction : float; min_per_class : int }

type features =
  | All_features
  | Sqrt_features
  | Fraction_features of float

type t = { instances : instances; features : features; seed : int }

let none = { instances = All_instances; features = All_features; seed = 1 }

let is_none t = t.instances = All_instances && t.features = All_features

type ctx = { spec : t; rng : Pn_util.Rng.t }

let ctx t = { spec = t; rng = Pn_util.Rng.create t.seed }

let ctx_of_rng t rng = { spec = t; rng }

(* Kept counts round half-up so tiny views keep at least one record of
   anything a fraction touches. *)
let rounded_count fraction n =
  min n (max 1 (int_of_float (Float.round (fraction *. float_of_int n))))

(* Map sorted view *positions* back to dataset indices. Views keep their
   index arrays ascending in practice, and sampled positions come out
   sorted, so the result preserves the view's order — which is what lets
   [View.sorted_by_num] keep using the cached global order. *)
let take_positions (view : Pn_data.View.t) positions =
  Pn_data.View.of_indices view.Pn_data.View.data
    (Array.map (fun p -> view.Pn_data.View.idx.(p)) positions)

let sample_instances c view =
  let n = Pn_data.View.size view in
  if n = 0 then view
  else
    match c.spec.instances with
    | All_instances -> view
    | Fraction f ->
      let k = rounded_count f n in
      take_positions view (Pn_util.Rng.sample_without_replacement c.rng ~n ~k)
    | Bagging f ->
      let k = rounded_count f n in
      let positions = Array.init k (fun _ -> Pn_util.Rng.int c.rng n) in
      Array.sort compare positions;
      take_positions view positions
    | Stratified { fraction; min_per_class } ->
      let ds = view.Pn_data.View.data in
      let n_classes = Pn_data.Dataset.n_classes ds in
      (* Per-class position lists, in view order. *)
      let members = Array.make n_classes [] in
      for p = n - 1 downto 0 do
        let cl = Pn_data.Dataset.label ds view.Pn_data.View.idx.(p) in
        members.(cl) <- p :: members.(cl)
      done;
      let kept = ref [] in
      (* Fixed ascending class order keeps the draw sequence — and so
         the sample — independent of anything but the seed. *)
      for cl = 0 to n_classes - 1 do
        let ps = Array.of_list members.(cl) in
        let n_c = Array.length ps in
        if n_c > 0 then begin
          let k =
            min n_c (max (min n_c min_per_class) (rounded_count fraction n_c))
          in
          let chosen =
            if k = n_c then Array.init n_c Fun.id
            else Pn_util.Rng.sample_without_replacement c.rng ~n:n_c ~k
          in
          Array.iter (fun j -> kept := ps.(j) :: !kept) chosen
        end
      done;
      let positions = Array.of_list !kept in
      Array.sort compare positions;
      take_positions view positions

let feature_mask c ~n_attrs =
  if n_attrs <= 0 then None
  else
    match c.spec.features with
    | All_features -> None
    | Sqrt_features ->
      let k = min n_attrs (max 1 (int_of_float (ceil (sqrt (float_of_int n_attrs))))) in
      if k >= n_attrs then None
      else Some (Pn_util.Rng.sample_without_replacement c.rng ~n:n_attrs ~k)
    | Fraction_features f ->
      let k = rounded_count f n_attrs in
      if k >= n_attrs then None
      else Some (Pn_util.Rng.sample_without_replacement c.rng ~n:n_attrs ~k)

(* ------------------------------------------------------------------ *)
(* CLI grammar                                                          *)
(* ------------------------------------------------------------------ *)

let fraction_of_string what s =
  match float_of_string_opt s with
  | Some f when f > 0.0 && f <= 1.0 -> Ok f
  | Some f -> Error (Printf.sprintf "%s fraction must be in (0, 1], got %g" what f)
  | None -> Error (Printf.sprintf "%s fraction must be a number, got %S" what s)

let instances_of_string s =
  match String.split_on_char ':' (String.trim s) with
  | [ "none" ] -> Ok All_instances
  | [ f ] -> Result.map (fun f -> Fraction f) (fraction_of_string "instance" f)
  | [ "bag"; f ] -> Result.map (fun f -> Bagging f) (fraction_of_string "bagging" f)
  | [ "strat"; f ] ->
    Result.map
      (fun fraction -> Stratified { fraction; min_per_class = 50 })
      (fraction_of_string "stratified" f)
  | [ "strat"; f; m ] -> (
    match (fraction_of_string "stratified" f, int_of_string_opt m) with
    | Ok fraction, Some min_per_class when min_per_class >= 0 ->
      Ok (Stratified { fraction; min_per_class })
    | (Error _ as e), _ -> e
    | Ok _, _ -> Error (Printf.sprintf "stratified floor must be a non-negative integer, got %S" m))
  | _ ->
    Error
      (Printf.sprintf
         "unknown instance strategy %S (want none, FRAC, bag:FRAC, strat:FRAC or strat:FRAC:MIN)"
         s)

let features_of_string s =
  match String.split_on_char ':' (String.trim s) with
  | [ "none" ] -> Ok All_features
  | [ "sqrt" ] -> Ok Sqrt_features
  | [ f ] -> Result.map (fun f -> Fraction_features f) (fraction_of_string "feature" f)
  | _ ->
    Error (Printf.sprintf "unknown feature strategy %S (want none, sqrt or FRAC)" s)

let instances_to_string = function
  | All_instances -> "none"
  | Fraction f -> Printf.sprintf "%g" f
  | Bagging f -> Printf.sprintf "bag:%g" f
  | Stratified { fraction; min_per_class } ->
    Printf.sprintf "strat:%g:%d" fraction min_per_class

let features_to_string = function
  | All_features -> "none"
  | Sqrt_features -> "sqrt"
  | Fraction_features f -> Printf.sprintf "%g" f
