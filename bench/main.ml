(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (ids t1..t6, f1, s4a..s4d, a1) and runs Bechamel timing
   micro-benchmarks (id: timing).

   Usage:
     dune exec bench/main.exe                 -- run everything at scale 0.2
     dune exec bench/main.exe -- --list
     dune exec bench/main.exe -- --only t1 --scale 0.05
     dune exec bench/main.exe -- --only timing --json BENCH_grower.json *)

let default_scale = 0.2

(* Every timing benchmark carries its own base row count, measured at
   the default scale: [rows ~scale base] is exactly [base] when [scale]
   is the default 0.2 and shrinks or grows proportionally from there
   (with a floor so a tiny --scale still measures something). The name
   keeps its base-size suffix at every scale — "pnrule-train-1m" stays
   a million-row benchmark by default instead of silently becoming a
   200k one — so re-runs merge into the same BENCH_grower.json entries,
   and the per-entry "scale" field records what each number was
   actually measured at. *)
let rows ~scale base =
  max 1_000 (int_of_float (float_of_int base *. (scale /. default_scale)))

(* ------------------------------------------------------------------ *)
(* Bechamel timing benchmarks                                           *)
(* ------------------------------------------------------------------ *)

(* Where --json writes the timing estimates (None = stdout only). *)
let json_file : string option ref = ref None

(* Raw token following ["key":] in a JSON-ish line — the hand-rolled
   counterpart of the writer below. Only bare numbers match; quoted
   strings deliberately don't. *)
let find_sub s pat =
  let n = String.length s and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = pat then Some i
    else go (i + 1)
  in
  go 0

let field_token line key =
  match find_sub line (Printf.sprintf "\"%s\":" key) with
  | None -> None
  | Some i ->
    let n = String.length line in
    let start = ref (i + String.length key + 3) in
    while !start < n && line.[!start] = ' ' do
      incr start
    done;
    let stop = ref !start in
    while
      !stop < n
      &&
      match line.[!stop] with
      | '0' .. '9' | 'a' .. 'z' | '.' | '+' | '-' -> true
      | _ -> false
    do
      incr stop
    done;
    if !stop > !start then Some (String.sub line !start (!stop - !start))
    else None

(* Parse a snapshot previously written by [write_json] back into
   (name, (ns, domains, scale)) entries with raw value strings. V1
   snapshots carried scale/domains only at file level; entries missing
   the per-entry fields inherit the file-level values seen above them,
   so merging into the v2 schema keeps the conditions each number was
   measured under. Anything foreign is ignored. *)
let read_snapshot path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let file_scale = ref "null" in
    let file_domains = ref "null" in
    let entries = ref [] in
    (try
       while true do
         let line = input_line ic in
         match
           Scanf.sscanf line " {%S: %S, %S: %[0-9a-z.+-]"
             (fun k1 name k2 value ->
               if k1 = "name" && k2 = "ns_per_run" && value <> "" then
                 Some (name, value)
               else None)
         with
         | Some (name, value) ->
           let domains =
             Option.value (field_token line "domains") ~default:!file_domains
           in
           let sc =
             Option.value (field_token line "scale") ~default:!file_scale
           in
           entries := (name, (value, domains, sc)) :: !entries
         | None -> ()
         | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) ->
           if find_sub line "\"name\"" = None then begin
             (match field_token line "scale" with
             | Some v -> file_scale := v
             | None -> ());
             match field_token line "domains" with
             | Some v -> file_domains := v
             | None -> ()
           end
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !entries
  end

(* Hand-rolled writer: the repo deliberately has no JSON dependency.
   Re-runs merge into an existing snapshot: a benchmark measured this
   run replaces its old line in place, benchmarks not re-measured keep
   theirs (including the domains/scale they were measured at), and
   genuinely new names append. Running one bench with
   [--only timing --json FILE] therefore never drops the others. *)
let write_json ~path ~scale estimates =
  let domains =
    string_of_int (Pn_util.Pool.size (Pn_util.Pool.get_default ()))
  in
  let scale_s = Printf.sprintf "%g" scale in
  let fresh =
    List.map
      (fun (name, estimate) ->
        let value =
          match estimate with
          | Some t when Float.is_finite t -> Printf.sprintf "%.1f" t
          | Some _ | None -> "null"
        in
        (name, (value, domains, scale_s)))
      estimates
  in
  let existing = read_snapshot path in
  let merged =
    List.map
      (fun (name, v) ->
        (name, Option.value (List.assoc_opt name fresh) ~default:v))
      existing
    @ List.filter (fun (name, _) -> not (List.mem_assoc name existing)) fresh
  in
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"schema\": \"pnrule-bench-v2\",\n";
  Printf.fprintf oc "  \"scale\": %s,\n" scale_s;
  Printf.fprintf oc "  \"domains\": %s,\n" domains;
  Printf.fprintf oc "  \"unit\": \"ns/run\",\n";
  Printf.fprintf oc "  \"benchmarks\": [\n";
  let last = List.length merged - 1 in
  List.iteri
    (fun k (name, (value, dom, sc)) ->
      Printf.fprintf oc
        "    {\"name\": %S, \"ns_per_run\": %s, \"domains\": %s, \"scale\": %s}%s\n"
        name value dom sc
        (if k = last then "" else ","))
    merged;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %d timing estimate(s) to %s (%d merged from previous runs)\n%!"
    (List.length fresh) path
    (List.length merged - List.length fresh)

let timing_benchmarks ~scale =
  let open Bechamel in
  let benchmark test =
    let quota = Time.second 2.0 in
    Benchmark.all
      (Benchmark.cfg ~limit:200 ~quota ~kde:(Some 10) ())
      Toolkit.Instance.[ monotonic_clock ]
      test
  in
  let analyze raw =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let run_tests tests =
    List.concat_map
      (fun test ->
        let results = analyze (benchmark test) in
        Hashtbl.fold
          (fun name ols acc ->
            let estimate =
              match Analyze.OLS.estimates ols with
              | Some [ t ] -> Some t
              | Some _ | None -> None
            in
            (match estimate with
            | Some t -> Printf.printf "%-32s %14.0f ns/run\n%!" name t
            | None -> Printf.printf "%-32s (no estimate)\n%!" name);
            (name, estimate) :: acc)
          results [])
      tests
  in
  let spec = Pn_synth.Numerical.nsyn 3 in
  let ds = Pn_synth.Numerical.generate spec ~seed:11 ~n:(rows ~scale 20_000) in
  let target = Pn_synth.Numerical.target_class in
  let pn_model = Pnrule.Learner.train ds ~target in
  let bc_view = Pn_data.View.all ds in
  let bc_ctx =
    let pos, neg = Pn_data.View.binary_weights bc_view ~target in
    { Pn_metrics.Rule_metric.pos_total = pos; neg_total = neg }
  in
  Printf.printf "\n== Timing (Bechamel, monotonic clock) ==\n%!";
  (* Batch 1: everything that only needs the 20k training setup. The
     heavier serving datasets of batch 2 are deliberately not allocated
     yet: tens of MB of extra live heap makes every major GC slice
     dearer and was observed to inflate the allocation-heavy training
     measurements ~2x, which would break comparability with earlier
     snapshots of the same benchmarks. *)
  let batch1 =
    run_tests
      [
        Test.make ~name:"pnrule-train-20k"
          (Staged.stage (fun () -> ignore (Pnrule.Learner.train ds ~target)));
        Test.make ~name:"ripper-train-20k"
          (Staged.stage (fun () ->
               let params = { Pn_ripper.Params.default with optimization_passes = 0 } in
               ignore (Pn_ripper.Learner.train ~params ds ~target)));
        Test.make ~name:"c45-tree-train-20k"
          (Staged.stage (fun () -> ignore (Pn_c45.Tree.train ds)));
        Test.make ~name:"pnrule-score-20k"
          (Staged.stage (fun () -> ignore (Pnrule.Model.predict_all pn_model ds)));
        Test.make ~name:"covered-20k"
          (Staged.stage (fun () ->
               ignore (Pn_rules.Rule_list.covered ds pn_model.Pnrule.Model.p_rules)));
        (* The rule-growth hot path in isolation: one full candidate
           search over every attribute of the 20k-record view. *)
        Test.make ~name:"best-condition-20k"
          (Staged.stage (fun () ->
               ignore
                 (Pn_induct.Grower.best_condition
                    ~metric:Pn_metrics.Rule_metric.Z_number ~ctx:bc_ctx ~target
                    bc_view)));
        (* The fault registry's disarmed fast path: 1000 cap passes per
           run, so ns/run ÷ 1000 is the per-pass tax the permanently
           embedded fault points add to production IO loops. It should
           measure as a handful of ns — one atomic load and a branch. *)
        Test.make ~name:"fault-overhead-1k"
          (Staged.stage (fun () ->
               for _ = 1 to 1000 do
                 ignore (Pn_util.Fault.cap "bench.probe" 4096)
               done));
        (* The canary gate of a staged rollout: build a schema-exact
           synthetic batch and force the compile + score path. This is
           the latency a POST /admin/rollout pays before flipping (on
           top of loading the file), so it bounds how fast generations
           can be cycled. *)
        Test.make ~name:"rollout-warm"
          (Staged.stage (fun () ->
               Pnrule.Registry.warm (Pnrule.Saved.Single pn_model)));
        (* The drift monitor's serving-path tax over 10k rows: one
           [observe] of a pre-scored batch into the per-domain slot plus
           one [check] (window close + per-rule scoring). The batch is
           scored outside the measurement — serving already pays that —
           so this is purely what --adapt adds per 10k rows. Budget:
           <= 2% of serve-hot-loop-10k. *)
        (let n10k = rows ~scale 10_000 in
         let sm = Pnrule.Saved.Single pn_model in
         let ds10k =
           Pn_data.Dataset.subset ds (Array.init n10k (fun i -> i))
         in
         let batch = Pnrule.Saved.eval_batch sm ds10k in
         let actuals =
           Array.init n10k (fun i -> Pn_data.Dataset.label ds10k i)
         in
         let exp = Pn_adapt.Expectations.derive sm ds in
         let monitor =
           Pn_adapt.Drift.create
             ~config:
               {
                 Pn_adapt.Drift.default_config with
                 (* An unreachable threshold: detection resets state and
                    would make runs non-uniform. *)
                 threshold = infinity;
               }
             ~slots:1 ()
         in
         Pn_adapt.Drift.set_model monitor
           ~n_rules:(Pnrule.Saved.n_monitored sm)
           ~target (Some exp);
         Test.make ~name:"drift-check-overhead"
           (Staged.stage (fun () ->
                Pn_adapt.Drift.observe monitor ~slot:0 ~n:n10k ~batch ~actuals;
                ignore (Pn_adapt.Drift.check monitor))));
      ]
  in
  (* Batch 2: serving-path benchmarks over their own, larger datasets. *)
  let ds200 = Pn_synth.Numerical.generate spec ~seed:12 ~n:(rows ~scale 200_000) in
  let kdd_test = Pn_synth.Kddcup.test ~seed:8 ~n:(rows ~scale 20_000) in
  let mc_model =
    Pnrule.Multiclass.train (Pn_synth.Kddcup.train ~seed:7 ~n:(rows ~scale 20_000))
  in
  (* The streaming benchmarks read a real file, so the IO cost (refills,
     syscalls) is part of the measurement by design. *)
  let csv200 = Filename.temp_file "pnrule_bench_" ".csv" in
  Pn_data.Csv_io.save ds200 csv200;
  let pnc200 = Filename.temp_file "pnrule_bench_" ".pnc" in
  Pn_data.Columnar.save ds200 pnc200;
  let batch2 =
    run_tests
      [
        (* Serving-path scale test: the 20k-trained model scores a fresh
           200k draw. The fresh dataset has no sort cache, so this also
           exercises the compiled engine's direct-comparison sweeps. *)
        Test.make ~name:"pnrule-score-200k"
          (Staged.stage (fun () -> ignore (Pnrule.Model.predict_all pn_model ds200)));
        (* One-vs-rest ensemble scoring: all five KDD class models fused
           into a single compiled program over the shifted test draw. *)
        Test.make ~name:"multiclass-score-20k"
          (Staged.stage (fun () ->
               ignore (Pnrule.Multiclass.predict_all mc_model kdd_test)));
        (* Streaming loader: two full decode passes over a 200k-row file. *)
        Test.make ~name:"ingest-200k"
          (Staged.stage (fun () -> ignore (Pn_data.Csv_io.load csv200)));
        (* Binary columnar loader over the same 200k rows: block reads,
           CRC verification and typed decode, but no text parsing.
           Compare against ingest-200k for the format's decode win. *)
        Test.make ~name:"ingest-columnar-200k"
          (Staged.stage (fun () -> ignore (Pn_data.Columnar.load pnc200)));
        (* The whole serving pipeline: stream the file in, score it in
           8k-row chunks through the compiled engine, stream predictions
           out. Compare against pnrule-score-200k for the decode+IO tax. *)
        Test.make ~name:"predict-e2e-200k"
          (Staged.stage (fun () ->
               let null = open_out "/dev/null" in
               Fun.protect
                 ~finally:(fun () -> close_out null)
                 (fun () ->
                   ignore
                     (Pnrule.Serve.predict_csv ~model:(Pnrule.Saved.Single pn_model) ~input:csv200
                        ~output:null ()))));
        (* Same pipeline over the columnar file: row groups decode
           straight into the scorer's buffers, so this should sit within
           a small factor of pnrule-score-200k — the end-to-end payoff
           the format exists for. *)
        Test.make ~name:"predict-e2e-columnar-200k"
          (Staged.stage (fun () ->
               let null = open_out "/dev/null" in
               Fun.protect
                 ~finally:(fun () -> close_out null)
                 (fun () ->
                   ignore
                     (Pnrule.Serve.predict_pnc ~model:(Pnrule.Saved.Single pn_model) ~input:pnc200
                        ~output:null ()))));
      ]
  in
  Sys.remove csv200;
  Sys.remove pnc200;
  (* Batch 3: the daemon's hot serving loop. One keep-alive connection
     POSTs a 10k-row body per run and fully reads the chunked response,
     so the measurement covers HTTP framing, the streaming decode/score
     core and both directions of socket IO — the marginal cost of one
     online request once the connection is warm. *)
  let ds10 = Pn_synth.Numerical.generate spec ~seed:13 ~n:(rows ~scale 10_000) in
  let csv10 = Filename.temp_file "pnrule_bench_" ".csv" in
  Pn_data.Csv_io.save ds10 csv10;
  let body = In_channel.with_open_bin csv10 In_channel.input_all in
  Sys.remove csv10;
  let server =
    Pn_server.Server.start
      ~config:{ Pn_server.Server.default_config with idle_timeout = 60.0 }
      ~source:(Pn_server.Handler.Loader (fun () -> Pnrule.Saved.Single pn_model))
      ()
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd
    (Unix.ADDR_INET (Unix.inet_addr_loopback, Pn_server.Server.port server));
  let request =
    Printf.sprintf
      "POST /predict HTTP/1.1\r\nhost: bench\r\ncontent-length: %d\r\n\r\n%s"
      (String.length body) body
  in
  let rbuf = Bytes.create 65536 in
  let rpos = ref 0 and rlen = ref 0 in
  let refill () =
    let n = Unix.read fd rbuf 0 (Bytes.length rbuf) in
    if n = 0 then failwith "serve bench: connection closed";
    rpos := 0;
    rlen := n
  in
  let byte () =
    if !rpos >= !rlen then refill ();
    let c = Bytes.get rbuf !rpos in
    incr rpos;
    c
  in
  let line () =
    let b = Buffer.create 32 in
    let rec go () =
      match byte () with
      | '\n' -> ()
      | '\r' -> go ()
      | c ->
        Buffer.add_char b c;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let one_request () =
    let b = Bytes.unsafe_of_string request in
    let n = Bytes.length b in
    let off = ref 0 in
    while !off < n do
      off := !off + Unix.write fd b !off (n - !off)
    done;
    let status = line () in
    if String.length status < 12 || String.sub status 9 3 <> "200" then
      failwith ("serve bench: " ^ status);
    (* Small responses arrive with content-length framing (the server
       only switches to chunked past its buffering threshold), so the
       reader must handle both. *)
    let chunked = ref false and content_length = ref (-1) in
    let header_prefix h p =
      String.length h >= String.length p
      && String.lowercase_ascii (String.sub h 0 (String.length p)) = p
    in
    let rec headers () =
      let h = line () in
      if h <> "" then begin
        if header_prefix h "transfer-encoding:" then chunked := true
        else if header_prefix h "content-length:" then
          content_length :=
            int_of_string
              (String.trim (String.sub h 15 (String.length h - 15)));
        headers ()
      end
    in
    headers ();
    if !chunked then begin
      let rec chunks () =
        let size = int_of_string ("0x" ^ line ()) in
        if size > 0 then begin
          for _ = 1 to size do
            ignore (byte ())
          done;
          ignore (line ());
          chunks ()
        end
        else ignore (line ())
      in
      chunks ()
    end
    else begin
      if !content_length < 0 then failwith "serve bench: no framing header";
      for _ = 1 to !content_length do
        ignore (byte ())
      done
    end
  in
  let batch3 =
    run_tests
      [ Test.make ~name:"serve-hot-loop-10k" (Staged.stage one_request) ]
  in
  Unix.close fd;
  Pn_server.Server.stop server;
  (* Batch 4: million-row training, the workload the sampling hooks
     exist for. One wall-clocked run each instead of Bechamel —
     repeated-run protocols would cost many minutes per estimate at
     this size, and the effect under test (a 5x+ ratio between the
     sampled and unsampled paths) dwarfs single-run noise. The sort
     cache is prewarmed across all columns first so neither variant
     pays the one-time argsort inside its measurement. *)
  let n1m = rows ~scale 1_000_000 in
  Printf.printf "\n== Million-row training (wall clock, %d rows) ==\n%!" n1m;
  let ds1m = Pn_synth.Numerical.generate spec ~seed:14 ~n:n1m in
  for col = 0 to Pn_data.Dataset.n_attrs ds1m - 1 do
    match ds1m.Pn_data.Dataset.attrs.(col).Pn_data.Attribute.kind with
    | Pn_data.Attribute.Numeric -> ignore (Pn_data.Dataset.sorted_order ds1m ~col)
    | Pn_data.Attribute.Categorical _ -> ()
  done;
  let wall name f =
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    let ns = (Unix.gettimeofday () -. t0) *. 1e9 in
    Printf.printf "%-32s %14.0f ns/run\n%!" name ns;
    (name, Some ns)
  in
  let sampled =
    {
      Pn_induct.Sampling.instances =
        Pn_induct.Sampling.Stratified { fraction = 0.1; min_per_class = 50 };
      features = Pn_induct.Sampling.Sqrt_features;
      seed = 7;
    }
  in
  let b_sampled =
    wall "pnrule-train-1m" (fun () ->
        Pnrule.Learner.train ~sampling:sampled ds1m ~target)
  in
  let b_full =
    wall "pnrule-train-1m-full" (fun () -> Pnrule.Learner.train ds1m ~target)
  in
  let b_boosted =
    wall "boosted-train-1m" (fun () ->
        Pnrule.Ensemble.train ~sampling:sampled ds1m ~target)
  in
  let batch4 = [ b_sampled; b_full; b_boosted ] in
  (match batch4 with
  | [ (_, Some t_sampled); (_, Some t_full); _ ] ->
    Printf.printf "sampled vs full training speedup: %.1fx\n%!" (t_full /. t_sampled)
  | _ -> ());
  (* Batch 5: the sharded tier. The router supervises N real [pnrule
     serve] processes and proxies over them; concurrent keep-alive
     clients push the same 10k-row body through [POST /predict].
     Wall-clocked like batch 4 — each measurement spawns and drains a
     whole process fleet, so Bechamel's repeated-run protocol would
     multiply minutes of fixture cost for noise that the per-request
     average over [clients * reqs] requests already absorbs. Compare
     serve-sharded-10k-1 against serve-hot-loop-10k for the proxy hop
     tax, and the 2/4-backend variants against 1 for the scale-out win
     (which needs free cores: on a single-core host the extra backends
     only add scheduling overhead). *)
  let batch5 =
    let cli =
      Filename.concat
        (Filename.dirname Sys.executable_name)
        "../bin/pnrule_cli.exe"
    in
    let variants = [ 1; 2; 4 ] in
    let bench_name n = Printf.sprintf "serve-sharded-10k-%d" n in
    if not (Sys.file_exists cli) then begin
      Printf.printf
        "\n== Sharded serving (skipped: %s not built; run dune build) ==\n%!"
        cli;
      List.map (fun n -> (bench_name n, None)) variants
    end
    else begin
      Printf.printf "\n== Sharded serving (wall clock, 10k rows/request) ==\n%!";
      let dir = Filename.temp_file "pnrule_bench_reg" "" in
      Sys.remove dir;
      Unix.mkdir dir 0o700;
      let reg = Pnrule.Registry.open_dir dir in
      ignore (Pnrule.Registry.publish reg (Pnrule.Saved.Single pn_model));
      let bench_backends n =
        let name = bench_name n in
        let config =
          {
            Pn_shard.Router.default_config with
            backends = n;
            domains = 2;
            backend_argv =
              (fun ~index:_ ~port ->
                [|
                  cli;
                  "serve";
                  "--registry";
                  dir;
                  "--host";
                  "127.0.0.1";
                  "--port";
                  string_of_int port;
                  "--domains";
                  "1";
                |]);
          }
        in
        let t = Pn_shard.Router.start ~config () in
        let deadline = Unix.gettimeofday () +. 60.0 in
        while
          Pn_shard.Router.healthy_count t < n
          && Unix.gettimeofday () < deadline
        do
          Unix.sleepf 0.05
        done;
        if Pn_shard.Router.healthy_count t < n then begin
          Pn_shard.Router.stop t;
          failwith "sharded bench: fleet failed to become healthy"
        end;
        let port = Pn_shard.Router.port t in
        let clients = 4 and reqs = 6 in
        let run_client warm =
          let c =
            Pn_server.Http.connect ~host:"127.0.0.1" ~port ~timeout:60.0 ()
          in
          Fun.protect
            ~finally:(fun () -> Pn_server.Http.close c)
            (fun () ->
              for _ = 1 to if warm then 1 else reqs do
                Pn_server.Http.send_request c ~meth:"POST" ~target:"/predict"
                  ~body ();
                let r = Pn_server.Http.read_response c in
                if r.Pn_server.Http.status <> 200 then
                  failwith
                    (Printf.sprintf "sharded bench: HTTP %d"
                       r.Pn_server.Http.status)
              done)
        in
        (* One request per shard first so every backend has faulted in
           its model pages before the clock starts. *)
        for _ = 1 to n do
          run_client true
        done;
        let t0 = Unix.gettimeofday () in
        List.init clients (fun _ -> Domain.spawn (fun () -> run_client false))
        |> List.iter Domain.join;
        let ns =
          (Unix.gettimeofday () -. t0)
          *. 1e9
          /. float_of_int (clients * reqs)
        in
        Pn_shard.Router.stop t;
        Printf.printf "%-32s %14.0f ns/request (%d backends)\n%!" name ns n;
        (name, Some ns)
      in
      let results = List.map bench_backends variants in
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      (try Unix.rmdir dir with Unix.Unix_error _ -> ());
      (match (List.assoc_opt "serve-hot-loop-10k" batch3, results) with
      | Some (Some hot), (_, Some s1) :: (_, Some s2) :: _ ->
        Printf.printf
          "proxy hop tax (sharded-1 vs hot-loop): %.2fx; 2-backend speedup \
           vs sharded-1: %.2fx (meaningful only with >1 core)\n%!"
          (s1 /. hot) (s1 /. s2)
      | _ -> ());
      results
    end
  in
  let estimates = batch1 @ batch2 @ batch3 @ batch4 @ batch5 in
  match !json_file with
  | Some path -> write_json ~path ~scale estimates
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let registry =
  Pn_harness.Tables.all
  @ [ ("timing", "Bechamel timing micro-benchmarks", timing_benchmarks) ]

let () =
  let only = ref [] in
  let scale = ref default_scale in
  let list_only = ref false in
  let verbose = ref false in
  let spec =
    [
      ( "--only",
        Arg.String (fun s -> only := s :: !only),
        "ID run only this benchmark (repeatable)" );
      ("--scale", Arg.Set_float scale, "S dataset scale relative to the paper (default 0.2)");
      ( "--json",
        Arg.String (fun s -> json_file := Some s),
        "FILE write the Bechamel timing estimates to FILE as JSON (timing id only)" );
      ("--list", Arg.Set list_only, " list benchmark ids");
      ("-v", Arg.Set verbose, " verbose (method-level progress on stderr)");
    ]
  in
  Arg.parse spec (fun s -> only := s :: !only) "bench/main.exe [--only ID] [--scale S]";
  (* Fail fast on an unwritable --json target instead of discovering it
     after the timing quota has been spent. Append mode: probing must
     not truncate a snapshot the writer will later merge into. *)
  (match !json_file with
  | Some path -> (
    try close_out (open_out_gen [ Open_append; Open_creat ] 0o644 path)
    with Sys_error msg ->
      Printf.eprintf "cannot write --json file: %s\n" msg;
      exit 1)
  | None -> ());
  if !verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info)
  end;
  if !list_only then
    List.iter (fun (id, desc, _) -> Printf.printf "%-8s %s\n" id desc) registry
  else begin
    let selected =
      match !only with
      | [] -> registry
      | ids -> List.filter (fun (id, _, _) -> List.mem id ids) registry
    in
    if selected = [] then begin
      prerr_endline "no matching benchmark id; use --list";
      exit 1
    end;
    Printf.printf "running %d benchmark(s) at scale %.3f\n%!" (List.length selected) !scale;
    List.iter
      (fun (id, desc, run) ->
        Printf.printf "\n#### [%s] %s\n%!" id desc;
        let t0 = Unix.gettimeofday () in
        run ~scale:!scale;
        Printf.printf "#### [%s] done in %.1fs\n%!" id (Unix.gettimeofday () -. t0))
      selected
  end
