(* Aggregated test runner: `dune runtest` executes every suite. *)

let () =
  Alcotest.run "pnrule-repro"
    [
      ("util", Test_util.suite);
      ("data", Test_data.suite);
      ("stream", Test_stream.suite);
      ("metrics", Test_metrics.suite);
      ("rules", Test_rules.suite);
      ("compiled", Test_compiled.suite);
      ("induct", Test_induct.suite);
      ("pnrule", Test_pnrule.suite);
      ("sampling", Test_sampling.suite);
      ("ensemble", Test_ensemble.suite);
      ("serialize", Test_serialize.suite);
      ("extensions", Test_extensions.suite);
      ("ripper", Test_ripper.suite);
      ("c45", Test_c45.suite);
      ("synth", Test_synth.suite);
      ("harness", Test_harness.suite);
      ("integration", Test_integration.suite);
      ("server", Test_server.suite);
      ("registry", Test_registry.suite);
      ("adapt", Test_adapt.suite);
      ("fault", Test_fault.suite);
      ("columnar", Test_columnar.suite);
      ("shard", Test_shard.suite);
    ]
