(* Tests for the streaming CSV/line decoder (Pn_data.Stream). *)

module S = Pn_data.Stream

(* Collect every row of a CSV source as (line, result) pairs. *)
let rows_of src =
  List.rev
    (S.fold_csv src ~init:[] ~f:(fun acc ~line result -> (line, result) :: acc))

let rows s = rows_of (S.of_string s)

let lines s =
  List.rev
    (S.fold_lines (S.of_string s) ~init:[] ~f:(fun acc ~line text ->
         (line, text) :: acc))

let ok cells = Ok (Array.of_list cells)

(* Any Error payload compares equal: the messages are for humans and the
   tests should not freeze their wording. *)
let row_result =
  Alcotest.testable
    (fun ppf -> function
      | Ok cells ->
        Format.fprintf ppf "Ok [%s]" (String.concat ";" (Array.to_list cells))
      | Error e -> Format.fprintf ppf "Error %S" e)
    (fun a b ->
      match (a, b) with
      | Ok x, Ok y -> x = y
      | Error _, Error _ -> true
      | _ -> false)

let check_rows msg expected s =
  Alcotest.(check (list (pair int row_result))) msg expected (rows s)

let test_basic () =
  check_rows "two rows" [ (1, ok [ "a"; "b" ]); (2, ok [ "1"; "2" ]) ] "a,b\n1,2\n";
  check_rows "no trailing newline" [ (1, ok [ "a"; "b" ]) ] "a,b";
  check_rows "empty fields kept" [ (1, ok [ ""; ""; "" ]) ] ",,\n";
  check_rows "empty input" [] "";
  check_rows "single column" [ (1, ok [ "x" ]); (2, ok [ "y" ]) ] "x\ny\n"

let test_crlf () =
  check_rows "CRLF parses like LF"
    [ (1, ok [ "a"; "b" ]); (2, ok [ "1"; "2" ]) ]
    "a,b\r\n1,2\r\n";
  check_rows "CR at EOF stripped" [ (1, ok [ "a"; "b" ]) ] "a,b\r";
  (* A CR not followed by a row boundary is literal content. *)
  check_rows "lone CR mid-field is literal" [ (1, ok [ "a\rb" ]) ] "a\rb\n";
  check_rows "CR inside quotes is literal" [ (1, ok [ "a\r\nb" ]) ] "\"a\r\nb\"\n"

let test_quoting () =
  check_rows "comma in quotes" [ (1, ok [ "a,b"; "c" ]) ] "\"a,b\",c\n";
  check_rows "escaped quote" [ (1, ok [ "say \"hi\"" ]) ] "\"say \"\"hi\"\"\"\n";
  check_rows "empty quoted field" [ (1, ok [ ""; "x" ]) ] "\"\",x\n";
  (* A quoted field spans physical lines; the next row's line number
     accounts for the newlines consumed inside the quotes. *)
  check_rows "newline inside quotes"
    [ (1, ok [ "a\nb"; "c" ]); (3, ok [ "d" ]) ]
    "\"a\nb\",c\nd\n"

let test_errors () =
  check_rows "bare quote mid-field is an error" [ (1, Error "_") ] "a\"b\n";
  check_rows "char after closing quote is an error" [ (1, Error "_") ] "\"a\"b\n";
  check_rows "unterminated quote is an error" [ (1, Error "_") ] "\"abc";
  (* After an error the machine resynchronizes at the next newline. *)
  check_rows "resync continues decoding"
    [ (1, Error "_"); (2, ok [ "x"; "y" ]) ]
    "a\"b,z\nx,y\n";
  (* Resync across a quoted field's newline: the error row swallows
     everything up to the next physical newline. *)
  check_rows "quote error then clean row"
    [ (1, Error "_"); (2, ok [ "ok" ]) ]
    "\"a\"!\nok\n"

let test_blank_rows () =
  check_rows "blank lines dropped"
    [ (1, ok [ "a"; "b" ]); (3, ok [ "1"; "2" ]) ]
    "a,b\n\n1,2\n";
  check_rows "whitespace-only dropped" [ (2, ok [ "x" ]) ] "   \nx\n";
  (* A quoted empty field is a deliberate value, not a blank line. *)
  check_rows "quoted empty row kept" [ (1, ok [ "" ]) ] "\"\"\n"

(* Every buffer size must decode identically: boundaries may fall inside
   quotes, escapes, CRLF pairs and multi-byte rows. *)
let test_buffer_boundaries () =
  let text = "a,b,c\r\n\"x,\"\"y\"\",\nz\",2,3\n\n q\"q,1,2\nlast,\"\",\"ok\"\r\n" in
  let reference = rows text in
  for buf_size = 1 to 24 do
    let path = Filename.temp_file "pnrule_stream" ".csv" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Out_channel.with_open_bin path (fun oc -> output_string oc text);
        In_channel.with_open_bin path (fun ic ->
            let got = rows_of (S.of_channel ~buf_size ic) in
            Alcotest.(check (list (pair int row_result)))
              (Printf.sprintf "buf_size %d" buf_size)
              reference got))
  done

let test_fold_lines () =
  Alcotest.(check (list (pair int string)))
    "lines with CRLF and EOF"
    [ (1, "a"); (2, "b"); (3, ""); (4, "c") ]
    (lines "a\r\nb\n\nc");
  Alcotest.(check (list (pair int string))) "empty" [] (lines "");
  Alcotest.(check (list (pair int string))) "final newline" [ (1, "x") ] (lines "x\n")

let qcheck_props =
  (* Fields made only of safe characters round-trip through quoting at
     any buffer size; this hammers refill boundaries randomly. *)
  let field_gen =
    QCheck.Gen.(
      string_size ~gen:(oneofl [ 'a'; 'b'; ','; '"'; '\n'; '\r'; ' ' ]) (0 -- 6))
  in
  let quote s =
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  in
  [
    QCheck.Test.make ~count:300 ~name:"quoted fields round-trip at any buffer size"
      QCheck.(
        make
          Gen.(
            pair
              (list_size (1 -- 8) (list_size (1 -- 4) field_gen))
              (1 -- 16)))
      (fun (table, buf_size) ->
        (* Normalize: trailing CR of a field would merge with the row
           boundary only for unquoted fields; quoting protects it. *)
        let text =
          String.concat ""
            (List.map
               (fun row -> String.concat "," (List.map quote row) ^ "\n")
               table)
        in
        let path = Filename.temp_file "pnrule_stream_q" ".csv" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Out_channel.with_open_bin path (fun oc -> output_string oc text);
            In_channel.with_open_bin path (fun ic ->
                let got =
                  List.filter_map
                    (fun (_, r) -> Result.to_option r)
                    (rows_of (S.of_channel ~buf_size ic))
                in
                (* Rows whose every field is empty/whitespace-free quoted
                   content still survive: quoting marks them non-blank. *)
                got = List.map Array.of_list table)));
  ]

let suite =
  [
    Alcotest.test_case "basic rows" `Quick test_basic;
    Alcotest.test_case "crlf handling" `Quick test_crlf;
    Alcotest.test_case "quoting" `Quick test_quoting;
    Alcotest.test_case "row errors + resync" `Quick test_errors;
    Alcotest.test_case "blank rows" `Quick test_blank_rows;
    Alcotest.test_case "buffer boundaries" `Quick test_buffer_boundaries;
    Alcotest.test_case "fold_lines" `Quick test_fold_lines;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_props
