(* Integration tests: the paper's qualitative claims on scaled-down
   versions of its synthetic models. These are the end-to-end checks that
   the reproduction actually reproduces. *)

module D = Pn_data.Dataset
module E = Pn_harness.Experiment
module M = Pn_harness.Methods
module C = Pn_metrics.Confusion

(* A scaled-down nsyn3-style dataset large enough for the effects to be
   stable: ~0.75 % target so the per-peak counts stay healthy at n=40k. *)
let nsyn3_small ~seed ~n =
  let spec = { (Pn_synth.Numerical.nsyn 3) with Pn_synth.Numerical.target_fraction = 0.0075 } in
  Pn_synth.Numerical.generate spec ~seed ~n

let test_pnrule_beats_ripper_on_splintered_data () =
  (* The paper's central claim (Tables 1-2): on peaked rare-class data
     with multiple non-target subclasses, PNrule clearly beats RIPPER. *)
  let train = nsyn3_small ~seed:21 ~n:40_000 in
  let test = nsyn3_small ~seed:22 ~n:20_000 in
  let target = Pn_synth.Numerical.target_class in
  let pn =
    E.best_of (E.run_all (M.pnrule_grid ()) ~train ~test ~target)
  in
  let ripper = E.run (M.ripper ()) ~train ~test ~target in
  Alcotest.(check bool)
    (Printf.sprintf "PNrule F=%.3f > RIPPER F=%.3f" pn.E.f_measure ripper.E.f_measure)
    true
    (pn.E.f_measure > ripper.E.f_measure);
  Alcotest.(check bool)
    (Printf.sprintf "PNrule F=%.3f is strong" pn.E.f_measure)
    true (pn.E.f_measure > 0.8)

let test_stratified_trades_precision_for_recall () =
  (* Figure 1's "-we" effect: stratification pushes recall up and lets
     precision collapse. *)
  let train = nsyn3_small ~seed:23 ~n:40_000 in
  let test = nsyn3_small ~seed:24 ~n:20_000 in
  let target = Pn_synth.Numerical.target_class in
  let unit = E.run (M.ripper ()) ~train ~test ~target in
  let we = E.run (M.ripper ~stratified:true ()) ~train ~test ~target in
  Alcotest.(check bool)
    (Printf.sprintf "recall-we %.3f >= recall %.3f - 0.05" we.E.recall unit.E.recall)
    true
    (we.E.recall >= unit.E.recall -. 0.05);
  Alcotest.(check bool)
    (Printf.sprintf "precision-we %.3f <= precision %.3f + 0.05" we.E.precision
       unit.E.precision)
    true
    (we.E.precision <= unit.E.precision +. 0.05)

let test_gap_narrows_as_class_grows () =
  (* Table 5's trend: PNrule's edge over RIPPER shrinks (or disappears)
     when the target class stops being rare. *)
  (* A 1 % target keeps per-subclass counts healthy at this size; the
     rare-vs-common contrast comes from the subsampling fractions. *)
  let spec = { Pn_synth.General.default with Pn_synth.General.target_fraction = 0.01 } in
  let target = Pn_synth.General.target_class in
  let train0 = Pn_synth.General.generate spec ~seed:31 ~n:80_000 in
  let test0 = Pn_synth.General.generate spec ~seed:32 ~n:40_000 in
  let gap frac =
    let train =
      Pn_harness.Sampling.subsample_non_target train0 ~target ~fraction:frac ~seed:33
    in
    let test =
      Pn_harness.Sampling.subsample_non_target test0 ~target ~fraction:frac ~seed:34
    in
    let pn = E.best_of (E.run_all (M.pnrule_grid ()) ~train ~test ~target) in
    let rip = E.run (M.ripper ()) ~train ~test ~target in
    pn.E.f_measure -. rip.E.f_measure
  in
  let rare_gap = gap 1.0 in
  let common_gap = gap 0.01 in
  Alcotest.(check bool)
    (Printf.sprintf "gap rare %.3f > gap common %.3f - 0.05" rare_gap common_gap)
    true
    (rare_gap > common_gap -. 0.05);
  Alcotest.(check bool) "PNrule ahead when rare" true (rare_gap > 0.0)

let test_kdd_pipeline_end_to_end () =
  (* Section 4 wiring: train on the simulator's training distribution,
     evaluate on the shifted test distribution, for both rare classes. *)
  let train = Pn_synth.Kddcup.train ~seed:41 ~n:40_000 in
  let test = Pn_synth.Kddcup.test ~seed:42 ~n:25_000 in
  List.iter
    (fun (name, target) ->
      let params =
        {
          Pnrule.Params.default with
          metric = Pn_metrics.Rule_metric.Info_gain;
          max_p_rule_length = Some 1;
          recall_floor = 0.95;
        }
      in
      let r = E.run (M.pnrule ~params ()) ~train ~test ~target in
      Alcotest.(check bool)
        (Printf.sprintf "%s: F=%.3f > 0" name r.E.f_measure)
        true (r.E.f_measure > 0.0);
      Alcotest.(check bool)
        (Printf.sprintf "%s: precision %.3f sane" name r.E.precision)
        true
        (r.E.precision > 0.1))
    [ ("probe", Pn_synth.Kddcup.probe); ("r2l", Pn_synth.Kddcup.r2l) ]

let test_p1_boosts_probe_like_classes () =
  (* Section 4's probe.P1 observation: very general P-rules + N-phase
     beat heavily refined P-rules when the test distribution shifts. *)
  let train = Pn_synth.Kddcup.train ~seed:43 ~n:40_000 in
  let test = Pn_synth.Kddcup.test ~seed:44 ~n:25_000 in
  let target = Pn_synth.Kddcup.probe in
  let f p1 =
    let params =
      {
        Pnrule.Params.default with
        metric = Pn_metrics.Rule_metric.Info_gain;
        max_p_rule_length = (if p1 then Some 1 else None);
      }
    in
    (E.run (M.pnrule ~params ()) ~train ~test ~target).E.f_measure
  in
  let with_p1 = f true and without = f false in
  (* We don't require a strict win (sampling noise), but P1 must stay
     competitive — within 0.1 — as the paper argues. *)
  Alcotest.(check bool)
    (Printf.sprintf "P1 %.3f vs unrestricted %.3f" with_p1 without)
    true
    (with_p1 >= without -. 0.1)

let test_ablation_components_matter () =
  let train = nsyn3_small ~seed:51 ~n:40_000 in
  let test = nsyn3_small ~seed:52 ~n:20_000 in
  let target = Pn_synth.Numerical.target_class in
  let f params = (E.run (M.pnrule ~params ()) ~train ~test ~target).E.f_measure in
  let full = f Pnrule.Params.default in
  let no_n = f { Pnrule.Params.default with enable_n_phase = false } in
  Alcotest.(check bool)
    (Printf.sprintf "N-phase matters: full %.3f > no-N %.3f" full no_n)
    true (full > no_n)

let test_streaming_predict_matches_in_memory () =
  (* The chunked serving pipeline must agree bit-for-bit with loading
     the same file whole and calling the engine once. *)
  let spec = Pn_synth.Numerical.nsyn 1 in
  let train = Pn_synth.Numerical.generate spec ~seed:61 ~n:10_000 in
  let test = Pn_synth.Numerical.generate spec ~seed:62 ~n:5_003 in
  let target = Pn_synth.Numerical.target_class in
  let model = Pnrule.Learner.train train ~target in
  let csv = Filename.temp_file "pnrule_serve" ".csv" in
  let out = Filename.temp_file "pnrule_serve" ".out" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove csv;
      Sys.remove out)
    (fun () ->
      Pn_data.Csv_io.save test csv;
      let report =
        Out_channel.with_open_bin out (fun oc ->
            (* A chunk size that does not divide the row count exercises
               the final partial flush. *)
            Pnrule.Serve.predict_csv ~chunk_size:512
              ~model:(Pnrule.Saved.Single model) ~input:csv
              ~output:oc ())
      in
      Alcotest.(check int) "all rows predicted" (D.n_records test)
        report.Pnrule.Serve.rows_out;
      Alcotest.(check int) "partial final chunk" 10 report.Pnrule.Serve.chunks;
      let expected = Pnrule.Model.predict_all model test in
      let lines = In_channel.with_open_bin out In_channel.input_lines in
      let target_name = model.Pnrule.Model.classes.(model.Pnrule.Model.target) in
      (match lines with
      | header :: rows ->
        Alcotest.(check string) "header" "prediction" header;
        List.iteri
          (fun i line ->
            if (line = target_name) <> expected.(i) then
              Alcotest.failf "row %d: %s vs %b" i line expected.(i))
          rows
      | [] -> Alcotest.fail "no output");
      (* The labeled feed produced metrics identical to Model.evaluate. *)
      match report.Pnrule.Serve.confusion with
      | None -> Alcotest.fail "expected confusion on labeled feed"
      | Some cm ->
        let reference = Pnrule.Model.evaluate model test in
        Alcotest.(check (float 1e-9))
          "recall" (C.recall reference) (C.recall cm);
        Alcotest.(check (float 1e-9))
          "precision" (C.precision reference) (C.precision cm))

let test_streaming_predict_skips_dirty_rows () =
  let spec = Pn_synth.Numerical.nsyn 1 in
  let train = Pn_synth.Numerical.generate spec ~seed:63 ~n:8_000 in
  let target = Pn_synth.Numerical.target_class in
  let model = Pnrule.Learner.train train ~target in
  let csv = Filename.temp_file "pnrule_dirty" ".csv" in
  let out = Filename.temp_file "pnrule_dirty" ".out" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove csv;
      Sys.remove out)
    (fun () ->
      (* Header from the model's schema, then clean rows interleaved with
         structurally bad ones. *)
      let names =
        Array.to_list (Array.map (fun (a : Pn_data.Attribute.t) -> a.name) model.Pnrule.Model.attrs)
      in
      Out_channel.with_open_bin csv (fun oc ->
          output_string oc (String.concat "," names ^ "\n");
          for i = 1 to 50 do
            let row = List.map (fun _ -> Printf.sprintf "%d" (i mod 7)) names in
            output_string oc (String.concat "," row ^ "\n");
            if i mod 10 = 0 then output_string oc "totally,wrong,arity\n";
            if i mod 25 = 0 then output_string oc "un\"quoted\n"
          done);
      let report =
        Out_channel.with_open_bin out (fun oc ->
            Pnrule.Serve.predict_csv ~policy:Pn_data.Ingest_report.Skip
              ~chunk_size:16 ~model:(Pnrule.Saved.Single model) ~input:csv
              ~output:oc ())
      in
      Alcotest.(check int) "clean rows out" 50 report.Pnrule.Serve.rows_out;
      Alcotest.(check int) "dirty rows skipped" 7
        report.Pnrule.Serve.ingest.Pn_data.Ingest_report.rows_skipped;
      (* Unlabeled feed: no confusion. *)
      Alcotest.(check bool) "no metrics" true
        (report.Pnrule.Serve.confusion = None);
      (* Strict on the same file fails at the first bad row. *)
      try
        Out_channel.with_open_bin out (fun oc ->
            ignore
              (Pnrule.Serve.predict_csv ~model:(Pnrule.Saved.Single model)
                 ~input:csv ~output:oc ()));
        Alcotest.fail "expected Serve.Error"
      with Pnrule.Serve.Error _ -> ())

let suite =
  [
    Alcotest.test_case "PNrule beats RIPPER on splintered data" `Slow
      test_pnrule_beats_ripper_on_splintered_data;
    Alcotest.test_case "streaming predict ≡ in-memory scoring" `Quick
      test_streaming_predict_matches_in_memory;
    Alcotest.test_case "streaming predict skips dirty rows" `Quick
      test_streaming_predict_skips_dirty_rows;
    Alcotest.test_case "stratification trades precision for recall" `Slow
      test_stratified_trades_precision_for_recall;
    Alcotest.test_case "gap narrows as target class grows" `Slow
      test_gap_narrows_as_class_grows;
    Alcotest.test_case "KDD pipeline end to end" `Slow test_kdd_pipeline_end_to_end;
    Alcotest.test_case "P1 competitive on probe-like classes" `Slow
      test_p1_boosts_probe_like_classes;
    Alcotest.test_case "ablation: N-phase matters" `Slow test_ablation_components_matter;
  ]
