(* Online adaptation (lib/adapt): expectations derivation and format-v4
   persistence, the deterministic sliding-window drift monitor, the
   retrain→publish→rollout loop with its failure discipline, and the
   full adaptation cycle against a live daemon. The synthetic drift is a
   signature split — a model trained on single-peak nsyn1-style data is
   monitored on a four-peaks-per-subclass stream — so every run drifts
   the same way from the same seeds. *)

module D = Pn_adapt.Drift
module Rt = Pn_adapt.Retrainer
module E = Pn_adapt.Expectations
module R = Pnrule.Registry
module Server = Pn_server.Server

let contains = Test_server.contains

let one_shot = Test_server.one_shot

let with_registry_dir f =
  let dir = Filename.temp_file "pnrule_adapt" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

(* Strong-signal variant of the paper's nsyn1 model: a fat target class
   and wide peaks make both the trained rules and their drifted firing
   rates unambiguous at small sample sizes. *)
let base_spec =
  let s = Pn_synth.Numerical.nsyn 1 in
  Pn_synth.Numerical.with_widths
    { s with Pn_synth.Numerical.target_fraction = 0.3 }
    ~tr:30.0 ~nr:30.0

(* The drifted world: same schema, same classes, but every subclass's
   signature splits into four disjoint peaks — the distribution the
   trained single-peak rules have never seen. *)
let drift_spec = { base_spec with Pn_synth.Numerical.nsptc = 4; nspntc = 4 }

let target = Pn_synth.Numerical.target_class

let fixture =
  lazy
    (let train = Pn_synth.Numerical.generate base_spec ~seed:401 ~n:4_000 in
     let sm = Pnrule.Saved.Single (Pnrule.Learner.train train ~target) in
     let exp = E.derive sm train in
     (train, sm, exp))

(* ------------------------------------------------------------------ *)
(* Expectations derivation and serialization format v4                  *)
(* ------------------------------------------------------------------ *)

let check_exp_eq name (a : E.t) (b : E.t) =
  Alcotest.(check (array (float 0.0))) (name ^ " rates") a.rates b.rates;
  Alcotest.(check (array (float 0.0)))
    (name ^ " precisions") a.precisions b.precisions;
  Alcotest.(check int) (name ^ " support") a.support b.support

let test_derive_and_v4_roundtrip () =
  let train, sm, exp = Lazy.force fixture in
  let nm = Pnrule.Saved.n_monitored sm in
  Alcotest.(check bool) "model has monitored rules" true (nm > 0);
  Alcotest.(check int) "rates cover the rules" nm (Array.length exp.rates);
  Alcotest.(check int)
    "precisions cover the rules" nm
    (Array.length exp.precisions);
  Alcotest.(check int)
    "support is the training size"
    (Pn_data.Dataset.n_records train)
    exp.support;
  Array.iter
    (fun r -> Alcotest.(check bool) "rate in [0,1]" true (r >= 0.0 && r <= 1.0))
    exp.rates;
  Array.iter
    (fun p ->
      Alcotest.(check bool) "precision in [0,1]" true (p >= 0.0 && p <= 1.0))
    exp.precisions;
  let total = Array.fold_left ( +. ) 0.0 exp.rates in
  Alcotest.(check bool)
    "first-match rates partition at most the whole stream" true
    (total > 0.0 && total <= 1.0 +. 1e-9);
  (* The empty dataset cannot be a baseline. *)
  (match
     E.derive sm
       (Pn_data.Dataset.subset train [||])
   with
  | _ -> Alcotest.fail "derive accepted an empty dataset"
  | exception Invalid_argument _ -> ());
  (* No expectations = the exact v2 writer bytes; Some = a v4 file. *)
  let v2 = Pnrule.Serialize.string_of_saved sm in
  Alcotest.(check string)
    "None leaves the v2 writer bytes unchanged" v2
    (Pnrule.Serialize.string_of_saved_ex sm None);
  let v4 = Pnrule.Serialize.string_of_saved_ex sm (Some exp) in
  Alcotest.(check bool)
    "v4 header" true
    (String.length v4 > 16 && String.sub v4 0 16 = "pnrule-model v4\n");
  let sm', exp' = Pnrule.Serialize.saved_of_string_ex v4 in
  (match exp' with
  | None -> Alcotest.fail "v4 round-trip lost the expectations"
  | Some e -> check_exp_eq "v4 round-trip" exp e);
  Alcotest.(check string)
    "v4 round-trip preserves the model body" v2
    (Pnrule.Serialize.string_of_saved sm');
  (* The plain reader accepts v4 too (verifies and drops the block). *)
  Alcotest.(check string)
    "saved_of_string accepts v4" v2
    (Pnrule.Serialize.string_of_saved (Pnrule.Serialize.saved_of_string v4));
  (* v1 (no footer) / v2 / v3 all load as (model, None). A v1 file is
     the v2 body with a v1 header and no checksum line. *)
  let as_v1 s =
    let i = String.rindex_from s (String.length s - 2) '\n' in
    "pnrule-model v1\n"
    ^ String.sub s 16 (i + 1 - 16)
  in
  let _, e1 = Pnrule.Serialize.saved_of_string_ex (as_v1 v2) in
  Alcotest.(check bool) "v1 loads with no expectations" true (e1 = None);
  let _, e2 = Pnrule.Serialize.saved_of_string_ex v2 in
  Alcotest.(check bool) "v2 loads with no expectations" true (e2 = None);
  let ens =
    Pnrule.Ensemble.train
      ~params:{ Pnrule.Ensemble.default_params with rounds = 5 }
      train ~target
  in
  let smb = Pnrule.Saved.Boosted ens in
  let v3 = Pnrule.Serialize.string_of_saved smb in
  let _, e3 = Pnrule.Serialize.saved_of_string_ex v3 in
  Alcotest.(check bool) "v3 loads with no expectations" true (e3 = None);
  Alcotest.(check string)
    "None leaves the v3 writer bytes unchanged" v3
    (Pnrule.Serialize.string_of_saved_ex smb None);
  (* Boosted v4 through the file API. *)
  let expb = E.derive smb train in
  Alcotest.(check int)
    "boosted expectations cover the members"
    (Pnrule.Saved.n_monitored smb)
    (Array.length expb.rates);
  let path = Filename.temp_file "pnrule_adapt" ".model" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Pnrule.Serialize.save_saved_ex smb (Some expb) path;
      let smb', expb' = Pnrule.Serialize.load_saved_ex path in
      (match expb' with
      | None -> Alcotest.fail "boosted v4 file lost the expectations"
      | Some e -> check_exp_eq "boosted v4 file" expb e);
      Alcotest.(check string)
        "boosted v4 file preserves the body" v3
        (Pnrule.Serialize.string_of_saved smb'));
  (* Mismatched arrays are a writer bug, not a silent file. *)
  (match
     Pnrule.Serialize.string_of_saved_ex sm
       (Some { exp with E.rates = Array.sub exp.rates 0 0 })
   with
  | _ -> Alcotest.fail "writer accepted mismatched expectations"
  | exception Invalid_argument _ -> ());
  (* A flipped byte inside the expectations block fails the checksum. *)
  let tampered = Bytes.of_string v4 in
  let pos = String.length v2 + 4 in
  Bytes.set tampered pos
    (if Bytes.get tampered pos = '0' then '1' else '0');
  match Pnrule.Serialize.saved_of_string_ex (Bytes.to_string tampered) with
  | _ -> Alcotest.fail "tampered v4 accepted"
  | exception Pnrule.Serialize.Corrupt _ -> ()

(* ------------------------------------------------------------------ *)
(* Drift monitor: window mechanics on a hand-fed stream                 *)
(* ------------------------------------------------------------------ *)

(* A synthetic scored chunk: per-row first-match rule indices. *)
let mk_batch fires =
  {
    Pnrule.Saved.preds = Array.map (fun k -> k >= 0) fires;
    scores_v = None;
    fires = Pnrule.Saved.First_match fires;
  }

(* [chunk n spec] builds [n] rows whose rule indices cycle through
   [spec] — e.g. [[| (0, 5); (-1, 5) |]] is rule 0 on half the rows. *)
let chunk spec =
  let fires =
    Array.concat
      (Array.to_list (Array.map (fun (k, c) -> Array.make c k) spec))
  in
  (Array.length fires, fires)

let no_labels n = Array.make n (-1)

let test_drift_window_mechanics () =
  let cfg =
    { D.window = 100; threshold = 1.5; delta = 0.05; min_labeled = 10; seed = 7 }
  in
  let m = D.create ~config:cfg ~slots:1 () in
  (* No model yet: the monitor idles. *)
  let n, f = chunk [| (0, 100) |] in
  D.observe m ~slot:0 ~n ~batch:(mk_batch f) ~actuals:(no_labels n);
  Alcotest.(check bool) "idle check" true (D.check m = None);
  Alcotest.(check bool) "idle snapshot" false (D.snapshot m).D.monitoring;
  D.set_model m ~n_rules:2 ~target:1
    (Some
       { E.rates = [| 0.5; 0.2 |]; precisions = [| 0.9; 0.8 |]; support = 1000 });
  Alcotest.(check bool) "monitoring now" true (D.snapshot m).D.monitoring;
  (* set_model must validate coverage. *)
  (match
     D.set_model m ~n_rules:3 ~target:1
       (Some { E.rates = [| 0.5 |]; precisions = [| 0.9 |]; support = 1 })
   with
  | _ -> Alcotest.fail "set_model accepted short expectations"
  | exception Invalid_argument _ ->
    D.set_model m ~n_rules:2 ~target:1
      (Some
         {
           E.rates = [| 0.5; 0.2 |];
           precisions = [| 0.9; 0.8 |];
           support = 1000;
         }));
  (* A conforming stream never detects: both windowed rates sit exactly
     on their expectations, so the PH scores stay at zero. *)
  let n, f = chunk [| (0, 50); (1, 20); (-1, 30) |] in
  for _ = 1 to 10 do
    D.observe m ~slot:0 ~n ~batch:(mk_batch f) ~actuals:(no_labels n);
    Alcotest.(check bool) "conforming window" true (D.check m = None)
  done;
  let s = D.snapshot m in
  Alcotest.(check int) "ten windows closed" 10 s.D.windows;
  Alcotest.(check int) "rows counted" 1000 s.D.rows;
  Alcotest.(check (float 1e-9)) "rule 0 PH at zero" 0.0 s.D.rules.(0).D.score;
  (* A short remainder does not close a window. *)
  D.observe m ~slot:0 ~n:40
    ~batch:(mk_batch (Array.make 40 0))
    ~actuals:(no_labels 40);
  Alcotest.(check bool) "partial window holds" true (D.check m = None);
  Alcotest.(check int) "still ten windows" 10 (D.snapshot m).D.windows;
  (* Sustained drift on rule 0 only (rule 1 stays on-expectation):
     divergence accumulates across windows and the detection names
     rule 0. The 40-row remainder joins the first drifted window — the
     span is everything since the last close, so rates stay exact. *)
  let n, f = chunk [| (0, 80); (1, 20) |] in
  let detection = ref None in
  let i = ref 0 in
  while !detection = None && !i < 30 do
    incr i;
    D.observe m ~slot:0 ~n ~batch:(mk_batch f) ~actuals:(no_labels n);
    detection := D.check m
  done;
  (match !detection with
  | None -> Alcotest.fail "sustained drift never detected"
  | Some d ->
    Alcotest.(check int) "attributed to the drifted rule" 0 d.D.rule;
    Alcotest.(check bool)
      "score crossed the threshold" true
      (d.D.score > cfg.D.threshold);
    Alcotest.(check bool)
      "took more than one window (accumulation, not a spike)" true (!i > 1));
  Alcotest.(check int) "one detection total" 1 (D.detections_total m);
  let s = D.snapshot m in
  Alcotest.(check int) "epoch detections" 1 s.D.detections;
  Alcotest.(check (float 1e-9))
    "scores reset after detection" 0.0 s.D.rules.(0).D.score;
  (* A model swap resets the epoch but not the monotonic counter. *)
  D.set_model m ~n_rules:2 ~target:1
    (Some
       { E.rates = [| 0.8; 0.2 |]; precisions = [| 0.9; 0.8 |]; support = 1000 });
  let s = D.snapshot m in
  Alcotest.(check int) "fresh epoch rows" 0 s.D.rows;
  Alcotest.(check int) "fresh epoch detections" 0 s.D.detections;
  Alcotest.(check int) "total detections survive" 1 (D.detections_total m)

(* The false-positive channel: firing rates on-expectation, but labeled
   rows say the rule now fires on the wrong class. *)
let test_drift_false_positive_channel () =
  let cfg =
    { D.window = 100; threshold = 1.0; delta = 0.05; min_labeled = 50; seed = 7 }
  in
  let m = D.create ~config:cfg ~slots:1 () in
  D.set_model m ~n_rules:1 ~target:1
    (Some { E.rates = [| 0.5 |]; precisions = [| 0.95 |]; support = 1000 });
  (* Every row labeled; the rule fires at its expected rate but only
     half its firings hit the target class (expected: 95%). *)
  let n, f = chunk [| (0, 25); (0, 25); (-1, 50) |] in
  let actuals = Array.init n (fun i -> if i < 25 then 1 else 0) in
  let detection = ref None in
  let i = ref 0 in
  while !detection = None && !i < 30 do
    incr i;
    D.observe m ~slot:0 ~n ~batch:(mk_batch f) ~actuals;
    detection := D.check m
  done;
  (match !detection with
  | None -> Alcotest.fail "rising false-positive rate never detected"
  | Some d -> Alcotest.(check int) "attributed to the rule" 0 d.D.rule);
  let s = D.snapshot m in
  Alcotest.(check int) "labeled rows counted" (!i * n) s.D.labeled;
  Alcotest.(check bool)
    "observed fp rate surfaced" true
    (s.D.rules.(0).D.observed_fp_rate > 0.2)

(* Determinism: the same stream through any slot count and assignment
   produces the identical detection trace. *)
let qcheck_determinism =
  let run ~slots stream =
    let cfg =
      { D.window = 60; threshold = 0.8; delta = 0.05; min_labeled = 20; seed = 42 }
    in
    let m = D.create ~config:cfg ~slots () in
    D.set_model m ~n_rules:3 ~target:1
      (Some
         {
           E.rates = [| 0.4; 0.3; 0.1 |];
           precisions = [| 0.9; 0.8; 0.7 |];
           support = 500;
         });
    List.concat
      (List.mapi
         (fun i (fires, actuals) ->
           let fires = Array.of_list fires in
           D.observe m
             ~slot:(i mod slots)
             ~n:(Array.length fires)
             ~batch:(mk_batch fires)
             ~actuals:(Array.of_list actuals);
           match D.check m with
           | Some d -> [ (i, d.D.rule, d.D.window) ]
           | None -> [])
         stream)
  in
  let chunk_gen =
    QCheck.Gen.(
      list_size (int_range 10 50)
        (pair (int_range (-1) 2) (int_range (-1) 1)))
  in
  let stream_gen =
    QCheck.Gen.(
      map
        (List.map List.split)
        (list_size (int_range 5 25) chunk_gen))
  in
  QCheck.Test.make ~count:100
    ~name:"drift verdict is independent of slot count and assignment"
    (QCheck.make stream_gen)
    (fun stream ->
      let t1 = run ~slots:1 stream in
      let t3 = run ~slots:3 stream in
      let t8 = run ~slots:8 stream in
      if t1 <> t3 || t1 <> t8 then
        QCheck.Test.fail_reportf
          "detection traces diverge across slot counts (%d vs %d vs %d \
           detections)"
          (List.length t1) (List.length t3) (List.length t8)
      else true)

(* ------------------------------------------------------------------ *)
(* Retrainer: drifted stream → exactly one detection, one retrain       *)
(* ------------------------------------------------------------------ *)

(* What the daemon's rollout does after flipping CURRENT: swap the
   served model AND resync the monitor to the published generation's
   expectations — a fresh epoch against the new baseline, so the old
   model's drift cannot re-detect. [dr_cell] breaks the create-time
   cycle (the callback needs the retrainer's own monitor, which exists
   only after [Rt.create] returns). *)
let daemon_rollout reg dr_cell sm_cell rolled ~gen =
  rolled := gen :: !rolled;
  let sm', exp' = Pnrule.Serialize.load_saved_ex (R.gen_path reg gen) in
  sm_cell := sm';
  Option.iter
    (fun dr ->
      D.set_model dr
        ~n_rules:(Pnrule.Saved.n_monitored sm')
        ~target:(Pnrule.Saved.target sm')
        exp')
    !dr_cell;
  Ok ()

(* Deterministic harness around a retrainer: feeds the drifted labeled
   stream chunk by chunk through observe/add/tick — exactly what the
   daemon's feedback path plus the background loop do, minus the wall
   clock. [sm_cell] is the "serving" model slot a rollout may swap
   mid-stream. The stream ends at the first successful publish — the
   drift is resolved, there is no more evidence to stream — or after
   [chunks] chunks, whichever is first. Returns the generations [tick]
   published. *)
let drive_drifted_stream ?(seed = 402) ?(chunks = 10) ?(chunk_rows = 500) rt
    sm_cell =
  let dr = Rt.drift rt in
  let drifted =
    Pn_synth.Numerical.generate drift_spec ~seed ~n:(chunks * chunk_rows)
  in
  let published = ref [] in
  let c = ref 0 in
  while !published = [] && !c < chunks do
    let idx = Array.init chunk_rows (fun i -> (!c * chunk_rows) + i) in
    let ds = Pn_data.Dataset.subset drifted idx in
    let batch = Pnrule.Saved.eval_batch !sm_cell ds in
    let actuals =
      Array.init chunk_rows (fun i -> Pn_data.Dataset.label ds i)
    in
    D.observe dr ~slot:0 ~n:chunk_rows ~batch ~actuals;
    Rt.add rt ds;
    (match Rt.tick ~now:(float_of_int !c) rt with
    | Some g -> published := g :: !published
    | None -> ());
    incr c
  done;
  List.rev !published

let retrainer_config =
  {
    Rt.default_config with
    drift =
      { D.window = 500; threshold = 1.0; delta = 0.05; min_labeled = 100; seed = 42 };
    reservoir = 10_000;
    min_rows = 200;
    max_attempts = 3;
  }

let test_retrain_cycle () =
  let _, sm, exp = Lazy.force fixture in
  with_registry_dir (fun dir ->
      let reg = R.open_dir dir in
      Alcotest.(check int) "gen-1 published" 1 (R.publish ~expectations:exp reg sm);
      R.set_current reg 1;
      let rolled = ref [] in
      let dr_cell = ref None in
      let sm_cell = ref sm in
      let rt =
        Rt.create ~config:retrainer_config ~slots:1 ~registry:reg
          ~model:(fun () -> !sm_cell)
          ~rollout:(daemon_rollout reg dr_cell sm_cell rolled)
          ()
      in
      dr_cell := Some (Rt.drift rt);
      D.set_model (Rt.drift rt)
        ~n_rules:(Pnrule.Saved.n_monitored sm)
        ~target:(Pnrule.Saved.target sm)
        (Some exp);
      let published = drive_drifted_stream rt sm_cell in
      Alcotest.(check (list int)) "exactly one generation published" [ 2 ] published;
      Alcotest.(check (list int)) "rolled out once, to gen 2" [ 2 ] !rolled;
      Alcotest.(check int)
        "exactly one detection" 1
        (D.detections_total (Rt.drift rt));
      let st = Rt.stats rt in
      Alcotest.(check int) "one successful retrain" 1 st.Rt.ok;
      Alcotest.(check int) "no training failures" 0 st.Rt.train_error;
      Alcotest.(check bool) "nothing pending" false st.Rt.pending;
      Alcotest.(check bool) "duration recorded" true (st.Rt.last_duration > 0.0);
      Alcotest.(check (list int)) "registry holds both" [ 1; 2 ] (R.generations reg);
      (* The published generation carries fresh expectations, and no
         spill file lingers in the registry directory. *)
      let _, exp2 = Pnrule.Serialize.load_saved_ex (R.gen_path reg 2) in
      Alcotest.(check bool) "gen-2 is a v4 file" true (exp2 <> None);
      Array.iter
        (fun f ->
          Alcotest.(check bool)
            (Printf.sprintf "no dropping %s" f)
            true
            (f = "CURRENT" || f = "gen-1.model" || f = "gen-2.model"))
        (Sys.readdir dir);
      (* Quiet aftermath: no new rows, no new windows, no re-detection. *)
      for i = 0 to 9 do
        Alcotest.(check bool)
          "quiet tick" true
          (Rt.tick ~now:(100.0 +. float_of_int i) rt = None)
      done;
      Alcotest.(check int)
        "still one detection" 1
        (D.detections_total (Rt.drift rt));
      Alcotest.(check int) "still one retrain" 1 (Rt.stats rt).Rt.ok)

(* An empty reservoir resolves a detection as no_data — never a crash,
   never a publish. *)
let test_retrain_no_data () =
  let _, sm, exp = Lazy.force fixture in
  with_registry_dir (fun dir ->
      let reg = R.open_dir dir in
      ignore (R.publish ~expectations:exp reg sm);
      let rt =
        Rt.create ~config:retrainer_config ~slots:1 ~registry:reg
          ~model:(fun () -> sm)
          ~rollout:(fun ~gen:_ -> Alcotest.fail "rollout on no data")
          ()
      in
      let dr = Rt.drift rt in
      D.set_model dr
        ~n_rules:(Pnrule.Saved.n_monitored sm)
        ~target:(Pnrule.Saved.target sm)
        (Some exp);
      (* Drift without feedback: observe only, never add. *)
      let drifted = Pn_synth.Numerical.generate drift_spec ~seed:403 ~n:5_000 in
      let fed = ref 0 in
      let i = ref 0 in
      while (Rt.stats rt).Rt.no_data = 0 && !fed + 500 <= 5_000 do
        let idx = Array.init 500 (fun k -> !fed + k) in
        let ds = Pn_data.Dataset.subset drifted idx in
        let batch = Pnrule.Saved.eval_batch sm ds in
        let actuals = Array.init 500 (fun k -> Pn_data.Dataset.label ds k) in
        D.observe dr ~slot:0 ~n:500 ~batch ~actuals;
        fed := !fed + 500;
        incr i;
        ignore (Rt.tick ~now:(float_of_int !i) rt)
      done;
      let st = Rt.stats rt in
      Alcotest.(check int) "resolved as no_data" 1 st.Rt.no_data;
      Alcotest.(check int) "no retrain happened" 0 st.Rt.ok;
      Alcotest.(check bool) "detection cleared" false st.Rt.pending;
      Alcotest.(check bool)
        "no_data explained" true
        (match st.Rt.last_error with
        | Some m -> contains m "min_rows"
        | None -> false);
      Alcotest.(check (list int)) "nothing published" [ 1 ] (R.generations reg))

(* ------------------------------------------------------------------ *)
(* Chaos: injected faults leave the serving state untouched             *)
(* ------------------------------------------------------------------ *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* A crash mid-publish: the torn write removes its temp file, allocates
   no generation, and the retry (after backoff) publishes cleanly. *)
let test_retrain_publish_crash () =
  let _, sm, exp = Lazy.force fixture in
  with_registry_dir (fun dir ->
      let reg = R.open_dir dir in
      ignore (R.publish ~expectations:exp reg sm);
      R.set_current reg 1;
      let gen1_bytes = read_file (R.gen_path reg 1) in
      let rolled = ref [] in
      let dr_cell = ref None in
      let sm_cell = ref sm in
      let rt =
        Rt.create ~config:retrainer_config ~slots:1 ~registry:reg
          ~model:(fun () -> !sm_cell)
          ~rollout:(daemon_rollout reg dr_cell sm_cell rolled)
          ()
      in
      let dr = Rt.drift rt in
      dr_cell := Some dr;
      D.set_model dr
        ~n_rules:(Pnrule.Saved.n_monitored sm)
        ~target:(Pnrule.Saved.target sm)
        (Some exp);
      Fun.protect ~finally:Pn_util.Fault.reset (fun () ->
          Pn_util.Fault.arm "retrain.publish" (Pn_util.Fault.Crash_after 512);
          let published = drive_drifted_stream rt sm_cell in
          Alcotest.(check (list int)) "nothing published" [] published;
          Alcotest.(check (list int))
            "rollout never reached" [] !rolled;
          let st = Rt.stats rt in
          Alcotest.(check bool)
            "publish failures counted" true (st.Rt.publish_error >= 1);
          Alcotest.(check int) "no success" 0 st.Rt.ok;
          (* Serving state byte-identical, registry free of droppings:
             the crash consumed no generation number and left no temp. *)
          Alcotest.(check (list int))
            "generation 1 alone" [ 1 ] (R.generations reg);
          Alcotest.(check (option int)) "CURRENT kept" (Some 1) (R.current reg);
          Alcotest.(check string)
            "gen-1 bytes untouched" gen1_bytes
            (read_file (R.gen_path reg 1));
          Array.iter
            (fun f ->
              Alcotest.(check bool)
                (Printf.sprintf "no dropping %s" f)
                true
                (f = "CURRENT" || f = "gen-1.model"))
            (Sys.readdir dir);
          (* Backoff, not a hot loop: with the fault still armed the
             next attempt is pushed behind [not_before]. *)
          Alcotest.(check bool)
            "attempt pending behind backoff" true
            (st.Rt.pending || st.Rt.publish_error >= retrainer_config.Rt.max_attempts));
      (* Disarmed and past every backoff, the pending detection retries
         and the publish lands; if the attempts were exhausted, the
         still-drifted stream re-detects on fresh windows. *)
      let deadline = ref 1_000.0 in
      let published = ref None in
      let drifted = Pn_synth.Numerical.generate drift_spec ~seed:404 ~n:4_000 in
      let fed = ref 0 in
      while !published = None && !fed + 500 <= 4_000 do
        let idx = Array.init 500 (fun k -> !fed + k) in
        let ds = Pn_data.Dataset.subset drifted idx in
        let batch = Pnrule.Saved.eval_batch !sm_cell ds in
        let actuals = Array.init 500 (fun k -> Pn_data.Dataset.label ds k) in
        D.observe dr ~slot:0 ~n:500 ~batch ~actuals;
        Rt.add rt ds;
        fed := !fed + 500;
        deadline := !deadline +. 100.0;
        published := Rt.tick ~now:!deadline rt
      done;
      Alcotest.(check (option int)) "retry published gen 2" (Some 2) !published;
      Alcotest.(check (list int)) "rolled out gen 2" [ 2 ] !rolled;
      Alcotest.(check (option int))
        "CURRENT untouched by the retrainer itself" (Some 1) (R.current reg))

(* An injected training fault is a counted, retried failure — the
   attempt cap then drops the detection instead of spinning. *)
let test_retrain_train_fault () =
  let _, sm, exp = Lazy.force fixture in
  with_registry_dir (fun dir ->
      let reg = R.open_dir dir in
      ignore (R.publish ~expectations:exp reg sm);
      let rt =
        Rt.create ~config:retrainer_config ~slots:1 ~registry:reg
          ~model:(fun () -> sm)
          ~rollout:(fun ~gen:_ -> Alcotest.fail "rollout after failed training")
          ()
      in
      let dr = Rt.drift rt in
      D.set_model dr
        ~n_rules:(Pnrule.Saved.n_monitored sm)
        ~target:(Pnrule.Saved.target sm)
        (Some exp);
      Fun.protect ~finally:Pn_util.Fault.reset (fun () ->
          Pn_util.Fault.arm "retrain.train" Pn_util.Fault.Raise;
          let published = drive_drifted_stream rt (ref sm) in
          Alcotest.(check (list int)) "nothing published" [] published;
          let st = Rt.stats rt in
          Alcotest.(check bool)
            "training failures counted" true (st.Rt.train_error >= 1);
          Alcotest.(check bool)
            "failure surfaced" true
            (match st.Rt.last_error with
            | Some m -> contains m "train"
            | None -> false);
          Alcotest.(check (list int))
            "registry untouched" [ 1 ] (R.generations reg)))

(* ------------------------------------------------------------------ *)
(* End-to-end: a live daemon adapts through its own feedback endpoint   *)
(* ------------------------------------------------------------------ *)

let test_daemon_adaptation_e2e () =
  let _, sm, exp = Lazy.force fixture in
  with_registry_dir (fun dir ->
      let reg = R.open_dir dir in
      Alcotest.(check int) "gen-1 published" 1 (R.publish ~expectations:exp reg sm);
      R.set_current reg 1;
      let config =
        {
          Server.default_config with
          chunk_size = 256;
          adapt =
            Some
              {
                Rt.default_config with
                drift =
                  {
                    D.window = 400;
                    threshold = 0.8;
                    delta = 0.05;
                    min_labeled = 100;
                    seed = 42;
                  };
                reservoir = 20_000;
                min_rows = 200;
                poll_interval = 0.02;
                max_attempts = 3;
              };
        }
      in
      let srv =
        Server.start ~config
          ~source:(Pn_server.Handler.Registry (R.open_dir dir))
          ()
      in
      Fun.protect
        ~finally:(fun () -> Server.stop srv)
        (fun () ->
          let port = Server.port srv in
          Alcotest.(check int) "boots on gen 1" 1 (Server.generation srv);
          (* The monitor is live from boot: gen-1 is a v4 file. *)
          let s, _, j = one_shot port ~meth:"GET" ~path:"/admin/drift" () in
          Alcotest.(check int) "drift endpoint" 200 s;
          Alcotest.(check bool)
            "monitoring from the v4 baseline" true
            (contains j "\"monitoring\": true");
          let s, _, _ = one_shot port ~meth:"GET" ~path:"/feedback" () in
          Alcotest.(check int) "feedback is POST-only" 405 s;
          let s, _, _ = one_shot port ~meth:"POST" ~path:"/admin/drift" () in
          Alcotest.(check int) "drift is GET-only" 405 s;
          (* Unlabeled feedback is a client error. *)
          let drifted =
            Pn_synth.Numerical.generate drift_spec ~seed:405 ~n:4_000
          in
          let csv = Filename.temp_file "pnrule_adapt" ".csv" in
          Fun.protect
            ~finally:(fun () -> Sys.remove csv)
            (fun () ->
              Pn_data.Csv_io.save drifted csv;
              let body = read_file csv in
              let header_end = String.index body '\n' in
              let unlabeled_header =
                (* Drop the trailing ",class" column name: rows keep the
                   label cell, which then fails the schema match — so use
                   a genuinely label-free two-row body instead. *)
                String.concat ","
                  (List.filter
                     (fun c -> c <> "class")
                     (String.split_on_char ','
                        (String.sub body 0 header_end)))
              in
              let row =
                String.concat ","
                  (List.map
                     (fun _ -> "1.0")
                     (String.split_on_char ',' unlabeled_header))
              in
              let s, _, b =
                one_shot port ~meth:"POST" ~path:"/feedback"
                  ~body:(unlabeled_header ^ "\n" ^ row ^ "\n")
                  ()
              in
              Alcotest.(check int) "unlabeled feedback refused" 400 s;
              Alcotest.(check bool)
                "explains the missing labels" true
                (contains b "no labeled rows");
              (* The drifted labeled stream: one request is the whole
                 evidence. *)
              let s, _, b =
                one_shot port ~meth:"POST" ~path:"/feedback" ~body ()
              in
              Alcotest.(check int) "feedback accepted" 200 s;
              Alcotest.(check bool)
                "all rows labeled" true
                (contains b "\"labeled\": 4000");
              (* The background loop detects, retrains from the
                 reservoir, publishes gen-2 and flips CURRENT through
                 the canary-warmed rollout. *)
              let deadline = Unix.gettimeofday () +. 30.0 in
              while
                Server.generation srv < 2 && Unix.gettimeofday () < deadline
              do
                Unix.sleepf 0.05
              done;
              Alcotest.(check int) "serving generation 2" 2
                (Server.generation srv);
              Alcotest.(check (option int))
                "CURRENT flipped" (Some 2) (R.current reg);
              Alcotest.(check (list int))
                "registry holds both generations" [ 1; 2 ]
                (R.generations reg);
              let _, exp2 =
                Pnrule.Serialize.load_saved_ex (R.gen_path reg 2)
              in
              Alcotest.(check bool)
                "published generation carries expectations" true
                (exp2 <> None);
              (* /model reflects the flip and carries load times. *)
              let _, _, j = one_shot port ~meth:"GET" ~path:"/model" () in
              Alcotest.(check bool)
                "model generation 2" true
                (contains j "\"generation\": 2");
              Alcotest.(check bool) "uptime exported" true (contains j "\"uptime\"");
              (* /admin/drift tells the whole story. *)
              let s, _, j = one_shot port ~meth:"GET" ~path:"/admin/drift" () in
              Alcotest.(check int) "drift endpoint after adaptation" 200 s;
              Alcotest.(check bool)
                "detection counted" true
                (contains j "\"detections_total\": 1");
              Alcotest.(check bool)
                "retrain counted" true
                (contains j "\"ok\": 1");
              (* And the scrape exports the adaptation metrics. *)
              let _, _, m = one_shot port ~meth:"GET" ~path:"/metrics" () in
              let metric = Test_server.metric_value m in
              Alcotest.(check (float 0.0))
                "drift detections exported" 1.0
                (metric "pnrule_drift_detected_total");
              Alcotest.(check (float 0.0))
                "retrains exported" 1.0
                (metric "pnrule_retrains_total{outcome=\"ok\"}");
              Alcotest.(check (float 0.0))
                "generation gauge follows the rollout" 2.0
                (metric "pnrule_model_generation");
              Alcotest.(check bool)
                "per-rule drift scores exported" true
                (contains m "pnrule_drift_score{rule=\"0\"}");
              Alcotest.(check bool)
                "retrain duration exported" true
                (contains m "pnrule_retrain_duration_seconds");
              Alcotest.(check bool)
                "model load time exported" true
                (metric "pnrule_model_loaded_at_seconds" > 1e9);
              (* Predictions keep flowing on the adapted model. *)
              let s, _, _ =
                one_shot port ~meth:"POST" ~path:"/predict" ~body ()
              in
              Alcotest.(check int) "predict after adaptation" 200 s)))

(* Without --adapt the endpoints refuse cleanly, and Server.start
   rejects adaptation over a plain model file. *)
let test_adapt_off_and_validation () =
  let _, sm, _ = Lazy.force fixture in
  (match
     Server.start
       ~config:{ Server.default_config with adapt = Some Rt.default_config }
       ~source:(Pn_server.Handler.Loader (fun () -> sm))
       ()
   with
  | _ -> Alcotest.fail "adapt accepted without a registry"
  | exception Invalid_argument _ -> ());
  let srv =
    Server.start
      ~config:{ Server.default_config with chunk_size = 256 }
      ~source:(Pn_server.Handler.Loader (fun () -> sm))
      ()
  in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let port = Server.port srv in
      let s, _, b = one_shot port ~meth:"POST" ~path:"/feedback" ~body:"x\n" () in
      Alcotest.(check int) "feedback without adapt" 409 s;
      Alcotest.(check bool) "names the flag" true (contains b "--adapt");
      let s, _, b = one_shot port ~meth:"GET" ~path:"/admin/drift" () in
      Alcotest.(check int) "drift without adapt" 409 s;
      Alcotest.(check bool) "names the flag too" true (contains b "--adapt"))

let suite =
  [
    Alcotest.test_case "expectations derive and v4 round-trip" `Quick
      test_derive_and_v4_roundtrip;
    Alcotest.test_case "drift window mechanics and attribution" `Quick
      test_drift_window_mechanics;
    Alcotest.test_case "drift false-positive channel" `Quick
      test_drift_false_positive_channel;
    Alcotest.test_case "retrain cycle: one detection, one rollout" `Quick
      test_retrain_cycle;
    Alcotest.test_case "empty reservoir resolves as no_data" `Quick
      test_retrain_no_data;
    Alcotest.test_case "crashed publish leaves serving untouched" `Quick
      test_retrain_publish_crash;
    Alcotest.test_case "training fault is counted and bounded" `Quick
      test_retrain_train_fault;
    Alcotest.test_case "daemon adapts end-to-end" `Quick
      test_daemon_adaptation_e2e;
    Alcotest.test_case "adaptation off and config validation" `Quick
      test_adapt_off_and_validation;
  ]
  @ [ QCheck_alcotest.to_alcotest qcheck_determinism ]
