(* Tests for pn_induct: the candidate-search engine. *)

module A = Pn_data.Attribute
module D = Pn_data.Dataset
module V = Pn_data.View
module Cond = Pn_rules.Condition
module Rule = Pn_rules.Rule
module RM = Pn_metrics.Rule_metric
module G = Pn_induct.Grower

let ctx_of view ~target =
  let pos, neg = V.binary_weights view ~target in
  { RM.pos_total = pos; neg_total = neg }

let best ?negate ?current ?allow_ranges view ~target =
  G.best_condition ?allow_ranges ?negate ?current ~metric:RM.Z_number
    ~ctx:(ctx_of view ~target) ~target view

(* ------------------------------------------------------------------ *)

let test_finds_categorical_signature () =
  (* Positives all have c = b; negatives uniform. *)
  let n = 300 in
  let labels = Array.init n (fun i -> if i mod 10 = 0 then 1 else 0) in
  let codes = Array.init n (fun i -> if labels.(i) = 1 then 1 else i mod 3) in
  let ds =
    D.create
      ~attrs:[| A.categorical "c" [| "a"; "b"; "z" |] |]
      ~columns:[| D.Cat codes |] ~labels ~classes:[| "n"; "p" |] ()
  in
  match best (V.all ds) ~target:1 with
  | Some { G.condition = Cond.Cat_eq { col = 0; value = 1 }; counts; _ } ->
    Alcotest.(check (float 1e-9)) "all positives covered" 30.0 counts.RM.pos
  | Some { G.condition; _ } ->
    Alcotest.failf "wrong condition: %s"
      (Cond.to_string ds.D.attrs condition)
  | None -> Alcotest.fail "no candidate found"

let test_finds_numeric_threshold () =
  (* Positives have x >= 50; negatives x < 50. *)
  let n = 200 in
  let xs = Array.init n (fun i -> float_of_int i) in
  let labels = Array.init n (fun i -> if i >= 100 then 1 else 0) in
  let ds =
    D.create ~attrs:[| A.numeric "x" |] ~columns:[| D.Num xs |] ~labels
      ~classes:[| "n"; "p" |] ()
  in
  match best ~allow_ranges:false (V.all ds) ~target:1 with
  | Some { G.condition = Cond.Num_ge { col = 0; threshold }; counts; _ } ->
    Alcotest.(check (float 1e-9)) "threshold at boundary" 100.0 threshold;
    Alcotest.(check (float 1e-9)) "pure" 0.0 counts.RM.neg
  | Some { G.condition; _ } ->
    Alcotest.failf "wrong condition: %s" (Cond.to_string ds.D.attrs condition)
  | None -> Alcotest.fail "no candidate found"

let test_finds_range () =
  (* Positives form an interior band: one-sided cuts are impure, the
     range isolates it exactly (the paper's §2.2 motivation). *)
  let n = 300 in
  let xs = Array.init n (fun i -> float_of_int i) in
  let labels = Array.init n (fun i -> if i >= 140 && i < 160 then 1 else 0) in
  let ds =
    D.create ~attrs:[| A.numeric "x" |] ~columns:[| D.Num xs |] ~labels
      ~classes:[| "n"; "p" |] ()
  in
  match best (V.all ds) ~target:1 with
  | Some { G.condition = Cond.Num_range { col = 0; lo; hi }; counts; _ } ->
    Alcotest.(check (float 1e-9)) "lo" 140.0 lo;
    Alcotest.(check (float 1e-9)) "hi" 159.0 hi;
    Alcotest.(check (float 1e-9)) "pure" 0.0 counts.RM.neg;
    Alcotest.(check (float 1e-9)) "complete" 20.0 counts.RM.pos
  | Some { G.condition; _ } ->
    Alcotest.failf "expected range, got %s" (Cond.to_string ds.D.attrs condition)
  | None -> Alcotest.fail "no candidate found"

let test_range_disabled () =
  let n = 300 in
  let xs = Array.init n (fun i -> float_of_int i) in
  let labels = Array.init n (fun i -> if i >= 140 && i < 160 then 1 else 0) in
  let ds =
    D.create ~attrs:[| A.numeric "x" |] ~columns:[| D.Num xs |] ~labels
      ~classes:[| "n"; "p" |] ()
  in
  match best ~allow_ranges:false (V.all ds) ~target:1 with
  | Some { G.condition = Cond.Num_range _; _ } ->
    Alcotest.fail "ranges must be disabled"
  | Some _ -> ()
  | None -> Alcotest.fail "no candidate found"

let test_negate () =
  (* With negate, the grower hunts the *majority* complement class. *)
  let n = 100 in
  let xs = Array.init n (fun i -> float_of_int i) in
  let labels = Array.init n (fun i -> if i < 50 then 1 else 0) in
  let ds =
    D.create ~attrs:[| A.numeric "x" |] ~columns:[| D.Num xs |] ~labels
      ~classes:[| "n"; "p" |] ()
  in
  let v = V.all ds in
  let pos, neg = V.binary_weights v ~target:1 in
  let ctx = { RM.pos_total = neg; neg_total = pos } in
  match G.best_condition ~negate:true ~metric:RM.Z_number ~ctx ~target:1 v with
  | Some { G.counts; condition; _ } ->
    (* Candidate coverage must be pure in non-target records. *)
    Alcotest.(check (float 1e-9)) "no target covered" 0.0 counts.RM.neg;
    (match condition with
    | Cond.Num_ge { threshold; _ } when threshold >= 50.0 -> ()
    | Cond.Num_range { lo; _ } when lo >= 50.0 -> ()
    | other -> Alcotest.failf "unexpected: %s" (Cond.to_string ds.D.attrs other))
  | None -> Alcotest.fail "no candidate found"

let test_respects_current_rule () =
  let n = 100 in
  let codes = Array.init n (fun i -> i mod 2) in
  let labels = Array.init n (fun i -> if i mod 2 = 0 then 1 else 0) in
  let ds =
    D.create
      ~attrs:[| A.categorical "c" [| "a"; "b" |] |]
      ~columns:[| D.Cat codes |] ~labels ~classes:[| "n"; "p" |] ()
  in
  let v = V.all ds in
  (* Current rule already tests c = a; the view covers only those. *)
  let current = Rule.of_conditions [ Cond.Cat_eq { col = 0; value = 0 } ] in
  let covered = Rule.covered_of v current in
  Alcotest.(check bool) "nothing left to test" true
    (best ~current covered ~target:1 = None)

let test_counts_consistency () =
  (* Whatever the grower returns, its counts must equal the actual
     coverage of the condition over the view. *)
  let rng = Pn_util.Rng.create 99 in
  let n = 500 in
  let xs = Array.init n (fun _ -> Pn_util.Rng.float rng 10.0) in
  let cs = Array.init n (fun _ -> Pn_util.Rng.int rng 4) in
  let labels = Array.init n (fun _ -> if Pn_util.Rng.bernoulli rng 0.2 then 1 else 0) in
  let ds =
    D.create
      ~attrs:[| A.numeric "x"; A.categorical "c" [| "a"; "b"; "c"; "d" |] |]
      ~columns:[| D.Num xs; D.Cat cs |] ~labels ~classes:[| "n"; "p" |] ()
  in
  let v = V.all ds in
  match best v ~target:1 with
  | None -> () (* nothing learnable in noise is acceptable *)
  | Some { G.condition; counts; _ } ->
    let actual =
      Rule.coverage v (Rule.of_conditions [ condition ]) ~target:1
    in
    Alcotest.(check (float 1e-6)) "pos consistent" actual.RM.pos counts.RM.pos;
    Alcotest.(check (float 1e-6)) "neg consistent" actual.RM.neg counts.RM.neg

let test_interior_peak_with_uniform_positives () =
  (* Regression: a cluster of positives at x ≈ 47 while other positives
     are uniform on x. Both one-sided optima land away from the peak, so
     the paper's anchored scans alone miss it; the maximum-enrichment
     window must recover it. *)
  let rng = Pn_util.Rng.create 12345 in
  let n = 20_000 in
  let xs = Array.make n 0.0 and labels = Array.make n 0 in
  for i = 0 to n - 1 do
    let r = Pn_util.Rng.float rng 1.0 in
    if r < 0.002 then begin
      labels.(i) <- 1;
      xs.(i) <- 46.9 +. Pn_util.Rng.float rng 0.2
    end
    else if r < 0.004 then begin
      labels.(i) <- 1;
      xs.(i) <- Pn_util.Rng.float rng 100.0
    end
    else xs.(i) <- Pn_util.Rng.float rng 100.0
  done;
  let ds =
    D.create ~attrs:[| A.numeric "x" |] ~columns:[| D.Num xs |] ~labels
      ~classes:[| "n"; "p" |] ()
  in
  let v = V.all ds in
  let pos, neg = V.binary_weights v ~target:1 in
  let ctx = { RM.pos_total = pos; neg_total = neg } in
  match
    G.best_condition ~min_support:10.0 ~metric:RM.Z_number ~ctx ~target:1 v
  with
  | Some { G.condition = Cond.Num_range { lo; hi; _ }; counts; _ } ->
    Alcotest.(check bool)
      (Printf.sprintf "window [%g, %g] sits on the peak" lo hi)
      true
      (lo >= 45.0 && hi <= 49.0);
    Alcotest.(check bool) "captures the cluster" true (counts.RM.pos >= 25.0)
  | Some { G.condition; _ } ->
    Alcotest.failf "expected a range on the peak, got %s"
      (Cond.to_string ds.D.attrs condition)
  | None -> Alcotest.fail "no candidate found"

let test_min_support_excludes_tiny_candidates () =
  (* With a floor, the grower must return the best *qualifying* candidate
     rather than None when a tiny pure range scores higher. *)
  let rng = Pn_util.Rng.create 777 in
  let n = 5_000 in
  let xs = Array.make n 0.0 and labels = Array.make n 0 in
  for i = 0 to n - 1 do
    let r = Pn_util.Rng.float rng 1.0 in
    if r < 0.0006 then begin
      (* ~3 positives isolated in a micro-window: irresistible to Z. *)
      labels.(i) <- 1;
      xs.(i) <- 10.0 +. Pn_util.Rng.float rng 0.01
    end
    else if r < 0.01 then begin
      labels.(i) <- 1;
      xs.(i) <- 60.0 +. Pn_util.Rng.float rng 5.0
    end
    else xs.(i) <- 20.0 +. Pn_util.Rng.float rng 30.0
  done;
  let ds =
    D.create ~attrs:[| A.numeric "x" |] ~columns:[| D.Num xs |] ~labels
      ~classes:[| "n"; "p" |] ()
  in
  let v = V.all ds in
  let pos, neg = V.binary_weights v ~target:1 in
  let ctx = { RM.pos_total = pos; neg_total = neg } in
  match G.best_condition ~min_support:20.0 ~metric:RM.Z_number ~ctx ~target:1 v with
  | Some { G.counts; _ } ->
    Alcotest.(check bool) "floor respected" true (RM.support counts >= 20.0);
    Alcotest.(check bool) "found the big cluster" true (counts.RM.pos >= 20.0)
  | None -> Alcotest.fail "must return a qualifying candidate"

let test_no_candidates_on_constant_data () =
  let ds =
    D.create ~attrs:[| A.numeric "x" |]
      ~columns:[| D.Num [| 1.0; 1.0; 1.0; 1.0 |] |]
      ~labels:[| 1; 0; 1; 0 |] ~classes:[| "n"; "p" |] ()
  in
  Alcotest.(check bool) "constant column yields nothing" true
    (best (V.all ds) ~target:1 = None)

let test_candidate_space_size () =
  let ds =
    D.create
      ~attrs:[| A.numeric "x"; A.categorical "c" [| "a"; "b"; "z" |] |]
      ~columns:[| D.Num [| 1.0; 2.0; 2.0; 3.0 |]; D.Cat [| 0; 1; 2; 0 |] |]
      ~labels:[| 0; 0; 0; 0 |] ~classes:[| "n" |] ()
  in
  (* 3 distinct numeric values × 2 sides + 3 categorical values. *)
  Alcotest.(check int) "space" 9 (G.candidate_space_size ds)

(* ------------------------------------------------------------------ *)
(* Parallel candidate search determinism                                *)
(* ------------------------------------------------------------------ *)

(* [best_condition] with a 4-domain pool must return the exact
   condition, counts, and score of the sequential run — the reduce is
   ordered (score, then lowest column), so every pool size agrees
   bit-for-bit. Exercised on mixed-attribute synthetic data well above
   the 512-record parallel dispatch threshold. *)
let test_parallel_best_condition_identical () =
  let pool = Pn_util.Pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Pn_util.Pool.shutdown pool)
    (fun () ->
      let check_ds name ds ~target =
        let v = V.all ds in
        let ctx = ctx_of v ~target in
        List.iter
          (fun (allow_ranges, negate, min_support, metric) ->
            let run pool =
              G.best_condition ~allow_ranges ~negate ~min_support ~pool ~metric
                ~ctx ~target v
            in
            let seq = run Pn_util.Pool.sequential in
            let par = run pool in
            Alcotest.(check bool)
              (Printf.sprintf "%s ranges=%b negate=%b minsup=%.0f" name
                 allow_ranges negate min_support)
              true
              (seq = par && seq <> None))
          [
            (true, false, 0.0, RM.Z_number);
            (false, false, 0.0, RM.Info_gain);
            (true, true, 0.0, RM.Z_number);
            (true, false, 25.0, RM.Z_number);
          ]
      in
      let nsyn = Pn_synth.Numerical.generate (Pn_synth.Numerical.nsyn 3) ~seed:7 ~n:2_000 in
      check_ds "nsyn3" nsyn ~target:Pn_synth.Numerical.target_class;
      let coa =
        Pn_synth.Categorical.generate (Pn_synth.Categorical.coa 2) ~seed:7 ~n:2_000
      in
      check_ds "coa2" coa ~target:Pn_synth.Categorical.target_class)

(* End-to-end determinism: training through a multi-domain default pool
   must produce a model structurally identical to sequential training. *)
let test_parallel_training_identical () =
  let ds = Pn_synth.Numerical.generate (Pn_synth.Numerical.nsyn 3) ~seed:5 ~n:1_500 in
  let target = Pn_synth.Numerical.target_class in
  let pool = Pn_util.Pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () ->
      Pn_util.Pool.set_default Pn_util.Pool.sequential;
      Pn_util.Pool.shutdown pool)
    (fun () ->
      Pn_util.Pool.set_default Pn_util.Pool.sequential;
      let seq_model = Pnrule.Learner.train ds ~target in
      Pn_util.Pool.set_default pool;
      let par_model = Pnrule.Learner.train ds ~target in
      Alcotest.(check bool) "pnrule models identical" true (seq_model = par_model))

let qcheck_props =
  [
    QCheck.Test.make ~count:60 ~name:"best candidate strictly shrinks coverage"
      QCheck.small_int
      (fun seed ->
        let rng = Pn_util.Rng.create seed in
        let n = 120 in
        let xs = Array.init n (fun _ -> Pn_util.Rng.float rng 5.0) in
        let labels =
          Array.init n (fun _ -> if Pn_util.Rng.bernoulli rng 0.3 then 1 else 0)
        in
        let ds =
          D.create ~attrs:[| A.numeric "x" |] ~columns:[| D.Num xs |] ~labels
            ~classes:[| "n"; "p" |] ()
        in
        let v = V.all ds in
        match best v ~target:1 with
        | None -> true
        | Some { G.counts; _ } -> RM.support counts < float_of_int n);
  ]

let suite =
  [
    Alcotest.test_case "finds categorical signature" `Quick test_finds_categorical_signature;
    Alcotest.test_case "finds numeric threshold" `Quick test_finds_numeric_threshold;
    Alcotest.test_case "finds interior range" `Quick test_finds_range;
    Alcotest.test_case "range search can be disabled" `Quick test_range_disabled;
    Alcotest.test_case "negate hunts the complement class" `Quick test_negate;
    Alcotest.test_case "respects the current rule" `Quick test_respects_current_rule;
    Alcotest.test_case "interior peak found (Kadane window)" `Quick
      test_interior_peak_with_uniform_positives;
    Alcotest.test_case "min support filters inside the search" `Quick
      test_min_support_excludes_tiny_candidates;
    Alcotest.test_case "counts consistent with coverage" `Quick test_counts_consistency;
    Alcotest.test_case "constant data has no candidates" `Quick test_no_candidates_on_constant_data;
    Alcotest.test_case "candidate space size" `Quick test_candidate_space_size;
    Alcotest.test_case "parallel search identical to sequential" `Quick
      test_parallel_best_condition_identical;
    Alcotest.test_case "parallel training identical to sequential" `Quick
      test_parallel_training_identical;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_props
