(* Tests for the binary columnar dataset format ([.pnc]): round-trips,
   streaming reads, corruption detection, and the serving fast path's
   byte-for-byte agreement with the CSV pipeline. *)

module A = Pn_data.Attribute
module D = Pn_data.Dataset
module C = Pn_data.Columnar
module R = Pn_data.Ingest_report

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let mixed ~seed ~n =
  let rng = Pn_util.Rng.create seed in
  let xs = Array.make n 0.0 in
  let ys = Array.make n 0.0 in
  let cs = Array.make n 0 in
  let labels = Array.make n 0 in
  for i = 0 to n - 1 do
    xs.(i) <- Pn_util.Rng.float rng 100.0;
    ys.(i) <- (if i mod 17 = 0 then Float.nan else Pn_util.Rng.float rng 1.0);
    cs.(i) <- Pn_util.Rng.int rng 3;
    if Pn_util.Rng.float rng 1.0 < 0.05 then begin
      labels.(i) <- 1;
      xs.(i) <- 20.0 +. Pn_util.Rng.float rng 3.0
    end
  done;
  D.create
    ~attrs:
      [|
        A.numeric "x";
        A.numeric "y of, sorts";
        A.categorical "c with space" [| "a a"; "b\"q"; "z" |];
      |]
    ~columns:[| D.Num xs; D.Num ys; D.Cat cs |]
    ~labels
    ~classes:[| "normal"; "rare one" |]
    ()

(* ------------------------------------------------------------------ *)
(* Round-trips                                                          *)
(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  let ds = mixed ~seed:1 ~n:10_001 in
  (* A group size that does not divide n, so the last group is short. *)
  let back = C.of_string (C.to_string ~group_size:256 ds) in
  Alcotest.(check bool) "datasets equal (nan-tolerant)" true (D.equal ds back)

let test_roundtrip_edge_sizes () =
  List.iter
    (fun n ->
      let ds = mixed ~seed:2 ~n in
      List.iter
        (fun group_size ->
          let back = C.of_string (C.to_string ~group_size ds) in
          if not (D.equal ds back) then
            Alcotest.failf "round-trip failed at n=%d group_size=%d" n group_size)
        [ 1; 2; n + 7 ])
    [ 1; 2; 255 ]

let test_roundtrip_empty () =
  let ds =
    D.create
      ~attrs:[| A.numeric "x"; A.categorical "c" [| "a"; "b" |] |]
      ~columns:[| D.Num [||]; D.Cat [||] |]
      ~labels:[||] ~classes:[| "n"; "p" |] ()
  in
  let back = C.of_string (C.to_string ds) in
  Alcotest.(check int) "0 rows back" 0 (D.n_records back);
  Alcotest.(check bool) "schema equal" true (D.equal ds back)

let test_file_roundtrip_atomic () =
  let ds = mixed ~seed:3 ~n:5_000 in
  let path = Filename.temp_file "pnrule_col" ".pnc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      C.save ds path;
      Alcotest.(check bool) "file round-trip" true (D.equal ds (C.load path));
      (* Saving on top of an existing file replaces it atomically. *)
      let ds2 = mixed ~seed:4 ~n:1_000 in
      C.save ds2 path;
      Alcotest.(check bool) "overwrite" true (D.equal ds2 (C.load path)))

(* ------------------------------------------------------------------ *)
(* Missing-value bitmaps and load policies                              *)
(* ------------------------------------------------------------------ *)

let with_missing ~seed ~n =
  let ds = mixed ~seed ~n in
  let missing =
    [|
      Some (Array.init n (fun i -> i mod 11 = 0));
      None;
      Some (Array.init n (fun i -> i mod 13 = 0));
    |]
  in
  (ds, missing, C.to_string ~group_size:128 ~missing ds)

let test_missing_strict () =
  let _, _, s = with_missing ~seed:5 ~n:1_000 in
  match C.of_string s with
  | _ -> Alcotest.fail "strict accepted a missing cell"
  | exception C.Corrupt msg ->
    Alcotest.(check bool)
      "message names the column" true
      (contains ~sub:"\"x\"" msg)

let test_missing_skip () =
  let _, missing, s = with_missing ~seed:6 ~n:1_000 in
  let bad = ref 0 in
  for i = 0 to 999 do
    let row_bad =
      Array.exists
        (function Some m -> m.(i) | None -> false)
        missing
    in
    if row_bad then incr bad
  done;
  let ds, report = ref None, ref None in
  (match C.of_string ~policy:R.Skip s with
  | d -> ds := Some d
  | exception C.Corrupt msg -> Alcotest.failf "skip raised: %s" msg);
  ignore report;
  Alcotest.(check int)
    "skip drops exactly the flagged rows" (1_000 - !bad)
    (D.n_records (Option.get !ds))

let test_missing_impute () =
  let orig, _, s = with_missing ~seed:7 ~n:1_000 in
  let ds = C.of_string ~policy:R.Impute s in
  Alcotest.(check int) "impute keeps every row" 1_000 (D.n_records ds);
  (* Imputed numeric cells hold the whole-column median of the present
     values, never nan (column x has no nans in the generator). *)
  (match (ds.D.columns.(0), orig.D.columns.(0)) with
  | D.Num a, D.Num _ ->
    Array.iter
      (fun v -> if Float.is_nan v then Alcotest.fail "imputed cell is nan")
      a
  | _ -> Alcotest.fail "column 0 should be numeric");
  (* Unflagged cells are untouched. *)
  match (ds.D.columns.(1), orig.D.columns.(1)) with
  | D.Num a, D.Num b ->
    Array.iteri
      (fun i v ->
        if Float.compare v b.(i) <> 0 then
          Alcotest.failf "unflagged cell %d changed" i)
      a
  | _ -> Alcotest.fail "column 1 should be numeric"

(* ------------------------------------------------------------------ *)
(* Streaming reader                                                     *)
(* ------------------------------------------------------------------ *)

let test_streaming_reader () =
  let n = 2_000 in
  let ds = mixed ~seed:8 ~n in
  let s = C.to_string ~group_size:300 ds in
  let r = C.open_reader (Pn_data.Stream.of_string s) in
  let sch = C.schema r in
  Alcotest.(check int) "n_rows" n sch.C.n_rows;
  Alcotest.(check int) "n_groups" 7 sch.C.n_groups;
  Alcotest.(check bool) "labels present" true sch.C.has_labels;
  (* Decode only columns 0 and 2. *)
  C.set_wanted r [| true; false; true |];
  let seen = ref 0 in
  let rec go () =
    match C.read_group r with
    | None -> ()
    | Some rows ->
      let xs = C.num_col r 0 in
      let cs = C.cat_col r 2 in
      let labs = Option.get (C.group_labels r) in
      for i = 0 to rows - 1 do
        let g = !seen + i in
        if Float.compare xs.(i) (D.num_value ds ~col:0 g) <> 0 then
          Alcotest.failf "num mismatch at %d" g;
        if cs.(i) <> D.cat_value ds ~col:2 g then
          Alcotest.failf "cat mismatch at %d" g;
        if labs.(i) <> D.label ds g then Alcotest.failf "label mismatch at %d" g
      done;
      (match C.num_col r 1 with
      | _ -> Alcotest.fail "unwanted column should not decode"
      | exception Invalid_argument _ -> ());
      seen := !seen + rows;
      go ()
  in
  go ();
  Alcotest.(check int) "all rows streamed" n !seen

(* ------------------------------------------------------------------ *)
(* qcheck: round-trip and corruption properties                         *)
(* ------------------------------------------------------------------ *)

(* Arbitrary datasets: mixed kinds, awkward floats (nan, infinities,
   subnormals), weird names, arities crossing the 1/2-byte code widths,
   row counts crossing group boundaries. Weights stay at the default 1
   because the format does not store them. *)
let dataset_gen =
  let open QCheck.Gen in
  let name = oneofl [ "x"; "a b"; "q\"uote"; "back\\slash"; ""; "日本" ] in
  let cell =
    oneofl
      [ 0.0; -1.5; 3.25e300; 4e-320; Float.nan; Float.infinity; Float.neg_infinity ]
  in
  int_range 0 600 >>= fun n ->
  int_range 1 70 >>= fun group_size ->
  int_range 1 4 >>= fun n_attrs ->
  int_range 1 3 >>= fun n_classes ->
  let attr =
    name >>= fun nm ->
    bool >>= fun numeric ->
    if numeric then return (A.numeric nm)
    else
      oneofl [ 1; 2; 3; 257 ] >>= fun arity ->
      return (A.categorical nm (Array.init arity (Printf.sprintf "v%d")))
  in
  array_size (return n_attrs) attr >>= fun attrs ->
  let column (a : A.t) =
    match a.A.kind with
    | A.Numeric -> array_size (return n) cell >>= fun c -> return (D.Num c)
    | A.Categorical values ->
      array_size (return n) (int_range 0 (Array.length values - 1))
      >>= fun c -> return (D.Cat c)
  in
  (* flatten an array of generators by hand: order matters not, but
     sizes do *)
  let rec columns i acc =
    if i = n_attrs then return (Array.of_list (List.rev acc))
    else column attrs.(i) >>= fun c -> columns (i + 1) (c :: acc)
  in
  columns 0 [] >>= fun columns ->
  array_size (return n) (int_range 0 (n_classes - 1)) >>= fun labels ->
  let classes = Array.init n_classes (Printf.sprintf "class %d") in
  return (D.create ~attrs ~columns ~labels ~classes (), group_size)

let corruption_gen =
  let open QCheck.Gen in
  dataset_gen >>= fun (ds, group_size) ->
  let s = C.to_string ~group_size ds in
  oneof
    [
      ( int_range 0 (String.length s - 1) >>= fun pos ->
        int_range 1 255 >>= fun delta ->
        let b = Bytes.of_string s in
        Bytes.set b pos
          (Char.chr ((Char.code (Bytes.get b pos) + delta) land 0xff));
        return (Bytes.to_string b) );
      ( int_range 0 (String.length s - 1) >>= fun keep ->
        return (String.sub s 0 keep) );
      (* Trailing garbage after a well-formed file. *)
      (oneofl [ "\x00"; "pncol"; "\n" ] >>= fun tail -> return (s ^ tail));
    ]

let qcheck_props =
  [
    QCheck.Test.make ~count:200 ~name:"columnar round-trip preserves the dataset"
      (QCheck.make dataset_gen)
      (fun (ds, group_size) ->
        D.equal ds (C.of_string (C.to_string ~group_size ds)));
    QCheck.Test.make ~count:400
      ~name:"columnar: corrupted bytes always raise Corrupt"
      (QCheck.make corruption_gen)
      (fun corrupted ->
        match C.of_string corrupted with
        | _ -> QCheck.Test.fail_report "corruption accepted silently"
        | exception C.Corrupt _ -> true
        | exception e ->
          QCheck.Test.fail_reportf "wrong exception: %s" (Printexc.to_string e));
  ]

(* ------------------------------------------------------------------ *)
(* Serving: the columnar path vs the CSV path                           *)
(* ------------------------------------------------------------------ *)

let train_model ~seed ~n =
  let ds = mixed ~seed ~n in
  (ds, Pnrule.Learner.train ds ~target:1)

let serve_csv ?policy ?scores ~model ds =
  let csv = Filename.temp_file "pnrule_col" ".csv" in
  Pn_data.Csv_io.save ds csv;
  let body = In_channel.with_open_bin csv In_channel.input_all in
  Sys.remove csv;
  let buf = Buffer.create 4096 in
  let report =
    Pnrule.Serve.predict_stream ?policy ?scores ~model:(Pnrule.Saved.Single model)
      ~source:(Pn_data.Stream.of_string body)
      ~write:(Buffer.add_string buf) ()
  in
  (Buffer.contents buf, report)

let serve_pnc ?policy ?scores ?missing ~model ds =
  let s = C.to_string ?missing ds in
  let buf = Buffer.create 4096 in
  let report =
    Pnrule.Serve.predict_columnar_stream ?policy ?scores
      ~model:(Pnrule.Saved.Single model)
      ~source:(Pn_data.Stream.of_string s)
      ~write:(Buffer.add_string buf) ()
  in
  (Buffer.contents buf, report)

let test_serve_byte_identical () =
  let train, model = train_model ~seed:9 ~n:8_000 in
  ignore train;
  let fresh = mixed ~seed:10 ~n:9_001 in
  List.iter
    (fun scores ->
      let csv_out, csv_rep = serve_csv ~scores ~model fresh in
      let pnc_out, pnc_rep = serve_pnc ~scores ~model fresh in
      Alcotest.(check string)
        (Printf.sprintf "byte-identical output (scores=%b)" scores)
        csv_out pnc_out;
      Alcotest.(check int)
        "same rows out" csv_rep.Pnrule.Serve.rows_out
        pnc_rep.Pnrule.Serve.rows_out;
      (* The CSV feed finds the "class" column, the columnar feed its
         label blocks: both must reach the same confusion counts. *)
      match (csv_rep.Pnrule.Serve.confusion, pnc_rep.Pnrule.Serve.confusion) with
      | Some a, Some b ->
        Alcotest.(check bool) "same confusion" true (a = b)
      | _ -> Alcotest.fail "both paths should produce a confusion matrix")
    [ false; true ]

let test_serve_column_permutation () =
  (* Same rows, columns stored in a different order than the model's:
     name-based resolution must put them back. *)
  let _, model = train_model ~seed:11 ~n:6_000 in
  let ds = mixed ~seed:12 ~n:2_000 in
  let permuted =
    D.create
      ~attrs:[| ds.D.attrs.(2); ds.D.attrs.(0); ds.D.attrs.(1) |]
      ~columns:[| ds.D.columns.(2); ds.D.columns.(0); ds.D.columns.(1) |]
      ~labels:ds.D.labels ~classes:ds.D.classes ()
  in
  let out, _ = serve_pnc ~model ds in
  let out_p, _ = serve_pnc ~model permuted in
  Alcotest.(check string) "column order is irrelevant" out out_p

let test_serve_dictionary_remap () =
  (* The file's dictionary lists the model's values in a different order
     plus one value the model has never seen. *)
  let _, model = train_model ~seed:13 ~n:6_000 in
  let n = 500 in
  let ds = mixed ~seed:14 ~n in
  let file_values = [| "z"; "NEW"; "a a"; "b\"q" |] in
  (* old code 0 -> "a a" is file code 2; 1 -> "b\"q" is 3; 2 -> "z" is 0;
     rows 17, 34, ... get the unknown value (file code 1). *)
  let recode = [| 2; 3; 0 |] in
  let cs =
    Array.init n (fun i ->
        if i mod 17 = 0 then 1
        else recode.(D.cat_value ds ~col:2 i))
  in
  let file_ds =
    D.create
      ~attrs:
        [| ds.D.attrs.(0); ds.D.attrs.(1); A.categorical "c with space" file_values |]
      ~columns:[| ds.D.columns.(0); ds.D.columns.(1); D.Cat cs |]
      ~labels:ds.D.labels ~classes:ds.D.classes ()
  in
  (match serve_pnc ~model file_ds with
  | _ -> Alcotest.fail "strict accepted an unknown dictionary value"
  | exception Pnrule.Serve.Error msg ->
    Alcotest.(check bool)
      "message names the value" true
      (contains ~sub:"\"NEW\"" msg));
  let _, rep = serve_pnc ~policy:R.Skip ~model file_ds in
  Alcotest.(check int)
    "skip drops the unknown-value rows"
    (n - ((n + 16) / 17))
    rep.Pnrule.Serve.rows_out;
  let _, rep = serve_pnc ~policy:R.Impute ~model file_ds in
  Alcotest.(check int) "impute keeps every row" n rep.Pnrule.Serve.rows_out;
  Alcotest.(check int)
    "impute patches the unknown cells" ((n + 16) / 17)
    rep.Pnrule.Serve.ingest.R.cells_imputed

let test_serve_missing_policies () =
  let _, model = train_model ~seed:15 ~n:6_000 in
  let n = 400 in
  let ds = mixed ~seed:16 ~n in
  let missing =
    [| Some (Array.init n (fun i -> i mod 9 = 0)); None; None |]
  in
  (match serve_pnc ~missing ~model ds with
  | _ -> Alcotest.fail "strict accepted a missing cell"
  | exception Pnrule.Serve.Error _ -> ());
  let _, rep = serve_pnc ~policy:R.Skip ~missing ~model ds in
  Alcotest.(check int)
    "skip drops flagged rows"
    (n - ((n + 8) / 9))
    rep.Pnrule.Serve.rows_out;
  let out_imp, rep = serve_pnc ~policy:R.Impute ~missing ~model ds in
  Alcotest.(check int) "impute keeps every row" n rep.Pnrule.Serve.rows_out;
  Alcotest.(check bool) "output non-empty" true (String.length out_imp > 0)

let test_serve_limit_and_corrupt () =
  let _, model = train_model ~seed:17 ~n:6_000 in
  let ds = mixed ~seed:18 ~n:1_000 in
  let s = C.to_string ds in
  (match
     Pnrule.Serve.predict_columnar_stream ~max_rows:999
       ~model:(Pnrule.Saved.Single model)
       ~source:(Pn_data.Stream.of_string s)
       ~write:ignore ()
   with
  | _ -> Alcotest.fail "limit not enforced"
  | exception Pnrule.Serve.Limit _ -> ());
  let truncated = String.sub s 0 (String.length s - 7) in
  match
    Pnrule.Serve.predict_columnar_stream ~model:(Pnrule.Saved.Single model)
      ~source:(Pn_data.Stream.of_string truncated)
      ~write:ignore ()
  with
  | _ -> Alcotest.fail "truncated file accepted"
  | exception Pnrule.Serve.Error msg ->
    Alcotest.(check bool)
      "wrapped as a columnar error" true
      (contains ~sub:"columnar:" msg)

let suite =
  [
    Alcotest.test_case "round-trip 10k" `Quick test_roundtrip;
    Alcotest.test_case "round-trip edge sizes" `Quick test_roundtrip_edge_sizes;
    Alcotest.test_case "round-trip empty" `Quick test_roundtrip_empty;
    Alcotest.test_case "file round-trip + overwrite" `Quick
      test_file_roundtrip_atomic;
    Alcotest.test_case "missing: strict raises" `Quick test_missing_strict;
    Alcotest.test_case "missing: skip drops" `Quick test_missing_skip;
    Alcotest.test_case "missing: impute fills" `Quick test_missing_impute;
    Alcotest.test_case "streaming reader + set_wanted" `Quick
      test_streaming_reader;
    Alcotest.test_case "serve: byte-identical with CSV" `Quick
      test_serve_byte_identical;
    Alcotest.test_case "serve: column permutation" `Quick
      test_serve_column_permutation;
    Alcotest.test_case "serve: dictionary remap" `Quick
      test_serve_dictionary_remap;
    Alcotest.test_case "serve: missing-value policies" `Quick
      test_serve_missing_policies;
    Alcotest.test_case "serve: limit and corrupt" `Quick
      test_serve_limit_and_corrupt;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_props
