(* The versioned model registry: directory layout, CURRENT-pointer
   semantics, boot-time resolution, canary warming, and the full staged
   rollout / rollback lifecycle against a live daemon. Every prediction
   is checked byte-for-byte against the batch [Serve] pipeline on the
   generation that should be serving — a flip that changes bytes it
   should not change fails loudly here. *)

module R = Pnrule.Registry
module Server = Pn_server.Server

let contains = Test_server.contains

let one_shot = Test_server.one_shot

let with_registry_dir f =
  let dir = Filename.temp_file "pnrule_registry" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* A second, distinct model trained on its own sample, plus the batch
   pipeline's exact bytes for it on the shared fixture feed — the
   reference for "generation 2 is really the one answering". *)
let fixture2 =
  lazy
    (let _, body, _, _ = Lazy.force Test_server.fixture in
     let spec = Pn_synth.Numerical.nsyn 1 in
     let train = Pn_synth.Numerical.generate spec ~seed:73 ~n:4_000 in
     let model2 =
       Pnrule.Saved.Single
         (Pnrule.Learner.train train ~target:Pn_synth.Numerical.target_class)
     in
     let csv = Filename.temp_file "pnrule_reg" ".csv" in
     let out = Filename.temp_file "pnrule_reg" ".out" in
     Fun.protect
       ~finally:(fun () ->
         Sys.remove csv;
         Sys.remove out)
       (fun () ->
         write_file csv body;
         ignore
           (Out_channel.with_open_bin out (fun oc ->
                Pnrule.Serve.predict_csv ~chunk_size:256 ~model:model2
                  ~input:csv ~output:oc ()));
         (model2, In_channel.with_open_bin out In_channel.input_all)))

(* ------------------------------------------------------------------ *)
(* Layout and pointer                                                   *)
(* ------------------------------------------------------------------ *)

let test_layout_and_pointer () =
  let model, _, _, _ = Lazy.force Test_server.fixture in
  (match R.open_dir "/nonexistent/pnrule-registry" with
  | _ -> Alcotest.fail "open_dir on a missing directory succeeded"
  | exception R.Error _ -> ());
  with_registry_dir (fun dir ->
      let reg = R.open_dir dir in
      Alcotest.(check (list int)) "empty registry" [] (R.generations reg);
      Alcotest.(check (option int)) "no pointer yet" None (R.current reg);
      (match R.load_initial reg with
      | _ -> Alcotest.fail "load_initial on an empty registry succeeded"
      | exception R.Error _ -> ());
      Alcotest.(check int) "first publish is 1" 1 (R.publish reg model);
      Alcotest.(check int) "second publish is 2" 2 (R.publish reg model);
      Alcotest.(check (list int)) "both on disk" [ 1; 2 ] (R.generations reg);
      (* Torn-temp and foreign names never parse as generations. *)
      List.iter
        (fun junk -> write_file (Filename.concat dir junk) "junk")
        [ "gen-2.model.tmp.17"; "foo.model"; "gen-0.model"; "gen-x.model" ];
      Alcotest.(check (list int))
        "junk ignored" [ 1; 2 ]
        (R.generations reg);
      Alcotest.(check (option int))
        "publish leaves the pointer alone" None (R.current reg);
      R.set_current reg 2;
      Alcotest.(check (option int)) "pointer flipped" (Some 2) (R.current reg);
      Alcotest.(check string)
        "pointer file is one line" "gen-2.model\n"
        (In_channel.with_open_bin
           (Filename.concat dir "CURRENT")
           In_channel.input_all);
      (match R.set_current reg 7 with
      | () -> Alcotest.fail "set_current accepted a missing generation"
      | exception R.Error _ -> ());
      Alcotest.(check (option int))
        "failed flip left the pointer" (Some 2) (R.current reg))

(* ------------------------------------------------------------------ *)
(* Boot-time resolution                                                 *)
(* ------------------------------------------------------------------ *)

let test_load_initial_precedence () =
  let model, _, _, _ = Lazy.force Test_server.fixture in
  with_registry_dir (fun dir ->
      let reg = R.open_dir dir in
      ignore (R.publish reg model);
      ignore (R.publish reg model);
      let g, _ = R.load_initial reg in
      Alcotest.(check int) "no pointer: highest generation" 2 g;
      R.set_current reg 1;
      let g, _ = R.load_initial reg in
      Alcotest.(check int) "valid pointer wins" 1 g;
      (* A pointer at a corrupt file falls back to the highest loadable
         generation instead of refusing to boot. *)
      write_file (R.gen_path reg 3) "not a model";
      write_file (Filename.concat dir "CURRENT") "gen-3.model\n";
      let g, _ = R.load_initial reg in
      Alcotest.(check int) "corrupt pointer target skipped" 2 g;
      (* A mangled pointer is treated as missing, not fatal. *)
      write_file (Filename.concat dir "CURRENT") "???";
      let g, _ = R.load_initial reg in
      Alcotest.(check int) "mangled pointer ignored" 2 g;
      (* Nothing loadable at all: a clean error, not a crash. *)
      write_file (R.gen_path reg 1) "zap";
      write_file (R.gen_path reg 2) "zap";
      match R.load_initial reg with
      | _ -> Alcotest.fail "load_initial with nothing loadable succeeded"
      | exception R.Error _ -> ())

(* ------------------------------------------------------------------ *)
(* Canary warming                                                       *)
(* ------------------------------------------------------------------ *)

let test_warm_canary () =
  let model, _, _, _ = Lazy.force Test_server.fixture in
  (* A healthy model warms silently. *)
  R.warm model;
  (* A model whose schema cannot produce a canary batch is rejected
     before it could ever be flipped live. *)
  let m =
    match model with
    | Pnrule.Saved.Single m -> m
    | Pnrule.Saved.Boosted _ -> Alcotest.fail "fixture model is Single"
  in
  let attrs = Array.copy m.Pnrule.Model.attrs in
  attrs.(0) <-
    { Pn_data.Attribute.name = "broken";
      kind = Pn_data.Attribute.Categorical [||]
    };
  let bad = Pnrule.Saved.Single { m with Pnrule.Model.attrs = attrs } in
  match R.warm bad with
  | () -> Alcotest.fail "canary accepted an unscorable model"
  | exception R.Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Staged rollout / rollback against a live daemon                      *)
(* ------------------------------------------------------------------ *)

let admin port action = one_shot port ~meth:"POST" ~path:("/admin/" ^ action) ()

let predict_bytes port ~body =
  let s, _, got = one_shot port ~meth:"POST" ~path:"/predict" ~body () in
  Alcotest.(check int) "predict status" 200 s;
  got

let test_rollout_rollback_e2e () =
  let model, body, expected, _ = Lazy.force Test_server.fixture in
  let model2, expected2 = Lazy.force fixture2 in
  with_registry_dir (fun dir ->
      let reg = R.open_dir dir in
      Alcotest.(check int) "gen-1 published" 1 (R.publish reg model);
      R.set_current reg 1;
      let config = { Server.default_config with chunk_size = 256 } in
      let boot () =
        Server.start ~config
          ~source:(Pn_server.Handler.Registry (R.open_dir dir))
          ()
      in
      let srv = boot () in
      Fun.protect
        ~finally:(fun () -> Server.stop srv)
        (fun () ->
          let port = Server.port srv in
          Alcotest.(check int) "boots on CURRENT" 1 (Server.generation srv);
          let _, _, j = one_shot port ~meth:"GET" ~path:"/model" () in
          Alcotest.(check bool)
            "/model names the registry source" true
            (contains j "\"source\": \"registry\"");
          Alcotest.(check bool)
            "/model generation 1" true
            (contains j "\"generation\": 1");
          Alcotest.(check string) "gen-1 answers" expected
            (predict_bytes port ~body);
          (* Nothing to roll out to yet. *)
          let s, _, b = admin port "rollout" in
          Alcotest.(check int) "rollout without candidate" 409 s;
          Alcotest.(check bool)
            "explains the missing candidate" true
            (contains b "no generation above");
          let s, _, _ = one_shot port ~meth:"GET" ~path:"/admin/rollout" () in
          Alcotest.(check int) "admin is POST-only" 405 s;
          (* Publish generation 2 and flip to it. *)
          Alcotest.(check int) "gen-2 published" 2 (R.publish reg model2);
          let s, _, b = admin port "rollout" in
          Alcotest.(check int) "rollout succeeds" 200 s;
          Alcotest.(check bool)
            "rollout reports the new generation" true
            (contains b "\"generation\": 2");
          Alcotest.(check int) "serving generation 2" 2 (Server.generation srv);
          Alcotest.(check (option int))
            "CURRENT persisted" (Some 2) (R.current reg);
          Alcotest.(check string) "gen-2 answers" expected2
            (predict_bytes port ~body);
          (* One-command rollback restores generation 1 exactly. *)
          let s, _, b = admin port "rollback" in
          Alcotest.(check int) "rollback succeeds" 200 s;
          Alcotest.(check bool)
            "rollback reports the generation" true
            (contains b "\"generation\": 1");
          Alcotest.(check int) "serving generation 1" 1 (Server.generation srv);
          Alcotest.(check (option int))
            "CURRENT rolled back" (Some 1) (R.current reg);
          Alcotest.(check string) "gen-1 answers again, byte-identical"
            expected (predict_bytes port ~body);
          let s, _, b = admin port "rollback" in
          Alcotest.(check int) "rollback below the floor" 409 s;
          Alcotest.(check bool)
            "explains the floor" true
            (contains b "no generation below");
          (* The generation gauge follows the rollback down — it tracks
             the on-disk generation number, not a load counter. *)
          let _, _, m = one_shot port ~meth:"GET" ~path:"/metrics" () in
          Alcotest.(check (float 0.0))
            "generation gauge rolled back" 1.0
            (Test_server.metric_value m "pnrule_model_generation");
          (* Explicit ?gen targeting. *)
          let s, _, _ =
            one_shot port ~meth:"POST" ~path:"/admin/rollout?gen=abc" ()
          in
          Alcotest.(check int) "non-numeric gen" 400 s;
          let s, _, b =
            one_shot port ~meth:"POST" ~path:"/admin/rollout?gen=9" ()
          in
          Alcotest.(check int) "absent gen" 409 s;
          Alcotest.(check bool)
            "names the absent generation" true
            (contains b "not in the registry");
          let s, _, _ =
            one_shot port ~meth:"POST" ~path:"/admin/rollout?gen=2" ()
          in
          Alcotest.(check int) "targeted rollout" 200 s;
          Alcotest.(check int) "targeted generation serving" 2
            (Server.generation srv);
          (* A corrupt candidate fails the staged load and keeps the
             serving generation untouched. *)
          write_file (R.gen_path reg 3) "not a model";
          let s, _, b = admin port "rollout" in
          Alcotest.(check int) "corrupt candidate refused" 500 s;
          Alcotest.(check bool)
            "still-serving generation named" true
            (contains b "still serving generation 2");
          Alcotest.(check int) "generation kept" 2 (Server.generation srv);
          Alcotest.(check (option int))
            "CURRENT kept" (Some 2) (R.current reg);
          Alcotest.(check string) "gen-2 still answers" expected2
            (predict_bytes port ~body);
          (* Flip telemetry reconciles with everything above. *)
          let _, _, m = one_shot port ~meth:"GET" ~path:"/metrics" () in
          let metric = Test_server.metric_value m in
          Alcotest.(check (float 0.0))
            "rollouts counted" 2.0
            (metric "pnrule_model_rollouts_total");
          Alcotest.(check (float 0.0))
            "rollbacks counted" 1.0
            (metric "pnrule_model_rollbacks_total");
          Alcotest.(check (float 0.0))
            "failures counted" 1.0
            (metric "pnrule_model_rollout_failures_total");
          Alcotest.(check (float 0.0))
            "not warming" 0.0 (metric "pnrule_warming");
          Alcotest.(check (float 0.0))
            "generation gauge" 2.0 (metric "pnrule_model_generation");
          (* SIGHUP-style reload re-resolves the pointer — an operator
             can repoint CURRENT by hand — but never advances past it. *)
          R.set_current reg 1;
          (match Server.reload srv with
          | Ok () -> ()
          | Error m -> Alcotest.failf "reload failed: %s" m);
          Alcotest.(check int) "reload follows the pointer" 1
            (Server.generation srv);
          Alcotest.(check string) "pointer's generation answers" expected
            (predict_bytes port ~body);
          R.set_current reg 2;
          match Server.reload srv with
          | Ok () -> ()
          | Error m -> Alcotest.failf "reload failed: %s" m);
      (* Restart persistence: a fresh daemon serves what CURRENT names. *)
      let srv = boot () in
      Fun.protect
        ~finally:(fun () -> Server.stop srv)
        (fun () ->
          let port = Server.port srv in
          Alcotest.(check int) "restart resumes CURRENT" 2
            (Server.generation srv);
          Alcotest.(check string) "restart answers byte-identically"
            expected2 (predict_bytes port ~body)))

let suite =
  [
    Alcotest.test_case "layout and CURRENT pointer" `Quick
      test_layout_and_pointer;
    Alcotest.test_case "load_initial precedence and fallbacks" `Quick
      test_load_initial_precedence;
    Alcotest.test_case "canary warming gates bad models" `Quick
      test_warm_canary;
    Alcotest.test_case "staged rollout, rollback, restart" `Quick
      test_rollout_rollback_e2e;
  ]
