(* Tests for model persistence and the multi-class wrapper. *)

module A = Pn_data.Attribute
module D = Pn_data.Dataset
module M = Pnrule.Model
module S = Pnrule.Serialize
module MC = Pnrule.Multiclass

let mixed_problem ~seed ~n =
  let rng = Pn_util.Rng.create seed in
  let xs = Array.make n 0.0 and cs = Array.make n 0 and labels = Array.make n 0 in
  for i = 0 to n - 1 do
    xs.(i) <- Pn_util.Rng.float rng 100.0;
    cs.(i) <- Pn_util.Rng.int rng 3;
    let r = Pn_util.Rng.float rng 1.0 in
    if r < 0.03 then begin
      labels.(i) <- 1;
      xs.(i) <- 20.0 +. Pn_util.Rng.float rng 3.0
    end
    else if r < 0.06 then begin
      labels.(i) <- 2;
      cs.(i) <- 2;
      xs.(i) <- 70.0 +. Pn_util.Rng.float rng 3.0
    end
  done;
  D.create
    ~attrs:[| A.numeric "x"; A.categorical "c with space" [| "a a"; "b\"q"; "z" |] |]
    ~columns:[| D.Num xs; D.Cat cs |]
    ~labels
    ~classes:[| "normal"; "attack one"; "attack two" |]
    ()

(* ------------------------------------------------------------------ *)
(* Serialization                                                        *)
(* ------------------------------------------------------------------ *)

let test_roundtrip_predictions () =
  let ds = mixed_problem ~seed:1 ~n:12_000 in
  let model = Pnrule.Learner.train ds ~target:1 in
  let back = S.of_string (S.to_string model) in
  Alcotest.(check int) "target" model.M.target back.M.target;
  Alcotest.(check bool) "classes" true (model.M.classes = back.M.classes);
  Alcotest.(check bool) "attrs survive quoting" true (model.M.attrs = back.M.attrs);
  for i = 0 to D.n_records ds - 1 do
    if M.predict model ds i <> M.predict back ds i then
      Alcotest.failf "prediction differs at %d" i;
    let s1 = M.score model ds i and s2 = M.score back ds i in
    if Float.abs (s1 -. s2) > 1e-12 then Alcotest.failf "score differs at %d" i
  done

let test_roundtrip_stable () =
  let ds = mixed_problem ~seed:2 ~n:8_000 in
  let model = Pnrule.Learner.train ds ~target:2 in
  let s1 = S.to_string model in
  let s2 = S.to_string (S.of_string s1) in
  Alcotest.(check string) "fixed point" s1 s2

let test_file_roundtrip () =
  let ds = mixed_problem ~seed:3 ~n:8_000 in
  let model = Pnrule.Learner.train ds ~target:1 in
  let path = Filename.temp_file "pnrule_model" ".pn" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      S.save model path;
      let back = S.load path in
      Alcotest.(check bool) "same predictions" true
        (M.predict_all model ds = M.predict_all back ds))

let test_corrupt_inputs () =
  let raises s =
    try
      ignore (S.of_string s);
      Alcotest.failf "expected Corrupt for %S" s
    with S.Corrupt _ -> ()
  in
  raises "";
  raises "pnrule-model v2\n";
  raises "pnrule-model v1\ntarget x\n";
  raises "pnrule-model v1\ntarget 0\nclasses 1\n\"a\"\nattrs 0\ndecision 0x1p-1 true\np_rules 1\nrule notanint\n";
  (* Score matrix height mismatch. *)
  raises
    "pnrule-model v1\ntarget 0\nclasses 1\n \"a\"\nattrs 0\ndecision 0x1p-1 true\n\
     p_rules 1\n  rule 1\n    le 0 0x1p0\nn_rules 0\nscores 0 0\n"

let test_backslash_names () =
  (* Regression: a name ending in a backslash serializes as "a\\"; the
     tokenizer used to misread the escaped backslash as escaping the
     closing quote and overrun the literal. *)
  let model =
    {
      M.target = 0;
      classes = [| "a\\"; "q\"\\" |];
      attrs = [| A.categorical "c\\" [| "v\\"; "plain" |] |];
      p_rules = Pn_rules.Rule_list.of_list [];
      n_rules = Pn_rules.Rule_list.of_list [];
      scores = [||];
      params = Pnrule.Params.default;
    }
  in
  let back = S.of_string (S.to_string model) in
  Alcotest.(check bool) "classes survive" true (back.M.classes = model.M.classes);
  Alcotest.(check bool) "attrs survive" true (back.M.attrs = model.M.attrs)

(* Arbitrary valid models: conditions agree with attribute kinds, the
   score matrix has the dimensions [of_string] enforces, and floats
   range over the awkward cases (nan, infinities, subnormals). *)
let model_gen =
  let open QCheck.Gen in
  let name = oneofl [ "x"; "a b"; "q\"uote"; "back\\slash"; "" ] in
  let threshold =
    oneofl [ 0.5; -1.5e300; 4e-320; Float.infinity; Float.neg_infinity; Float.nan ]
  in
  let attr =
    name >>= fun n ->
    bool >>= fun numeric ->
    if numeric then return (A.numeric n)
    else
      int_range 1 3 >>= fun arity ->
      return (A.categorical n (Array.init arity (fun v -> Printf.sprintf "v%d" v)))
  in
  array_size (int_range 1 4) attr >>= fun attrs ->
  let condition =
    int_range 0 (Array.length attrs - 1) >>= fun col ->
    match attrs.(col).A.kind with
    | A.Categorical values ->
      int_range 0 (Array.length values - 1) >>= fun value ->
      return (Pn_rules.Condition.Cat_eq { col; value })
    | A.Numeric ->
      threshold >>= fun t ->
      oneofl
        [
          Pn_rules.Condition.Num_le { col; threshold = t };
          Pn_rules.Condition.Num_ge { col; threshold = t };
          Pn_rules.Condition.Num_range { col; lo = t; hi = t };
        ]
  in
  let rule = list_size (int_range 1 3) condition >>= fun cs -> return (Pn_rules.Rule.of_conditions cs) in
  let rules = list_size (int_range 0 3) rule >>= fun rs -> return (Pn_rules.Rule_list.of_list rs) in
  rules >>= fun p_rules ->
  rules >>= fun n_rules ->
  let n_p = Pn_rules.Rule_list.length p_rules in
  let cols = if n_p = 0 then 0 else Pn_rules.Rule_list.length n_rules + 1 in
  array_size (return n_p) (array_size (return cols) threshold) >>= fun scores ->
  array_size (int_range 1 3) name >>= fun classes ->
  int_range 0 (Array.length classes - 1) >>= fun target ->
  threshold >>= fun score_threshold ->
  bool >>= fun use_scoring ->
  return
    {
      M.target;
      classes;
      attrs;
      p_rules;
      n_rules;
      scores;
      params = { Pnrule.Params.default with score_threshold; use_scoring };
    }

(* A corruption: flip one body byte (past the version line, which is not
   under the checksum's protection against a v2->v1 downgrade) or chop
   the tail off. Either way the reader must answer with [Corrupt] — not
   crash with a stray exception, and never return a model as if nothing
   happened. *)
let corruption_gen =
  let open QCheck.Gen in
  model_gen >>= fun model ->
  let s = S.to_string model in
  let body_start = String.index s '\n' + 1 in
  oneof
    [
      ( int_range body_start (String.length s - 1) >>= fun pos ->
        int_range 1 255 >>= fun delta ->
        let b = Bytes.of_string s in
        Bytes.set b pos (Char.chr ((Char.code (Bytes.get b pos) + delta) land 0xff));
        return (Bytes.to_string b) );
      ( int_range 0 (String.length s - 1) >>= fun keep ->
        return (String.sub s 0 keep) );
    ]

let qcheck_props =
  [
    QCheck.Test.make ~count:300 ~name:"serialize round-trip is a fixed point"
      (QCheck.make model_gen)
      (fun model ->
        (* Textual fixed point is the right equality here: nan <> nan
           under (=), but "%h"-printed text is stable. *)
        let s1 = S.to_string model in
        let back = S.of_string s1 in
        s1 = S.to_string back
        && back.M.classes = model.M.classes
        && back.M.attrs = model.M.attrs
        && back.M.target = model.M.target);
    QCheck.Test.make ~count:500
      ~name:"serialize: corrupted bytes always raise Corrupt"
      (QCheck.make corruption_gen)
      (fun corrupted ->
        match S.of_string corrupted with
        | _ -> QCheck.Test.fail_report "corruption accepted silently"
        | exception S.Corrupt _ -> true
        | exception e ->
          QCheck.Test.fail_reportf "leaked exception %s" (Printexc.to_string e));
  ]

(* ------------------------------------------------------------------ *)
(* Multi-class                                                          *)
(* ------------------------------------------------------------------ *)

let test_multiclass_accuracy () =
  let train = mixed_problem ~seed:4 ~n:15_000 in
  let test = mixed_problem ~seed:5 ~n:10_000 in
  let mc = MC.train train in
  let acc = MC.accuracy mc test in
  Alcotest.(check bool) (Printf.sprintf "accuracy %.3f > 0.95" acc) true (acc > 0.95);
  (* Rare classes specifically must be found, not drowned by accuracy. *)
  let cm1 = MC.confusion mc test ~target:1 in
  Alcotest.(check bool) "attack one recalled" true
    (Pn_metrics.Confusion.recall cm1 > 0.8)

let test_multiclass_scores_shape () =
  let train = mixed_problem ~seed:6 ~n:10_000 in
  let mc = MC.train train in
  let s = MC.scores mc train 0 in
  Alcotest.(check int) "one score per class" 3 (Array.length s);
  Array.iter (fun v -> if v < 0.0 || v > 1.0 then Alcotest.failf "score %f" v) s

let test_multiclass_fallback () =
  let train = mixed_problem ~seed:7 ~n:10_000 in
  let mc = MC.train train in
  Alcotest.(check int) "fallback is majority" 0 mc.MC.fallback;
  (* A record no model claims gets the majority class. *)
  let probe =
    D.create
      ~attrs:train.D.attrs
      ~columns:[| D.Num [| 99.9 |]; D.Cat [| 0 |] |]
      ~labels:[| 0 |] ~classes:train.D.classes ()
  in
  Alcotest.(check int) "fallback used" 0 (MC.predict mc probe 0)

let test_multiclass_params_for () =
  let train = mixed_problem ~seed:8 ~n:10_000 in
  let params_for cls =
    if cls = 1 then
      Some { Pnrule.Params.default with max_p_rule_length = Some 1 }
    else None
  in
  let mc = MC.train ~params_for train in
  Array.iter
    (fun (cls, model) ->
      if cls = 1 then
        List.iter
          (fun r ->
            Alcotest.(check bool) "P1 for class 1" true
              (Pn_rules.Rule.n_conditions r <= 1))
          (Pn_rules.Rule_list.to_list model.M.p_rules))
    mc.MC.models

let suite =
  [
    Alcotest.test_case "serialize: prediction roundtrip" `Quick test_roundtrip_predictions;
    Alcotest.test_case "serialize: fixed point" `Quick test_roundtrip_stable;
    Alcotest.test_case "serialize: file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "serialize: corrupt inputs raise" `Quick test_corrupt_inputs;
    Alcotest.test_case "serialize: backslash-heavy names" `Quick test_backslash_names;
    Alcotest.test_case "multiclass: accuracy and rare recall" `Quick test_multiclass_accuracy;
    Alcotest.test_case "multiclass: score vector" `Quick test_multiclass_scores_shape;
    Alcotest.test_case "multiclass: fallback class" `Quick test_multiclass_fallback;
    Alcotest.test_case "multiclass: per-class params" `Quick test_multiclass_params_for;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_props
