(* Tests for pn_data: dataset engine, views, builder, CSV. *)

module A = Pn_data.Attribute
module D = Pn_data.Dataset
module V = Pn_data.View
module B = Pn_data.Builder
module Csv = Pn_data.Csv_io

let check_float = Alcotest.(check (float 1e-9))

let tiny () =
  (* 6 records, 1 numeric + 1 categorical attribute, classes neg/pos. *)
  D.create
    ~attrs:[| A.numeric "x"; A.categorical "color" [| "red"; "blue" |] |]
    ~columns:
      [|
        D.Num [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 |];
        D.Cat [| 0; 1; 0; 1; 0; 1 |];
      |]
    ~labels:[| 0; 0; 1; 1; 0; 1 |]
    ~classes:[| "neg"; "pos" |]
    ()

(* ------------------------------------------------------------------ *)
(* Attribute                                                            *)
(* ------------------------------------------------------------------ *)

let test_attribute () =
  let num = A.numeric "x" and cat = A.categorical "c" [| "a"; "b"; "c" |] in
  Alcotest.(check bool) "numeric" true (A.is_numeric num);
  Alcotest.(check bool) "categorical" false (A.is_numeric cat);
  Alcotest.(check int) "arity" 3 (A.arity cat);
  Alcotest.(check string) "value name" "b" (A.value_name cat 1);
  Alcotest.check_raises "arity of numeric"
    (Invalid_argument "Attribute.arity: numeric attribute") (fun () ->
      ignore (A.arity num))

(* ------------------------------------------------------------------ *)
(* Dataset                                                              *)
(* ------------------------------------------------------------------ *)

let test_dataset_accessors () =
  let ds = tiny () in
  Alcotest.(check int) "n" 6 (D.n_records ds);
  Alcotest.(check int) "attrs" 2 (D.n_attrs ds);
  Alcotest.(check int) "classes" 2 (D.n_classes ds);
  check_float "num" 3.0 (D.num_value ds ~col:0 2);
  Alcotest.(check int) "cat" 1 (D.cat_value ds ~col:1 3);
  Alcotest.(check int) "label" 1 (D.label ds 2);
  check_float "weight default" 1.0 (D.weight ds 0);
  Alcotest.(check int) "class_index" 1 (D.class_index ds "pos");
  Alcotest.check_raises "missing class" Not_found (fun () ->
      ignore (D.class_index ds "nope"))

let test_dataset_validation () =
  let attrs = [| A.numeric "x" |] in
  let raises f = try f (); Alcotest.fail "expected Invalid_argument" with Invalid_argument _ -> () in
  raises (fun () ->
      ignore (D.create ~attrs ~columns:[| D.Num [| 1.0 |] |] ~labels:[| 0; 0 |] ~classes:[| "a" |] ()));
  raises (fun () ->
      ignore (D.create ~attrs ~columns:[| D.Cat [| 0 |] |] ~labels:[| 0 |] ~classes:[| "a" |] ()));
  raises (fun () ->
      ignore (D.create ~attrs ~columns:[| D.Num [| 1.0 |] |] ~labels:[| 5 |] ~classes:[| "a" |] ()));
  raises (fun () ->
      ignore
        (D.create
           ~attrs:[| A.categorical "c" [| "v" |] |]
           ~columns:[| D.Cat [| 3 |] |] ~labels:[| 0 |] ~classes:[| "a" |] ()));
  raises (fun () ->
      ignore
        (D.create ~weights:[| -1.0 |] ~attrs ~columns:[| D.Num [| 1.0 |] |]
           ~labels:[| 0 |] ~classes:[| "a" |] ()))

let test_class_counts () =
  let ds = tiny () in
  Alcotest.(check (array (float 1e-9))) "counts" [| 3.0; 3.0 |] (D.class_counts ds);
  check_float "class weight" 3.0 (D.class_weight ds 1);
  check_float "total" 6.0 (D.total_weight ds)

let test_stratify () =
  let ds = tiny () in
  let st = D.stratify ds ~target:1 in
  (* Target aggregate weight equals non-target aggregate weight. *)
  let counts = D.class_counts st in
  check_float "balanced" counts.(0) counts.(1);
  (* Non-target weights untouched; original dataset unchanged. *)
  check_float "non-target unit" 1.0 (D.weight st 0);
  check_float "original intact" 1.0 (D.weight ds 2)

let test_subset_append () =
  let ds = tiny () in
  let sub = D.subset ds [| 2; 0 |] in
  Alcotest.(check int) "subset size" 2 (D.n_records sub);
  check_float "subset order" 3.0 (D.num_value sub ~col:0 0);
  Alcotest.(check int) "subset label" 1 (D.label sub 0);
  let joined = D.append sub sub in
  Alcotest.(check int) "append size" 4 (D.n_records joined);
  check_float "append content" 3.0 (D.num_value joined ~col:0 2)

let test_binary_labels () =
  let ds = tiny () in
  Alcotest.(check (array bool)) "binary"
    [| false; false; true; true; false; true |]
    (D.binary_labels ds ~target:1)

let test_with_weights () =
  let ds = tiny () in
  let w = [| 2.0; 2.0; 2.0; 2.0; 2.0; 2.0 |] in
  check_float "reweighted" 12.0 (D.total_weight (D.with_weights ds w));
  Alcotest.check_raises "bad length" (Invalid_argument "Dataset.with_weights: length")
    (fun () -> ignore (D.with_weights ds [| 1.0 |]))

(* ------------------------------------------------------------------ *)
(* View                                                                 *)
(* ------------------------------------------------------------------ *)

let test_view_basics () =
  let ds = tiny () in
  let v = V.all ds in
  Alcotest.(check int) "all size" 6 (V.size v);
  let evens = V.filter v (fun i -> i mod 2 = 0) in
  Alcotest.(check int) "filter" 3 (V.size evens);
  Alcotest.(check int) "record" 2 (V.record evens 1);
  let pos, neg = V.partition v (fun i -> D.label ds i = 1) in
  Alcotest.(check int) "partition pos" 3 (V.size pos);
  Alcotest.(check int) "partition neg" 3 (V.size neg);
  check_float "total weight" 6.0 (V.total_weight v);
  check_float "class weight" 3.0 (V.class_weight v 1);
  let p, n = V.binary_weights v ~target:1 in
  check_float "binary pos" 3.0 p;
  check_float "binary neg" 3.0 n;
  Alcotest.(check int) "count_class" 3 (V.count_class v 0)

let test_view_sorted () =
  let ds =
    D.create
      ~attrs:[| A.numeric "x" |]
      ~columns:[| D.Num [| 3.0; 1.0; 2.0 |] |]
      ~labels:[| 0; 0; 0 |] ~classes:[| "a" |] ()
  in
  Alcotest.(check (array int)) "sorted" [| 1; 2; 0 |]
    (V.sorted_by_num (V.all ds) ~col:0)

let test_view_split () =
  let n = 200 in
  let labels = Array.init n (fun i -> if i mod 100 = 0 then 1 else 0) in
  let ds =
    D.create
      ~attrs:[| A.numeric "x" |]
      ~columns:[| D.Num (Array.init n float_of_int) |]
      ~labels ~classes:[| "a"; "b" |] ()
  in
  let rng = Pn_util.Rng.create 17 in
  let left, right = V.split (V.all ds) rng ~left_fraction:(2.0 /. 3.0) in
  Alcotest.(check int) "sizes sum" n (V.size left + V.size right);
  (* Rare class (2 records) must appear on both sides. *)
  Alcotest.(check int) "rare left" 1 (V.count_class left 1);
  Alcotest.(check int) "rare right" 1 (V.count_class right 1);
  (* No index on both sides. *)
  let seen = Hashtbl.create n in
  V.iter left (fun i -> Hashtbl.add seen i ());
  V.iter right (fun i ->
      if Hashtbl.mem seen i then Alcotest.failf "record %d on both sides" i)

let test_view_materialize () =
  let ds = tiny () in
  let v = V.filter (V.all ds) (fun i -> D.label ds i = 1) in
  let m = V.materialize v in
  Alcotest.(check int) "materialized" 3 (D.n_records m);
  Alcotest.(check (array (float 1e-9))) "counts" [| 0.0; 3.0 |] (D.class_counts m)

(* ------------------------------------------------------------------ *)
(* Builder                                                              *)
(* ------------------------------------------------------------------ *)

let test_builder () =
  let attrs = [| A.numeric "x"; A.categorical "c" [| "a"; "b" |] |] in
  let b = B.create ~attrs ~classes:[| "no"; "yes" |] in
  B.add_row b [| B.Fnum 1.5; B.Fcat 1 |] ~label:0;
  B.add_row b ~weight:2.0 [| B.Fnum 2.5; B.Fcat 0 |] ~label:1;
  Alcotest.(check int) "length" 2 (B.length b);
  let ds = B.to_dataset b in
  Alcotest.(check int) "rows" 2 (D.n_records ds);
  check_float "cell" 2.5 (D.num_value ds ~col:0 1);
  Alcotest.(check int) "cat cell" 1 (D.cat_value ds ~col:1 0);
  check_float "weight kept" 2.0 (D.weight ds 1);
  Alcotest.(check int) "label" 1 (D.label ds 1)

let test_builder_validation () =
  let attrs = [| A.numeric "x" |] in
  let b = B.create ~attrs ~classes:[| "a" |] in
  let raises f = try f (); Alcotest.fail "expected Invalid_argument" with Invalid_argument _ -> () in
  raises (fun () -> B.add_row b [| B.Fcat 0 |] ~label:0);
  raises (fun () -> B.add_row b [| B.Fnum 1.0; B.Fnum 2.0 |] ~label:0);
  raises (fun () -> B.add_row b [| B.Fnum 1.0 |] ~label:9)

(* ------------------------------------------------------------------ *)
(* CSV                                                                  *)
(* ------------------------------------------------------------------ *)

let test_csv_parse () =
  let ds =
    Csv.parse_string "x,color,class\n1.5,red,yes\n2.5,blue,no\n3.5,red,yes\n"
  in
  Alcotest.(check int) "rows" 3 (D.n_records ds);
  Alcotest.(check bool) "x numeric" true (A.is_numeric ds.D.attrs.(0));
  Alcotest.(check bool) "color categorical" false (A.is_numeric ds.D.attrs.(1));
  check_float "value" 2.5 (D.num_value ds ~col:0 1);
  Alcotest.(check string) "classes in first-seen order" "yes" ds.D.classes.(0);
  Alcotest.(check int) "label" 1 (D.label ds 1)

let test_csv_class_column () =
  let ds =
    Csv.parse_string ~class_column:"label" "label,x\nyes,1\nno,2\n"
  in
  Alcotest.(check int) "attrs" 1 (D.n_attrs ds);
  Alcotest.(check string) "attr name" "x" ds.D.attrs.(0).A.name;
  Alcotest.(check int) "label" 1 (D.label ds 1)

let test_csv_quoting () =
  let ds = Csv.parse_string "name,class\n\"a,b\",x\n\"say \"\"hi\"\"\",y\n" in
  (match ds.D.attrs.(0).A.kind with
  | A.Categorical values ->
    Alcotest.(check string) "comma kept" "a,b" values.(0);
    Alcotest.(check string) "escaped quote" "say \"hi\"" values.(1)
  | A.Numeric -> Alcotest.fail "expected categorical");
  Alcotest.(check int) "rows" 2 (D.n_records ds)

let test_csv_errors () =
  let raises s = try ignore (Csv.parse_string s); Alcotest.fail "expected Parse_error" with Csv.Parse_error _ -> () in
  raises "a,b\n1\n";
  raises "";
  (try ignore (Csv.parse_string ~class_column:"nope" "a,b\n1,2\n");
       Alcotest.fail "expected Parse_error"
   with Csv.Parse_error _ -> ())

let test_csv_roundtrip () =
  let ds = tiny () in
  let path = Filename.temp_file "pnrule_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.save ds path;
      let back = Csv.load path in
      Alcotest.(check int) "rows" (D.n_records ds) (D.n_records back);
      for i = 0 to D.n_records ds - 1 do
        check_float "numeric cell" (D.num_value ds ~col:0 i) (D.num_value back ~col:0 i);
        Alcotest.(check string) "cat cell"
          (A.value_name ds.D.attrs.(1) (D.cat_value ds ~col:1 i))
          (A.value_name back.D.attrs.(1) (D.cat_value back ~col:1 i));
        Alcotest.(check string) "label"
          ds.D.classes.(D.label ds i)
          back.D.classes.(D.label back i)
      done)

let test_csv_crlf () =
  (* Regression: CRLF files used to leave a trailing '\r' glued to the
     last cell, so ~class_column:"label" failed on "label\r". *)
  let ds =
    Csv.parse_string ~class_column:"label" "x,label\r\n1.5,yes\r\n2.5,no\r\n"
  in
  Alcotest.(check int) "rows" 2 (D.n_records ds);
  Alcotest.(check string) "attr unchanged" "x" ds.D.attrs.(0).A.name;
  Alcotest.(check string) "label clean" "no" ds.D.classes.(D.label ds 1);
  (* Quoted fields may span physical lines. *)
  let ds2 = Csv.parse_string "note,class\n\"a\nb\",x\n" in
  match ds2.D.attrs.(0).A.kind with
  | A.Categorical values -> Alcotest.(check string) "newline kept" "a\nb" values.(0)
  | A.Numeric -> Alcotest.fail "expected categorical"

let test_csv_nan_inf_categorical () =
  (* Identifier-like literals that parse as floats (nan, inf, infinity)
     must not flip a column to numeric: they are almost always IDs or
     category names in real data. *)
  let ds = Csv.parse_string "v,class\nnan,x\ninf,y\nInfinity,x\n" in
  Alcotest.(check bool) "nan/inf stay categorical" false (A.is_numeric ds.D.attrs.(0));
  (* Ordinary numerics still infer numeric, including exponent forms. *)
  let ds2 = Csv.parse_string "v,class\n1e3,x\n-2.5,y\n" in
  Alcotest.(check bool) "exponent numeric" true (A.is_numeric ds2.D.attrs.(0))

let test_csv_bare_quote () =
  (* RFC-4180 leaves a quote inside an unquoted field undefined; the
     decoder rejects it deterministically rather than guessing. *)
  (try
     ignore (Csv.parse_string "v,class\na\"b,x\n");
     Alcotest.fail "expected Parse_error"
   with Csv.Parse_error msg ->
     Alcotest.(check bool) "line number in message" true
       (String.length msg > 0 && msg.[0] = 'l'));
  (* Under Skip the bad row is dropped and counted, the rest loads. *)
  let ds, report =
    Csv.parse_string_with_report ~policy:Pn_data.Ingest_report.Skip
      "v,class\na\"b,x\nok,y\n"
  in
  Alcotest.(check int) "one row kept" 1 (D.n_records ds);
  Alcotest.(check int) "one skipped" 1 report.Pn_data.Ingest_report.rows_skipped;
  Alcotest.(check int) "errors sampled" 1
    (List.length report.Pn_data.Ingest_report.errors)

let test_csv_skip_policy () =
  let text = "x,c,class\n1,red,yes\nbad,row\n2,?,no\n3,blue,yes\n" in
  let ds, report =
    Csv.parse_string_with_report ~policy:Pn_data.Ingest_report.Skip text
  in
  (* The arity-mismatch row and the "?" row are both dropped. *)
  Alcotest.(check int) "rows kept" 2 (D.n_records ds);
  Alcotest.(check int) "read" 4 report.Pn_data.Ingest_report.rows_read;
  Alcotest.(check int) "kept" 2 report.Pn_data.Ingest_report.rows_kept;
  Alcotest.(check int) "skipped" 2 report.Pn_data.Ingest_report.rows_skipped;
  Alcotest.(check int) "imputed" 0 report.Pn_data.Ingest_report.cells_imputed;
  check_float "x survives" 3.0 (D.num_value ds ~col:0 1);
  (* Strict on the same text fails (legacy behaviour). *)
  try
    ignore (Csv.parse_string text);
    Alcotest.fail "expected Parse_error"
  with Csv.Parse_error _ -> ()

let test_csv_impute_policy () =
  let text =
    "x,c,class\n1,red,yes\n?,red,no\n3,?,yes\n5,blue,no\n7,red,yes\n?,?,\n"
  in
  let ds, report =
    Csv.parse_string_with_report ~policy:Pn_data.Ingest_report.Impute text
  in
  (* The last row has no class label: dropped, not imputed. *)
  Alcotest.(check int) "rows kept" 5 (D.n_records ds);
  Alcotest.(check int) "skipped" 1 report.Pn_data.Ingest_report.rows_skipped;
  Alcotest.(check int) "two cells imputed" 2 report.Pn_data.Ingest_report.cells_imputed;
  (* Numeric "?" takes the column median of present values {1,3,5,7} = 4. *)
  check_float "median imputed" 4.0 (D.num_value ds ~col:0 1);
  (* Categorical "?" takes the majority value (red: 3 of 4 present). *)
  Alcotest.(check string) "majority imputed" "red"
    (A.value_name ds.D.attrs.(1) (D.cat_value ds ~col:1 2))

let test_dataset_equal () =
  let ds = tiny () in
  Alcotest.(check bool) "reflexive" true (D.equal ds ds);
  Alcotest.(check bool) "copy equal" true (D.equal ds (D.subset ds [| 0; 1; 2; 3; 4; 5 |]));
  Alcotest.(check bool) "subset differs" false (D.equal ds (D.subset ds [| 0 |]));
  (* nan compares equal to itself so imputed placeholders don't poison
     the equivalence tests. *)
  let mk v =
    D.create
      ~attrs:[| A.numeric "x" |]
      ~columns:[| D.Num [| v |] |]
      ~labels:[| 0 |] ~classes:[| "a" |] ()
  in
  Alcotest.(check bool) "nan = nan" true (D.equal (mk Float.nan) (mk Float.nan));
  Alcotest.(check bool) "nan <> 1" false (D.equal (mk Float.nan) (mk 1.0))

(* ------------------------------------------------------------------ *)
(* ARFF                                                                 *)
(* ------------------------------------------------------------------ *)

module Arff = Pn_data.Arff_io

let test_arff_parse () =
  let ds =
    Arff.parse_string
      "% comment\n@relation demo\n@attribute x numeric\n@attribute 'my \
       color' {red,blue}\n@attribute class {yes,no}\n@data\n1.5,red,yes\n\
       2.5,blue,no\n"
  in
  Alcotest.(check int) "rows" 2 (D.n_records ds);
  Alcotest.(check int) "attrs" 2 (D.n_attrs ds);
  Alcotest.(check string) "quoted name" "my color" ds.D.attrs.(1).A.name;
  check_float "numeric" 2.5 (D.num_value ds ~col:0 1);
  Alcotest.(check int) "nominal code" 1 (D.cat_value ds ~col:1 1);
  Alcotest.(check string) "class order as declared" "yes" ds.D.classes.(0);
  Alcotest.(check int) "label" 1 (D.label ds 1)

let test_arff_class_attribute () =
  let ds =
    Arff.parse_string ~class_attribute:"lbl"
      "@relation t\n@attribute lbl {a,b}\n@attribute x numeric\n@data\na,1\nb,2\n"
  in
  Alcotest.(check int) "attrs" 1 (D.n_attrs ds);
  Alcotest.(check int) "label" 1 (D.label ds 1)

let test_arff_errors () =
  let raises s =
    try
      ignore (Arff.parse_string s);
      Alcotest.failf "expected Parse_error for %S" s
    with Arff.Parse_error _ -> ()
  in
  raises "@relation t\n@attribute x numeric\n@data\n1\n";
  raises "@relation t\n@attribute x numeric\n@attribute class {a}\n@data\n1\n";
  raises "@relation t\n@attribute x numeric\n@attribute class {a,b}\n@data\n?,a\n";
  raises "@relation t\n@attribute x numeric\n@attribute class numeric\n@data\n1,2\n";
  raises "@relation t\n@attribute x numeric\n@attribute class {a,b}\n@data\n1,zzz\n"

let test_arff_roundtrip () =
  let ds = tiny () in
  let path = Filename.temp_file "pnrule_test" ".arff" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Arff.save ds path;
      let back = Arff.load path in
      Alcotest.(check int) "rows" (D.n_records ds) (D.n_records back);
      for i = 0 to D.n_records ds - 1 do
        check_float "numeric cell" (D.num_value ds ~col:0 i) (D.num_value back ~col:0 i);
        Alcotest.(check int) "cat cell" (D.cat_value ds ~col:1 i) (D.cat_value back ~col:1 i);
        Alcotest.(check int) "label" (D.label ds i) (D.label back i)
      done)

let test_arff_policies () =
  let text =
    "@relation t\n@attribute x numeric\n@attribute c {red,blue}\n@attribute \
     class {a,b}\n@data\n1,red,a\n?,red,b\n3,?,a\n5,blue,b\n1,red,?\n"
  in
  (* Strict: the legacy failure on any "?". *)
  (try
     ignore (Arff.parse_string text);
     Alcotest.fail "expected Parse_error"
   with Arff.Parse_error _ -> ());
  (* Skip: rows with "?" cells or class are dropped and counted. *)
  let ds, report =
    Arff.parse_string_with_report ~policy:Pn_data.Ingest_report.Skip text
  in
  Alcotest.(check int) "skip keeps clean rows" 2 (D.n_records ds);
  Alcotest.(check int) "skip counts" 3 report.Pn_data.Ingest_report.rows_skipped;
  (* Impute: cell "?" filled (median of {1,3,5} = 3; majority red), the
     missing-class row still dropped. *)
  let ds, report =
    Arff.parse_string_with_report ~policy:Pn_data.Ingest_report.Impute text
  in
  Alcotest.(check int) "impute keeps rows" 4 (D.n_records ds);
  Alcotest.(check int) "impute drops unlabeled" 1 report.Pn_data.Ingest_report.rows_skipped;
  Alcotest.(check int) "cells imputed" 2 report.Pn_data.Ingest_report.cells_imputed;
  check_float "numeric median" 3.0 (D.num_value ds ~col:0 1);
  Alcotest.(check string) "nominal majority" "red"
    (A.value_name ds.D.attrs.(1) (D.cat_value ds ~col:1 2))

(* ------------------------------------------------------------------ *)
(* Summary                                                              *)
(* ------------------------------------------------------------------ *)

module Summary = Pn_data.Summary

let test_summary_numeric () =
  let ds = tiny () in
  match Summary.attribute ds ~col:0 with
  | Summary.Numeric_summary s ->
    check_float "min" 1.0 s.Summary.min;
    check_float "max" 6.0 s.Summary.max;
    check_float "mean" 3.5 s.Summary.mean;
    Alcotest.(check bool) "sd positive" true (s.Summary.stddev > 1.0)
  | Summary.Categorical_summary _ -> Alcotest.fail "expected numeric"

let test_summary_categorical () =
  let ds = tiny () in
  match Summary.attribute ds ~col:1 with
  | Summary.Categorical_summary top ->
    Alcotest.(check int) "two values" 2 (List.length top);
    List.iter (fun (_, share) -> check_float "uniform" 0.5 share) top
  | Summary.Numeric_summary _ -> Alcotest.fail "expected categorical"

let test_summary_per_class () =
  let ds = tiny () in
  (* Class 1 has x ∈ {3, 4, 6}. *)
  match Summary.attribute_for_class ds ~col:0 ~cls:1 with
  | Summary.Numeric_summary s ->
    check_float "class min" 3.0 s.Summary.min;
    check_float "class mean" (13.0 /. 3.0) s.Summary.mean
  | Summary.Categorical_summary _ -> Alcotest.fail "expected numeric"

(* ------------------------------------------------------------------ *)
(* QCheck                                                               *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Sort cache                                                           *)
(* ------------------------------------------------------------------ *)

(* Reference implementation: sort the dataset indices by (value, index),
   the documented tie-break of both [Dataset.sorted_order] and
   [View.sorted_by_num]. *)
let naive_sorted ds idx ~col =
  let a = Array.copy idx in
  Array.sort
    (fun i j ->
      let c = Float.compare (D.num_value ds ~col i) (D.num_value ds ~col j) in
      if c <> 0 then c else Int.compare i j)
    a;
  a

let test_sort_cache_memoized () =
  let ds = tiny () in
  let o1 = D.sorted_order ds ~col:0 in
  let o2 = D.sorted_order ds ~col:0 in
  Alcotest.(check bool) "second call returns the cached array" true (o1 == o2);
  Alcotest.(check (array int)) "order" [| 0; 1; 2; 3; 4; 5 |] o1;
  let rank = D.sorted_rank ds ~col:0 in
  Array.iteri (fun k i -> Alcotest.(check int) "rank inverts order" k rank.(i)) o1;
  Alcotest.(check int) "distinct" 6 (D.n_distinct_num ds ~col:0);
  Alcotest.check_raises "categorical column"
    (Invalid_argument "Dataset.sort_entry: categorical column") (fun () ->
      ignore (D.sorted_order ds ~col:1))

let test_sort_cache_sharing () =
  let ds = tiny () in
  let o = D.sorted_order ds ~col:0 in
  (* Weight variants share columns, hence the cache. *)
  Alcotest.(check bool) "stratify shares" true
    (D.sorted_order (D.stratify ds ~target:1) ~col:0 == o);
  Alcotest.(check bool) "with_weights shares" true
    (D.sorted_order (D.with_weights ds (Array.make 6 2.0)) ~col:0 == o);
  (* Subset materializes new columns and must not inherit the order. *)
  let sub = D.subset ds [| 4; 1; 3 |] in
  Alcotest.(check (array int)) "subset order fresh" [| 1; 2; 0 |]
    (D.sorted_order sub ~col:0)

let test_sorted_ties_shuffled_view () =
  let ds =
    D.create
      ~attrs:[| A.numeric "x" |]
      ~columns:[| D.Num [| 2.0; 1.0; 2.0; 1.0; 2.0; 1.0 |] |]
      ~labels:[| 0; 0; 0; 0; 0; 0 |] ~classes:[| "a" |] ()
  in
  (* Ties break on the dataset index even when the view is shuffled. *)
  let v = V.of_indices ds [| 5; 2; 0; 3; 1; 4 |] in
  Alcotest.(check (array int)) "ties by dataset index" [| 1; 3; 5; 0; 2; 4 |]
    (V.sorted_by_num v ~col:0);
  (* Duplicate view indices fall back to the direct sort. *)
  let dup = V.of_indices ds [| 2; 2; 1 |] in
  Alcotest.(check (array int)) "duplicates kept" [| 1; 2; 2 |]
    (V.sorted_by_num dup ~col:0);
  (* Empty views short-circuit. *)
  let empty = V.filter (V.all ds) (fun _ -> false) in
  Alcotest.(check (array int)) "empty" [||] (V.sorted_by_num empty ~col:0)

(* Random clean CSV text: a mix of numeric and categorical columns with
   quoting-heavy values, written to a file and loaded through the
   channel path at a hostile buffer size. The result must be
   bit-identical to the in-memory parse. *)
let csv_equivalence_prop =
  let cat_values = [| "red"; "blue"; "a,b"; "say \"hi\""; "x y" |] in
  let gen =
    QCheck.Gen.(
      pair
        (pair (1 -- 3) (0 -- 2)) (* numeric columns, categorical columns *)
        (pair (list_size (1 -- 30) (0 -- 1000)) (1 -- 13)))
  in
  QCheck.Test.make ~count:200
    ~name:"streaming file load ≡ in-memory parse (clean input)"
    (QCheck.make gen)
    (fun ((n_num, n_cat), (seeds, buf_size)) ->
      let n_cols = n_num + n_cat in
      let buf = Buffer.create 256 in
      List.iteri
        (fun c _ ->
          if c > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "col%d" c))
        (List.init n_cols Fun.id);
      Buffer.add_string buf ",class\n";
      List.iteri
        (fun i seed ->
          for c = 0 to n_cols - 1 do
            if c > 0 then Buffer.add_char buf ',';
            if c < n_num then
              Buffer.add_string buf
                (Printf.sprintf "%g" (float_of_int ((seed + (c * i)) mod 97)))
            else
              Buffer.add_string buf
                (Pn_data.Csv_io.escape
                   cat_values.((seed + c + i) mod Array.length cat_values))
          done;
          Buffer.add_string buf (if seed mod 2 = 0 then ",yes\n" else ",no\n"))
        seeds;
      let text = Buffer.contents buf in
      let in_memory = Csv.parse_string text in
      let path = Filename.temp_file "pnrule_equiv" ".csv" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Out_channel.with_open_bin path (fun oc -> output_string oc text);
          let streamed = Csv.load ~buf_size path in
          D.equal in_memory streamed))

let qcheck_props =
  [
    csv_equivalence_prop;
    QCheck.Test.make ~count:300 ~name:"sorted_by_num matches naive argsort"
      QCheck.(
        pair
          (list_of_size Gen.(int_range 0 120)
             (triple (int_range 0 6) (int_range 1 4) bool))
          bool)
      (fun (rows, use_col1) ->
        let n = List.length rows in
        let vals =
          Array.of_list (List.map (fun (v, _, _) -> float_of_int v /. 2.0) rows)
        in
        let vals2 = Array.map (fun v -> -.v) vals in
        let weights =
          Array.of_list (List.map (fun (_, w, _) -> float_of_int w) rows)
        in
        let keep = Array.of_list (List.map (fun (_, _, k) -> k) rows) in
        let labels = Array.init n (fun i -> i mod 2) in
        let ds =
          D.create ~weights
            ~attrs:[| A.numeric "x"; A.numeric "y" |]
            ~columns:[| D.Num vals; D.Num vals2 |]
            ~labels ~classes:[| "a"; "b" |] ()
        in
        let col = if use_col1 then 1 else 0 in
        let full = V.all ds in
        let sub = V.filter full (fun i -> keep.(i)) in
        (* Both the cached full-view path and (for small subsets) the
           direct-sort path must agree with the reference; a repeated
           call exercises the memoized entry. *)
        V.sorted_by_num full ~col = naive_sorted ds full.V.idx ~col
        && V.sorted_by_num sub ~col = naive_sorted ds sub.V.idx ~col
        && V.sorted_by_num sub ~col = naive_sorted ds sub.V.idx ~col);
    QCheck.Test.make ~count:100 ~name:"stratify balances classes"
      QCheck.(list_of_size Gen.(int_range 2 60) (int_range 0 1))
      (fun labels ->
        let labels = Array.of_list labels in
        QCheck.assume (Array.exists (fun l -> l = 1) labels);
        QCheck.assume (Array.exists (fun l -> l = 0) labels);
        let n = Array.length labels in
        let ds =
          D.create
            ~attrs:[| A.numeric "x" |]
            ~columns:[| D.Num (Array.make n 0.0) |]
            ~labels ~classes:[| "a"; "b" |] ()
        in
        let counts = D.class_counts (D.stratify ds ~target:1) in
        Float.abs (counts.(0) -. counts.(1)) < 1e-6);
    QCheck.Test.make ~count:100 ~name:"view split partitions indices"
      QCheck.(pair small_int (int_range 2 100))
      (fun (seed, n) ->
        let ds =
          D.create
            ~attrs:[| A.numeric "x" |]
            ~columns:[| D.Num (Array.init n float_of_int) |]
            ~labels:(Array.init n (fun i -> i mod 2))
            ~classes:[| "a"; "b" |] ()
        in
        let rng = Pn_util.Rng.create seed in
        let l, r = V.split (V.all ds) rng ~left_fraction:0.5 in
        V.size l + V.size r = n);
  ]

let suite =
  [
    Alcotest.test_case "attribute basics" `Quick test_attribute;
    Alcotest.test_case "dataset accessors" `Quick test_dataset_accessors;
    Alcotest.test_case "dataset validation" `Quick test_dataset_validation;
    Alcotest.test_case "class counts" `Quick test_class_counts;
    Alcotest.test_case "stratify" `Quick test_stratify;
    Alcotest.test_case "subset/append" `Quick test_subset_append;
    Alcotest.test_case "binary labels" `Quick test_binary_labels;
    Alcotest.test_case "with_weights" `Quick test_with_weights;
    Alcotest.test_case "view basics" `Quick test_view_basics;
    Alcotest.test_case "view sorted" `Quick test_view_sorted;
    Alcotest.test_case "sort cache memoized" `Quick test_sort_cache_memoized;
    Alcotest.test_case "sort cache sharing" `Quick test_sort_cache_sharing;
    Alcotest.test_case "view sorted ties/shuffle/dup" `Quick test_sorted_ties_shuffled_view;
    Alcotest.test_case "view stratified split" `Quick test_view_split;
    Alcotest.test_case "view materialize" `Quick test_view_materialize;
    Alcotest.test_case "builder" `Quick test_builder;
    Alcotest.test_case "builder validation" `Quick test_builder_validation;
    Alcotest.test_case "csv parse" `Quick test_csv_parse;
    Alcotest.test_case "csv class column" `Quick test_csv_class_column;
    Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
    Alcotest.test_case "csv errors" `Quick test_csv_errors;
    Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
    Alcotest.test_case "csv crlf + embedded newline" `Quick test_csv_crlf;
    Alcotest.test_case "csv nan/inf stay categorical" `Quick test_csv_nan_inf_categorical;
    Alcotest.test_case "csv bare quote rejected" `Quick test_csv_bare_quote;
    Alcotest.test_case "csv skip policy" `Quick test_csv_skip_policy;
    Alcotest.test_case "csv impute policy" `Quick test_csv_impute_policy;
    Alcotest.test_case "dataset equal" `Quick test_dataset_equal;
    Alcotest.test_case "arff parse" `Quick test_arff_parse;
    Alcotest.test_case "arff class attribute" `Quick test_arff_class_attribute;
    Alcotest.test_case "arff errors" `Quick test_arff_errors;
    Alcotest.test_case "arff roundtrip" `Quick test_arff_roundtrip;
    Alcotest.test_case "arff missing-value policies" `Quick test_arff_policies;
    Alcotest.test_case "summary numeric" `Quick test_summary_numeric;
    Alcotest.test_case "summary categorical" `Quick test_summary_categorical;
    Alcotest.test_case "summary per class" `Quick test_summary_per_class;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_props
