(* Chaos suite: the deterministic fault-injection registry itself, and
   the layers hardened with it — atomic model persistence
   (serialize.write), streaming ingestion (stream.refill), the columnar
   dataset format (columnar.read / columnar.write), and the daemon's
   worker supervision (server.worker). Every run is driven by an
   explicit seed so a failure replays exactly.

   Each test leaves the registry disarmed ([Fault.reset] in a finally),
   so chaos never leaks into the other suites. *)

module F = Pn_util.Fault
module S = Pnrule.Serialize
module Server = Pn_server.Server
module Client = Test_server.Client

let chaos_seed = 42

(* Acceptance rule for every chaos scenario: print the seed, so the
   failing schedule can be replayed with PNRULE_FAULTS="seed=N;...". *)
let with_chaos spec body =
  F.reset ();
  F.set_seed chaos_seed;
  (match F.arm_spec spec with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "bad chaos spec %S: %s" spec msg);
  Printf.printf "chaos: seed=%d spec=%S\n%!" (F.seed ()) spec;
  Fun.protect ~finally:F.reset body

(* ------------------------------------------------------------------ *)
(* The registry                                                         *)
(* ------------------------------------------------------------------ *)

let firing_pattern name n =
  List.init n (fun _ ->
      match F.check name with () -> false | exception F.Injected _ -> true)

let test_schedule_determinism () =
  Fun.protect ~finally:F.reset (fun () ->
      F.reset ();
      F.set_seed 1234;
      F.arm ~p:0.4 "det.point" F.Raise;
      let a = firing_pattern "det.point" 200 in
      Alcotest.(check int) "passes counted" 200 (F.passes "det.point");
      Alcotest.(check int)
        "fired matches the pattern"
        (List.length (List.filter Fun.id a))
        (F.fired "det.point");
      Alcotest.(check bool) "p=0.4 fires sometimes" true (List.exists Fun.id a);
      Alcotest.(check bool)
        "p=0.4 suppresses sometimes" true
        (List.exists not a);
      (* Same seed, same point name: the exact same coin flips. *)
      F.set_seed 1234;
      F.arm ~p:0.4 "det.point" F.Raise;
      let b = firing_pattern "det.point" 200 in
      Alcotest.(check bool) "same seed replays the schedule" true (a = b);
      (* A different seed diverges (200 flips cannot all coincide). *)
      F.set_seed 99;
      F.arm ~p:0.4 "det.point" F.Raise;
      let c = firing_pattern "det.point" 200 in
      Alcotest.(check bool) "different seed diverges" true (a <> c))

let test_schedule_modifiers () =
  Fun.protect ~finally:F.reset (fun () ->
      F.reset ();
      F.set_seed 0;
      F.arm ~after:2 ~every:3 ~times:2 "sched.point" F.Raise;
      let fires = firing_pattern "sched.point" 12 in
      (* after=2 skips passes 1-2; then every 3rd eligible pass fires,
         capped at times=2: passes 3 and 6, nothing after. *)
      let expected =
        [
          false; false; true; false; false; true; false; false; false; false;
          false; false;
        ]
      in
      Alcotest.(check bool) "after/every/times schedule" true (fires = expected);
      Alcotest.(check int) "fired" 2 (F.fired "sched.point");
      Alcotest.(check int) "passes" 12 (F.passes "sched.point");
      Alcotest.(check int) "suppressed" 10 (F.suppressed "sched.point"))

let test_outcomes () =
  Fun.protect ~finally:F.reset (fun () ->
      F.reset ();
      F.arm "errno.point" F.Eintr;
      (match F.check "errno.point" with
      | () -> Alcotest.fail "expected EINTR"
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      F.arm "errno.point" F.Eagain;
      (match F.check "errno.point" with
      | () -> Alcotest.fail "expected EAGAIN"
      | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> ());
      (* Short caps the byte count, never below one byte. *)
      F.arm "io.short" (F.Short 10);
      Alcotest.(check int) "short caps" 10 (F.cap "io.short" 100);
      Alcotest.(check int) "short under cap" 5 (F.cap "io.short" 5);
      (* Crash_after: a byte budget, then Injected on every later pass. *)
      F.arm "io.crash" (F.Crash_after 10);
      Alcotest.(check int) "budget lets bytes through" 6 (F.cap "io.crash" 6);
      Alcotest.(check int) "budget cuts the last write" 4 (F.cap "io.crash" 6);
      (match F.cap "io.crash" 6 with
      | _ -> Alcotest.fail "expected Injected after budget"
      | exception F.Injected _ -> ());
      (* Byte-count outcomes never fire at countless points. *)
      F.check "io.short";
      F.check "io.crash";
      (* Unarmed names pass through even while the registry is armed. *)
      Alcotest.(check int) "unarmed cap passes" 64 (F.cap "not.armed" 64);
      F.check "not.armed";
      Alcotest.(check int) "unknown fired" 0 (F.fired "not.armed");
      F.reset ();
      Alcotest.(check int) "disarmed cap passes" 64 (F.cap "io.short" 64);
      Alcotest.(check (list (triple string int int))) "reset empties stats" []
        (F.stats ()))

let test_spec_parsing () =
  Fun.protect ~finally:F.reset (fun () ->
      F.reset ();
      (match F.arm_spec "seed=7;a.b:eintr,p=0.25;c.d:crash@4096,after=1" with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "spec rejected: %s" msg);
      Alcotest.(check int) "seed applied" 7 (F.seed ());
      Alcotest.(check (list string))
        "points armed" [ "a.b"; "c.d" ]
        (List.map (fun (n, _, _) -> n) (F.stats ()));
      List.iter
        (fun bad ->
          match F.arm_spec bad with
          | Ok () -> Alcotest.failf "accepted malformed spec %S" bad
          | Error _ -> ())
        [
          "nonsense";
          "x:wat";
          "x:short@";
          "x:short@zz";
          "x:eintr,zz=1";
          "x:eintr,p=nope";
          "seed=";
        ])

(* ------------------------------------------------------------------ *)
(* Crash-safe persistence                                               *)
(* ------------------------------------------------------------------ *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_atomic_save_survives_crash () =
  let model, _, _, _ = Lazy.force Test_server.fixture in
  let dir = Filename.temp_file "pnrule_atomic" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "model.pn" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      S.save_saved model path;
      let good = read_file path in
      with_chaos "serialize.write:crash@128" (fun () ->
          (match S.save_saved model path with
          | () -> Alcotest.fail "save should have crashed mid-write"
          | exception F.Injected _ -> ());
          Alcotest.(check bool)
            "the crash actually fired" true
            (F.fired "serialize.write" > 0));
      Alcotest.(check string) "old file intact after crashed save" good
        (read_file path);
      Alcotest.(check (list string))
        "no temp droppings" [ "model.pn" ]
        (List.sort compare (Array.to_list (Sys.readdir dir)));
      (* And the survivor still loads and round-trips. *)
      let back = S.load_saved path in
      Alcotest.(check string) "reload of survivor round-trips" good
        (S.string_of_saved back))

let test_columnar_save_survives_crash () =
  let module C = Pn_data.Columnar in
  let ds = Test_columnar.mixed ~seed:31 ~n:3_000 in
  let dir = Filename.temp_file "pnrule_colatomic" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "data.pnc" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      C.save ds path;
      let good = read_file path in
      with_chaos "columnar.write:crash@4096" (fun () ->
          (match C.save (Test_columnar.mixed ~seed:32 ~n:3_000) path with
          | () -> Alcotest.fail "save should have crashed mid-write"
          | exception F.Injected _ -> ());
          Alcotest.(check bool)
            "the crash actually fired" true
            (F.fired "columnar.write" > 0));
      Alcotest.(check string) "old file intact after crashed save" good
        (read_file path);
      Alcotest.(check (list string))
        "no temp droppings" [ "data.pnc" ]
        (List.sort compare (Array.to_list (Sys.readdir dir)));
      Alcotest.(check bool)
        "survivor still decodes to the first dataset" true
        (Pn_data.Dataset.equal ds (C.load path)))

let test_columnar_short_reads_exact () =
  let module C = Pn_data.Columnar in
  let ds = Test_columnar.mixed ~seed:33 ~n:5_000 in
  let s = C.to_string ~group_size:512 ds in
  (* Every third block read is capped to 7 bytes: decoding degenerates
     into a trickle of fragments, which must change nothing about the
     result or the checksums. *)
  with_chaos "columnar.read:short@7,every=3" (fun () ->
      let back = C.of_string s in
      Alcotest.(check bool) "short reads decode exactly" true
        (Pn_data.Dataset.equal ds back);
      Alcotest.(check bool)
        "short reads actually injected" true
        (F.fired "columnar.read" > 0))

(* ------------------------------------------------------------------ *)
(* The daemon under chaos                                               *)
(* ------------------------------------------------------------------ *)

let test_reload_survives_corruption () =
  let model, body, expected, _ = Lazy.force Test_server.fixture in
  let path = Filename.temp_file "pnrule_reload" ".pn" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      S.save_saved model path;
      let good = read_file path in
      let config = { Server.default_config with chunk_size = 256 } in
      let srv =
        Server.start ~config
          ~source:(Pn_server.Handler.Loader (fun () -> S.load_saved path))
          ()
      in
      Fun.protect
        ~finally:(fun () -> Server.stop srv)
        (fun () ->
          let port = Server.port srv in
          (* A mid-write crash while publishing a new model leaves the
             old file byte-identical, so a reload keeps working. *)
          with_chaos "serialize.write:crash@256" (fun () ->
              match S.save_saved model path with
              | () -> Alcotest.fail "save should have crashed"
              | exception F.Injected _ -> ());
          Alcotest.(check string) "model file survived the crash" good
            (read_file path);
          (match Server.reload srv with
          | Ok () -> ()
          | Error m -> Alcotest.failf "reload of intact file failed: %s" m);
          Alcotest.(check int) "generation advanced" 2 (Server.generation srv);
          (* Outright corruption on disk: the reload is rejected cleanly
             and the daemon keeps serving the generation it has. *)
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc
                (String.sub good 0 (String.length good / 2)));
          (match Server.reload srv with
          | Ok () -> Alcotest.fail "reload of truncated file succeeded"
          | Error _ -> ());
          Alcotest.(check int) "generation kept" 2 (Server.generation srv);
          let s, _, b = Test_server.one_shot port ~meth:"GET" ~path:"/healthz" () in
          Alcotest.(check int) "healthz stays 200" 200 s;
          Alcotest.(check string) "healthz body" "ok\n" b;
          let s, _, got =
            Test_server.one_shot port ~meth:"POST" ~path:"/predict" ~body ()
          in
          Alcotest.(check int) "predict still serves" 200 s;
          Alcotest.(check string) "old generation answers identically" expected
            got))

let test_short_reads_byte_identical () =
  let model, body, expected, _ = Lazy.force Test_server.fixture in
  let srv = Test_server.boot ~model () in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let port = Server.port srv in
      (* Every third body refill is capped to 7 bytes: the request body
         arrives as a trickle of fragments, which must change nothing
         about the response bytes. *)
      with_chaos "stream.refill:short@7,every=3" (fun () ->
          let s, _, got =
            Test_server.one_shot port ~meth:"POST" ~path:"/predict" ~body ()
          in
          Alcotest.(check int) "predict under short reads" 200 s;
          Alcotest.(check string) "byte-identical to batch" expected got;
          Alcotest.(check bool)
            "short reads actually injected" true
            (F.fired "stream.refill" > 0)))

let test_eintr_retried_and_metered () =
  let model, body, expected, _ = Lazy.force Test_server.fixture in
  let srv = Test_server.boot ~model () in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let port = Server.port srv in
      (* Three EINTRs in a row on the body stream: under the retry
         budget of five, so the request must succeed — and the retries
         must reconcile exactly on /metrics. *)
      with_chaos "stream.refill:eintr,times=3" (fun () ->
          let s, _, got =
            Test_server.one_shot port ~meth:"POST" ~path:"/predict" ~body ()
          in
          Alcotest.(check int) "predict under EINTR storm" 200 s;
          Alcotest.(check string) "bytes unchanged by retries" expected got;
          Alcotest.(check int) "all three faults fired" 3
            (F.fired "stream.refill");
          let _, _, m = Test_server.one_shot port ~meth:"GET" ~path:"/metrics" () in
          Alcotest.(check (float 0.0))
            "io retries surfaced on /metrics" 3.0
            (Test_server.metric_value m "pnrule_io_retries_total")))

let rec poll_metrics port ~until ~deadline =
  if Unix.gettimeofday () > deadline then
    Alcotest.fail "metrics condition not reached before deadline"
  else
    match Test_server.one_shot port ~meth:"GET" ~path:"/metrics" () with
    | _, _, m when until m -> m
    | _ ->
      Unix.sleepf 0.05;
      poll_metrics port ~until ~deadline
    | exception (Unix.Unix_error _ | Failure _) ->
      Unix.sleepf 0.05;
      poll_metrics port ~until ~deadline

let test_worker_respawn () =
  let model, body, expected, _ = Lazy.force Test_server.fixture in
  let srv = Test_server.boot ~model () in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let port = Server.port srv in
      with_chaos "server.worker:raise,times=1" (fun () ->
          (* The doomed connection: the injected fault kills the only
             worker domain before it reads the request. *)
          (match Test_server.one_shot port ~meth:"GET" ~path:"/healthz" () with
          | _ -> Alcotest.fail "connection to a dying worker answered"
          | exception (Failure _ | Unix.Unix_error _) -> ());
          (* The listener notices within ~50 ms, respawns into the same
             slot, and the respawn is visible on /metrics. *)
          let m =
            poll_metrics port
              ~until:(fun m ->
                Test_server.metric_value m "pnrule_worker_restarts_total" >= 1.0)
              ~deadline:(Unix.gettimeofday () +. 5.0)
          in
          Alcotest.(check (float 0.0))
            "exactly one restart" 1.0
            (Test_server.metric_value m "pnrule_worker_restarts_total");
          (* The respawned worker serves correctly. *)
          let s, _, b = Test_server.one_shot port ~meth:"GET" ~path:"/healthz" () in
          Alcotest.(check int) "healthz after respawn" 200 s;
          Alcotest.(check string) "healthz body" "ok\n" b;
          let s, _, got =
            Test_server.one_shot port ~meth:"POST" ~path:"/predict" ~body ()
          in
          Alcotest.(check int) "predict after respawn" 200 s;
          Alcotest.(check string) "bytes identical after respawn" expected got))

(* ------------------------------------------------------------------ *)
(* Staged rollout under chaos                                           *)
(* ------------------------------------------------------------------ *)

module Reg = Pnrule.Registry

(* A registry with two generations and a daemon serving generation 1. *)
let with_rollout_daemon f =
  let model, body, expected, _ = Lazy.force Test_server.fixture in
  let model2, expected2 = Lazy.force Test_registry.fixture2 in
  Test_registry.with_registry_dir (fun dir ->
      let reg = Reg.open_dir dir in
      ignore (Reg.publish reg model);
      ignore (Reg.publish reg model2);
      Reg.set_current reg 1;
      let config = { Server.default_config with chunk_size = 256 } in
      let srv =
        Server.start ~config ~source:(Pn_server.Handler.Registry reg) ()
      in
      Fun.protect
        ~finally:(fun () -> Server.stop srv)
        (fun () -> f ~dir ~srv ~body ~expected ~expected2))

let check_serving ~srv ~body ~gen ~bytes what =
  Alcotest.(check int) (what ^ ": generation") gen (Server.generation srv);
  let s, _, got =
    Test_server.one_shot (Server.port srv) ~meth:"POST" ~path:"/predict" ~body
      ()
  in
  Alcotest.(check int) (what ^ ": predict status") 200 s;
  Alcotest.(check string) (what ^ ": byte-identical") bytes got

let test_rollout_flip_crash_keeps_old () =
  with_rollout_daemon (fun ~dir ~srv ~body ~expected ~expected2 ->
      let port = Server.port srv in
      (* The process "dies" four bytes into the CURRENT pointer write:
         after the candidate loaded, warmed, and was about to go live. *)
      with_chaos "registry.flip:crash@4" (fun () ->
          let s, _, b =
            Test_server.one_shot port ~meth:"POST" ~path:"/admin/rollout" ()
          in
          Alcotest.(check int) "crashed flip answers 500" 500 s;
          Alcotest.(check bool)
            "names the surviving generation" true
            (Test_server.contains b "still serving generation 1");
          Alcotest.(check bool)
            "the crash actually fired" true
            (F.fired "registry.flip" > 0));
      (* The old generation serves on, byte-identical, and the registry
         is exactly as it was: pointer untouched, no torn temp files. *)
      check_serving ~srv ~body ~gen:1 ~bytes:expected "after crashed flip";
      Alcotest.(check string)
        "CURRENT untouched" "gen-1.model\n"
        (read_file (Filename.concat dir "CURRENT"));
      Alcotest.(check (list string))
        "no temp droppings"
        [ "CURRENT"; "gen-1.model"; "gen-2.model" ]
        (List.sort compare (Array.to_list (Sys.readdir dir)));
      let s, _, b = Test_server.one_shot port ~meth:"GET" ~path:"/healthz" () in
      Alcotest.(check int) "healthz after crashed flip" 200 s;
      Alcotest.(check string) "healthz body" "ok\n" b;
      let _, _, m = Test_server.one_shot port ~meth:"GET" ~path:"/metrics" () in
      Alcotest.(check (float 0.0))
        "failure metered" 1.0
        (Test_server.metric_value m "pnrule_model_rollout_failures_total");
      (* Disarmed, the identical rollout goes through. *)
      let s, _, _ =
        Test_server.one_shot port ~meth:"POST" ~path:"/admin/rollout" ()
      in
      Alcotest.(check int) "retried rollout succeeds" 200 s;
      Alcotest.(check string)
        "pointer flipped on retry" "gen-2.model\n"
        (read_file (Filename.concat dir "CURRENT"));
      check_serving ~srv ~body ~gen:2 ~bytes:expected2 "after retry")

let test_rollout_load_faults () =
  with_rollout_daemon (fun ~dir:_ ~srv ~body ~expected ~expected2 ->
      let port = Server.port srv in
      (* Transient EINTRs inside the retry budget are absorbed: the
         flip still happens. *)
      with_chaos "registry.load:eintr,times=3" (fun () ->
          let s, _, _ =
            Test_server.one_shot port ~meth:"POST" ~path:"/admin/rollout" ()
          in
          Alcotest.(check int) "rollout under EINTR storm" 200 s;
          Alcotest.(check int) "all three faults fired" 3
            (F.fired "registry.load"));
      check_serving ~srv ~body ~gen:2 ~bytes:expected2 "after EINTR rollout";
      (* A hard load failure keeps the serving generation untouched. *)
      with_chaos "registry.load:raise,times=1" (fun () ->
          let s, _, b =
            Test_server.one_shot port ~meth:"POST" ~path:"/admin/rollback" ()
          in
          Alcotest.(check int) "failed load answers 500" 500 s;
          Alcotest.(check bool)
            "names the surviving generation" true
            (Test_server.contains b "still serving generation 2"));
      check_serving ~srv ~body ~gen:2 ~bytes:expected2 "after failed load";
      (* Disarmed, the rollback restores generation 1 exactly. *)
      let s, _, _ =
        Test_server.one_shot port ~meth:"POST" ~path:"/admin/rollback" ()
      in
      Alcotest.(check int) "rollback succeeds disarmed" 200 s;
      check_serving ~srv ~body ~gen:1 ~bytes:expected "after rollback")

(* Regression for the in-flight accounting fix: a handler that dies on
   an escaped exception must still decrement the gauge — a leak here
   would eat admission capacity until the daemon sheds everything. *)
let test_in_flight_survives_crashed_handler () =
  let model, body, _, _ = Lazy.force Test_server.fixture in
  let srv = Test_server.boot ~model () in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let port = Server.port srv in
      with_chaos "serve.chunk_write:raise,times=1" (fun () ->
          (match
             Test_server.one_shot port ~meth:"POST" ~path:"/predict" ~body ()
           with
          | s, _, _ ->
            Alcotest.(check int) "faulted request surfaces an error" 500 s
          | exception (Failure _ | Unix.Unix_error _) ->
            (* The fault can also tear the response mid-stream. *)
            ());
          Alcotest.(check bool)
            "fault fired" true
            (F.fired "serve.chunk_write" > 0));
      (* Only the scrape itself is in flight: the crashed request's
         decrement ran. *)
      let _, _, m = Test_server.one_shot port ~meth:"GET" ~path:"/metrics" () in
      Alcotest.(check (float 0.0))
        "in-flight gauge reconciles" 1.0
        (Test_server.metric_value m "pnrule_in_flight");
      let s, _, b = Test_server.one_shot port ~meth:"GET" ~path:"/healthz" () in
      Alcotest.(check int) "healthz after crashed handler" 200 s;
      Alcotest.(check string) "healthz body" "ok\n" b)

let test_deadline_enforced () =
  let model, body, _, _ = Lazy.force Test_server.fixture in
  let config =
    { Server.default_config with chunk_size = 256; deadline = 0.3 }
  in
  let srv =
    Server.start ~config ~source:(Pn_server.Handler.Loader (fun () -> model)) ()
  in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let port = Server.port srv in
      (* A client that trickles its body slower than the deadline: each
         individual read succeeds (so the idle timeout never fires), but
         the request as a whole overruns its budget and must get a 408
         instead of pinning the worker. *)
      let c = Client.connect port in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let cut = String.length body / 2 in
          Client.send c
            (Printf.sprintf
               "POST /predict HTTP/1.1\r\nhost: t\r\ncontent-length: %d\r\n\r\n%s"
               (String.length body) (String.sub body 0 cut));
          Unix.sleepf 0.6;
          Client.send c (String.sub body cut (String.length body - cut));
          let s, _, _ = Client.read_response c in
          Alcotest.(check int) "trickled request gets 408" 408 s))

let suite =
  [
    Alcotest.test_case "registry: same seed, same schedule" `Quick
      test_schedule_determinism;
    Alcotest.test_case "registry: after/every/times modifiers" `Quick
      test_schedule_modifiers;
    Alcotest.test_case "registry: outcomes and pass-through" `Quick
      test_outcomes;
    Alcotest.test_case "registry: PNRULE_FAULTS grammar" `Quick
      test_spec_parsing;
    Alcotest.test_case "persistence: crashed save leaves old file" `Quick
      test_atomic_save_survives_crash;
    Alcotest.test_case "columnar: crashed save leaves old file" `Quick
      test_columnar_save_survives_crash;
    Alcotest.test_case "columnar: short reads decode exactly" `Quick
      test_columnar_short_reads_exact;
    Alcotest.test_case "daemon: reload survives crash and corruption" `Quick
      test_reload_survives_corruption;
    Alcotest.test_case "daemon: short reads stay byte-identical" `Quick
      test_short_reads_byte_identical;
    Alcotest.test_case "daemon: EINTR storm retried and metered" `Quick
      test_eintr_retried_and_metered;
    Alcotest.test_case "daemon: dead worker respawns" `Quick
      test_worker_respawn;
    Alcotest.test_case "daemon: crash mid-flip keeps the old generation"
      `Quick test_rollout_flip_crash_keeps_old;
    Alcotest.test_case "daemon: rollout load faults retried or refused"
      `Quick test_rollout_load_faults;
    Alcotest.test_case "daemon: in-flight gauge survives crashed handler"
      `Quick test_in_flight_survives_crashed_handler;
    Alcotest.test_case "daemon: per-request deadline" `Quick
      test_deadline_enforced;
  ]
